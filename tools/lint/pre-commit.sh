#!/bin/sh
# Changed-files-only tmemo_lint pass, wired as a git pre-commit hook:
#
#   ln -s ../../tools/lint/pre-commit.sh .git/hooks/pre-commit
#
# Lints only the staged C++ files under src/, tools/ and bench/ against the
# checked-in suppression baseline, reusing the incremental cache from the
# build tree, so the hook costs milliseconds once the cache is warm. Stale
# baseline entries for files outside the subset are deliberately not
# reported (the full-tree scan in CI catches those).
#
# Environment:
#   TM_LINT_BUILD_DIR  build tree holding tmemo_lint (default: build)
set -eu

repo_root=$(git rev-parse --show-toplevel)
build_dir=${TM_LINT_BUILD_DIR:-build}
lint="$repo_root/$build_dir/tools/lint/tmemo_lint"

if [ ! -x "$lint" ]; then
  echo "pre-commit: $lint not built; run 'cmake --build $build_dir" \
       "--target tmemo_lint' (skipping lint)" >&2
  exit 0
fi

# Staged C++ sources inside the linted scope, Added/Copied/Modified/Renamed
# only (deletions have nothing to scan).
changed=$(git -C "$repo_root" diff --cached --name-only --diff-filter=ACMR \
          -- 'src/*' 'tools/*' 'bench/*' |
          grep -E '\.(cpp|cc|cxx|hpp|h|hh)$' || true)

if [ -z "$changed" ]; then
  exit 0
fi

cd "$repo_root"
# shellcheck disable=SC2086 -- the file list is intentionally word-split
exec "$lint" --baseline=tools/lint/lint_baseline.txt \
  --cache="$build_dir/tmemo_lint.cache" $changed
