#include "lexer.hpp"

#include <cctype>

namespace tmemo::lint {

namespace {

[[nodiscard]] bool ident_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Extracts every `allow(<rule>)` annotation from one tmemo-lint comment.
void harvest_suppressions(const std::string& comment, int line,
                          std::vector<Suppression>& out) {
  static const std::string kTag = "tmemo-lint:";
  std::size_t pos = comment.find(kTag);
  if (pos == std::string::npos) return;
  pos += kTag.size();
  static const std::string kAllow = "allow(";
  while ((pos = comment.find(kAllow, pos)) != std::string::npos) {
    pos += kAllow.size();
    const std::size_t close = comment.find(')', pos);
    if (close == std::string::npos) break;
    std::string rule = comment.substr(pos, close - pos);
    // Trim surrounding whitespace inside the parentheses.
    const std::size_t b = rule.find_first_not_of(" \t");
    const std::size_t e = rule.find_last_not_of(" \t");
    if (b != std::string::npos) {
      out.push_back(Suppression{rule.substr(b, e - b + 1), line});
    }
    pos = close + 1;
  }
}

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  LexResult run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        col_ = 1;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        advance(1);
        continue;
      }
      if (c == '#' && at_line_start_) {
        skip_directive();
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && peek(1) == '/') {
        line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        block_comment();
        continue;
      }
      if (c == 'R' && peek(1) == '"') {
        raw_string();
        continue;
      }
      if (c == '"') {
        quoted(TokenKind::kString, '"');
        continue;
      }
      if (c == '\'') {
        quoted(TokenKind::kChar, '\'');
        continue;
      }
      if (ident_start(c)) {
        identifier();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))) != 0)) {
        number();
        continue;
      }
      punct();
    }
    return std::move(result_);
  }

 private:
  [[nodiscard]] char peek(std::size_t ahead) const noexcept {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void advance(std::size_t n) noexcept {
    pos_ += n;
    col_ += static_cast<int>(n);
  }

  void emit(TokenKind kind, std::string text, int line, int col) {
    result_.tokens.push_back(Token{kind, std::move(text), line, col});
  }

  /// Skips a preprocessor directive line, honoring backslash continuations.
  /// Directives carry no tokens the rules care about (skipping them keeps
  /// `#define`s from confusing the function scanner), but `#include` paths
  /// are harvested as edges for the cross-file index.
  void skip_directive() {
    const int line = line_;
    std::string text;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && peek(1) == '\n') {
        pos_ += 2;
        ++line_;
        col_ = 1;
        continue;
      }
      if (c == '\n') break;  // main loop handles the newline
      text += c;
      advance(1);
    }
    harvest_include(text, line);
  }

  /// Records `#include "path"` / `#include <path>` from one directive line.
  void harvest_include(const std::string& text, int line) {
    std::size_t i = 1;  // past '#'
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    static const std::string kWord = "include";
    if (text.compare(i, kWord.size(), kWord) != 0) return;
    i += kWord.size();
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    if (i >= text.size()) return;
    const char open = text[i];
    const char close = open == '<' ? '>' : open == '"' ? '"' : '\0';
    if (close == '\0') return;
    const std::size_t end = text.find(close, i + 1);
    if (end == std::string::npos) return;
    result_.includes.push_back(IncludeDirective{
        text.substr(i + 1, end - i - 1), open == '<', line});
  }

  void line_comment() {
    const int line = line_;
    std::size_t end = src_.find('\n', pos_);
    if (end == std::string::npos) end = src_.size();
    harvest_suppressions(src_.substr(pos_, end - pos_), line,
                         result_.suppressions);
    advance(end - pos_);
  }

  void block_comment() {
    const int line = line_;
    const std::size_t end = src_.find("*/", pos_ + 2);
    const std::size_t stop = end == std::string::npos ? src_.size() : end + 2;
    harvest_suppressions(src_.substr(pos_, stop - pos_), line,
                         result_.suppressions);
    while (pos_ < stop) {
      if (src_[pos_] == '\n') {
        ++line_;
        col_ = 1;
        ++pos_;
      } else {
        advance(1);
      }
    }
  }

  void raw_string() {
    const int line = line_;
    const int col = col_;
    advance(2);  // R"
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') {
      delim += src_[pos_];
      advance(1);
    }
    advance(1);  // (
    const std::string closer = ")" + delim + "\"";
    const std::size_t body = pos_;
    std::size_t end = src_.find(closer, pos_);
    if (end == std::string::npos) end = src_.size();
    std::string text = src_.substr(body, end - body);
    for (std::size_t i = pos_; i < end && i < src_.size(); ++i) {
      if (src_[i] == '\n') {
        ++line_;
        col_ = 0;
      }
    }
    pos_ = std::min(end + closer.size(), src_.size());
    emit(TokenKind::kString, std::move(text), line, col);
  }

  void quoted(TokenKind kind, char quote) {
    const int line = line_;
    const int col = col_;
    advance(1);
    std::string text;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && pos_ + 1 < src_.size()) {
        text += c;
        text += src_[pos_ + 1];
        advance(2);
        continue;
      }
      if (c == quote || c == '\n') {
        advance(1);
        break;
      }
      text += c;
      advance(1);
    }
    emit(kind, std::move(text), line, col);
  }

  void identifier() {
    const int line = line_;
    const int col = col_;
    std::size_t end = pos_;
    while (end < src_.size() && ident_char(src_[end])) ++end;
    std::string text = src_.substr(pos_, end - pos_);
    advance(end - pos_);
    emit(TokenKind::kIdentifier, std::move(text), line, col);
  }

  void number() {
    const int line = line_;
    const int col = col_;
    std::size_t end = pos_;
    // pp-number, loosely: digits, idents, dots, and sign after exponent.
    while (end < src_.size()) {
      const char c = src_[end];
      if (ident_char(c) || c == '.' ||
          ((c == '+' || c == '-') && end > pos_ &&
           (src_[end - 1] == 'e' || src_[end - 1] == 'E' ||
            src_[end - 1] == 'p' || src_[end - 1] == 'P'))) {
        ++end;
      } else {
        break;
      }
    }
    std::string text = src_.substr(pos_, end - pos_);
    advance(end - pos_);
    emit(TokenKind::kNumber, std::move(text), line, col);
  }

  void punct() {
    const int line = line_;
    const int col = col_;
    if (src_[pos_] == ':' && peek(1) == ':') {
      advance(2);
      emit(TokenKind::kPunct, "::", line, col);
      return;
    }
    std::string text(1, src_[pos_]);
    advance(1);
    emit(TokenKind::kPunct, std::move(text), line, col);
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  bool at_line_start_ = true;
  LexResult result_;
};

} // namespace

LexResult lex(const std::string& source) { return Lexer(source).run(); }

} // namespace tmemo::lint
