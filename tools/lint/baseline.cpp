#include "baseline.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tmemo::lint {

Baseline load_baseline(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot read baseline: " + path);
  Baseline base;
  std::string line;
  int lineno = 0;
  bool saw_budget = false;
  while (std::getline(is, line)) {
    ++lineno;
    // Strip trailing CR and leading whitespace.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    std::size_t b = line.find_first_not_of(" \t");
    if (b == std::string::npos || line[b] == '#') continue;
    std::istringstream ss(line.substr(b));
    std::string word;
    ss >> word;
    if (word == "budget") {
      long long n = -1;
      if (!(ss >> n) || n < 0) {
        throw std::runtime_error("baseline " + path + ":" +
                                 std::to_string(lineno) +
                                 ": budget wants a non-negative count");
      }
      base.budget = static_cast<std::size_t>(n);
      saw_budget = true;
    } else if (word == "allow") {
      BaselineEntry e;
      long long n = -1;
      if (!(ss >> e.rule >> e.path >> n) || n <= 0) {
        throw std::runtime_error(
            "baseline " + path + ":" + std::to_string(lineno) +
            ": expected 'allow <rule> <path> <count>' with count > 0");
      }
      e.count = static_cast<std::size_t>(n);
      base.entries.push_back(std::move(e));
    } else {
      throw std::runtime_error("baseline " + path + ":" +
                               std::to_string(lineno) +
                               ": unknown directive '" + word + "'");
    }
  }
  if (!saw_budget) {
    throw std::runtime_error("baseline " + path +
                             ": missing 'budget <N>' line");
  }
  return base;
}

} // namespace tmemo::lint
