#include "runner.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <utility>

#include "baseline.hpp"
#include "cache.hpp"
#include "index.hpp"
#include "io/atomic_file.hpp"
#include "sarif.hpp"

namespace tmemo::lint {

namespace {

namespace fs = std::filesystem;

/// Bump when rule semantics change without a rule id/description change,
/// so stale caches self-invalidate.
constexpr const char* kEngineVersion = "tmemo-lint-engine-2.0.0";

[[nodiscard]] bool is_cpp_source(const fs::path& p) {
  static const std::set<std::string> kExts = {".cpp", ".cc", ".cxx",
                                              ".hpp", ".h",  ".hh"};
  return kExts.count(p.extension().string()) != 0;
}

/// Files under `paths`, sorted for deterministic output.
[[nodiscard]] std::vector<std::string> collect_files(
    const std::vector<std::string>& paths) {
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    const fs::path path(p);
    if (fs::is_directory(path)) {
      for (const auto& entry : fs::recursive_directory_iterator(path)) {
        if (entry.is_regular_file() && is_cpp_source(entry.path())) {
          files.push_back(entry.path().string());
        }
      }
    } else if (fs::is_regular_file(path)) {
      files.push_back(path.string());
    } else {
      throw std::runtime_error("no such file or directory: " + p);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

[[nodiscard]] std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot read: " + path);
  std::ostringstream os;
  os << is.rdbuf();
  return std::move(os).str();
}

[[nodiscard]] std::string normalize_path(const std::string& path) {
  return fs::path(path).lexically_normal().generic_string();
}

[[nodiscard]] std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// One file's state as it moves through the two phases.
struct FileSlot {
  SourceFile source;
  std::uint64_t content_hash = 0;
  CachedFile result;      ///< phase-2 output (fresh or replayed)
  bool from_cache = false;
  std::string error;      ///< read failure, reported once at the end
};

/// Runs `fn(i)` for i in [0, n) across `jobs` worker threads. Work items
/// are independent; the atomic cursor keeps threads busy without any
/// ordering guarantee (results land in pre-sized slots, so the final
/// output stays deterministic).
template <typename Fn>
void parallel_for(std::size_t n, unsigned jobs, Fn&& fn) {
  if (jobs == 0) jobs = std::thread::hardware_concurrency();
  if (jobs == 0) jobs = 1;
  jobs = static_cast<unsigned>(
      std::min<std::size_t>(jobs, std::max<std::size_t>(n, 1)));
  if (jobs <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> cursor{0};
  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (unsigned t = 0; t < jobs; ++t) {
    pool.emplace_back([&cursor, n, &fn] {
      for (std::size_t i = cursor.fetch_add(1); i < n;
           i = cursor.fetch_add(1)) {
        fn(i);
      }
    });
  }
  for (std::thread& th : pool) th.join();
}

/// Phase 2 for one file: run every rule, apply per-line suppressions,
/// flag orphan annotations. Fills slot.result.
void lint_one_file(FileSlot& slot, const RepoIndex& repo,
                   const std::vector<std::unique_ptr<Rule>>& rules,
                   const std::set<std::string>& rule_ids) {
  const SourceFile& file = slot.source;
  std::vector<Finding> raw;
  for (const auto& rule : rules) rule->check(file, repo, raw);

  // Apply per-line suppressions; count how many each annotation absorbed
  // so unused ones can be flagged as orphans.
  std::map<std::pair<int, std::string>, std::size_t> used;
  CachedFile& out = slot.result;
  for (Finding& f : raw) {
    const auto key = std::make_pair(f.line, f.rule);
    bool suppressed = false;
    for (const Suppression& s : file.suppressions) {
      if (s.line == f.line && s.rule == f.rule) {
        suppressed = true;
        break;
      }
    }
    if (suppressed) {
      ++used[key];
      ++out.suppressed;
      ++out.used_suppressions[f.rule];
    } else {
      out.findings.push_back(std::move(f));
    }
  }
  for (const Suppression& s : file.suppressions) {
    if (rule_ids.count(s.rule) == 0) {
      out.findings.push_back(Finding{
          "orphan-suppression", file.display_path, s.line, 1,
          "suppression names unknown rule '" + s.rule + "'"});
    } else if (used.count(std::make_pair(s.line, s.rule)) == 0) {
      out.findings.push_back(Finding{
          "orphan-suppression", file.display_path, s.line, 1,
          "suppression for rule '" + s.rule +
              "' matches no finding on this line; remove it"});
    }
  }
}

/// True when `display` names the same file as the repo-relative baseline
/// path `entry` — equal, or a suffix at a '/' boundary (scans may use
/// absolute paths; the baseline never does).
[[nodiscard]] bool path_matches(const std::string& display,
                                const std::string& entry) {
  if (display == entry) return true;
  return display.size() > entry.size() + 1 &&
         display.compare(display.size() - entry.size(), entry.size(),
                         entry) == 0 &&
         display[display.size() - entry.size() - 1] == '/';
}

/// Compares the suppressions a scan actually used against the checked-in
/// baseline and appends meta-findings for every deviation.
void enforce_baseline(const Baseline& base, const std::string& base_path,
                      const std::set<std::string>& scanned,
                      LintReport& report) {
  for (const auto& [path, rules] : report.suppression_sites) {
    for (const auto& [rule, count] : rules) {
      std::size_t budgeted = 0;
      for (const BaselineEntry& e : base.entries) {
        if (e.rule == rule && path_matches(path, e.path)) {
          budgeted += e.count;
        }
      }
      if (count > budgeted) {
        report.findings.push_back(Finding{
            "unbaselined-suppression", path, 1, 1,
            "file uses " + std::to_string(count) + " '" + rule +
                "' suppression(s) but the baseline allows " +
                std::to_string(budgeted) +
                "; review the suppression and add it to " + base_path +
                " (or remove it)"});
      }
    }
  }

  // Stale entries: only enforced when the entry's file was actually in the
  // scanned set, so subset scans (pre-commit) stay usable.
  for (const BaselineEntry& e : base.entries) {
    bool in_scan = false;
    for (const std::string& s : scanned) {
      if (path_matches(s, e.path)) {
        in_scan = true;
        break;
      }
    }
    if (!in_scan) continue;
    std::size_t used = 0;
    for (const auto& [path, rules] : report.suppression_sites) {
      if (!path_matches(path, e.path)) continue;
      const auto r = rules.find(e.rule);
      if (r != rules.end()) used += r->second;
    }
    if (used < e.count) {
      report.findings.push_back(Finding{
          "stale-baseline", base_path, 1, 1,
          "baseline allows " + std::to_string(e.count) + " '" + e.rule +
              "' suppression(s) in " + e.path + " but the scan used " +
              std::to_string(used) + "; shrink the baseline"});
    }
  }

  if (report.suppressed > base.budget) {
    report.findings.push_back(Finding{
        "suppression-budget", base_path, 1, 1,
        "scan used " + std::to_string(report.suppressed) +
            " suppression(s), over the budget of " +
            std::to_string(base.budget) + "; remove suppressions or raise "
            "the budget in " + base_path + " with review"});
  }
}

} // namespace

LintReport run_lint(const LintOptions& options) {
  const std::vector<std::unique_ptr<Rule>> rules = make_default_rules();
  std::set<std::string> rule_ids;
  std::string engine_canon(kEngineVersion);
  for (const auto& r : rules) {
    rule_ids.insert(r->id());
    engine_canon += '|' + r->id() + '=' + r->description();
  }
  const std::uint64_t engine_digest = fnv1a(engine_canon);

  // Baseline parse errors must surface before any scanning effort.
  Baseline base;
  const bool have_baseline = !options.baseline_path.empty();
  if (have_baseline) base = load_baseline(options.baseline_path);

  const std::vector<std::string> paths = collect_files(options.paths);
  std::vector<FileSlot> slots(paths.size());

  // Phase 1: read, hash, lex, scan and index every file in parallel.
  parallel_for(paths.size(), options.jobs, [&](std::size_t i) {
    FileSlot& slot = slots[i];
    SourceFile& file = slot.source;
    file.path = paths[i];
    file.display_path = normalize_path(paths[i]);
    try {
      const std::string bytes = read_file(paths[i]);
      slot.content_hash = fnv1a(bytes);
      LexResult lexed = lex(bytes);
      file.tokens = std::move(lexed.tokens);
      file.suppressions = std::move(lexed.suppressions);
      file.functions = scan_functions(file.tokens);
      file.index = build_file_index(file.display_path, file.tokens, lexed,
                                    file.functions);
    } catch (const std::exception& e) {
      slot.error = e.what();
    }
  });
  for (const FileSlot& slot : slots) {
    if (!slot.error.empty()) throw std::runtime_error(slot.error);
  }

  std::vector<FileIndex> views;
  views.reserve(slots.size());
  for (const FileSlot& slot : slots) views.push_back(slot.source.index);
  const RepoIndex repo = merge_indexes(views);
  const std::uint64_t index_digest = repo.digest();

  LintCache cache;
  const bool have_cache = !options.cache_path.empty();
  if (have_cache) {
    cache = load_cache(options.cache_path);
    if (cache.engine_digest != engine_digest ||
        cache.index_digest != index_digest) {
      cache.files.clear();  // engine or cross-file facts changed: cold
    }
  }

  // Phase 2: rules per file, replaying cache hits.
  parallel_for(slots.size(), options.jobs, [&](std::size_t i) {
    FileSlot& slot = slots[i];
    const auto hit = cache.files.find(slot.source.display_path);
    if (hit != cache.files.end() &&
        hit->second.content_hash == slot.content_hash) {
      slot.result = hit->second;
      slot.from_cache = true;
      return;
    }
    lint_one_file(slot, repo, rules, rule_ids);
  });

  // Deterministic merge: slots are already in sorted-path order.
  LintReport report;
  std::set<std::string> scanned;
  for (FileSlot& slot : slots) {
    ++report.files_scanned;
    scanned.insert(slot.source.display_path);
    report.suppressed += slot.result.suppressed;
    if (!slot.result.used_suppressions.empty()) {
      auto& site = report.suppression_sites[slot.source.display_path];
      for (const auto& [rule, count] : slot.result.used_suppressions) {
        site[rule] += count;
      }
    }
    for (const Finding& f : slot.result.findings) {
      report.findings.push_back(f);
    }
  }

  if (have_cache) {
    LintCache fresh;
    fresh.engine_digest = engine_digest;
    fresh.index_digest = index_digest;
    for (FileSlot& slot : slots) {
      slot.result.content_hash = slot.content_hash;
      fresh.files[slot.source.display_path] = std::move(slot.result);
    }
    save_cache(options.cache_path, fresh);
  }

  if (have_baseline) {
    enforce_baseline(base, normalize_path(options.baseline_path), scanned,
                     report);
  }

  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.path, a.line, a.col, a.rule, a.message) <
                     std::tie(b.path, b.line, b.col, b.rule, b.message);
            });
  return report;
}

LintReport run_lint(const std::vector<std::string>& paths) {
  LintOptions options;
  options.paths = paths;
  return run_lint(options);
}

int exit_code(const LintReport& report) noexcept {
  return report.findings.empty() ? 0 : 1;
}

void write_text(const LintReport& report, std::ostream& out) {
  for (const Finding& f : report.findings) {
    out << f.path << ':' << f.line << ':' << f.col << ": [" << f.rule << "] "
        << f.message << '\n';
  }
  out << "tmemo-lint: " << report.findings.size() << " finding(s), "
      << report.suppressed << " suppressed, " << report.files_scanned
      << " file(s) scanned\n";
}

void write_json(const LintReport& report, std::ostream& out) {
  out << "{\n"
      << "  \"tool\": \"tmemo-lint\",\n"
      << "  \"files_scanned\": " << report.files_scanned << ",\n"
      << "  \"suppressed\": " << report.suppressed << ",\n"
      << "  \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    out << (i == 0 ? "\n" : ",\n")
        << "    {\"rule\": \"" << json_escape(f.rule) << "\", \"path\": \""
        << json_escape(f.path) << "\", \"line\": " << f.line
        << ", \"col\": " << f.col << ", \"message\": \""
        << json_escape(f.message) << "\"}";
  }
  out << "\n  ]\n}\n";
}

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  LintOptions options;
  std::string out_path;
  for (const std::string& a : args) {
    if (a == "--json") {
      options.format = OutputFormat::kJson;
    } else if (a == "--sarif") {
      options.format = OutputFormat::kSarif;
    } else if (a.rfind("--baseline=", 0) == 0) {
      options.baseline_path = a.substr(11);
    } else if (a.rfind("--cache=", 0) == 0) {
      options.cache_path = a.substr(8);
    } else if (a.rfind("--out=", 0) == 0) {
      out_path = a.substr(6);
    } else if (a.rfind("--jobs=", 0) == 0) {
      try {
        options.jobs = static_cast<unsigned>(std::stoul(a.substr(7)));
      } catch (const std::exception&) {
        err << "tmemo_lint: bad --jobs value '" << a.substr(7) << "'\n";
        return 2;
      }
    } else if (a == "--list-rules") {
      for (const auto& r : make_default_rules()) {
        out << r->id() << ": " << r->description() << '\n';
      }
      out << "orphan-suppression: an allow() annotation that silences no "
             "finding is itself a finding\n"
             "unbaselined-suppression / stale-baseline / suppression-budget: "
             "baseline enforcement (see --baseline)\n";
      return 0;
    } else if (a == "--help" || a == "-h") {
      out << "usage: tmemo_lint [options] <path>...\n"
             "Lints C++ sources for tmemo repo invariants R1-R14\n"
             "(see docs/STATIC_ANALYSIS.md). Directories are walked\n"
             "recursively. Exit: 0 clean, 1 findings, 2 error.\n"
             "  --json             JSON report instead of text\n"
             "  --sarif            SARIF 2.1.0 report instead of text\n"
             "  --baseline=FILE    enforce the suppression baseline/budget\n"
             "  --cache=FILE       incremental scan cache (read + rewrite)\n"
             "  --out=FILE         write the report to FILE, not stdout\n"
             "  --jobs=N           worker threads (default: all cores)\n"
             "  --list-rules       print the rule catalog and exit\n";
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      err << "tmemo_lint: unknown option '" << a << "'\n";
      return 2;
    } else {
      options.paths.push_back(a);
    }
  }
  if (options.paths.empty()) {
    err << "tmemo_lint: no input paths (try --help)\n";
    return 2;
  }
  try {
    const LintReport report = run_lint(options);
    // A report file consumed by CI (SARIF upload, baseline diffs) gets the
    // atomic-commit treatment: the named path never holds a torn report.
    io::AtomicFileWriter file_out;
    if (!out_path.empty()) file_out.open(out_path);
    std::ostream& sink = out_path.empty() ? out : file_out.stream();
    switch (options.format) {
      case OutputFormat::kJson:
        write_json(report, sink);
        break;
      case OutputFormat::kSarif:
        write_sarif(report, sarif_rule_catalog(), sink);
        break;
      case OutputFormat::kText:
        write_text(report, sink);
        break;
    }
    if (file_out.is_open()) file_out.commit();
    return exit_code(report);
  } catch (const std::exception& e) {
    err << "tmemo_lint: " << e.what() << '\n';
    return 2;
  }
}

} // namespace tmemo::lint
