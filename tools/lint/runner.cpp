#include "runner.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <tuple>
#include <utility>

namespace tmemo::lint {

namespace {

namespace fs = std::filesystem;

[[nodiscard]] bool is_cpp_source(const fs::path& p) {
  static const std::set<std::string> kExts = {".cpp", ".cc", ".cxx",
                                              ".hpp", ".h",  ".hh"};
  return kExts.count(p.extension().string()) != 0;
}

/// Files under `paths`, sorted for deterministic output.
[[nodiscard]] std::vector<std::string> collect_files(
    const std::vector<std::string>& paths) {
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    const fs::path path(p);
    if (fs::is_directory(path)) {
      for (const auto& entry : fs::recursive_directory_iterator(path)) {
        if (entry.is_regular_file() && is_cpp_source(entry.path())) {
          files.push_back(entry.path().string());
        }
      }
    } else if (fs::is_regular_file(path)) {
      files.push_back(path.string());
    } else {
      throw std::runtime_error("no such file or directory: " + p);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

[[nodiscard]] std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot read: " + path);
  std::ostringstream os;
  os << is.rdbuf();
  return std::move(os).str();
}

[[nodiscard]] std::string normalize_path(const std::string& path) {
  std::string out = fs::path(path).lexically_normal().generic_string();
  return out;
}

[[nodiscard]] std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void lint_one_file(const std::string& path,
                   const std::vector<std::unique_ptr<Rule>>& rules,
                   const std::set<std::string>& rule_ids, LintReport& report) {
  SourceFile file;
  file.path = path;
  file.display_path = normalize_path(path);
  LexResult lexed = lex(read_file(path));
  file.tokens = std::move(lexed.tokens);
  file.suppressions = std::move(lexed.suppressions);
  file.functions = scan_functions(file.tokens);

  std::vector<Finding> raw;
  for (const auto& rule : rules) rule->check(file, raw);

  // Apply per-line suppressions; count how many each annotation absorbed
  // so unused ones can be flagged as orphans.
  std::map<std::pair<int, std::string>, std::size_t> used;
  for (const Finding& f : raw) {
    const auto key = std::make_pair(f.line, f.rule);
    bool suppressed = false;
    for (const Suppression& s : file.suppressions) {
      if (s.line == f.line && s.rule == f.rule) {
        suppressed = true;
        break;
      }
    }
    if (suppressed) {
      ++used[key];
      ++report.suppressed;
    } else {
      report.findings.push_back(f);
    }
  }
  for (const Suppression& s : file.suppressions) {
    if (rule_ids.count(s.rule) == 0) {
      report.findings.push_back(Finding{
          "orphan-suppression", file.display_path, s.line, 1,
          "suppression names unknown rule '" + s.rule + "'"});
    } else if (used.count(std::make_pair(s.line, s.rule)) == 0) {
      report.findings.push_back(Finding{
          "orphan-suppression", file.display_path, s.line, 1,
          "suppression for rule '" + s.rule +
              "' matches no finding on this line; remove it"});
    }
  }
  ++report.files_scanned;
}

} // namespace

LintReport run_lint(const std::vector<std::string>& paths) {
  const std::vector<std::unique_ptr<Rule>> rules = make_default_rules();
  std::set<std::string> rule_ids;
  for (const auto& r : rules) rule_ids.insert(r->id());

  LintReport report;
  for (const std::string& f : collect_files(paths)) {
    lint_one_file(f, rules, rule_ids, report);
  }
  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.path, a.line, a.col, a.rule) <
                     std::tie(b.path, b.line, b.col, b.rule);
            });
  return report;
}

int exit_code(const LintReport& report) noexcept {
  return report.findings.empty() ? 0 : 1;
}

void write_text(const LintReport& report, std::ostream& out) {
  for (const Finding& f : report.findings) {
    out << f.path << ':' << f.line << ':' << f.col << ": [" << f.rule << "] "
        << f.message << '\n';
  }
  out << "tmemo-lint: " << report.findings.size() << " finding(s), "
      << report.suppressed << " suppressed, " << report.files_scanned
      << " file(s) scanned\n";
}

void write_json(const LintReport& report, std::ostream& out) {
  out << "{\n"
      << "  \"tool\": \"tmemo-lint\",\n"
      << "  \"files_scanned\": " << report.files_scanned << ",\n"
      << "  \"suppressed\": " << report.suppressed << ",\n"
      << "  \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    out << (i == 0 ? "\n" : ",\n")
        << "    {\"rule\": \"" << json_escape(f.rule) << "\", \"path\": \""
        << json_escape(f.path) << "\", \"line\": " << f.line
        << ", \"col\": " << f.col << ", \"message\": \""
        << json_escape(f.message) << "\"}";
  }
  out << "\n  ]\n}\n";
}

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  bool json = false;
  std::vector<std::string> paths;
  for (const std::string& a : args) {
    if (a == "--json") {
      json = true;
    } else if (a == "--list-rules") {
      for (const auto& r : make_default_rules()) {
        out << r->id() << ": " << r->description() << '\n';
      }
      out << "orphan-suppression: an allow() annotation that silences no "
             "finding is itself a finding\n";
      return 0;
    } else if (a == "--help" || a == "-h") {
      out << "usage: tmemo_lint [--json] [--list-rules] <path>...\n"
             "Lints C++ sources for tmemo repo invariants R1-R6\n"
             "(see docs/STATIC_ANALYSIS.md). Directories are walked\n"
             "recursively. Exit: 0 clean, 1 findings, 2 error.\n";
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      err << "tmemo_lint: unknown option '" << a << "'\n";
      return 2;
    } else {
      paths.push_back(a);
    }
  }
  if (paths.empty()) {
    err << "tmemo_lint: no input paths (try --help)\n";
    return 2;
  }
  try {
    const LintReport report = run_lint(paths);
    if (json) {
      write_json(report, out);
    } else {
      write_text(report, out);
    }
    return exit_code(report);
  } catch (const std::exception& e) {
    err << "tmemo_lint: " << e.what() << '\n';
    return 2;
  }
}

} // namespace tmemo::lint
