// Orchestration for tmemo_lint v2: the two-phase engine.
//
// Phase 1 (parallel): read, hash and lex every requested C++ source, scan
// its functions and build its FileIndex; merge the per-file views into one
// RepoIndex. Phase 2 (parallel): run every rule against each file plus the
// merged index, apply `tmemo-lint allow(...)` suppressions, flag orphans —
// replaying cached results for files whose bytes (and the engine/index
// digests) are unchanged. Afterwards the runner enforces the checked-in
// baseline/suppression budget and renders text, JSON or SARIF reports.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "rule.hpp"

namespace tmemo::lint {

struct LintReport {
  std::vector<Finding> findings;   ///< non-suppressed, sorted, stable order
  std::size_t files_scanned = 0;
  std::size_t suppressed = 0;      ///< findings silenced by allow()
  /// display path -> rule id -> silenced-finding count; what the baseline
  /// is compared against.
  std::map<std::string, std::map<std::string, std::size_t>> suppression_sites;
};

enum class OutputFormat { kText, kJson, kSarif };

struct LintOptions {
  std::vector<std::string> paths;
  OutputFormat format = OutputFormat::kText;
  std::string baseline_path;  ///< empty: no baseline enforcement
  std::string cache_path;     ///< empty: no incremental cache
  unsigned jobs = 0;          ///< worker threads; 0 = hardware concurrency
};

/// Lints every .cpp/.cc/.cxx/.hpp/.h/.hh file in `options.paths`
/// (directories are walked recursively; files are taken as-is). Throws
/// std::runtime_error for a path that does not exist or a malformed
/// baseline file.
[[nodiscard]] LintReport run_lint(const LintOptions& options);

/// Convenience wrapper: default options over `paths`.
[[nodiscard]] LintReport run_lint(const std::vector<std::string>& paths);

/// Process exit code for a report: 0 clean, 1 findings.
[[nodiscard]] int exit_code(const LintReport& report) noexcept;

void write_text(const LintReport& report, std::ostream& out);
void write_json(const LintReport& report, std::ostream& out);

/// Full command-line driver (used by main() and by the self-tests).
/// Returns the process exit code: 0 clean, 1 findings, 2 usage/IO error.
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

} // namespace tmemo::lint
