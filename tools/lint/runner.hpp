// Orchestration for tmemo_lint: walk the requested paths, lex each C++
// source, run every rule, apply `tmemo-lint allow(...)` suppressions,
// flag orphan suppressions, and render text or JSON reports.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "rule.hpp"

namespace tmemo::lint {

struct LintReport {
  std::vector<Finding> findings;   ///< non-suppressed, sorted, stable order
  std::size_t files_scanned = 0;
  std::size_t suppressed = 0;      ///< findings silenced by allow()
};

/// Lints every .cpp/.cc/.cxx/.hpp/.h/.hh file in `paths` (directories are
/// walked recursively; files are taken as-is). Throws std::runtime_error
/// for a path that does not exist.
[[nodiscard]] LintReport run_lint(const std::vector<std::string>& paths);

/// Process exit code for a report: 0 clean, 1 findings.
[[nodiscard]] int exit_code(const LintReport& report) noexcept;

void write_text(const LintReport& report, std::ostream& out);
void write_json(const LintReport& report, std::ostream& out);

/// Full command-line driver (used by main() and by the self-tests).
/// Returns the process exit code: 0 clean, 1 findings, 2 usage/IO error.
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

} // namespace tmemo::lint
