// Tokenizer for tmemo_lint.
//
// A deliberately small C++ lexer: it understands comments (and harvests
// `tmemo-lint allow(<rule>)` suppressions from them), string/char
// literals (including raw strings), preprocessor directives, numbers,
// identifiers and punctuation. That is exactly enough for the token-level
// invariant rules in rules.cpp — no preprocessing, no name lookup.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace tmemo::lint {

enum class TokenKind {
  kIdentifier,  ///< [A-Za-z_][A-Za-z0-9_]*
  kNumber,      ///< numeric literal (pp-number, loosely)
  kString,      ///< "...", R"(...)" — text excludes quotes/delimiters
  kChar,        ///< '...'
  kPunct,       ///< one punctuation unit; "::" is folded into one token
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 0;  ///< 1-based
  int col = 0;   ///< 1-based
};

/// One `tmemo-lint allow(<rule>)` annotation found while lexing.
struct Suppression {
  std::string rule;
  int line = 0;  ///< line the annotation (and the code it guards) is on
};

/// One `#include` directive. The path is the text between the delimiters;
/// include edges feed the cross-file index (tools/lint/index.hpp).
struct IncludeDirective {
  std::string path;
  bool angled = false;  ///< <...> rather than "..."
  int line = 0;
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
  std::vector<IncludeDirective> includes;
};

/// Tokenizes `source`. Never fails: unrecognized bytes become single-char
/// punctuation tokens, an unterminated literal consumes to end of input.
[[nodiscard]] LexResult lex(const std::string& source);

} // namespace tmemo::lint
