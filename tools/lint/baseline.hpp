// Baseline file support for tmemo_lint.
//
// The checked-in baseline (tools/lint/lint_baseline.txt) is the complete
// inventory of sanctioned in-source suppressions plus a hard budget on
// their total count. The runner compares the suppressions a scan actually
// used against the baseline and emits meta-findings for anything outside
// it, so new suppressions must be reviewed into the baseline (and stale
// entries pruned) before CI goes green. Format, line-oriented:
//
//   # comment
//   budget <N>
//   allow <rule> <display-path> <count>
#pragma once

#include <string>
#include <vector>

namespace tmemo::lint {

struct BaselineEntry {
  std::string rule;
  std::string path;  ///< display path, forward slashes
  std::size_t count = 0;
};

struct Baseline {
  std::size_t budget = 0;
  std::vector<BaselineEntry> entries;
};

/// Parses a baseline file. Throws std::runtime_error on I/O or syntax
/// errors (a malformed baseline must fail the build, not silently allow).
[[nodiscard]] Baseline load_baseline(const std::string& path);

} // namespace tmemo::lint
