#include "cache.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace tmemo::lint {

namespace {

constexpr const char* kMagic = "tmemo-lint-cache v1";

/// Percent-encodes the characters that would break the space-separated
/// line format (plus '%' itself).
[[nodiscard]] std::string encode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '%' || c == ' ' || c == '\n' || c == '\r' || c == '\t') {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

[[nodiscard]] std::string decode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      out += static_cast<char>(std::stoi(s.substr(i + 1, 2), nullptr, 16));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

} // namespace

LintCache load_cache(const std::string& path) {
  LintCache cache;
  std::ifstream is(path);
  if (!is) return cache;
  std::string line;
  if (!std::getline(is, line) || line != kMagic) return cache;

  CachedFile* current = nullptr;
  try {
    while (std::getline(is, line)) {
      std::istringstream ss(line);
      std::string tag;
      ss >> tag;
      if (tag == "engine") {
        ss >> std::hex >> cache.engine_digest;
      } else if (tag == "index") {
        ss >> std::hex >> cache.index_digest;
      } else if (tag == "file") {
        std::string p;
        std::uint64_t hash = 0;
        std::size_t suppressed = 0;
        if (!(ss >> p >> std::hex >> hash >> std::dec >> suppressed)) {
          return LintCache{};
        }
        current = &cache.files[decode(p)];
        current->content_hash = hash;
        current->suppressed = suppressed;
      } else if (tag == "f") {
        if (current == nullptr) return LintCache{};
        Finding f;
        std::string msg;
        if (!(ss >> f.rule >> f.line >> f.col >> msg)) return LintCache{};
        f.message = decode(msg);
        ss >> f.path;  // stored explicitly to survive renames of the key
        f.path = decode(f.path);
        current->findings.push_back(std::move(f));
      } else if (tag == "u") {
        if (current == nullptr) return LintCache{};
        std::string rule;
        std::size_t count = 0;
        if (!(ss >> rule >> count)) return LintCache{};
        current->used_suppressions[rule] = count;
      } else if (!tag.empty()) {
        return LintCache{};
      }
    }
  } catch (...) {
    return LintCache{};
  }
  return cache;
}

void save_cache(const std::string& path, const LintCache& cache) {
  // The cache is a disposable accelerator, not a final artifact: a torn
  // cache self-invalidates on load (load_cache returns empty on any parse
  // hiccup), so the atomic-commit discipline would buy nothing here.
  std::ofstream os(path, std::ios::trunc); // tmemo-lint: allow(artifact-durability)
  if (!os) return;
  os << kMagic << '\n';
  os << "engine " << std::hex << cache.engine_digest << '\n';
  os << "index " << std::hex << cache.index_digest << '\n';
  for (const auto& [p, cf] : cache.files) {
    os << "file " << encode(p) << ' ' << std::hex << cf.content_hash << ' '
       << std::dec << cf.suppressed << '\n';
    for (const Finding& f : cf.findings) {
      os << "f " << f.rule << ' ' << std::dec << f.line << ' ' << f.col
         << ' ' << encode(f.message) << ' ' << encode(f.path) << '\n';
    }
    for (const auto& [rule, count] : cf.used_suppressions) {
      os << "u " << rule << ' ' << std::dec << count << '\n';
    }
  }
}

} // namespace tmemo::lint
