// Rule interface for tmemo_lint.
//
// A Rule inspects one lexed source file — plus the repo-wide index built in
// phase 1 — and emits Findings. Rules are registered in make_default_rules()
// (rules.cpp registers R1-R8 and R14, rules_index.cpp registers R9-R13);
// adding a new invariant means subclassing Rule, implementing check(), and
// appending it there — see docs/STATIC_ANALYSIS.md for the catalog and a
// worked example.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "function_scan.hpp"
#include "index.hpp"
#include "lexer.hpp"

namespace tmemo::lint {

/// One source file, lexed once and shared by all rules.
struct SourceFile {
  std::string path;           ///< as given on the command line
  std::string display_path;   ///< normalized with forward slashes
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
  std::vector<FunctionSpan> functions;
  FileIndex index;            ///< this file's phase-1 view
};

/// One rule violation (or an orphan suppression).
struct Finding {
  std::string rule;
  std::string path;
  int line = 0;
  int col = 0;
  std::string message;
};

class Rule {
 public:
  virtual ~Rule() = default;
  /// Stable kebab-case identifier, used in output and in
  /// `tmemo-lint allow(<id>)` suppressions.
  [[nodiscard]] virtual std::string id() const = 0;
  /// One-line description for `--list-rules`.
  [[nodiscard]] virtual std::string description() const = 0;
  /// Appends this rule's findings for `file` to `out`. `repo` is the merged
  /// phase-1 index; per-file rules may ignore it.
  virtual void check(const SourceFile& file, const RepoIndex& repo,
                     std::vector<Finding>& out) const = 0;
};

/// The repo-invariant rule set R1..R14.
[[nodiscard]] std::vector<std::unique_ptr<Rule>> make_default_rules();

/// The cross-file rules R9..R13 (rules_index.cpp), appended to `out` by
/// make_default_rules().
void append_index_rules(std::vector<std::unique_ptr<Rule>>& out);

} // namespace tmemo::lint
