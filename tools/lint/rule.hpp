// Rule interface for tmemo_lint.
//
// A Rule inspects one lexed source file and emits Findings. Rules are
// registered in make_default_rules() (rules.cpp); adding a new invariant
// means subclassing Rule, implementing check(), and appending it there —
// see docs/STATIC_ANALYSIS.md for the catalog and a worked example.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "function_scan.hpp"
#include "lexer.hpp"

namespace tmemo::lint {

/// One source file, lexed once and shared by all rules.
struct SourceFile {
  std::string path;           ///< as given on the command line
  std::string display_path;   ///< normalized with forward slashes
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
  std::vector<FunctionSpan> functions;
};

/// One rule violation (or an orphan suppression).
struct Finding {
  std::string rule;
  std::string path;
  int line = 0;
  int col = 0;
  std::string message;
};

class Rule {
 public:
  virtual ~Rule() = default;
  /// Stable kebab-case identifier, used in output and in
  /// `tmemo-lint allow(<id>)` suppressions.
  [[nodiscard]] virtual std::string id() const = 0;
  /// One-line description for `--list-rules`.
  [[nodiscard]] virtual std::string description() const = 0;
  /// Appends this rule's findings for `file` to `out`.
  virtual void check(const SourceFile& file, std::vector<Finding>& out) const = 0;
};

/// The repo-invariant rule set R1..R8.
[[nodiscard]] std::vector<std::unique_ptr<Rule>> make_default_rules();

} // namespace tmemo::lint
