// tmemo_lint — repo-invariant static analysis for the tmemo tree.
//
//   tmemo_lint src tools bench          # lint the default scope
//   tmemo_lint --json src               # machine-readable findings
//   tmemo_lint --list-rules             # rule catalog
//
// Rules and suppression policy: docs/STATIC_ANALYSIS.md.
#include <iostream>
#include <vector>

#include "runner.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return tmemo::lint::run_cli(args, std::cout, std::cerr);
}
