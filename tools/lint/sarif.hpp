// SARIF 2.1.0 report writer for tmemo_lint.
//
// Emits the minimal valid subset GitHub code scanning and SARIF viewers
// consume: one run, the tool driver with its rule catalog, and one result
// per finding with a physical location. See write_sarif() in sarif.cpp for
// the exact shape; tests/lint/lint_test.cpp validates it structurally
// against the 2.1.0 schema requirements.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "rule.hpp"

namespace tmemo::lint {

struct LintReport;

/// Rule catalog entry for the SARIF driver block: {id, description}.
using SarifRuleMeta = std::pair<std::string, std::string>;

/// The catalog for the default rule set, plus the synthetic meta-rules
/// (orphan-suppression, baseline enforcement) the runner can emit.
[[nodiscard]] std::vector<SarifRuleMeta> sarif_rule_catalog();

void write_sarif(const LintReport& report,
                 const std::vector<SarifRuleMeta>& rules, std::ostream& out);

} // namespace tmemo::lint
