// Incremental scan cache for tmemo_lint.
//
// Keyed three ways: an engine digest (rule ids + descriptions + a manual
// version bump), the repo-index digest (the cross-file facts R9-R13
// consume), and a per-file FNV-1a content hash. When engine and index
// digests match, a file whose bytes are unchanged replays its cached
// findings without re-running phase 2 — that is what keeps the warm `lint`
// CMake target under the CI wall-clock gate as the repo grows. Any parse
// problem discards the cache wholesale; it is a pure accelerator and never
// a source of truth.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "rule.hpp"

namespace tmemo::lint {

/// Phase-2 output for one file, as cached between runs.
struct CachedFile {
  std::uint64_t content_hash = 0;
  std::vector<Finding> findings;  ///< post-suppression, incl. orphans
  std::size_t suppressed = 0;
  /// Rule id -> number of findings an allow() silenced in this file.
  std::map<std::string, std::size_t> used_suppressions;
};

struct LintCache {
  std::uint64_t engine_digest = 0;
  std::uint64_t index_digest = 0;
  std::map<std::string, CachedFile> files;  ///< by display path
};

/// Loads a cache file; returns an empty cache on any I/O or format
/// problem (a cold cache, never an error).
[[nodiscard]] LintCache load_cache(const std::string& path);

/// Persists the cache; best-effort, failures are swallowed.
void save_cache(const std::string& path, const LintCache& cache);

} // namespace tmemo::lint
