#include "function_scan.hpp"

#include <set>

namespace tmemo::lint {

namespace {

[[nodiscard]] bool is_punct(const Token& t, const char* text) noexcept {
  return t.kind == TokenKind::kPunct && t.text == text;
}

/// Keywords that look like `name (` but never open a function definition.
[[nodiscard]] bool is_control_keyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",       "for",      "while",   "switch",        "catch",
      "return",   "sizeof",   "alignof", "alignas",       "decltype",
      "noexcept", "operator", "throw",   "static_assert", "assert",
      "co_await", "co_yield", "co_return", "new", "delete"};
  return kKeywords.count(s) != 0;
}

/// Index of the punct matching `open` at `i` (same nesting level), or
/// tokens.size() when unbalanced.
[[nodiscard]] std::size_t match_forward(const std::vector<Token>& tokens,
                                        std::size_t i, const char* open,
                                        const char* close) {
  int depth = 0;
  for (std::size_t j = i; j < tokens.size(); ++j) {
    if (is_punct(tokens[j], open)) ++depth;
    if (is_punct(tokens[j], close)) {
      --depth;
      if (depth == 0) return j;
    }
  }
  return tokens.size();
}

/// Starting right after a parameter list's `)` at `after_params`, decides
/// whether a function body follows and returns the index of its `{`.
/// Returns tokens.size() when the construct is a declaration/expression.
[[nodiscard]] std::size_t find_body_brace(const std::vector<Token>& tokens,
                                          std::size_t after_params) {
  std::size_t j = after_params;
  // Qualifier zone: const, noexcept(...), override, final, &, &&,
  // trailing return type `-> T<...>`, attributes `[[...]]`.
  while (j < tokens.size()) {
    const Token& t = tokens[j];
    if (is_punct(t, "{")) return j;
    if (is_punct(t, ";") || is_punct(t, ",") || is_punct(t, ")")) {
      return tokens.size();
    }
    if (is_punct(t, "=")) {
      // `= default;` / `= delete;` / `= 0;` — a declaration, not a body.
      return tokens.size();
    }
    if (is_punct(t, ":")) {
      // Constructor initializer list: a sequence of
      //   member ( args )   or   member { args }
      // separated by commas, then the body `{`.
      ++j;
      while (j < tokens.size()) {
        // Skip the member name (possibly qualified / templated).
        while (j < tokens.size() &&
               (tokens[j].kind == TokenKind::kIdentifier ||
                is_punct(tokens[j], "::"))) {
          ++j;
        }
        if (j < tokens.size() && is_punct(tokens[j], "<")) {
          j = match_forward(tokens, j, "<", ">") + 1;
        }
        if (j >= tokens.size()) return tokens.size();
        if (is_punct(tokens[j], "(")) {
          j = match_forward(tokens, j, "(", ")") + 1;
        } else if (is_punct(tokens[j], "{")) {
          j = match_forward(tokens, j, "{", "}") + 1;
        } else {
          return tokens.size();  // not an initializer we understand
        }
        if (j < tokens.size() && is_punct(tokens[j], ",")) {
          ++j;
          continue;
        }
        break;
      }
      if (j < tokens.size() && is_punct(tokens[j], "{")) return j;
      return tokens.size();
    }
    if (is_punct(t, "(")) {
      j = match_forward(tokens, j, "(", ")") + 1;  // noexcept(...)
      continue;
    }
    if (is_punct(t, "[")) {
      j = match_forward(tokens, j, "[", "]") + 1;  // [[attribute]]
      continue;
    }
    if (is_punct(t, "<")) {
      j = match_forward(tokens, j, "<", ">") + 1;  // -> T<...>
      continue;
    }
    // Identifiers (const/noexcept/override/final/try/return-type tokens),
    // `->`, `*`, `&` — keep scanning.
    ++j;
  }
  return tokens.size();
}

} // namespace

std::vector<FunctionSpan> scan_functions(const std::vector<Token>& tokens) {
  std::vector<FunctionSpan> spans;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    const Token& name = tokens[i];
    if (name.kind != TokenKind::kIdentifier) continue;
    if (!is_punct(tokens[i + 1], "(")) continue;
    if (is_control_keyword(name.text)) continue;
    // `operator+(...)` — the identifier is `operator`, already excluded;
    // a macro invocation `TM_REQUIRE(...)` ends in `;` and is rejected by
    // find_body_brace.
    const std::size_t close = match_forward(tokens, i + 1, "(", ")");
    if (close >= tokens.size()) continue;
    const std::size_t body = find_body_brace(tokens, close + 1);
    if (body >= tokens.size()) continue;
    FunctionSpan span;
    span.name = name.text;
    span.name_line = name.line;
    span.name_col = name.col;
    span.body_begin = body;
    span.body_end = match_forward(tokens, body, "{", "}");
    spans.push_back(span);
    // Continue scanning from inside the body so nested local classes and
    // their methods are still discovered; enclosing_function() prefers the
    // innermost span.
  }
  return spans;
}

const FunctionSpan* enclosing_function(const std::vector<FunctionSpan>& spans,
                                       std::size_t i) {
  const FunctionSpan* best = nullptr;
  for (const FunctionSpan& s : spans) {
    if (s.body_begin <= i && i <= s.body_end) {
      if (best == nullptr ||
          (s.body_begin >= best->body_begin && s.body_end <= best->body_end)) {
        best = &s;
      }
    }
  }
  return best;
}

} // namespace tmemo::lint
