#include "sarif.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <set>

#include "runner.hpp"

namespace tmemo::lint {

namespace {

[[nodiscard]] std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

} // namespace

std::vector<SarifRuleMeta> sarif_rule_catalog() {
  std::vector<SarifRuleMeta> catalog;
  for (const auto& r : make_default_rules()) {
    catalog.emplace_back(r->id(), r->description());
  }
  catalog.emplace_back("orphan-suppression",
                       "an allow() annotation that silences no finding is "
                       "itself a finding");
  catalog.emplace_back("unbaselined-suppression",
                       "a suppression site not covered by the checked-in "
                       "baseline file");
  catalog.emplace_back("stale-baseline",
                       "a baseline entry whose suppressions no longer exist; "
                       "shrink the baseline");
  catalog.emplace_back("suppression-budget",
                       "total suppressions exceed the baseline budget");
  return catalog;
}

void write_sarif(const LintReport& report,
                 const std::vector<SarifRuleMeta>& rules, std::ostream& out) {
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"tmemo-lint\",\n"
      << "          \"version\": \"2.0.0\",\n"
      << "          \"informationUri\": "
         "\"docs/STATIC_ANALYSIS.md\",\n"
      << "          \"rules\": [";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n")
        << "            {\"id\": \"" << escape(rules[i].first)
        << "\", \"shortDescription\": {\"text\": \""
        << escape(rules[i].second) << "\"}}";
  }
  out << "\n          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"columnKind\": \"utf16CodeUnits\",\n"
      << "      \"results\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    out << (i == 0 ? "\n" : ",\n")
        << "        {\n"
        << "          \"ruleId\": \"" << escape(f.rule) << "\",\n"
        << "          \"level\": \"error\",\n"
        << "          \"message\": {\"text\": \"" << escape(f.message)
        << "\"},\n"
        << "          \"locations\": [\n"
        << "            {\"physicalLocation\": {\n"
        << "              \"artifactLocation\": {\"uri\": \""
        << escape(f.path) << "\"},\n"
        << "              \"region\": {\"startLine\": " << std::max(f.line, 1)
        << ", \"startColumn\": " << std::max(f.col, 1) << "}\n"
        << "            }}\n"
        << "          ]\n"
        << "        }";
  }
  out << "\n      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
}

} // namespace tmemo::lint
