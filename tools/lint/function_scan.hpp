// Light structural pass over the token stream: function-body discovery.
//
// Several rules are scoped to "inside the body of a function named X"
// (R1's wall-clock whitelist, R3's serialization whitelist, R4's
// energy-pairing check, R6's local-vs-member distinction). This scanner
// finds function definitions by token shape — `name ( ... ) [qualifiers]
// [: ctor-init-list] {` — and records the body's token span. It is a
// heuristic, not a parser: lambdas fold into their enclosing function,
// `operator` overloads are skipped, and control-flow keywords are excluded
// by a keyword list. That is sufficient for the invariants checked here.
#pragma once

#include <string>
#include <vector>

#include "lexer.hpp"

namespace tmemo::lint {

struct FunctionSpan {
  std::string name;        ///< unqualified name (last identifier before `(`)
  int name_line = 0;       ///< line of the name token (finding anchor)
  int name_col = 0;        ///< column of the name token
  std::size_t body_begin;  ///< token index of the opening `{`
  std::size_t body_end;    ///< token index of the matching `}` (or end)
};

/// All function bodies in `tokens`, in source order. Spans may nest only
/// via local classes; enclosing_function() resolves to the innermost.
[[nodiscard]] std::vector<FunctionSpan> scan_functions(
    const std::vector<Token>& tokens);

/// Innermost function span containing token index `i`, or nullptr.
[[nodiscard]] const FunctionSpan* enclosing_function(
    const std::vector<FunctionSpan>& spans, std::size_t i);

} // namespace tmemo::lint
