// The cross-file rules R9..R13 (see docs/STATIC_ANALYSIS.md).
//
// Unlike R1-R8 these consume the phase-1 RepoIndex: wire-struct layouts
// (R9), call-site/function context (R10), macro argument spans (R11),
// lambda capture lists (R12) and declared-type tracking (R13). Pattern
// identifiers appear below only inside string literals, so tmemo_lint
// stays clean under its own rules.
#include <algorithm>
#include <set>

#include "rule.hpp"

namespace tmemo::lint {

namespace {

[[nodiscard]] bool is_id(const Token& t, const char* text) noexcept {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

[[nodiscard]] bool is_punct(const Token& t, const char* text) noexcept {
  return t.kind == TokenKind::kPunct && t.text == text;
}

[[nodiscard]] bool next_is_punct(const std::vector<Token>& toks,
                                 std::size_t i, const char* text) noexcept {
  return i + 1 < toks.size() && is_punct(toks[i + 1], text);
}

[[nodiscard]] std::size_t match_forward(const std::vector<Token>& toks,
                                        std::size_t i, const char* open,
                                        const char* close) {
  int depth = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    if (is_punct(toks[j], open)) ++depth;
    if (is_punct(toks[j], close)) {
      --depth;
      if (depth == 0) return j;
    }
  }
  return toks.size();
}

void report(std::vector<Finding>& out, const std::string& rule,
            const SourceFile& file, int line, int col, std::string message) {
  out.push_back(Finding{rule, file.display_path, line, col,
                        std::move(message)});
}

// -- R9 ---------------------------------------------------------------------

class PodProtocolRule final : public Rule {
 public:
  [[nodiscard]] std::string id() const override { return "pod-protocol"; }
  [[nodiscard]] std::string description() const override {
    return "R9: structs crossing the write_pod/read_pod wire must be "
           "trivially-copyable-shaped, fixed-width, padding-free (when "
           "written whole) and static_assert-guarded";
  }

  void check(const SourceFile& file, const RepoIndex& repo,
             std::vector<Finding>& out) const override {
    for (const StructLayout& s : file.index.structs) {
      const auto use_it = repo.wire_use.find(s.name);
      if (use_it == repo.wire_use.end() ||
          use_it->second == WireUse::kNone) {
        continue;
      }
      const bool whole = use_it->second == WireUse::kWhole;
      const char* how = whole ? "written whole" : "serialized field-wise";

      if (!s.plain) {
        report(out, id(), file, s.line, s.col,
               "'" + s.name + "' crosses the pod_io wire (" + how +
                   ") but has base classes or virtual members; wire structs "
                   "must be standalone aggregates");
        continue;
      }
      bool charted = true;
      for (const StructField& f : s.fields) {
        if (f.size == 0) {
          report(out, id(), file, s.line, s.col,
                 "'" + s.name + "." + f.name + "' has type '" + f.type +
                     "' whose wire layout cannot be charted; wire structs "
                     "may only hold fixed-width scalars and arrays of them");
          charted = false;
        } else if (!f.fixed_width) {
          report(out, id(), file, s.line, s.col,
                 "'" + s.name + "." + f.name + "' has ABI-dependent width "
                     "('" + f.type + "'); use a <cstdint> fixed-width type "
                     "so both ends of the pipe agree on the frame layout");
        }
      }
      if (whole && s.computable && s.padding > 0) {
        report(out, id(), file, s.line, s.col,
               "'" + s.name + "' is written whole through write_pod but its "
                   "natural layout has " + std::to_string(s.padding) +
                   " padding byte(s); reorder fields or add explicit "
                   "reserved fields so every byte on the wire is named");
      }

      const auto guard_it = repo.assert_guards.find(s.name);
      const bool has_tc =
          guard_it != repo.assert_guards.end() &&
          guard_it->second.trivially_copyable;
      const bool has_size =
          guard_it != repo.assert_guards.end() &&
          guard_it->second.sizeof_checked;
      if (!has_tc || (whole && !has_size)) {
        std::string expect = "static_assert(std::is_trivially_copyable_v<" +
                             s.name + ">";
        if (whole || has_size || s.computable) {
          expect += " && sizeof(" + s.name + ") == " +
                    (s.computable ? std::to_string(s.size)
                                  : std::string("<expected>"));
        }
        expect += ", \"pod_io wire layout\");";
        report(out, id(), file, s.line, s.col,
               "'" + s.name + "' crosses the pod_io wire (" + how +
                   ") without a layout guard; add:  " + expect);
      }
      (void)charted;
    }
  }
};

// -- R10 --------------------------------------------------------------------

class SyscallDisciplineRule final : public Rule {
 public:
  [[nodiscard]] std::string id() const override {
    return "syscall-discipline";
  }
  [[nodiscard]] std::string description() const override {
    return "R10: supervisor and fabric syscall results must be checked, "
           "with EINTR retry on interruptible calls "
           "(src/sim/worker_proc.*, src/net/)";
  }

  void check(const SourceFile& file, const RepoIndex& /*repo*/,
             std::vector<Finding>& out) const override {
    const bool engaged =
        file.display_path.find("worker_proc") != std::string::npos ||
        file.display_path.find("src/net/") != std::string::npos;
    if (!engaged) return;
    static const std::set<std::string> kGuarded = {
        "fork",        "poll",        "read",       "write",  "waitpid",
        "pipe",        "fcntl",       "socket",     "bind",   "listen",
        "accept",      "connect",     "send",       "recv",   "setsockopt",
        "getsockname", "getaddrinfo", "getsockopt", "shutdown"};
    static const std::set<std::string> kInterruptible = {
        "poll", "read", "write", "waitpid", "accept", "connect",
        "send", "recv"};
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      // Global-qualified call `::name(` whose `::` starts the qualification
      // (previous token is not an identifier, so `std::` chains skip).
      if (!is_punct(toks[i], "::")) continue;
      if (i > 0 && toks[i - 1].kind == TokenKind::kIdentifier) continue;
      const Token& callee = toks[i + 1];
      if (callee.kind != TokenKind::kIdentifier ||
          kGuarded.count(callee.text) == 0 || !next_is_punct(toks, i + 1, "(")) {
        continue;
      }
      const bool discarded =
          i == 0 || is_punct(toks[i - 1], ";") || is_punct(toks[i - 1], "{") ||
          is_punct(toks[i - 1], "}");
      if (discarded) {
        report(out, id(), file, callee.line, callee.col,
               "result of ::" + callee.text + "() is discarded; every "
                   "supervisor syscall result must be checked (a failed " +
                   callee.text + " here silently corrupts worker accounting)");
      }
      if (kInterruptible.count(callee.text) != 0) {
        const FunctionSpan* fn = enclosing_function(file.functions, i + 1);
        bool has_eintr = false;
        if (fn != nullptr) {
          for (std::size_t j = fn->body_begin;
               j <= fn->body_end && j < toks.size(); ++j) {
            if (toks[j].kind == TokenKind::kIdentifier &&
                toks[j].text == "EINTR") {
              has_eintr = true;
              break;
            }
          }
        }
        if (!has_eintr) {
          report(out, id(), file, callee.line, callee.col,
                 "::" + callee.text + "() is interruptible but the enclosing "
                     "function never consults EINTR; retry the call when "
                     "errno == EINTR or a stray signal kills the campaign");
        }
      }
    }
  }
};

// -- R11 --------------------------------------------------------------------

class ProbeCostRule final : public Rule {
 public:
  [[nodiscard]] std::string id() const override { return "probe-cost"; }
  [[nodiscard]] std::string description() const override {
    return "R11: no allocation, I/O or mutation inside TMEMO_TELEM argument "
           "lists (probe arguments must stay zero-cost when telemetry is "
           "compiled out)";
  }

  void check(const SourceFile& file, const RepoIndex& /*repo*/,
             std::vector<Finding>& out) const override {
    static const std::set<std::string> kBannedCalls = {
        "malloc",        "calloc",      "realloc",   "strdup",
        "printf",        "fprintf",     "sprintf",   "snprintf",
        "puts",          "fputs",       "fopen",     "fwrite",
        "fread",         "to_string",   "str",       "make_unique",
        "make_shared",   "string",      "vector",    "ostringstream",
        "stringstream"};
    static const std::set<std::string> kBannedStreams = {"cout", "cerr",
                                                         "clog", "endl"};
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!(toks[i].kind == TokenKind::kIdentifier &&
            toks[i].text == "TMEMO_TELEM") ||
          !next_is_punct(toks, i, "(")) {
        continue;
      }
      const std::size_t close = match_forward(toks, i + 1, "(", ")");
      for (std::size_t j = i + 2; j < close; ++j) {
        const Token& t = toks[j];
        if (t.kind == TokenKind::kIdentifier && t.text == "new") {
          report(out, id(), file, t.line, t.col,
                 "heap allocation inside a probe argument list; probe "
                 "arguments are evaluated even when the sink drops the "
                 "event — hoist the allocation out or drop it");
          continue;
        }
        if (t.kind == TokenKind::kIdentifier &&
            kBannedStreams.count(t.text) != 0) {
          report(out, id(), file, t.line, t.col,
                 "stream I/O ('" + t.text + "') inside a probe argument "
                     "list; probes must not perform I/O");
          continue;
        }
        if (t.kind == TokenKind::kIdentifier &&
            kBannedCalls.count(t.text) != 0 &&
            (next_is_punct(toks, j, "(") || next_is_punct(toks, j, "{"))) {
          report(out, id(), file, t.line, t.col,
                 "'" + t.text + "' call inside a probe argument list "
                     "allocates or formats; probe arguments must be "
                     "casts, loads and arithmetic only");
          continue;
        }
        if (is_punct(t, "+") && next_is_punct(toks, j, "+")) {
          report(out, id(), file, t.line, t.col,
                 "increment inside a probe argument list mutates state; the "
                 "side effect runs even when telemetry is disabled");
          ++j;
        } else if (is_punct(t, "-") && next_is_punct(toks, j, "-")) {
          report(out, id(), file, t.line, t.col,
                 "decrement inside a probe argument list mutates state; the "
                 "side effect runs even when telemetry is disabled");
          ++j;
        }
      }
      i = close;
    }
  }
};

// -- R12 --------------------------------------------------------------------

class CampaignDeterminismRule final : public Rule {
 public:
  [[nodiscard]] std::string id() const override {
    return "campaign-determinism";
  }
  [[nodiscard]] std::string description() const override {
    return "R12: job lambdas handed to CampaignEngine workers must not "
           "mutate by-reference-captured shared state without an "
           "atomic/mutex guard in the same block";
  }

  void check(const SourceFile& file, const RepoIndex& /*repo*/,
             std::vector<Finding>& out) const override {
    bool engages = false;
    for (const Token& t : file.tokens) {
      if (t.kind == TokenKind::kIdentifier && t.text == "CampaignEngine") {
        engages = true;
        break;
      }
    }
    if (!engages) return;

    for (const LambdaInfo& lam : file.index.lambdas) {
      if (!is_job_lambda(file.tokens, lam)) continue;
      check_lambda(file, lam, out);
    }
  }

 private:
  [[nodiscard]] static const std::set<std::string>& sink_names() {
    static const std::set<std::string> kSinks = {
        "thread",  "async",   "emplace_back", "push_back", "submit",
        "enqueue", "run_jobs", "for_each",    "dispatch"};
    return kSinks;
  }

  /// Callee of the call expression that `arg_pos` is a direct argument of,
  /// or "" when `arg_pos` is not in an argument position.
  [[nodiscard]] static std::string enclosing_callee(
      const std::vector<Token>& toks, std::size_t arg_pos) {
    if (arg_pos == 0) return "";
    const Token& prev = toks[arg_pos - 1];
    if (!is_punct(prev, "(") && !is_punct(prev, ",")) return "";
    int depth = 0;
    for (std::size_t j = arg_pos; j-- > 0;) {
      if (is_punct(toks[j], ")")) {
        ++depth;
        continue;
      }
      if (is_punct(toks[j], "(")) {
        if (depth == 0) {
          if (j > 0 && toks[j - 1].kind == TokenKind::kIdentifier) {
            return toks[j - 1].text;
          }
          return "";
        }
        --depth;
        continue;
      }
      if (depth == 0 && (is_punct(toks[j], ";") || is_punct(toks[j], "{") ||
                         is_punct(toks[j], "}"))) {
        return "";
      }
    }
    return "";
  }

  /// A lambda is a "job lambda" when it (or the variable it is bound to) is
  /// handed to a worker-spawn/queue sink.
  [[nodiscard]] static bool is_job_lambda(const std::vector<Token>& toks,
                                          const LambdaInfo& lam) {
    if (sink_names().count(enclosing_callee(toks, lam.begin)) != 0) {
      return true;
    }
    if (lam.bound_name.empty()) return false;
    for (std::size_t i = lam.body_end; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier ||
          toks[i].text != lam.bound_name) {
        continue;
      }
      if (sink_names().count(enclosing_callee(toks, i)) != 0) return true;
    }
    return false;
  }

  [[nodiscard]] static bool is_mutating_method(const std::string& m) {
    static const std::set<std::string> kMutators = {
        "push_back", "emplace_back", "pop_back", "append", "insert",
        "erase",     "clear",        "resize",   "assign", "reserve",
        "write",     "open",         "reset",    "emplace"};
    return kMutators.count(m) != 0;
  }

  [[nodiscard]] static bool is_atomic_method(const std::string& m) {
    static const std::set<std::string> kAtomics = {
        "fetch_add", "fetch_sub", "fetch_or", "fetch_and",
        "exchange",  "compare_exchange_weak", "compare_exchange_strong",
        "store",     "load",      "notify_all", "notify_one"};
    return kAtomics.count(m) != 0;
  }

  /// True when a synchronization token appears between the innermost `{`
  /// enclosing `pos` (inside the lambda body) and `pos` itself — the
  /// "guard in the same block" escape hatch.
  [[nodiscard]] static bool guarded_in_block(const std::vector<Token>& toks,
                                             const LambdaInfo& lam,
                                             std::size_t pos) {
    static const std::set<std::string> kSync = {
        "lock_guard", "unique_lock", "scoped_lock",
        "mutex",      "atomic",      "condition_variable"};
    std::size_t block_open = lam.body_begin;
    int depth = 0;
    for (std::size_t j = pos; j-- > lam.body_begin;) {
      if (is_punct(toks[j], "}")) {
        ++depth;
        continue;
      }
      if (is_punct(toks[j], "{")) {
        if (depth == 0) {
          block_open = j;
          break;
        }
        --depth;
      }
    }
    for (std::size_t j = block_open; j < pos; ++j) {
      if (toks[j].kind == TokenKind::kIdentifier &&
          kSync.count(toks[j].text) != 0) {
        return true;
      }
    }
    return false;
  }

  /// True when `name` is declared inside the lambda itself (parameter or
  /// body-local): some occurrence in (lam.begin, pos] directly follows a
  /// type-ish token.
  [[nodiscard]] static bool declared_in_lambda(const std::vector<Token>& toks,
                                               const LambdaInfo& lam,
                                               std::size_t pos,
                                               const std::string& name) {
    static const std::set<std::string> kNotTypes = {"return", "case", "goto",
                                                    "new",    "delete"};
    for (std::size_t j = lam.begin + 1; j <= pos && j < toks.size(); ++j) {
      if (toks[j].kind != TokenKind::kIdentifier || toks[j].text != name ||
          j == 0) {
        continue;
      }
      const Token& prev = toks[j - 1];
      if (prev.kind == TokenKind::kIdentifier &&
          kNotTypes.count(prev.text) == 0) {
        return true;
      }
      if (is_punct(prev, "&") || is_punct(prev, "*") || is_punct(prev, ">")) {
        return true;
      }
    }
    return false;
  }

  void check_lambda(const SourceFile& file, const LambdaInfo& lam,
                    std::vector<Finding>& out) const {
    const auto& toks = file.tokens;
    std::set<std::string> by_ref;
    for (const LambdaCapture& cap : lam.captures) {
      if (cap.by_ref) by_ref.insert(cap.name);
    }

    std::set<std::string> flagged;  // one finding per name per lambda
    for (std::size_t i = lam.body_begin + 1; i < lam.body_end; ++i) {
      const Token& t = toks[i];
      if (t.kind != TokenKind::kIdentifier || flagged.count(t.text) != 0) {
        continue;
      }
      // `x.field = ...` mutates x, not `field`; qualified names are not
      // captures either.
      if (i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "::"))) {
        continue;
      }
      if (i > 1 && is_punct(toks[i - 1], ">") && is_punct(toks[i - 2], "-")) {
        continue;
      }
      const bool explicit_ref = by_ref.count(t.text) != 0;
      if (!explicit_ref && !lam.default_ref) continue;

      std::size_t mut = mutation_at(toks, i, lam.body_end);
      if (mut == 0) continue;
      if (!explicit_ref) {
        // Default [&] capture: only names that exist before the lambda and
        // are not redeclared inside it refer to shared state.
        if (declared_in_lambda(toks, lam, i, t.text)) continue;
        bool seen_before = false;
        for (std::size_t j = 0; j < lam.begin; ++j) {
          if (toks[j].kind == TokenKind::kIdentifier &&
              toks[j].text == t.text) {
            seen_before = true;
            break;
          }
        }
        if (!seen_before) continue;
      }
      if (guarded_in_block(toks, lam, i)) continue;
      flagged.insert(t.text);
      report(out, id(), file, t.line, t.col,
             "job lambda mutates by-reference-captured '" + t.text +
                 "' without an atomic operation or a lock in the same "
                 "block; campaign workers run this concurrently — guard it "
                 "or make it per-job state");
    }
  }

  /// Returns a nonzero token index when the identifier at `i` is mutated
  /// right here (assignment, compound assignment, inc/dec, subscript store,
  /// or a mutating member call); atomic member calls do not count.
  [[nodiscard]] static std::size_t mutation_at(const std::vector<Token>& toks,
                                               std::size_t i,
                                               std::size_t end) {
    // Prefix ++x / --x.
    if (i >= 2 && ((is_punct(toks[i - 1], "+") && is_punct(toks[i - 2], "+")) ||
                   (is_punct(toks[i - 1], "-") && is_punct(toks[i - 2], "-")))) {
      return i;
    }
    std::size_t j = i + 1;
    // Subscript chain: name[...]... then look at what follows.
    while (j < end && is_punct(toks[j], "[")) {
      j = match_forward(toks, j, "[", "]") + 1;
    }
    if (j >= end) return 0;
    // Postfix ++ / --.
    if (j + 1 < end && ((is_punct(toks[j], "+") && is_punct(toks[j + 1], "+")) ||
                        (is_punct(toks[j], "-") && is_punct(toks[j + 1], "-")))) {
      return j;
    }
    // Plain assignment `= expr` (not `==`).
    if (is_punct(toks[j], "=") && !(j + 1 < end && is_punct(toks[j + 1], "="))) {
      return j;
    }
    // Compound assignment `+=` and friends (two tokens in this lexer).
    if (j + 1 < end && is_punct(toks[j + 1], "=") &&
        (is_punct(toks[j], "+") || is_punct(toks[j], "-") ||
         is_punct(toks[j], "*") || is_punct(toks[j], "/") ||
         is_punct(toks[j], "%") || is_punct(toks[j], "&") ||
         is_punct(toks[j], "|") || is_punct(toks[j], "^"))) {
      return j;
    }
    // Member call `.method(...)`.
    if (is_punct(toks[j], ".") && j + 2 < end &&
        toks[j + 1].kind == TokenKind::kIdentifier &&
        is_punct(toks[j + 2], "(")) {
      if (is_atomic_method(toks[j + 1].text)) return 0;
      if (is_mutating_method(toks[j + 1].text)) return j + 1;
    }
    return 0;
  }
};

// -- R13 --------------------------------------------------------------------

class FloatEqualityRule final : public Rule {
 public:
  [[nodiscard]] std::string id() const override { return "float-equality"; }
  [[nodiscard]] std::string description() const override {
    return "R13: no ==/!= on floating-point operands outside the matcher "
           "(src/memo/match.*)";
  }

  void check(const SourceFile& file, const RepoIndex& /*repo*/,
             std::vector<Finding>& out) const override {
    if (file.display_path.find("memo/match.") != std::string::npos) return;
    const auto& toks = file.tokens;

    // Identifiers declared float/double (by value) in this file, scoped to
    // the enclosing function body so a `float n` in one function does not
    // taint an unrelated `n` elsewhere. Pointer declarations are skipped:
    // comparing the pointer itself is fine.
    struct FloatDecl {
      std::string name;
      std::size_t begin = 0;  ///< token span the declaration is visible in
      std::size_t end = 0;
    };
    std::vector<FloatDecl> decls;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!is_id(toks[i], "float") && !is_id(toks[i], "double")) continue;
      std::size_t j = i + 1;
      if (j < toks.size() && is_punct(toks[j], "&")) ++j;  // reference: value
      if (j >= toks.size() || toks[j].kind != TokenKind::kIdentifier) {
        continue;
      }
      FloatDecl d;
      d.name = toks[j].text;
      const FunctionSpan* fn = enclosing_function(file.functions, i);
      d.begin = fn != nullptr ? fn->body_begin : 0;
      d.end = fn != nullptr ? fn->body_end : toks.size();
      decls.push_back(std::move(d));
    }

    for (std::size_t i = 1; i + 2 < toks.size(); ++i) {
      bool is_eq = false;
      if (is_punct(toks[i], "=") && is_punct(toks[i + 1], "=")) {
        // `==`, not the tail of !=, <=, >=, or a chained =.
        if (is_punct(toks[i - 1], "=") || is_punct(toks[i - 1], "!") ||
            is_punct(toks[i - 1], "<") || is_punct(toks[i - 1], ">")) {
          continue;
        }
        is_eq = true;
      } else if (is_punct(toks[i], "!") && is_punct(toks[i + 1], "=")) {
        is_eq = true;
      }
      if (!is_eq) continue;
      if (is_floaty(toks, i - 1, i, decls) ||
          is_floaty(toks, i + 2, i, decls)) {
        report(out, id(), file, toks[i].line, toks[i].col,
               "floating-point equality comparison outside the matcher; "
               "compare bit patterns via tmemo::float_to_bits, use an "
               "explicit epsilon, or move the comparison into "
               "src/memo/match.*");
        i += 2;
      }
    }
  }

 private:
  template <typename Decls>
  [[nodiscard]] static bool is_floaty(const std::vector<Token>& toks,
                                      std::size_t pos, std::size_t op_pos,
                                      const Decls& decls) {
    const Token& t = toks[pos];
    if (t.kind == TokenKind::kIdentifier) {
      // A member chain / call result has unknown type; a qualified or
      // member-accessed name is not the tracked local.
      if (pos + 1 < toks.size() &&
          (is_punct(toks[pos + 1], ".") || is_punct(toks[pos + 1], "(") ||
           is_punct(toks[pos + 1], "::"))) {
        return false;
      }
      if (pos > 0 && (is_punct(toks[pos - 1], ".") ||
                      is_punct(toks[pos - 1], "::"))) {
        return false;
      }
      for (const auto& d : decls) {
        if (d.name == t.text && op_pos >= d.begin && op_pos <= d.end) {
          return true;
        }
      }
      return false;
    }
    if (t.kind != TokenKind::kNumber) return false;
    if (t.text.size() > 1 && t.text[0] == '0' &&
        (t.text[1] == 'x' || t.text[1] == 'X')) {
      return false;  // hex literal; trailing f is a digit
    }
    if (t.text.find('.') != std::string::npos) return true;
    const char last = t.text.back();
    return last == 'f' || last == 'F';
  }
};

} // namespace

void append_index_rules(std::vector<std::unique_ptr<Rule>>& out) {
  out.push_back(std::make_unique<PodProtocolRule>());
  out.push_back(std::make_unique<SyscallDisciplineRule>());
  out.push_back(std::make_unique<ProbeCostRule>());
  out.push_back(std::make_unique<CampaignDeterminismRule>());
  out.push_back(std::make_unique<FloatEqualityRule>());
}

} // namespace tmemo::lint
