// Phase-1 cross-file index for tmemo_lint.
//
// The v1 linter ran every rule against one file's token stream at a time;
// the protocol/concurrency rules (R9-R13, docs/STATIC_ANALYSIS.md) need
// repo-wide knowledge: which structs cross the pod_io wire (and what their
// computed layout is), where functions are defined and called, which files
// include which headers, and what every lambda captures. build_file_index()
// extracts that per file, merge_indexes() folds the per-file views into one
// RepoIndex, and phase 2 hands both to the rules.
//
// Everything here is heuristic token-shape analysis, not a C++ parser:
// unknown constructs degrade to "layout not computable" rather than wrong
// answers, and the index only ever *adds* information on top of the token
// stream the per-file rules already see.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "function_scan.hpp"
#include "lexer.hpp"

namespace tmemo::lint {

/// One data member of an indexed struct.
struct StructField {
  std::string name;
  std::string type;          ///< last type identifier, e.g. "uint32_t"
  std::size_t size = 0;      ///< element size in bytes; 0 when unknown
  std::size_t align = 0;     ///< natural alignment; 0 when unknown
  std::size_t offset = 0;    ///< computed offset (valid when computable)
  std::size_t count = 1;     ///< array element count (C array / std::array)
  bool fixed_width = false;  ///< width identical on every ABI (uint32_t yes,
                             ///< long/size_t no)
  int line = 0;
};

/// One struct/class definition with its natural-alignment layout.
struct StructLayout {
  std::string name;
  std::string file;  ///< display path of the defining file
  int line = 0;
  int col = 0;
  std::vector<StructField> fields;
  std::size_t size = 0;     ///< sizeof under natural alignment; 0 unknown
  std::size_t padding = 0;  ///< internal + tail padding bytes
  bool computable = false;  ///< every field had a known size
  bool plain = true;        ///< no base classes / virtual members seen
};

/// One call site: `callee(...)` by unqualified name.
struct CallSite {
  std::string callee;
  std::string file;
  int line = 0;
  int col = 0;
};

/// One entry of a lambda capture list.
struct LambdaCapture {
  std::string name;
  bool by_ref = false;
};

/// One lambda expression: captures plus body token span.
struct LambdaInfo {
  int line = 0;
  int col = 0;
  std::vector<LambdaCapture> captures;  ///< explicit captures only
  bool default_ref = false;             ///< [&...]
  bool default_copy = false;            ///< [=...]
  std::size_t begin = 0;       ///< token index of the opening '['
  std::size_t body_begin = 0;  ///< token index of the body '{'
  std::size_t body_end = 0;    ///< token index of the matching '}'
  std::string bound_name;      ///< `auto NAME = [...]`, when present
};

/// How a struct crosses the write_pod/read_pod wire.
enum class WireUse : std::uint8_t {
  kNone = 0,
  kFieldwise = 1,  ///< members serialized one by one
  kWhole = 2,      ///< the struct object itself is the pod argument
};

/// What the static_assert guards near a struct actually check.
struct AssertGuard {
  bool trivially_copyable = false;  ///< is_trivially_copyable_v<S> asserted
  bool sizeof_checked = false;      ///< sizeof(S) asserted in the same guard
};

/// Root of one write_pod/read_pod value argument, pre-resolution: the
/// variable name is mapped to a struct through var_types at merge time.
struct PodArg {
  std::string var;
  bool member_access = false;  ///< argument was `var.field`, not `var`
  int line = 0;
};

/// Everything phase 1 learns from a single file.
struct FileIndex {
  std::string display_path;
  std::vector<std::string> includes;  ///< direct #include paths, as written
  std::vector<StructLayout> structs;
  std::vector<std::string> function_defs;
  std::vector<CallSite> calls;
  std::vector<LambdaInfo> lambdas;
  std::vector<PodArg> pod_args;
  /// Declared variable name -> type identifier, for plain `Type name`
  /// declarations (the only shape pod-arg resolution needs).
  std::map<std::string, std::string> var_types;
  /// Identifier -> guard flags, for every identifier that appears inside a
  /// static_assert(...) argument list. Merge keeps only struct names.
  std::map<std::string, AssertGuard> assert_mentions;
};

/// The merged repo-wide view phase 2 runs against.
struct RepoIndex {
  std::map<std::string, StructLayout> structs;  ///< by name; first def wins
  std::map<std::string, std::vector<std::string>> function_defs;
  std::map<std::string, std::vector<CallSite>> calls_by_callee;
  std::map<std::string, std::set<std::string>> include_edges;
  std::map<std::string, WireUse> wire_use;
  std::map<std::string, AssertGuard> assert_guards;

  /// Stable fingerprint over everything the cross-file rules consume, used
  /// to key the incremental cache: if the digest is unchanged, a file's
  /// findings depend only on its own bytes.
  [[nodiscard]] std::uint64_t digest() const;
};

/// FNV-1a 64-bit, the repo-internal content hash for the lint cache.
[[nodiscard]] std::uint64_t fnv1a(const std::string& bytes,
                                  std::uint64_t seed = 1469598103934665603ull);

[[nodiscard]] FileIndex build_file_index(
    const std::string& display_path, const std::vector<Token>& tokens,
    const LexResult& lexed, const std::vector<FunctionSpan>& functions);

[[nodiscard]] RepoIndex merge_indexes(const std::vector<FileIndex>& files);

} // namespace tmemo::lint
