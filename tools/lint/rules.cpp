// The repo-invariant rules R1..R8 and R14 (see docs/STATIC_ANALYSIS.md).
//
// Every rule works on the token stream produced by lexer.cpp, scoped where
// needed by the function spans from function_scan.cpp. Pattern identifiers
// ("rand", "reinterpret_cast", ...) appear below only inside string
// literals, so tmemo_lint stays clean under its own rules.
#include "rule.hpp"

#include <algorithm>
#include <cctype>
#include <set>

namespace tmemo::lint {

namespace {

[[nodiscard]] std::string lower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

[[nodiscard]] bool is_id(const Token& t, const char* text) noexcept {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

[[nodiscard]] bool is_punct(const Token& t, const char* text) noexcept {
  return t.kind == TokenKind::kPunct && t.text == text;
}

[[nodiscard]] bool next_is_punct(const std::vector<Token>& toks,
                                 std::size_t i, const char* text) noexcept {
  return i + 1 < toks.size() && is_punct(toks[i + 1], text);
}

[[nodiscard]] bool prev_is_punct(const std::vector<Token>& toks,
                                 std::size_t i, const char* text) noexcept {
  return i > 0 && is_punct(toks[i - 1], text);
}

[[nodiscard]] std::size_t match_forward(const std::vector<Token>& toks,
                                        std::size_t i, const char* open,
                                        const char* close) {
  int depth = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    if (is_punct(toks[j], open)) ++depth;
    if (is_punct(toks[j], close)) {
      --depth;
      if (depth == 0) return j;
    }
  }
  return toks.size();
}

void report(std::vector<Finding>& out, const std::string& rule,
            const SourceFile& file, const Token& at, std::string message) {
  out.push_back(
      Finding{rule, file.display_path, at.line, at.col, std::move(message)});
}

/// True when token range [begin, end] contains identifier `text`.
[[nodiscard]] bool range_has_id(const std::vector<Token>& toks,
                                std::size_t begin, std::size_t end,
                                const char* text) {
  for (std::size_t i = begin; i <= end && i < toks.size(); ++i) {
    if (is_id(toks[i], text)) return true;
  }
  return false;
}

// -- R1 ---------------------------------------------------------------------

class NondeterminismRule final : public Rule {
 public:
  [[nodiscard]] std::string id() const override { return "nondeterminism"; }
  [[nodiscard]] std::string description() const override {
    return "R1: no wall-clock/OS-entropy nondeterminism sources in "
           "simulation or result paths";
  }

  void check(const SourceFile& file, const RepoIndex& /*repo*/,
             std::vector<Finding>& out) const override {
    static const std::set<std::string> kRandCalls = {
        "rand", "srand", "rand_r", "drand48", "lrand48", "mrand48"};
    static const std::set<std::string> kTimeCalls = {
        "time", "clock", "gettimeofday", "clock_gettime", "localtime",
        "gmtime", "mktime", "ftime"};
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokenKind::kIdentifier) continue;
      if (kRandCalls.count(t.text) != 0 && next_is_punct(toks, i, "(")) {
        report(out, id(), file, t,
               t.text + "() is an unseeded nondeterminism source; draw from "
                        "a seeded tmemo::Xorshift128 instead");
      } else if (t.text == "random_device") {
        report(out, id(), file, t,
               "std::random_device yields OS entropy; simulations must be "
               "reproducible from an explicit seed");
      } else if (kTimeCalls.count(t.text) != 0 &&
                 next_is_punct(toks, i, "(")) {
        report(out, id(), file, t,
               t.text + "() reads the wall clock; results must not depend "
                        "on when a run happens");
      } else if (t.text == "now" && next_is_punct(toks, i, "(") &&
                 (prev_is_punct(toks, i, "::") ||
                  prev_is_punct(toks, i, "."))) {
        const FunctionSpan* fn = enclosing_function(file.functions, i);
        const bool in_wall_timer =
            fn != nullptr && lower(fn->name).find("wall") != std::string::npos;
        if (!in_wall_timer) {
          report(out, id(), file, t,
                 "clock ::now() outside wall-clock timing code; confine "
                 "wall-clock reads to a function whose name contains 'wall' "
                 "(its value may feed wall_ms fields only)");
        }
      }
    }
  }
};

// -- R2 ---------------------------------------------------------------------

class UnorderedIterationRule final : public Rule {
 public:
  [[nodiscard]] std::string id() const override {
    return "unordered-iteration";
  }
  [[nodiscard]] std::string description() const override {
    return "R2: no iteration over unordered containers in files that write "
           "campaign/CSV/JSON results";
  }

  void check(const SourceFile& file, const RepoIndex& /*repo*/,
             std::vector<Finding>& out) const override {
    const auto& toks = file.tokens;
    if (!writes_results(toks)) return;

    static const std::set<std::string> kUnorderedTypes = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};

    // Names of variables/parameters declared with an unordered type.
    std::set<std::string> tracked;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier ||
          kUnorderedTypes.count(toks[i].text) == 0) {
        continue;
      }
      std::size_t j = i + 1;
      if (j < toks.size() && is_punct(toks[j], "<")) {
        j = match_forward(toks, j, "<", ">") + 1;
      }
      while (j < toks.size() &&
             (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
              is_id(toks[j], "const"))) {
        ++j;
      }
      if (j < toks.size() && toks[j].kind == TokenKind::kIdentifier) {
        tracked.insert(toks[j].text);
      }
    }

    static const std::set<std::string> kBeginCalls = {"begin", "cbegin",
                                                      "rbegin", "crbegin"};
    for (std::size_t i = 0; i < toks.size(); ++i) {
      // Range-for whose range expression names a tracked variable or an
      // unordered type directly.
      if (is_id(toks[i], "for") && next_is_punct(toks, i, "(")) {
        const std::size_t close = match_forward(toks, i + 1, "(", ")");
        std::size_t colon = toks.size();
        int depth = 0;
        for (std::size_t j = i + 1; j < close; ++j) {
          if (is_punct(toks[j], "(")) ++depth;
          if (is_punct(toks[j], ")")) --depth;
          if (depth == 1 && is_punct(toks[j], ":")) {
            colon = j;
            break;
          }
        }
        if (colon >= close) continue;
        for (std::size_t j = colon + 1; j < close; ++j) {
          if (toks[j].kind != TokenKind::kIdentifier) continue;
          if (tracked.count(toks[j].text) != 0 ||
              kUnorderedTypes.count(toks[j].text) != 0) {
            report(out, id(), file, toks[i],
                   "range-for over unordered container '" + toks[j].text +
                       "' in a result-writing file; iteration order is "
                       "unspecified — use std::map or a sorted vector");
            break;
          }
        }
      }
      // Explicit iterator walk: tracked.begin() and friends.
      if (toks[i].kind == TokenKind::kIdentifier &&
          tracked.count(toks[i].text) != 0 && next_is_punct(toks, i, ".") &&
          i + 2 < toks.size() &&
          toks[i + 2].kind == TokenKind::kIdentifier &&
          kBeginCalls.count(toks[i + 2].text) != 0 &&
          next_is_punct(toks, i + 2, "(")) {
        report(out, id(), file, toks[i],
               "iterator walk over unordered container '" + toks[i].text +
                   "' in a result-writing file; iteration order is "
                   "unspecified — use std::map or a sorted vector");
      }
    }
  }

 private:
  /// A file is a result writer when any identifier mentions csv/json —
  /// writers, escapers and schema emitters all do.
  [[nodiscard]] static bool writes_results(const std::vector<Token>& toks) {
    for (const Token& t : toks) {
      if (t.kind != TokenKind::kIdentifier) continue;
      const std::string l = lower(t.text);
      if (l.find("csv") != std::string::npos ||
          l.find("json") != std::string::npos) {
        return true;
      }
    }
    return false;
  }
};

// -- R3 ---------------------------------------------------------------------

class TypePunningRule final : public Rule {
 public:
  [[nodiscard]] std::string id() const override { return "type-punning"; }
  [[nodiscard]] std::string description() const override {
    return "R3: no reinterpret_cast type punning outside the write_pod/"
           "read_pod serialization helpers";
  }

  void check(const SourceFile& file, const RepoIndex& /*repo*/,
             std::vector<Finding>& out) const override {
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!is_id(toks[i], "reinterpret_cast")) continue;
      const FunctionSpan* fn = enclosing_function(file.functions, i);
      if (fn != nullptr && (fn->name == "write_pod" || fn->name == "read_pod")) {
        continue;  // the whitelisted serialization pair (src/trace/trace.cpp)
      }
      report(out, id(), file, toks[i],
             "reinterpret_cast type punning; use tmemo::float_to_bits/"
             "std::bit_cast for value punning or the write_pod/read_pod "
             "helpers for binary I/O");
    }
  }
};

// -- R4 ---------------------------------------------------------------------

class EnergyPairingRule final : public Rule {
 public:
  [[nodiscard]] std::string id() const override { return "energy-pairing"; }
  [[nodiscard]] std::string description() const override {
    return "R4: every execute/issue path that computes an FP result must "
           "charge the EnergyAccumulator (directly or via ExecutionRecord)";
  }

  void check(const SourceFile& file, const RepoIndex& /*repo*/,
             std::vector<Finding>& out) const override {
    const std::string& p = file.display_path;
    const bool in_scope = p.find("src/fpu/") != std::string::npos ||
                          p.find("src/gpu/") != std::string::npos ||
                          p.find("src/memo/") != std::string::npos;
    if (!in_scope) return;
    for (const FunctionSpan& fn : file.functions) {
      const bool execish =
          fn.name.rfind("execute", 0) == 0 || fn.name == "issue";
      if (!execish) continue;
      if (!range_has_id(file.tokens, fn.body_begin, fn.body_end,
                        "evaluate_fp_op")) {
        continue;
      }
      const bool charges =
          range_has_id(file.tokens, fn.body_begin, fn.body_end, "consume") ||
          range_has_id(file.tokens, fn.body_begin, fn.body_end,
                       "ExecutionRecord") ||
          range_has_id(file.tokens, fn.body_begin, fn.body_end,
                       "EnergyAccumulator") ||
          range_has_id(file.tokens, fn.body_begin, fn.body_end, "charge");
      if (!charges) {
        out.push_back(Finding{
            id(), file.display_path, fn.name_line, fn.name_col,
            "'" + fn.name +
                "' computes an FP result (evaluate_fp_op) but never reaches "
                "the EnergyAccumulator — emit an ExecutionRecord to a sink "
                "or charge() the accumulator"});
      }
    }
  }
};

// -- R5 ---------------------------------------------------------------------

class DeprecatedRunApiRule final : public Rule {
 public:
  [[nodiscard]] std::string id() const override {
    return "deprecated-run-api";
  }
  [[nodiscard]] std::string description() const override {
    return "R5: no calls to the deprecated run_at_* wrappers; use "
           "Simulation::run(workload, RunSpec)";
  }

  void check(const SourceFile& file, const RepoIndex& /*repo*/,
             std::vector<Finding>& out) const override {
    static const std::set<std::string> kWrappers = {"run_at_error_rate",
                                                    "run_at_voltage"};
    for (const Token& t : file.tokens) {
      if (t.kind == TokenKind::kIdentifier && kWrappers.count(t.text) != 0) {
        report(out, id(), file, t,
               "'" + t.text +
                   "' is deprecated; build a RunSpec (RunSpec::at_error_rate/"
                   "at_voltage) and call Simulation::run(workload, spec)");
      }
    }
  }
};

// -- R6 ---------------------------------------------------------------------

class RngSeedRule final : public Rule {
 public:
  [[nodiscard]] std::string id() const override { return "rng-seed"; }
  [[nodiscard]] std::string description() const override {
    return "R6: every RNG construction must take an explicit seed "
           "expression";
  }

  void check(const SourceFile& file, const RepoIndex& /*repo*/,
             std::vector<Finding>& out) const override {
    static const std::set<std::string> kRngTypes = {
        "Xorshift128",   "mt19937",      "mt19937_64",
        "minstd_rand",   "minstd_rand0", "default_random_engine",
        "ranlux24_base", "ranlux48_base"};
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier ||
          kRngTypes.count(toks[i].text) == 0) {
        continue;
      }
      // Skip the type's own definition and qualified mentions.
      if (i > 0 && (is_id(toks[i - 1], "class") ||
                    is_id(toks[i - 1], "struct") ||
                    is_id(toks[i - 1], "explicit"))) {
        continue;
      }
      if (next_is_punct(toks, i, "::")) continue;
      const std::string& type = toks[i].text;
      std::size_t j = i + 1;
      // `Type()` / `Type{}` temporaries.
      if (j < toks.size() &&
          ((is_punct(toks[j], "(") && match_forward(toks, j, "(", ")") == j + 1) ||
           (is_punct(toks[j], "{") && match_forward(toks, j, "{", "}") == j + 1))) {
        report(out, id(), file, toks[i],
               "'" + type + "' constructed without a seed; pass an explicit "
                            "seed expression so runs are reproducible");
        continue;
      }
      // `Type name ...` declarations.
      if (j >= toks.size() || toks[j].kind != TokenKind::kIdentifier) continue;
      const std::size_t k = j + 1;
      if (k >= toks.size()) continue;
      const bool empty_init =
          (is_punct(toks[k], "(") && match_forward(toks, k, "(", ")") == k + 1) ||
          (is_punct(toks[k], "{") && match_forward(toks, k, "{", "}") == k + 1);
      const bool bare = is_punct(toks[k], ";");
      if (empty_init) {
        report(out, id(), file, toks[j],
               "'" + toks[j].text + "' (" + type +
                   ") constructed without a seed; pass an explicit seed "
                   "expression so runs are reproducible");
      } else if (bare && enclosing_function(file.functions, i) != nullptr) {
        // A bare declaration at class scope is a member the constructor
        // must seed (the compiler enforces that); a bare local is a
        // default-seeded stream.
        report(out, id(), file, toks[j],
               "local '" + toks[j].text + "' (" + type +
                   ") is default-constructed; pass an explicit seed "
                   "expression so runs are reproducible");
      }
    }
  }
};

// -- R7 ---------------------------------------------------------------------

class TelemetryRegistryRule final : public Rule {
 public:
  [[nodiscard]] std::string id() const override {
    return "telemetry-registry";
  }
  [[nodiscard]] std::string description() const override {
    return "R7: telemetry instruments must be obtained from a "
           "MetricRegistry (counter()/gauge()/histogram()), never "
           "constructed directly";
  }

  void check(const SourceFile& file, const RepoIndex& /*repo*/,
             std::vector<Finding>& out) const override {
    // The registry implementation is the one legitimate construction site.
    if (file.display_path.find("src/telemetry/") != std::string::npos) return;
    const auto& toks = file.tokens;
    if (!uses_telemetry(toks)) return;

    static const std::set<std::string> kInstruments = {"Counter", "Gauge",
                                                       "Histogram"};
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier ||
          kInstruments.count(toks[i].text) == 0) {
        continue;
      }
      // Skip definitions of unrelated local types with the same name and
      // nested-name mentions of the type itself.
      if (i > 0 && (is_id(toks[i - 1], "class") ||
                    is_id(toks[i - 1], "struct") ||
                    is_id(toks[i - 1], "friend") ||
                    is_id(toks[i - 1], "explicit"))) {
        continue;
      }
      if (next_is_punct(toks, i, "::")) continue;
      const std::string& type = toks[i].text;
      // Heap construction: `new Counter`, `make_unique<Counter>(...)`.
      if (i > 0 && is_id(toks[i - 1], "new")) {
        report_direct(out, file, toks[i], type);
        continue;
      }
      if (i > 1 && is_punct(toks[i - 1], "<") &&
          (is_id(toks[i - 2], "make_unique") ||
           is_id(toks[i - 2], "make_shared"))) {
        report_direct(out, file, toks[i], type);
        continue;
      }
      // Temporaries `Counter()` / `Counter{}`.
      if (next_is_punct(toks, i, "(") || next_is_punct(toks, i, "{")) {
        report_direct(out, file, toks[i], type);
        continue;
      }
      // Value declarations `Counter c ...` (references and pointers bind to
      // registry-owned instruments and are fine: the next token is & or *).
      if (i + 1 < toks.size() &&
          toks[i + 1].kind == TokenKind::kIdentifier) {
        report_direct(out, file, toks[i], type);
      }
    }
  }

 private:
  /// The rule only engages in files that talk to the telemetry subsystem:
  /// a `telemetry` namespace token or a telemetry/ include path. Unrelated
  /// local helper types that happen to be called Counter stay untouched.
  [[nodiscard]] static bool uses_telemetry(const std::vector<Token>& toks) {
    for (const Token& t : toks) {
      if (t.kind == TokenKind::kIdentifier && t.text == "telemetry") {
        return true;
      }
      if (t.kind == TokenKind::kString &&
          t.text.find("telemetry/") != std::string::npos) {
        return true;
      }
    }
    return false;
  }

  static void report_direct(std::vector<Finding>& out, const SourceFile& file,
                            const Token& at, const std::string& type) {
    report(out, "telemetry-registry", file, at,
           "'" + type +
               "' constructed outside MetricRegistry; call "
               "registry.counter()/gauge()/histogram() so the instrument is "
               "named, merged and exported with the run's snapshot");
  }
};

// -- R8 ---------------------------------------------------------------------

class InjectionSeedingRule final : public Rule {
 public:
  [[nodiscard]] std::string id() const override {
    return "injection-seeding";
  }
  [[nodiscard]] std::string description() const override {
    return "R8: fault-injector RNG streams must derive from a device or "
           "campaign seed (an argument mentioning 'seed'), never from "
           "literals or ad-hoc entropy";
  }

  void check(const SourceFile& file, const RepoIndex& /*repo*/,
             std::vector<Finding>& out) const override {
    if (!engages(file)) return;
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!is_id(toks[i], "Xorshift128")) continue;
      // Skip the type's own definition and qualified mentions.
      if (i > 0 && (is_id(toks[i - 1], "class") ||
                    is_id(toks[i - 1], "struct") ||
                    is_id(toks[i - 1], "explicit"))) {
        continue;
      }
      if (next_is_punct(toks, i, "::")) continue;
      // Locate the construction argument list: `Xorshift128(args)` /
      // `Xorshift128{args}` temporaries, or `Xorshift128 name(args)` /
      // `Xorshift128 name{args}` declarations. Bare declarations and empty
      // argument lists are R6's territory.
      std::size_t open = toks.size();
      std::size_t name = i;
      if (next_is_punct(toks, i, "(") || next_is_punct(toks, i, "{")) {
        open = i + 1;
      } else if (i + 2 < toks.size() &&
                 toks[i + 1].kind == TokenKind::kIdentifier &&
                 (is_punct(toks[i + 2], "(") || is_punct(toks[i + 2], "{"))) {
        open = i + 2;
        name = i + 1;
      } else {
        continue;
      }
      const bool paren = is_punct(toks[open], "(");
      const std::size_t close = match_forward(toks, open, paren ? "(" : "{",
                                              paren ? ")" : "}");
      if (close >= toks.size() || close == open + 1) continue;
      bool seeded = false;
      for (std::size_t j = open + 1; j < close; ++j) {
        if (toks[j].kind == TokenKind::kIdentifier &&
            lower(toks[j].text).find("seed") != std::string::npos) {
          seeded = true;
          break;
        }
      }
      if (!seeded) {
        report(out, id(), file, toks[name],
               "injector RNG constructed without a derived seed; derive the "
               "stream from the device or campaign seed (e.g. "
               "derive_fault_seed(eds_seed, salt)) so injected faults "
               "replay deterministically");
      }
    }
  }

 private:
  /// The rule engages only on injection code — files under src/inject/ or
  /// files that mention an *Injector type — so ordinary simulation code
  /// keeps R6 as its only seeding constraint.
  [[nodiscard]] static bool engages(const SourceFile& file) {
    if (file.display_path.find("src/inject/") != std::string::npos) {
      return true;
    }
    for (const Token& t : file.tokens) {
      if (t.kind == TokenKind::kIdentifier &&
          t.text.find("Injector") != std::string::npos) {
        return true;
      }
    }
    return false;
  }
};

// -- R14 --------------------------------------------------------------------

class ArtifactDurabilityRule final : public Rule {
 public:
  [[nodiscard]] std::string id() const override {
    return "artifact-durability";
  }
  [[nodiscard]] std::string description() const override {
    return "R14: final artifacts must be committed through "
           "io::AtomicFileWriter (temp, fsync, rename), never written in "
           "place with a bare ofstream";
  }

  void check(const SourceFile& file, const RepoIndex& /*repo*/,
             std::vector<Finding>& out) const override {
    // src/io/ is the one layer allowed to touch raw file primitives — it
    // is where the atomic-commit discipline is implemented.
    if (file.display_path.find("src/io/") != std::string::npos) return;
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!is_id(toks[i], "ofstream")) continue;
      // Skip definitions of unrelated local types with the same name and
      // nested-name mentions (ofstream::traits_type and friends).
      if (i > 0 && (is_id(toks[i - 1], "class") ||
                    is_id(toks[i - 1], "struct"))) {
        continue;
      }
      if (next_is_punct(toks, i, "::")) continue;
      report(out, id(), file, toks[i],
             "ofstream writes land in place — a crash or full disk leaves "
             "a torn file at the final path; commit the artifact through "
             "io::AtomicFileWriter (temp, fsync, rename), or suppress for "
             "non-artifact scratch output");
    }
  }
};

} // namespace

std::vector<std::unique_ptr<Rule>> make_default_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<NondeterminismRule>());
  rules.push_back(std::make_unique<UnorderedIterationRule>());
  rules.push_back(std::make_unique<TypePunningRule>());
  rules.push_back(std::make_unique<EnergyPairingRule>());
  rules.push_back(std::make_unique<DeprecatedRunApiRule>());
  rules.push_back(std::make_unique<RngSeedRule>());
  rules.push_back(std::make_unique<TelemetryRegistryRule>());
  rules.push_back(std::make_unique<InjectionSeedingRule>());
  append_index_rules(rules);
  rules.push_back(std::make_unique<ArtifactDurabilityRule>());
  return rules;
}

} // namespace tmemo::lint
