#include "index.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>

namespace tmemo::lint {

namespace {

[[nodiscard]] bool is_id(const Token& t, const char* text) noexcept {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

[[nodiscard]] bool is_punct(const Token& t, const char* text) noexcept {
  return t.kind == TokenKind::kPunct && t.text == text;
}

[[nodiscard]] std::size_t match_forward(const std::vector<Token>& toks,
                                        std::size_t i, const char* open,
                                        const char* close) {
  int depth = 0;
  for (std::size_t j = i; j < toks.size(); ++j) {
    if (is_punct(toks[j], open)) ++depth;
    if (is_punct(toks[j], close)) {
      --depth;
      if (depth == 0) return j;
    }
  }
  return toks.size();
}

[[nodiscard]] std::size_t round_up(std::size_t n, std::size_t align) {
  return align == 0 ? n : (n + align - 1) / align * align;
}

struct TypeInfo {
  std::size_t size = 0;
  std::size_t align = 0;
  bool fixed = false;
};

/// Primitive member types the layout computer understands. Sizes follow the
/// LP64 ABI every supported platform uses; `fixed` marks the types whose
/// width is identical on every ABI (the only ones safe on a wire).
[[nodiscard]] const std::map<std::string, TypeInfo>& type_table() {
  static const std::map<std::string, TypeInfo> kTypes = {
      {"int8_t", {1, 1, true}},    {"uint8_t", {1, 1, true}},
      {"char", {1, 1, true}},      {"bool", {1, 1, true}},
      {"int16_t", {2, 2, true}},   {"uint16_t", {2, 2, true}},
      {"int32_t", {4, 4, true}},   {"uint32_t", {4, 4, true}},
      {"float", {4, 4, true}},     {"int64_t", {8, 8, true}},
      {"uint64_t", {8, 8, true}},  {"double", {8, 8, true}},
      {"int", {4, 4, false}},      {"unsigned", {4, 4, false}},
      {"short", {2, 2, false}},    {"long", {8, 8, false}},
      {"size_t", {8, 8, false}},   {"ptrdiff_t", {8, 8, false}},
      {"intptr_t", {8, 8, false}}, {"uintptr_t", {8, 8, false}},
      {"pid_t", {4, 4, false}},
  };
  return kTypes;
}

[[nodiscard]] bool is_decl_keyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "return",   "const",     "constexpr", "static",  "else",    "case",
      "new",      "delete",    "using",     "namespace", "struct", "class",
      "enum",     "union",     "goto",      "public",  "private", "protected",
      "if",       "for",       "while",     "switch",  "do",      "break",
      "continue", "throw",     "try",       "catch",   "typedef", "template",
      "typename", "operator",  "sizeof",    "virtual", "friend",  "explicit",
      "inline",   "volatile",  "mutable",   "auto",    "void",    "this",
      "noexcept", "override",  "final",     "default", "nullptr", "true",
      "false",    "co_await",  "co_yield",  "co_return"};
  return kKeywords.count(s) != 0;
}

// ---------------------------------------------------------------------------
// Struct layout scanning.

/// Skips one member declaration whose shape we do not chart (member
/// function, static member, using alias...): advances past the next body
/// `{...}` or `;` at the current depth.
[[nodiscard]] std::size_t skip_member(const std::vector<Token>& toks,
                                      std::size_t k, std::size_t end) {
  while (k < end) {
    if (is_punct(toks[k], ";")) return k + 1;
    if (is_punct(toks[k], "{")) return match_forward(toks, k, "{", "}") + 1;
    if (is_punct(toks[k], "(")) {
      k = match_forward(toks, k, "(", ")") + 1;
      continue;
    }
    if (is_punct(toks[k], "[")) {
      k = match_forward(toks, k, "[", "]") + 1;
      continue;
    }
    ++k;
  }
  return end;
}

/// Parses the members of one struct body (tokens in (body_open, body_close))
/// into `out.fields`, then computes the natural-alignment layout.
void parse_struct_body(const std::vector<Token>& toks, std::size_t body_open,
                       std::size_t body_close, StructLayout& out) {
  std::size_t k = body_open + 1;
  bool all_known = true;
  while (k < body_close) {
    const Token& t = toks[k];
    if (is_punct(t, ";")) {
      ++k;
      continue;
    }
    if ((is_id(t, "public") || is_id(t, "private") || is_id(t, "protected")) &&
        k + 1 < body_close && is_punct(toks[k + 1], ":")) {
      k += 2;
      continue;
    }
    if (is_punct(t, "[") && k + 1 < body_close && is_punct(toks[k + 1], "[")) {
      k = match_forward(toks, k, "[", "]") + 1;  // [[attribute]]
      continue;
    }
    if (is_id(t, "virtual")) out.plain = false;
    if (is_id(t, "struct") || is_id(t, "class") || is_id(t, "enum") ||
        is_id(t, "union") || is_id(t, "static") || is_id(t, "using") ||
        is_id(t, "typedef") || is_id(t, "friend") || is_id(t, "template") ||
        is_id(t, "virtual") || is_id(t, "operator") || is_id(t, "explicit") ||
        is_id(t, "static_assert")) {
      k = skip_member(toks, k, body_close);
      continue;
    }

    // Gather one declaration up to the first structural punct. `<...>`
    // template arguments fold into the type part.
    std::vector<std::size_t> decl;  // indices of identifier tokens
    bool saw_ptr_or_ref = false;
    std::size_t tmpl_open = toks.size();
    std::size_t j = k;
    while (j < body_close) {
      const Token& d = toks[j];
      if (is_punct(d, "<")) {
        if (tmpl_open == toks.size()) tmpl_open = j;
        j = match_forward(toks, j, "<", ">") + 1;
        continue;
      }
      if (is_punct(d, "&") || is_punct(d, "*")) {
        saw_ptr_or_ref = true;
        ++j;
        continue;
      }
      if (is_punct(d, "::") || is_id(d, "const") || is_id(d, "std")) {
        ++j;
        continue;
      }
      if (d.kind == TokenKind::kIdentifier) {
        decl.push_back(j);
        ++j;
        continue;
      }
      break;  // structural punct: ; = { ( [ , :
    }
    if (j >= body_close || decl.empty()) {
      k = skip_member(toks, k, body_close);
      continue;
    }
    if (is_punct(toks[j], "(")) {
      k = skip_member(toks, k, body_close);  // member function
      continue;
    }
    if (is_punct(toks[j], ":")) {
      // Bitfield: real width depends on packing we do not model.
      all_known = false;
      k = skip_member(toks, k, body_close);
      continue;
    }

    // The last identifier is the field name; the one before it (if any) is
    // the type. `std::array<elem, N>` is resolved from the template span.
    StructField field;
    field.name = toks[decl.back()].text;
    field.line = toks[decl.back()].line;
    if (decl.size() >= 2) field.type = toks[decl[decl.size() - 2]].text;
    if (saw_ptr_or_ref) {
      field.type += "*";  // pointers/references never chart
    } else if (field.type == "array" && tmpl_open < toks.size()) {
      const std::size_t tmpl_close = match_forward(toks, tmpl_open, "<", ">");
      std::string elem;
      std::size_t count = 0;
      for (std::size_t a = tmpl_open + 1; a < tmpl_close; ++a) {
        if (toks[a].kind == TokenKind::kIdentifier && !is_id(toks[a], "std")) {
          elem = toks[a].text;
        } else if (toks[a].kind == TokenKind::kNumber) {
          count = static_cast<std::size_t>(std::stoul(toks[a].text));
        }
      }
      const auto it = type_table().find(elem);
      if (it != type_table().end() && count > 0) {
        field.type = "std::array<" + elem + "," + std::to_string(count) + ">";
        field.size = it->second.size;
        field.align = it->second.align;
        field.count = count;
        field.fixed_width = it->second.fixed;
      } else {
        field.type = "std::array<" + elem + ",?>";
      }
    } else {
      const auto it = type_table().find(field.type);
      if (it != type_table().end()) {
        field.size = it->second.size;
        field.align = it->second.align;
        field.fixed_width = it->second.fixed;
      }
    }

    // C-array suffix `name[N]`.
    std::size_t after = j;
    if (is_punct(toks[after], "[")) {
      const std::size_t close = match_forward(toks, after, "[", "]");
      if (close == after + 2 && toks[after + 1].kind == TokenKind::kNumber) {
        field.count *= static_cast<std::size_t>(
            std::stoul(toks[after + 1].text));
      } else {
        field.size = 0;  // unsized / computed extent
      }
      after = close + 1;
    }
    if (field.size == 0) all_known = false;
    out.fields.push_back(field);
    k = skip_member(toks, after, body_close);
  }

  out.computable = all_known && out.plain && !out.fields.empty();
  if (!out.computable) return;
  std::size_t offset = 0;
  std::size_t max_align = 1;
  std::size_t pad = 0;
  for (StructField& f : out.fields) {
    const std::size_t aligned = round_up(offset, f.align);
    pad += aligned - offset;
    f.offset = aligned;
    offset = aligned + f.size * f.count;
    max_align = std::max(max_align, f.align);
  }
  out.size = round_up(offset, max_align);
  out.padding = pad + (out.size - offset);
}

void scan_structs(const std::vector<Token>& toks,
                  const std::string& display_path, FileIndex& out) {
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!is_id(toks[i], "struct") && !is_id(toks[i], "class")) continue;
    std::size_t j = i + 1;
    if (is_id(toks[j], "alignas") && j + 1 < toks.size() &&
        is_punct(toks[j + 1], "(")) {
      j = match_forward(toks, j + 1, "(", ")") + 1;
    }
    if (j >= toks.size() || toks[j].kind != TokenKind::kIdentifier) continue;
    StructLayout layout;
    layout.name = toks[j].text;
    layout.file = display_path;
    layout.line = toks[j].line;
    layout.col = toks[j].col;
    ++j;
    if (j < toks.size() && is_id(toks[j], "final")) ++j;
    if (j >= toks.size()) break;
    if (is_punct(toks[j], ":")) {
      layout.plain = false;  // base classes: layout is theirs to define
      while (j < toks.size() && !is_punct(toks[j], "{") &&
             !is_punct(toks[j], ";")) {
        if (is_punct(toks[j], "<")) {
          j = match_forward(toks, j, "<", ">") + 1;
          continue;
        }
        ++j;
      }
    }
    if (j >= toks.size() || !is_punct(toks[j], "{")) continue;
    const std::size_t close = match_forward(toks, j, "{", "}");
    parse_struct_body(toks, j, close, layout);
    out.structs.push_back(std::move(layout));
  }
}

// ---------------------------------------------------------------------------
// Call sites, pod arguments, variable declarations.

void scan_calls_and_decls(const std::vector<Token>& toks,
                          const std::string& display_path, FileIndex& out) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier || is_decl_keyword(t.text)) continue;

    // Call site: `name (`.
    if (i + 1 < toks.size() && is_punct(toks[i + 1], "(")) {
      out.calls.push_back(CallSite{t.text, display_path, t.line, t.col});
      if (t.text == "write_pod" || t.text == "read_pod") {
        // Second argument: the serialized value. Walk to the first ',' at
        // depth 1 inside the argument list.
        const std::size_t close = match_forward(toks, i + 1, "(", ")");
        std::size_t comma = close;
        int depth = 0;
        for (std::size_t a = i + 1; a < close; ++a) {
          if (is_punct(toks[a], "(")) ++depth;
          if (is_punct(toks[a], ")")) --depth;
          if (depth == 1 && is_punct(toks[a], ",")) {
            comma = a;
            break;
          }
        }
        if (comma + 1 < close &&
            toks[comma + 1].kind == TokenKind::kIdentifier) {
          const bool whole = comma + 2 == close;
          const bool member = comma + 2 < close && is_punct(toks[comma + 2], ".");
          if (whole || member) {
            out.pod_args.push_back(
                PodArg{toks[comma + 1].text, member, toks[comma + 1].line});
          }
        }
      }
      continue;
    }

    // Plain declaration: `Type [&|*] name` followed by a declarator
    // terminator. Enough to resolve pod-argument variables to their type.
    std::size_t j = i + 1;
    while (j < toks.size() && (is_punct(toks[j], "&") || is_punct(toks[j], "*"))) {
      ++j;
    }
    if (j < toks.size() && j > i &&
        toks[j].kind == TokenKind::kIdentifier &&
        !is_decl_keyword(toks[j].text) && j + 1 < toks.size()) {
      const Token& after = toks[j + 1];
      if (is_punct(after, ";") || is_punct(after, "=") ||
          is_punct(after, "{") || is_punct(after, ",") ||
          is_punct(after, ")") || is_punct(after, ":")) {
        out.var_types[toks[j].text] = t.text;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Lambda captures.

/// True when the '[' at `i` can open a lambda capture list (not a
/// subscript, array extent, or attribute).
[[nodiscard]] bool opens_lambda(const std::vector<Token>& toks,
                                std::size_t i) {
  if (!is_punct(toks[i], "[")) return false;
  if (i + 1 < toks.size() && is_punct(toks[i + 1], "[")) return false;
  if (i == 0) return true;
  const Token& prev = toks[i - 1];
  if (prev.kind == TokenKind::kNumber || prev.kind == TokenKind::kString) {
    return false;
  }
  if (is_punct(prev, ")") || is_punct(prev, "]")) return false;
  if (prev.kind == TokenKind::kIdentifier) {
    // `arr[i]` subscripts — but `return [..]` and friends still open one.
    static const std::set<std::string> kExprKeywords = {
        "return", "co_return", "co_yield", "case", "in"};
    return kExprKeywords.count(prev.text) != 0;
  }
  if (is_punct(prev, "[")) return false;
  return true;
}

/// Locates the body '{' after a lambda's capture list / parameter list,
/// skipping `mutable`, `noexcept(...)`, attributes and trailing return
/// types. Returns tokens.size() when no body follows.
[[nodiscard]] std::size_t lambda_body_brace(const std::vector<Token>& toks,
                                            std::size_t j) {
  while (j < toks.size()) {
    const Token& t = toks[j];
    if (is_punct(t, "{")) return j;
    if (is_punct(t, ";") || is_punct(t, ",") || is_punct(t, ")") ||
        is_punct(t, "]") || is_punct(t, "=")) {
      return toks.size();
    }
    if (is_punct(t, "(")) {
      j = match_forward(toks, j, "(", ")") + 1;
      continue;
    }
    if (is_punct(t, "<")) {
      j = match_forward(toks, j, "<", ">") + 1;
      continue;
    }
    if (is_punct(t, "[")) {
      j = match_forward(toks, j, "[", "]") + 1;
      continue;
    }
    ++j;
  }
  return toks.size();
}

void scan_lambdas(const std::vector<Token>& toks, FileIndex& out) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!opens_lambda(toks, i)) continue;
    const std::size_t close = match_forward(toks, i, "[", "]");
    if (close >= toks.size()) continue;
    std::size_t body = lambda_body_brace(toks, close + 1);
    if (body >= toks.size()) continue;

    LambdaInfo info;
    info.line = toks[i].line;
    info.col = toks[i].col;
    info.begin = i;
    info.body_begin = body;
    info.body_end = match_forward(toks, body, "{", "}");
    if (i >= 2 && is_punct(toks[i - 1], "=") &&
        toks[i - 2].kind == TokenKind::kIdentifier) {
      info.bound_name = toks[i - 2].text;
    }

    // Capture list: items separated by ',' at depth 0.
    std::size_t a = i + 1;
    while (a < close) {
      if (is_punct(toks[a], ",")) {
        ++a;
        continue;
      }
      const bool by_ref = is_punct(toks[a], "&");
      if (by_ref) ++a;
      if (a >= close || !(toks[a].kind == TokenKind::kIdentifier)) {
        if (by_ref) info.default_ref = true;  // bare '&'
        // bare '=' default copy
        if (!by_ref && a < close && is_punct(toks[a], "=")) {
          info.default_copy = true;
          ++a;
        }
        continue;
      }
      if (is_id(toks[a], "this")) {
        ++a;
        continue;
      }
      LambdaCapture cap;
      cap.name = toks[a].text;
      cap.by_ref = by_ref;
      info.captures.push_back(cap);
      ++a;
      // Init capture `name = expr`: skip the initializer.
      while (a < close && !is_punct(toks[a], ",")) ++a;
    }
    out.lambdas.push_back(std::move(info));
  }
}

// ---------------------------------------------------------------------------
// static_assert guards.

void scan_assert_mentions(const std::vector<Token>& toks, FileIndex& out) {
  static const std::set<std::string> kMeta = {
      "std",    "static_assert",           "sizeof",
      "alignof", "is_trivially_copyable_v", "is_trivially_copyable",
      "is_standard_layout_v",              "has_unique_object_representations_v"};
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_id(toks[i], "static_assert") || !is_punct(toks[i + 1], "(")) {
      continue;
    }
    const std::size_t close = match_forward(toks, i + 1, "(", ")");
    AssertGuard flags;
    for (std::size_t a = i + 2; a < close; ++a) {
      if (is_id(toks[a], "is_trivially_copyable_v") ||
          is_id(toks[a], "is_trivially_copyable")) {
        flags.trivially_copyable = true;
      }
      if (is_id(toks[a], "sizeof")) flags.sizeof_checked = true;
    }
    for (std::size_t a = i + 2; a < close; ++a) {
      if (toks[a].kind != TokenKind::kIdentifier ||
          kMeta.count(toks[a].text) != 0) {
        continue;
      }
      AssertGuard& g = out.assert_mentions[toks[a].text];
      g.trivially_copyable |= flags.trivially_copyable;
      g.sizeof_checked |= flags.sizeof_checked;
    }
    i = close;
  }
}

[[nodiscard]] bool ends_with(const std::string& s, const std::string& tail) {
  return s.size() >= tail.size() &&
         s.compare(s.size() - tail.size(), tail.size(), tail) == 0;
}

} // namespace

std::uint64_t fnv1a(const std::string& bytes, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

FileIndex build_file_index(const std::string& display_path,
                           const std::vector<Token>& tokens,
                           const LexResult& lexed,
                           const std::vector<FunctionSpan>& functions) {
  FileIndex out;
  out.display_path = display_path;
  for (const IncludeDirective& inc : lexed.includes) {
    out.includes.push_back(inc.path);
  }
  for (const FunctionSpan& fn : functions) out.function_defs.push_back(fn.name);
  scan_structs(tokens, display_path, out);
  scan_calls_and_decls(tokens, display_path, out);
  scan_lambdas(tokens, out);
  scan_assert_mentions(tokens, out);

  // Keep only the variable types pod-argument resolution can consume.
  std::set<std::string> wanted;
  for (const PodArg& arg : out.pod_args) wanted.insert(arg.var);
  for (auto it = out.var_types.begin(); it != out.var_types.end();) {
    it = wanted.count(it->first) == 0 ? out.var_types.erase(it)
                                      : std::next(it);
  }
  return out;
}

RepoIndex merge_indexes(const std::vector<FileIndex>& files) {
  RepoIndex repo;
  for (const FileIndex& f : files) {
    for (const StructLayout& s : f.structs) {
      repo.structs.emplace(s.name, s);  // first definition wins
    }
    for (const std::string& name : f.function_defs) {
      repo.function_defs[name].push_back(f.display_path);
    }
    for (const CallSite& c : f.calls) {
      repo.calls_by_callee[c.callee].push_back(c);
    }
    for (const std::string& inc : f.includes) {
      repo.include_edges[f.display_path].insert(inc);
    }
    for (const auto& [name, guard] : f.assert_mentions) {
      AssertGuard& g = repo.assert_guards[name];
      g.trivially_copyable |= guard.trivially_copyable;
      g.sizeof_checked |= guard.sizeof_checked;
    }
  }

  // Wire use from pod-call arguments, resolved through each file's local
  // variable declarations.
  for (const FileIndex& f : files) {
    for (const PodArg& arg : f.pod_args) {
      const auto var = f.var_types.find(arg.var);
      if (var == f.var_types.end()) continue;
      if (repo.structs.count(var->second) == 0) continue;
      WireUse& use = repo.wire_use[var->second];
      const WireUse seen = arg.member_access ? WireUse::kFieldwise
                                             : WireUse::kWhole;
      if (static_cast<int>(seen) > static_cast<int>(use)) use = seen;
    }
  }

  // Wire use by naming convention: a *Frame / *Header struct defined in (or
  // directly included by) a file that talks to pod_io is a protocol type
  // even when it is serialized field by field.
  std::set<std::string> pod_files;
  for (const FileIndex& f : files) {
    if (f.display_path.find("pod_io") != std::string::npos) {
      pod_files.insert(f.display_path);
      continue;
    }
    for (const std::string& inc : f.includes) {
      if (ends_with(inc, "pod_io.hpp")) {
        pod_files.insert(f.display_path);
        break;
      }
    }
  }
  for (const auto& [name, layout] : repo.structs) {
    if (!ends_with(name, "Frame") && !ends_with(name, "Header")) continue;
    bool reachable = pod_files.count(layout.file) != 0;
    for (const std::string& pf : pod_files) {
      if (reachable) break;
      for (const std::string& inc : repo.include_edges[pf]) {
        if (ends_with(layout.file, inc)) {
          reachable = true;
          break;
        }
      }
    }
    if (reachable && repo.wire_use[name] == WireUse::kNone) {
      repo.wire_use[name] = WireUse::kFieldwise;
    }
  }
  return repo;
}

std::uint64_t RepoIndex::digest() const {
  // Canonical serialization of exactly what the cross-file rules consume;
  // std::map iteration keeps it deterministic.
  std::string canon;
  for (const auto& [name, s] : structs) {
    canon += name + '|' + s.file + '|' + std::to_string(s.size) + '|' +
             std::to_string(s.padding) + '|' +
             (s.computable ? "1" : "0") + (s.plain ? "1" : "0");
    for (const StructField& f : s.fields) {
      canon += ';' + f.name + ':' + f.type + ':' + std::to_string(f.size) +
               ':' + std::to_string(f.offset) + ':' +
               std::to_string(f.count) + ':' + (f.fixed_width ? "1" : "0");
    }
    canon += '\n';
  }
  for (const auto& [name, use] : wire_use) {
    canon += name + '=' + std::to_string(static_cast<int>(use)) + '\n';
  }
  for (const auto& [name, g] : assert_guards) {
    canon += name + '@';
    canon += g.trivially_copyable ? '1' : '0';
    canon += g.sizeof_checked ? '1' : '0';
    canon += '\n';
  }
  return fnv1a(canon);
}

} // namespace tmemo::lint
