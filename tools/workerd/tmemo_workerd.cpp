// tmemo_workerd — remote campaign worker daemon (docs/DISTRIBUTED.md).
//
// Connects to a tmemo_sim supervisor running --isolation=remote, registers
// for its campaign, and serves dispatched jobs until the supervisor closes
// the connection. The campaign grid is rebuilt from this command line —
// pass the *same* grid flags as the supervisor (they are one shared parser,
// tools/cli/spec_flags.hpp); the registration handshake rejects any drift
// with a named reason.
//
// Usage:
//   tmemo_workerd --connect HOST:PORT [grid flags...]
//                 [--journal FILE] [--connect-timeout-ms T]
//
// Every finished job can be appended to a local journal-v2 shard
// (--journal); `tmemo_journal merge` folds the shards of a distributed
// campaign into one journal that --resume accepts.
//
// Exit status: 0 after a completed campaign (supervisor closed the
// connection), 1 on connection/registration/protocol failure, 2 on a
// malformed command line.
//
// Example — two workers serving one supervisor on loopback:
//   tmemo_sim --kernel all --sweep error-rate:0:0.04:9 \
//             --isolation remote --listen 127.0.0.1:7070 &
//   tmemo_workerd --connect 127.0.0.1:7070 --kernel all \
//                 --sweep error-rate:0:0.04:9 --journal shard-a.journal &
//   tmemo_workerd --connect 127.0.0.1:7070 --kernel all \
//                 --sweep error-rate:0:0.04:9 --journal shard-b.journal &
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "cli/spec_flags.hpp"
#include "net/transport.hpp"
#include "net/workerd.hpp"

namespace {

using namespace tmemo;

struct CliOptions {
  cli::SpecFlags spec;
  net::WorkerdOptions workerd;
  bool have_connect = false;
};

void print_usage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s --connect HOST:PORT\n"
               "          %s\n"
               "          [--journal FILE] [--connect-timeout-ms T]\n"
               "Pass the same grid flags as the tmemo_sim supervisor; the\n"
               "registration handshake rejects a mismatched campaign.\n",
               argv0, cli::SpecFlags::usage_lines());
}

[[noreturn]] void fail(const std::string& message) {
  std::fprintf(stderr, "tmemo_workerd: %s (try --help)\n", message.c_str());
  std::exit(2);
}

CliOptions parse(int argc, char** argv) try {
  using cli::CliError;
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::optional<std::string> inline_value;
    if (arg.rfind("--", 0) == 0) {
      if (const std::size_t eq = arg.find('='); eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.resize(eq);
      }
    }
    auto value = [&]() -> std::string {
      if (inline_value) return *inline_value;
      if (i + 1 >= argc) throw CliError("missing value for " + arg);
      return argv[++i];
    };
    auto no_value = [&]() {
      if (inline_value) throw CliError(arg + " takes no value");
    };
    if (opt.spec.try_parse(arg, value, no_value)) {
      // Shared campaign-grid flag, handled.
    } else if (arg == "--connect") {
      const std::string text = value();
      const auto at = net::parse_host_port(text);
      if (!at) {
        throw CliError("malformed --connect '" + text +
                       "' (want HOST:PORT, e.g. 127.0.0.1:7070)");
      }
      opt.workerd.connect = *at;
      opt.have_connect = true;
    } else if (arg == "--journal") {
      opt.workerd.journal_path = value();
    } else if (arg == "--connect-timeout-ms") {
      opt.workerd.connect_timeout_ms =
          static_cast<int>(cli::parse_int_in(arg, value(), 1, 3600000));
    } else if (arg == "--help" || arg == "-h") {
      print_usage(stdout, argv[0]);
      std::exit(0);
    } else {
      throw CliError("unknown option: " + std::string(argv[i]));
    }
  }
  opt.spec.validate();
  if (!opt.have_connect) {
    throw cli::CliError("--connect HOST:PORT is required");
  }
  return opt;
} catch (const cli::CliError& e) {
  fail(e.what());
}

} // namespace

int main(int argc, char** argv) {
  const CliOptions opt = parse(argc, argv);

  const net::WorkerdOutcome outcome =
      net::run_workerd(opt.spec.to_spec(), opt.workerd);
  if (!outcome.ok) {
    std::fprintf(stderr, "tmemo_workerd: %s\n", outcome.error.c_str());
    return 1;
  }
  std::fprintf(stderr, "tmemo_workerd: campaign complete, %llu job%s served\n",
               static_cast<unsigned long long>(outcome.jobs_done),
               outcome.jobs_done == 1 ? "" : "s");
  return 0;
}
