// tmemo_workerd — remote campaign worker daemon (docs/DISTRIBUTED.md).
//
// Connects to a tmemo_sim supervisor running --isolation=remote, registers
// for its campaign, and serves dispatched jobs until the supervisor closes
// the connection. The campaign grid is rebuilt from this command line —
// pass the *same* grid flags as the supervisor (they are one shared parser,
// tools/cli/spec_flags.hpp); the registration handshake rejects any drift
// with a named reason.
//
// Usage:
//   tmemo_workerd --connect HOST:PORT [grid flags...]
//                 [--journal FILE] [--checkpoint-every N]
//                 [--connect-timeout-ms T]
//                 [--reconnect[=N]] [--reconnect-backoff-ms T]
//                 [--inject-net SPEC] [--inject-fs SPEC]
//
// Every finished job can be appended to a local journal-v2 shard
// (--journal); `tmemo_journal merge` folds the shards of a distributed
// campaign into one journal that --resume accepts.
//
// Resilience (docs/RESILIENCE.md): SIGTERM drains gracefully — the
// in-flight job finishes, the shard is flushed, and a goodbye frame lets
// the supervisor reassign cleanly. --reconnect re-dials a lost supervisor
// with jittered exponential backoff and re-registers through the digest
// handshake, surviving a supervisor restart mid-campaign. --inject-net
// applies deterministic chaos to this end's outgoing frames (see
// docs/DISTRIBUTED.md for the spec grammar).
//
// Exit status: 0 after a completed campaign (the supervisor's goodbye) or
// a graceful SIGTERM drain, 1 on registration/protocol/setup failure, 2 on
// a malformed command line, 3 when an established connection was lost (and
// the --reconnect budget, if any, ran out), 4 when the journal shard or a
// checkpoint could not be written (--inject-fs chaos or a real disk fault)
// — distinguishable so orchestration can tell "campaign complete" from
// "supervisor went away" from "this worker's disk is broken".
//
// Example — two workers serving one supervisor on loopback:
//   tmemo_sim --kernel all --sweep error-rate:0:0.04:9 \
//             --isolation remote --listen 127.0.0.1:7070 &
//   tmemo_workerd --connect 127.0.0.1:7070 --kernel all \
//                 --sweep error-rate:0:0.04:9 --journal shard-a.journal &
//   tmemo_workerd --connect 127.0.0.1:7070 --kernel all \
//                 --sweep error-rate:0:0.04:9 --journal shard-b.journal &
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "cli/spec_flags.hpp"
#include "io/fs_fault.hpp"
#include "net/fault.hpp"
#include "net/transport.hpp"
#include "net/workerd.hpp"

namespace {

using namespace tmemo;

/// Set by the SIGTERM handler; run_workerd polls it between frames and
/// after each job to drain gracefully.
volatile std::sig_atomic_t g_drain = 0;

void on_sigterm(int) { g_drain = 1; }

/// Installs the drain handler without SA_RESTART, so a SIGTERM interrupts
/// the blocking poll()/read() and the drain is noticed promptly.
void install_drain_handler() {
  struct sigaction sa = {};
  sa.sa_handler = on_sigterm;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  if (::sigaction(SIGTERM, &sa, nullptr) != 0) {
    std::perror("tmemo_workerd: sigaction(SIGTERM)");
  }
}

struct CliOptions {
  cli::SpecFlags spec;
  net::WorkerdOptions workerd;
  bool have_connect = false;
};

void print_usage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s --connect HOST:PORT\n"
               "          %s\n"
               "          [--journal FILE] [--checkpoint-every N]\n"
               "          [--connect-timeout-ms T]\n"
               "          [--reconnect[=N]] [--reconnect-backoff-ms T]\n"
               "          [--inject-net SPEC] [--inject-fs SPEC]\n"
               "Pass the same grid flags as the tmemo_sim supervisor; the\n"
               "registration handshake rejects a mismatched campaign.\n"
               "SIGTERM drains gracefully (finish the job, flush the\n"
               "shard, say goodbye). --reconnect re-dials a lost\n"
               "supervisor with jittered exponential backoff.\n",
               argv0, cli::SpecFlags::usage_lines());
}

[[noreturn]] void fail(const std::string& message) {
  std::fprintf(stderr, "tmemo_workerd: %s (try --help)\n", message.c_str());
  std::exit(2);
}

CliOptions parse(int argc, char** argv) try {
  using cli::CliError;
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::optional<std::string> inline_value;
    if (arg.rfind("--", 0) == 0) {
      if (const std::size_t eq = arg.find('='); eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.resize(eq);
      }
    }
    auto value = [&]() -> std::string {
      if (inline_value) return *inline_value;
      if (i + 1 >= argc) throw CliError("missing value for " + arg);
      return argv[++i];
    };
    auto no_value = [&]() {
      if (inline_value) throw CliError(arg + " takes no value");
    };
    if (opt.spec.try_parse(arg, value, no_value)) {
      // Shared campaign-grid flag, handled.
    } else if (arg == "--connect") {
      const std::string text = value();
      const auto at = net::parse_host_port(text);
      if (!at) {
        throw CliError("malformed --connect '" + text +
                       "' (want HOST:PORT, e.g. 127.0.0.1:7070)");
      }
      opt.workerd.connect = *at;
      opt.have_connect = true;
    } else if (arg == "--journal") {
      opt.workerd.journal_path = value();
    } else if (arg == "--connect-timeout-ms") {
      opt.workerd.connect_timeout_ms =
          static_cast<int>(cli::parse_int_in(arg, value(), 1, 3600000));
    } else if (arg == "--reconnect") {
      // Optional value: bare --reconnect keeps re-dialing (practically
      // forever); --reconnect=N bounds the consecutive failed re-dials.
      opt.workerd.reconnect_attempts =
          inline_value ? static_cast<int>(
                             cli::parse_int_in(arg, value(), 1, 1000000))
                       : 1000000;
    } else if (arg == "--reconnect-backoff-ms") {
      opt.workerd.reconnect_backoff_ms =
          static_cast<int>(cli::parse_int_in(arg, value(), 1, 60000));
    } else if (arg == "--inject-net") {
      const std::string text = value();
      opt.workerd.inject_net = net::NetFaultSpec::parse(text);
      if (!opt.workerd.inject_net) {
        throw CliError("malformed --inject-net '" + text +
                       "' (want e.g. seed=7,drop=0.02,stall=0.01,"
                       "corrupt=0.05,delay=0.2:20)");
      }
    } else if (arg == "--inject-fs") {
      const std::string text = value();
      opt.workerd.inject_fs = io::FsFaultSpec::parse(text);
      if (!opt.workerd.inject_fs) {
        throw CliError("malformed --inject-fs '" + text +
                       "' (want e.g. seed=7,short=0.02,enospc=0.01,"
                       "eio=0.01,fsync=0.01,crash=0.01,torn=0.02)");
      }
    } else if (arg == "--checkpoint-every") {
      opt.workerd.checkpoint_every = static_cast<std::size_t>(
          cli::parse_int_in(arg, value(), 1, 1000000));
    } else if (arg == "--help" || arg == "-h") {
      print_usage(stdout, argv[0]);
      std::exit(0);
    } else {
      throw CliError("unknown option: " + std::string(argv[i]));
    }
  }
  opt.spec.validate();
  if (!opt.have_connect) {
    throw cli::CliError("--connect HOST:PORT is required");
  }
  if (opt.workerd.checkpoint_every > 0 && opt.workerd.journal_path.empty()) {
    throw cli::CliError("--checkpoint-every requires --journal");
  }
  return opt;
} catch (const cli::CliError& e) {
  fail(e.what());
}

} // namespace

int main(int argc, char** argv) {
  CliOptions opt = parse(argc, argv);
  install_drain_handler();
  opt.workerd.drain_flag = &g_drain;

  const SweepSpec spec = opt.spec.to_spec();
  // The backoff jitter replays from the campaign seed (lint R8's intent:
  // no wall-clock or OS entropy anywhere in the fabric).
  opt.workerd.reconnect_seed = spec.campaign_seed;

  const net::WorkerdOutcome outcome = net::run_workerd(spec, opt.workerd);
  if (!outcome.ok) {
    std::fprintf(stderr, "tmemo_workerd: %s\n", outcome.error.c_str());
    if (outcome.artifact_error) return 4;
    return outcome.connection_lost ? 3 : 1;
  }
  std::string tail;
  if (outcome.reconnects > 0) {
    tail = ", " + std::to_string(outcome.reconnects) + " reconnect" +
           (outcome.reconnects == 1 ? "" : "s");
  }
  std::fprintf(stderr, "tmemo_workerd: %s, %llu job%s served%s\n",
               outcome.drained ? "drained (SIGTERM)" : "campaign complete",
               static_cast<unsigned long long>(outcome.jobs_done),
               outcome.jobs_done == 1 ? "" : "s", tail.c_str());
  return 0;
}
