// tmemo_sim — command-line front end of the simulator.
//
// Runs any of the seven Table-1 kernels under a chosen timing-error
// environment and prints hit rates, energy, verification and (optionally)
// per-unit detail — the one-stop entry point for exploring the model
// without writing C++.
//
// Usage:
//   tmemo_sim [--kernel NAME|all] [--error-rate R | --voltage V]
//             [--threshold T] [--scale S] [--lut-depth N]
//             [--no-memo] [--spatial] [--per-unit] [--csv]
//
// Examples:
//   tmemo_sim --kernel sobel --error-rate 0.02
//   tmemo_sim --kernel all --voltage 0.82 --per-unit
//   tmemo_sim --kernel haar --threshold 0.1 --lut-depth 8
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "common/table.hpp"
#include "sim/simulation.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace tmemo;

struct CliOptions {
  std::string kernel = "all";
  double error_rate = 0.0;
  std::optional<double> voltage;
  std::optional<float> threshold;
  double scale = 0.04;
  int lut_depth = 2;
  bool memoization = true;
  bool spatial = false;
  bool per_unit = false;
  bool csv = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--kernel NAME|all] [--error-rate R | --voltage V]\n"
      "          [--threshold T] [--scale S] [--lut-depth N]\n"
      "          [--no-memo] [--spatial] [--per-unit] [--csv]\n"
      "kernels: sobel gaussian haar binomialoption blackscholes fwt "
      "eigenvalue all\n",
      argv0);
  std::exit(2);
}

double parse_double(const char* v, const char* argv0) {
  char* end = nullptr;
  const double d = std::strtod(v, &end);
  if (end == v || *end != '\0') usage(argv0);
  return d;
}

CliOptions parse(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--kernel") {
      opt.kernel = value();
      for (char& c : opt.kernel) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
    } else if (arg == "--error-rate") {
      opt.error_rate = parse_double(value(), argv[0]);
    } else if (arg == "--voltage") {
      opt.voltage = parse_double(value(), argv[0]);
    } else if (arg == "--threshold") {
      opt.threshold = static_cast<float>(parse_double(value(), argv[0]));
    } else if (arg == "--scale") {
      opt.scale = parse_double(value(), argv[0]);
    } else if (arg == "--lut-depth") {
      opt.lut_depth = static_cast<int>(parse_double(value(), argv[0]));
    } else if (arg == "--no-memo") {
      opt.memoization = false;
    } else if (arg == "--spatial") {
      opt.spatial = true;
    } else if (arg == "--per-unit") {
      opt.per_unit = true;
    } else if (arg == "--csv") {
      opt.csv = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      usage(argv[0]);
    }
  }
  return opt;
}

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

} // namespace

int main(int argc, char** argv) {
  const CliOptions opt = parse(argc, argv);

  ExperimentConfig cfg;
  cfg.device.fpu.lut_depth = opt.lut_depth;
  cfg.memoization = opt.memoization;
  cfg.spatial = opt.spatial;
  Simulation sim(cfg);

  const auto workloads = make_all_workloads(opt.scale);

  ResultTable table("tmemo_sim results",
                    {"kernel", "param", "threshold", "env", "hit rate",
                     "E_memo (nJ)", "E_base (nJ)", "saving", "verify"});
  ResultTable units("per-unit detail",
                    {"kernel", "unit", "instructions", "hit rate",
                     "errors", "recoveries"});

  bool matched = false;
  bool all_passed = true;
  for (const auto& w : workloads) {
    if (opt.kernel != "all" && lower(w->name()) != opt.kernel) continue;
    matched = true;

    const KernelRunReport r =
        opt.voltage.has_value()
            ? sim.run_at_voltage(*w, *opt.voltage, opt.threshold)
            : sim.run_at_error_rate(*w, opt.error_rate, opt.threshold);

    const std::string env =
        opt.voltage.has_value()
            ? std::to_string(*opt.voltage).substr(0, 4) + " V"
            : std::to_string(opt.error_rate * 100.0).substr(0, 4) + "% err";
    table.begin_row()
        .add(r.kernel)
        .add(r.input_parameter)
        .add(static_cast<double>(r.threshold), 6)
        .add(env)
        .add(std::to_string(r.weighted_hit_rate * 100.0).substr(0, 5) + "%")
        .add(r.energy.memoized_pj / 1000.0, 1)
        .add(r.energy.baseline_pj / 1000.0, 1)
        .add(std::to_string(r.energy.saving() * 100.0).substr(0, 5) + "%")
        .add(r.result.passed ? "passed" : "FAILED");
    all_passed = all_passed && r.result.passed;

    if (opt.per_unit) {
      for (FpuType u : kAllFpuTypes) {
        const FpuStats& s = r.unit_stats[static_cast<std::size_t>(u)];
        if (s.instructions == 0) continue;
        units.begin_row()
            .add(r.kernel)
            .add(std::string(fpu_type_name(u)))
            .add(static_cast<unsigned long long>(s.instructions))
            .add(std::to_string(s.hit_rate() * 100.0).substr(0, 5) + "%")
            .add(static_cast<unsigned long long>(s.timing_errors))
            .add(static_cast<unsigned long long>(s.recoveries));
      }
    }
  }

  if (!matched) {
    std::fprintf(stderr, "no kernel matches '%s'\n", opt.kernel.c_str());
    usage(argv[0]);
  }

  if (opt.csv) {
    table.print_csv(std::cout);
    if (opt.per_unit) units.print_csv(std::cout);
  } else {
    table.print(std::cout);
    if (opt.per_unit) units.print(std::cout);
  }
  return all_passed ? 0 : 1;
}
