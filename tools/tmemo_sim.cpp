// tmemo_sim — command-line front end of the simulator.
//
// Runs any of the seven Table-1 kernels under a chosen timing-error
// environment — a single operating point or a whole sweep — and prints hit
// rates, energy, verification and (optionally) per-unit detail. Sweeps are
// executed by the campaign engine on a thread pool; per-job seeds derive
// from the campaign seed + job index, so results are identical for any
// --jobs value.
//
// Usage:
//   tmemo_sim [--kernel NAME|all]
//             [--error-rate R | --voltage V | --sweep AXIS:START:STOP:COUNT]
//             [--threshold T] [--scale S] [--lut-depth N]
//             [--no-memo] [--spatial] [--jobs N] [--seed S]
//             [--per-unit] [--csv] [--json FILE|-]
//             [--metrics-out FILE|-] [--metrics-format json|csv]
//             [--trace-out FILE]
//             [--inject-lut-seu R] [--inject-eds-fn R] [--inject-eds-fp R]
//             [--inject-parity] [--watchdog-budget N]
//             [--watchdog-action memo-off|guardband]
//             [--max-attempts N] [--job-timeout-ms T]
//             [--isolation thread|process|remote]
//             [--listen HOST:PORT] [--remote-local-workers N]
//             [--keepalive-ms T] [--keepalive-timeout-ms T]
//             [--inject-worker-crash JOB:SIG[:N]] [--inject-net SPEC]
//             [--journal FILE] [--resume FILE]
//             [--checkpoint-every N] [--inject-fs SPEC]
//
// The campaign-grid flags (kernel/axis/config) are shared with
// tmemo_workerd via tools/cli/spec_flags.hpp — a remote campaign passes
// the same grid flags to both tools, and the registration handshake
// rejects any drift.
//
// Flags taking a value accept both "--flag value" and "--flag=value";
// boolean flags take none. Every malformed invocation — unknown flag,
// malformed or out-of-range value, missing value — exits 2 with a one-line
// diagnostic on stderr (tested table-driven in tests/tools/cli_args_test).
// --retries N and --timeout-ms T are kept as aliases of
// --max-attempts N+1 and --job-timeout-ms T.
//
// Artifact durability (docs/RESILIENCE.md): every file artifact (--json,
// --metrics-out, --trace-out, journal checkpoints) is committed atomically
// — temp, fsync, rename — so the named path never holds a torn file.
// --inject-fs applies deterministic filesystem chaos to those commits and
// to journal appends; any artifact write failure, injected or real, exits
// 3 (distinct from 1 = jobs failed and 2 = bad command line).
//
// Examples:
//   tmemo_sim --kernel sobel --error-rate 0.02
//   tmemo_sim --kernel all --sweep error-rate:0:0.04:9 --jobs 8
//   tmemo_sim --kernel all --sweep voltage:0.9:0.8:6 --json fig11.json
//   tmemo_sim --kernel haar --threshold 0.1 --lut-depth 8 --csv
//   tmemo_sim --kernel haar --sweep error-rate:0:0.04:5
//             --metrics-out=m.json --trace-out=t.json   # see OBSERVABILITY.md
//   tmemo_sim --kernel haar --error-rate 0.02 --inject-lut-seu 1e-4
//             --inject-parity --csv              # see FAULT_INJECTION.md
//   tmemo_sim --kernel all --sweep error-rate:0:0.04:9 --journal run.journal
//   tmemo_sim --kernel all --sweep error-rate:0:0.04:9 --resume run.journal
//   tmemo_sim --kernel all --sweep error-rate:0:0.04:9 \
//             --isolation remote --listen 127.0.0.1:7070   # DISTRIBUTED.md
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>

#include "cli/spec_flags.hpp"
#include "common/table.hpp"
#include "io/atomic_file.hpp"
#include "io/fs_fault.hpp"
#include "sim/campaign.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/timeline.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace tmemo;

struct CliOptions {
  cli::SpecFlags spec;
  int jobs = 0; // 0 = hardware concurrency
  bool per_unit = false;
  bool csv = false;
  std::optional<std::string> json_path;
  std::optional<std::string> metrics_path;
  std::optional<std::string> trace_path;
  std::string metrics_format = "json";
  // Crash-safe campaign execution (docs/RESILIENCE.md, docs/DISTRIBUTED.md).
  int max_attempts = 1;
  double job_timeout_ms = 0.0;
  IsolationMode isolation = IsolationMode::kThread;
  std::optional<inject::WorkerCrashInjection> inject_worker_crash;
  std::string listen_address;
  int remote_local_workers = 0;
  // Remote-fabric liveness and chaos knobs (docs/DISTRIBUTED.md). The
  // optionals record an explicit flag so validation can insist on
  // --isolation=remote without breaking the defaults.
  std::optional<int> keepalive_interval_ms;
  std::optional<int> keepalive_timeout_ms;
  std::optional<net::NetFaultSpec> inject_net;
  std::optional<std::string> journal_path;
  std::optional<std::string> resume_path;
  // Artifact durability knobs (docs/RESILIENCE.md).
  std::optional<io::FsFaultSpec> inject_fs;
  std::size_t checkpoint_every = 0;
};

void print_usage(std::FILE* out, const char* argv0) {
  std::fprintf(
      out,
      "usage: %s %s\n"
      "          [--jobs N] [--per-unit] [--csv] [--json FILE|-]\n"
      "          [--metrics-out FILE|-] [--metrics-format json|csv]\n"
      "          [--trace-out FILE]\n"
      "          [--max-attempts N] [--job-timeout-ms T]\n"
      "          [--isolation thread|process|remote]\n"
      "          [--listen HOST:PORT] [--remote-local-workers N]\n"
      "          [--keepalive-ms T] [--keepalive-timeout-ms T]\n"
      "          [--inject-worker-crash JOB:SIG[:N]] [--inject-net SPEC]\n"
      "          [--journal FILE] [--resume FILE]\n"
      "          [--checkpoint-every N] [--inject-fs SPEC]\n"
      "sweep axes: error-rate, voltage (e.g. --sweep error-rate:0:0.04:9)\n"
      "kernels: sobel gaussian haar binomialoption blackscholes fwt "
      "eigenvalue all\n",
      argv0, cli::SpecFlags::usage_lines());
}

/// Every malformed invocation exits 2 with exactly one diagnostic line.
[[noreturn]] void fail(const std::string& message) {
  std::fprintf(stderr, "tmemo_sim: %s (try --help)\n", message.c_str());
  std::exit(2);
}

CliOptions parse(int argc, char** argv) try {
  using cli::CliError;
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    // Accept both "--flag value" and "--flag=value".
    std::string arg = argv[i];
    std::optional<std::string> inline_value;
    if (arg.rfind("--", 0) == 0) {
      if (const std::size_t eq = arg.find('='); eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.resize(eq);
      }
    }
    auto value = [&]() -> std::string {
      if (inline_value) return *inline_value;
      if (i + 1 >= argc) throw CliError("missing value for " + arg);
      return argv[++i];
    };
    // Boolean flags reject an inline value: "--csv=yes" is a typo, not a
    // request.
    auto no_value = [&]() {
      if (inline_value) throw CliError(arg + " takes no value");
    };
    if (opt.spec.try_parse(arg, value, no_value)) {
      // Shared campaign-grid flag, handled.
    } else if (arg == "--jobs") {
      // 0 is not "auto" here — omitting the flag is; an explicit zero is a
      // misconfiguration.
      opt.jobs = static_cast<int>(cli::parse_int_in(arg, value(), 1, 4096));
    } else if (arg == "--per-unit") {
      no_value();
      opt.per_unit = true;
    } else if (arg == "--csv") {
      no_value();
      opt.csv = true;
    } else if (arg == "--json") {
      opt.json_path = value();
    } else if (arg == "--metrics-out") {
      opt.metrics_path = value();
    } else if (arg == "--trace-out") {
      opt.trace_path = value();
    } else if (arg == "--max-attempts") {
      opt.max_attempts =
          static_cast<int>(cli::parse_int_in(arg, value(), 1, 1000000));
    } else if (arg == "--retries") {
      // Alias: --retries N == --max-attempts N+1.
      opt.max_attempts =
          static_cast<int>(cli::parse_int_in(arg, value(), 0, 999999)) + 1;
    } else if (arg == "--job-timeout-ms" || arg == "--timeout-ms") {
      const double t = cli::parse_num(arg, value());
      if (t < 0.0) {
        throw CliError(arg + " must be >= 0, got " + std::to_string(t));
      }
      opt.job_timeout_ms = t;
    } else if (arg == "--isolation") {
      const std::string mode = value();
      if (mode == "thread") {
        opt.isolation = IsolationMode::kThread;
      } else if (mode == "process") {
        opt.isolation = IsolationMode::kProcess;
      } else if (mode == "remote") {
        opt.isolation = IsolationMode::kRemote;
      } else {
        throw CliError("--isolation must be thread, process or remote, got '" +
                       mode + "'");
      }
    } else if (arg == "--listen") {
      opt.listen_address = value();
      if (opt.listen_address.empty()) {
        throw CliError("missing value for --listen");
      }
    } else if (arg == "--remote-local-workers") {
      opt.remote_local_workers =
          static_cast<int>(cli::parse_int_in(arg, value(), 0, 4096));
    } else if (arg == "--keepalive-ms") {
      // 0 disables liveness probing entirely.
      opt.keepalive_interval_ms =
          static_cast<int>(cli::parse_int_in(arg, value(), 0, 3600000));
    } else if (arg == "--keepalive-timeout-ms") {
      opt.keepalive_timeout_ms =
          static_cast<int>(cli::parse_int_in(arg, value(), 1, 3600000));
    } else if (arg == "--inject-net") {
      const std::string text = value();
      opt.inject_net = net::NetFaultSpec::parse(text);
      if (!opt.inject_net) {
        throw CliError("malformed --inject-net '" + text +
                       "' (want e.g. seed=7,drop=0.02,stall=0.01,"
                       "corrupt=0.05,delay=0.2:20)");
      }
    } else if (arg == "--inject-worker-crash") {
      const std::string text = value();
      opt.inject_worker_crash = inject::WorkerCrashInjection::parse(text);
      if (!opt.inject_worker_crash) {
        throw CliError("malformed --inject-worker-crash '" + text +
                       "' (want JOB:SIGNAL[:COUNT], e.g. 3:segv or "
                       "0:SIGKILL:1)");
      }
    } else if (arg == "--journal") {
      opt.journal_path = value();
    } else if (arg == "--resume") {
      opt.resume_path = value();
    } else if (arg == "--checkpoint-every") {
      opt.checkpoint_every = static_cast<std::size_t>(
          cli::parse_int_in(arg, value(), 1, 1000000));
    } else if (arg == "--inject-fs") {
      const std::string text = value();
      opt.inject_fs = io::FsFaultSpec::parse(text);
      if (!opt.inject_fs) {
        throw CliError("malformed --inject-fs '" + text +
                       "' (want e.g. seed=7,short=0.02,enospc=0.01,"
                       "eio=0.01,fsync=0.01,crash=0.01,torn=0.02)");
      }
    } else if (arg == "--metrics-format") {
      opt.metrics_format = value();
      if (opt.metrics_format != "json" && opt.metrics_format != "csv") {
        throw CliError("--metrics-format must be json or csv, got '" +
                       opt.metrics_format + "'");
      }
    } else if (arg == "--help" || arg == "-h") {
      print_usage(stdout, argv[0]);
      std::exit(0);
    } else {
      throw CliError("unknown option: " + std::string(argv[i]));
    }
  }
  opt.spec.validate();
  if (opt.inject_worker_crash && opt.isolation != IsolationMode::kProcess) {
    throw cli::CliError("--inject-worker-crash requires --isolation=process");
  }
  if (opt.isolation == IsolationMode::kRemote && opt.listen_address.empty()) {
    throw cli::CliError("--isolation=remote requires --listen HOST:PORT");
  }
  if (!opt.listen_address.empty() &&
      opt.isolation != IsolationMode::kRemote) {
    throw cli::CliError("--listen requires --isolation=remote");
  }
  if (opt.remote_local_workers > 0 &&
      opt.isolation != IsolationMode::kRemote) {
    throw cli::CliError(
        "--remote-local-workers requires --isolation=remote");
  }
  if ((opt.keepalive_interval_ms || opt.keepalive_timeout_ms) &&
      opt.isolation != IsolationMode::kRemote) {
    throw cli::CliError(
        "--keepalive-ms/--keepalive-timeout-ms require --isolation=remote");
  }
  if (opt.inject_net && opt.isolation != IsolationMode::kRemote) {
    throw cli::CliError("--inject-net requires --isolation=remote");
  }
  if (opt.checkpoint_every > 0 && !opt.journal_path && !opt.resume_path) {
    throw cli::CliError("--checkpoint-every requires --journal or --resume");
  }
  return opt;
} catch (const cli::CliError& e) {
  fail(e.what());
}

std::string env_label(const JobResult& j) {
  char buf[32];
  if (j.job.spec.axis() == RunSpec::Axis::kVoltage) {
    std::snprintf(buf, sizeof(buf), "%.2f V", j.job.axis_value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f%% err", j.job.axis_value * 100.0);
  }
  return buf;
}

/// Commits one file artifact atomically (temp → fsync → rename), with
/// --inject-fs chaos armed when requested. Returns false after printing
/// the diagnostic; callers exit 3 — artifact I/O failure, distinct from
/// "campaign jobs failed" (1) and "bad command line" (2).
template <typename Body>
bool write_artifact_file(const std::string& path,
                         const std::optional<io::FsFaultSpec>& inject_fs,
                         Body&& body) {
  try {
    io::AtomicFileWriter writer;
    if (inject_fs) {
      writer.open(path, *inject_fs);
    } else {
      writer.open(path);
    }
    body(writer.stream());
    writer.commit();
    return true;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tmemo_sim: %s\n", e.what());
    return false;
  }
}

} // namespace

int main(int argc, char** argv) {
  const CliOptions opt = parse(argc, argv);

  SweepSpec spec = opt.spec.to_spec();
  spec.metrics = opt.metrics_path.has_value();
  spec.timeline = opt.trace_path.has_value();

  CampaignRunOptions run_options;
  run_options.max_attempts = opt.max_attempts;
  run_options.job_timeout_ms = opt.job_timeout_ms;
  run_options.isolation = opt.isolation;
  run_options.inject_worker_crash = opt.inject_worker_crash;
  run_options.listen_address = opt.listen_address;
  run_options.remote_local_workers = opt.remote_local_workers;
  if (opt.keepalive_interval_ms) {
    run_options.keepalive_interval_ms = *opt.keepalive_interval_ms;
  }
  if (opt.keepalive_timeout_ms) {
    run_options.keepalive_timeout_ms = *opt.keepalive_timeout_ms;
  }
  run_options.inject_net = opt.inject_net;
  run_options.inject_fs = opt.inject_fs;
  run_options.checkpoint_every = opt.checkpoint_every;
  if (opt.journal_path) run_options.journal_path = *opt.journal_path;
  if (opt.resume_path) {
    try {
      // Checkpoint-aware: a compacted journal's completed set is its
      // sealed `<journal>.checkpoint` plus the live tail, bit-identical
      // to replaying the uncompacted journal (docs/RESILIENCE.md).
      run_options.resume =
          read_campaign_journal_with_checkpoint(*opt.resume_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    if (run_options.resume->malformed_rows > 0) {
      // A torn trailing write from a killed campaign: tolerated, but worth
      // a trace — the affected jobs simply re-run.
      std::fprintf(stderr,
                   "warning: %s: ignored %zu malformed journal row%s "
                   "(torn write from an interrupted campaign?)\n",
                   opt.resume_path->c_str(),
                   run_options.resume->malformed_rows,
                   run_options.resume->malformed_rows == 1 ? "" : "s");
    }
    // Resuming keeps journaling to the same file unless told otherwise.
    if (run_options.journal_path.empty()) {
      run_options.journal_path = *opt.resume_path;
    }
  }

  const CampaignEngine engine(opt.jobs);
  CampaignResult result;
  try {
    result = engine.run(spec, run_options);
  } catch (const std::invalid_argument& e) {
    fail(e.what());
  } catch (const std::runtime_error& e) {
    // A remote campaign that cannot bind its listen address is an
    // environment failure, not a CLI one.
    std::fprintf(stderr, "tmemo_sim: %s\n", e.what());
    return 1;
  }
  if (!result.artifact_error.empty()) {
    // The campaign finished in memory but its journal stopped persisting
    // (injected or real disk fault). Results still print below so nothing
    // is hidden, but the run exits 3: the journal on disk is incomplete.
    std::fprintf(stderr, "tmemo_sim: %s\n", result.artifact_error.c_str());
  }

  ResultTable table("tmemo_sim results",
                    {"kernel", "param", "threshold", "env", "hit rate",
                     "E_memo (nJ)", "E_base (nJ)", "saving", "verify"});
  ResultTable units("per-unit detail",
                    {"kernel", "unit", "instructions", "hit rate",
                     "errors", "recoveries"});

  for (const JobResult& j : result.jobs) {
    if (!j.ok) {
      table.begin_row()
          .add(j.job.kernel)
          .add("-")
          .add("-")
          .add(env_label(j))
          .add("-")
          .add("-")
          .add("-")
          .add("-")
          .add("ERROR: " + j.error);
      continue;
    }
    const KernelRunReport& r = j.report;
    table.begin_row()
        .add(r.kernel)
        .add(r.input_parameter)
        .add(static_cast<double>(r.threshold), 6)
        .add(env_label(j))
        .add(std::to_string(r.weighted_hit_rate * 100.0).substr(0, 5) + "%")
        .add(r.energy.memoized_pj / 1000.0, 1)
        .add(r.energy.baseline_pj / 1000.0, 1)
        .add(std::to_string(r.energy.saving() * 100.0).substr(0, 5) + "%")
        .add(r.result.passed ? "passed" : "FAILED");

    if (opt.per_unit) {
      for (FpuType u : kAllFpuTypes) {
        const FpuStats& s = r.unit_stats[static_cast<std::size_t>(u)];
        if (s.instructions == 0) continue;
        units.begin_row()
            .add(r.kernel)
            .add(std::string(fpu_type_name(u)))
            .add(static_cast<unsigned long long>(s.instructions))
            .add(std::to_string(s.hit_rate() * 100.0).substr(0, 5) + "%")
            .add(static_cast<unsigned long long>(s.timing_errors))
            .add(static_cast<unsigned long long>(s.recoveries));
      }
    }
  }

  if (opt.csv) {
    write_campaign_csv(result, std::cout);
    if (opt.per_unit) units.print_csv(std::cout);
  } else {
    table.print(std::cout);
    if (opt.per_unit) units.print(std::cout);
    if (result.jobs.size() > 1) {
      const char* noun_one = "thread";
      const char* noun_many = "threads";
      if (opt.isolation == IsolationMode::kProcess) {
        noun_one = "process";
        noun_many = "processes";
      } else if (opt.isolation == IsolationMode::kRemote) {
        noun_one = "(local or remote)";
        noun_many = "(local or remote)";
      }
      std::printf("%zu jobs, %d worker%s %s, %.0f ms total\n",
                  result.jobs.size(), result.workers,
                  result.workers == 1 ? "" : "s",
                  result.workers == 1 ? noun_one : noun_many,
                  result.wall_ms);
    }
    if (result.resumed_jobs > 0) {
      std::printf("%zu job%s restored from journal\n", result.resumed_jobs,
                  result.resumed_jobs == 1 ? "" : "s");
    }
  }

  if (opt.json_path) {
    if (*opt.json_path == "-") {
      write_campaign_json(result, std::cout);
    } else if (!write_artifact_file(
                   *opt.json_path, opt.inject_fs,
                   [&](std::ostream& out) { write_campaign_json(result, out); })) {
      return 3;
    }
  }

  if (opt.metrics_path) {
    const auto write = [&](std::ostream& out) {
      if (opt.metrics_format == "csv") {
        telemetry::write_metrics_csv(result.metrics, out);
      } else {
        telemetry::write_metrics_json(result.metrics, out);
      }
    };
    if (*opt.metrics_path == "-") {
      write(std::cout);
    } else if (!write_artifact_file(*opt.metrics_path, opt.inject_fs,
                                    write)) {
      return 3;
    }
  }

  if (opt.trace_path) {
    if (!result.timeline) {
      std::fprintf(stderr, "no timeline recorded (campaign had no jobs?)\n");
      return 1;
    }
    if (!write_artifact_file(*opt.trace_path, opt.inject_fs,
                             [&](std::ostream& out) {
                               telemetry::write_chrome_trace(*result.timeline,
                                                             out);
                             })) {
      return 3;
    }
  }

  // Stdout artifacts (--csv, --json -, --metrics-out -) can tear too — a
  // closed pipe or full disk behind a redirection must not pass as exit 0.
  std::cout.flush();
  if (!std::cout) {
    std::fprintf(stderr, "tmemo_sim: write to stdout failed\n");
    return 3;
  }

  if (!result.artifact_error.empty()) return 3;
  return result.all_passed() ? 0 : 1;
}
