// Shared campaign-grid CLI flags (tools/cli/).
//
// A distributed campaign is described twice: once on the supervisor's
// command line (tmemo_sim --isolation=remote ...) and once on every
// worker's (tmemo_workerd --connect ...). Both must expand the *same*
// SweepSpec or the handshake digest rejects the worker — so the flags that
// build the spec live here, parsed by one implementation, and the two
// tools share them verbatim. A mismatch is then a human passing different
// values, which the digest catches, never two parsers drifting apart.
//
// Parsing contract: every helper throws CliError on malformed input; each
// tool catches it, prints its own one-line "<tool>: <message> (try
// --help)" diagnostic, and exits 2 (tested table-driven in
// tests/tools/cli_args_test.cpp and workerd_cli_args_test.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>

#include "inject/fault_config.hpp"
#include "sim/campaign.hpp"

namespace tmemo::cli {

/// Malformed command line; the message is the diagnostic (tool name and
/// "(try --help)" are the catcher's to add).
class CliError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Strict finite double: rejects empty values, trailing garbage, NaN and
/// infinities — a NaN threshold or rate must never reach the simulator.
double parse_num(const std::string& flag, const std::string& v);

double parse_num_in(const std::string& flag, const std::string& v, double lo,
                    double hi);

/// Strict decimal integer: "3.5", "1e3" and "0x10" are rejected rather
/// than silently truncated.
long long parse_int_in(const std::string& flag, const std::string& v,
                       long long lo, long long hi);

std::uint64_t parse_u64(const std::string& flag, const std::string& v);

/// The campaign-grid flags: everything that determines the expanded job
/// list and per-job configs (and therefore the handshake digest). Telemetry
/// switches (SweepSpec::metrics/timeline) are deliberately absent — the
/// supervisor derives them from its output flags and remote workers take
/// them from the HelloAck.
struct SpecFlags {
  std::string kernel = "all";
  double error_rate = 0.0;
  std::optional<double> voltage;
  std::optional<SweepAxis> sweep;
  std::optional<float> threshold;
  double scale = 0.04;
  int lut_depth = 2;
  std::uint64_t seed = 0x5eed;
  bool memoization = true;
  bool spatial = false;
  inject::FaultInjectionConfig inject;

  /// Consumes `arg` if it is one of the spec flags; false means the flag
  /// belongs to the calling tool. `value` yields the flag's value (throwing
  /// CliError when it is missing); `no_value` throws when a boolean flag
  /// was given an inline "=value".
  bool try_parse(const std::string& arg,
                 const std::function<std::string()>& value,
                 const std::function<void()>& no_value);

  /// Cross-flag validation (--sweep and --voltage are mutually exclusive).
  /// Call once after the whole command line is consumed.
  void validate() const;

  /// The campaign grid these flags describe. metrics/timeline are left
  /// false; the caller sets them.
  [[nodiscard]] SweepSpec to_spec() const;

  /// Usage-text fragment listing the shared flags (no leading indent).
  [[nodiscard]] static const char* usage_lines();
};

} // namespace tmemo::cli
