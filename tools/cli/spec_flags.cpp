#include "cli/spec_flags.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string>

namespace tmemo::cli {

double parse_num(const std::string& flag, const std::string& v) {
  if (v.empty()) throw CliError("missing value for " + flag);
  char* end = nullptr;
  const double d = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') {
    throw CliError("malformed number for " + flag + ": '" + v + "'");
  }
  if (std::isnan(d)) throw CliError(flag + " must not be NaN");
  if (std::isinf(d)) throw CliError(flag + " must be finite");
  return d;
}

double parse_num_in(const std::string& flag, const std::string& v, double lo,
                    double hi) {
  const double d = parse_num(flag, v);
  if (d < lo || d > hi) {
    throw CliError(flag + " must be in [" + std::to_string(lo) + ", " +
                   std::to_string(hi) + "], got " + v);
  }
  return d;
}

long long parse_int_in(const std::string& flag, const std::string& v,
                       long long lo, long long hi) {
  if (v.empty()) throw CliError("missing value for " + flag);
  errno = 0;
  char* end = nullptr;
  const long long n = std::strtoll(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') {
    throw CliError("malformed integer for " + flag + ": '" + v + "'");
  }
  if (errno == ERANGE || n < lo || n > hi) {
    throw CliError(flag + " must be between " + std::to_string(lo) + " and " +
                   std::to_string(hi) + ", got " + v);
  }
  return n;
}

std::uint64_t parse_u64(const std::string& flag, const std::string& v) {
  if (v.empty()) throw CliError("missing value for " + flag);
  for (const char c : v) {
    if (c < '0' || c > '9') {
      throw CliError("malformed unsigned integer for " + flag + ": '" + v +
                     "'");
    }
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0' || errno == ERANGE) {
    throw CliError(flag + " is out of range: '" + v + "'");
  }
  return static_cast<std::uint64_t>(n);
}

bool SpecFlags::try_parse(const std::string& arg,
                          const std::function<std::string()>& value,
                          const std::function<void()>& no_value) {
  if (arg == "--kernel") {
    kernel = value();
    for (char& c : kernel) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
  } else if (arg == "--error-rate") {
    error_rate = parse_num_in(arg, value(), 0.0, 1.0);
  } else if (arg == "--voltage") {
    const double v = parse_num(arg, value());
    if (v <= 0.0) {
      throw CliError("--voltage must be positive, got " + std::to_string(v));
    }
    voltage = v;
  } else if (arg == "--sweep") {
    const std::string text = value();
    sweep = SweepAxis::parse(text);
    if (!sweep) {
      throw CliError("malformed --sweep '" + text +
                     "' (want AXIS:START:STOP:COUNT, e.g. "
                     "error-rate:0:0.04:9)");
    }
  } else if (arg == "--threshold") {
    const double t = parse_num(arg, value());
    if (t < 0.0) {
      throw CliError("--threshold must be >= 0, got " + std::to_string(t));
    }
    threshold = static_cast<float>(t);
  } else if (arg == "--scale") {
    const double s = parse_num(arg, value());
    if (s <= 0.0) {
      throw CliError("--scale must be positive, got " + std::to_string(s));
    }
    scale = s;
  } else if (arg == "--lut-depth") {
    lut_depth = static_cast<int>(parse_int_in(arg, value(), 1, 4096));
  } else if (arg == "--seed") {
    seed = parse_u64(arg, value());
  } else if (arg == "--no-memo") {
    no_value();
    memoization = false;
  } else if (arg == "--spatial") {
    no_value();
    spatial = true;
  } else if (arg == "--inject-lut-seu") {
    inject.lut.seu_per_cycle = parse_num_in(arg, value(), 0.0, 1.0);
  } else if (arg == "--inject-eds-fn") {
    inject.eds.false_negative_rate = parse_num_in(arg, value(), 0.0, 1.0);
  } else if (arg == "--inject-eds-fp") {
    inject.eds.false_positive_rate = parse_num_in(arg, value(), 0.0, 1.0);
  } else if (arg == "--inject-parity") {
    no_value();
    inject.lut.parity = true;
  } else if (arg == "--watchdog-budget") {
    inject.watchdog.recovery_cycle_budget = parse_u64(arg, value());
  } else if (arg == "--watchdog-action") {
    const std::string action = value();
    if (action == "memo-off") {
      inject.watchdog.action = inject::WatchdogAction::kDisableMemoization;
    } else if (action == "guardband") {
      inject.watchdog.action = inject::WatchdogAction::kRaiseGuardband;
    } else {
      throw CliError("--watchdog-action must be memo-off or guardband, got '" +
                     action + "'");
    }
  } else {
    return false;
  }
  return true;
}

void SpecFlags::validate() const {
  if (sweep && voltage) {
    throw CliError("--sweep and --voltage are mutually exclusive");
  }
}

SweepSpec SpecFlags::to_spec() const {
  SweepSpec spec;
  spec.scale = scale;
  spec.campaign_seed = seed;
  if (kernel != "all") spec.kernels = {kernel};
  if (sweep) {
    spec.axis = *sweep;
  } else if (voltage) {
    spec.axis = SweepAxis::voltage_point(*voltage);
  } else {
    spec.axis = SweepAxis::error_rate_point(error_rate);
  }
  if (threshold) spec.thresholds = {*threshold};

  ConfigVariant variant;
  variant.config.device.fpu.lut_depth = lut_depth;
  variant.config.device.fpu.inject = inject;
  variant.config.memoization = memoization;
  variant.config.spatial = spatial;
  spec.variants = {variant};
  return spec;
}

const char* SpecFlags::usage_lines() {
  return "[--kernel NAME|all]\n"
         "          [--error-rate R | --voltage V | --sweep "
         "AXIS:START:STOP:COUNT]\n"
         "          [--threshold T] [--scale S] [--lut-depth N]\n"
         "          [--no-memo] [--spatial] [--seed S]\n"
         "          [--inject-lut-seu R] [--inject-eds-fn R] "
         "[--inject-eds-fp R]\n"
         "          [--inject-parity] [--watchdog-budget N]\n"
         "          [--watchdog-action memo-off|guardband]";
}

} // namespace tmemo::cli
