// tmemo_journal — campaign-journal toolbox (docs/DISTRIBUTED.md).
//
// A distributed campaign leaves one journal-v2 file per writer: the
// supervisor's --journal plus each tmemo_workerd's --journal shard. The
// `merge` subcommand folds them into one journal that `tmemo_sim --resume`
// accepts: duplicate job indices collapse (an ok entry beats a failed one,
// then the later-listed shard wins), zero-byte shards are skipped with a
// warning, torn trailing records are dropped with a warning, and a
// fingerprint mismatch between shards is a hard error naming both files.
//
// Usage:
//   tmemo_journal merge --out MERGED [--force] [--inject-fs SPEC]
//                 SHARD [SHARD...]
//
// The merged journal is written atomically (temp → fsync → rename) and
// sealed with a record-count end sentinel, so a truncated copy is rejected
// on read. An existing non-empty --out file is refused without --force.
// Checkpointed shards (`<shard>.checkpoint` beside them) contribute
// checkpoint + live tail. --inject-fs applies deterministic filesystem
// chaos to the output commit (docs/RESILIENCE.md has the grammar).
//
// Exit status: 0 on success, 1 when the merge fails (unreadable shard,
// fingerprint mismatch, all shards empty, output exists without --force,
// output commit failed), 2 on a malformed command line.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "io/fs_fault.hpp"
#include "sim/journal_merge.hpp"

namespace {

void print_usage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s merge --out MERGED [--force] [--inject-fs SPEC]\n"
               "          SHARD [SHARD...]\n"
               "Merges journal-v2 shards of one campaign into a single\n"
               "sealed journal that tmemo_sim --resume accepts, written\n"
               "atomically. Refuses to overwrite an existing non-empty\n"
               "--out file without --force.\n",
               argv0);
}

[[noreturn]] void fail(const std::string& message) {
  std::fprintf(stderr, "tmemo_journal: %s (try --help)\n", message.c_str());
  std::exit(2);
}

} // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && (std::string(argv[1]) == "--help" ||
                    std::string(argv[1]) == "-h")) {
    print_usage(stdout, argv[0]);
    return 0;
  }
  if (argc < 2) fail("missing subcommand (want: merge)");
  const std::string command = argv[1];
  if (command != "merge") fail("unknown subcommand: " + command);

  std::string out_path;
  std::vector<std::string> shards;
  tmemo::JournalMergeOptions options;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout, argv[0]);
      return 0;
    }
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--out") {
      if (i + 1 >= argc) fail("missing value for --out");
      out_path = argv[++i];
    } else if (arg == "--force") {
      options.force = true;
    } else if (arg.rfind("--inject-fs=", 0) == 0 || arg == "--inject-fs") {
      std::string text;
      if (arg == "--inject-fs") {
        if (i + 1 >= argc) fail("missing value for --inject-fs");
        text = argv[++i];
      } else {
        text = arg.substr(12);
      }
      options.inject_fs = tmemo::io::FsFaultSpec::parse(text);
      if (!options.inject_fs) {
        fail("malformed --inject-fs '" + text +
             "' (want e.g. seed=7,short=0.02,enospc=0.01,eio=0.01,"
             "fsync=0.01,crash=0.01,torn=0.02)");
      }
    } else if (arg.rfind("--", 0) == 0) {
      fail("unknown option: " + arg);
    } else {
      shards.push_back(std::move(arg));
    }
  }
  if (out_path.empty()) fail("merge requires --out MERGED");
  if (shards.empty()) fail("merge requires at least one shard");

  tmemo::JournalMergeReport report;
  try {
    report = tmemo::merge_campaign_journals(shards, out_path, options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tmemo_journal: %s\n", e.what());
    return 1;
  }

  if (report.empty_shards > 0) {
    std::fprintf(stderr,
                 "warning: skipped %zu empty shard%s (worker killed before "
                 "its first append?)\n",
                 report.empty_shards, report.empty_shards == 1 ? "" : "s");
  }
  if (report.malformed_rows > 0) {
    std::fprintf(stderr,
                 "warning: dropped %zu torn row%s (worker killed "
                 "mid-append?)\n",
                 report.malformed_rows, report.malformed_rows == 1 ? "" : "s");
  }
  std::fprintf(stderr,
               "merged %zu shard%s: %zu record%s in, %zu out "
               "(%zu duplicate%s collapsed) -> %s\n",
               report.shards_read, report.shards_read == 1 ? "" : "s",
               report.entries_in, report.entries_in == 1 ? "" : "s",
               report.entries_out, report.duplicates_dropped,
               report.duplicates_dropped == 1 ? "" : "s", out_path.c_str());
  return 0;
}
