#include "gpu/device.hpp"

#include <gtest/gtest.h>

#include "kernel/launch.hpp"

namespace tmemo {
namespace {

GpuDevice small_device() {
  return GpuDevice(DeviceConfig::single_cu());
}

TEST(GpuDevice, Radeon5870Shape) {
  GpuDevice device;
  EXPECT_EQ(device.compute_unit_count(), 20);
  EXPECT_EQ(device.config().stream_cores_per_cu, 16);
  EXPECT_EQ(device.config().wavefront_size, 64);
  EXPECT_EQ(device.config().subwavefronts(), 4);
}

TEST(GpuDevice, ConfigValidation) {
  DeviceConfig bad;
  bad.compute_units = 0;
  EXPECT_THROW(GpuDevice{bad}, std::invalid_argument);
  bad = {};
  bad.wavefront_size = 65;
  EXPECT_THROW(GpuDevice{bad}, std::invalid_argument);
  bad = {};
  bad.wavefront_size = 24; // not a multiple of 16 stream cores
  EXPECT_THROW(GpuDevice{bad}, std::invalid_argument);
}

TEST(GpuDevice, FpuSupplyValidation) {
  GpuDevice device = small_device();
  EXPECT_EQ(device.fpu_supply(), 0.9);
  device.set_fpu_supply(0.8);
  EXPECT_EQ(device.fpu_supply(), 0.8);
  EXPECT_THROW(device.set_fpu_supply(0.0), std::invalid_argument);
}

TEST(GpuDevice, NullErrorModelRejected) {
  GpuDevice device = small_device();
  EXPECT_THROW(device.set_error_model(nullptr), std::invalid_argument);
}

TEST(GpuDevice, ThresholdBroadcastReachesEveryFpu) {
  GpuDevice device = small_device();
  device.program_threshold(0.25f);
  device.compute_unit(0).for_each_fpu([](const ResilientFpu& f) {
    EXPECT_EQ(f.registers().threshold(), 0.25f);
  });
  device.program_exact();
  device.compute_unit(0).for_each_fpu([](const ResilientFpu& f) {
    EXPECT_TRUE(f.registers().constraint().is_exact());
  });
}

TEST(GpuDevice, MaskBroadcast) {
  GpuDevice device = small_device();
  device.program_threshold_as_mask(0.5f);
  device.compute_unit(0).for_each_fpu([](const ResilientFpu& f) {
    EXPECT_EQ(f.registers().constraint().kind(),
              MatchConstraint::Kind::kMask);
  });
}

TEST(GpuDevice, EnableAndPowerGateBroadcast) {
  GpuDevice device = small_device();
  device.set_memo_enabled(false);
  device.compute_unit(0).for_each_fpu([](const ResilientFpu& f) {
    EXPECT_FALSE(f.registers().enabled());
  });
  device.set_memo_enabled(true);
  device.set_power_gated(true);
  device.compute_unit(0).for_each_fpu([](const ResilientFpu& f) {
    EXPECT_TRUE(f.power_gated());
  });
}

TEST(GpuDevice, LutPreloadOnlyReachesMatchingUnits) {
  GpuDevice device = small_device();
  LutEntry e;
  e.opcode = FpOpcode::kRecip;
  e.operands = {16.0f, 0.0f, 0.0f};
  e.result = 0.0625f;
  device.preload_lut(e);
  device.compute_unit(0).for_each_fpu([](const ResilientFpu& f) {
    if (f.unit() == FpuType::kRecip) {
      EXPECT_EQ(f.lut().size(), 1);
    } else {
      EXPECT_EQ(f.lut().size(), 0);
    }
  });
}

TEST(GpuDevice, SetLutDepthRebuilds) {
  GpuDevice device = small_device();
  device.set_lut_depth(8);
  EXPECT_EQ(device.config().fpu.lut_depth, 8);
  device.compute_unit(0).for_each_fpu([](const ResilientFpu& f) {
    EXPECT_EQ(f.lut().depth(), 8);
  });
}

TEST(GpuDevice, StatsAggregateAcrossLaunch) {
  GpuDevice device = small_device();
  launch(device, 256, [](WavefrontCtx& wf) {
    const LaneVec x = wf.splat(2.0f);
    (void)wf.mul(x, x);
    (void)wf.sqrt(x);
  });
  const auto stats = device.unit_stats();
  EXPECT_EQ(stats[static_cast<std::size_t>(FpuType::kMul)].instructions, 256u);
  EXPECT_EQ(stats[static_cast<std::size_t>(FpuType::kSqrt)].instructions,
            256u);
  EXPECT_EQ(stats[static_cast<std::size_t>(FpuType::kAdd)].instructions, 0u);
  // Splat-constant operands: massive hit rate after the cold miss per FPU.
  EXPECT_GT(device.weighted_hit_rate(), 0.8);
}

TEST(GpuDevice, EnergyAccumulatesOnlyForExecutedUnits) {
  GpuDevice device = small_device();
  launch(device, 64, [](WavefrontCtx& wf) {
    (void)wf.mul(wf.splat(1.0f), wf.splat(2.0f));
  });
  EXPECT_GT(device.unit_energy(FpuType::kMul).baseline_pj, 0.0);
  EXPECT_EQ(device.unit_energy(FpuType::kAdd).baseline_pj, 0.0);
  const FpuType only_mul[] = {FpuType::kMul};
  EXPECT_EQ(device.energy(only_mul).baseline_pj,
            device.unit_energy(FpuType::kMul).baseline_pj);
}

TEST(GpuDevice, ResetStatsClearsEverythingButConfig) {
  GpuDevice device = small_device();
  device.program_threshold(0.5f);
  launch(device, 64, [](WavefrontCtx& wf) {
    (void)wf.add(wf.splat(1.0f), wf.splat(2.0f));
  });
  EXPECT_GT(device.energy().baseline_pj, 0.0);
  device.reset_stats();
  EXPECT_EQ(device.energy().baseline_pj, 0.0);
  EXPECT_EQ(device.total_stats(kAllFpuTypes).instructions, 0u);
  // Config survives.
  device.compute_unit(0).for_each_fpu([](const ResilientFpu& f) {
    EXPECT_EQ(f.registers().threshold(), 0.5f);
  });
}

TEST(GpuDevice, EnergyAccumulatorSurvivesMove) {
  // Regression: the accumulator used to hold references into the device it
  // was constructed in, so a moved device charged energy through dangling
  // references to the moved-from object's supply. It must follow the move
  // and read the live supply of its new owner.
  GpuDevice original = small_device();
  GpuDevice moved = std::move(original);
  moved.set_fpu_supply(0.8);
  launch(moved, 64, [](WavefrontCtx& wf) {
    (void)wf.mul(wf.splat(1.0f), wf.splat(2.0f));
  });

  GpuDevice fresh(DeviceConfig::single_cu());
  fresh.set_fpu_supply(0.8);
  launch(fresh, 64, [](WavefrontCtx& wf) {
    (void)wf.mul(wf.splat(1.0f), wf.splat(2.0f));
  });

  EXPECT_GT(moved.unit_energy(FpuType::kMul).baseline_pj, 0.0);
  EXPECT_EQ(moved.unit_energy(FpuType::kMul).baseline_pj,
            fresh.unit_energy(FpuType::kMul).baseline_pj);
  EXPECT_EQ(moved.unit_energy(FpuType::kMul).memoized_pj,
            fresh.unit_energy(FpuType::kMul).memoized_pj);
}

TEST(GpuDevice, MoveAssignmentRebindsAccumulator) {
  GpuDevice device = small_device();
  device = GpuDevice(DeviceConfig::single_cu());
  device.set_fpu_supply(0.85);
  launch(device, 64, [](WavefrontCtx& wf) {
    (void)wf.add(wf.splat(1.0f), wf.splat(2.0f));
  });
  EXPECT_GT(device.unit_energy(FpuType::kAdd).baseline_pj, 0.0);
}

TEST(GpuDevice, DisabledMemoMatchesBaselineEnergy) {
  // With the module disabled, memoized == baseline for every record (no
  // hits, no LUT charges) in an error-free run.
  GpuDevice device = small_device();
  device.set_memo_enabled(false);
  launch(device, 128, [](WavefrontCtx& wf) {
    (void)wf.muladd(wf.splat(1.0f), wf.splat(2.0f), wf.splat(3.0f));
  });
  const EnergyTotals t = device.energy();
  EXPECT_NEAR(t.memoized_pj, t.baseline_pj, 1e-6);
}

} // namespace
} // namespace tmemo
