#include "gpu/stream_core.hpp"

#include <gtest/gtest.h>

namespace tmemo {
namespace {

FpInstruction ins(FpOpcode op, StaticInstrId sid, float a, float b = 0.0f) {
  FpInstruction i;
  i.opcode = op;
  i.static_id = sid;
  i.operands = {a, b, 0.0f};
  return i;
}

TEST(StreamCore, VliwSlotSteering) {
  // Non-transcendental opcodes rotate over X/Y/Z/W by static id.
  EXPECT_EQ(StreamCore::vliw_slot(FpuType::kAdd, 0), 0);
  EXPECT_EQ(StreamCore::vliw_slot(FpuType::kAdd, 1), 1);
  EXPECT_EQ(StreamCore::vliw_slot(FpuType::kAdd, 2), 2);
  EXPECT_EQ(StreamCore::vliw_slot(FpuType::kAdd, 3), 3);
  EXPECT_EQ(StreamCore::vliw_slot(FpuType::kAdd, 4), 0);
  EXPECT_EQ(StreamCore::vliw_slot(FpuType::kMul, 7), 3);
  // Transcendentals always go to T.
  for (StaticInstrId sid : {0u, 1u, 5u, 100u}) {
    EXPECT_EQ(StreamCore::vliw_slot(FpuType::kSqrt, sid), kPeT);
    EXPECT_EQ(StreamCore::vliw_slot(FpuType::kRecip, sid), kPeT);
    EXPECT_EQ(StreamCore::vliw_slot(FpuType::kTrig, sid), kPeT);
    EXPECT_EQ(StreamCore::vliw_slot(FpuType::kExpLog, sid), kPeT);
  }
}

TEST(StreamCore, FpuPopulationMatchesPeRoles) {
  StreamCore core(ResilientFpuConfig{}, 1);
  // Non-transcendental units exist on X/Y/Z/W, transcendental only on T.
  for (int pe = 0; pe < 4; ++pe) {
    EXPECT_NO_THROW((void)core.fpu(pe, FpuType::kAdd));
    EXPECT_NO_THROW((void)core.fpu(pe, FpuType::kMulAdd));
    EXPECT_THROW((void)core.fpu(pe, FpuType::kSqrt), std::invalid_argument);
  }
  EXPECT_NO_THROW((void)core.fpu(kPeT, FpuType::kSqrt));
  EXPECT_NO_THROW((void)core.fpu(kPeT, FpuType::kRecip));
  EXPECT_THROW((void)core.fpu(kPeT, FpuType::kAdd), std::invalid_argument);
  EXPECT_THROW((void)core.fpu(9, FpuType::kAdd), std::invalid_argument);
}

TEST(StreamCore, TotalFpuCount) {
  StreamCore core(ResilientFpuConfig{}, 1);
  int count = 0;
  core.for_each_fpu([&count](const ResilientFpu&) { ++count; });
  // 4 PEs x 5 non-transcendental units + 1 T x 4 transcendental units.
  EXPECT_EQ(count, 4 * 5 + 4);
}

TEST(StreamCore, ExecuteRoutesToStaticSlot) {
  StreamCore core(ResilientFpuConfig{}, 1);
  const NoErrorModel none;
  // Same opcode, same operands, different static ids -> different PEs,
  // so the second instruction must MISS (cold LUT on its own PE).
  (void)core.execute(ins(FpOpcode::kAdd, 0, 1.0f, 2.0f), none);
  const auto rec1 = core.execute(ins(FpOpcode::kAdd, 1, 1.0f, 2.0f), none);
  EXPECT_FALSE(rec1.lut_hit);
  // Same static id modulo 4 -> same PE -> hit.
  const auto rec2 = core.execute(ins(FpOpcode::kAdd, 4, 1.0f, 2.0f), none);
  EXPECT_TRUE(rec2.lut_hit);
}

TEST(StreamCore, TranscendentalShareTUnitAcrossStaticIds) {
  StreamCore core(ResilientFpuConfig{}, 1);
  const NoErrorModel none;
  (void)core.execute(ins(FpOpcode::kSqrt, 0, 16.0f), none);
  // Different static id, still the T PE -> hit.
  const auto rec = core.execute(ins(FpOpcode::kSqrt, 13, 16.0f), none);
  EXPECT_TRUE(rec.lut_hit);
}

TEST(StreamCore, PerFpuStatsIsolated) {
  StreamCore core(ResilientFpuConfig{}, 1);
  const NoErrorModel none;
  (void)core.execute(ins(FpOpcode::kAdd, 0, 1.0f, 2.0f), none);
  (void)core.execute(ins(FpOpcode::kMul, 0, 1.0f, 2.0f), none);
  EXPECT_EQ(core.fpu(0, FpuType::kAdd).stats().instructions, 1u);
  EXPECT_EQ(core.fpu(0, FpuType::kMul).stats().instructions, 1u);
  EXPECT_EQ(core.fpu(1, FpuType::kAdd).stats().instructions, 0u);
}

TEST(StreamCore, DistinctSeedsAcrossFpus) {
  // Two FPUs of the same core must have independent EDS streams: with a
  // 50% error model, their first-100 error patterns should differ.
  StreamCore core(ResilientFpuConfig{}, 123);
  const FixedRateErrorModel half(0.5);
  int differences = 0;
  for (int i = 0; i < 100; ++i) {
    const auto ra = core.execute(
        ins(FpOpcode::kAdd, 0, static_cast<float>(i), 1.0f), half);
    const auto rb = core.execute(
        ins(FpOpcode::kMul, 0, static_cast<float>(i), 1.0f), half);
    differences += ra.timing_error != rb.timing_error ? 1 : 0;
  }
  EXPECT_GT(differences, 20);
}

} // namespace
} // namespace tmemo
