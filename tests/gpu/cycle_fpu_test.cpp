#include "gpu/cycle_fpu.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace tmemo {
namespace {

std::vector<FpInstruction> make_stream(int n, int distinct,
                                       FpOpcode op = FpOpcode::kAdd,
                                       std::uint64_t seed = 5) {
  Xorshift128 rng(seed);
  std::vector<FpInstruction> stream;
  stream.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    FpInstruction ins;
    ins.opcode = op;
    ins.operands[0] =
        static_cast<float>(rng.next_below(static_cast<std::uint64_t>(distinct)));
    ins.operands[1] = 1.0f;
    stream.push_back(ins);
  }
  return stream;
}

TEST(CycleFpu, ErrorFreeThroughputIsOnePerCycle) {
  CycleAccurateFpu fpu(FpuType::kAdd, ResilientFpuConfig{});
  const NoErrorModel none;
  const auto stream = make_stream(100, 1000);
  const CycleRunResult r = fpu.run(stream, none);
  // Fill (depth) + one commit per cycle afterwards.
  EXPECT_EQ(r.total_cycles, 100u + 4u - 1u + 1u);
  EXPECT_EQ(r.stats.instructions, 100u);
  EXPECT_EQ(r.flushed_issues, 0u);
}

TEST(CycleFpu, ResultsMatchSemantics) {
  CycleAccurateFpu fpu(FpuType::kMul, ResilientFpuConfig{});
  const NoErrorModel none;
  std::vector<FpInstruction> stream;
  for (int i = 0; i < 20; ++i) {
    FpInstruction ins;
    ins.opcode = FpOpcode::kMul;
    ins.operands = {static_cast<float>(i), 3.0f, 0.0f};
    stream.push_back(ins);
  }
  const CycleRunResult r = fpu.run(stream, none);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(r.results[static_cast<std::size_t>(i)],
              static_cast<float>(i) * 3.0f);
  }
}

TEST(CycleFpu, BackToBackReuseThroughForwarding) {
  // Identical consecutive instructions: the second hits the entry the
  // first allocated AT ISSUE, even though the first has not retired yet —
  // the result-forwarding design that makes sub-wavefront locality work.
  CycleAccurateFpu fpu(FpuType::kAdd, ResilientFpuConfig{});
  const NoErrorModel none;
  std::vector<FpInstruction> stream(4);
  for (auto& ins : stream) {
    ins.opcode = FpOpcode::kAdd;
    ins.operands = {2.0f, 3.0f, 0.0f};
  }
  const CycleRunResult r = fpu.run(stream, none);
  EXPECT_EQ(r.stats.hits, 3u); // all but the first
  for (float v : r.results) EXPECT_EQ(v, 5.0f);
}

TEST(CycleFpu, AgreesWithTransactionalModelWhenErrorFree) {
  // The validation test for the transactional accounting: identical
  // hit/update/result streams on the same input.
  const auto stream = make_stream(2000, 3, FpOpcode::kAdd, 11);
  const NoErrorModel none;

  CycleAccurateFpu cycle(FpuType::kAdd, ResilientFpuConfig{});
  const CycleRunResult cr = cycle.run(stream, none);

  ResilientFpu trans(FpuType::kAdd, ResilientFpuConfig{});
  FpuStats expected;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const ExecutionRecord rec = trans.execute(stream[i], none);
    ASSERT_EQ(rec.result, cr.results[i]) << "instruction " << i;
  }
  expected = trans.stats();
  EXPECT_EQ(cr.stats.instructions, expected.instructions);
  EXPECT_EQ(cr.stats.hits, expected.hits);
  EXPECT_EQ(cr.stats.lut_updates, expected.lut_updates);
  EXPECT_EQ(cr.stats.active_stage_cycles, expected.active_stage_cycles);
  EXPECT_EQ(cr.stats.gated_stage_cycles, expected.gated_stage_cycles);
}

TEST(CycleFpu, RecoveryStallsAndRefills) {
  // A single guaranteed-errant instruction: total time = fill + commit +
  // 12 recovery cycles.
  CycleAccurateFpu fpu(FpuType::kAdd, ResilientFpuConfig{});
  const FixedRateErrorModel always(1.0);
  const auto stream = make_stream(1, 10);
  const CycleRunResult r = fpu.run(stream, always);
  EXPECT_EQ(r.stats.recoveries, 1u);
  EXPECT_EQ(r.stats.recovery_cycles, 12u);
  EXPECT_EQ(r.total_cycles, 4u + 1u + 12u);
  EXPECT_EQ(r.results[0], r.results[0]); // committed
}

TEST(CycleFpu, FlushReissuesYoungerInstructions) {
  // Errors on every miss: each recovery flushes the in-flight younger
  // instructions, which are re-issued and still commit correct values.
  CycleAccurateFpu fpu(FpuType::kAdd, ResilientFpuConfig{});
  const FixedRateErrorModel always(1.0);
  const auto stream = make_stream(10, 1000, FpOpcode::kAdd, 17);
  const CycleRunResult r = fpu.run(stream, always);
  EXPECT_EQ(r.stats.instructions, 10u);
  EXPECT_GT(r.flushed_issues, 0u);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(r.results[i], evaluate_fp_op(stream[i])) << i;
  }
}

TEST(CycleFpu, ExactnessUnderRandomErrors) {
  // Property: whatever the error pattern, committed results are exact
  // under exact matching.
  CycleAccurateFpu fpu(FpuType::kMulAdd, ResilientFpuConfig{});
  const FixedRateErrorModel half(0.5);
  std::vector<FpInstruction> stream;
  Xorshift128 rng(23);
  for (int i = 0; i < 500; ++i) {
    FpInstruction ins;
    ins.opcode = FpOpcode::kMulAdd;
    ins.operands = {static_cast<float>(rng.next_below(5)),
                    static_cast<float>(rng.next_below(5)), 1.0f};
    stream.push_back(ins);
  }
  const CycleRunResult r = fpu.run(stream, half);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    ASSERT_EQ(r.results[i], evaluate_fp_op(stream[i])) << i;
  }
  EXPECT_EQ(r.stats.timing_errors,
            r.stats.masked_errors + r.stats.recoveries);
}

TEST(CycleFpu, RecipPipelineDepthSixteen) {
  CycleAccurateFpu fpu(FpuType::kRecip, ResilientFpuConfig{});
  const NoErrorModel none;
  std::vector<FpInstruction> stream(1);
  stream[0].opcode = FpOpcode::kRecip;
  stream[0].operands = {4.0f, 0.0f, 0.0f};
  const CycleRunResult r = fpu.run(stream, none);
  EXPECT_EQ(r.total_cycles, 17u); // 16 stages + commit cycle
  EXPECT_EQ(r.results[0], 0.25f);
}

TEST(CycleFpu, HitsDoNotStallThePipeline) {
  // 50% hit stream: cycle count identical to the all-miss stream — the
  // paper's zero-cycle-penalty reuse.
  const NoErrorModel none;
  CycleAccurateFpu hot(FpuType::kAdd, ResilientFpuConfig{});
  const auto repetitive = make_stream(200, 2, FpOpcode::kAdd, 3);
  const CycleRunResult hot_r = hot.run(repetitive, none);
  EXPECT_GT(hot_r.stats.hits, 100u);

  CycleAccurateFpu cold(FpuType::kAdd, ResilientFpuConfig{});
  const auto unique = make_stream(200, 100000, FpOpcode::kAdd, 29);
  const CycleRunResult cold_r = cold.run(unique, none);
  EXPECT_EQ(hot_r.total_cycles, cold_r.total_cycles);
}

} // namespace
} // namespace tmemo
