#include "gpu/compute_unit.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tmemo {
namespace {

class RecordingSink final : public ExecutionSink {
 public:
  void consume(const ExecutionRecord& rec) override { records.push_back(rec); }
  std::vector<ExecutionRecord> records;
};

DeviceConfig small_config() {
  DeviceConfig c = DeviceConfig::single_cu();
  return c;
}

TEST(ComputeUnit, SixteenStreamCores) {
  ComputeUnit cu(small_config(), 1);
  EXPECT_EQ(cu.stream_core_count(), 16);
}

TEST(ComputeUnit, ExecutesAllActiveLanes) {
  ComputeUnit cu(small_config(), 1);
  const NoErrorModel none;
  RecordingSink sink;
  std::array<float, 64> a{}, b{}, out{};
  for (int i = 0; i < 64; ++i) {
    a[static_cast<std::size_t>(i)] = static_cast<float>(i);
    b[static_cast<std::size_t>(i)] = 1.0f;
  }
  cu.execute_wavefront_op(FpOpcode::kAdd, 0, a.data(), b.data(), nullptr,
                          ~0ull, 0, none, &sink, out.data());
  EXPECT_EQ(sink.records.size(), 64u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], static_cast<float>(i) + 1.0f);
  }
}

TEST(ComputeUnit, InactiveLanesSkipped) {
  ComputeUnit cu(small_config(), 1);
  const NoErrorModel none;
  RecordingSink sink;
  std::array<float, 64> a{}, out{};
  out.fill(-99.0f);
  const std::uint64_t mask = 0x5ull; // lanes 0 and 2
  cu.execute_wavefront_op(FpOpcode::kAbs, 0, a.data(), nullptr, nullptr,
                          mask, 0, none, &sink, out.data());
  EXPECT_EQ(sink.records.size(), 2u);
  EXPECT_EQ(out[0], 0.0f);
  EXPECT_EQ(out[1], -99.0f); // untouched
  EXPECT_EQ(out[2], 0.0f);
}

TEST(ComputeUnit, SubWavefrontTimeMultiplexOrder) {
  // THE key scheduling property (paper §3): stream core j executes lanes
  // j, j+16, j+32, j+48 back-to-back. Verify via the work-item ids of the
  // records in sink order: the first 16 records are lanes 0..15 (sub 0),
  // then 16..31, etc.
  ComputeUnit cu(small_config(), 1);
  const NoErrorModel none;
  RecordingSink sink;
  std::array<float, 64> a{}, out{};
  cu.execute_wavefront_op(FpOpcode::kAbs, 0, a.data(), nullptr, nullptr,
                          ~0ull, 100, none, &sink, out.data());
  ASSERT_EQ(sink.records.size(), 64u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(sink.records[static_cast<std::size_t>(i)].work_item,
              static_cast<WorkItemId>(100 + i));
  }
}

TEST(ComputeUnit, SameCoreLanesShareLut) {
  // Lanes 0 and 16 run on stream core 0: identical operands hit.
  // Lanes 0 and 1 run on different cores: no sharing.
  ComputeUnit cu(small_config(), 1);
  const NoErrorModel none;
  RecordingSink sink;
  std::array<float, 64> a{}, b{}, out{};
  a.fill(3.0f);
  b.fill(4.0f);
  cu.execute_wavefront_op(FpOpcode::kMul, 0, a.data(), b.data(), nullptr,
                          (1ull << 0) | (1ull << 1) | (1ull << 16), 0, none,
                          &sink, out.data());
  ASSERT_EQ(sink.records.size(), 3u);
  // Record order: lane 0 (SC0), lane 1 (SC1), lane 16 (SC0 again).
  EXPECT_FALSE(sink.records[0].lut_hit); // SC0 cold
  EXPECT_FALSE(sink.records[1].lut_hit); // SC1 cold
  EXPECT_TRUE(sink.records[2].lut_hit);  // SC0 warm from lane 0
}

TEST(ComputeUnit, MissingOperandPointerRejected) {
  ComputeUnit cu(small_config(), 1);
  const NoErrorModel none;
  std::array<float, 64> a{}, out{};
  EXPECT_THROW(
      cu.execute_wavefront_op(FpOpcode::kAdd, 0, a.data(), nullptr, nullptr,
                              1ull, 0, none, nullptr, out.data()),
      std::invalid_argument);
  EXPECT_THROW(
      cu.execute_wavefront_op(FpOpcode::kMulAdd, 0, a.data(), a.data(),
                              nullptr, 1ull, 0, none, nullptr, out.data()),
      std::invalid_argument);
  EXPECT_THROW(
      cu.execute_wavefront_op(FpOpcode::kAdd, 0, a.data(), a.data(), nullptr,
                              1ull, 0, none, nullptr, nullptr),
      std::invalid_argument);
}

TEST(ComputeUnit, NullSinkAllowed) {
  ComputeUnit cu(small_config(), 1);
  const NoErrorModel none;
  std::array<float, 64> a{}, out{};
  EXPECT_NO_THROW(cu.execute_wavefront_op(FpOpcode::kAbs, 0, a.data(),
                                          nullptr, nullptr, ~0ull, 0, none,
                                          nullptr, out.data()));
}

TEST(ComputeUnit, NarrowWavefrontConfig) {
  DeviceConfig cfg = DeviceConfig::single_cu();
  cfg.wavefront_size = 32; // 2 sub-wavefronts
  ComputeUnit cu(cfg, 1);
  const NoErrorModel none;
  RecordingSink sink;
  std::array<float, 64> a{}, out{};
  cu.execute_wavefront_op(FpOpcode::kAbs, 0, a.data(), nullptr, nullptr,
                          ~0ull, 0, none, &sink, out.data());
  EXPECT_EQ(sink.records.size(), 32u);
}

} // namespace
} // namespace tmemo
