#include "workloads/haar.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.hpp"
#include "sim/simulation.hpp"

namespace tmemo {
namespace {

TEST(Haar, DeviceMatchesReferenceBitExact) {
  std::vector<float> signal(512);
  Xorshift128 rng(5);
  for (float& v : signal) v = rng.next_float();
  GpuDevice device(DeviceConfig::single_cu());
  device.program_exact();
  const auto got = haar_on_device(device, signal);
  const auto want = haar_reference(signal);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "coefficient " << i;
  }
}

TEST(Haar, TwoPointTransform) {
  const std::vector<float> signal = {3.0f, 1.0f};
  const auto c = haar_reference(signal);
  const float s = 0.70710678f;
  EXPECT_NEAR(c[0], 4.0f * s, 1e-5f);
  EXPECT_NEAR(c[1], 2.0f * s, 1e-5f);
}

TEST(Haar, LinearityOfTheTransform) {
  std::vector<float> a(128), b(128), sum(128);
  Xorshift128 rng(7);
  for (std::size_t i = 0; i < 128; ++i) {
    a[i] = rng.next_float();
    b[i] = rng.next_float();
    sum[i] = a[i] + b[i];
  }
  const auto ca = haar_reference(a);
  const auto cb = haar_reference(b);
  const auto cs = haar_reference(sum);
  for (std::size_t i = 0; i < 128; ++i) {
    EXPECT_NEAR(cs[i], ca[i] + cb[i], 2e-4f);
  }
}

TEST(Haar, StepSignalProducesOneDetailScale) {
  // A step at the half point: all fine-scale details vanish except at the
  // discontinuity; the level-1 coefficient carries the step.
  std::vector<float> step(64, 0.0f);
  for (std::size_t i = 32; i < 64; ++i) step[i] = 1.0f;
  const auto c = haar_reference(step);
  // Finest-scale details (last 32 coeffs): the step falls between pairs,
  // so every pair is constant -> zero details.
  for (std::size_t i = 32; i < 64; ++i) {
    EXPECT_NEAR(c[i], 0.0f, 1e-5f);
  }
  // The coarsest detail (index 1) carries the step energy.
  EXPECT_GT(std::fabs(c[1]), 1.0f);
}

TEST(Haar, SmoothSignalCompactsEnergyIntoCoarseScales) {
  HaarWorkload w(1024);
  GpuDevice device(DeviceConfig::single_cu());
  device.program_exact();
  const WorkloadResult res = w.run(device);
  EXPECT_TRUE(res.passed);
  EXPECT_EQ(res.max_abs_error, 0.0);
}

TEST(Haar, RejectsBadLengths) {
  EXPECT_THROW(HaarWorkload(0), std::invalid_argument);
  EXPECT_THROW(HaarWorkload(1), std::invalid_argument);
  EXPECT_THROW(HaarWorkload(100), std::invalid_argument);
  EXPECT_NO_THROW(HaarWorkload(2));
}

TEST(Haar, ApproximateThresholdPassesButLooseThresholdDegrades) {
  Simulation sim;
  HaarWorkload w(1024);
  const KernelRunReport fine = sim.run(w, RunSpec::at_error_rate(0.0)); // 0.046
  EXPECT_TRUE(fine.result.passed);
  const KernelRunReport coarse = sim.run(w, RunSpec::at_error_rate(0.0).threshold(0.4f));
  EXPECT_GT(coarse.result.rel_rms_error, fine.result.rel_rms_error);
}

TEST(Haar, AddAndMulUnitsOnly) {
  GpuDevice device(DeviceConfig::single_cu());
  device.program_exact();
  std::vector<float> signal(256, 0.5f);
  (void)haar_on_device(device, signal);
  const auto stats = device.unit_stats();
  EXPECT_GT(stats[static_cast<std::size_t>(FpuType::kAdd)].instructions, 0u);
  EXPECT_GT(stats[static_cast<std::size_t>(FpuType::kMul)].instructions, 0u);
  EXPECT_EQ(stats[static_cast<std::size_t>(FpuType::kSqrt)].instructions, 0u);
}

} // namespace
} // namespace tmemo
