// BlackScholes + BinomialOption domain properties.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/simulation.hpp"
#include "workloads/binomial.hpp"
#include "workloads/blackscholes.hpp"

namespace tmemo {
namespace {

TEST(BlackScholes, DeviceMatchesReferenceBitExact) {
  const OptionInputs in = make_option_inputs(256, 3);
  GpuDevice device(DeviceConfig::single_cu());
  device.program_exact();
  const auto got = blackscholes_on_device(device, in);
  const auto want = blackscholes_reference(in);
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << i;
  }
}

TEST(BlackScholes, CallDecreasesWithStrike) {
  OptionInputs in;
  for (float k : {60.0f, 80.0f, 100.0f, 120.0f}) {
    in.stock_price.push_back(100.0f);
    in.strike_price.push_back(k);
    in.years.push_back(2.0f);
  }
  const auto out = blackscholes_reference(in);
  for (std::size_t i = 1; i < in.size(); ++i) {
    EXPECT_LT(out[i], out[i - 1]);
  }
}

TEST(BlackScholes, PutIncreasesWithStrike) {
  OptionInputs in;
  for (float k : {60.0f, 80.0f, 100.0f, 120.0f}) {
    in.stock_price.push_back(100.0f);
    in.strike_price.push_back(k);
    in.years.push_back(2.0f);
  }
  const auto out = blackscholes_reference(in);
  const std::size_t n = in.size();
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_GT(out[n + i], out[n + i - 1]);
  }
}

TEST(BlackScholes, LongerMaturityRaisesCallValue) {
  OptionInputs in;
  for (float t : {1.0f, 3.0f, 7.0f, 10.0f}) {
    in.stock_price.push_back(100.0f);
    in.strike_price.push_back(100.0f);
    in.years.push_back(t);
  }
  const auto out = blackscholes_reference(in);
  for (std::size_t i = 1; i < in.size(); ++i) {
    EXPECT_GT(out[i], out[i - 1]);
  }
}

TEST(BlackScholes, InputsFollowTheOptionChainStructure) {
  const OptionInputs in = make_option_inputs(1024, 5);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(in.stock_price[i], 100.0f); // single underlying
    // Strikes on the 5-dollar grid.
    EXPECT_EQ(std::fmod(in.strike_price[i], 5.0f), 0.0f);
    // Whole-year tenors 1..10.
    EXPECT_EQ(in.years[i], std::floor(in.years[i]));
    EXPECT_GE(in.years[i], 1.0f);
    EXPECT_LE(in.years[i], 10.0f);
  }
}

TEST(BlackScholes, WorkloadExpandsSamplesBy4096) {
  BlackScholesWorkload w(2);
  EXPECT_EQ(w.input_parameter(), "2");
  Simulation sim;
  const KernelRunReport r = sim.run(w, RunSpec::at_error_rate(0.0));
  EXPECT_EQ(r.result.output_values, 2u * 4096u * 2u); // calls + puts
  EXPECT_TRUE(r.result.passed);
}

TEST(Binomial, DeviceMatchesReferenceBitExact) {
  const OptionInputs in = make_option_inputs(20, 9);
  GpuDevice device(DeviceConfig::single_cu());
  device.program_exact();
  const auto got = binomial_on_device(device, in, 64);
  const auto want = binomial_reference(in, 64);
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << i;
  }
}

TEST(Binomial, MoreStepsConvergeMonotonicallyTowardClosedForm) {
  OptionInputs in;
  in.stock_price = {100.0f};
  in.strike_price = {95.0f};
  in.years = {2.0f};
  const float bs = blackscholes_reference(in)[0];
  double prev_gap = 1e9;
  for (int steps : {16, 64, 256}) {
    const float crr = binomial_reference(in, steps)[0];
    const double gap = std::fabs(static_cast<double>(crr) - bs);
    EXPECT_LT(gap, prev_gap + 0.05);
    prev_gap = gap;
  }
  EXPECT_LT(prev_gap, 0.25);
}

TEST(Binomial, LowVolatilityTracksClosedForm) {
  // At modest volatility (the CRR lattice is valid when vol*sqrt(dt) >
  // r*dt) a deep-in-the-money call approaches the discounted forward and
  // matches the Black-Scholes closed form.
  OptionInputs in;
  in.stock_price = {120.0f};
  in.strike_price = {100.0f};
  in.years = {1.0f};
  in.volatility = 0.10f;
  const float crr = binomial_reference(in, 256)[0];
  const float bs = blackscholes_reference(in)[0];
  EXPECT_NEAR(crr, bs, 0.3f);
  const float forward = 120.0f - 100.0f * std::exp(-in.riskfree_rate);
  EXPECT_GT(crr, forward - 0.1f);
  EXPECT_LT(crr, forward + 3.0f);
}

TEST(Binomial, DeepOutOfTheMoneyIsWorthless) {
  OptionInputs in;
  in.stock_price = {10.0f};
  in.strike_price = {1000.0f};
  in.years = {1.0f};
  EXPECT_NEAR(binomial_reference(in, 64)[0], 0.0f, 1e-3f);
}

TEST(Binomial, RejectsInvalidSteps) {
  const OptionInputs in = make_option_inputs(1, 1);
  EXPECT_THROW((void)binomial_reference(in, 0), std::invalid_argument);
  GpuDevice device(DeviceConfig::single_cu());
  EXPECT_THROW((void)binomial_on_device(device, in, -1),
               std::invalid_argument);
}

TEST(Binomial, WorkloadPassesAtTinyThresholdEvenWithErrors) {
  Simulation sim;
  BinomialOptionWorkload w(20, 64);
  const KernelRunReport r = sim.run(w, RunSpec::at_error_rate(0.04));
  EXPECT_TRUE(r.result.passed);
  EXPECT_LT(r.result.rel_rms_error, 1e-4);
}

} // namespace
} // namespace tmemo
