// FWT + EigenValue domain properties (the exact-matching kernels).
#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>
#include <numeric>

#include "common/rng.hpp"
#include "sim/simulation.hpp"
#include "workloads/eigenvalue.hpp"
#include "workloads/fwt.hpp"

namespace tmemo {
namespace {

TEST(Fwt, DeviceMatchesReferenceBitExact) {
  std::vector<float> signal(1024);
  Xorshift128 rng(3);
  for (float& v : signal) v = rng.next_float() - 0.5f;
  GpuDevice device(DeviceConfig::single_cu());
  device.program_exact();
  const auto got = fwt_on_device(device, signal);
  const auto want = fwt_reference(signal);
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << i;
  }
}

TEST(Fwt, ParsevalEnergyScaling) {
  // sum(y^2) = n * sum(x^2) for the unnormalized WHT.
  std::vector<float> x(256);
  Xorshift128 rng(7);
  for (float& v : x) v = rng.next_float() - 0.5f;
  const auto y = fwt_reference(x);
  const double ex = std::inner_product(x.begin(), x.end(), x.begin(), 0.0);
  const double ey = std::inner_product(y.begin(), y.end(), y.begin(), 0.0);
  EXPECT_NEAR(ey, 256.0 * ex, 1e-2 * ey);
}

TEST(Fwt, ConstantSignalConcentratesInDc) {
  std::vector<float> x(64, 2.0f);
  const auto y = fwt_reference(x);
  EXPECT_EQ(y[0], 128.0f);
  for (std::size_t i = 1; i < 64; ++i) EXPECT_EQ(y[i], 0.0f);
}

TEST(Fwt, WalshFunctionMapsToSingleBin) {
  // The transform of a Walsh basis function is an impulse: build one by
  // inverse-transforming a delta (involution property).
  std::vector<float> delta(64, 0.0f);
  delta[9] = 1.0f;
  const auto walsh = fwt_reference(delta);
  auto spectrum = fwt_reference(walsh);
  EXPECT_EQ(spectrum[9], 64.0f);
  for (std::size_t i = 0; i < 64; ++i) {
    if (i != 9) {
      EXPECT_EQ(spectrum[i], 0.0f);
    }
  }
}

TEST(Fwt, WorkloadRoundsUpToPowerOfTwo) {
  FwtWorkload w(1000);
  EXPECT_EQ(w.input_parameter(), "1000");
  Simulation sim;
  const KernelRunReport r = sim.run(w, RunSpec::at_error_rate(0.0));
  EXPECT_EQ(r.result.output_values, 1024u);
  EXPECT_TRUE(r.result.passed);
}

TEST(Fwt, SparseTernaryInput) {
  FwtWorkload w(4096);
  Simulation sim;
  const KernelRunReport r = sim.run(w, RunSpec::at_error_rate(0.0));
  // Sparse inputs give the exact-matching FIFO real hits.
  EXPECT_GT(r.weighted_hit_rate, 0.05);
}

TEST(Eigen, DeviceMatchesReferenceBitExact) {
  const Tridiagonal m = make_tridiagonal(96, 5);
  GpuDevice device(DeviceConfig::single_cu());
  device.program_exact();
  const auto got = eigenvalues_on_device(device, m, 24);
  const auto want = eigenvalues_reference(m, 24);
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << i;
  }
}

TEST(Eigen, MappingDoesNotChangeResults) {
  const Tridiagonal m = make_tridiagonal(96, 5);
  GpuDevice a(DeviceConfig::single_cu()), b(DeviceConfig::single_cu());
  a.program_exact();
  b.program_exact();
  const auto mapped = eigenvalues_on_device(a, m, 24, true);
  const auto linear = eigenvalues_on_device(b, m, 24, false);
  for (std::size_t i = 0; i < mapped.size(); ++i) {
    ASSERT_EQ(mapped[i], linear[i]) << i;
  }
}

TEST(Eigen, EigenvaluesWithinGershgorinBounds) {
  const Tridiagonal m = make_tridiagonal(64, 11);
  float lo = m.diag[0], hi = m.diag[0];
  for (std::size_t i = 0; i < m.size(); ++i) {
    float r = 0.0f;
    if (i > 0) r += std::fabs(m.offdiag[i - 1]);
    if (i + 1 < m.size()) r += std::fabs(m.offdiag[i]);
    lo = std::min(lo, m.diag[i] - r);
    hi = std::max(hi, m.diag[i] + r);
  }
  for (float lam : eigenvalues_reference(m, 30)) {
    EXPECT_GE(lam, lo - 1e-4f);
    EXPECT_LE(lam, hi + 1e-4f);
  }
}

TEST(Eigen, KnownTridiagonalSpectrum) {
  // A block-diagonal tridiagonal of decoupled 2x2 blocks
  //   [a_i  b_i; b_i  a_i]  ->  eigenvalues a_i -/+ b_i,
  // with distinct, well-separated entries (no degenerate Sturm pivots).
  const int blocks = 8;
  Tridiagonal m;
  std::vector<double> expected;
  for (int i = 0; i < blocks; ++i) {
    const float a = 0.5f * static_cast<float>(i) - 2.0f;
    const float b = 0.11f + 0.02f * static_cast<float>(i);
    m.diag.push_back(a);
    m.diag.push_back(a);
    m.offdiag.push_back(b);
    if (i + 1 < blocks) m.offdiag.push_back(0.0f);
    expected.push_back(a - b);
    expected.push_back(a + b);
  }
  std::sort(expected.begin(), expected.end());
  const auto lam = eigenvalues_reference(m, 40);
  ASSERT_EQ(lam.size(), expected.size());
  for (std::size_t k = 0; k < lam.size(); ++k) {
    EXPECT_NEAR(lam[k], expected[k], 5e-3) << k;
  }
}

TEST(Eigen, MoreIterationsRefineTheBrackets) {
  const Tridiagonal m = make_tridiagonal(32, 3);
  const auto coarse = eigenvalues_reference(m, 8);
  const auto fine = eigenvalues_reference(m, 30);
  // Both sorted; fine brackets are consistent refinements.
  double max_move = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    max_move = std::max(
        max_move, std::fabs(static_cast<double>(coarse[i]) - fine[i]));
  }
  // Bisection converges geometrically: 8 extra bits shrink the interval.
  EXPECT_LT(max_move, 0.1);
}

TEST(Eigen, RejectsTinyMatrices) {
  EXPECT_THROW(make_tridiagonal(1), std::invalid_argument);
  EXPECT_THROW(EigenValueWorkload(0), std::invalid_argument);
}

TEST(Eigen, ScAdjacentMappingRaisesHitRate) {
  const Tridiagonal m = make_tridiagonal(128, 7);
  GpuDevice a(DeviceConfig::single_cu()), b(DeviceConfig::single_cu());
  a.program_exact();
  b.program_exact();
  (void)eigenvalues_on_device(a, m, 24, true);
  (void)eigenvalues_on_device(b, m, 24, false);
  EXPECT_GT(a.weighted_hit_rate(), b.weighted_hit_rate());
}

} // namespace
} // namespace tmemo
