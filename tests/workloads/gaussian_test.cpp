#include "workloads/gaussian.hpp"

#include <gtest/gtest.h>

#include "img/synthetic.hpp"
#include "sim/simulation.hpp"

namespace tmemo {
namespace {

TEST(Gaussian, DeviceMatchesReferenceBitExact) {
  const Image book = make_book_image(96, 96);
  GpuDevice device(DeviceConfig::single_cu());
  device.program_exact();
  const Image got = gaussian_on_device(device, book);
  const Image want = gaussian_reference(book);
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got.pixels()[i], want.pixels()[i]) << "pixel " << i;
  }
}

TEST(Gaussian, UnitDcGain) {
  // A constant image passes through unchanged (weights sum to 1).
  for (float level : {0.0f, 17.0f, 128.0f, 255.0f}) {
    const Image flat(16, 16, level);
    const Image out = gaussian_reference(flat);
    for (float p : out.pixels()) {
      EXPECT_NEAR(p, std::floor(level), 1.0f);
    }
  }
}

TEST(Gaussian, ImpulseResponseIsTheKernel) {
  Image img(9, 9, 0.0f);
  img.at(4, 4) = 160.0f;
  const Image out = gaussian_reference(img);
  // Center: 4/16 of the impulse; direct neighbours 2/16; corners 1/16.
  EXPECT_EQ(out.at(4, 4), 40.0f);
  EXPECT_EQ(out.at(3, 4), 20.0f);
  EXPECT_EQ(out.at(4, 3), 20.0f);
  EXPECT_EQ(out.at(3, 3), 10.0f);
  EXPECT_EQ(out.at(6, 6), 0.0f);
}

TEST(Gaussian, SmoothingIsIdempotentOnFlats) {
  const Image face = make_face_image(64, 64);
  const Image once = gaussian_reference(face);
  const Image twice = gaussian_reference(once);
  // Second pass changes much less than the first.
  EXPECT_LT(mse(once, twice), mse(face, once));
}

TEST(Gaussian, ApproximateModeDegradesGracefullyWithThreshold) {
  const Image face = make_face_image(128, 128);
  const Image golden = gaussian_reference(face);
  double prev = 1e9;
  for (float t : {0.2f, 0.6f, 1.0f}) {
    GpuDevice device(DeviceConfig::single_cu());
    device.program_threshold_as_mask(t);
    const Image out = gaussian_on_device(device, face);
    const double q = psnr(golden, out);
    EXPECT_LE(q, prev + 1.0) << "t=" << t; // monotone-ish decline
    prev = q;
  }
}

TEST(Gaussian, RecipUnitServesTheNormalizer) {
  GpuDevice device(DeviceConfig::single_cu());
  device.program_exact();
  (void)gaussian_on_device(device, make_face_image(64, 64));
  const auto stats = device.unit_stats();
  const auto& recip = stats[static_cast<std::size_t>(FpuType::kRecip)];
  // One RECIP per pixel, and after the first, every one is a LUT hit
  // (constant operand 16.0).
  EXPECT_EQ(recip.instructions, 64u * 64u);
  EXPECT_GT(recip.hit_rate(), 0.99);
}

TEST(Gaussian, WorkloadVerificationAtTable1Threshold) {
  Simulation sim;
  GaussianWorkload w(make_face_image(192, 192), "face");
  const KernelRunReport r = sim.run(w, RunSpec::at_error_rate(0.0));
  EXPECT_FLOAT_EQ(r.threshold, 0.8f);
  EXPECT_TRUE(r.result.passed);
}

} // namespace
} // namespace tmemo
