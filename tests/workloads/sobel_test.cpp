#include "workloads/sobel.hpp"

#include <gtest/gtest.h>

#include "img/synthetic.hpp"
#include "sim/simulation.hpp"

namespace tmemo {
namespace {

GpuDevice exact_device() {
  GpuDevice d(DeviceConfig::single_cu());
  d.program_exact();
  return d;
}

TEST(Sobel, DeviceMatchesReferenceBitExact) {
  const Image face = make_face_image(96, 96);
  GpuDevice device = exact_device();
  const Image got = sobel_on_device(device, face);
  const Image want = sobel_reference(face);
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got.pixels()[i], want.pixels()[i]) << "pixel " << i;
  }
}

TEST(Sobel, HorizontalAndVerticalEdgesSymmetric) {
  Image v(64, 64, 0.0f), h(64, 64, 0.0f);
  for (int y = 0; y < 64; ++y) {
    for (int x = 32; x < 64; ++x) v.at(x, y) = 180.0f;
  }
  for (int y = 32; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) h.at(x, y) = 180.0f;
  }
  const Image ev = sobel_reference(v);
  const Image eh = sobel_reference(h);
  // The operator responds identically to the transposed edge.
  EXPECT_EQ(ev.at(32, 20), eh.at(20, 32));
}

TEST(Sobel, ResponseScalesWithContrast) {
  auto edge_response = [](float contrast) {
    Image img(32, 32, 0.0f);
    for (int y = 0; y < 32; ++y) {
      for (int x = 16; x < 32; ++x) img.at(x, y) = contrast;
    }
    return sobel_reference(img).at(16, 16);
  };
  EXPECT_GT(edge_response(100.0f), edge_response(50.0f));
  // Linear up to the output clamp.
  EXPECT_NEAR(edge_response(100.0f), 2.0f * edge_response(50.0f), 2.0f);
}

TEST(Sobel, DiagonalEdgeDetected) {
  Image img(48, 48, 0.0f);
  for (int y = 0; y < 48; ++y) {
    for (int x = 0; x < 48; ++x) {
      if (x > y) img.at(x, y) = 150.0f;
    }
  }
  const Image out = sobel_reference(img);
  EXPECT_GT(out.at(24, 24), 50.0f);  // on the diagonal
  EXPECT_EQ(out.at(40, 8), 0.0f);    // deep inside the flat region
}

TEST(Sobel, OutputSaturatesAt255) {
  Image img(16, 16, 0.0f);
  for (int y = 0; y < 16; ++y) {
    for (int x = 8; x < 16; ++x) img.at(x, y) = 255.0f;
  }
  const Image out = sobel_reference(img);
  for (float p : out.pixels()) {
    EXPECT_LE(p, 255.0f);
    EXPECT_GE(p, 0.0f);
  }
}

TEST(Sobel, ApproximateRunKeepsEdgeStructure) {
  const Image face = make_face_image(128, 128);
  GpuDevice device(DeviceConfig::single_cu());
  device.program_threshold_as_mask(1.0f);
  const Image approx = sobel_on_device(device, face);
  const Image exact = sobel_reference(face);
  // Strong edges must remain strong: find the exact-run's max pixel and
  // check the approximate output still responds there.
  int mx = 0, my = 0;
  float best = -1.0f;
  for (int y = 1; y < 127; ++y) {
    for (int x = 1; x < 127; ++x) {
      if (exact.at(x, y) > best) {
        best = exact.at(x, y);
        mx = x;
        my = y;
      }
    }
  }
  EXPECT_GT(approx.at(mx, my), 0.25f * best);
}

TEST(Sobel, WorkloadReportsPsnrBasedVerification) {
  SobelWorkload w(make_face_image(96, 96), "face");
  EXPECT_TRUE(w.error_tolerant());
  GpuDevice device = exact_device();
  const WorkloadResult r = w.run(device);
  EXPECT_TRUE(r.passed);
  EXPECT_EQ(r.max_abs_error, 0.0);
  EXPECT_EQ(r.output_values, 96u * 96u);
}

TEST(Sobel, ActivatesTheFigure6UnitMix) {
  GpuDevice device = exact_device();
  (void)sobel_on_device(device, make_face_image(64, 64));
  const auto stats = device.unit_stats();
  for (FpuType u : {FpuType::kAdd, FpuType::kMul, FpuType::kMulAdd,
                    FpuType::kSqrt, FpuType::kFp2Int}) {
    EXPECT_GT(stats[static_cast<std::size_t>(u)].instructions, 0u)
        << fpu_type_name(u);
  }
  EXPECT_EQ(stats[static_cast<std::size_t>(FpuType::kRecip)].instructions,
            0u);
}

} // namespace
} // namespace tmemo
