// Device-vs-reference properties for all seven Table-1 kernels:
//  * with exact matching and no errors, device outputs are bit-identical
//    to the host references (the kernels' DSL lowering is mirrored);
//  * with exact matching, timing errors never corrupt outputs (recovery /
//    exact reuse);
//  * at the Table-1 thresholds the SDK-style verification passes.
#include <gtest/gtest.h>

#include "sim/simulation.hpp"
#include "workloads/workload.hpp"

namespace tmemo {
namespace {

std::vector<std::unique_ptr<Workload>> small_workloads() {
  return make_all_workloads(0.01);
}

TEST(WorkloadRegistry, SevenTable1Kernels) {
  const auto ws = small_workloads();
  ASSERT_EQ(ws.size(), 7u);
  EXPECT_EQ(ws[0]->name(), "Sobel");
  EXPECT_EQ(ws[1]->name(), "Gaussian");
  EXPECT_EQ(ws[2]->name(), "Haar");
  EXPECT_EQ(ws[3]->name(), "BinomialOption");
  EXPECT_EQ(ws[4]->name(), "BlackScholes");
  EXPECT_EQ(ws[5]->name(), "FWT");
  EXPECT_EQ(ws[6]->name(), "EigenValue");
}

TEST(WorkloadRegistry, Table1Thresholds) {
  const auto ws = small_workloads();
  EXPECT_FLOAT_EQ(ws[0]->table1_threshold(), 1.0f);
  EXPECT_FLOAT_EQ(ws[1]->table1_threshold(), 0.8f);
  EXPECT_FLOAT_EQ(ws[2]->table1_threshold(), 0.046f);
  EXPECT_FLOAT_EQ(ws[3]->table1_threshold(), 0.000025f);
  EXPECT_FLOAT_EQ(ws[4]->table1_threshold(), 0.000025f);
  EXPECT_FLOAT_EQ(ws[5]->table1_threshold(), 0.0f);
  EXPECT_FLOAT_EQ(ws[6]->table1_threshold(), 0.0f);
}

TEST(WorkloadRegistry, ErrorToleranceClasses) {
  const auto ws = small_workloads();
  EXPECT_TRUE(ws[0]->error_tolerant());
  EXPECT_TRUE(ws[1]->error_tolerant());
  for (std::size_t i = 2; i < ws.size(); ++i) {
    EXPECT_FALSE(ws[i]->error_tolerant()) << ws[i]->name();
  }
}

TEST(WorkloadRegistry, ScaleValidation) {
  EXPECT_THROW(make_all_workloads(0.0), std::invalid_argument);
  EXPECT_THROW(make_all_workloads(1.5), std::invalid_argument);
}

class WorkloadDeviceTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<Workload> workload() {
    auto ws = small_workloads();
    return std::move(ws[static_cast<std::size_t>(GetParam())]);
  }
};

TEST_P(WorkloadDeviceTest, ExactMatchingIsBitIdentical) {
  const auto w = workload();
  Simulation sim;
  const KernelRunReport r =
      sim.run(*w, RunSpec::at_error_rate(0.0).threshold(0.0f));
  EXPECT_EQ(r.result.max_abs_error, 0.0) << w->name();
  EXPECT_GT(r.result.output_values, 0u);
}

TEST_P(WorkloadDeviceTest, ErrorsNeverCorruptExactMatchedOutputs) {
  const auto w = workload();
  Simulation sim;
  const KernelRunReport r =
      sim.run(*w, RunSpec::at_error_rate(0.10).threshold(0.0f));
  EXPECT_EQ(r.result.max_abs_error, 0.0) << w->name();
  // Errors actually occurred and were handled.
  FpuStats total;
  for (const FpuStats& s : r.unit_stats) total += s;
  EXPECT_GT(total.timing_errors, 0u);
  EXPECT_EQ(total.timing_errors, total.recoveries + total.masked_errors);
}

TEST_P(WorkloadDeviceTest, Table1ThresholdPassesHostVerification) {
  const auto w = workload();
  Simulation sim;
  const KernelRunReport r = sim.run(*w, RunSpec::at_error_rate(0.0));
  EXPECT_TRUE(r.result.passed)
      << w->name() << " max_err=" << r.result.max_abs_error
      << " rel_rms=" << r.result.rel_rms_error;
}

TEST_P(WorkloadDeviceTest, Table1ThresholdPassesUnderErrors) {
  const auto w = workload();
  Simulation sim;
  const KernelRunReport r = sim.run(*w, RunSpec::at_error_rate(0.04));
  EXPECT_TRUE(r.result.passed) << w->name();
}

TEST_P(WorkloadDeviceTest, MemoizationSavesStageCycles) {
  const auto w = workload();
  Simulation sim;
  const KernelRunReport r = sim.run(*w, RunSpec::at_error_rate(0.0));
  FpuStats total;
  for (const FpuStats& s : r.unit_stats) total += s;
  EXPECT_EQ(total.gated_stage_cycles > 0, total.hits > 0) << w->name();
}

INSTANTIATE_TEST_SUITE_P(AllKernels, WorkloadDeviceTest,
                         ::testing::Range(0, 7));

} // namespace
} // namespace tmemo
