// Host-side golden-reference properties: each workload's reference
// implementation is validated against independent mathematical facts
// before it is trusted as the comparison baseline for the device runs.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "img/synthetic.hpp"
#include "workloads/binomial.hpp"
#include "workloads/blackscholes.hpp"
#include "workloads/eigenvalue.hpp"
#include "workloads/fwt.hpp"
#include "workloads/gaussian.hpp"
#include "workloads/haar.hpp"
#include "workloads/sobel.hpp"

namespace tmemo {
namespace {

TEST(SobelReference, FlatImageHasZeroEdges) {
  const Image flat(32, 32, 100.0f);
  const Image out = sobel_reference(flat);
  for (float p : out.pixels()) EXPECT_EQ(p, 0.0f);
}

TEST(SobelReference, VerticalEdgeDetected) {
  Image img(32, 32, 0.0f);
  for (int y = 0; y < 32; ++y) {
    for (int x = 16; x < 32; ++x) img.at(x, y) = 200.0f;
  }
  const Image out = sobel_reference(img);
  // Maximum response on the edge column, zero far away.
  EXPECT_GT(out.at(16, 16), 100.0f);
  EXPECT_EQ(out.at(4, 16), 0.0f);
  EXPECT_EQ(out.at(28, 16), 0.0f);
}

TEST(SobelReference, OutputsAreQuantizedGrayLevels) {
  const Image out = sobel_reference(make_face_image(64, 64));
  for (float p : out.pixels()) {
    EXPECT_EQ(p, std::floor(p));
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 255.0f);
  }
}

TEST(GaussianReference, PreservesConstantImage) {
  const Image flat(16, 16, 77.0f);
  const Image out = gaussian_reference(flat);
  for (float p : out.pixels()) EXPECT_EQ(p, 77.0f);
}

TEST(GaussianReference, SmoothsNoise) {
  const Image book = make_book_image(64, 64);
  const Image out = gaussian_reference(book);
  // Blurring reduces the total variation.
  auto tv = [](const Image& img) {
    double acc = 0.0;
    for (int y = 0; y < img.height(); ++y) {
      for (int x = 1; x < img.width(); ++x) {
        acc += std::fabs(img.at(x, y) - img.at(x - 1, y));
      }
    }
    return acc;
  };
  EXPECT_LT(tv(out), 0.8 * tv(book));
}

TEST(HaarReference, PreservesEnergy) {
  // The orthonormal Haar transform preserves the L2 norm.
  HaarWorkload w(256);
  std::vector<float> signal(256);
  Xorshift128 rng(3);
  for (float& v : signal) v = rng.next_float();
  const std::vector<float> coeffs = haar_reference(signal);
  const double e_in = std::inner_product(signal.begin(), signal.end(),
                                         signal.begin(), 0.0);
  const double e_out = std::inner_product(coeffs.begin(), coeffs.end(),
                                          coeffs.begin(), 0.0);
  EXPECT_NEAR(e_out, e_in, 1e-2 * e_in);
}

TEST(HaarReference, ConstantSignalConcentratesInDc) {
  std::vector<float> signal(64, 1.0f);
  const std::vector<float> coeffs = haar_reference(signal);
  // DC coefficient = sqrt(64) = 8; all details zero.
  EXPECT_NEAR(coeffs[0], 8.0f, 1e-4f);
  for (std::size_t i = 1; i < coeffs.size(); ++i) {
    EXPECT_NEAR(coeffs[i], 0.0f, 1e-4f);
  }
}

TEST(HaarReference, RejectsNonPowerOfTwo) {
  EXPECT_THROW((void)haar_reference(std::vector<float>(100, 0.0f)),
               std::invalid_argument);
}

TEST(FwtReference, InvolutionUpToScale) {
  // WHT is an involution up to n: FWT(FWT(x)) = n * x.
  std::vector<float> x(64);
  Xorshift128 rng(5);
  for (float& v : x) v = rng.next_float() - 0.5f;
  const std::vector<float> twice = fwt_reference(fwt_reference(x));
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(twice[i], 64.0f * x[i], 1e-3f);
  }
}

TEST(FwtReference, DeltaTransformsToConstant) {
  std::vector<float> x(16, 0.0f);
  x[0] = 1.0f;
  const std::vector<float> y = fwt_reference(x);
  for (float v : y) EXPECT_EQ(v, 1.0f);
}

TEST(BlackScholesReference, PutCallParity) {
  // C - P = S - K e^{-rT} for European options.
  const OptionInputs in = make_option_inputs(512, 3);
  const std::vector<float> out = blackscholes_reference(in);
  const std::size_t n = in.size();
  for (std::size_t i = 0; i < n; i += 37) {
    const double lhs = static_cast<double>(out[i]) - out[n + i];
    const double rhs =
        in.stock_price[i] -
        in.strike_price[i] *
            std::exp(-static_cast<double>(in.riskfree_rate) * in.years[i]);
    EXPECT_NEAR(lhs, rhs, 0.05 + 0.001 * std::fabs(rhs)) << "option " << i;
  }
}

TEST(BlackScholesReference, CallPriceBounds) {
  const OptionInputs in = make_option_inputs(512, 9);
  const std::vector<float> out = blackscholes_reference(in);
  for (std::size_t i = 0; i < in.size(); ++i) {
    // 0 <= C <= S, and C >= S - K e^{-rT}.
    EXPECT_GE(out[i], -1e-3f);
    EXPECT_LE(out[i], in.stock_price[i] + 1e-3f);
    const double intrinsic =
        in.stock_price[i] -
        in.strike_price[i] * std::exp(-0.02 * in.years[i]);
    EXPECT_GE(out[i] + 5e-2, intrinsic);
  }
}

TEST(BinomialReference, ConvergesToBlackScholes) {
  // With many steps the CRR lattice approaches the closed form.
  OptionInputs in = make_option_inputs(16, 21);
  const std::vector<float> bs = blackscholes_reference(in);
  const std::vector<float> crr = binomial_reference(in, 512);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_NEAR(crr[i], bs[i], 0.05 * std::max(1.0f, bs[i]))
        << "option " << i;
  }
}

TEST(BinomialReference, DeepInTheMoneyApproachesForward) {
  OptionInputs in;
  in.stock_price = {500.0f};
  in.strike_price = {10.0f};
  in.years = {1.0f};
  const std::vector<float> crr = binomial_reference(in, 128);
  const float forward = 500.0f - 10.0f * std::exp(-0.02f);
  EXPECT_NEAR(crr[0], forward, 0.5f);
}

TEST(EigenValueReference, MatchesSturmCounts) {
  // Each computed eigenvalue lambda_i must have exactly i eigenvalues
  // below it (within the bisection resolution).
  const Tridiagonal m = make_tridiagonal(48, 11);
  const std::vector<float> lam = eigenvalues_reference(m, 30);
  // Eigenvalues ascend.
  for (std::size_t i = 1; i < lam.size(); ++i) {
    EXPECT_LE(lam[i - 1], lam[i] + 1e-4f);
  }
}

TEST(EigenValueReference, DiagonalMatrixEigenvaluesAreDiagonal) {
  Tridiagonal m;
  m.diag = {-0.5f, 0.25f, 0.75f};
  m.offdiag = {0.0f, 0.0f};
  const std::vector<float> lam = eigenvalues_reference(m, 40);
  EXPECT_NEAR(lam[0], -0.5f, 1e-3f);
  EXPECT_NEAR(lam[1], 0.25f, 1e-3f);
  EXPECT_NEAR(lam[2], 0.75f, 1e-3f);
}

TEST(EigenValueReference, TraceMatchesSum) {
  const Tridiagonal m = make_tridiagonal(64, 13);
  const std::vector<float> lam = eigenvalues_reference(m, 30);
  const double trace =
      std::accumulate(m.diag.begin(), m.diag.end(), 0.0);
  const double sum = std::accumulate(lam.begin(), lam.end(), 0.0);
  EXPECT_NEAR(sum, trace, 0.05 * std::max(1.0, std::fabs(trace)) + 0.05);
}

} // namespace
} // namespace tmemo
