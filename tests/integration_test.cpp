// Cross-module integration properties: the paper's headline claims, each
// checked end-to-end through the full stack (kernel DSL -> scheduler ->
// memoization -> error injection -> energy model).
#include <gtest/gtest.h>

#include "img/synthetic.hpp"
#include "sim/simulation.hpp"
#include "workloads/gaussian.hpp"
#include "workloads/sobel.hpp"
#include "workloads/workload.hpp"

namespace tmemo {
namespace {

TEST(Integration, AverageSavingTracksPaperHeadline) {
  // Paper: average savings 13%..25% over error rates 0%..4%. Allow a
  // generous band — the shape must hold, not the exact decimals.
  Simulation sim;
  const auto workloads = make_all_workloads(0.01);
  double avg0 = 0.0, avg4 = 0.0;
  for (const auto& w : workloads) {
    avg0 += sim.run(*w, RunSpec::at_error_rate(0.0)).energy.saving();
    avg4 += sim.run(*w, RunSpec::at_error_rate(0.04)).energy.saving();
  }
  avg0 /= static_cast<double>(workloads.size());
  avg4 /= static_cast<double>(workloads.size());
  EXPECT_GT(avg0, 0.05);
  EXPECT_LT(avg0, 0.25);
  EXPECT_GT(avg4, avg0 + 0.05); // clearly larger at 4% errors
  EXPECT_LT(avg4, 0.45);
}

TEST(Integration, MaskedErrorsAvoidRecoveries) {
  // At the same error rate, the memoized architecture recovers strictly
  // less often than errors occur whenever any hit masks one.
  Simulation sim;
  const auto workloads = make_all_workloads(0.01);
  const KernelRunReport r = sim.run(*workloads[0], RunSpec::at_error_rate(0.04));
  FpuStats total;
  for (const FpuStats& s : r.unit_stats) total += s;
  EXPECT_GT(total.masked_errors, 0u);
  EXPECT_LT(total.recoveries, total.timing_errors);
}

TEST(Integration, FaceToleratesLargerThresholdThanBook) {
  // The Figs. 2-5 contrast: the smooth portrait keeps PSNR >= 30 dB at a
  // strictly larger threshold than the busy text page.
  auto largest_ok = [](const Image& img) {
    const Image golden = sobel_reference(img);
    float best = 0.0f;
    for (float t : {0.2f, 0.4f, 0.6f, 1.0f}) {
      ExperimentConfig cfg;
      GpuDevice device(cfg.device,
                       EnergyModel(cfg.energy, VoltageScaling(cfg.voltage)));
      device.program_threshold_as_mask(t);
      const Image out = sobel_on_device(device, img);
      if (psnr(golden, out) >= 30.0) best = t;
    }
    return best;
  };
  const float face_ok = largest_ok(make_face_image(256, 256));
  const float book_ok = largest_ok(make_book_image(256, 256));
  EXPECT_GT(face_ok, book_ok);
}

TEST(Integration, DeeperFifoImprovesHitRateWithDiminishingReturns) {
  // §4.1: 2 -> 64 entries gains less than ~20% absolute hit rate.
  double rates[3];
  int idx = 0;
  for (int depth : {2, 8, 64}) {
    ExperimentConfig cfg;
    cfg.device.fpu.lut_depth = depth;
    Simulation sim(cfg);
    const auto workloads = make_all_workloads(0.01);
    std::uint64_t hits = 0, instrs = 0;
    for (const auto& w : workloads) {
      const KernelRunReport r = sim.run(*w, RunSpec::at_error_rate(0.0));
      for (const FpuStats& s : r.unit_stats) {
        hits += s.hits;
        instrs += s.instructions;
      }
    }
    rates[idx++] = static_cast<double>(hits) / static_cast<double>(instrs);
  }
  EXPECT_GE(rates[1], rates[0]);
  EXPECT_GE(rates[2], rates[1]);
  EXPECT_LT(rates[2] - rates[0], 0.25);
}

TEST(Integration, PowerGatedModuleBehavesLikeBaseline) {
  // §4.2: an application lacking locality can power-gate the module and
  // avoid any penalty.
  ExperimentConfig cfg;
  cfg.memoization = false;
  Simulation gated(cfg);
  Simulation memoized;
  const auto a = make_all_workloads(0.01);
  const auto b = make_all_workloads(0.01);
  const KernelRunReport rg = gated.run(*a[5], RunSpec::at_error_rate(0.0));   // FWT
  const KernelRunReport rm = memoized.run(*b[5], RunSpec::at_error_rate(0.0));
  // FWT has modest locality; when gated its energy equals the baseline,
  // while the always-on module pays its overhead.
  EXPECT_NEAR(rg.energy.memoized_pj, rg.energy.baseline_pj, 1e-6);
  EXPECT_GT(rm.energy.memoized_pj, 0.0);
}

TEST(Integration, ApproximateImageRunStillIdentifiesEdges) {
  // End-to-end sanity of approximate mode: the Sobel output at the Table-1
  // threshold still looks like an edge map (correlates with the exact one).
  const Image face = make_face_image(192, 192);
  ExperimentConfig cfg;
  GpuDevice device(cfg.device,
                   EnergyModel(cfg.energy, VoltageScaling(cfg.voltage)));
  device.program_threshold_as_mask(1.0f);
  const Image approx = sobel_on_device(device, face);
  const Image exact = sobel_reference(face);
  EXPECT_GE(psnr(exact, approx), 30.0);
}

TEST(Integration, RecipUnitSuffersMostUnderVos) {
  // The 16-stage RECIP accumulates more per-op errors than 4-stage units;
  // verify through the device statistics at 0.81 V.
  Simulation sim;
  const auto workloads = make_all_workloads(0.01);
  // Gaussian activates RECIP and MULADD.
  const KernelRunReport r = sim.run(*workloads[1], RunSpec::at_voltage(0.81));
  const auto& recip =
      r.unit_stats[static_cast<std::size_t>(FpuType::kRecip)];
  const auto& muladd =
      r.unit_stats[static_cast<std::size_t>(FpuType::kMulAdd)];
  ASSERT_GT(recip.instructions, 0u);
  ASSERT_GT(muladd.instructions, 0u);
  const double recip_rate = static_cast<double>(recip.timing_errors) /
                            static_cast<double>(recip.instructions);
  const double muladd_rate = static_cast<double>(muladd.timing_errors) /
                             static_cast<double>(muladd.instructions);
  EXPECT_GT(recip_rate, muladd_rate);
}

TEST(Integration, EnergyNeverNegative) {
  Simulation sim;
  const auto workloads = make_all_workloads(0.01);
  for (const auto& w : workloads) {
    for (double rate : {0.0, 0.04}) {
      const KernelRunReport r = sim.run(*w, RunSpec::at_error_rate(rate));
      EXPECT_GT(r.energy.memoized_pj, 0.0) << w->name();
      EXPECT_GT(r.energy.baseline_pj, 0.0) << w->name();
    }
  }
}

} // namespace
} // namespace tmemo
