// Fault-injection subsystem tests (src/inject/ + its seams in memo/ and
// timing/): seed derivation, the SEU injector's determinism and Poisson
// process, parity hardening, imperfect-EDS outcomes, the ResilientFpu SDC
// paths, the replay-storm watchdog degradations, and the zero-cost-when-off
// contract. The final tests are the ISSUE acceptance checks: parity strictly
// reduces SDCs at the same seed, and SDC totals surface in KernelRunReport.
#include "inject/fault_config.hpp"
#include "inject/lut_injector.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "common/bits.hpp"
#include "common/rng.hpp"
#include "memo/lut.hpp"
#include "memo/resilient_fpu.hpp"
#include "sim/campaign.hpp"
#include "timing/eds.hpp"
#include "timing/error_model.hpp"

namespace tmemo {
namespace {

FpInstruction ins(FpOpcode op, float a, float b = 0.0f, float c = 0.0f) {
  FpInstruction i;
  i.opcode = op;
  i.operands = {a, b, c};
  return i;
}

// -- Seed derivation (lint rule R8's blessed path) ---------------------------

TEST(DeriveFaultSeed, IsDeterministicAndSaltSensitive) {
  EXPECT_EQ(inject::derive_fault_seed(42, 0), inject::derive_fault_seed(42, 0));
  EXPECT_NE(inject::derive_fault_seed(42, 0), inject::derive_fault_seed(42, 1));
  EXPECT_NE(inject::derive_fault_seed(42, 0), inject::derive_fault_seed(43, 0));
  // The finalizer must not collapse the zero seed.
  EXPECT_NE(inject::derive_fault_seed(0, 0), 0u);
}

TEST(FlipRandomFractionBit, TouchesExactlyOneFractionBit) {
  const std::uint64_t seed = inject::derive_fault_seed(7, 7);
  Xorshift128 rng(seed);
  const float v = 1.5f;
  for (int i = 0; i < 64; ++i) {
    const float flipped = inject::flip_random_fraction_bit(v, rng);
    const std::uint32_t delta = float_to_bits(v) ^ float_to_bits(flipped);
    EXPECT_NE(delta, 0u);                      // the value always changes
    EXPECT_EQ(delta & (delta - 1), 0u);        // exactly one bit
    EXPECT_LT(delta, 1u << 23);                // and it is a fraction bit
  }
}

// -- LutFaultInjector ---------------------------------------------------------

MemoLut warmed_lut(int entries = 2) {
  MemoLut lut(2);
  for (int i = 0; i < entries; ++i) {
    lut.update(ins(FpOpcode::kAdd, static_cast<float>(i), 2.0f),
               static_cast<float>(i) + 2.0f);
  }
  return lut;
}

TEST(LutFaultInjector, SameSeedSameUpsetSequence) {
  inject::LutFaultConfig config;
  config.seu_per_cycle = 0.02;
  const std::uint64_t seed = inject::derive_fault_seed(1, 2);
  inject::LutFaultInjector a(config, seed);
  inject::LutFaultInjector b(config, seed);
  MemoLut lut_a = warmed_lut();
  MemoLut lut_b = warmed_lut();
  for (int step = 0; step < 500; ++step) {
    EXPECT_EQ(a.advance(lut_a, 4), b.advance(lut_b, 4));
  }
  EXPECT_EQ(a.stats().upsets_drawn, b.stats().upsets_drawn);
  EXPECT_EQ(a.stats().bits_flipped, b.stats().bits_flipped);
  ASSERT_EQ(lut_a.entries().size(), lut_b.entries().size());
  for (std::size_t i = 0; i < lut_a.entries().size(); ++i) {
    const LutEntry& ea = lut_a.entries()[i];
    const LutEntry& eb = lut_b.entries()[i];
    EXPECT_EQ(float_to_bits(ea.result), float_to_bits(eb.result));
    EXPECT_EQ(ea.seu_flips, eb.seu_flips);
    for (int w = 0; w < kMaxOperands; ++w) {
      EXPECT_EQ(float_to_bits(ea.operands[static_cast<std::size_t>(w)]),
                float_to_bits(eb.operands[static_cast<std::size_t>(w)]));
    }
  }
}

TEST(LutFaultInjector, DisabledInjectorNeverTouchesItsRng) {
  // Zero-cost-when-off: with seu_per_cycle == 0, advance() must not consume
  // RNG state, so the stream is exactly where a fresh one would be.
  const std::uint64_t seed = inject::derive_fault_seed(9, 3);
  inject::LutFaultInjector idle(inject::LutFaultConfig{}, seed);
  MemoLut lut = warmed_lut();
  for (int step = 0; step < 100; ++step) {
    EXPECT_EQ(idle.advance(lut, 4), 0);
  }
  EXPECT_EQ(idle.stats().cycles_advanced, 0u);
  EXPECT_EQ(idle.stats().upsets_drawn, 0u);
  EXPECT_EQ(idle.stats().bits_flipped, 0u);
  Xorshift128 fresh(seed);
  EXPECT_EQ(idle.rng().next_u64(), fresh.next_u64());
  // Every entry is still pristine.
  for (const LutEntry& e : lut.entries()) EXPECT_FALSE(e.corrupted());
}

TEST(LutFaultInjector, PoissonArrivalsLandOnLiveEntriesOnly) {
  inject::LutFaultConfig config;
  config.seu_per_cycle = 0.05;
  inject::LutFaultInjector injector(config,
                                    inject::derive_fault_seed(0x5eed, 4));
  MemoLut empty(2);
  int flipped_in_empty = 0;
  for (int step = 0; step < 400; ++step) flipped_in_empty += injector.advance(empty, 4);
  // Upsets arrive regardless, but land in invalid lines while the FIFO is
  // empty: architecturally harmless.
  EXPECT_EQ(flipped_in_empty, 0);
  EXPECT_GT(injector.stats().upsets_drawn, 0u);
  EXPECT_EQ(injector.stats().bits_flipped, 0u);
  EXPECT_EQ(injector.stats().cycles_advanced, 1600u);

  MemoLut live = warmed_lut();
  int flipped_in_live = 0;
  for (int step = 0; step < 400; ++step) flipped_in_live += injector.advance(live, 4);
  EXPECT_GT(flipped_in_live, 0);
  EXPECT_EQ(injector.stats().bits_flipped,
            static_cast<std::uint64_t>(flipped_in_live));
  EXPECT_GE(injector.stats().upsets_drawn, injector.stats().bits_flipped);
}

// -- MemoLut corruption + parity hardening ------------------------------------

TEST(MemoLut, CorruptBitFlipsStoredWordAndMarksEntry) {
  MemoLut lut(2);
  lut.update(ins(FpOpcode::kAdd, 1.0f, 2.0f), 3.0f);
  const std::uint32_t before = float_to_bits(lut.entries().front().result);
  lut.corrupt_bit(/*entry_index=*/0, /*word=*/kMaxOperands, /*bit=*/5);
  const LutEntry& e = lut.entries().front();
  EXPECT_TRUE(e.corrupted());
  EXPECT_EQ(e.seu_flips, 1);
  EXPECT_EQ(float_to_bits(e.result), before ^ (1u << 5));
}

TEST(MemoLut, UnprotectedLookupServesCorruptLineAndCountsIt) {
  MemoLut lut(2);
  lut.update(ins(FpOpcode::kAdd, 1.0f, 2.0f), 3.0f);
  lut.corrupt_bit(0, kMaxOperands, 5);
  const auto res = lut.lookup_checked(ins(FpOpcode::kAdd, 1.0f, 2.0f),
                                      MatchConstraint::exact());
  EXPECT_TRUE(res.hit);
  EXPECT_TRUE(res.corrupted);
  EXPECT_EQ(float_to_bits(res.value), float_to_bits(3.0f) ^ (1u << 5));
  EXPECT_EQ(lut.stats().corrupt_hits, 1u);
  EXPECT_EQ(lut.stats().parity_invalidations, 0u);
}

TEST(MemoLut, ParityDropsOddFlipLinesBeforeMatching) {
  MemoLut lut(2);
  lut.set_parity_protected(true);
  lut.update(ins(FpOpcode::kAdd, 1.0f, 2.0f), 3.0f);
  lut.corrupt_bit(0, kMaxOperands, 5);
  const auto res = lut.lookup_checked(ins(FpOpcode::kAdd, 1.0f, 2.0f),
                                      MatchConstraint::exact());
  EXPECT_FALSE(res.hit);
  EXPECT_FALSE(res.corrupted);
  EXPECT_EQ(lut.size(), 0);  // the poisoned line is gone
  EXPECT_EQ(lut.stats().parity_invalidations, 1u);
  EXPECT_EQ(lut.stats().corrupt_hits, 0u);
}

TEST(MemoLut, EvenFlipCountEscapesSingleParity) {
  // Two flips restore even parity — exactly the blind spot of real
  // single-parity SRAM. The line survives the check and still serves a
  // corrupted value (counted as a corrupt hit, not an invalidation).
  MemoLut lut(2);
  lut.set_parity_protected(true);
  lut.update(ins(FpOpcode::kAdd, 1.0f, 2.0f), 3.0f);
  lut.corrupt_bit(0, kMaxOperands, 5);
  lut.corrupt_bit(0, kMaxOperands, 9);
  const auto res = lut.lookup_checked(ins(FpOpcode::kAdd, 1.0f, 2.0f),
                                      MatchConstraint::exact());
  EXPECT_TRUE(res.hit);
  EXPECT_TRUE(res.corrupted);
  EXPECT_EQ(lut.stats().parity_invalidations, 0u);
  EXPECT_EQ(lut.stats().corrupt_hits, 1u);
}

// -- Imperfect EDS sensors ----------------------------------------------------

TEST(EdsFaults, CertainFalseNegativeSuppressesRealViolation) {
  inject::EdsFaultConfig faults;
  faults.false_negative_rate = 1.0;
  EdsSensorBank eds(FpuType::kAdd, /*seed=*/11, faults);
  const FixedRateErrorModel always(1.0);
  for (int i = 0; i < 32; ++i) {
    const EdsObservation obs = eds.observe(always);
    EXPECT_TRUE(obs.true_error);
    EXPECT_FALSE(obs.error);  // the ECU never learns about it
    EXPECT_TRUE(obs.false_negative);
    EXPECT_FALSE(obs.false_positive);
    EXPECT_EQ(obs.errant_stage, -1);
  }
}

TEST(EdsFaults, CertainFalsePositiveFlagsCleanPasses) {
  inject::EdsFaultConfig faults;
  faults.false_positive_rate = 1.0;
  EdsSensorBank eds(FpuType::kAdd, /*seed=*/11, faults);
  const NoErrorModel none;
  for (int i = 0; i < 32; ++i) {
    const EdsObservation obs = eds.observe(none);
    EXPECT_FALSE(obs.true_error);
    EXPECT_TRUE(obs.error);  // spurious flag reaches the ECU
    EXPECT_TRUE(obs.false_positive);
    EXPECT_FALSE(obs.false_negative);
    EXPECT_GE(obs.errant_stage, 0);
    EXPECT_LT(obs.errant_stage, eds.depth());
  }
}

TEST(EdsFaults, ZeroRatesLeaveTheSampleStreamBitIdentical) {
  // An explicitly zeroed EdsFaultConfig is disabled, so the Bernoulli draws
  // for the imperfection never happen and the RNG stream matches a
  // fault-free bank sample for sample.
  EdsSensorBank plain(FpuType::kMulAdd, /*seed=*/77);
  EdsSensorBank zeroed(FpuType::kMulAdd, /*seed=*/77, inject::EdsFaultConfig{});
  EXPECT_FALSE(zeroed.faults().enabled());
  const FixedRateErrorModel half(0.5);
  for (int i = 0; i < 256; ++i) {
    const EdsObservation a = plain.observe(half);
    const EdsObservation b = zeroed.observe(half);
    EXPECT_EQ(a.error, b.error);
    EXPECT_EQ(a.errant_stage, b.errant_stage);
    EXPECT_EQ(a.propagation_cycles, b.propagation_cycles);
  }
}

// -- ResilientFpu SDC paths ---------------------------------------------------

TEST(ResilientFpuInject, MissedErrorCommitsSilentlyAndPoisonsTheLut) {
  ResilientFpuConfig config;
  config.inject.eds.false_negative_rate = 1.0;
  ResilientFpu fpu(FpuType::kAdd, config);
  const FixedRateErrorModel always(1.0);

  // First pass: the violation is real but never flagged. The corrupted
  // value commits (one fraction bit off the exact result) and — worse —
  // W_en memorizes it.
  const auto first = fpu.execute(ins(FpOpcode::kAdd, 1.0f, 2.0f), always);
  EXPECT_EQ(first.action, MemoAction::kNormalExecution);
  EXPECT_FALSE(first.timing_error);  // the observed flag stayed down
  EXPECT_TRUE(first.eds_false_negative);
  EXPECT_TRUE(first.sdc);
  EXPECT_EQ(first.exact_result, 3.0f);
  EXPECT_NE(float_to_bits(first.result), float_to_bits(3.0f));
  EXPECT_TRUE(first.lut_updated);

  // Second pass, same operands: the hit replays the poisoned value.
  const auto second = fpu.execute(ins(FpOpcode::kAdd, 1.0f, 2.0f), always);
  EXPECT_EQ(second.action, MemoAction::kReuse);
  EXPECT_EQ(float_to_bits(second.result), float_to_bits(first.result));

  EXPECT_EQ(fpu.stats().eds_false_negatives, 2u);
  EXPECT_EQ(fpu.stats().sdc_ops, 1u);
  EXPECT_EQ(fpu.ecu().stats().recoveries, 0u);  // nothing ever recovered
}

TEST(ResilientFpuInject, FalsePositivePaysFullRecoveryForNothing) {
  ResilientFpuConfig config;
  config.inject.eds.false_positive_rate = 1.0;
  ResilientFpu fpu(FpuType::kAdd, config);
  const NoErrorModel none;
  const auto rec = fpu.execute(ins(FpOpcode::kAdd, 1.0f, 2.0f), none);
  EXPECT_EQ(rec.action, MemoAction::kTriggerRecovery);
  EXPECT_TRUE(rec.eds_false_positive);
  EXPECT_TRUE(rec.recovered);
  EXPECT_EQ(rec.recovery_cycles, 12);
  EXPECT_EQ(rec.result, 3.0f);  // the replay is exact; only energy is wasted
  EXPECT_FALSE(rec.sdc);
  EXPECT_FALSE(rec.lut_updated);
  EXPECT_EQ(fpu.stats().eds_false_positives, 1u);
  EXPECT_EQ(fpu.stats().sdc_ops, 0u);
}

TEST(ResilientFpuInject, CorruptReuseIsSilentDataCorruption) {
  ResilientFpu fpu(FpuType::kAdd, ResilientFpuConfig{});
  const NoErrorModel none;
  (void)fpu.execute(ins(FpOpcode::kAdd, 1.0f, 2.0f), none);
  fpu.lut().corrupt_bit(0, kMaxOperands, 7);
  const auto rec = fpu.execute(ins(FpOpcode::kAdd, 1.0f, 2.0f), none);
  EXPECT_EQ(rec.action, MemoAction::kReuse);
  EXPECT_TRUE(rec.corrupt_reuse);
  EXPECT_TRUE(rec.sdc);
  EXPECT_EQ(float_to_bits(rec.result), float_to_bits(3.0f) ^ (1u << 7));
  EXPECT_EQ(fpu.stats().corrupt_reuses, 1u);
  EXPECT_EQ(fpu.stats().sdc_ops, 1u);
}

TEST(ResilientFpuInject, ParityInvalidationPreventsTheCorruptReuse) {
  ResilientFpuConfig config;
  config.inject.lut.parity = true;
  ResilientFpu fpu(FpuType::kAdd, config);
  EXPECT_TRUE(fpu.lut().parity_protected());
  const NoErrorModel none;
  (void)fpu.execute(ins(FpOpcode::kAdd, 1.0f, 2.0f), none);
  fpu.lut().corrupt_bit(0, kMaxOperands, 7);
  const auto rec = fpu.execute(ins(FpOpcode::kAdd, 1.0f, 2.0f), none);
  // The poisoned line was dropped before matching: a clean re-execution
  // commits the exact value and refills the FIFO.
  EXPECT_EQ(rec.action, MemoAction::kNormalExecution);
  EXPECT_FALSE(rec.lut_hit);
  EXPECT_FALSE(rec.sdc);
  EXPECT_EQ(rec.result, 3.0f);
  EXPECT_TRUE(rec.lut_updated);
  EXPECT_EQ(fpu.stats().parity_invalidations, 1u);
  EXPECT_EQ(fpu.stats().corrupt_reuses, 0u);
  EXPECT_EQ(fpu.stats().sdc_ops, 0u);
}

// -- Replay-storm watchdog ----------------------------------------------------

TEST(ResilientFpuInject, WatchdogDisablesMemoizationPastTheBudget) {
  ResilientFpuConfig config;
  config.inject.watchdog.recovery_cycle_budget = 20;
  config.inject.watchdog.action = inject::WatchdogAction::kDisableMemoization;
  ResilientFpu fpu(FpuType::kAdd, config);
  const FixedRateErrorModel always(1.0);

  const auto r1 = fpu.execute(ins(FpOpcode::kAdd, 1.0f, 2.0f), always);
  EXPECT_TRUE(r1.recovered);
  EXPECT_EQ(r1.lut_lookups, 1);  // 12 cycles spent: still under budget
  EXPECT_FALSE(fpu.ecu().storm_tripped());

  const auto r2 = fpu.execute(ins(FpOpcode::kAdd, 1.0f, 2.0f), always);
  EXPECT_TRUE(r2.recovered);  // 24 cycles: the watchdog latches
  EXPECT_TRUE(fpu.ecu().storm_tripped());
  EXPECT_EQ(fpu.ecu().stats().watchdog_trips, 1u);

  // Degraded mode: the module is powered down for every later op — no
  // lookups, no FIFO writes — while the ECU keeps recovering real errors.
  const auto r3 = fpu.execute(ins(FpOpcode::kAdd, 1.0f, 2.0f), always);
  EXPECT_FALSE(r3.memo_enabled);
  EXPECT_EQ(r3.lut_lookups, 0);
  EXPECT_FALSE(r3.lut_updated);
  EXPECT_TRUE(r3.recovered);
  EXPECT_EQ(fpu.ecu().stats().watchdog_trips, 1u);  // trips once, stays latched
}

TEST(ResilientFpuInject, WatchdogGuardbandEndsTheStormInstead) {
  ResilientFpuConfig config;
  config.inject.watchdog.recovery_cycle_budget = 12;
  config.inject.watchdog.action = inject::WatchdogAction::kRaiseGuardband;
  ResilientFpu fpu(FpuType::kAdd, config);
  const FixedRateErrorModel always(1.0);

  (void)fpu.execute(ins(FpOpcode::kAdd, 1.0f, 2.0f), always);  // 12: at budget
  EXPECT_FALSE(fpu.ecu().storm_tripped());
  (void)fpu.execute(ins(FpOpcode::kAdd, 1.0f, 2.0f), always);  // 24: tripped
  EXPECT_TRUE(fpu.ecu().storm_tripped());

  // With the guardband restored, violations are impossible: the sensors are
  // not even sampled, the op executes normally and memoization keeps going.
  const auto r3 = fpu.execute(ins(FpOpcode::kAdd, 1.0f, 2.0f), always);
  EXPECT_FALSE(r3.timing_error);
  EXPECT_FALSE(r3.recovered);
  EXPECT_TRUE(r3.memo_enabled);
  EXPECT_TRUE(r3.lut_updated);
  EXPECT_EQ(fpu.ecu().stats().recovery_cycles, 24u);  // storm over
  const auto r4 = fpu.execute(ins(FpOpcode::kAdd, 1.0f, 2.0f), always);
  EXPECT_EQ(r4.action, MemoAction::kReuse);  // and hits resume
}

// -- Zero-cost-when-off -------------------------------------------------------

TEST(ZeroCostWhenOff, DefaultConfigModelsFaultFreeHardware) {
  const inject::FaultInjectionConfig config;
  EXPECT_FALSE(config.lut.enabled());
  EXPECT_FALSE(config.eds.enabled());
  EXPECT_FALSE(config.watchdog.enabled());
  EXPECT_FALSE(config.any_faults());
}

TEST(ZeroCostWhenOff, HardeningAloneChangesNothingOnFaultFreeHardware) {
  // Parity protection is pure hardening: with no SEUs there is never a
  // corrupt line to drop, so a parity-protected FPU is bit-identical to the
  // plain one on the same instruction stream.
  ResilientFpuConfig plain;
  ResilientFpuConfig hardened;
  hardened.inject.lut.parity = true;
  ResilientFpu a(FpuType::kAdd, plain);
  ResilientFpu b(FpuType::kAdd, hardened);
  const FixedRateErrorModel half(0.5);
  for (int i = 0; i < 512; ++i) {
    const auto op = ins(FpOpcode::kAdd, static_cast<float>(i % 7), 2.0f);
    const auto ra = a.execute(op, half);
    const auto rb = b.execute(op, half);
    EXPECT_EQ(ra.action, rb.action);
    EXPECT_EQ(float_to_bits(ra.result), float_to_bits(rb.result));
    EXPECT_EQ(ra.timing_error, rb.timing_error);
    EXPECT_EQ(ra.lut_hit, rb.lut_hit);
  }
  EXPECT_EQ(a.stats().hits, b.stats().hits);
  EXPECT_EQ(a.stats().recoveries, b.stats().recoveries);
  EXPECT_EQ(b.stats().parity_invalidations, 0u);
  EXPECT_EQ(b.stats().sdc_ops, 0u);
}

// -- ISSUE acceptance: parity strictly reduces SDCs at the same seed ----------

TEST(Acceptance, ParityProtectedRunCommitsStrictlyFewerSdcs) {
  // Same seed, same SEU rate, same instruction stream; the only difference
  // is the parity bit. Unprotected hardware replays corrupt lines freely;
  // parity catches every odd-flip line, leaving only the rare even-flip
  // escapes.
  const auto run = [](bool parity) {
    ResilientFpuConfig config;
    config.eds_seed = 0x5eed;
    config.inject.lut.seu_per_cycle = 0.05;
    config.inject.lut.parity = parity;
    ResilientFpu fpu(FpuType::kAdd, config);
    const NoErrorModel none;
    std::uint64_t sdc = 0;
    for (int i = 0; i < 2000; ++i) {
      // A 4-value working set keeps the 2-entry FIFO hot: most ops hit, so
      // corrupt lines get plenty of chances to be reused.
      const auto op = ins(FpOpcode::kAdd, static_cast<float>(i % 2), 2.0f);
      sdc += fpu.execute(op, none).sdc ? 1u : 0u;
    }
    EXPECT_EQ(sdc, fpu.stats().sdc_ops);
    return fpu.stats();
  };
  const FpuStats unprotected = run(false);
  const FpuStats hardened = run(true);
  ASSERT_GT(unprotected.sdc_ops, 0u) << "the SEU rate must actually bite";
  EXPECT_LT(hardened.sdc_ops, unprotected.sdc_ops);
  EXPECT_GT(hardened.parity_invalidations, 0u);
  EXPECT_EQ(unprotected.parity_invalidations, 0u);
  // Both runs saw the same upset process (same derived seed, same rate).
  EXPECT_GT(unprotected.seu_flips, 0u);
  EXPECT_GT(hardened.seu_flips, 0u);
}

// -- ISSUE acceptance: SDC totals surface in KernelRunReport ------------------

TEST(Acceptance, SdcAccountingReachesTheCampaignReport) {
  SweepSpec spec;
  spec.scale = 0.01;
  spec.kernels = {"haar"};
  spec.axis = SweepAxis::error_rate_point(0.02);
  // Exact matching: with a zero threshold the memo path introduces no
  // approximation noise, so every nonzero output deviation below is a real
  // injected corruption, not an approximate-reuse artifact.
  spec.thresholds = {0.0f};
  spec.variants.push_back({"base", {}});
  ConfigVariant faulty;
  faulty.label = "eds-fn";
  faulty.config.device.fpu.inject.eds.false_negative_rate = 1.0;
  spec.variants.push_back(faulty);

  const CampaignResult res = CampaignEngine(1).run(spec);
  ASSERT_EQ(res.jobs.size(), 2u);
  const JobResult& base = res.jobs[0];
  const JobResult& faulted = res.jobs[1];
  ASSERT_TRUE(base.ok);
  ASSERT_TRUE(faulted.ok);
  // Fault-free hardware never commits silent corruption.
  EXPECT_EQ(base.report.total_sdc_ops(), 0u);
  EXPECT_EQ(base.report.result.sdc_values, 0u);
  // With every real violation missed, corrupted values commit and show up
  // both in the op-level count and in the host-side output diff.
  EXPECT_GT(faulted.report.total_sdc_ops(), 0u);
  EXPECT_GT(faulted.report.sdc_op_rate(), 0.0);
  EXPECT_GT(faulted.report.result.sdc_values, 0u);

  // And the writers carry the columns (satellite of the SDC accounting).
  std::ostringstream csv;
  write_campaign_csv(res, csv);
  EXPECT_NE(csv.str().find("sdc_values,sdc_ops"), std::string::npos);
  std::ostringstream json;
  write_campaign_json(res, json);
  EXPECT_NE(json.str().find("\"sdc_ops\""), std::string::npos);
}

} // namespace
} // namespace tmemo
