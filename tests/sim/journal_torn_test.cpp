// Torn-write tests for the campaign journal (docs/RESILIENCE.md): every
// appended record is write()+fsync()ed, so a crash — of the campaign or of
// the host — can tear at most the final line. read_campaign_journal must
// tolerate such a trailing partial record (counting it in malformed_rows
// instead of failing), and a resume from a torn journal must reproduce the
// uninterrupted campaign bit-identically, re-running only the torn-off
// jobs.
#include "sim/campaign.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "workloads/haar.hpp"
#include "workloads/workload.hpp"

namespace tmemo {
namespace {

SweepSpec haar_spec() {
  SweepSpec spec;
  spec.factory = [] {
    std::vector<std::unique_ptr<Workload>> v;
    v.push_back(std::make_unique<HaarWorkload>(128));
    return v;
  };
  spec.axis = SweepAxis::error_rate(0.0, 0.04, 3);
  return spec;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "tmemo_torn_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void spill(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

/// Journal text of a complete run of haar_spec(), plus the clean result.
struct CleanRun {
  std::string journal_text;
  CampaignResult result;
};

CleanRun clean_run(const std::string& tag) {
  const std::string path = temp_path(tag);
  std::remove(path.c_str());
  CampaignRunOptions options;
  options.journal_path = path;
  CleanRun run;
  run.result = CampaignEngine(1).run(haar_spec(), options);
  run.journal_text = slurp(path);
  std::remove(path.c_str());
  return run;
}

std::string csv_of(const CampaignResult& res) {
  std::ostringstream out;
  write_campaign_csv(res, out);
  return out.str();
}

/// The CSV with the wall_ms column blanked (the only wall-clock field).
std::string csv_without_wall(const CampaignResult& res) {
  std::istringstream in(csv_of(res));
  std::ostringstream out;
  std::vector<std::string> fields;
  while (read_csv_record(in, fields)) {
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (fields.size() > 19 && i == 19) fields[i].clear();
      out << (i == 0 ? "" : ",") << fields[i];
    }
    out << '\n';
  }
  return out.str();
}

TEST(TornJournal, TrailingPartialLineIsCountedNotFatal) {
  const CleanRun clean = clean_run("count.journal");
  ASSERT_TRUE(clean.result.all_ok());
  const std::string& text = clean.journal_text;
  ASSERT_GT(text.size(), 40u);

  // Cut the journal mid-final-record at every offset within the last line:
  // each truncation must parse to fewer entries plus exactly one malformed
  // row — never an exception.
  const std::size_t last_line_start = text.rfind('\n', text.size() - 2) + 1;
  for (std::size_t cut = last_line_start + 1; cut < text.size() - 1; ++cut) {
    std::istringstream in(text.substr(0, cut));
    const CampaignJournal journal = read_campaign_journal(in);
    EXPECT_EQ(journal.entries.size(), clean.result.jobs.size() - 1)
        << "cut at byte " << cut;
    EXPECT_EQ(journal.malformed_rows, 1u) << "cut at byte " << cut;
  }

  // An un-torn journal parses with no malformed rows.
  std::istringstream whole(text);
  const CampaignJournal journal = read_campaign_journal(whole);
  EXPECT_EQ(journal.entries.size(), clean.result.jobs.size());
  EXPECT_EQ(journal.malformed_rows, 0u);
}

TEST(TornJournal, TearInsideAQuotedFieldIsTolerated) {
  // A record whose final field is quoted (here: an error text with commas
  // and newlines) torn mid-quote leaves an unterminated RFC-4180 quote —
  // the nastiest torn shape, since the parser sees one giant field.
  const CleanRun clean = clean_run("quoted.journal");
  std::string text = clean.journal_text;
  text += "99,\"torn, error\nwith a line break"; // no closing quote, no \n
  std::istringstream in(text);
  const CampaignJournal journal = read_campaign_journal(in);
  EXPECT_EQ(journal.entries.size(), clean.result.jobs.size());
  EXPECT_EQ(journal.malformed_rows, 1u);
}

TEST(TornJournal, ResumeFromTornJournalIsBitIdentical) {
  const CleanRun clean = clean_run("resume.journal");
  ASSERT_TRUE(clean.result.all_ok());

  // Tear half of the final record off, as a crash mid-append would.
  const std::string& text = clean.journal_text;
  const std::size_t last_line_start = text.rfind('\n', text.size() - 2) + 1;
  const std::size_t cut =
      last_line_start + (text.size() - last_line_start) / 2;
  const std::string torn_path = temp_path("resume_torn.journal");
  spill(torn_path, text.substr(0, cut));

  std::ifstream in(torn_path);
  ASSERT_TRUE(in.good());
  CampaignRunOptions options;
  options.resume = read_campaign_journal(in);
  options.journal_path = torn_path;
  EXPECT_EQ(options.resume->malformed_rows, 1u);
  const CampaignResult resumed = CampaignEngine(1).run(haar_spec(), options);
  EXPECT_EQ(resumed.resumed_jobs, clean.result.jobs.size() - 1);
  EXPECT_TRUE(resumed.all_ok());
  EXPECT_EQ(csv_without_wall(resumed), csv_without_wall(clean.result));

  // The torn stub was truncated before re-journaling the re-run job: the
  // healed journal restores every job and has no malformed rows left.
  std::ifstream healed(torn_path);
  const CampaignJournal journal = read_campaign_journal(healed);
  EXPECT_EQ(journal.entries.size(), clean.result.jobs.size());
  EXPECT_EQ(journal.malformed_rows, 0u);
  std::remove(torn_path.c_str());
}

} // namespace
} // namespace tmemo
