// Regression tests for zero-op runs: every derived ratio (hit rates,
// slowdowns, error metrics) must come out as a well-defined finite value —
// 0.0 or 1.0 as appropriate — never NaN or a surprise infinity, so that
// campaign CSV/JSON exports of degenerate cells stay parseable.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "energy/energy_model.hpp"
#include "gpu/device.hpp"
#include "img/image.hpp"
#include "memo/lut.hpp"
#include "memo/resilient_fpu.hpp"
#include "sim/performance.hpp"
#include "sim/simulation.hpp"
#include "workloads/workload.hpp"

namespace tmemo {
namespace {

TEST(ZeroOpGuards, PerformanceReportDefaultSlowdownsAreOne) {
  const PerformanceReport r{};
  EXPECT_DOUBLE_EQ(r.slowdown_lockstep(), 1.0);
  EXPECT_DOUBLE_EQ(r.slowdown_decoupled(), 1.0);
  EXPECT_DOUBLE_EQ(r.slowdown_memoized(), 1.0);
}

TEST(ZeroOpGuards, PerformanceModelWithNoRecordsIsFinite) {
  const PerformanceModel perf(16);
  const PerformanceReport r = perf.report();
  EXPECT_EQ(r.lane_ops, 0u);
  EXPECT_EQ(r.issue_cycles, 0u);
  EXPECT_TRUE(std::isfinite(r.slowdown_lockstep()));
  EXPECT_TRUE(std::isfinite(r.slowdown_decoupled()));
  EXPECT_TRUE(std::isfinite(r.slowdown_memoized()));
  EXPECT_DOUBLE_EQ(r.slowdown_memoized(), 1.0);
}

TEST(ZeroOpGuards, StatsWithZeroInstructionsHaveZeroHitRate) {
  EXPECT_DOUBLE_EQ(FpuStats{}.hit_rate(), 0.0);
  EXPECT_DOUBLE_EQ(LutStats{}.hit_rate(), 0.0);
}

TEST(ZeroOpGuards, CompareOutputsOfEmptyVectorsIsFiniteAndPasses) {
  const std::vector<float> empty;
  const WorkloadResult abs = compare_outputs(empty, empty, 1e-6);
  EXPECT_EQ(abs.output_values, 0u);
  EXPECT_DOUBLE_EQ(abs.mean_abs_error, 0.0);
  EXPECT_DOUBLE_EQ(abs.max_abs_error, 0.0);
  EXPECT_TRUE(abs.passed);

  const WorkloadResult rel = compare_outputs_rel_rms(empty, empty, 1e-6);
  EXPECT_DOUBLE_EQ(rel.rel_rms_error, 0.0);
  EXPECT_TRUE(rel.passed);
}

TEST(ZeroOpGuards, ZeroPixelImageMetricsAreWellDefined) {
  const Image a;
  const Image b;
  // No pixels: zero error (not NaN), hence infinite PSNR like any pair of
  // identical images.
  EXPECT_DOUBLE_EQ(mse(a, b), 0.0);
  EXPECT_TRUE(std::isinf(psnr(a, b)));
  EXPECT_GT(psnr(a, b), 0.0);
}

TEST(ZeroOpGuards, FreshDeviceWeightedHitRateIsZero) {
  const ExperimentConfig cfg;
  const GpuDevice device(cfg.device,
                         EnergyModel(cfg.energy, VoltageScaling(cfg.voltage)));
  EXPECT_DOUBLE_EQ(device.weighted_hit_rate(), 0.0);
  for (FpuType u : kAllFpuTypes) {
    EXPECT_DOUBLE_EQ(device.unit_stats()[static_cast<std::size_t>(u)]
                         .hit_rate(),
                     0.0);
  }
}

} // namespace
} // namespace tmemo
