#include "sim/performance.hpp"

#include <gtest/gtest.h>

namespace tmemo {
namespace {

ExecutionRecord make_record(WorkItemId wi, bool error, bool masked,
                            int recovery = 0) {
  ExecutionRecord r;
  r.unit = FpuType::kAdd;
  r.work_item = wi;
  r.timing_error = error;
  r.error_masked = masked;
  r.recovered = recovery > 0;
  r.recovery_cycles = recovery;
  return r;
}

TEST(PerformanceModel, ErrorFreeRunHasNoStall) {
  PerformanceModel perf(16);
  for (int i = 0; i < 160; ++i) {
    perf.consume(make_record(static_cast<WorkItemId>(i), false, false));
  }
  const PerformanceReport r = perf.report();
  EXPECT_EQ(r.lane_ops, 160u);
  EXPECT_EQ(r.issue_cycles, 10u); // 16 lanes per cycle
  EXPECT_EQ(r.lockstep_cycles, 10u);
  EXPECT_EQ(r.decoupled_cycles, 10u);
  EXPECT_EQ(r.memoized_cycles, 10u);
  EXPECT_DOUBLE_EQ(r.slowdown_lockstep(), 1.0);
}

TEST(PerformanceModel, IssueCyclesRoundUp) {
  PerformanceModel perf(16);
  for (int i = 0; i < 17; ++i) {
    perf.consume(make_record(static_cast<WorkItemId>(i), false, false));
  }
  EXPECT_EQ(perf.report().issue_cycles, 2u);
}

TEST(PerformanceModel, LockstepPaysGloballyPerError) {
  PerformanceModel perf(16);
  // Two errors on different stream cores.
  perf.consume(make_record(0, true, false, 12));
  perf.consume(make_record(1, true, false, 12));
  const PerformanceReport r = perf.report();
  // Lock-step: 12 + 12 global cycles on top of 1 issue cycle.
  EXPECT_EQ(r.lockstep_cycles, 1u + 24u);
  // Decoupled: each SC pays 3 locally; the max across SCs bounds the run.
  EXPECT_EQ(r.decoupled_cycles, 1u + 3u);
}

TEST(PerformanceModel, MaskedErrorsCostBaselineButNotMemoized) {
  PerformanceModel perf(16);
  // A masked error: memoized architecture spent 0 recovery cycles.
  perf.consume(make_record(0, true, true, 0));
  const PerformanceReport r = perf.report();
  EXPECT_GT(r.lockstep_cycles, r.issue_cycles);
  EXPECT_GT(r.decoupled_cycles, r.issue_cycles);
  EXPECT_EQ(r.memoized_cycles, r.issue_cycles);
}

TEST(PerformanceModel, MemoizedStallIsPerCoreMax) {
  PerformanceModel perf(16);
  // Three unmasked errors on SC 5, one on SC 7.
  for (int i = 0; i < 3; ++i) perf.consume(make_record(5, true, false, 12));
  perf.consume(make_record(7, true, false, 12));
  const PerformanceReport r = perf.report();
  EXPECT_EQ(r.memoized_cycles, r.issue_cycles + 36u);
}

TEST(PerformanceModel, DeepUnitStallsLonger) {
  PerformanceModel perf(16);
  ExecutionRecord rec = make_record(0, true, false, 48);
  rec.unit = FpuType::kRecip;
  perf.consume(rec);
  const PerformanceReport r = perf.report();
  EXPECT_EQ(r.lockstep_cycles, r.issue_cycles + 48u);
  EXPECT_EQ(r.memoized_cycles, r.issue_cycles + 48u);
  EXPECT_EQ(r.decoupled_cycles, r.issue_cycles + 9u); // 16/2 + 1
}

TEST(PerformanceModel, DownstreamChaining) {
  struct Counter final : ExecutionSink {
    int n = 0;
    void consume(const ExecutionRecord&) override { ++n; }
  } counter;
  PerformanceModel perf(16, &counter);
  for (int i = 0; i < 5; ++i) {
    perf.consume(make_record(static_cast<WorkItemId>(i), false, false));
  }
  EXPECT_EQ(counter.n, 5);
}

TEST(PerformanceModel, ResetClearsState) {
  PerformanceModel perf(16);
  perf.consume(make_record(0, true, false, 12));
  perf.reset();
  const PerformanceReport r = perf.report();
  EXPECT_EQ(r.lane_ops, 0u);
  EXPECT_EQ(r.lockstep_cycles, 0u);
}

TEST(PerformanceModel, OrderingInvariant) {
  // Lock-step >= memoized >= issue, and decoupled >= issue, always.
  PerformanceModel perf(16);
  Xorshift128 rng(3);
  for (int i = 0; i < 5000; ++i) {
    const bool err = rng.bernoulli(0.1);
    const bool masked = err && rng.bernoulli(0.5);
    perf.consume(make_record(static_cast<WorkItemId>(rng.next_below(64)),
                             err, masked, err && !masked ? 12 : 0));
  }
  const PerformanceReport r = perf.report();
  EXPECT_GE(r.lockstep_cycles, r.memoized_cycles);
  EXPECT_GE(r.memoized_cycles, r.issue_cycles);
  EXPECT_GE(r.decoupled_cycles, r.issue_cycles);
  EXPECT_GE(r.lockstep_cycles, r.decoupled_cycles);
}

} // namespace
} // namespace tmemo
