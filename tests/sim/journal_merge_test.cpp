// Sharded-journal merge tests (sim/journal_merge.hpp, docs/DISTRIBUTED.md):
// the duplicate-collapse rules (ok beats failed; equal ok-ness → the
// later-listed shard wins), zero-byte and torn-tail shard tolerance, the
// fingerprint-mismatch hard error naming both files, and that the merged
// output is a *sealed* journal-v2 artifact ordered by job index — written
// atomically, refusing to clobber without force, and rejecting every byte
// truncation on read.
#include "sim/journal_merge.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/atomic_file.hpp"
#include "sim/campaign.hpp"

namespace tmemo {
namespace {

constexpr const char* kFingerprint = "v1-cafef00dcafef00d";

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "tmemo_merge_" + name;
}

/// A fresh merge-output path: the merge refuses to clobber an existing
/// non-empty output (see RefusesToClobber... below), so stale files from a
/// previous test run must not linger at the target.
std::string out_path(const std::string& name) {
  const std::string path = temp_path(name);
  std::remove(path.c_str());
  return path;
}

JobResult make_result(std::size_t index, bool ok,
                      const std::string& error = "") {
  JobResult r;
  r.job.index = index;
  r.job.kernel = "haar";
  r.ok = ok;
  r.error = error;
  r.attempts = ok ? 1 : 3;
  return r;
}

/// Writes one journal-v2 shard through the production writer (same code
/// path tmemo_workerd uses for its local shard).
std::string write_shard(const std::string& name,
                        const std::vector<JobResult>& entries,
                        const std::string& fingerprint = kFingerprint) {
  const std::string path = temp_path(name);
  std::remove(path.c_str());
  CampaignJournalWriter writer;
  writer.open(path, fingerprint);
  for (const JobResult& e : entries) writer.append(e);
  writer.close();
  return path;
}

CampaignJournal read_journal(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  return read_campaign_journal(in);
}

TEST(JournalMerge, DisjointShardsConcatenateOrderedByJobIndex) {
  // Shard completion order must not leak into the merged journal: the
  // later-listed shard holds the *earlier* jobs here.
  const std::string a =
      write_shard("disjoint_a.journal", {make_result(2, true),
                                         make_result(3, true)});
  const std::string b =
      write_shard("disjoint_b.journal", {make_result(1, true),
                                         make_result(0, true)});
  const std::string out = out_path("disjoint_out.journal");

  const JournalMergeReport report = merge_campaign_journals({a, b}, out);
  EXPECT_EQ(report.fingerprint, kFingerprint);
  EXPECT_EQ(report.shards_read, 2u);
  EXPECT_EQ(report.entries_in, 4u);
  EXPECT_EQ(report.entries_out, 4u);
  EXPECT_EQ(report.duplicates_dropped, 0u);

  const CampaignJournal merged = read_journal(out);
  EXPECT_EQ(merged.fingerprint, kFingerprint);
  ASSERT_EQ(merged.entries.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(merged.entries[i].job.index, i);
  }
}

TEST(JournalMerge, OkEntryBeatsFailedRegardlessOfShardOrder) {
  // The redispatch case: job 1 crashed one worker (failed in its shard) and
  // succeeded on another. The ok record must win whichever shard is listed
  // first.
  const std::string failed = write_shard(
      "dup_failed.journal",
      {make_result(0, true), make_result(1, false, "SIGSEGV")});
  const std::string ok =
      write_shard("dup_ok.journal", {make_result(1, true)});
  for (const auto& order :
       {std::vector<std::string>{failed, ok},
        std::vector<std::string>{ok, failed}}) {
    const std::string out = out_path("dup_out.journal");
    const JournalMergeReport report = merge_campaign_journals(order, out);
    EXPECT_EQ(report.entries_in, 3u);
    EXPECT_EQ(report.entries_out, 2u);
    EXPECT_EQ(report.duplicates_dropped, 1u);
    const CampaignJournal merged = read_journal(out);
    ASSERT_EQ(merged.entries.size(), 2u);
    EXPECT_TRUE(merged.entries[1].ok)
        << "listed first: " << order.front();
    EXPECT_TRUE(merged.entries[1].error.empty());
  }
}

TEST(JournalMerge, EqualOknessLaterListedShardWins) {
  const std::string first = write_shard(
      "tie_first.journal", {make_result(0, false, "from first shard")});
  const std::string second = write_shard(
      "tie_second.journal", {make_result(0, false, "from second shard")});
  const std::string out = out_path("tie_out.journal");
  const JournalMergeReport report =
      merge_campaign_journals({first, second}, out);
  EXPECT_EQ(report.duplicates_dropped, 1u);
  const CampaignJournal merged = read_journal(out);
  ASSERT_EQ(merged.entries.size(), 1u);
  EXPECT_EQ(merged.entries[0].error, "from second shard");
}

TEST(JournalMerge, ZeroByteShardIsSkippedAndCounted) {
  // A workerd SIGKILLed before its first append leaves a zero-byte shard;
  // that must not fail the merge of everyone else's work.
  const std::string good =
      write_shard("empty_good.journal", {make_result(0, true)});
  const std::string empty = temp_path("empty_shard.journal");
  std::ofstream(empty, std::ios::trunc).flush();

  const std::string out = out_path("empty_out.journal");
  const JournalMergeReport report =
      merge_campaign_journals({good, empty}, out);
  EXPECT_EQ(report.shards_read, 1u);
  EXPECT_EQ(report.empty_shards, 1u);
  EXPECT_EQ(report.entries_out, 1u);
}

TEST(JournalMerge, TornTrailingRecordIsDroppedAndCounted) {
  // A workerd SIGKILLed mid-append leaves a partial final line; the merge
  // keeps every whole record and counts the torn one.
  const std::string path = write_shard(
      "torn.journal", {make_result(0, true), make_result(1, true)});
  {
    std::ofstream app(path, std::ios::app);
    app << "2,haar,partial-record-cut-off";
  }
  const std::string out = out_path("torn_out.journal");
  const JournalMergeReport report = merge_campaign_journals({path}, out);
  EXPECT_EQ(report.entries_in, 2u);
  EXPECT_EQ(report.entries_out, 2u);
  EXPECT_GE(report.malformed_rows, 1u);
  const CampaignJournal merged = read_journal(out);
  ASSERT_EQ(merged.entries.size(), 2u);
}

TEST(JournalMerge, FingerprintMismatchIsAHardErrorNamingBothFiles) {
  // Merging two different campaigns would poison a future --resume
  // silently; the diagnostic must name both files so the operator can tell
  // which shard wandered in.
  const std::string a =
      write_shard("fp_a.journal", {make_result(0, true)}, "v1-aaaaaaaa");
  const std::string b =
      write_shard("fp_b.journal", {make_result(1, true)}, "v1-bbbbbbbb");
  const std::string out = out_path("fp_out.journal");
  try {
    (void)merge_campaign_journals({a, b}, out);
    FAIL() << "expected a fingerprint-mismatch error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(a), std::string::npos) << what;
    EXPECT_NE(what.find(b), std::string::npos) << what;
  }
}

TEST(JournalMerge, AllShardsEmptyIsAnError) {
  // With no parsed header there is no fingerprint to stamp on the output.
  const std::string a = temp_path("allempty_a.journal");
  const std::string b = temp_path("allempty_b.journal");
  std::ofstream(a, std::ios::trunc).flush();
  std::ofstream(b, std::ios::trunc).flush();
  EXPECT_THROW(
      (void)merge_campaign_journals({a, b},
                                    out_path("allempty_out.journal")),
      std::runtime_error);
}

TEST(JournalMerge, UnreadableShardIsAnErrorNamingThePath) {
  const std::string missing = temp_path("does_not_exist.journal");
  std::remove(missing.c_str());
  try {
    (void)merge_campaign_journals({missing},
                                  out_path("unreadable_out.journal"));
    FAIL() << "expected an unreadable-shard error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(missing), std::string::npos)
        << e.what();
  }
}

TEST(JournalMerge, OutputIsSealedAndEveryByteTruncationIsRejected) {
  // The merge output is a finished artifact: sealed header, record-count
  // end sentinel. A truncated copy (full pipe, clipped scp) must never
  // parse as a smaller-but-complete journal — sweep every cut point.
  const std::string a = write_shard(
      "sealed_a.journal",
      {make_result(0, true), make_result(1, false, "torn, error\ntext")});
  const std::string out = out_path("sealed_out.journal");
  (void)merge_campaign_journals({a}, out);

  std::ifstream in(out, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  ASSERT_GT(text.size(), 40u);

  std::istringstream whole(text);
  const CampaignJournal merged = read_campaign_journal(whole);
  EXPECT_TRUE(merged.sealed);
  EXPECT_EQ(merged.entries.size(), 2u);
  EXPECT_EQ(merged.malformed_rows, 0u);

  for (std::size_t cut = 1; cut < text.size(); ++cut) {
    std::istringstream torn(text.substr(0, cut));
    EXPECT_THROW((void)read_campaign_journal(torn), std::runtime_error)
        << "cut at byte " << cut << " parsed as a complete journal";
  }
}

TEST(JournalMerge, RefusesToClobberExistingOutputWithoutForce) {
  // A merged journal is a finished artifact; a retyped output path must not
  // silently destroy one. --force states the intent.
  const std::string a =
      write_shard("clobber_a.journal", {make_result(0, true)});
  const std::string out = out_path("clobber_out.journal");
  (void)merge_campaign_journals({a}, out);

  try {
    (void)merge_campaign_journals({a}, out);
    FAIL() << "expected a refuse-to-clobber error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(out), std::string::npos) << what;
    EXPECT_NE(what.find("--force"), std::string::npos) << what;
  }

  JournalMergeOptions force;
  force.force = true;
  const std::string b = write_shard(
      "clobber_b.journal", {make_result(0, true), make_result(1, true)});
  const JournalMergeReport report =
      merge_campaign_journals({a, b}, out, force);
  EXPECT_EQ(report.entries_out, 2u);
  EXPECT_EQ(read_journal(out).entries.size(), 2u);
}

TEST(JournalMerge, InjectedOutputFaultLeavesTheOldArtifactIntact) {
  // An --inject-fs fault on the output commit must surface as io::IoError
  // and leave whatever the output path held before the merge untouched:
  // the atomic commit never publishes a torn merge.
  const std::string a =
      write_shard("inject_a.journal", {make_result(0, true)});
  const std::string out = out_path("inject_out.journal");
  (void)merge_campaign_journals({a}, out);
  std::ifstream before_in(out, std::ios::binary);
  std::ostringstream before;
  before << before_in.rdbuf();

  JournalMergeOptions chaos;
  chaos.force = true;
  chaos.inject_fs = io::FsFaultSpec{};
  chaos.inject_fs->seed = 7;
  chaos.inject_fs->enospc_prob = 1.0;
  EXPECT_THROW((void)merge_campaign_journals({a}, out, chaos), io::IoError);

  std::ifstream after_in(out, std::ios::binary);
  std::ostringstream after;
  after << after_in.rdbuf();
  EXPECT_EQ(after.str(), before.str());
  EXPECT_EQ(read_journal(out).entries.size(), 1u);
}

TEST(JournalMerge, NotAJournalFileIsAnError) {
  const std::string bogus = temp_path("bogus.journal");
  std::ofstream(bogus, std::ios::trunc) << "this is not a journal\n";
  EXPECT_THROW((void)merge_campaign_journals(
                   {bogus}, out_path("bogus_out.journal")),
               std::runtime_error);
}

} // namespace
} // namespace tmemo
