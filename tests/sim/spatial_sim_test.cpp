// Simulation-level behaviour of the spatial / combined memoization modes.
#include <gtest/gtest.h>

#include "img/synthetic.hpp"
#include "sim/simulation.hpp"
#include "workloads/sobel.hpp"

namespace tmemo {
namespace {

TEST(SpatialSim, SpatialModeMasksErrorsWithoutTemporalLuts) {
  ExperimentConfig cfg;
  cfg.memoization = false; // LUTs power-gated
  cfg.spatial = true;
  Simulation sim(cfg);
  SobelWorkload w(make_face_image(96, 96), "face");
  const KernelRunReport r = sim.run(w, RunSpec::at_error_rate(0.04));
  // Temporal hit rate is zero (module gated)...
  EXPECT_EQ(r.weighted_hit_rate, 0.0);
  // ...yet the run verifies and saves energy at 4% errors via spatial
  // reuse of the lane-uniform image ops.
  EXPECT_TRUE(r.result.passed);
  EXPECT_GT(r.energy.saving(), 0.0);
}

TEST(SpatialSim, CombinedModeBeatsEitherAloneUnderErrors) {
  SobelWorkload w(make_face_image(128, 128), "face");
  auto saving = [&w](bool temporal, bool spatial) {
    ExperimentConfig cfg;
    cfg.memoization = temporal;
    cfg.spatial = spatial;
    Simulation sim(cfg);
    return sim.run(w, RunSpec::at_error_rate(0.04)).energy.saving();
  };
  const double t = saving(true, false);
  const double s = saving(false, true);
  const double c = saving(true, true);
  EXPECT_GT(c, t - 1e-9);
  EXPECT_GT(c, s - 1e-9);
}

TEST(SpatialSim, SpatialReuseRespectsTheMatchingConstraint) {
  // Exact constraint on divergent data: spatial reuse nearly zero.
  ExperimentConfig cfg;
  cfg.memoization = false;
  cfg.spatial = true;
  const VoltageScaling vs(cfg.voltage);
  GpuDevice device(cfg.device, EnergyModel(cfg.energy, vs));
  device.set_spatial_memoization(true);
  device.set_power_gated(true);
  device.program_exact();
  const Image book = make_book_image(96, 96);
  (void)sobel_on_device(device, book);
  SpatialStats exact_total;
  for (const SpatialStats& s : device.spatial_stats()) exact_total += s;

  GpuDevice loose(cfg.device, EnergyModel(cfg.energy, vs));
  loose.set_spatial_memoization(true);
  loose.set_power_gated(true);
  loose.program_threshold_as_mask(1.0f);
  (void)sobel_on_device(loose, book);
  SpatialStats mask_total;
  for (const SpatialStats& s : loose.spatial_stats()) mask_total += s;

  EXPECT_GT(mask_total.reuse_rate(), exact_total.reuse_rate());
}

TEST(SpatialSim, SpatialOutputsStayWithinFidelity) {
  // Even with the loose Table-1 mask, spatial broadcast on the portrait
  // keeps PSNR acceptable.
  ExperimentConfig cfg;
  cfg.memoization = false;
  cfg.spatial = true;
  Simulation sim(cfg);
  SobelWorkload w(make_face_image(128, 128), "face");
  const KernelRunReport r = sim.run(w, RunSpec::at_error_rate(0.0));
  EXPECT_TRUE(r.result.passed);
}

} // namespace
} // namespace tmemo
