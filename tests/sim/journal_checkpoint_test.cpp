// Journal checkpoint/compaction tests (docs/RESILIENCE.md "Artifact
// durability & checkpointing"): every N appends the completed-job set is
// snapshotted into a sealed `<journal>.checkpoint` artifact and the live
// journal compacts back to its header, so resume replays checkpoint +
// bounded tail — bit-identically to replaying the full append log, in
// every crash window.
#include "sim/campaign.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "io/atomic_file.hpp"
#include "workloads/haar.hpp"
#include "workloads/workload.hpp"

namespace tmemo {
namespace {

constexpr const char* kFingerprint = "v1-feedbeeffeedbeef";

SweepSpec haar_spec() {
  SweepSpec spec;
  spec.factory = [] {
    std::vector<std::unique_ptr<Workload>> v;
    v.push_back(std::make_unique<HaarWorkload>(128));
    return v;
  };
  spec.axis = SweepAxis::error_rate(0.0, 0.04, 3);
  return spec;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "tmemo_ckpt_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void spill(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

/// A journal path with neither a stale journal nor a stale checkpoint.
std::string fresh_journal(const std::string& name) {
  const std::string path = temp_path(name);
  std::remove(path.c_str());
  std::remove(campaign_checkpoint_path(path).c_str());
  return path;
}

void cleanup(const std::string& path) {
  std::remove(path.c_str());
  std::remove(campaign_checkpoint_path(path).c_str());
}

JobResult make_result(std::size_t index, bool ok,
                      const std::string& error = "") {
  JobResult r;
  r.job.index = index;
  r.job.kernel = "haar";
  r.ok = ok;
  r.error = error;
  r.attempts = ok ? 1 : 2;
  return r;
}

std::vector<std::string> serialized(const std::vector<JobResult>& entries) {
  std::vector<std::string> rows;
  rows.reserve(entries.size());
  for (const JobResult& e : entries) rows.push_back(serialize_job_result(e));
  return rows;
}

std::string csv_of(const CampaignResult& res) {
  std::ostringstream out;
  write_campaign_csv(res, out);
  return out.str();
}

/// The CSV with the wall_ms column blanked (the only wall-clock field).
std::string csv_without_wall(const CampaignResult& res) {
  std::istringstream in(csv_of(res));
  std::ostringstream out;
  std::vector<std::string> fields;
  while (read_csv_record(in, fields)) {
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (fields.size() > 19 && i == 19) fields[i].clear();
      out << (i == 0 ? "" : ",") << fields[i];
    }
    out << '\n';
  }
  return out.str();
}

TEST(JournalCheckpoint, SnapshotsEveryNAppendsAndCompactsTheLiveJournal) {
  const std::string path = fresh_journal("compact.journal");
  CampaignJournalWriter writer;
  writer.configure(2, std::nullopt);
  writer.open(path, kFingerprint);
  std::vector<JobResult> appended;
  for (std::size_t i = 0; i < 5; ++i) {
    appended.push_back(make_result(i, true));
    writer.append(appended.back());
  }
  EXPECT_EQ(writer.checkpoints_written(), 2u); // after appends 2 and 4
  writer.close();

  // The checkpoint is a sealed artifact holding jobs 0..3.
  const std::string cpath = campaign_checkpoint_path(path);
  std::ifstream cp_in(cpath, std::ios::binary);
  ASSERT_TRUE(cp_in.good());
  const CampaignJournal checkpoint = read_campaign_journal(cp_in);
  EXPECT_TRUE(checkpoint.sealed);
  EXPECT_EQ(checkpoint.fingerprint, kFingerprint);
  EXPECT_EQ(checkpoint.entries.size(), 4u);

  // The live journal holds only the post-checkpoint tail: job 4.
  std::ifstream live_in(path, std::ios::binary);
  const CampaignJournal live = read_campaign_journal(live_in);
  EXPECT_FALSE(live.sealed);
  ASSERT_EQ(live.entries.size(), 1u);
  EXPECT_EQ(live.entries[0].job.index, 4u);

  // Checkpoint + tail replays the full append log bit-identically.
  const CampaignJournal merged =
      read_campaign_journal_with_checkpoint(path);
  EXPECT_FALSE(merged.sealed); // resumable state, not itself an artifact
  EXPECT_EQ(merged.malformed_rows, 0u);
  EXPECT_EQ(serialized(merged.entries), serialized(appended));
  cleanup(path);
}

TEST(JournalCheckpoint, EveryCrashWindowReplaysLikeTheFullAppendLog) {
  // Kill the writer after k appends for every k: checkpoint + tail must
  // restore exactly the k appended records, regardless of where in the
  // checkpoint cycle the "crash" landed.
  for (std::size_t k = 0; k <= 5; ++k) {
    const std::string path =
        fresh_journal("window_" + std::to_string(k) + ".journal");
    std::vector<JobResult> appended;
    {
      CampaignJournalWriter writer;
      writer.configure(2, std::nullopt);
      writer.open(path, kFingerprint);
      for (std::size_t i = 0; i < k; ++i) {
        appended.push_back(make_result(i, true));
        writer.append(appended.back());
      }
      // Scope exit without a graceful shutdown: the crash window.
    }
    const CampaignJournal merged =
        read_campaign_journal_with_checkpoint(path);
    EXPECT_EQ(serialized(merged.entries), serialized(appended))
        << "crash after " << k << " appends";
    cleanup(path);
  }
}

TEST(JournalCheckpoint, ReopeningACompactedJournalKeepsTheFullJobSet) {
  // Session 1 appends 3 jobs (one checkpoint), dies; session 2 reopens and
  // appends 2 more. The next snapshot must cover all 5 jobs, not only
  // session 2's window.
  const std::string path = fresh_journal("reopen.journal");
  {
    CampaignJournalWriter writer;
    writer.configure(2, std::nullopt);
    writer.open(path, kFingerprint);
    for (std::size_t i = 0; i < 3; ++i) writer.append(make_result(i, true));
  }
  {
    CampaignJournalWriter writer;
    writer.configure(2, std::nullopt);
    writer.open(path, kFingerprint);
    for (std::size_t i = 3; i < 5; ++i) writer.append(make_result(i, true));
  }
  // Session 2's second append triggers a snapshot; it must hold all 5
  // jobs (checkpoint + tail reloaded at open), not session 2's two.
  std::ifstream cp_in(campaign_checkpoint_path(path), std::ios::binary);
  const CampaignJournal checkpoint = read_campaign_journal(cp_in);
  EXPECT_EQ(checkpoint.entries.size(), 5u);
  const CampaignJournal merged =
      read_campaign_journal_with_checkpoint(path);
  ASSERT_EQ(merged.entries.size(), 5u);
  cleanup(path);
}

TEST(JournalCheckpoint, LaterAppendForTheSameIndexWinsInTheSnapshot) {
  // Full-replay resume lets a later record override an earlier one (a
  // retried job journaled twice); the snapshot must keep that rule.
  const std::string path = fresh_journal("rewrite.journal");
  CampaignJournalWriter writer;
  writer.configure(2, std::nullopt);
  writer.open(path, kFingerprint);
  writer.append(make_result(0, false, "first attempt crashed"));
  writer.append(make_result(0, true));
  writer.close();
  std::ifstream cp_in(campaign_checkpoint_path(path), std::ios::binary);
  const CampaignJournal checkpoint = read_campaign_journal(cp_in);
  ASSERT_EQ(checkpoint.entries.size(), 1u);
  EXPECT_TRUE(checkpoint.entries[0].ok);
  EXPECT_TRUE(checkpoint.entries[0].error.empty());
  cleanup(path);
}

TEST(JournalCheckpoint, TornTailAfterCompactionIsTolerated) {
  const std::string path = fresh_journal("torn_tail.journal");
  {
    CampaignJournalWriter writer;
    writer.configure(2, std::nullopt);
    writer.open(path, kFingerprint);
    for (std::size_t i = 0; i < 3; ++i) writer.append(make_result(i, true));
  }
  {
    std::ofstream app(path, std::ios::app | std::ios::binary);
    app << "3,haar,partial-append-cut";
  }
  const CampaignJournal merged =
      read_campaign_journal_with_checkpoint(path);
  EXPECT_EQ(merged.entries.size(), 3u);
  EXPECT_EQ(merged.malformed_rows, 1u);
  cleanup(path);
}

TEST(JournalCheckpoint, SealedCheckpointRejectsEveryByteTruncation) {
  const std::string path = fresh_journal("sweep.journal");
  {
    CampaignJournalWriter writer;
    writer.configure(2, std::nullopt);
    writer.open(path, kFingerprint);
    writer.append(make_result(0, true));
    writer.append(make_result(1, false, "torn, error\ntext"));
  }
  const std::string text = slurp(campaign_checkpoint_path(path));
  ASSERT_GT(text.size(), 40u);
  for (std::size_t cut = 1; cut < text.size(); ++cut) {
    std::istringstream torn(text.substr(0, cut));
    EXPECT_THROW((void)read_campaign_journal(torn), std::runtime_error)
        << "cut at byte " << cut << " parsed as a complete checkpoint";
  }
  cleanup(path);
}

TEST(JournalCheckpoint, CheckpointOfADifferentCampaignIsRejected) {
  const std::string path = fresh_journal("mismatch.journal");
  {
    CampaignJournalWriter writer;
    writer.open(path, kFingerprint);
    writer.append(make_result(0, true));
  }
  // Plant a sealed checkpoint stamped with another campaign's fingerprint.
  spill(campaign_checkpoint_path(path),
        std::string(kCampaignJournalSchema) + ",v1-0000000000000000," +
            std::string(kCampaignJournalSealedMark) + "\n" +
            std::string(kCampaignJournalEndRecord) + ",0\n");
  EXPECT_THROW((void)read_campaign_journal_with_checkpoint(path),
               std::runtime_error);
  cleanup(path);
}

TEST(JournalCheckpoint, PlainJournalReadsTheSameWithAndWithoutHelper) {
  const std::string path = fresh_journal("plain.journal");
  {
    CampaignJournalWriter writer; // no configure: checkpointing off
    writer.open(path, kFingerprint);
    for (std::size_t i = 0; i < 3; ++i) writer.append(make_result(i, true));
  }
  EXPECT_FALSE(std::ifstream(campaign_checkpoint_path(path)).good());
  std::ifstream in(path, std::ios::binary);
  const CampaignJournal plain = read_campaign_journal(in);
  const CampaignJournal helper =
      read_campaign_journal_with_checkpoint(path);
  EXPECT_EQ(plain.fingerprint, helper.fingerprint);
  EXPECT_EQ(serialized(plain.entries), serialized(helper.entries));
  cleanup(path);
}

TEST(JournalCheckpoint, InjectedAppendFaultSurfacesAsIoError) {
  io::FsFaultSpec spec;
  spec.seed = 9;
  spec.enospc_prob = 1.0;
  const std::string path = fresh_journal("inject_append.journal");
  CampaignJournalWriter writer;
  writer.configure(1, spec);
  writer.open(path, kFingerprint);
  EXPECT_THROW(writer.append(make_result(0, true)), io::IoError);
  cleanup(path);
}

TEST(JournalCheckpoint, InjectedCheckpointCommitFaultNamesTheCheckpoint) {
  // The journal append and the checkpoint commit draw from streams salted
  // by *their own* paths: scan seeds until one lets the append pass and
  // fails the checkpoint, proving the fault report names the checkpoint
  // artifact, not the journal. At 0.5/0.5 odds per seed a miss across all
  // 64 is ~1e-8.
  const std::string path = fresh_journal("inject_ckpt.journal");
  const std::string cpath = campaign_checkpoint_path(path);
  bool checkpoint_fault_seen = false;
  for (std::uint64_t seed = 0; seed < 64 && !checkpoint_fault_seen; ++seed) {
    cleanup(path);
    io::FsFaultSpec spec;
    spec.seed = seed;
    spec.enospc_prob = 0.5;
    CampaignJournalWriter writer;
    writer.configure(1, spec);
    writer.open(path, kFingerprint);
    try {
      writer.append(make_result(0, true));
    } catch (const io::IoError& e) {
      EXPECT_TRUE(e.injected());
      checkpoint_fault_seen = e.path() == cpath;
    }
  }
  EXPECT_TRUE(checkpoint_fault_seen);
  cleanup(path);
}

// ---- Engine-level: checkpointed campaigns resume bit-identically ----------

TEST(JournalCheckpoint, CheckpointedResumeIsBitIdenticalToUninterrupted) {
  // Uninterrupted thread run, no journal.
  const CampaignResult clean = CampaignEngine(1).run(haar_spec());
  ASSERT_TRUE(clean.all_ok());

  // Checkpointed run: 3 jobs, snapshot every 2 appends.
  const std::string path = fresh_journal("resume.journal");
  CampaignRunOptions journaled;
  journaled.journal_path = path;
  journaled.checkpoint_every = 2;
  const CampaignResult first =
      CampaignEngine(1).run(haar_spec(), journaled);
  ASSERT_TRUE(first.all_ok());
  EXPECT_TRUE(first.artifact_error.empty());
  EXPECT_EQ(csv_without_wall(first), csv_without_wall(clean));

  // The journal compacted: a checkpoint exists, the live file holds only
  // the post-snapshot tail (1 record after 3 appends at cadence 2).
  ASSERT_TRUE(std::ifstream(campaign_checkpoint_path(path)).good());
  std::ifstream live_in(path, std::ios::binary);
  const CampaignJournal live = read_campaign_journal(live_in);
  EXPECT_EQ(live.entries.size(), 1u);

  // Resume from checkpoint + tail: every job restores, nothing re-runs,
  // and the grid is bit-identical to the uninterrupted run.
  CampaignRunOptions resumption;
  resumption.resume = read_campaign_journal_with_checkpoint(path);
  EXPECT_EQ(resumption.resume->entries.size(), clean.jobs.size());
  const CampaignResult resumed =
      CampaignEngine(1).run(haar_spec(), resumption);
  EXPECT_EQ(resumed.resumed_jobs, clean.jobs.size());
  EXPECT_TRUE(resumed.all_ok());
  EXPECT_EQ(csv_without_wall(resumed), csv_without_wall(clean));
  cleanup(path);
}

TEST(JournalCheckpoint, InjectedJournalFaultBecomesArtifactErrorNotACrash) {
  // A full disk under the journal must not kill the campaign (a throw in a
  // worker thread would std::terminate): the run completes in memory and
  // reports the failure for the CLI to turn into exit 3.
  io::FsFaultSpec spec;
  spec.seed = 5;
  spec.enospc_prob = 1.0;
  const std::string path = fresh_journal("engine_inject.journal");
  CampaignRunOptions options;
  options.journal_path = path;
  options.inject_fs = spec;
  const CampaignResult res = CampaignEngine(1).run(haar_spec(), options);
  EXPECT_FALSE(res.artifact_error.empty());
  EXPECT_NE(res.artifact_error.find(path), std::string::npos);
  EXPECT_EQ(res.jobs.size(), 3u); // every job still ran
  EXPECT_TRUE(res.all_ok());
  cleanup(path);
}

} // namespace
} // namespace tmemo
