// Supervision tests for the process-isolated campaign worker pool
// (sim/worker_proc.hpp, docs/RESILIENCE.md): crash-injection parsing, the
// ISSUE acceptance checks (a SIGSEGV'd job becomes a failed JobResult with
// the decoded signal name while every other job completes; thread and
// process isolation produce bit-identical grids), and the supervisor edge
// cases — SIGKILL mid-job, a worker that exits 0 without replying, a
// poisoned job exhausting the retry budget into a failed-job manifest, the
// hard timeout kill, and resume-after-crash bit-identity.
#include "sim/worker_proc.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "inject/worker_crash.hpp"
#include "sim/campaign.hpp"
#include "workloads/haar.hpp"
#include "workloads/workload.hpp"

namespace tmemo {
namespace {

SweepSpec haar_spec(int points = 3) {
  SweepSpec spec;
  spec.factory = [] {
    std::vector<std::unique_ptr<Workload>> v;
    v.push_back(std::make_unique<HaarWorkload>(128));
    return v;
  };
  spec.axis = SweepAxis::error_rate(0.0, 0.04, points);
  return spec;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "tmemo_wp_" + name;
}

/// CSV of a campaign with the wall_ms column (the one wall-clock-dependent
/// field) blanked, for bit-identity comparisons across isolation modes.
std::string csv_without_wall(const CampaignResult& res) {
  std::ostringstream raw;
  write_campaign_csv(res, raw);
  std::istringstream in(raw.str());
  std::ostringstream out;
  std::vector<std::string> fields;
  while (read_csv_record(in, fields)) {
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (fields.size() > 19 && i == 19) fields[i].clear(); // wall_ms
      out << (i == 0 ? "" : ",") << fields[i];
    }
    out << '\n';
  }
  return out.str();
}

CampaignRunOptions process_options() {
  CampaignRunOptions options;
  options.isolation = IsolationMode::kProcess;
  return options;
}

class AlwaysThrowsWorkload final : public Workload {
 public:
  [[nodiscard]] std::string_view name() const override { return "Doom"; }
  [[nodiscard]] std::string input_parameter() const override { return "-"; }
  [[nodiscard]] float table1_threshold() const override { return 0.0f; }
  [[nodiscard]] double verify_tolerance() const override { return 0.0; }
  [[nodiscard]] WorkloadResult run(GpuDevice&) const override {
    throw std::runtime_error("hard failure");
  }
};

/// Sleeps far past any test timeout budget: only a hard SIGKILL — not the
/// thread pool's cooperative check — can reclaim the worker in time.
class StuckWorkload final : public Workload {
 public:
  [[nodiscard]] std::string_view name() const override { return "Stuck"; }
  [[nodiscard]] std::string input_parameter() const override { return "-"; }
  [[nodiscard]] float table1_threshold() const override { return 0.0f; }
  [[nodiscard]] double verify_tolerance() const override { return 0.0; }
  [[nodiscard]] WorkloadResult run(GpuDevice&) const override {
    std::this_thread::sleep_for(std::chrono::seconds(60));
    return {};
  }
};

// -- Crash-injection parsing --------------------------------------------------

TEST(WorkerCrashParse, AcceptsJobSignalAndCount) {
  const auto plain = inject::WorkerCrashInjection::parse("3:segv");
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(plain->job_index, 3u);
  EXPECT_EQ(plain->signal, SIGSEGV);
  EXPECT_TRUE(plain->applies(3, 1));
  EXPECT_TRUE(plain->applies(3, 99)); // default: every attempt crashes
  EXPECT_FALSE(plain->applies(2, 1));

  const auto once = inject::WorkerCrashInjection::parse("0:SIGKILL:1");
  ASSERT_TRUE(once.has_value());
  EXPECT_EQ(once->signal, SIGKILL);
  EXPECT_TRUE(once->applies(0, 1));
  EXPECT_FALSE(once->applies(0, 2)); // transient: redispatch succeeds

  const auto exit0 = inject::WorkerCrashInjection::parse("1:exit0");
  ASSERT_TRUE(exit0.has_value());
  EXPECT_EQ(exit0->signal, inject::kWorkerExitsCleanly);

  const auto numeric = inject::WorkerCrashInjection::parse("2:6:2");
  ASSERT_TRUE(numeric.has_value());
  EXPECT_EQ(numeric->signal, SIGABRT);
  EXPECT_EQ(numeric->crash_count, 2);
}

TEST(WorkerCrashParse, RejectsMalformedSpecs) {
  EXPECT_FALSE(inject::WorkerCrashInjection::parse("").has_value());
  EXPECT_FALSE(inject::WorkerCrashInjection::parse("3").has_value());
  EXPECT_FALSE(inject::WorkerCrashInjection::parse("x:segv").has_value());
  EXPECT_FALSE(inject::WorkerCrashInjection::parse("3:").has_value());
  EXPECT_FALSE(inject::WorkerCrashInjection::parse("3:banana").has_value());
  EXPECT_FALSE(inject::WorkerCrashInjection::parse("3:segv:0").has_value());
  EXPECT_FALSE(inject::WorkerCrashInjection::parse("3:segv:x").has_value());
  EXPECT_FALSE(inject::WorkerCrashInjection::parse("3:segv:1:9").has_value());
  EXPECT_FALSE(inject::WorkerCrashInjection::parse("3:999").has_value());
}

TEST(WorkerCrashParse, SignalNamesRoundTrip) {
  EXPECT_EQ(inject::signal_name(SIGSEGV), "SIGSEGV");
  EXPECT_EQ(inject::signal_name(SIGABRT), "SIGABRT");
  EXPECT_EQ(inject::signal_name(SIGKILL), "SIGKILL");
  EXPECT_EQ(inject::signal_name(63), "signal 63");
  EXPECT_EQ(inject::parse_signal("SIGSEGV"), SIGSEGV);
  EXPECT_EQ(inject::parse_signal("abrt"), SIGABRT);
  EXPECT_EQ(inject::parse_signal("11"), 11);
  EXPECT_FALSE(inject::parse_signal("").has_value());
  EXPECT_FALSE(inject::parse_signal("65").has_value());
}

// -- Bit-identity across isolation modes (ISSUE acceptance) -------------------

TEST(ProcessIsolation, GridIsBitIdenticalToThreadIsolation) {
  const SweepSpec spec = haar_spec();
  const CampaignResult threads =
      CampaignEngine(2).run(spec, CampaignRunOptions{});
  const CampaignResult procs = CampaignEngine(2).run(spec, process_options());
  ASSERT_EQ(procs.jobs.size(), threads.jobs.size());
  EXPECT_TRUE(procs.all_ok());
  EXPECT_EQ(csv_without_wall(procs), csv_without_wall(threads));

  // And for a different worker count (scheduling must not leak into
  // results).
  const CampaignResult one = CampaignEngine(1).run(spec, process_options());
  EXPECT_EQ(csv_without_wall(one), csv_without_wall(threads));
}

TEST(ProcessIsolation, CleanFailureAttemptsMatchThreadIsolation) {
  // A deterministic in-worker throw burns the same retry budget in both
  // isolation modes: the attempts column must agree bit-for-bit.
  SweepSpec spec;
  spec.factory = [] {
    std::vector<std::unique_ptr<Workload>> v;
    v.push_back(std::make_unique<AlwaysThrowsWorkload>());
    return v;
  };
  spec.axis = SweepAxis::error_rate_point(0.0);
  CampaignRunOptions thread_options;
  thread_options.max_attempts = 3;
  CampaignRunOptions proc_opts = process_options();
  proc_opts.max_attempts = 3;
  const CampaignResult threads = CampaignEngine(1).run(spec, thread_options);
  const CampaignResult procs = CampaignEngine(1).run(spec, proc_opts);
  ASSERT_EQ(procs.jobs.size(), 1u);
  EXPECT_FALSE(procs.jobs[0].ok);
  EXPECT_EQ(procs.jobs[0].attempts, 3);
  EXPECT_EQ(procs.worker_stats.crashes, 0u); // a throw is not a crash
  EXPECT_EQ(csv_without_wall(procs), csv_without_wall(threads));
}

// -- Crash containment --------------------------------------------------------

TEST(ProcessIsolation, SegfaultIsContainedWithDecodedSignalName) {
  CampaignRunOptions options = process_options();
  options.inject_worker_crash = inject::WorkerCrashInjection::parse("1:segv");
  const CampaignResult res = CampaignEngine(2).run(haar_spec(), options);
  ASSERT_EQ(res.jobs.size(), 3u);
  EXPECT_TRUE(res.jobs[0].ok);
  EXPECT_FALSE(res.jobs[1].ok);
  EXPECT_NE(res.jobs[1].error.find("SIGSEGV"), std::string::npos)
      << res.jobs[1].error;
  EXPECT_TRUE(res.jobs[2].ok);
  EXPECT_GE(res.worker_stats.crashes, 1u);
  EXPECT_GE(res.worker_stats.spawns, 1u);
}

TEST(ProcessIsolation, SigkillMidJobIsDecodedWithOomHint) {
  CampaignRunOptions options = process_options();
  options.inject_worker_crash = inject::WorkerCrashInjection::parse("0:kill");
  const CampaignResult res = CampaignEngine(1).run(haar_spec(), options);
  ASSERT_EQ(res.jobs.size(), 3u);
  EXPECT_FALSE(res.jobs[0].ok);
  EXPECT_NE(res.jobs[0].error.find("SIGKILL"), std::string::npos);
  EXPECT_NE(res.jobs[0].error.find("OOM"), std::string::npos)
      << "SIGKILL should carry the OOM heuristic: " << res.jobs[0].error;
  EXPECT_TRUE(res.jobs[1].ok);
  EXPECT_TRUE(res.jobs[2].ok);
}

TEST(ProcessIsolation, CleanExitWithoutReplyIsAFailureNotAHang) {
  CampaignRunOptions options = process_options();
  options.inject_worker_crash = inject::WorkerCrashInjection::parse("1:exit0");
  const CampaignResult res = CampaignEngine(2).run(haar_spec(), options);
  ASSERT_EQ(res.jobs.size(), 3u);
  EXPECT_FALSE(res.jobs[1].ok);
  EXPECT_NE(res.jobs[1].error.find("exited cleanly without replying"),
            std::string::npos)
      << res.jobs[1].error;
  EXPECT_TRUE(res.jobs[0].ok);
  EXPECT_TRUE(res.jobs[2].ok);
}

TEST(ProcessIsolation, TransientCrashIsAbsorbedByRedispatch) {
  CampaignRunOptions options = process_options();
  options.max_attempts = 2;
  options.inject_worker_crash =
      inject::WorkerCrashInjection::parse("1:abrt:1");
  const CampaignResult res = CampaignEngine(2).run(haar_spec(), options);
  ASSERT_EQ(res.jobs.size(), 3u);
  EXPECT_TRUE(res.all_ok());
  EXPECT_EQ(res.jobs[1].attempts, 2); // the crash consumed attempt 1
  EXPECT_EQ(res.worker_stats.crashes, 1u);
  EXPECT_EQ(res.worker_stats.redispatches, 1u);
  EXPECT_GE(res.worker_stats.respawns, 1u);
}

TEST(ProcessIsolation, PoisonedJobExhaustsBudgetIntoFailedManifest) {
  const std::string journal_path = temp_path("poisoned.journal");
  std::remove(journal_path.c_str());
  CampaignRunOptions options = process_options();
  options.max_attempts = 3;
  options.journal_path = journal_path;
  options.inject_worker_crash = inject::WorkerCrashInjection::parse("1:segv");
  const CampaignResult res = CampaignEngine(2).run(haar_spec(), options);
  ASSERT_EQ(res.jobs.size(), 3u); // the campaign completes regardless
  EXPECT_FALSE(res.jobs[1].ok);
  EXPECT_EQ(res.jobs[1].attempts, 3);
  EXPECT_EQ(res.worker_stats.crashes, 3u);
  EXPECT_EQ(res.worker_stats.redispatches, 2u);
  EXPECT_TRUE(res.jobs[0].ok);
  EXPECT_TRUE(res.jobs[2].ok);

  // The journal doubles as the failed-job manifest: the poisoned job is on
  // record with its decoded cause.
  std::ifstream in(journal_path);
  ASSERT_TRUE(in.good());
  const CampaignJournal journal = read_campaign_journal(in);
  bool found_failed = false;
  for (const JobResult& e : journal.entries) {
    if (e.job.index == 1) {
      found_failed = true;
      EXPECT_FALSE(e.ok);
      EXPECT_NE(e.error.find("SIGSEGV"), std::string::npos);
    }
  }
  EXPECT_TRUE(found_failed);
  std::remove(journal_path.c_str());
}

TEST(ProcessIsolation, HardTimeoutKillsTheWorker) {
  SweepSpec spec;
  spec.factory = [] {
    std::vector<std::unique_ptr<Workload>> v;
    v.push_back(std::make_unique<StuckWorkload>());
    return v;
  };
  spec.axis = SweepAxis::error_rate_point(0.0);
  CampaignRunOptions options = process_options();
  options.job_timeout_ms = 100.0;
  options.max_attempts = 3; // timeouts must still not be retried
  const CampaignResult res = CampaignEngine(1).run(spec, options);
  ASSERT_EQ(res.jobs.size(), 1u);
  EXPECT_FALSE(res.jobs[0].ok);
  EXPECT_TRUE(res.jobs[0].timed_out);
  EXPECT_NE(res.jobs[0].error.find("hard timeout"), std::string::npos)
      << res.jobs[0].error;
  EXPECT_EQ(res.worker_stats.timeout_kills, 1u);
  EXPECT_EQ(res.worker_stats.redispatches, 0u);
}

// -- Resume after a crashed campaign ------------------------------------------

TEST(ProcessIsolation, ResumeAfterCrashReproducesCleanRunBitIdentically) {
  const SweepSpec spec = haar_spec();
  const CampaignResult clean =
      CampaignEngine(2).run(spec, CampaignRunOptions{});

  const std::string journal_path = temp_path("crashed.journal");
  std::remove(journal_path.c_str());
  CampaignRunOptions crashing = process_options();
  crashing.journal_path = journal_path;
  crashing.inject_worker_crash = inject::WorkerCrashInjection::parse("1:segv");
  const CampaignResult crashed = CampaignEngine(2).run(spec, crashing);
  EXPECT_FALSE(crashed.jobs[1].ok);

  // Resume without the injection: the journaled failure is re-executed
  // (only ok entries restore), healing the grid to the clean run.
  std::ifstream in(journal_path);
  ASSERT_TRUE(in.good());
  CampaignRunOptions resuming = process_options();
  resuming.resume = read_campaign_journal(in);
  resuming.journal_path = journal_path;
  const CampaignResult resumed = CampaignEngine(2).run(spec, resuming);
  EXPECT_TRUE(resumed.all_ok());
  EXPECT_EQ(resumed.resumed_jobs, 2u);
  EXPECT_EQ(csv_without_wall(resumed), csv_without_wall(clean));
  std::remove(journal_path.c_str());
}

// -- Telemetry across the pipe ------------------------------------------------

TEST(ProcessIsolation, MetricsSnapshotsCrossThePipeExactly) {
  SweepSpec spec = haar_spec();
  spec.metrics = true;
  const CampaignResult threads =
      CampaignEngine(2).run(spec, CampaignRunOptions{});
  const CampaignResult procs = CampaignEngine(2).run(spec, process_options());

  // Every simulator-side instrument merges to the same value; the process
  // campaign only adds its campaign.worker_* supervision counters.
  for (const auto& c : threads.metrics.counters) {
    const auto* other = procs.metrics.find_counter(c.name);
    ASSERT_NE(other, nullptr) << c.name;
    EXPECT_EQ(other->value, c.value) << c.name;
  }
  for (const auto& h : threads.metrics.histograms) {
    const auto* other = procs.metrics.find_histogram(h.name);
    ASSERT_NE(other, nullptr) << h.name;
    EXPECT_EQ(other->buckets, h.buckets) << h.name;
    EXPECT_EQ(other->sum, h.sum) << h.name;
  }
  const auto* spawns = procs.metrics.find_counter("campaign.worker_spawns");
  ASSERT_NE(spawns, nullptr);
  EXPECT_GE(spawns->value, 1u);
  EXPECT_EQ(threads.metrics.find_counter("campaign.worker_spawns"), nullptr);
}

TEST(ProcessIsolation, TimelineCampaignRecordsSupervisionEvents) {
  SweepSpec spec = haar_spec();
  spec.timeline = true;
  CampaignRunOptions options = process_options();
  options.max_attempts = 2;
  options.inject_worker_crash =
      inject::WorkerCrashInjection::parse("1:segv:1");
  const CampaignResult res = CampaignEngine(1).run(spec, options);
  ASSERT_NE(res.timeline, nullptr);
  bool saw_spawn = false;
  bool saw_crash = false;
  bool saw_redispatch = false;
  for (const auto& ev : res.timeline->events()) {
    if (ev.name == "worker_spawn") saw_spawn = true;
    if (ev.name == "worker_crash") saw_crash = true;
    if (ev.name == "job_redispatch") saw_redispatch = true;
  }
  EXPECT_TRUE(saw_spawn);
  EXPECT_TRUE(saw_crash);
  EXPECT_TRUE(saw_redispatch);
}

} // namespace
} // namespace tmemo
