#include "sim/campaign.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>

#include "workloads/haar.hpp"
#include "workloads/workload.hpp"

namespace tmemo {
namespace {

// A 3-kernel x 3-point grid, small enough to run many times per test.
SweepSpec small_spec() {
  SweepSpec spec;
  spec.scale = 0.01;
  spec.kernels = {"haar", "fwt", "blackscholes"};
  spec.axis = SweepAxis::error_rate(0.0, 0.04, 3);
  return spec;
}

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const JobResult& ja = a.jobs[i];
    const JobResult& jb = b.jobs[i];
    SCOPED_TRACE("job " + std::to_string(i) + " (" + ja.job.kernel + ")");
    EXPECT_EQ(ja.job.kernel, jb.job.kernel);
    EXPECT_EQ(ja.job.axis_value, jb.job.axis_value);
    EXPECT_EQ(ja.job.spec.seed(), jb.job.spec.seed());
    EXPECT_EQ(ja.ok, jb.ok);
    // Bit-identical measurements: exact double equality, no tolerance.
    EXPECT_EQ(ja.report.weighted_hit_rate, jb.report.weighted_hit_rate);
    EXPECT_EQ(ja.report.energy.memoized_pj, jb.report.energy.memoized_pj);
    EXPECT_EQ(ja.report.energy.baseline_pj, jb.report.energy.baseline_pj);
    EXPECT_EQ(ja.report.result.max_abs_error, jb.report.result.max_abs_error);
    EXPECT_EQ(ja.report.result.passed, jb.report.result.passed);
    for (std::size_t u = 0; u < static_cast<std::size_t>(kNumFpuTypes); ++u) {
      EXPECT_EQ(ja.report.unit_stats[u].instructions,
                jb.report.unit_stats[u].instructions);
      EXPECT_EQ(ja.report.unit_stats[u].hits, jb.report.unit_stats[u].hits);
      EXPECT_EQ(ja.report.unit_stats[u].timing_errors,
                jb.report.unit_stats[u].timing_errors);
    }
  }
}

TEST(Campaign, SerialAndParallelRunsAreBitIdentical) {
  // The ISSUE acceptance bar: --jobs 1 and --jobs 8 produce the same
  // CampaignResult for a 3-kernel x 3-point sweep.
  const CampaignResult serial = CampaignEngine(1).run(small_spec());
  const CampaignResult parallel = CampaignEngine(8).run(small_spec());
  ASSERT_EQ(serial.jobs.size(), 9u);
  EXPECT_EQ(serial.workers, 1);
  EXPECT_TRUE(serial.all_ok());
  expect_identical(serial, parallel);
}

class ThrowingWorkload final : public Workload {
 public:
  [[nodiscard]] std::string_view name() const override { return "Boom"; }
  [[nodiscard]] std::string input_parameter() const override { return "-"; }
  [[nodiscard]] float table1_threshold() const override { return 0.0f; }
  [[nodiscard]] double verify_tolerance() const override { return 0.0; }
  [[nodiscard]] WorkloadResult run(GpuDevice&) const override {
    throw std::runtime_error("injected failure");
  }
};

SweepSpec failing_spec() {
  SweepSpec spec;
  spec.factory = [] {
    std::vector<std::unique_ptr<Workload>> v;
    v.push_back(std::make_unique<HaarWorkload>(256));
    v.push_back(std::make_unique<ThrowingWorkload>());
    v.push_back(std::make_unique<HaarWorkload>(128));
    return v;
  };
  spec.axis = SweepAxis::error_rate_point(0.0);
  return spec;
}

TEST(Campaign, FailingJobDoesNotAbortCampaign) {
  const CampaignResult res = CampaignEngine(2).run(failing_spec());
  ASSERT_EQ(res.jobs.size(), 3u);
  EXPECT_TRUE(res.jobs[0].ok);
  EXPECT_FALSE(res.jobs[1].ok);
  EXPECT_NE(res.jobs[1].error.find("injected failure"), std::string::npos);
  EXPECT_TRUE(res.jobs[2].ok);
  EXPECT_EQ(res.failed(), 1u);
  EXPECT_FALSE(res.all_ok());
  EXPECT_FALSE(res.all_passed());
  // The healthy jobs still carry real measurements.
  EXPECT_TRUE(res.jobs[0].report.result.passed);
  EXPECT_GT(res.jobs[0].report.energy.baseline_pj, 0.0);
}

TEST(Campaign, ExpansionOrderIsStableAndSeedsAreDerived) {
  SweepSpec spec = small_spec();
  spec.thresholds = {0.0f, 0.1f};
  spec.variants.push_back({"base", {}});
  ConfigVariant gated;
  gated.label = "no-memo";
  gated.config.memoization = false;
  spec.variants.push_back(gated);

  const auto jobs = CampaignEngine::expand(spec);
  // variants (2) x kernels (3) x thresholds (2) x points (3)
  ASSERT_EQ(jobs.size(), 36u);
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].index, i);
    ASSERT_TRUE(jobs[i].spec.seed().has_value());
    EXPECT_EQ(*jobs[i].spec.seed(), derive_job_seed(spec.campaign_seed, i));
    seeds.insert(*jobs[i].spec.seed());
  }
  EXPECT_EQ(seeds.size(), jobs.size()) << "per-job seeds must be distinct";
  // Nesting order: variant outermost, axis point innermost.
  EXPECT_EQ(jobs[0].variant_label, "base");
  EXPECT_EQ(jobs[18].variant_label, "no-memo");
  EXPECT_EQ(jobs[0].axis_value, 0.0);
  EXPECT_EQ(jobs[1].axis_value, 0.02);
  EXPECT_EQ(jobs[2].axis_value, 0.04);
  EXPECT_EQ(jobs[0].kernel, jobs[5].kernel);
  EXPECT_NE(jobs[0].kernel, jobs[6].kernel);
}

TEST(Campaign, UnknownKernelFilterThrows) {
  SweepSpec spec = small_spec();
  spec.kernels = {"haar", "no-such-kernel"};
  EXPECT_THROW((void)CampaignEngine::expand(spec), std::invalid_argument);
}

TEST(Campaign, AxisParseRoundTrips) {
  const auto err = SweepAxis::parse("error-rate:0:0.04:9");
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->kind, SweepAxis::Kind::kErrorRate);
  EXPECT_EQ(err->start, 0.0);
  EXPECT_EQ(err->stop, 0.04);
  EXPECT_EQ(err->count, 9);
  EXPECT_EQ(err->points().size(), 9u);

  const auto volt = SweepAxis::parse("voltage:0.9:0.8:6");
  ASSERT_TRUE(volt.has_value());
  EXPECT_EQ(volt->kind, SweepAxis::Kind::kVoltage);
  EXPECT_EQ(volt->points().front(), 0.9);
  EXPECT_EQ(volt->points().back(), 0.8);

  EXPECT_FALSE(SweepAxis::parse(""));
  EXPECT_FALSE(SweepAxis::parse("frequency:1:2:3"));
  EXPECT_FALSE(SweepAxis::parse("error-rate:0:0.04"));
  EXPECT_FALSE(SweepAxis::parse("error-rate:0:0.04:0"));
  EXPECT_FALSE(SweepAxis::parse("error-rate:0:0.04:2.5"));
  EXPECT_FALSE(SweepAxis::parse("voltage:0:0.9:3"));
  EXPECT_FALSE(SweepAxis::parse("error-rate:a:b:3"));
  EXPECT_FALSE(SweepAxis::parse("error-rate:0:0.04:9:extra"));
}

TEST(Campaign, AxisPointsAreEvenlySpacedAndInclusive) {
  const SweepAxis axis = SweepAxis::error_rate(0.0, 0.04, 5);
  const auto pts = axis.points();
  ASSERT_EQ(pts.size(), 5u);
  EXPECT_DOUBLE_EQ(pts[0], 0.0);
  EXPECT_DOUBLE_EQ(pts[2], 0.02);
  EXPECT_DOUBLE_EQ(pts[4], 0.04);
  EXPECT_EQ(SweepAxis::voltage_point(0.82).points(),
            std::vector<double>{0.82});
}

TEST(Campaign, WritersProduceStructuredOutput) {
  SweepSpec spec;
  spec.scale = 0.01;
  spec.kernels = {"haar"};
  spec.axis = SweepAxis::error_rate(0.0, 0.04, 2);
  const CampaignResult res = CampaignEngine(1).run(spec);

  std::ostringstream csv;
  write_campaign_csv(res, csv);
  const std::string csv_text = csv.str();
  EXPECT_NE(csv_text.find("index,variant,kernel"), std::string::npos);
  // header + one line per job + the self-describing record-count footer
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv_text.begin(), csv_text.end(), '\n')),
            1 + res.jobs.size() + 1);
  EXPECT_NE(csv_text.find("#tmemo-artifact-end,rows="), std::string::npos);

  std::ostringstream json;
  write_campaign_json(res, json);
  const std::string json_text = json.str();
  EXPECT_NE(json_text.find("\"schema\": \"tmemo-campaign-v1\""),
            std::string::npos);
  EXPECT_NE(json_text.find("\"kernel\": \"Haar\""), std::string::npos);
  EXPECT_NE(json_text.find("\"passed\": true"), std::string::npos);
}

TEST(Campaign, FailedJobsAppearInWriters) {
  const CampaignResult res = CampaignEngine(1).run(failing_spec());
  std::ostringstream csv;
  write_campaign_csv(res, csv);
  EXPECT_NE(csv.str().find("error,injected failure"), std::string::npos);
  std::ostringstream json;
  write_campaign_json(res, json);
  EXPECT_NE(json.str().find("\"error\": \"injected failure\""),
            std::string::npos);
}

} // namespace
} // namespace tmemo
