// Crash-safety tests for the campaign engine: RFC-4180 record parsing (the
// CSV-injection regression), campaign fingerprints, the append-only job
// journal, bounded deterministic retry, the cooperative job timeout, and
// the ISSUE acceptance check that an interrupted-and-resumed campaign is
// bit-identical to an uninterrupted one.
#include "sim/campaign.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "workloads/haar.hpp"
#include "workloads/workload.hpp"

namespace tmemo {
namespace {

SweepSpec small_spec() {
  SweepSpec spec;
  spec.scale = 0.01;
  spec.kernels = {"haar"};
  spec.axis = SweepAxis::error_rate(0.0, 0.04, 3);
  return spec;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "tmemo_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// -- RFC-4180 record parsing --------------------------------------------------

TEST(CsvRecord, ParsesQuotedSeparatorsQuotesAndLineBreaks) {
  std::istringstream in(
      "plain,\"comma, inside\",\"escaped \"\"quote\"\"\",\"multi\nline\","
      "\"carriage\rreturn\"\n"
      "second,row\n");
  std::vector<std::string> fields;
  ASSERT_TRUE(read_csv_record(in, fields));
  ASSERT_EQ(fields.size(), 5u);
  EXPECT_EQ(fields[0], "plain");
  EXPECT_EQ(fields[1], "comma, inside");
  EXPECT_EQ(fields[2], "escaped \"quote\"");
  EXPECT_EQ(fields[3], "multi\nline");
  EXPECT_EQ(fields[4], "carriage\rreturn");
  ASSERT_TRUE(read_csv_record(in, fields));
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "second");
  EXPECT_FALSE(read_csv_record(in, fields));
}

TEST(CsvRecord, HandlesCrlfAndTruncatedFinalRecord) {
  std::istringstream in("a,b\r\nc,d");  // CRLF row, then EOF mid-record
  std::vector<std::string> fields;
  ASSERT_TRUE(read_csv_record(in, fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "b"}));
  ASSERT_TRUE(read_csv_record(in, fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"c", "d"}));
  EXPECT_FALSE(read_csv_record(in, fields));
}

// A workload whose failure text is a CSV-injection attempt: separators, a
// quote, and both line-break characters.
class EvilErrorWorkload final : public Workload {
 public:
  static constexpr const char* kMessage =
      "boom, \"quoted\" and\r\nan extra,row,1,2,3";
  [[nodiscard]] std::string_view name() const override { return "Evil"; }
  [[nodiscard]] std::string input_parameter() const override { return "-"; }
  [[nodiscard]] float table1_threshold() const override { return 0.0f; }
  [[nodiscard]] double verify_tolerance() const override { return 0.0; }
  [[nodiscard]] WorkloadResult run(GpuDevice&) const override {
    throw std::runtime_error(kMessage);
  }
};

TEST(CsvRecord, WriterQuotesHostileErrorTextsRoundTrip) {
  // Satellite regression: write_campaign_csv must quote `,`, `"`, `\n` AND
  // `\r`, so a hostile error message cannot smuggle extra rows or columns
  // past a conforming CSV reader.
  SweepSpec spec;
  spec.factory = [] {
    std::vector<std::unique_ptr<Workload>> v;
    v.push_back(std::make_unique<HaarWorkload>(128));
    v.push_back(std::make_unique<EvilErrorWorkload>());
    return v;
  };
  spec.axis = SweepAxis::error_rate_point(0.0);
  const CampaignResult res = CampaignEngine(1).run(spec);
  ASSERT_EQ(res.jobs.size(), 2u);
  ASSERT_FALSE(res.jobs[1].ok);

  std::ostringstream out;
  write_campaign_csv(res, out);
  std::istringstream in(out.str());
  std::vector<std::string> header;
  ASSERT_TRUE(read_csv_record(in, header));
  std::size_t rows = 0;
  std::vector<std::string> fields;
  std::string evil_error;
  while (read_csv_record(in, fields)) {
    // Skip the '#' record-count footer — a comment, not a data record.
    if (!fields.empty() && !fields[0].empty() && fields[0][0] == '#') continue;
    ++rows;
    ASSERT_EQ(fields.size(), header.size()) << "row " << rows;
    if (fields[2] == "Evil") evil_error = fields.back();
  }
  EXPECT_EQ(rows, res.jobs.size());  // no smuggled extra records
  EXPECT_EQ(evil_error, EvilErrorWorkload::kMessage);  // lossless round-trip
}

// -- Campaign fingerprints ----------------------------------------------------

TEST(Fingerprint, StableForEqualSpecsSensitiveToGridIdentity) {
  const std::string base = campaign_fingerprint(small_spec());
  EXPECT_EQ(base, campaign_fingerprint(small_spec()));
  EXPECT_EQ(base.rfind("v1-", 0), 0u);

  SweepSpec seed = small_spec();
  seed.campaign_seed = 7;
  EXPECT_NE(campaign_fingerprint(seed), base);

  SweepSpec axis = small_spec();
  axis.axis = SweepAxis::error_rate(0.0, 0.04, 5);
  EXPECT_NE(campaign_fingerprint(axis), base);

  SweepSpec kernels = small_spec();
  kernels.kernels = {"haar", "fwt"};
  EXPECT_NE(campaign_fingerprint(kernels), base);

  SweepSpec thresholds = small_spec();
  thresholds.thresholds = {0.1f};
  EXPECT_NE(campaign_fingerprint(thresholds), base);

  SweepSpec variants = small_spec();
  variants.variants.push_back({"ablation", {}});
  EXPECT_NE(campaign_fingerprint(variants), base);
}

// -- Journal round-trip -------------------------------------------------------

void expect_entry_matches(const JobResult& entry, const JobResult& job) {
  SCOPED_TRACE("job " + std::to_string(job.job.index));
  EXPECT_EQ(entry.job.index, job.job.index);
  EXPECT_EQ(entry.ok, job.ok);
  EXPECT_EQ(entry.attempts, job.attempts);
  EXPECT_EQ(entry.timed_out, job.timed_out);
  EXPECT_EQ(entry.error, job.error);
  EXPECT_EQ(entry.report.kernel, job.report.kernel);
  EXPECT_EQ(entry.report.threshold, job.report.threshold);
  EXPECT_EQ(entry.report.supply, job.report.supply);
  EXPECT_EQ(entry.report.error_rate_configured,
            job.report.error_rate_configured);
  // Bit-exact doubles: the journal uses round-trippable formatting.
  EXPECT_EQ(entry.report.weighted_hit_rate, job.report.weighted_hit_rate);
  EXPECT_EQ(entry.report.energy.memoized_pj, job.report.energy.memoized_pj);
  EXPECT_EQ(entry.report.energy.baseline_pj, job.report.energy.baseline_pj);
  EXPECT_EQ(entry.report.result.output_values, job.report.result.output_values);
  EXPECT_EQ(entry.report.result.max_abs_error, job.report.result.max_abs_error);
  EXPECT_EQ(entry.report.result.sdc_values, job.report.result.sdc_values);
  EXPECT_EQ(entry.report.result.passed, job.report.result.passed);
  for (std::size_t u = 0; u < static_cast<std::size_t>(kNumFpuTypes); ++u) {
    const FpuStats& a = entry.report.unit_stats[u];
    const FpuStats& b = job.report.unit_stats[u];
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.timing_errors, b.timing_errors);
    EXPECT_EQ(a.recoveries, b.recoveries);
    EXPECT_EQ(a.recovery_cycles, b.recovery_cycles);
    EXPECT_EQ(a.seu_flips, b.seu_flips);
    EXPECT_EQ(a.sdc_ops, b.sdc_ops);
  }
}

TEST(Journal, RoundTripsEveryMeasuredField) {
  const std::string path = temp_path("journal_roundtrip.csv");
  std::remove(path.c_str());
  CampaignRunOptions options;
  options.journal_path = path;
  const SweepSpec spec = small_spec();
  const CampaignResult res = CampaignEngine(2).run(spec, options);
  ASSERT_EQ(res.jobs.size(), 3u);
  EXPECT_TRUE(res.all_ok());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  const CampaignJournal journal = read_campaign_journal(in);
  EXPECT_EQ(journal.fingerprint, campaign_fingerprint(spec));
  ASSERT_EQ(journal.entries.size(), res.jobs.size());
  // Workers may have appended out of order; index them.
  std::vector<const JobResult*> by_index(res.jobs.size(), nullptr);
  for (const JobResult& e : journal.entries) {
    ASSERT_LT(e.job.index, by_index.size());
    by_index[e.job.index] = &e;
  }
  for (const JobResult& job : res.jobs) {
    ASSERT_NE(by_index[job.job.index], nullptr);
    expect_entry_matches(*by_index[job.job.index], job);
  }
  std::remove(path.c_str());
}

TEST(Journal, RejectsUnrecognizedHeader) {
  std::istringstream bogus("not-a-journal,v0\n");
  EXPECT_THROW((void)read_campaign_journal(bogus), std::runtime_error);
  std::istringstream empty("");
  EXPECT_THROW((void)read_campaign_journal(empty), std::runtime_error);
}

TEST(Journal, SkipsTruncatedFinalRecord) {
  const std::string path = temp_path("journal_truncated.csv");
  std::remove(path.c_str());
  CampaignRunOptions options;
  options.journal_path = path;
  (void)CampaignEngine(1).run(small_spec(), options);
  std::string text = slurp(path);
  std::remove(path.c_str());
  // Chop into the final record — the crash case: a half-written row.
  ASSERT_GT(text.size(), 20u);
  std::istringstream in(text.substr(0, text.size() - 15));
  const CampaignJournal journal = read_campaign_journal(in);
  EXPECT_EQ(journal.entries.size(), 2u);
}

// -- Resume -------------------------------------------------------------------

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    expect_entry_matches(a.jobs[i], b.jobs[i]);
  }
}

TEST(Resume, InterruptedCampaignResumesBitIdentically) {
  // ISSUE acceptance: journal a campaign, "crash" it after K jobs (keep only
  // the first K journal records), resume — and the combined result must be
  // bit-identical to an uninterrupted run, with the restored jobs counted.
  const SweepSpec spec = small_spec();
  const CampaignResult uninterrupted = CampaignEngine(2).run(spec);

  const std::string path = temp_path("journal_resume.csv");
  std::remove(path.c_str());
  CampaignRunOptions options;
  options.journal_path = path;
  (void)CampaignEngine(1).run(spec, options);
  std::ifstream in(path);
  CampaignJournal journal = read_campaign_journal(in);
  in.close();
  ASSERT_EQ(journal.entries.size(), 3u);
  journal.entries.resize(2);  // the crash: job 2 never hit the journal

  const std::string resumed_path = temp_path("journal_resume2.csv");
  std::remove(resumed_path.c_str());
  CampaignRunOptions resume_options;
  resume_options.journal_path = resumed_path;
  resume_options.resume = journal;
  const CampaignResult resumed = CampaignEngine(2).run(spec, resume_options);
  EXPECT_EQ(resumed.resumed_jobs, 2u);
  expect_identical(uninterrupted, resumed);

  // The resumed run journals only the jobs it actually executed.
  std::ifstream in2(resumed_path);
  const CampaignJournal second = read_campaign_journal(in2);
  EXPECT_EQ(second.entries.size(), 1u);
  EXPECT_EQ(second.entries[0].job.index, 2u);
  std::remove(path.c_str());
  std::remove(resumed_path.c_str());
}

TEST(Resume, FingerprintMismatchRefusesToResume) {
  CampaignJournal journal;
  journal.fingerprint = campaign_fingerprint(small_spec());
  SweepSpec other = small_spec();
  other.campaign_seed = 999;
  CampaignRunOptions options;
  options.resume = journal;
  EXPECT_THROW((void)CampaignEngine(1).run(other, options),
               std::invalid_argument);
}

TEST(Resume, MetricsCampaignsCannotResume) {
  CampaignJournal journal;
  SweepSpec spec = small_spec();
  journal.fingerprint = campaign_fingerprint(spec);
  spec.metrics = true;  // snapshots are not journaled
  CampaignRunOptions options;
  options.resume = journal;
  EXPECT_THROW((void)CampaignEngine(1).run(spec, options),
               std::invalid_argument);
}

// -- Retry and timeout --------------------------------------------------------

// Fails on the first run() call of each workload instance, succeeds after:
// models a transient host-side failure a bounded retry should absorb.
class FlakyOnceWorkload final : public Workload {
 public:
  [[nodiscard]] std::string_view name() const override { return "Flaky"; }
  [[nodiscard]] std::string input_parameter() const override {
    return inner_.input_parameter();
  }
  [[nodiscard]] float table1_threshold() const override {
    return inner_.table1_threshold();
  }
  [[nodiscard]] double verify_tolerance() const override {
    return inner_.verify_tolerance();
  }
  [[nodiscard]] WorkloadResult run(GpuDevice& device) const override {
    if (++calls_ == 1) throw std::runtime_error("transient failure");
    return inner_.run(device);
  }

 private:
  HaarWorkload inner_{64};
  mutable int calls_ = 0;
};

class AlwaysThrowsWorkload final : public Workload {
 public:
  [[nodiscard]] std::string_view name() const override { return "Doom"; }
  [[nodiscard]] std::string input_parameter() const override { return "-"; }
  [[nodiscard]] float table1_threshold() const override { return 0.0f; }
  [[nodiscard]] double verify_tolerance() const override { return 0.0; }
  [[nodiscard]] WorkloadResult run(GpuDevice&) const override {
    throw std::runtime_error("hard failure");
  }
};

class SlowWorkload final : public Workload {
 public:
  [[nodiscard]] std::string_view name() const override { return "Slow"; }
  [[nodiscard]] std::string input_parameter() const override {
    return inner_.input_parameter();
  }
  [[nodiscard]] float table1_threshold() const override {
    return inner_.table1_threshold();
  }
  [[nodiscard]] double verify_tolerance() const override {
    return inner_.verify_tolerance();
  }
  [[nodiscard]] WorkloadResult run(GpuDevice& device) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return inner_.run(device);
  }

 private:
  HaarWorkload inner_{64};
};

template <typename W>
SweepSpec single_workload_spec() {
  SweepSpec spec;
  spec.factory = [] {
    std::vector<std::unique_ptr<Workload>> v;
    v.push_back(std::make_unique<W>());
    return v;
  };
  spec.axis = SweepAxis::error_rate_point(0.0);
  return spec;
}

TEST(Retry, TransientFailureIsAbsorbedAndCounted) {
  CampaignRunOptions options;
  options.max_attempts = 2;
  const CampaignResult res =
      CampaignEngine(1).run(single_workload_spec<FlakyOnceWorkload>(), options);
  ASSERT_EQ(res.jobs.size(), 1u);
  EXPECT_TRUE(res.jobs[0].ok);
  EXPECT_EQ(res.jobs[0].attempts, 2);
  EXPECT_TRUE(res.jobs[0].error.empty());
  EXPECT_TRUE(res.jobs[0].report.result.passed);
}

TEST(Retry, DeterministicFailureExhaustsTheBudget) {
  CampaignRunOptions options;
  options.max_attempts = 3;
  const CampaignResult res = CampaignEngine(1).run(
      single_workload_spec<AlwaysThrowsWorkload>(), options);
  ASSERT_EQ(res.jobs.size(), 1u);
  EXPECT_FALSE(res.jobs[0].ok);
  EXPECT_EQ(res.jobs[0].attempts, 3);
  EXPECT_NE(res.jobs[0].error.find("hard failure"), std::string::npos);
}

TEST(Retry, ZeroAttemptsIsRejected) {
  CampaignRunOptions options;
  options.max_attempts = 0;
  EXPECT_THROW((void)CampaignEngine(1).run(small_spec(), options),
               std::invalid_argument);
}

TEST(Timeout, BlownBudgetMarksTheJobWithoutRetry) {
  CampaignRunOptions options;
  options.job_timeout_ms = 1.0;
  options.max_attempts = 3;  // timeouts must NOT be retried
  const CampaignResult res =
      CampaignEngine(1).run(single_workload_spec<SlowWorkload>(), options);
  ASSERT_EQ(res.jobs.size(), 1u);
  EXPECT_FALSE(res.jobs[0].ok);
  EXPECT_TRUE(res.jobs[0].timed_out);
  EXPECT_EQ(res.jobs[0].attempts, 1);
  EXPECT_NE(res.jobs[0].error.find("timeout"), std::string::npos);

  std::ostringstream csv;
  write_campaign_csv(res, csv);
  EXPECT_NE(csv.str().find(",timeout,"), std::string::npos);
  std::ostringstream json;
  write_campaign_json(res, json);
  EXPECT_NE(json.str().find("\"timed_out\": true"), std::string::npos);
}

TEST(Timeout, GenerousBudgetLeavesResultsUntouched) {
  CampaignRunOptions options;
  options.job_timeout_ms = 60000.0;
  const CampaignResult with = CampaignEngine(1).run(small_spec(), options);
  const CampaignResult without = CampaignEngine(1).run(small_spec());
  EXPECT_TRUE(with.all_ok());
  expect_identical(without, with);
}

} // namespace
} // namespace tmemo
