#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include "workloads/haar.hpp"
#include "workloads/sobel.hpp"

#include "img/synthetic.hpp"

namespace tmemo {
namespace {

TEST(Simulation, ReportCarriesConfiguration) {
  Simulation sim;
  HaarWorkload haar(256);
  const KernelRunReport r = sim.run_at_error_rate(haar, 0.02);
  EXPECT_EQ(r.kernel, "Haar");
  EXPECT_EQ(r.input_parameter, "256");
  EXPECT_FLOAT_EQ(r.threshold, 0.046f);
  EXPECT_EQ(r.error_rate_configured, 0.02);
  EXPECT_EQ(r.supply, 0.9);
}

TEST(Simulation, ThresholdOverride) {
  Simulation sim;
  HaarWorkload haar(256);
  const KernelRunReport r = sim.run_at_error_rate(haar, 0.0, 0.5f);
  EXPECT_FLOAT_EQ(r.threshold, 0.5f);
}

TEST(Simulation, UnitStatsReflectActivatedUnits) {
  Simulation sim;
  HaarWorkload haar(256);
  const KernelRunReport r = sim.run_at_error_rate(haar, 0.0);
  EXPECT_TRUE(r.unit_activated(FpuType::kAdd));
  EXPECT_TRUE(r.unit_activated(FpuType::kMul));
  EXPECT_FALSE(r.unit_activated(FpuType::kRecip));
  EXPECT_FALSE(r.unit_activated(FpuType::kTrig));
  EXPECT_EQ(r.unit_hit_rate(FpuType::kRecip), 0.0);
}

TEST(Simulation, SavingGrowsWithErrorRate) {
  // The core Fig. 10 property: each additional percent of timing errors
  // increases the memoization architecture's relative saving.
  Simulation sim;
  HaarWorkload haar(1024);
  double prev = -1.0;
  for (double rate : {0.0, 0.01, 0.02, 0.03, 0.04}) {
    const KernelRunReport r = sim.run_at_error_rate(haar, rate);
    EXPECT_GT(r.energy.saving(), prev) << "rate " << rate;
    prev = r.energy.saving();
  }
}

TEST(Simulation, BaselineArchitectureHasZeroSavingByConstruction) {
  ExperimentConfig cfg;
  cfg.memoization = false;
  Simulation sim(cfg);
  HaarWorkload haar(256);
  const KernelRunReport r = sim.run_at_error_rate(haar, 0.02);
  // Without the module, memoized == baseline energy (same records).
  EXPECT_NEAR(r.energy.saving(), 0.0, 1e-9);
  EXPECT_EQ(r.weighted_hit_rate, 0.0);
}

TEST(Simulation, VoltageRunsScaleEnergyDown) {
  Simulation sim;
  HaarWorkload haar(256);
  const KernelRunReport at90 = sim.run_at_voltage(haar, 0.90);
  const KernelRunReport at86 = sim.run_at_voltage(haar, 0.86);
  // No errors at either point; baseline energy scales ~ (V/Vnom)^2.
  EXPECT_NEAR(at86.energy.baseline_pj / at90.energy.baseline_pj,
              (0.86 / 0.90) * (0.86 / 0.90), 0.01);
}

TEST(Simulation, VosDipAndCrossover) {
  // Fig. 11 shape on a single kernel with decent locality: the relative
  // saving dips between 0.9 V and ~0.84 V (module stays at nominal), then
  // rises sharply at 0.80 V.
  Simulation sim;
  SobelWorkload sobel(make_face_image(128, 128), "face");
  const double s90 = sim.run_at_voltage(sobel, 0.90).energy.saving();
  const double s84 = sim.run_at_voltage(sobel, 0.84).energy.saving();
  const double s80 = sim.run_at_voltage(sobel, 0.80).energy.saving();
  EXPECT_LT(s84, s90);
  EXPECT_GT(s80, s90);
}

TEST(Simulation, RunsAreIndependent) {
  // Two identical runs in sequence return identical reports (fresh device
  // per run; no state leaks).
  Simulation sim;
  HaarWorkload haar(256);
  const KernelRunReport a = sim.run_at_error_rate(haar, 0.03);
  const KernelRunReport b = sim.run_at_error_rate(haar, 0.03);
  EXPECT_EQ(a.weighted_hit_rate, b.weighted_hit_rate);
  EXPECT_EQ(a.energy.memoized_pj, b.energy.memoized_pj);
  EXPECT_EQ(a.result.max_abs_error, b.result.max_abs_error);
}

TEST(Simulation, CommutativityConfigRespected) {
  ExperimentConfig cfg;
  cfg.commutativity = false;
  Simulation sim(cfg);
  HaarWorkload haar(1024);
  const double without = sim.run_at_error_rate(haar, 0.0).weighted_hit_rate;
  cfg.commutativity = true;
  Simulation sim2(cfg);
  const double with = sim2.run_at_error_rate(haar, 0.0).weighted_hit_rate;
  EXPECT_GE(with, without);
}

} // namespace
} // namespace tmemo
