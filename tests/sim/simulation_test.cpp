#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include "workloads/haar.hpp"
#include "workloads/sobel.hpp"

#include "img/synthetic.hpp"

namespace tmemo {
namespace {

TEST(Simulation, ReportCarriesConfiguration) {
  Simulation sim;
  HaarWorkload haar(256);
  const KernelRunReport r = sim.run(haar, RunSpec::at_error_rate(0.02));
  EXPECT_EQ(r.kernel, "Haar");
  EXPECT_EQ(r.input_parameter, "256");
  EXPECT_FLOAT_EQ(r.threshold, 0.046f);
  EXPECT_EQ(r.error_rate_configured, 0.02);
  EXPECT_EQ(r.supply, 0.9);
}

TEST(Simulation, ThresholdOverride) {
  Simulation sim;
  HaarWorkload haar(256);
  const KernelRunReport r = sim.run(haar, RunSpec::at_error_rate(0.0).threshold(0.5f));
  EXPECT_FLOAT_EQ(r.threshold, 0.5f);
}

TEST(Simulation, UnitStatsReflectActivatedUnits) {
  Simulation sim;
  HaarWorkload haar(256);
  const KernelRunReport r = sim.run(haar, RunSpec::at_error_rate(0.0));
  EXPECT_TRUE(r.unit_activated(FpuType::kAdd));
  EXPECT_TRUE(r.unit_activated(FpuType::kMul));
  EXPECT_FALSE(r.unit_activated(FpuType::kRecip));
  EXPECT_FALSE(r.unit_activated(FpuType::kTrig));
  EXPECT_EQ(r.unit_hit_rate(FpuType::kRecip), 0.0);
}

TEST(Simulation, SavingGrowsWithErrorRate) {
  // The core Fig. 10 property: each additional percent of timing errors
  // increases the memoization architecture's relative saving.
  Simulation sim;
  HaarWorkload haar(1024);
  double prev = -1.0;
  for (double rate : {0.0, 0.01, 0.02, 0.03, 0.04}) {
    const KernelRunReport r = sim.run(haar, RunSpec::at_error_rate(rate));
    EXPECT_GT(r.energy.saving(), prev) << "rate " << rate;
    prev = r.energy.saving();
  }
}

TEST(Simulation, BaselineArchitectureHasZeroSavingByConstruction) {
  ExperimentConfig cfg;
  cfg.memoization = false;
  Simulation sim(cfg);
  HaarWorkload haar(256);
  const KernelRunReport r = sim.run(haar, RunSpec::at_error_rate(0.02));
  // Without the module, memoized == baseline energy (same records).
  EXPECT_NEAR(r.energy.saving(), 0.0, 1e-9);
  EXPECT_EQ(r.weighted_hit_rate, 0.0);
}

TEST(Simulation, VoltageRunsScaleEnergyDown) {
  Simulation sim;
  HaarWorkload haar(256);
  const KernelRunReport at90 = sim.run(haar, RunSpec::at_voltage(0.90));
  const KernelRunReport at86 = sim.run(haar, RunSpec::at_voltage(0.86));
  // No errors at either point; baseline energy scales ~ (V/Vnom)^2.
  EXPECT_NEAR(at86.energy.baseline_pj / at90.energy.baseline_pj,
              (0.86 / 0.90) * (0.86 / 0.90), 0.01);
}

TEST(Simulation, VosDipAndCrossover) {
  // Fig. 11 shape on a single kernel with decent locality: the relative
  // saving dips between 0.9 V and ~0.84 V (module stays at nominal), then
  // rises sharply at 0.80 V.
  Simulation sim;
  SobelWorkload sobel(make_face_image(128, 128), "face");
  const double s90 = sim.run(sobel, RunSpec::at_voltage(0.90)).energy.saving();
  const double s84 = sim.run(sobel, RunSpec::at_voltage(0.84)).energy.saving();
  const double s80 = sim.run(sobel, RunSpec::at_voltage(0.80)).energy.saving();
  EXPECT_LT(s84, s90);
  EXPECT_GT(s80, s90);
}

TEST(Simulation, RunsAreIndependent) {
  // Two identical runs in sequence return identical reports (fresh device
  // per run; no state leaks).
  Simulation sim;
  HaarWorkload haar(256);
  const KernelRunReport a = sim.run(haar, RunSpec::at_error_rate(0.03));
  const KernelRunReport b = sim.run(haar, RunSpec::at_error_rate(0.03));
  EXPECT_EQ(a.weighted_hit_rate, b.weighted_hit_rate);
  EXPECT_EQ(a.energy.memoized_pj, b.energy.memoized_pj);
  EXPECT_EQ(a.result.max_abs_error, b.result.max_abs_error);
}

TEST(Simulation, WithConfigDerivesVariantWithoutMutatingOriginal) {
  const Simulation base;
  const Simulation gated =
      base.with_config([](ExperimentConfig& c) { c.memoization = false; });
  EXPECT_TRUE(base.config().memoization);
  EXPECT_FALSE(gated.config().memoization);
  HaarWorkload haar(256);
  EXPECT_GT(base.run(haar, RunSpec::at_error_rate(0.0)).weighted_hit_rate,
            0.0);
  EXPECT_EQ(gated.run(haar, RunSpec::at_error_rate(0.0)).weighted_hit_rate,
            0.0);
}

TEST(Simulation, RunSpecSeedOverridesDeviceSeed) {
  const Simulation sim;
  HaarWorkload haar(256);
  // Same seed -> bit-identical; different seed -> different error draws.
  const KernelRunReport a =
      sim.run(haar, RunSpec::at_error_rate(0.03).seed(7));
  const KernelRunReport b =
      sim.run(haar, RunSpec::at_error_rate(0.03).seed(7));
  const KernelRunReport c =
      sim.run(haar, RunSpec::at_error_rate(0.03).seed(8));
  EXPECT_EQ(a.energy.memoized_pj, b.energy.memoized_pj);
  EXPECT_NE(a.energy.memoized_pj, c.energy.memoized_pj);
}

TEST(Simulation, ExplicitModelRunSpec) {
  const Simulation sim;
  HaarWorkload haar(256);
  const auto model = std::make_shared<FixedRateErrorModel>(0.02);
  const KernelRunReport r = sim.run(haar, RunSpec::with_model(model, 0.85));
  EXPECT_EQ(r.supply, 0.85);
  EXPECT_GT(r.unit_stats[static_cast<std::size_t>(FpuType::kAdd)]
                .timing_errors,
            0u);
}

TEST(Simulation, CommutativityConfigRespected) {
  ExperimentConfig cfg;
  cfg.commutativity = false;
  Simulation sim(cfg);
  HaarWorkload haar(1024);
  const double without = sim.run(haar, RunSpec::at_error_rate(0.0)).weighted_hit_rate;
  cfg.commutativity = true;
  Simulation sim2(cfg);
  const double with = sim2.run(haar, RunSpec::at_error_rate(0.0)).weighted_hit_rate;
  EXPECT_GE(with, without);
}

} // namespace
} // namespace tmemo
