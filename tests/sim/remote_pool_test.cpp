// Loopback end-to-end tests of the distributed campaign fabric
// (docs/DISTRIBUTED.md): the supervisor binds an OS-chosen port via
// CampaignRunOptions::listener and fork()ed children run net::run_workerd
// directly — they inherit the test's WorkloadFactory through the address
// space, exactly like pipe workers. Covers the ISSUE acceptance criteria:
// a remote campaign is bit-identical to thread isolation, a worker killed
// mid-job maps into the crash taxonomy and its job is redispatched, a
// mismatched registration is rejected by name, local forked workers share
// the supervisor loop, and metrics cross the TCP fabric exactly.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "inject/worker_crash.hpp"
#include "net/transport.hpp"
#include "net/workerd.hpp"
#include "sim/campaign.hpp"
#include "workloads/haar.hpp"
#include "workloads/workload.hpp"

namespace tmemo {
namespace {

SweepSpec haar_spec(int points = 3) {
  SweepSpec spec;
  spec.factory = [] {
    std::vector<std::unique_ptr<Workload>> v;
    v.push_back(std::make_unique<HaarWorkload>(128));
    return v;
  };
  spec.axis = SweepAxis::error_rate(0.0, 0.04, points);
  return spec;
}

/// CSV with the wall-clock column (and optionally the attempts column, for
/// crash-redispatch runs) blanked, for bit-identity comparisons.
std::string comparable_csv(const CampaignResult& res,
                           bool blank_attempts = false) {
  std::ostringstream raw;
  write_campaign_csv(res, raw);
  std::istringstream in(raw.str());
  std::ostringstream out;
  std::vector<std::string> fields;
  while (read_csv_record(in, fields)) {
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (fields.size() > 19 && i == 19) fields[i].clear(); // wall_ms
      if (blank_attempts && fields.size() > 18 && i == 18) {
        fields[i].clear(); // attempts
      }
      out << (i == 0 ? "" : ",") << fields[i];
    }
    out << '\n';
  }
  return out.str();
}

/// Child exit codes, so waitpid can distinguish the workerd outcomes.
enum : int { kWorkerOk = 0, kWorkerFailed = 1, kWorkerRejected = 3 };

/// Forks a child that serves `spec` against the loopback supervisor and
/// exits with one of the codes above (or dies by an injected signal).
pid_t fork_workerd(const SweepSpec& spec, std::uint16_t port,
                   const net::WorkerdOptions& extra = {}) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  net::WorkerdOptions options = extra;
  options.connect = {"127.0.0.1", port};
  const net::WorkerdOutcome outcome = net::run_workerd(spec, options);
  if (outcome.ok) ::_exit(kWorkerOk);
  ::_exit(outcome.error.find("rejected") != std::string::npos
              ? kWorkerRejected
              : kWorkerFailed);
}

int wait_exit_code(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

CampaignRunOptions remote_options(net::Listener& listener) {
  CampaignRunOptions options;
  options.isolation = IsolationMode::kRemote;
  options.listener = &listener;
  return options;
}

// -- Bit-identity across the TCP fabric (ISSUE acceptance) --------------------

TEST(RemoteIsolation, GridIsBitIdenticalToThreadIsolation) {
  const SweepSpec spec = haar_spec();
  const CampaignResult threads =
      CampaignEngine(2).run(spec, CampaignRunOptions{});

  net::Listener listener;
  listener.open({"127.0.0.1", 0});
  const pid_t a = fork_workerd(spec, listener.bound_port());
  const pid_t b = fork_workerd(spec, listener.bound_port());
  const CampaignResult remote =
      CampaignEngine(2).run(spec, remote_options(listener));

  EXPECT_EQ(wait_exit_code(a), kWorkerOk);
  EXPECT_EQ(wait_exit_code(b), kWorkerOk);
  ASSERT_EQ(remote.jobs.size(), threads.jobs.size());
  EXPECT_TRUE(remote.all_ok());
  EXPECT_EQ(comparable_csv(remote), comparable_csv(threads));
  EXPECT_EQ(remote.worker_stats.remote_connects, 2u);
  EXPECT_EQ(remote.worker_stats.remote_rejects, 0u);
  EXPECT_EQ(remote.worker_stats.crashes, 0u);
}

// -- Crash taxonomy over TCP --------------------------------------------------

TEST(RemoteIsolation, WorkerKilledMidJobIsRedispatchedElsewhere) {
  const SweepSpec spec = haar_spec(5);
  const CampaignResult threads =
      CampaignEngine(2).run(spec, CampaignRunOptions{});

  net::Listener listener;
  listener.open({"127.0.0.1", 0});
  // Both workers carry the same injection: whichever is dispatched job 1
  // first dies by SIGSEGV (attempt 1 only), the lost connection must become
  // a crash + redispatch, and the survivor completes the campaign alone —
  // the redispatch arrives as attempt 2, which the injection spares.
  net::WorkerdOptions crashing;
  crashing.inject_crash = inject::WorkerCrashInjection::parse("1:segv:1");
  ASSERT_TRUE(crashing.inject_crash.has_value());
  const pid_t a = fork_workerd(spec, listener.bound_port(), crashing);
  const pid_t b = fork_workerd(spec, listener.bound_port(), crashing);

  CampaignRunOptions options = remote_options(listener);
  options.max_attempts = 2;
  const CampaignResult remote = CampaignEngine(2).run(spec, options);

  const int code_a = wait_exit_code(a);
  const int code_b = wait_exit_code(b);
  EXPECT_TRUE((code_a == 128 + SIGSEGV && code_b == kWorkerOk) ||
              (code_a == kWorkerOk && code_b == 128 + SIGSEGV))
      << "exit codes: " << code_a << ", " << code_b;
  EXPECT_TRUE(remote.all_ok());
  EXPECT_GE(remote.worker_stats.crashes, 1u);
  EXPECT_GE(remote.worker_stats.redispatches, 1u);
  EXPECT_GE(remote.worker_stats.remote_disconnects, 1u);
  // Attempts differ (the crash consumed one), wall time always does;
  // every measured field must still match thread isolation exactly.
  EXPECT_EQ(comparable_csv(remote, /*blank_attempts=*/true),
            comparable_csv(threads, /*blank_attempts=*/true));
}

// -- Registration handshake ---------------------------------------------------

TEST(RemoteIsolation, MismatchedCampaignIsRejectedAtRegistration) {
  const SweepSpec spec = haar_spec();
  // Same job count, different grid: only the campaign digest can tell the
  // impostor apart.
  SweepSpec drifted = haar_spec();
  drifted.axis = SweepAxis::error_rate(0.0, 0.05, 3);

  net::Listener listener;
  listener.open({"127.0.0.1", 0});
  const pid_t impostor = fork_workerd(drifted, listener.bound_port());
  const pid_t good = fork_workerd(spec, listener.bound_port());
  const CampaignResult remote =
      CampaignEngine(2).run(spec, remote_options(listener));

  EXPECT_EQ(wait_exit_code(impostor), kWorkerRejected);
  EXPECT_EQ(wait_exit_code(good), kWorkerOk);
  EXPECT_TRUE(remote.all_ok());
  EXPECT_EQ(remote.worker_stats.remote_rejects, 1u);
  EXPECT_EQ(remote.worker_stats.remote_connects, 1u);
}

// -- Mixed local + remote workers ---------------------------------------------

TEST(RemoteIsolation, LocalForkedWorkersShareTheSupervisorLoop) {
  const SweepSpec spec = haar_spec();
  const CampaignResult threads =
      CampaignEngine(2).run(spec, CampaignRunOptions{});

  // No remote worker ever connects; one local pipe worker joins the same
  // poll() loop and serves the whole campaign.
  net::Listener listener;
  listener.open({"127.0.0.1", 0});
  CampaignRunOptions options = remote_options(listener);
  options.remote_local_workers = 1;
  const CampaignResult remote = CampaignEngine(2).run(spec, options);

  EXPECT_TRUE(remote.all_ok());
  EXPECT_EQ(remote.worker_stats.remote_connects, 0u);
  EXPECT_GE(remote.worker_stats.spawns, 1u);
  EXPECT_EQ(comparable_csv(remote), comparable_csv(threads));
}

// -- Telemetry across the TCP fabric ------------------------------------------

TEST(RemoteIsolation, MetricsSnapshotsCrossTheWireExactly) {
  SweepSpec spec = haar_spec();
  spec.metrics = true;
  const CampaignResult threads =
      CampaignEngine(2).run(spec, CampaignRunOptions{});

  net::Listener listener;
  listener.open({"127.0.0.1", 0});
  const pid_t a = fork_workerd(spec, listener.bound_port());
  const CampaignResult remote =
      CampaignEngine(2).run(spec, remote_options(listener));
  EXPECT_EQ(wait_exit_code(a), kWorkerOk);

  // Every simulator-side instrument merges to the same value; the remote
  // campaign only adds its campaign.worker_* / campaign.remote_* counters.
  for (const auto& c : threads.metrics.counters) {
    const auto* other = remote.metrics.find_counter(c.name);
    ASSERT_NE(other, nullptr) << c.name;
    EXPECT_EQ(other->value, c.value) << c.name;
  }
  for (const auto& h : threads.metrics.histograms) {
    const auto* other = remote.metrics.find_histogram(h.name);
    ASSERT_NE(other, nullptr) << h.name;
    EXPECT_EQ(other->buckets, h.buckets) << h.name;
    EXPECT_EQ(other->sum, h.sum) << h.name;
  }
  const auto* connects = remote.metrics.find_counter("campaign.remote_connects");
  ASSERT_NE(connects, nullptr);
  EXPECT_EQ(connects->value, 1u);
  EXPECT_EQ(threads.metrics.find_counter("campaign.remote_connects"), nullptr);
}

// -- Journal shards -----------------------------------------------------------

TEST(RemoteIsolation, WorkerdShardMergesIntoAResumableJournal) {
  const SweepSpec spec = haar_spec();
  const std::string shard_path =
      ::testing::TempDir() + "tmemo_remote_shard.journal";
  std::remove(shard_path.c_str());

  net::Listener listener;
  listener.open({"127.0.0.1", 0});
  net::WorkerdOptions journaling;
  journaling.journal_path = shard_path;
  const pid_t a = fork_workerd(spec, listener.bound_port(), journaling);
  const CampaignResult remote =
      CampaignEngine(2).run(spec, remote_options(listener));
  EXPECT_EQ(wait_exit_code(a), kWorkerOk);
  ASSERT_TRUE(remote.all_ok());

  // The shard is an ordinary journal-v2 file for this campaign: resuming
  // from it restores every entry bit-identically instead of re-running.
  std::ifstream in(shard_path);
  ASSERT_TRUE(in.good()) << shard_path;
  CampaignJournal shard = read_campaign_journal(in);
  EXPECT_EQ(shard.fingerprint, campaign_fingerprint(spec));
  EXPECT_EQ(shard.entries.size(), remote.jobs.size());

  CampaignRunOptions resuming;
  resuming.resume = std::move(shard);
  const CampaignResult resumed = CampaignEngine(2).run(spec, resuming);
  EXPECT_EQ(resumed.resumed_jobs, remote.jobs.size());
  EXPECT_EQ(comparable_csv(resumed), comparable_csv(remote));
  std::remove(shard_path.c_str());
}

} // namespace
} // namespace tmemo
