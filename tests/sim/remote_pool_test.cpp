// Loopback end-to-end tests of the distributed campaign fabric
// (docs/DISTRIBUTED.md): the supervisor binds an OS-chosen port via
// CampaignRunOptions::listener and fork()ed children run net::run_workerd
// directly — they inherit the test's WorkloadFactory through the address
// space, exactly like pipe workers. Covers the ISSUE acceptance criteria:
// a remote campaign is bit-identical to thread isolation, a worker killed
// mid-job maps into the crash taxonomy and its job is redispatched, a
// mismatched registration is rejected by name, local forked workers share
// the supervisor loop, and metrics cross the TCP fabric exactly.
#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "inject/worker_crash.hpp"
#include "net/fault.hpp"
#include "net/frame.hpp"
#include "net/transport.hpp"
#include "net/workerd.hpp"
#include "sim/campaign.hpp"
#include "workloads/haar.hpp"
#include "workloads/workload.hpp"

namespace tmemo {
namespace {

SweepSpec haar_spec(int points = 3) {
  SweepSpec spec;
  spec.factory = [] {
    std::vector<std::unique_ptr<Workload>> v;
    v.push_back(std::make_unique<HaarWorkload>(128));
    return v;
  };
  spec.axis = SweepAxis::error_rate(0.0, 0.04, points);
  return spec;
}

/// CSV with the wall-clock column (and optionally the attempts column, for
/// crash-redispatch runs) blanked, for bit-identity comparisons.
std::string comparable_csv(const CampaignResult& res,
                           bool blank_attempts = false) {
  std::ostringstream raw;
  write_campaign_csv(res, raw);
  std::istringstream in(raw.str());
  std::ostringstream out;
  std::vector<std::string> fields;
  while (read_csv_record(in, fields)) {
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (fields.size() > 19 && i == 19) fields[i].clear(); // wall_ms
      if (blank_attempts && fields.size() > 18 && i == 18) {
        fields[i].clear(); // attempts
      }
      out << (i == 0 ? "" : ",") << fields[i];
    }
    out << '\n';
  }
  return out.str();
}

/// Child exit codes, so waitpid can distinguish the workerd outcomes.
enum : int {
  kWorkerOk = 0,         ///< campaign complete (supervisor's goodbye)
  kWorkerFailed = 1,     ///< setup/protocol failure
  kWorkerRejected = 3,   ///< registration rejected
  kWorkerDrained = 4,    ///< graceful SIGTERM drain
  kWorkerLost = 5,       ///< connection lost (reconnect budget exhausted)
  kWorkerReconnected = 6 ///< campaign complete after >= 1 reconnect
};

/// The forked child's drain flag (fork gives each child its own copy,
/// always starting at 0 — the parent never raises it).
volatile std::sig_atomic_t g_child_drain = 0;

void child_on_sigterm(int) { g_child_drain = 1; }

/// Forks a child that serves `spec` against the loopback supervisor and
/// exits with one of the codes above (or dies by an injected signal). The
/// child drains on SIGTERM exactly like the tmemo_workerd binary. The
/// child closes its inherited copy of the listening socket first: a real
/// workerd is a separate process that never holds the supervisor's
/// listener, and the leaked fd would keep the port bound after the
/// supervisor closes it (see the reconnect test).
pid_t fork_workerd(const SweepSpec& spec, net::Listener& listener,
                   const net::WorkerdOptions& extra = {}) {
  const std::uint16_t port = listener.bound_port();
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  listener.close_listener();
  struct sigaction sa = {};
  sa.sa_handler = child_on_sigterm;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  // Regression guard: run_workerd must survive writes to a vanished
  // supervisor on its own (ScopedIgnoreSigpipe); the harness leaves the
  // default (fatal) disposition in place to prove it.
  ::signal(SIGPIPE, SIG_DFL);
  net::WorkerdOptions options = extra;
  options.connect = {"127.0.0.1", port};
  options.drain_flag = &g_child_drain;
  const net::WorkerdOutcome outcome = net::run_workerd(spec, options);
  if (outcome.ok) {
    if (outcome.drained) ::_exit(kWorkerDrained);
    ::_exit(outcome.reconnects > 0 ? kWorkerReconnected : kWorkerOk);
  }
  if (outcome.error.find("rejected") != std::string::npos) {
    ::_exit(kWorkerRejected);
  }
  ::_exit(outcome.connection_lost ? kWorkerLost : kWorkerFailed);
}

/// Forks a protocol-level workerd that sends its registration and then
/// SIGSTOPs itself — a worker frozen in the registered-but-silent window,
/// exactly the half-open shape the keepalive deadline exists for. The
/// parent syncs on the stop (waitpid WUNTRACED), so the frozen worker's
/// hello is guaranteed to be first in the supervisor's accept queue; after
/// SIGCONT the child simply exits 0.
pid_t fork_sigstopped_worker(const SweepSpec& spec, net::Listener& listener) {
  const std::uint16_t port = listener.bound_port();
  const pid_t pid = ::fork();
  if (pid != 0) {
    int status = 0;
    while (::waitpid(pid, &status, WUNTRACED) < 0 && errno == EINTR) {
    }
    EXPECT_TRUE(WIFSTOPPED(status)) << "frozen worker never stopped";
    return pid;
  }
  listener.close_listener();
  std::string error;
  const int fd = net::connect_to({"127.0.0.1", port}, 5000, error);
  if (fd < 0) ::_exit(kWorkerFailed);
  net::HelloFrame hello;
  hello.campaign_digest = campaign_wire_digest(spec);
  hello.job_count =
      static_cast<std::uint64_t>(CampaignEngine::expand(spec).size());
  if (!net::write_frame(fd, net::encode_hello(hello))) {
    ::_exit(kWorkerFailed);
  }
  ::raise(SIGSTOP);
  ::_exit(kWorkerOk);
}

/// Clears O_NONBLOCK on a fd accepted by net::Listener, so the fake
/// supervisors below can use the blocking frame I/O helpers.
bool make_blocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK) == 0;
}

/// Polls the (nonblocking) listener until a connection arrives, returning
/// a blocking fd, or -1 after ~5s.
int await_connection(net::Listener& listener) {
  for (int i = 0; i < 5000; ++i) {
    const int fd = listener.accept_one();
    if (fd >= 0) return make_blocking(fd) ? fd : -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return -1;
}

int wait_exit_code(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

CampaignRunOptions remote_options(net::Listener& listener) {
  CampaignRunOptions options;
  options.isolation = IsolationMode::kRemote;
  options.listener = &listener;
  return options;
}

// -- Bit-identity across the TCP fabric (ISSUE acceptance) --------------------

TEST(RemoteIsolation, GridIsBitIdenticalToThreadIsolation) {
  const SweepSpec spec = haar_spec();
  const CampaignResult threads =
      CampaignEngine(2).run(spec, CampaignRunOptions{});

  net::Listener listener;
  listener.open({"127.0.0.1", 0});
  const pid_t a = fork_workerd(spec, listener);
  const pid_t b = fork_workerd(spec, listener);
  const CampaignResult remote =
      CampaignEngine(2).run(spec, remote_options(listener));

  EXPECT_EQ(wait_exit_code(a), kWorkerOk);
  EXPECT_EQ(wait_exit_code(b), kWorkerOk);
  ASSERT_EQ(remote.jobs.size(), threads.jobs.size());
  EXPECT_TRUE(remote.all_ok());
  EXPECT_EQ(comparable_csv(remote), comparable_csv(threads));
  EXPECT_EQ(remote.worker_stats.remote_connects, 2u);
  EXPECT_EQ(remote.worker_stats.remote_rejects, 0u);
  EXPECT_EQ(remote.worker_stats.crashes, 0u);
}

// -- Crash taxonomy over TCP --------------------------------------------------

TEST(RemoteIsolation, WorkerKilledMidJobIsRedispatchedElsewhere) {
  const SweepSpec spec = haar_spec(5);
  const CampaignResult threads =
      CampaignEngine(2).run(spec, CampaignRunOptions{});

  net::Listener listener;
  listener.open({"127.0.0.1", 0});
  // Both workers carry the same injection: whichever is dispatched job 1
  // first dies by SIGSEGV (attempt 1 only), the lost connection must become
  // a crash + redispatch, and the survivor completes the campaign alone —
  // the redispatch arrives as attempt 2, which the injection spares.
  net::WorkerdOptions crashing;
  crashing.inject_crash = inject::WorkerCrashInjection::parse("1:segv:1");
  ASSERT_TRUE(crashing.inject_crash.has_value());
  const pid_t a = fork_workerd(spec, listener, crashing);
  const pid_t b = fork_workerd(spec, listener, crashing);

  CampaignRunOptions options = remote_options(listener);
  options.max_attempts = 2;
  const CampaignResult remote = CampaignEngine(2).run(spec, options);

  const int code_a = wait_exit_code(a);
  const int code_b = wait_exit_code(b);
  EXPECT_TRUE((code_a == 128 + SIGSEGV && code_b == kWorkerOk) ||
              (code_a == kWorkerOk && code_b == 128 + SIGSEGV))
      << "exit codes: " << code_a << ", " << code_b;
  EXPECT_TRUE(remote.all_ok());
  EXPECT_GE(remote.worker_stats.crashes, 1u);
  EXPECT_GE(remote.worker_stats.redispatches, 1u);
  EXPECT_GE(remote.worker_stats.remote_disconnects, 1u);
  // Attempts differ (the crash consumed one), wall time always does;
  // every measured field must still match thread isolation exactly.
  EXPECT_EQ(comparable_csv(remote, /*blank_attempts=*/true),
            comparable_csv(threads, /*blank_attempts=*/true));
}

// -- Registration handshake ---------------------------------------------------

TEST(RemoteIsolation, MismatchedCampaignIsRejectedAtRegistration) {
  const SweepSpec spec = haar_spec();
  // Same job count, different grid: only the campaign digest can tell the
  // impostor apart.
  SweepSpec drifted = haar_spec();
  drifted.axis = SweepAxis::error_rate(0.0, 0.05, 3);

  net::Listener listener;
  listener.open({"127.0.0.1", 0});
  const pid_t impostor = fork_workerd(drifted, listener);
  const pid_t good = fork_workerd(spec, listener);
  const CampaignResult remote =
      CampaignEngine(2).run(spec, remote_options(listener));

  EXPECT_EQ(wait_exit_code(impostor), kWorkerRejected);
  EXPECT_EQ(wait_exit_code(good), kWorkerOk);
  EXPECT_TRUE(remote.all_ok());
  EXPECT_EQ(remote.worker_stats.remote_rejects, 1u);
  EXPECT_EQ(remote.worker_stats.remote_connects, 1u);
}

// -- Mixed local + remote workers ---------------------------------------------

TEST(RemoteIsolation, LocalForkedWorkersShareTheSupervisorLoop) {
  const SweepSpec spec = haar_spec();
  const CampaignResult threads =
      CampaignEngine(2).run(spec, CampaignRunOptions{});

  // No remote worker ever connects; one local pipe worker joins the same
  // poll() loop and serves the whole campaign.
  net::Listener listener;
  listener.open({"127.0.0.1", 0});
  CampaignRunOptions options = remote_options(listener);
  options.remote_local_workers = 1;
  const CampaignResult remote = CampaignEngine(2).run(spec, options);

  EXPECT_TRUE(remote.all_ok());
  EXPECT_EQ(remote.worker_stats.remote_connects, 0u);
  EXPECT_GE(remote.worker_stats.spawns, 1u);
  EXPECT_EQ(comparable_csv(remote), comparable_csv(threads));
}

// -- Telemetry across the TCP fabric ------------------------------------------

TEST(RemoteIsolation, MetricsSnapshotsCrossTheWireExactly) {
  SweepSpec spec = haar_spec();
  spec.metrics = true;
  const CampaignResult threads =
      CampaignEngine(2).run(spec, CampaignRunOptions{});

  net::Listener listener;
  listener.open({"127.0.0.1", 0});
  const pid_t a = fork_workerd(spec, listener);
  const CampaignResult remote =
      CampaignEngine(2).run(spec, remote_options(listener));
  EXPECT_EQ(wait_exit_code(a), kWorkerOk);

  // Every simulator-side instrument merges to the same value; the remote
  // campaign only adds its campaign.worker_* / campaign.remote_* counters.
  for (const auto& c : threads.metrics.counters) {
    const auto* other = remote.metrics.find_counter(c.name);
    ASSERT_NE(other, nullptr) << c.name;
    EXPECT_EQ(other->value, c.value) << c.name;
  }
  for (const auto& h : threads.metrics.histograms) {
    const auto* other = remote.metrics.find_histogram(h.name);
    ASSERT_NE(other, nullptr) << h.name;
    EXPECT_EQ(other->buckets, h.buckets) << h.name;
    EXPECT_EQ(other->sum, h.sum) << h.name;
  }
  const auto* connects = remote.metrics.find_counter("campaign.remote_connects");
  ASSERT_NE(connects, nullptr);
  EXPECT_EQ(connects->value, 1u);
  EXPECT_EQ(threads.metrics.find_counter("campaign.remote_connects"), nullptr);
}

// -- Journal shards -----------------------------------------------------------

TEST(RemoteIsolation, WorkerdShardMergesIntoAResumableJournal) {
  const SweepSpec spec = haar_spec();
  const std::string shard_path =
      ::testing::TempDir() + "tmemo_remote_shard.journal";
  std::remove(shard_path.c_str());

  net::Listener listener;
  listener.open({"127.0.0.1", 0});
  net::WorkerdOptions journaling;
  journaling.journal_path = shard_path;
  const pid_t a = fork_workerd(spec, listener, journaling);
  const CampaignResult remote =
      CampaignEngine(2).run(spec, remote_options(listener));
  EXPECT_EQ(wait_exit_code(a), kWorkerOk);
  ASSERT_TRUE(remote.all_ok());

  // The shard is an ordinary journal-v2 file for this campaign: resuming
  // from it restores every entry bit-identically instead of re-running.
  std::ifstream in(shard_path);
  ASSERT_TRUE(in.good()) << shard_path;
  CampaignJournal shard = read_campaign_journal(in);
  EXPECT_EQ(shard.fingerprint, campaign_fingerprint(spec));
  EXPECT_EQ(shard.entries.size(), remote.jobs.size());

  CampaignRunOptions resuming;
  resuming.resume = std::move(shard);
  const CampaignResult resumed = CampaignEngine(2).run(spec, resuming);
  EXPECT_EQ(resumed.resumed_jobs, remote.jobs.size());
  EXPECT_EQ(comparable_csv(resumed), comparable_csv(remote));
  std::remove(shard_path.c_str());
}

// -- Liveness keepalive (half-open connections) -------------------------------

CampaignRunOptions keepalive_options(net::Listener& listener) {
  CampaignRunOptions options = remote_options(listener);
  options.keepalive_interval_ms = 100;
  options.keepalive_timeout_ms = 200;
  options.max_attempts = 2;
  return options;
}

TEST(RemoteKeepalive, SigstoppedWorkerIsReclaimedByTheLivenessDeadline) {
  const SweepSpec spec = haar_spec(3);
  const CampaignResult threads =
      CampaignEngine(2).run(spec, CampaignRunOptions{});

  net::Listener listener;
  listener.open({"127.0.0.1", 0});
  // The frozen worker registers first, so the supervisor dispatches it a
  // job that will never be acknowledged; the healthy workerd must inherit
  // that job through the no-heartbeat deadline and finish the campaign.
  const pid_t frozen = fork_sigstopped_worker(spec, listener);
  const pid_t healthy = fork_workerd(spec, listener);
  const CampaignResult remote =
      CampaignEngine(2).run(spec, keepalive_options(listener));

  EXPECT_EQ(wait_exit_code(healthy), kWorkerOk);
  ::kill(frozen, SIGCONT);
  EXPECT_EQ(wait_exit_code(frozen), kWorkerOk);

  EXPECT_TRUE(remote.all_ok());
  EXPECT_GE(remote.worker_stats.remote_keepalive_drops, 1u);
  EXPECT_GE(remote.worker_stats.remote_disconnects, 1u);
  EXPECT_GE(remote.worker_stats.redispatches, 1u);
  // While the frozen worker's deadline ran down the healthy one sat idle
  // long enough to be pinged — and answering kept it in the pool.
  EXPECT_GE(remote.worker_stats.remote_keepalive_pings, 1u);
  // The reclaim burned one attempt; every measured field still matches.
  EXPECT_EQ(comparable_csv(remote, /*blank_attempts=*/true),
            comparable_csv(threads, /*blank_attempts=*/true));
}

TEST(RemoteKeepalive, BlackHoledWorkerdIsReclaimedByTheLivenessDeadline) {
  const SweepSpec spec = haar_spec(3);
  const CampaignResult threads =
      CampaignEngine(2).run(spec, CampaignRunOptions{});

  net::Listener listener;
  listener.open({"127.0.0.1", 0});
  // stall=1 black-holes every post-handshake frame this workerd writes:
  // it registers cleanly, then its heartbeat and results vanish — the
  // half-open connection shape, produced by the injector instead of a
  // firewall. The supervisor must reclaim the job without its help.
  net::WorkerdOptions black_holed;
  black_holed.inject_net = net::NetFaultSpec::parse("seed=1,stall=1");
  ASSERT_TRUE(black_holed.inject_net.has_value());
  const pid_t stalled =
      fork_workerd(spec, listener, black_holed);
  const pid_t healthy = fork_workerd(spec, listener);
  const CampaignResult remote =
      CampaignEngine(2).run(spec, keepalive_options(listener));

  // The supervisor drops the stalled peer; with no reconnect budget the
  // workerd reports the lost connection instead of a finished campaign.
  EXPECT_EQ(wait_exit_code(stalled), kWorkerLost);
  EXPECT_EQ(wait_exit_code(healthy), kWorkerOk);
  EXPECT_TRUE(remote.all_ok());
  EXPECT_GE(remote.worker_stats.remote_keepalive_drops, 1u);
  EXPECT_EQ(comparable_csv(remote, /*blank_attempts=*/true),
            comparable_csv(threads, /*blank_attempts=*/true));
}

// -- Graceful drain (SIGTERM) -------------------------------------------------

TEST(RemoteDrain, SigtermedWorkerdFinishesItsJobAndSaysGoodbye) {
  const SweepSpec spec = haar_spec(25);
  const CampaignResult threads =
      CampaignEngine(2).run(spec, CampaignRunOptions{});

  const std::string shard_path =
      ::testing::TempDir() + "tmemo_drain_shard.journal";
  std::remove(shard_path.c_str());

  net::Listener listener;
  listener.open({"127.0.0.1", 0});
  net::WorkerdOptions journaling;
  journaling.journal_path = shard_path;
  const pid_t draining =
      fork_workerd(spec, listener, journaling);
  const pid_t survivor = fork_workerd(spec, listener);

  CampaignResult remote;
  std::thread supervisor([&] {
    remote = CampaignEngine(2).run(spec, remote_options(listener));
  });

  // SIGTERM the journaling worker as soon as its shard proves it is
  // mid-campaign; the drain must finish the in-flight job, flush the
  // shard, and hand the rest of the queue to the survivor.
  bool signaled = false;
  for (int i = 0; i < 5000 && !signaled; ++i) {
    std::ifstream in(shard_path);
    if (in.good()) {
      try {
        if (!read_campaign_journal(in).entries.empty()) {
          ::kill(draining, SIGTERM);
          signaled = true;
        }
      } catch (const std::exception&) {
        // Shard header still in flight; keep polling.
      }
    }
    if (!signaled) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  supervisor.join();
  ASSERT_TRUE(signaled) << "shard never saw a first entry";

  EXPECT_EQ(wait_exit_code(draining), kWorkerDrained);
  EXPECT_EQ(wait_exit_code(survivor), kWorkerOk);
  EXPECT_TRUE(remote.all_ok());
  EXPECT_EQ(remote.worker_stats.remote_drains, 1u);
  // A drain is voluntary: nothing is counted as a crash and a dispatch
  // that raced the goodbye is requeued at the SAME attempt, so even the
  // attempts column matches thread isolation exactly.
  EXPECT_EQ(remote.worker_stats.crashes, 0u);
  EXPECT_EQ(comparable_csv(remote), comparable_csv(threads));

  // The flushed shard is a valid journal prefix of the campaign.
  std::ifstream in(shard_path);
  ASSERT_TRUE(in.good());
  const CampaignJournal shard = read_campaign_journal(in);
  EXPECT_EQ(shard.fingerprint, campaign_fingerprint(spec));
  EXPECT_GE(shard.entries.size(), 1u);
  std::remove(shard_path.c_str());
}

// -- Supervisor loss: explicit goodbye vs raw EOF -----------------------------

TEST(RemoteShutdown, EofAfterRegistrationIsConnectionLostNotCompletion) {
  const SweepSpec spec = haar_spec();
  net::Listener listener;
  listener.open({"127.0.0.1", 0});
  const pid_t worker = fork_workerd(spec, listener);

  // Fake supervisor: accept the registration, then vanish without the
  // goodbye frame. Before the explicit goodbye existed this looked like a
  // completed campaign; it must now read as a lost connection.
  const int fd = await_connection(listener);
  ASSERT_GE(fd, 0);
  std::string payload;
  ASSERT_TRUE(net::read_frame(fd, payload, net::kMaxHandshakeFrameBytes));
  net::HelloFrame hello;
  ASSERT_TRUE(net::decode_hello(payload, hello));
  net::HelloAckFrame ack;
  ack.accepted = 1;
  ack.max_attempts = 1;
  ASSERT_TRUE(net::write_frame(fd, net::encode_hello_ack(ack)));
  ::close(fd);

  EXPECT_EQ(wait_exit_code(worker), kWorkerLost);
}

TEST(RemoteShutdown, WorkerdSurvivesWritingToAVanishedSupervisor) {
  // SIGPIPE regression (ScopedIgnoreSigpipe in run_workerd): the fake
  // supervisor dispatches a job and disappears, so the workerd's
  // heartbeat/result writes land on a dead socket. The child runs with the
  // default (fatal) SIGPIPE disposition; it must exit through the
  // connection-lost path, not die by signal.
  const SweepSpec spec = haar_spec();
  net::Listener listener;
  listener.open({"127.0.0.1", 0});
  const pid_t worker = fork_workerd(spec, listener);

  const int fd = await_connection(listener);
  ASSERT_GE(fd, 0);
  std::string payload;
  ASSERT_TRUE(net::read_frame(fd, payload, net::kMaxHandshakeFrameBytes));
  net::HelloAckFrame ack;
  ack.accepted = 1;
  ack.max_attempts = 1;
  ASSERT_TRUE(net::write_frame(fd, net::encode_hello_ack(ack)));
  ASSERT_TRUE(net::write_frame(fd, net::encode_dispatch(0, 1)));
  ::close(fd);

  const int code = wait_exit_code(worker);
  EXPECT_EQ(code, kWorkerLost);
  EXPECT_NE(code, 128 + SIGPIPE);
}

// -- Reconnect across a supervisor restart ------------------------------------

TEST(RemoteReconnect, WorkerdRedialsAndReRegistersAfterSupervisorLoss) {
  const SweepSpec spec = haar_spec();
  const CampaignResult threads =
      CampaignEngine(2).run(spec, CampaignRunOptions{});

  // Incarnation one: a supervisor that registers the worker and dies.
  net::Listener first;
  first.open({"127.0.0.1", 0});
  const std::uint16_t port = first.bound_port();

  net::WorkerdOptions reconnecting;
  reconnecting.reconnect_attempts = 1000;
  reconnecting.reconnect_backoff_ms = 10;
  const pid_t worker = fork_workerd(spec, first, reconnecting);

  const int fd = await_connection(first);
  ASSERT_GE(fd, 0);
  std::string payload;
  ASSERT_TRUE(net::read_frame(fd, payload, net::kMaxHandshakeFrameBytes));
  net::HelloAckFrame ack;
  ack.accepted = 1;
  ack.max_attempts = 1;
  ASSERT_TRUE(net::write_frame(fd, net::encode_hello_ack(ack)));
  ::close(fd);
  first.close_listener();

  // Incarnation two: the real supervisor on the SAME port. The worker's
  // jittered backoff redials until the new listener is up, re-registers
  // through the digest handshake, and serves the whole campaign.
  net::Listener second;
  second.open({"127.0.0.1", port});
  const CampaignResult remote =
      CampaignEngine(2).run(spec, remote_options(second));

  EXPECT_EQ(wait_exit_code(worker), kWorkerReconnected);
  EXPECT_TRUE(remote.all_ok());
  EXPECT_EQ(remote.worker_stats.remote_connects, 1u);
  EXPECT_EQ(comparable_csv(remote), comparable_csv(threads));
}

// -- Chaos soak: seeded fault schedules on both ends --------------------------

TEST(RemoteChaos, CampaignSurvivesSeededFaultsOnBothEndsBitIdentically) {
  const SweepSpec spec = haar_spec(15);
  const CampaignResult threads =
      CampaignEngine(2).run(spec, CampaignRunOptions{});

  net::Listener listener;
  listener.open({"127.0.0.1", 0});
  // Both directions misbehave on independent deterministic schedules:
  // dropped and corrupted frames surface as disconnects/protocol errors,
  // stalls exercise the keepalive reclaim, and --reconnect keeps the
  // workers coming back until the campaign lands. A small redial budget
  // keeps a worker whose goodbye was injected away from redialing the
  // (closed) listener for long.
  net::WorkerdOptions chaotic;
  chaotic.inject_net =
      net::NetFaultSpec::parse("seed=7,drop=0.03,stall=0.02,corrupt=0.03");
  ASSERT_TRUE(chaotic.inject_net.has_value());
  chaotic.reconnect_attempts = 3;
  chaotic.reconnect_backoff_ms = 5;
  const pid_t a = fork_workerd(spec, listener, chaotic);
  const pid_t b = fork_workerd(spec, listener, chaotic);

  CampaignRunOptions options = keepalive_options(listener);
  options.max_attempts = 10;
  options.inject_net =
      net::NetFaultSpec::parse("seed=7,drop=0.03,stall=0.02,corrupt=0.03");
  ASSERT_TRUE(options.inject_net.has_value());
  const CampaignResult remote = CampaignEngine(2).run(spec, options);
  // Close the listener before collecting the workers: a worker whose
  // goodbye was injected away redials, and an open listen backlog would
  // accept the TCP connection and strand it waiting for a registration
  // ack. (The workerd ack deadline would also unstick it, but refused
  // connections end the test in milliseconds instead of seconds.)
  listener.close_listener();

  // Whether a worker saw the final goodbye or had it injected away is the
  // fault schedule's business; both are orderly exits.
  for (const int code : {wait_exit_code(a), wait_exit_code(b)}) {
    EXPECT_TRUE(code == kWorkerOk || code == kWorkerReconnected ||
                code == kWorkerLost)
        << "exit code " << code;
  }
  EXPECT_TRUE(remote.all_ok());
  EXPECT_EQ(comparable_csv(remote, /*blank_attempts=*/true),
            comparable_csv(threads, /*blank_attempts=*/true));
}

} // namespace
} // namespace tmemo
