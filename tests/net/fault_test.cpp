// Deterministic network fault injection (net/fault.hpp, --inject-net):
// spec-grammar parsing, schedule determinism across replays and channel
// salts, the single-bit corruption and truncation invariants, and the
// FrameWriteShim's per-action behaviour over a real pipe.
#include "net/fault.hpp"

#include <gtest/gtest.h>

#include <bitset>
#include <string>
#include <unistd.h>
#include <vector>

#include "net/frame.hpp"

namespace tmemo::net {
namespace {

// -- Spec grammar -------------------------------------------------------------

TEST(NetFaultSpecParse, AcceptsTheDocumentedGrammar) {
  const auto spec =
      NetFaultSpec::parse("seed=7,drop=0.02,stall=0.01,corrupt=0.05,"
                          "truncate=0.03,delay=0.2:20");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->seed, 7u);
  EXPECT_DOUBLE_EQ(spec->drop_prob, 0.02);
  EXPECT_DOUBLE_EQ(spec->stall_prob, 0.01);
  EXPECT_DOUBLE_EQ(spec->corrupt_prob, 0.05);
  EXPECT_DOUBLE_EQ(spec->truncate_prob, 0.03);
  EXPECT_DOUBLE_EQ(spec->delay_prob, 0.2);
  EXPECT_EQ(spec->delay_ms, 20);
  EXPECT_TRUE(spec->enabled());
}

TEST(NetFaultSpecParse, AcceptsProbabilityEndpoints) {
  const auto spec = NetFaultSpec::parse("seed=1,drop=1,stall=0");
  ASSERT_TRUE(spec.has_value());
  EXPECT_DOUBLE_EQ(spec->drop_prob, 1.0);
  EXPECT_DOUBLE_EQ(spec->stall_prob, 0.0);
}

TEST(NetFaultSpecParse, SeedAloneInjectsNothing) {
  const auto spec = NetFaultSpec::parse("seed=42");
  ASSERT_TRUE(spec.has_value());
  EXPECT_FALSE(spec->enabled());
}

TEST(NetFaultSpecParse, RejectsMalformedInput) {
  EXPECT_FALSE(NetFaultSpec::parse("").has_value());
  EXPECT_FALSE(NetFaultSpec::parse("bogus=1").has_value());
  EXPECT_FALSE(NetFaultSpec::parse("drop=1.5").has_value());
  EXPECT_FALSE(NetFaultSpec::parse("drop=-0.1").has_value());
  EXPECT_FALSE(NetFaultSpec::parse("drop=").has_value());
  EXPECT_FALSE(NetFaultSpec::parse("drop").has_value());
  EXPECT_FALSE(NetFaultSpec::parse("seed=notanumber").has_value());
  // delay requires its latency suffix.
  EXPECT_FALSE(NetFaultSpec::parse("delay=0.5").has_value());
  EXPECT_FALSE(NetFaultSpec::parse("delay=0.5:").has_value());
  EXPECT_FALSE(NetFaultSpec::parse("delay=0.5:-3").has_value());
  EXPECT_FALSE(NetFaultSpec::parse("drop=0.1,,stall=0.1").has_value());
}

// -- Schedule determinism -----------------------------------------------------

std::vector<NetFaultAction> draw_schedule(const NetFaultSpec& spec,
                                          std::uint64_t salt, int n) {
  NetFaultInjector inj(spec, salt);
  std::vector<NetFaultAction> actions;
  actions.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) actions.push_back(inj.next_action());
  return actions;
}

TEST(NetFaultInjector, SameSeedAndSaltReplaysTheExactSchedule) {
  const auto spec =
      NetFaultSpec::parse("seed=99,drop=0.1,stall=0.1,corrupt=0.2");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(draw_schedule(*spec, 3, 256), draw_schedule(*spec, 3, 256));
}

TEST(NetFaultInjector, DistinctChannelSaltsYieldIndependentSchedules) {
  const auto spec = NetFaultSpec::parse("seed=99,drop=0.5");
  ASSERT_TRUE(spec.has_value());
  // The supervisor salts by worker slot id and workerd by connection
  // ordinal in a disjoint range; a shared campaign seed must still give
  // every channel its own stream.
  EXPECT_NE(draw_schedule(*spec, 0, 256), draw_schedule(*spec, 1, 256));
  EXPECT_NE(draw_schedule(*spec, 0, 256),
            draw_schedule(*spec, (1ull << 32), 256));
}

TEST(NetFaultInjector, DisabledSpecAlwaysPasses) {
  NetFaultInjector inj(NetFaultSpec{}, 0);
  EXPECT_FALSE(inj.enabled());
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(inj.next_action(), NetFaultAction::kPass);
  }
}

TEST(NetFaultInjector, CertainProbabilityAlwaysFires) {
  const auto spec = NetFaultSpec::parse("seed=5,drop=1");
  ASSERT_TRUE(spec.has_value());
  NetFaultInjector inj(*spec, 0);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(inj.next_action(), NetFaultAction::kDrop);
  }
}

TEST(NetFaultInjector, ProbabilitiesPartitionTheUnitInterval) {
  // With drop+stall+corrupt+delay summing to 1 every draw lands in one of
  // the four buckets and roughly in proportion — a sanity check that the
  // cumulative thresholds neither overlap nor leave gaps for kPass.
  const auto spec =
      NetFaultSpec::parse("seed=11,drop=0.25,stall=0.25,corrupt=0.25,"
                          "delay=0.25:1");
  ASSERT_TRUE(spec.has_value());
  NetFaultInjector inj(*spec, 7);
  int counts[6] = {};
  for (int i = 0; i < 4096; ++i) {
    ++counts[static_cast<int>(inj.next_action())];
  }
  EXPECT_EQ(counts[static_cast<int>(NetFaultAction::kPass)], 0);
  EXPECT_EQ(counts[static_cast<int>(NetFaultAction::kTruncate)], 0);
  for (const NetFaultAction a :
       {NetFaultAction::kDrop, NetFaultAction::kStall,
        NetFaultAction::kCorrupt, NetFaultAction::kDelay}) {
    EXPECT_GT(counts[static_cast<int>(a)], 4096 / 8)
        << net_fault_action_name(a);
  }
}

TEST(NetFaultInjector, CorruptFlipsExactlyOneBit) {
  const auto spec = NetFaultSpec::parse("seed=3,corrupt=1");
  ASSERT_TRUE(spec.has_value());
  NetFaultInjector inj(*spec, 0);
  const std::string original(64, '\x5a');
  for (int trial = 0; trial < 32; ++trial) {
    std::string mutated = original;
    inj.corrupt(mutated);
    ASSERT_EQ(mutated.size(), original.size());
    int flipped_bits = 0;
    for (std::size_t i = 0; i < original.size(); ++i) {
      flipped_bits += static_cast<int>(
          std::bitset<8>(static_cast<unsigned char>(original[i]) ^
                         static_cast<unsigned char>(mutated[i]))
              .count());
    }
    EXPECT_EQ(flipped_bits, 1) << "trial " << trial;
  }
}

TEST(NetFaultInjector, TruncatePointAlwaysLeavesAShortFrame) {
  const auto spec = NetFaultSpec::parse("seed=3,truncate=1");
  ASSERT_TRUE(spec.has_value());
  NetFaultInjector inj(*spec, 0);
  for (const std::size_t total : {std::size_t{2}, std::size_t{24},
                                  std::size_t{4096}}) {
    for (int trial = 0; trial < 64; ++trial) {
      const std::size_t keep = inj.truncate_point(total);
      EXPECT_GE(keep, 1u);
      EXPECT_LT(keep, total);
    }
  }
}

// -- FrameWriteShim over a real pipe ------------------------------------------

struct PipePair {
  int read_fd = -1;
  int write_fd = -1;
  PipePair() {
    int fds[2] = {-1, -1};
    if (::pipe(fds) == 0) {
      read_fd = fds[0];
      write_fd = fds[1];
    }
  }
  ~PipePair() {
    if (read_fd >= 0) ::close(read_fd);
    if (write_fd >= 0) ::close(write_fd);
  }
};

NetFaultSpec parse_or_die(std::string_view text) {
  const auto spec = NetFaultSpec::parse(text);
  EXPECT_TRUE(spec.has_value()) << text;
  return spec.value_or(NetFaultSpec{});
}

TEST(FrameWriteShim, DisarmedShimIsAPlainFrameWrite) {
  PipePair p;
  ASSERT_GE(p.read_fd, 0);
  FrameWriteShim shim;
  ASSERT_TRUE(shim.write(p.write_fd, "clean payload"));
  std::string payload;
  ASSERT_TRUE(read_frame(p.read_fd, payload));
  EXPECT_EQ(payload, "clean payload");
  EXPECT_FALSE(shim.stalled());
}

TEST(FrameWriteShim, DropReportsTheConnectionLostWithoutWriting) {
  PipePair p;
  ASSERT_GE(p.read_fd, 0);
  FrameWriteShim shim;
  shim.arm(parse_or_die("seed=1,drop=1"), 0);
  EXPECT_FALSE(shim.write(p.write_fd, "doomed"));
  // Nothing reached the pipe: closing the writer gives the reader clean EOF.
  ::close(p.write_fd);
  p.write_fd = -1;
  std::string payload;
  EXPECT_FALSE(read_frame(p.read_fd, payload));
}

TEST(FrameWriteShim, StallSwallowsThisAndEveryLaterFrame) {
  PipePair p;
  ASSERT_GE(p.read_fd, 0);
  FrameWriteShim shim;
  shim.arm(parse_or_die("seed=1,stall=1"), 0);
  // A half-open peer acks writes forever; the shim mimics that by
  // reporting success while the frames vanish.
  EXPECT_TRUE(shim.write(p.write_fd, "first"));
  EXPECT_TRUE(shim.stalled());
  EXPECT_TRUE(shim.write(p.write_fd, "second"));
  ::close(p.write_fd);
  p.write_fd = -1;
  std::string payload;
  EXPECT_FALSE(read_frame(p.read_fd, payload));
}

TEST(FrameWriteShim, CorruptKeepsFramingButMutatesThePayload) {
  PipePair p;
  ASSERT_GE(p.read_fd, 0);
  FrameWriteShim shim;
  shim.arm(parse_or_die("seed=1,corrupt=1"), 0);
  const std::string original(32, 'A');
  ASSERT_TRUE(shim.write(p.write_fd, original));
  std::string payload;
  ASSERT_TRUE(read_frame(p.read_fd, payload));
  EXPECT_EQ(payload.size(), original.size());
  EXPECT_NE(payload, original);
}

TEST(FrameWriteShim, TruncateLeavesThePeerMidFrame) {
  PipePair p;
  ASSERT_GE(p.read_fd, 0);
  FrameWriteShim shim;
  shim.arm(parse_or_die("seed=1,truncate=1"), 0);
  EXPECT_FALSE(shim.write(p.write_fd, std::string(128, 'B')));
  ::close(p.write_fd);
  p.write_fd = -1;
  // The peer sees a well-formed length prefix (or part of one) and then
  // EOF before the declared payload completes: read_frame must fail.
  std::string payload;
  EXPECT_FALSE(read_frame(p.read_fd, payload));
}

TEST(FrameWriteShim, DelayStillDeliversTheFrameIntact) {
  PipePair p;
  ASSERT_GE(p.read_fd, 0);
  FrameWriteShim shim;
  shim.arm(parse_or_die("seed=1,delay=1:1"), 0);
  ASSERT_TRUE(shim.write(p.write_fd, "late but intact"));
  std::string payload;
  ASSERT_TRUE(read_frame(p.read_fd, payload));
  EXPECT_EQ(payload, "late but intact");
}

TEST(FrameWriteShim, RearmingResetsTheStallLatch) {
  PipePair p;
  ASSERT_GE(p.read_fd, 0);
  FrameWriteShim shim;
  shim.arm(parse_or_die("seed=1,stall=1"), 0);
  EXPECT_TRUE(shim.write(p.write_fd, "swallowed"));
  ASSERT_TRUE(shim.stalled());
  // workerd re-arms the shim with a fresh salt on every reconnect; the
  // stall latch belongs to the dead connection, not the new one.
  shim.arm(NetFaultSpec{}, 1);
  EXPECT_FALSE(shim.stalled());
  ASSERT_TRUE(shim.write(p.write_fd, "delivered"));
  std::string payload;
  ASSERT_TRUE(read_frame(p.read_fd, payload));
  EXPECT_EQ(payload, "delivered");
}

} // namespace
} // namespace tmemo::net
