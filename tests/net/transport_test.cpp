// Transport tests for the distributed campaign fabric (net/transport.hpp,
// docs/DISTRIBUTED.md): HOST:PORT parsing with its ephemeral-port gate, the
// nonblocking Listener lifecycle on an OS-chosen loopback port, a real
// connect/accept/frame round-trip, and connect-failure diagnostics.
#include "net/transport.hpp"

#include <gtest/gtest.h>

#include <poll.h>
#include <string>
#include <unistd.h>

#include "net/frame.hpp"

namespace tmemo::net {
namespace {

// -- parse_host_port ----------------------------------------------------------

TEST(ParseHostPort, AcceptsIpv4HostnameAndBracketedIpv6) {
  const auto v4 = parse_host_port("127.0.0.1:7777");
  ASSERT_TRUE(v4.has_value());
  EXPECT_EQ(v4->host, "127.0.0.1");
  EXPECT_EQ(v4->port, 7777);

  const auto name = parse_host_port("localhost:1");
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(name->host, "localhost");
  EXPECT_EQ(name->port, 1);

  const auto v6 = parse_host_port("[::1]:65535");
  ASSERT_TRUE(v6.has_value());
  EXPECT_EQ(v6->host, "::1");
  EXPECT_EQ(v6->port, 65535);
}

TEST(ParseHostPort, GatesPortZeroBehindAllowEphemeral) {
  // An operator-facing CLI wants an explicit port; tests and benches bind
  // port 0 for an OS-chosen one.
  EXPECT_FALSE(parse_host_port("127.0.0.1:0").has_value());
  const auto eph = parse_host_port("127.0.0.1:0", /*allow_ephemeral=*/true);
  ASSERT_TRUE(eph.has_value());
  EXPECT_EQ(eph->port, 0);
}

TEST(ParseHostPort, RejectsMalformedEndpoints) {
  for (const char* bad :
       {"", "127.0.0.1", ":7777", "127.0.0.1:", "127.0.0.1:x",
        "127.0.0.1:12x", "127.0.0.1:-1", "127.0.0.1:65536",
        "127.0.0.1:999999999999", "[::1]", "[::1:7777", "[]:7777",
        "host:1:2:3"}) {
    EXPECT_FALSE(parse_host_port(bad).has_value()) << "input: " << bad;
  }
}

// -- Listener + connect_to ----------------------------------------------------

TEST(Listener, BindsAnEphemeralPortAndReportsIt) {
  Listener listener;
  listener.open({"127.0.0.1", 0});
  EXPECT_TRUE(listener.is_open());
  EXPECT_GE(listener.fd(), 0);
  EXPECT_NE(listener.bound_port(), 0);
  listener.close_listener();
  EXPECT_FALSE(listener.is_open());
}

TEST(Listener, AcceptOneReturnsMinusOneWhenNothingIsPending) {
  Listener listener;
  listener.open({"127.0.0.1", 0});
  EXPECT_EQ(listener.accept_one(), -1);
}

/// Waits for POLLIN on a nonblocking fd; the accepted socket needs it
/// before the peer's bytes are readable.
bool wait_readable(int fd, int timeout_ms = 5000) {
  pollfd p{};
  p.fd = fd;
  p.events = POLLIN;
  return ::poll(&p, 1, timeout_ms) == 1;
}

TEST(Listener, ConnectAcceptAndFrameRoundTrip) {
  Listener listener;
  listener.open({"127.0.0.1", 0});

  std::string error;
  const int client =
      connect_to({"127.0.0.1", listener.bound_port()}, 5000, error);
  ASSERT_GE(client, 0) << error;

  ASSERT_TRUE(wait_readable(listener.fd()));
  const int accepted = listener.accept_one();
  ASSERT_GE(accepted, 0);

  // client (blocking) -> accepted (nonblocking): reassemble via FrameBuffer
  // exactly like the supervisor's poll() loop does.
  ASSERT_TRUE(write_frame(client, "over the wire"));
  FrameBuffer frames;
  std::string payload;
  FrameBuffer::Next verdict = FrameBuffer::Next::kNeedMore;
  while (verdict == FrameBuffer::Next::kNeedMore) {
    ASSERT_TRUE(wait_readable(accepted));
    char buf[256];
    const ssize_t n = ::read(accepted, buf, sizeof buf);
    ASSERT_GT(n, 0);
    frames.append(buf, static_cast<std::size_t>(n));
    verdict = frames.next(payload);
  }
  ASSERT_EQ(verdict, FrameBuffer::Next::kFrame);
  EXPECT_EQ(payload, "over the wire");

  // accepted -> client: the supervisor writes frames back on the same fd.
  ASSERT_TRUE(write_frame(accepted, "and back"));
  ASSERT_TRUE(read_frame(client, payload));
  EXPECT_EQ(payload, "and back");

  ::close(client);
  ::close(accepted);
}

TEST(Listener, AcceptsMultipleConnections) {
  Listener listener;
  listener.open({"127.0.0.1", 0});
  std::string error;
  const int a = connect_to({"127.0.0.1", listener.bound_port()}, 5000, error);
  ASSERT_GE(a, 0) << error;
  const int b = connect_to({"127.0.0.1", listener.bound_port()}, 5000, error);
  ASSERT_GE(b, 0) << error;

  int accepted = 0;
  while (accepted < 2 && wait_readable(listener.fd())) {
    const int fd = listener.accept_one();
    if (fd >= 0) {
      ++accepted;
      ::close(fd);
    }
  }
  EXPECT_EQ(accepted, 2);
  ::close(a);
  ::close(b);
}

TEST(ConnectTo, DeadPortFailsWithDiagnostic) {
  // Bind a port, then close the listener: nothing listens there, so the
  // connect is refused and the error names the endpoint.
  Listener listener;
  listener.open({"127.0.0.1", 0});
  const std::uint16_t port = listener.bound_port();
  listener.close_listener();

  std::string error;
  const int fd = connect_to({"127.0.0.1", port}, 2000, error);
  EXPECT_EQ(fd, -1);
  EXPECT_FALSE(error.empty());
  EXPECT_NE(error.find("127.0.0.1"), std::string::npos) << error;
}

TEST(ConnectTo, UnresolvableHostFailsWithDiagnostic) {
  std::string error;
  const int fd =
      connect_to({"no-such-host.tmemo.invalid", 7777}, 2000, error);
  EXPECT_EQ(fd, -1);
  EXPECT_FALSE(error.empty());
}

TEST(Listener, OpenOnAnInUsePortThrows) {
  Listener first;
  first.open({"127.0.0.1", 0});
  Listener second;
  EXPECT_THROW(second.open({"127.0.0.1", first.bound_port()}),
               std::runtime_error);
}

} // namespace
} // namespace tmemo::net
