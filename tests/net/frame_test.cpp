// Wire-codec tests for the campaign worker fabric (net/frame.hpp,
// docs/DISTRIBUTED.md): handshake frame round-trips and their hostile-input
// rejections, event-header validation, chunked FrameBuffer reassembly with
// the pre-allocation length ceiling, blocking frame I/O over a real pipe,
// and the exact MetricsSnapshot wire round-trip the bit-identity guarantee
// rests on.
#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <unistd.h>

#include "telemetry/metrics.hpp"

namespace tmemo::net {
namespace {

// -- Handshake frames ---------------------------------------------------------

TEST(HelloCodec, RoundTripsEveryField) {
  HelloFrame hello;
  hello.capabilities = kCapMetrics | kCapTimeline;
  hello.campaign_digest = 0x1122334455667788ull;
  hello.job_count = 42;
  const std::string payload = encode_hello(hello);
  EXPECT_EQ(payload.size(), sizeof(HelloFrame));

  HelloFrame back;
  ASSERT_TRUE(decode_hello(payload, back));
  EXPECT_EQ(back.magic, kHelloMagic);
  EXPECT_EQ(back.protocol, kProtocolVersion);
  EXPECT_EQ(back.capabilities, kCapMetrics | kCapTimeline);
  EXPECT_EQ(back.campaign_digest, 0x1122334455667788ull);
  EXPECT_EQ(back.job_count, 42u);
}

TEST(HelloCodec, RejectsWrongSizeAndWrongMagic) {
  HelloFrame hello;
  std::string payload = encode_hello(hello);
  HelloFrame back;
  EXPECT_FALSE(decode_hello(payload.substr(0, payload.size() - 1), back));
  EXPECT_FALSE(decode_hello(payload + "x", back));
  EXPECT_FALSE(decode_hello(std::string(), back));

  // A byte-swapped magic is what a foreign-endianness peer would present.
  payload[0] = 'X';
  EXPECT_FALSE(decode_hello(payload, back));
}

TEST(HelloAckCodec, RoundTripsVerdictAndSessionParameters) {
  HelloAckFrame ack;
  ack.accepted = 1;
  ack.reason = static_cast<std::uint32_t>(HelloReject::kAccepted);
  ack.max_attempts = 7;
  ack.capabilities = kCapTimeline;
  const std::string payload = encode_hello_ack(ack);
  EXPECT_EQ(payload.size(), sizeof(HelloAckFrame));

  HelloAckFrame back;
  ASSERT_TRUE(decode_hello_ack(payload, back));
  EXPECT_EQ(back.accepted, 1);
  EXPECT_EQ(back.max_attempts, 7);
  EXPECT_EQ(back.capabilities, kCapTimeline);
}

TEST(HelloAckCodec, RejectsWrongSizeAndWrongMagic) {
  HelloAckFrame ack;
  std::string payload = encode_hello_ack(ack);
  HelloAckFrame back;
  EXPECT_FALSE(decode_hello_ack(payload.substr(1), back));
  payload[0] = '\0';
  EXPECT_FALSE(decode_hello_ack(payload, back));
}

TEST(HelloReject, EveryReasonHasAName) {
  EXPECT_EQ(hello_reject_name(HelloReject::kAccepted), "accepted");
  for (const HelloReject r :
       {HelloReject::kBadMagic, HelloReject::kProtocolMismatch,
        HelloReject::kCampaignMismatch, HelloReject::kJobCountMismatch}) {
    EXPECT_FALSE(hello_reject_name(r).empty());
    EXPECT_NE(hello_reject_name(r), "accepted");
  }
}

// -- Event frames -------------------------------------------------------------

std::string event_payload(std::uint8_t type, std::uint64_t job) {
  EventFrameHeader hdr;
  hdr.type = type;
  hdr.job = job;
  hdr.check = header_check(hdr);
  std::string payload(sizeof hdr, '\0');
  std::memcpy(payload.data(), &hdr, sizeof hdr);
  return payload;
}

TEST(EventCodec, AcceptsKnownTypesAndCarriesJobIndex) {
  EventFrameHeader out;
  ASSERT_TRUE(decode_event_header(event_payload(kJobStarted, 5), out));
  EXPECT_EQ(out.type, kJobStarted);
  EXPECT_EQ(out.job, 5u);
  ASSERT_TRUE(decode_event_header(event_payload(kJobDone, 11), out));
  EXPECT_EQ(out.type, kJobDone);
}

TEST(EventCodec, RejectsUnknownTypeAndShortPayload) {
  EventFrameHeader out;
  EXPECT_FALSE(decode_event_header(event_payload(0, 5), out));
  EXPECT_FALSE(decode_event_header(event_payload(kEventTypeMax + 1, 5), out));
  EXPECT_FALSE(decode_event_header(event_payload(0xff, 5), out));
  EXPECT_FALSE(decode_event_header(
      event_payload(kJobDone, 5).substr(0, sizeof(EventFrameHeader) - 1),
      out));
  EXPECT_FALSE(decode_event_header(std::string(), out));
}

TEST(EventCodec, AcceptsTrailingResultPayload) {
  // A kJobDone frame carries the serialized result after the fixed header;
  // the header decode must not reject the longer payload.
  EventFrameHeader out;
  ASSERT_TRUE(
      decode_event_header(event_payload(kJobDone, 3) + "row,data,1\n", out));
  EXPECT_EQ(out.job, 3u);
}

TEST(EventCodec, LivenessAndGoodbyeFramesRoundTrip) {
  // Protocol v2 control frames: the u64 field carries the ping sequence
  // number (echoed verbatim in the pong) and the worker's served-job count
  // in its drain goodbye.
  for (const std::uint8_t type : {kPing, kPong, kGoodbye}) {
    const std::string payload = encode_event(type, 0xfeedfacecafe1234ull);
    EXPECT_EQ(payload.size(), sizeof(EventFrameHeader));
    EXPECT_EQ(peek_frame_type(payload), type);
    EventFrameHeader out;
    ASSERT_TRUE(decode_event_header(payload, out)) << unsigned{type};
    EXPECT_EQ(out.type, type);
    EXPECT_EQ(out.job, 0xfeedfacecafe1234ull);
  }
}

TEST(EventCodec, RejectsAnySingleFlippedBit) {
  // Every frame header is self-checking (protocol v2): a one-bit flip
  // anywhere — the type byte, the u64 argument or the check itself — must
  // fail the decode instead of reading as a different, valid frame.
  const std::string payload = encode_event(kPing, 41);
  EventFrameHeader out;
  ASSERT_TRUE(decode_event_header(payload, out));
  for (std::size_t byte = 0; byte < payload.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = payload;
      flipped[byte] = static_cast<char>(
          static_cast<unsigned char>(flipped[byte]) ^ (1u << bit));
      EXPECT_FALSE(decode_event_header(flipped, out))
          << "byte " << byte << " bit " << bit;
    }
  }
}

// -- Dispatch frames (protocol v2) --------------------------------------------

TEST(DispatchCodec, RoundTripsJobAndStartAttempt) {
  const std::string payload = encode_dispatch(17, 3);
  EXPECT_EQ(payload.size(), sizeof(JobDispatchFrame));
  EXPECT_EQ(peek_frame_type(payload), kJobDispatch);

  JobDispatchFrame back;
  ASSERT_TRUE(decode_dispatch(payload, back));
  EXPECT_EQ(back.job, 17u);
  EXPECT_EQ(back.start_attempt, 3);
}

TEST(DispatchCodec, RejectsWrongSizeAndWrongTypeByte) {
  const std::string payload = encode_dispatch(0, 1);

  JobDispatchFrame back;
  EXPECT_FALSE(decode_dispatch(payload.substr(0, payload.size() - 1), back));
  EXPECT_FALSE(decode_dispatch(payload + "x", back));
  EXPECT_FALSE(decode_dispatch(std::string(), back));

  // A control frame must never decode as a dispatch even if padded out to
  // the dispatch size — the type byte is the discriminator.
  std::string imposter = payload;
  imposter[0] = static_cast<char>(kPing);
  EXPECT_FALSE(decode_dispatch(imposter, back));
}

TEST(DispatchCodec, RejectsAnySingleFlippedBit) {
  // A flipped bit in the job index or start attempt would silently run the
  // wrong job or resume the wrong attempt; the header self-check catches
  // every single-bit corruption.
  const std::string payload = encode_dispatch(129, 2);
  JobDispatchFrame back;
  ASSERT_TRUE(decode_dispatch(payload, back));
  for (std::size_t byte = 0; byte < payload.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = payload;
      flipped[byte] = static_cast<char>(
          static_cast<unsigned char>(flipped[byte]) ^ (1u << bit));
      EXPECT_FALSE(decode_dispatch(flipped, back))
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(DispatchCodec, PeekFrameTypeHandlesEmptyAndControlPayloads) {
  EXPECT_EQ(peek_frame_type(std::string()), 0);
  EXPECT_EQ(peek_frame_type(encode_event(kGoodbye, 0)), kGoodbye);
  EXPECT_EQ(peek_frame_type(std::string(1, '\xff')), 0xffu);
}

// -- Result frames (protocol v2 body digest) ----------------------------------

TEST(ResultFrame, RoundTripsHeaderDigestAndBody) {
  const std::string body = "row,data,1\n";
  const std::string payload = encode_result_frame(7, body);
  ASSERT_EQ(payload.size(), kResultBodyOffset + body.size());
  EXPECT_EQ(peek_frame_type(payload), kJobDone);

  EventFrameHeader hdr;
  ASSERT_TRUE(decode_event_header(payload, hdr));
  EXPECT_EQ(hdr.type, kJobDone);
  EXPECT_EQ(hdr.job, 7u);
  EXPECT_TRUE(verify_result_body(payload));
  EXPECT_EQ(payload.substr(kResultBodyOffset), body);
}

TEST(ResultFrame, DigestCatchesTheParseableCorruptionTheParserCannot) {
  // The scenario that motivated the digest: a chaos injector flipped one
  // bit of a serialized energy column ('1' ^ 0x04 == '5'), the row still
  // parsed, and the corrupted value reached the campaign CSV. The digest
  // must reject it even though the CSV parser would not.
  const std::string row = "11,haar,0.5,17154,passed";
  const std::string payload = encode_result_frame(11, row);
  ASSERT_TRUE(verify_result_body(payload));

  std::string corrupted = payload;
  const std::size_t victim = corrupted.find("17154") + 1;
  corrupted[victim] = static_cast<char>(corrupted[victim] ^ 0x04); // -> '3'
  EXPECT_FALSE(verify_result_body(corrupted));

  // Bit flips in the digest itself (not the body) must fail the same way.
  std::string bad_digest = payload;
  bad_digest[sizeof(EventFrameHeader)] =
      static_cast<char>(bad_digest[sizeof(EventFrameHeader)] ^ 0x01);
  EXPECT_FALSE(verify_result_body(bad_digest));
}

TEST(ResultFrame, RejectsPayloadsTooShortForADigest) {
  EXPECT_FALSE(verify_result_body(std::string()));
  EXPECT_FALSE(verify_result_body(encode_event(kJobDone, 3)));
  EXPECT_FALSE(verify_result_body(
      encode_result_frame(0, "x").substr(0, kResultBodyOffset - 1)));
  // An empty body is legitimate framing (the digest covers zero bytes).
  EXPECT_TRUE(verify_result_body(encode_result_frame(0, std::string())));
}

// -- FrameBuffer reassembly ---------------------------------------------------

std::string with_length_prefix(const std::string& payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::string framed(sizeof len, '\0');
  std::memcpy(framed.data(), &len, sizeof len);
  return framed + payload;
}

TEST(FrameBuffer, ReassemblesFramesFedOneByteAtATime) {
  const std::string wire =
      with_length_prefix("alpha") + with_length_prefix("") +
      with_length_prefix(std::string(1000, 'z'));
  FrameBuffer buf;
  std::vector<std::string> frames;
  std::string payload;
  for (const char c : wire) {
    buf.append(&c, 1);
    while (buf.next(payload) == FrameBuffer::Next::kFrame) {
      frames.push_back(payload);
    }
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0], "alpha");
  EXPECT_EQ(frames[1], "");
  EXPECT_EQ(frames[2], std::string(1000, 'z'));
  EXPECT_TRUE(buf.empty());
}

TEST(FrameBuffer, ExtractsMultipleFramesFromOneAppend) {
  const std::string wire =
      with_length_prefix("one") + with_length_prefix("two");
  FrameBuffer buf;
  buf.append(wire.data(), wire.size());
  std::string payload;
  ASSERT_EQ(buf.next(payload), FrameBuffer::Next::kFrame);
  EXPECT_EQ(payload, "one");
  ASSERT_EQ(buf.next(payload), FrameBuffer::Next::kFrame);
  EXPECT_EQ(payload, "two");
  EXPECT_EQ(buf.next(payload), FrameBuffer::Next::kNeedMore);
}

TEST(FrameBuffer, ReportsNeedMoreForPartialHeaderAndPartialPayload) {
  FrameBuffer buf;
  std::string payload;
  const std::string wire = with_length_prefix("payload");
  buf.append(wire.data(), 2); // half a length prefix
  EXPECT_EQ(buf.next(payload), FrameBuffer::Next::kNeedMore);
  buf.append(wire.data() + 2, 4); // header + 2 payload bytes
  EXPECT_EQ(buf.next(payload), FrameBuffer::Next::kNeedMore);
  buf.append(wire.data() + 6, wire.size() - 6);
  ASSERT_EQ(buf.next(payload), FrameBuffer::Next::kFrame);
  EXPECT_EQ(payload, "payload");
}

TEST(FrameBuffer, RejectsOversizedLengthBeforeThePayloadArrives) {
  // Four hostile bytes declaring a huge frame must be rejected immediately
  // — the ceiling is checked before any payload is buffered or allocated.
  FrameBuffer buf(/*max_frame_bytes=*/64);
  const std::uint32_t huge = 65;
  std::string prefix(sizeof huge, '\0');
  std::memcpy(prefix.data(), &huge, sizeof huge);
  buf.append(prefix.data(), prefix.size());
  std::string payload;
  EXPECT_EQ(buf.next(payload), FrameBuffer::Next::kOversize);
}

TEST(FrameBuffer, TakeBufferedSurrendersPipelinedBytes) {
  // The supervisor promotes a peer after its handshake frame and moves any
  // pipelined bytes into the worker slot; nothing may be lost in the move.
  FrameBuffer buf;
  const std::string wire =
      with_length_prefix("hello") + with_length_prefix("pipelined");
  buf.append(wire.data(), wire.size());
  std::string payload;
  ASSERT_EQ(buf.next(payload), FrameBuffer::Next::kFrame);
  EXPECT_EQ(payload, "hello");
  const std::string rest = buf.take_buffered();
  EXPECT_EQ(rest, with_length_prefix("pipelined"));
  EXPECT_TRUE(buf.empty());
}

// -- Blocking frame I/O over a pipe -------------------------------------------

struct PipePair {
  int read_fd = -1;
  int write_fd = -1;
  PipePair() {
    int fds[2] = {-1, -1};
    if (::pipe(fds) == 0) {
      read_fd = fds[0];
      write_fd = fds[1];
    }
  }
  ~PipePair() {
    if (read_fd >= 0) ::close(read_fd);
    if (write_fd >= 0) ::close(write_fd);
  }
};

TEST(FrameIo, WriteFrameReadFrameRoundTrip) {
  PipePair p;
  ASSERT_GE(p.read_fd, 0);
  ASSERT_TRUE(write_frame(p.write_fd, "payload bytes"));
  std::string payload;
  ASSERT_TRUE(read_frame(p.read_fd, payload));
  EXPECT_EQ(payload, "payload bytes");
}

TEST(FrameIo, ReadFrameHonorsThePerSessionCeiling) {
  // A pre-registration peer gets kMaxHandshakeFrameBytes, far below the
  // global kMaxFrameBytes: a legitimate frame that is merely bigger than
  // the session allows must be refused without being read.
  PipePair p;
  ASSERT_GE(p.read_fd, 0);
  ASSERT_TRUE(write_frame(p.write_fd, std::string(100, 'x')));
  std::string payload;
  EXPECT_FALSE(read_frame(p.read_fd, payload, /*max_bytes=*/64));
}

TEST(FrameIo, ReadFrameReportsEofAsFailure) {
  PipePair p;
  ASSERT_GE(p.read_fd, 0);
  ::close(p.write_fd);
  p.write_fd = -1;
  std::string payload;
  EXPECT_FALSE(read_frame(p.read_fd, payload));
}

// -- MetricsSnapshot wire format ----------------------------------------------

TEST(MetricsWire, SnapshotRoundTripsExactly) {
  telemetry::MetricsSnapshot s;
  s.counters.push_back({"memo.hits", 123456789ull});
  s.counters.push_back({"memo.misses", 0ull});
  s.gauges.push_back({"config.lut_depth", 4ull});
  telemetry::MetricsSnapshot::HistogramValue h;
  h.name = "timing.slack";
  h.spec = telemetry::HistogramSpec::log2();
  h.buckets.assign(h.spec.bucket_count(), 0);
  h.buckets[3] = 7;
  h.count = 7;
  h.sum = 35;
  h.min = 4;
  h.max = 6;
  s.histograms.push_back(h);

  std::ostringstream os;
  pack_metrics_snapshot(os, s);
  std::istringstream is(os.str());
  telemetry::MetricsSnapshot back;
  ASSERT_TRUE(unpack_metrics_snapshot(is, back));

  ASSERT_EQ(back.counters.size(), 2u);
  EXPECT_EQ(back.counters[0].name, "memo.hits");
  EXPECT_EQ(back.counters[0].value, 123456789ull);
  ASSERT_EQ(back.gauges.size(), 1u);
  EXPECT_EQ(back.gauges[0].value, 4ull);
  ASSERT_EQ(back.histograms.size(), 1u);
  EXPECT_EQ(back.histograms[0].spec, h.spec);
  EXPECT_EQ(back.histograms[0].buckets, h.buckets);
  EXPECT_EQ(back.histograms[0].sum, 35ull);
  EXPECT_EQ(back.histograms[0].min, 4ull);
  EXPECT_EQ(back.histograms[0].max, 6ull);
}

TEST(MetricsWire, UnpackRejectsTruncatedInput) {
  telemetry::MetricsSnapshot s;
  s.counters.push_back({"a", 1ull});
  std::ostringstream os;
  pack_metrics_snapshot(os, s);
  const std::string wire = os.str();
  for (const std::size_t cut : {std::size_t{1}, wire.size() / 2}) {
    std::istringstream is(wire.substr(0, wire.size() - cut));
    telemetry::MetricsSnapshot back;
    EXPECT_FALSE(unpack_metrics_snapshot(is, back)) << "cut=" << cut;
  }
}

TEST(MetricsWire, UnpackRejectsHostileEntryCount) {
  // A corrupt count must fail fast instead of driving a giant allocation.
  std::string wire(sizeof(std::uint64_t), '\0');
  const std::uint64_t hostile = ~0ull;
  std::memcpy(wire.data(), &hostile, sizeof hostile);
  std::istringstream is(wire);
  telemetry::MetricsSnapshot back;
  EXPECT_FALSE(unpack_metrics_snapshot(is, back));
}

} // namespace
} // namespace tmemo::net
