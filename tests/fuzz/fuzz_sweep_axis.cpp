// libFuzzer harness for the two CLI spec parsers that consume raw user
// text: SweepAxis::parse ("axis:start:stop:count") and
// WorkerCrashInjection::parse ("job:signal[:count]"). Both must return
// nullopt on malformed input — never throw, crash, or read out of bounds.
// See docs/RESILIENCE.md.
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "inject/worker_crash.hpp"
#include "sim/campaign.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  const std::string_view view(text);
  const auto axis = tmemo::SweepAxis::parse(view);
  (void)axis;
  const auto crash = tmemo::inject::WorkerCrashInjection::parse(view);
  (void)crash;
  return 0;
}
