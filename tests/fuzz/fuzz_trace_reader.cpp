// libFuzzer harness for the TMTR binary trace reader (tests/fuzz/): any
// byte stream must either parse into events or throw std::exception —
// never crash, hang, or over-allocate (the reader caps the event count it
// trusts before resizing). See docs/RESILIENCE.md.
#include <cstddef>
#include <cstdint>
#include <exception>
#include <sstream>
#include <string>

#include "trace/trace.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size));
  try {
    const auto events = tmemo::load_trace(in, "<fuzz>");
    (void)events;
  } catch (const std::exception&) {
    // Rejecting malformed input loudly is the contract.
  }
  return 0;
}
