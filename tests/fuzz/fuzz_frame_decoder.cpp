// libFuzzer harness for the campaign-fabric frame decoders (net/frame.hpp,
// docs/DISTRIBUTED.md): a remote peer is fully untrusted until it passes
// the registration handshake, so every decoder that touches its bytes must
// reject garbage without crashing, hanging, or allocating proportionally to
// a hostile length field. The input is fed through the supervisor's actual
// ingestion path: FrameBuffer reassembly (with the pre-registration frame
// ceiling) and then every payload decoder.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "net/frame.hpp"
#include "telemetry/metrics.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);

  // Chunked reassembly exactly like the supervisor's poll() loop, under the
  // handshake ceiling so a hostile length prefix is rejected pre-allocation.
  tmemo::net::FrameBuffer frames(tmemo::net::kMaxHandshakeFrameBytes);
  frames.append(bytes.data(), bytes.size());
  std::string payload;
  while (frames.next(payload) == tmemo::net::FrameBuffer::Next::kFrame) {
    tmemo::net::HelloFrame hello;
    (void)tmemo::net::decode_hello(payload, hello);
    tmemo::net::HelloAckFrame ack;
    (void)tmemo::net::decode_hello_ack(payload, ack);
    tmemo::net::EventFrameHeader event;
    (void)tmemo::net::decode_event_header(payload, event);
    tmemo::net::JobDispatchFrame dispatch;
    (void)tmemo::net::decode_dispatch(payload, dispatch);
    (void)tmemo::net::verify_result_body(payload);
  }

  // The raw bytes as a single payload (no framing), hitting the size and
  // magic validation paths directly.
  tmemo::net::HelloFrame hello;
  (void)tmemo::net::decode_hello(bytes, hello);
  tmemo::net::HelloAckFrame ack;
  (void)tmemo::net::decode_hello_ack(bytes, ack);
  tmemo::net::EventFrameHeader event;
  (void)tmemo::net::decode_event_header(bytes, event);
  tmemo::net::JobDispatchFrame dispatch;
  (void)tmemo::net::decode_dispatch(bytes, dispatch);
  (void)tmemo::net::verify_result_body(bytes);

  // The metrics unpacker guards its entry counts before resizing; any
  // byte stream must come back false or as a bounded snapshot.
  std::istringstream in(bytes);
  tmemo::telemetry::MetricsSnapshot snapshot;
  (void)tmemo::net::unpack_metrics_snapshot(in, snapshot);
  return 0;
}
