#include "img/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tmemo {
namespace {

/// Mean absolute horizontal gradient — the local "busyness" measure that
/// drives both the memoization hit rate and the PSNR sensitivity.
double mean_abs_gradient(const Image& img) {
  double acc = 0.0;
  long count = 0;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 1; x < img.width(); ++x) {
      acc += std::fabs(img.at(x, y) - img.at(x - 1, y));
      ++count;
    }
  }
  return acc / static_cast<double>(count);
}

TEST(Synthetic, RequestedDimensions) {
  const Image f = make_face_image(96, 128);
  EXPECT_EQ(f.width(), 96);
  EXPECT_EQ(f.height(), 128);
  const Image b = make_book_image(128, 96);
  EXPECT_EQ(b.width(), 128);
  EXPECT_EQ(b.height(), 96);
}

TEST(Synthetic, PixelsInByteRange) {
  for (const Image& img :
       {make_face_image(128, 128), make_book_image(128, 128)}) {
    for (float p : img.pixels()) {
      EXPECT_GE(p, 0.0f);
      EXPECT_LE(p, 255.0f);
    }
  }
}

TEST(Synthetic, DeterministicForSeed) {
  const Image a = make_face_image(64, 64, 5);
  const Image b = make_face_image(64, 64, 5);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.pixels()[i], b.pixels()[i]);
  }
  const Image c = make_face_image(64, 64, 6);
  int differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    differing += a.pixels()[i] != c.pixels()[i] ? 1 : 0;
  }
  EXPECT_GT(differing, 1000);
}

TEST(Synthetic, BookIsBusierThanFace) {
  // The central property behind the Figs. 2-5 contrast: the text page has
  // far higher local gradients than the portrait.
  const Image face = make_face_image(256, 256);
  const Image book = make_book_image(256, 256);
  EXPECT_GT(mean_abs_gradient(book), 3.0 * mean_abs_gradient(face));
}

TEST(Synthetic, FaceGradientsAreSizeInvariant) {
  // The generator scales contrast with size so per-pixel gradient
  // statistics stay comparable between a small render and the 1536^2
  // paper-scale render.
  const double g_small = mean_abs_gradient(make_face_image(192, 192));
  const double g_large = mean_abs_gradient(make_face_image(768, 768));
  EXPECT_LT(std::fabs(g_small - g_large) / g_large, 0.5);
}

TEST(Synthetic, BookHasInkAndPaperModes) {
  const Image book = make_book_image(256, 256);
  int dark = 0, bright = 0;
  for (float p : book.pixels()) {
    dark += p < 80.0f ? 1 : 0;
    bright += p > 180.0f ? 1 : 0;
  }
  // Text pages are mostly paper with a substantial ink fraction.
  EXPECT_GT(bright, dark);
  EXPECT_GT(dark, static_cast<int>(book.size() / 20));
  EXPECT_GT(bright, static_cast<int>(book.size() / 2));
}

TEST(Synthetic, FaceIsMidToned) {
  const Image face = make_face_image(256, 256);
  double acc = 0.0;
  for (float p : face.pixels()) acc += p;
  const double mean = acc / static_cast<double>(face.size());
  EXPECT_GT(mean, 20.0);
  EXPECT_LT(mean, 160.0);
}

} // namespace
} // namespace tmemo
