#include "img/image.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <cmath>
#include <limits>

namespace tmemo {
namespace {

TEST(Image, ConstructionAndFill) {
  Image img(4, 3, 7.0f);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.size(), 12u);
  EXPECT_EQ(img.at(3, 2), 7.0f);
}

TEST(Image, InvalidDimensionsRejected) {
  EXPECT_THROW(Image(0, 4), std::invalid_argument);
  EXPECT_THROW(Image(4, -1), std::invalid_argument);
}

TEST(Image, RowMajorLayout) {
  Image img(3, 2);
  img.at(1, 0) = 1.0f;
  img.at(0, 1) = 2.0f;
  EXPECT_EQ(img.pixels()[1], 1.0f);
  EXPECT_EQ(img.pixels()[3], 2.0f);
}

TEST(Image, ClampedBorderAccess) {
  Image img(2, 2);
  img.at(0, 0) = 1.0f;
  img.at(1, 1) = 4.0f;
  EXPECT_EQ(img.at_clamped(-5, -5), 1.0f);
  EXPECT_EQ(img.at_clamped(10, 10), 4.0f);
  EXPECT_EQ(img.at_clamped(0, 0), 1.0f);
}

TEST(Image, ClampToByteRange) {
  Image img(2, 1);
  img.at(0, 0) = -3.0f;
  img.at(1, 0) = 300.0f;
  img.clamp_to_byte_range();
  EXPECT_EQ(img.at(0, 0), 0.0f);
  EXPECT_EQ(img.at(1, 0), 255.0f);
}

TEST(Fidelity, MseAndPsnr) {
  Image a(2, 2, 100.0f);
  Image b(2, 2, 100.0f);
  EXPECT_EQ(mse(a, b), 0.0);
  EXPECT_TRUE(std::isinf(psnr(a, b)));
  b.at(0, 0) = 110.0f; // one pixel off by 10 -> MSE 25
  EXPECT_NEAR(mse(a, b), 25.0, 1e-9);
  EXPECT_NEAR(psnr(a, b), 10.0 * std::log10(255.0 * 255.0 / 25.0), 1e-9);
}

TEST(Fidelity, PsnrThirtyDbReference) {
  // PSNR 30 dB corresponds to RMSE ~8.06 at a 255 peak.
  Image a(10, 10, 128.0f);
  Image b(10, 10, 128.0f + 8.0624f);
  EXPECT_NEAR(psnr(a, b), 30.0, 0.01);
}

TEST(Fidelity, MismatchedSizesRejected) {
  Image a(2, 2);
  Image b(3, 2);
  EXPECT_THROW((void)mse(a, b), std::invalid_argument);
}

TEST(Pgm, WriteReadRoundTrip) {
  Image img(17, 9);
  for (int y = 0; y < 9; ++y) {
    for (int x = 0; x < 17; ++x) {
      img.at(x, y) = static_cast<float>((x * 13 + y * 7) % 256);
    }
  }
  const std::string path =
      (std::filesystem::temp_directory_path() / "tm_roundtrip.pgm").string();
  write_pgm(img, path);
  const Image back = read_pgm(path);
  ASSERT_EQ(back.width(), 17);
  ASSERT_EQ(back.height(), 9);
  for (int y = 0; y < 9; ++y) {
    for (int x = 0; x < 17; ++x) {
      EXPECT_NEAR(back.at(x, y), img.at(x, y), 0.51f);
    }
  }
  std::remove(path.c_str());
}

TEST(Pgm, ReadRejectsMissingFile) {
  EXPECT_THROW((void)read_pgm("/nonexistent/definitely_missing.pgm"),
               std::invalid_argument);
}

TEST(Pgm, WriteClampsOutOfRangePixels) {
  Image img(2, 1);
  img.at(0, 0) = -50.0f;
  img.at(1, 0) = 900.0f;
  const std::string path =
      (std::filesystem::temp_directory_path() / "tm_clamp.pgm").string();
  write_pgm(img, path);
  const Image back = read_pgm(path);
  EXPECT_EQ(back.at(0, 0), 0.0f);
  EXPECT_EQ(back.at(1, 0), 255.0f);
  std::remove(path.c_str());
}

} // namespace
} // namespace tmemo
