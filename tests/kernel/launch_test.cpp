#include "kernel/launch.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tmemo {
namespace {

TEST(Launch, RejectsEmptyRangeAndNullKernel) {
  GpuDevice device(DeviceConfig::single_cu());
  EXPECT_THROW(launch(device, 0, [](WavefrontCtx&) {}),
               std::invalid_argument);
  EXPECT_THROW(launch(device, 64, WavefrontKernel{}), std::invalid_argument);
}

TEST(Launch, OneWavefrontPer64WorkItems) {
  GpuDevice device(DeviceConfig::single_cu());
  int wavefronts = 0;
  launch(device, 640, [&](WavefrontCtx&) { ++wavefronts; });
  EXPECT_EQ(wavefronts, 10);
}

TEST(Launch, PartialTrailingWavefrontMasked) {
  GpuDevice device(DeviceConfig::single_cu());
  std::vector<std::uint64_t> masks;
  launch(device, 100, [&](WavefrontCtx& wf) {
    masks.push_back(wf.active_mask());
  });
  ASSERT_EQ(masks.size(), 2u);
  EXPECT_EQ(masks[0], ~0ull);
  EXPECT_EQ(masks[1], (1ull << 36) - 1); // 100 - 64 = 36 active lanes
}

TEST(Launch, GlobalIdsAreContiguous) {
  GpuDevice device(DeviceConfig::single_cu());
  std::vector<char> seen(300, 0);
  launch(device, 300, [&](WavefrontCtx& wf) {
    wf.for_active([&](int, WorkItemId gid) {
      ASSERT_LT(gid, 300u);
      seen[static_cast<std::size_t>(gid)]++;
    });
  });
  for (char c : seen) EXPECT_EQ(c, 1);
}

TEST(Launch, WavefrontsRoundRobinOverComputeUnits) {
  DeviceConfig cfg;
  cfg.compute_units = 4;
  GpuDevice device(cfg);
  // Track which compute unit executed which wavefront by checking the
  // instruction counts on each CU after running 8 wavefronts of 1 op.
  launch(device, 8 * 64, [&](WavefrontCtx& wf) {
    (void)wf.add(wf.splat(1.0f), wf.splat(2.0f));
  });
  for (int cu = 0; cu < 4; ++cu) {
    std::uint64_t instr = 0;
    device.compute_unit(cu).for_each_fpu(
        [&](const ResilientFpu& f) { instr += f.stats().instructions; });
    EXPECT_EQ(instr, 2u * 64u); // 2 wavefronts x 64 lanes each
  }
}

TEST(Launch, RecordsFlowIntoDeviceEnergyAccumulator) {
  GpuDevice device(DeviceConfig::single_cu());
  launch(device, 64, [](WavefrontCtx& wf) {
    (void)wf.mul(wf.splat(3.0f), wf.splat(4.0f));
  });
  EXPECT_GT(device.energy().baseline_pj, 0.0);
  EXPECT_GT(device.energy().memoized_pj, 0.0);
}

TEST(Launch, SmallRangeSingleLane) {
  GpuDevice device(DeviceConfig::single_cu());
  int lanes = 0;
  launch(device, 1, [&](WavefrontCtx& wf) {
    wf.for_active([&](int, WorkItemId) { ++lanes; });
  });
  EXPECT_EQ(lanes, 1);
}

TEST(Launch, DeterministicAcrossRuns) {
  auto run = [] {
    GpuDevice device(DeviceConfig::single_cu());
    device.set_error_model(std::make_shared<FixedRateErrorModel>(0.1));
    std::vector<float> outputs;
    launch(device, 256, [&](WavefrontCtx& wf) {
      const LaneVec r = wf.sqrt(wf.splat(2.0f));
      wf.for_active([&](int lane, WorkItemId) {
        outputs.push_back(r[lane]);
      });
    });
    return outputs;
  };
  EXPECT_EQ(run(), run());
}

} // namespace
} // namespace tmemo
