#include "kernel/ctx.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "energy/energy_model.hpp"
#include "fpu/semantics.hpp"

namespace tmemo {
namespace {

class CtxTest : public ::testing::Test {
 protected:
  CtxTest()
      : cu_(DeviceConfig::single_cu(), 1),
        ctx_(cu_, none_, nullptr, 64, 0, ~0ull) {}

  LaneVec iota(float scale = 1.0f) {
    LaneVec v;
    for (int i = 0; i < 64; ++i) v[i] = scale * static_cast<float>(i);
    return v;
  }

  ComputeUnit cu_;
  NoErrorModel none_;
  WavefrontCtx ctx_;
};

TEST_F(CtxTest, SplatBroadcasts) {
  const LaneVec v = ctx_.splat(3.5f);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(v[i], 3.5f);
}

TEST_F(CtxTest, GlobalIds) {
  WavefrontCtx ctx(cu_, none_, nullptr, 64, 640, ~0ull);
  EXPECT_EQ(ctx.global_id(0), 640u);
  EXPECT_EQ(ctx.global_id(63), 703u);
  EXPECT_EQ(ctx.size(), 64);
}

TEST_F(CtxTest, BinaryOpsMatchSemantics) {
  const LaneVec a = iota(0.5f);
  const LaneVec b = iota(0.25f);
  const LaneVec sum = ctx_.add(a, b);
  const LaneVec dif = ctx_.sub(a, b);
  const LaneVec prd = ctx_.mul(a, b);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(sum[i], a[i] + b[i]);
    EXPECT_EQ(dif[i], a[i] - b[i]);
    EXPECT_EQ(prd[i], a[i] * b[i]);
  }
}

TEST_F(CtxTest, TernaryAndUnaryOps) {
  const LaneVec a = iota(0.1f);
  const LaneVec fma = ctx_.muladd(a, ctx_.splat(2.0f), ctx_.splat(1.0f));
  const LaneVec rt = ctx_.sqrt(a);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(fma[i], std::fmaf(a[i], 2.0f, 1.0f));
    EXPECT_EQ(rt[i], ::sqrtf(a[i]));
  }
}

TEST_F(CtxTest, AllTwentySevenOpsExecute) {
  // Every DSL entry point issues exactly one static instruction for its
  // opcode; afterwards the issued count equals the number of calls.
  const LaneVec a = iota(0.01f);
  const LaneVec pos = ctx_.add(a, ctx_.splat(1.0f)); // strictly positive
  StaticInstrId before = ctx_.issued_static_instructions();
  (void)ctx_.add(a, a);
  (void)ctx_.sub(a, a);
  (void)ctx_.mul(a, a);
  (void)ctx_.muladd(a, a, a);
  (void)ctx_.min(a, a);
  (void)ctx_.max(a, a);
  (void)ctx_.floor(a);
  (void)ctx_.ceil(a);
  (void)ctx_.trunc(a);
  (void)ctx_.rndne(a);
  (void)ctx_.fract(a);
  (void)ctx_.abs(a);
  (void)ctx_.neg(a);
  (void)ctx_.sqrt(pos);
  (void)ctx_.rsqrt(pos);
  (void)ctx_.recip(pos);
  (void)ctx_.sin(a);
  (void)ctx_.cos(a);
  (void)ctx_.exp2(a);
  (void)ctx_.log2(pos);
  (void)ctx_.fp2int(a);
  (void)ctx_.int2fp(a);
  (void)ctx_.sete(a, a);
  (void)ctx_.setgt(a, a);
  (void)ctx_.setge(a, a);
  (void)ctx_.setne(a, a);
  (void)ctx_.cndge(a, a, a);
  EXPECT_EQ(ctx_.issued_static_instructions() - before, 27u);
}

TEST_F(CtxTest, StaticIdsIncrementPerIssue) {
  EXPECT_EQ(ctx_.issued_static_instructions(), 0u);
  (void)ctx_.add(ctx_.splat(1), ctx_.splat(2));
  EXPECT_EQ(ctx_.issued_static_instructions(), 1u);
  (void)ctx_.div(ctx_.splat(1), ctx_.splat(2)); // recip + mul = 2 ops
  EXPECT_EQ(ctx_.issued_static_instructions(), 3u);
  (void)ctx_.exp(ctx_.splat(1)); // mul + exp2 = 2 ops
  EXPECT_EQ(ctx_.issued_static_instructions(), 5u);
  (void)ctx_.log(ctx_.splat(2)); // log2 + mul = 2 ops
  EXPECT_EQ(ctx_.issued_static_instructions(), 7u);
}

TEST_F(CtxTest, DerivedHelpersComputeCorrectValues) {
  const LaneVec x = ctx_.splat(3.0f);
  EXPECT_NEAR(ctx_.div(ctx_.splat(1.0f), x)[0], 1.0f / 3.0f, 1e-6f);
  EXPECT_NEAR(ctx_.exp(ctx_.splat(1.0f))[0], 2.71828f, 1e-4f);
  EXPECT_NEAR(ctx_.log(ctx_.splat(std::exp(2.0f)))[0], 2.0f, 1e-5f);
}

TEST_F(CtxTest, MaskedLanesUntouched) {
  WavefrontCtx ctx(cu_, none_, nullptr, 64, 0, 0x3ull); // lanes 0, 1
  const LaneVec r = ctx.add(ctx.splat(1.0f), ctx.splat(2.0f));
  EXPECT_EQ(r[0], 3.0f);
  EXPECT_EQ(r[1], 3.0f);
  EXPECT_EQ(r[2], 0.0f); // inactive lane: default value
  EXPECT_FALSE(ctx.lane_active(2));
  EXPECT_TRUE(ctx.lane_active(1));
}

TEST_F(CtxTest, GatherScatterRoundTrip) {
  std::vector<float> buffer(64);
  for (int i = 0; i < 64; ++i) {
    buffer[static_cast<std::size_t>(i)] = static_cast<float>(i) * 2.0f;
  }
  const LaneVec loaded = ctx_.gather(buffer, [](int, WorkItemId gid) {
    return static_cast<std::size_t>(gid);
  });
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(loaded[i], 2.0f * static_cast<float>(i));
  }

  std::vector<float> out(64, -1.0f);
  ctx_.scatter(out, loaded, [](int, WorkItemId gid) {
    return static_cast<std::size_t>(63 - gid); // reversed
  });
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], 2.0f * static_cast<float>(63 - i));
  }
}

TEST_F(CtxTest, ForActiveVisitsOnlyActiveLanes) {
  WavefrontCtx ctx(cu_, none_, nullptr, 64, 128, 0x8001ull); // lanes 0, 15
  std::vector<std::pair<int, WorkItemId>> visited;
  ctx.for_active([&](int lane, WorkItemId gid) {
    visited.emplace_back(lane, gid);
  });
  ASSERT_EQ(visited.size(), 2u);
  EXPECT_EQ(visited[0], (std::pair<int, WorkItemId>{0, 128}));
  EXPECT_EQ(visited[1], (std::pair<int, WorkItemId>{15, 143}));
}

TEST_F(CtxTest, InvalidWavefrontSizeRejected) {
  EXPECT_THROW(WavefrontCtx(cu_, none_, nullptr, 0, 0, 0),
               std::invalid_argument);
  EXPECT_THROW(WavefrontCtx(cu_, none_, nullptr, 65, 0, 0),
               std::invalid_argument);
}

TEST_F(CtxTest, ApproximationPropagatesThroughKernel) {
  // With an approximate constraint, a memoized intermediate feeds the next
  // op — the committed final values reflect the substitution.
  ComputeUnit cu(DeviceConfig::single_cu(), 1);
  cu.for_each_fpu(
      [](ResilientFpu& f) { f.registers().program_threshold(0.5f); });
  WavefrontCtx ctx(cu, none_, nullptr, 64, 0, ~0ull);
  LaneVec x;
  for (int i = 0; i < 64; ++i) x[i] = 16.0f + 0.005f * static_cast<float>(i);
  const LaneVec root = ctx.sqrt(x);   // lanes approximate to the first value
  const LaneVec scaled = ctx.mul(root, ctx.splat(10.0f));
  // Lanes 0 and 16 run on SC0; lane 16's sqrt hits lane 0's entry, so its
  // downstream product equals lane 0's exactly.
  EXPECT_EQ(scaled[16], scaled[0]);
  EXPECT_NE(x[16], x[0]);
}

} // namespace
} // namespace tmemo
