// Property sweep: for EVERY one of the 27 opcodes, the value committed by
// an error-free exact-matching device run equals the functional semantics
// on every lane — including when the same wavefront repeats (LUT hits must
// return bit-identical values), and when errors force recoveries.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fpu/semantics.hpp"
#include "kernel/launch.hpp"

namespace tmemo {
namespace {

/// Produces operand values safe for the opcode's domain (positive for
/// sqrt/log, bounded away from zero for recip) without losing variety.
float domain_value(FpOpcode op, Xorshift128& rng) {
  const float raw = 20.0f * rng.next_float() - 10.0f;
  switch (op) {
    case FpOpcode::kSqrt:
    case FpOpcode::kRsqrt:
    case FpOpcode::kLog2:
      return std::max(0.25f, raw + 10.5f);
    case FpOpcode::kRecip:
      return raw >= 0.0f ? raw + 0.5f : raw - 0.5f;
    default:
      return raw;
  }
}

class DslOpcodeSweep : public ::testing::TestWithParam<int> {};

TEST_P(DslOpcodeSweep, DeviceCommitsExactSemantics) {
  const auto op = static_cast<FpOpcode>(GetParam());
  const int arity = opcode_arity(op);
  GpuDevice device(DeviceConfig::single_cu());
  device.program_exact();

  Xorshift128 rng(0x5eed + static_cast<std::uint64_t>(GetParam()));
  ComputeUnit& cu = device.compute_unit(0);
  const NoErrorModel none;

  for (int round = 0; round < 3; ++round) {
    LaneVec a, b, c, out;
    for (int lane = 0; lane < 64; ++lane) {
      a[lane] = domain_value(op, rng);
      b[lane] = domain_value(op, rng);
      c[lane] = domain_value(op, rng);
    }
    cu.execute_wavefront_op(op, static_cast<StaticInstrId>(round),
                            a.data(), arity >= 2 ? b.data() : nullptr,
                            arity >= 3 ? c.data() : nullptr, ~0ull, 0, none,
                            nullptr, out.data());
    for (int lane = 0; lane < 64; ++lane) {
      const float expect = evaluate_fp_op(op, {a[lane], b[lane], c[lane]});
      if (std::isnan(expect)) {
        ASSERT_TRUE(std::isnan(out[lane]))
            << opcode_name(op) << " lane " << lane;
      } else {
        ASSERT_EQ(out[lane], expect) << opcode_name(op) << " lane " << lane;
      }
    }
  }
}

TEST_P(DslOpcodeSweep, RepeatedWavefrontHitsReturnIdenticalValues) {
  const auto op = static_cast<FpOpcode>(GetParam());
  const int arity = opcode_arity(op);
  GpuDevice device(DeviceConfig::single_cu());
  device.program_exact();
  ComputeUnit& cu = device.compute_unit(0);
  const NoErrorModel none;

  LaneVec a(2.25f), b(1.5f), c(0.5f), first, second;
  cu.execute_wavefront_op(op, 0, a.data(),
                          arity >= 2 ? b.data() : nullptr,
                          arity >= 3 ? c.data() : nullptr, ~0ull, 0, none,
                          nullptr, first.data());
  cu.execute_wavefront_op(op, 0, a.data(),
                          arity >= 2 ? b.data() : nullptr,
                          arity >= 3 ? c.data() : nullptr, ~0ull, 64, none,
                          nullptr, second.data());
  for (int lane = 0; lane < 64; ++lane) {
    ASSERT_EQ(first[lane], second[lane]) << opcode_name(op);
  }
  // Uniform operands: everything after the per-FPU cold miss hits.
  EXPECT_GT(device.weighted_hit_rate(), 0.85) << opcode_name(op);
}

TEST_P(DslOpcodeSweep, ErrorsNeverChangeCommittedValues) {
  const auto op = static_cast<FpOpcode>(GetParam());
  const int arity = opcode_arity(op);
  GpuDevice device(DeviceConfig::single_cu());
  device.program_exact();
  device.set_error_model(std::make_shared<FixedRateErrorModel>(0.5));
  ComputeUnit& cu = device.compute_unit(0);

  Xorshift128 rng(0xabcd + static_cast<std::uint64_t>(GetParam()));
  LaneVec a, b, c, out;
  for (int lane = 0; lane < 64; ++lane) {
    a[lane] = domain_value(op, rng);
    b[lane] = domain_value(op, rng);
    c[lane] = domain_value(op, rng);
  }
  cu.execute_wavefront_op(op, 0, a.data(),
                          arity >= 2 ? b.data() : nullptr,
                          arity >= 3 ? c.data() : nullptr, ~0ull, 0,
                          device.error_model(), nullptr, out.data());
  for (int lane = 0; lane < 64; ++lane) {
    const float expect = evaluate_fp_op(op, {a[lane], b[lane], c[lane]});
    if (std::isnan(expect)) {
      ASSERT_TRUE(std::isnan(out[lane])) << opcode_name(op);
    } else {
      ASSERT_EQ(out[lane], expect) << opcode_name(op) << " lane " << lane;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(All27, DslOpcodeSweep,
                         ::testing::Range(0, kNumFpOpcodes));

} // namespace
} // namespace tmemo
