// Table-driven argument-hardening tests for the tmemo_sim binary itself
// (docs/RESILIENCE.md). Every malformed invocation must exit with status 2
// and print exactly one "tmemo_sim: ..." diagnostic line to stderr — never
// crash, hang, or silently coerce a bad value. The binary path is injected
// by CMake as TMEMO_SIM_BIN.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>
#include <sys/wait.h>

namespace {

struct RunOutcome {
  int exit_code = -1;
  std::string output; // stdout + stderr, interleaved
};

/// Runs the simulator with `args` appended after argv[0]; captures both
/// streams through one pipe so the diagnostic-line assertions see stderr.
RunOutcome run_sim(const std::string& args) {
  const std::string cmd = std::string(TMEMO_SIM_BIN) + " " + args + " 2>&1";
  std::FILE* pipe = ::popen(cmd.c_str(), "r");
  RunOutcome out;
  if (pipe == nullptr) return out;
  std::array<char, 4096> buf{};
  std::size_t n = 0;
  while ((n = std::fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    out.output.append(buf.data(), n);
  }
  const int status = ::pclose(pipe);
  if (WIFEXITED(status)) out.exit_code = WEXITSTATUS(status);
  return out;
}

std::size_t count_lines(const std::string& text) {
  std::size_t lines = 0;
  for (const char c : text) {
    if (c == '\n') ++lines;
  }
  if (!text.empty() && text.back() != '\n') ++lines;
  return lines;
}

/// A valid-but-cheap prefix, so a case that is wrongly accepted still
/// finishes quickly instead of running a full-size workload.
constexpr const char* kCheapRun = "--kernel haar --scale 0.01 --error-rate 0";

struct BadCase {
  const char* name;
  const char* args;
};

// Each entry must be rejected: unknown flags, missing values, malformed
// numerics, out-of-range values, and inconsistent flag combinations.
constexpr BadCase kRejected[] = {
    {"unknown_flag", "--frobnicate"},
    {"unknown_flag_after_valid", "--kernel haar --frobnicate 3"},
    {"jobs_zero", "--jobs 0"},
    {"jobs_negative", "--jobs -3"},
    {"jobs_garbage", "--jobs notanumber"},
    {"jobs_trailing_junk", "--jobs 4x"},
    {"jobs_huge", "--jobs 1000000000"},
    {"error_rate_negative", "--error-rate -0.1"},
    {"error_rate_above_one", "--error-rate 1.5"},
    {"error_rate_nan", "--error-rate nan"},
    {"error_rate_inf", "--error-rate inf"},
    {"error_rate_empty", "--error-rate \"\""},
    {"threshold_nan", "--threshold nan"},
    {"threshold_negative", "--threshold -0.5"},
    {"scale_zero", "--scale 0"},
    {"scale_negative", "--scale -1"},
    {"voltage_zero", "--voltage 0"},
    {"lut_depth_zero", "--lut-depth 0"},
    {"lut_depth_huge", "--lut-depth 123456789"},
    {"seed_negative", "--seed -1"},
    {"seed_fractional", "--seed 1.5"},
    {"csv_takes_no_value", "--csv=yes"},
    {"inject_rate_above_one", "--inject-lut-seu 2"},
    {"max_attempts_zero", "--max-attempts 0"},
    {"retries_negative", "--retries -1"},
    {"timeout_negative", "--timeout-ms -5"},
    {"job_timeout_garbage", "--job-timeout-ms soon"},
    {"isolation_bogus", "--isolation container"},
    {"remote_requires_listen", "--isolation remote"},
    {"listen_requires_remote", "--listen 127.0.0.1:7070"},
    {"listen_missing_value", "--isolation remote --listen"},
    {"remote_local_workers_require_remote", "--remote-local-workers 2"},
    {"remote_local_workers_negative",
     "--isolation remote --listen 127.0.0.1:0 --remote-local-workers -1"},
    {"crash_injection_remote_rejected",
     "--isolation remote --listen 127.0.0.1:0 --inject-worker-crash 1:segv"},
    {"crash_injection_needs_process",
     "--inject-worker-crash 1:segv"},
    {"crash_spec_malformed",
     "--isolation process --inject-worker-crash banana"},
    {"crash_spec_bad_signal",
     "--isolation process --inject-worker-crash 1:sigfoo"},
    {"inject_fs_malformed", "--inject-fs banana"},
    {"inject_fs_unknown_key", "--inject-fs frobnicate=0.5"},
    {"inject_fs_prob_above_one", "--inject-fs enospc=2"},
    {"inject_fs_missing_value", "--inject-fs"},
    {"checkpoint_every_zero", "--checkpoint-every 0"},
    {"checkpoint_every_garbage", "--checkpoint-every soon"},
    {"checkpoint_requires_journal", "--checkpoint-every 4"},
    {"sweep_unknown_axis", "--sweep banana:0:1:3"},
    {"sweep_nan_endpoint", "--sweep error-rate:nan:0.04:3"},
    {"sweep_huge_count", "--sweep error-rate:0:0.04:99999999"},
    {"sweep_and_voltage_conflict", "--sweep voltage:0.8:1.0:3 --voltage 0.9"},
    {"missing_value_at_end", "--kernel"},
    {"kernel_unknown", "--kernel destroyer"},
};

class RejectedArgs : public ::testing::TestWithParam<BadCase> {};

TEST_P(RejectedArgs, ExitsTwoWithOneDiagnosticLine) {
  const BadCase& c = GetParam();
  const RunOutcome out =
      run_sim(std::string(kCheapRun) + " " + c.args);
  EXPECT_EQ(out.exit_code, 2) << "args: " << c.args << "\n" << out.output;
  EXPECT_EQ(count_lines(out.output), 1u)
      << "args: " << c.args << "\n" << out.output;
  EXPECT_EQ(out.output.rfind("tmemo_sim: ", 0), 0u)
      << "args: " << c.args << "\n" << out.output;
  EXPECT_NE(out.output.find("--help"), std::string::npos)
      << "args: " << c.args << "\n" << out.output;
}

INSTANTIATE_TEST_SUITE_P(Table, RejectedArgs, ::testing::ValuesIn(kRejected),
                         [](const auto& the_case) {
                           return std::string(the_case.param.name);
                         });

TEST(AcceptedArgs, CheapValidRunExitsZero) {
  const RunOutcome out = run_sim(kCheapRun);
  EXPECT_EQ(out.exit_code, 0) << out.output;
}

TEST(AcceptedArgs, HelpExitsZeroAndMentionsIsolation) {
  const RunOutcome out = run_sim("--help");
  EXPECT_EQ(out.exit_code, 0) << out.output;
  EXPECT_NE(out.output.find("--isolation"), std::string::npos);
  EXPECT_NE(out.output.find("--inject-worker-crash"), std::string::npos);
}

TEST(AcceptedArgs, RetriesAliasMapsToMaxAttempts) {
  // --retries 0 is the documented alias for --max-attempts 1; both valid.
  const RunOutcome out =
      run_sim(std::string(kCheapRun) + " --retries 0");
  EXPECT_EQ(out.exit_code, 0) << out.output;
}

TEST(AcceptedArgs, CheckpointedJournalRunExitsZero) {
  const std::string journal =
      ::testing::TempDir() + "tmemo_cli_ckpt.journal";
  std::remove(journal.c_str());
  std::remove((journal + ".checkpoint").c_str());
  const RunOutcome out = run_sim(std::string(kCheapRun) + " --journal " +
                                 journal + " --checkpoint-every 1");
  EXPECT_EQ(out.exit_code, 0) << out.output;
  // Cadence 1: the single job's append snapshots into a checkpoint.
  EXPECT_TRUE(std::ifstream(journal + ".checkpoint").good());
  std::remove(journal.c_str());
  std::remove((journal + ".checkpoint").c_str());
}

// -- Artifact-durability exit contract (docs/RESILIENCE.md) -------------------
// An artifact that cannot be made durable is its own failure class: exit 3,
// a "tmemo_sim: ..." diagnostic, and never a torn file at the final path.

TEST(ArtifactFaults, InjectedJsonWriteFailureExitsThreeLeavingNoTornFile) {
  const std::string json = ::testing::TempDir() + "tmemo_cli_inject.json";
  std::remove(json.c_str());
  const RunOutcome out =
      run_sim(std::string(kCheapRun) +
              " --inject-fs seed=1,enospc=1 --json " + json);
  EXPECT_EQ(out.exit_code, 3) << out.output;
  EXPECT_NE(out.output.find("tmemo_sim: "), std::string::npos) << out.output;
  EXPECT_FALSE(std::ifstream(json).good())
      << "a failed commit must not publish anything at the final path";
}

TEST(ArtifactFaults, InjectedJournalFaultExitsThree) {
  const std::string journal =
      ::testing::TempDir() + "tmemo_cli_inject.journal";
  std::remove(journal.c_str());
  const RunOutcome out =
      run_sim(std::string(kCheapRun) + " --journal " + journal +
              " --inject-fs seed=1,enospc=1");
  EXPECT_EQ(out.exit_code, 3) << out.output;
  EXPECT_NE(out.output.find("tmemo_sim: "), std::string::npos) << out.output;
  std::remove(journal.c_str());
}

TEST(ArtifactFaults, InjectFsWithZeroProbabilitiesIsANoOp) {
  const RunOutcome out =
      run_sim(std::string(kCheapRun) + " --inject-fs seed=1,enospc=0");
  EXPECT_EQ(out.exit_code, 0) << out.output;
}

} // namespace
