// Table-driven argument-hardening tests for the distributed-fabric tools
// (docs/DISTRIBUTED.md): tmemo_workerd and tmemo_journal. Every malformed
// invocation must exit with status 2 and print exactly one
// "<tool>: ..." diagnostic line to stderr; environment failures (an
// unreachable supervisor, an unreadable shard) exit 1. Binary paths are
// injected by CMake as TMEMO_WORKERD_BIN / TMEMO_JOURNAL_BIN.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>
#include <sys/wait.h>

namespace {

struct RunOutcome {
  int exit_code = -1;
  std::string output; // stdout + stderr, interleaved
};

RunOutcome run_tool(const char* bin, const std::string& args) {
  const std::string cmd = std::string(bin) + " " + args + " 2>&1";
  std::FILE* pipe = ::popen(cmd.c_str(), "r");
  RunOutcome out;
  if (pipe == nullptr) return out;
  std::array<char, 4096> buf{};
  std::size_t n = 0;
  while ((n = std::fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    out.output.append(buf.data(), n);
  }
  const int status = ::pclose(pipe);
  if (WIFEXITED(status)) out.exit_code = WEXITSTATUS(status);
  return out;
}

std::size_t count_lines(const std::string& text) {
  std::size_t lines = 0;
  for (const char c : text) {
    if (c == '\n') ++lines;
  }
  if (!text.empty() && text.back() != '\n') ++lines;
  return lines;
}

struct BadCase {
  const char* name;
  const char* args;
};

// ---------------------------------------------------------------------------
// tmemo_workerd.

// `--connect 127.0.0.1:9` is syntactically valid, so parse errors beyond it
// are attributable to the case under test (nothing ever connects: parsing
// fails before any socket is opened).
constexpr BadCase kWorkerdRejected[] = {
    {"no_connect", "--kernel haar"},
    {"connect_missing_value", "--connect"},
    {"connect_no_port", "--connect 127.0.0.1"},
    {"connect_bad_port", "--connect 127.0.0.1:notaport"},
    {"connect_port_zero", "--connect 127.0.0.1:0"},
    {"connect_port_out_of_range", "--connect 127.0.0.1:70000"},
    {"unknown_flag", "--connect 127.0.0.1:9 --frobnicate"},
    {"supervisor_only_jobs", "--connect 127.0.0.1:9 --jobs 4"},
    {"supervisor_only_isolation", "--connect 127.0.0.1:9 --isolation remote"},
    {"supervisor_only_listen", "--connect 127.0.0.1:9 --listen 1.2.3.4:5"},
    {"error_rate_above_one", "--connect 127.0.0.1:9 --error-rate 1.5"},
    {"sweep_malformed", "--connect 127.0.0.1:9 --sweep banana:0:1:3"},
    {"sweep_and_voltage_conflict",
     "--connect 127.0.0.1:9 --sweep voltage:0.8:1.0:3 --voltage 0.9"},
    {"timeout_zero", "--connect 127.0.0.1:9 --connect-timeout-ms 0"},
    {"inject_fs_malformed", "--connect 127.0.0.1:9 --inject-fs banana"},
    {"inject_fs_prob_above_one",
     "--connect 127.0.0.1:9 --inject-fs enospc=2"},
    {"checkpoint_every_zero",
     "--connect 127.0.0.1:9 --journal shard.journal --checkpoint-every 0"},
    {"checkpoint_requires_journal",
     "--connect 127.0.0.1:9 --checkpoint-every 2"},
    {"missing_value_at_end", "--connect 127.0.0.1:9 --kernel"},
};

class WorkerdRejectedArgs : public ::testing::TestWithParam<BadCase> {};

TEST_P(WorkerdRejectedArgs, ExitsTwoWithOneDiagnosticLine) {
  const BadCase& c = GetParam();
  const RunOutcome out = run_tool(TMEMO_WORKERD_BIN, c.args);
  EXPECT_EQ(out.exit_code, 2) << "args: " << c.args << "\n" << out.output;
  EXPECT_EQ(count_lines(out.output), 1u)
      << "args: " << c.args << "\n" << out.output;
  EXPECT_EQ(out.output.rfind("tmemo_workerd: ", 0), 0u)
      << "args: " << c.args << "\n" << out.output;
  EXPECT_NE(out.output.find("--help"), std::string::npos)
      << "args: " << c.args << "\n" << out.output;
}

INSTANTIATE_TEST_SUITE_P(Table, WorkerdRejectedArgs,
                         ::testing::ValuesIn(kWorkerdRejected),
                         [](const auto& the_case) {
                           return std::string(the_case.param.name);
                         });

TEST(WorkerdArgs, HelpExitsZeroAndMentionsConnect) {
  const RunOutcome out = run_tool(TMEMO_WORKERD_BIN, "--help");
  EXPECT_EQ(out.exit_code, 0) << out.output;
  EXPECT_NE(out.output.find("--connect"), std::string::npos);
  EXPECT_NE(out.output.find("--journal"), std::string::npos);
}

TEST(WorkerdArgs, UnreachableSupervisorExitsOneNotTwo) {
  // Port 9 (discard) on loopback: nothing listens there in CI, so the
  // connect is refused immediately. An environment failure is exit 1 — the
  // command line itself was fine.
  const RunOutcome out = run_tool(
      TMEMO_WORKERD_BIN,
      "--connect 127.0.0.1:9 --kernel haar --connect-timeout-ms 2000");
  EXPECT_EQ(out.exit_code, 1) << out.output;
  EXPECT_NE(out.output.find("cannot reach supervisor"), std::string::npos)
      << out.output;
}

// ---------------------------------------------------------------------------
// tmemo_journal.

constexpr BadCase kJournalRejected[] = {
    {"no_subcommand", ""},
    {"unknown_subcommand", "frobnicate"},
    {"merge_no_out", "merge shard-a.journal"},
    {"merge_no_shards", "merge --out merged.journal"},
    {"merge_out_missing_value", "merge shard-a.journal --out"},
    {"merge_unknown_option", "merge --out m.journal --frobnicate a.journal"},
    {"merge_inject_fs_malformed",
     "merge --out m.journal --inject-fs banana a.journal"},
    {"merge_inject_fs_missing_value", "merge a.journal --inject-fs"},
};

class JournalRejectedArgs : public ::testing::TestWithParam<BadCase> {};

TEST_P(JournalRejectedArgs, ExitsTwoWithOneDiagnosticLine) {
  const BadCase& c = GetParam();
  const RunOutcome out = run_tool(TMEMO_JOURNAL_BIN, c.args);
  EXPECT_EQ(out.exit_code, 2) << "args: " << c.args << "\n" << out.output;
  EXPECT_EQ(count_lines(out.output), 1u)
      << "args: " << c.args << "\n" << out.output;
  EXPECT_EQ(out.output.rfind("tmemo_journal: ", 0), 0u)
      << "args: " << c.args << "\n" << out.output;
}

INSTANTIATE_TEST_SUITE_P(Table, JournalRejectedArgs,
                         ::testing::ValuesIn(kJournalRejected),
                         [](const auto& the_case) {
                           return std::string(the_case.param.name);
                         });

TEST(JournalArgs, HelpExitsZeroAndMentionsMerge) {
  const RunOutcome out = run_tool(TMEMO_JOURNAL_BIN, "--help");
  EXPECT_EQ(out.exit_code, 0) << out.output;
  EXPECT_NE(out.output.find("merge"), std::string::npos);
}

TEST(JournalArgs, RefusesToClobberWithoutForceThenForceOverwrites) {
  // A header-only shard is a valid (if empty) journal — enough to drive
  // the output-clobber contract end to end through the binary.
  const std::string shard = ::testing::TempDir() + "tmemo_cli_shard.journal";
  const std::string out = ::testing::TempDir() + "tmemo_cli_merged.journal";
  std::remove(out.c_str());
  {
    std::ofstream s(shard, std::ios::trunc);
    s << "tmemo-journal-v2,v1-clitest\n";
  }
  const std::string merge_args = "merge --out " + out + " " + shard;

  const RunOutcome first = run_tool(TMEMO_JOURNAL_BIN, merge_args);
  EXPECT_EQ(first.exit_code, 0) << first.output;

  const RunOutcome second = run_tool(TMEMO_JOURNAL_BIN, merge_args);
  EXPECT_EQ(second.exit_code, 1) << second.output;
  EXPECT_NE(second.output.find("--force"), std::string::npos)
      << second.output;

  const RunOutcome forced =
      run_tool(TMEMO_JOURNAL_BIN, "merge --force --out " + out + " " + shard);
  EXPECT_EQ(forced.exit_code, 0) << forced.output;

  std::remove(shard.c_str());
  std::remove(out.c_str());
}

TEST(JournalArgs, InjectedOutputFaultExitsOneAndLeavesNoTornOutput) {
  const std::string shard =
      ::testing::TempDir() + "tmemo_cli_inject_shard.journal";
  const std::string out =
      ::testing::TempDir() + "tmemo_cli_inject_merged.journal";
  std::remove(out.c_str());
  {
    std::ofstream s(shard, std::ios::trunc);
    s << "tmemo-journal-v2,v1-clitest\n";
  }
  const RunOutcome chaos = run_tool(
      TMEMO_JOURNAL_BIN, "merge --inject-fs seed=1,enospc=1 --out " + out +
                             " " + shard);
  EXPECT_EQ(chaos.exit_code, 1) << chaos.output;
  EXPECT_NE(chaos.output.find("tmemo_journal: "), std::string::npos)
      << chaos.output;
  EXPECT_FALSE(std::ifstream(out).good())
      << "a failed commit must not publish anything at the final path";
  std::remove(shard.c_str());
}

TEST(JournalArgs, UnreadableShardExitsOneNotTwo) {
  const RunOutcome out = run_tool(
      TMEMO_JOURNAL_BIN,
      "merge --out /tmp/tmemo_merge_out.journal "
      "/nonexistent/tmemo_shard.journal");
  EXPECT_EQ(out.exit_code, 1) << out.output;
  EXPECT_NE(out.output.find("cannot read shard"), std::string::npos)
      << out.output;
}

} // namespace
