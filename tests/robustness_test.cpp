// Failure-injection / hostile-input robustness: special FP values (NaN,
// infinities, denormals), extreme configurations, and abuse of the public
// API must never crash, corrupt the LUT, or silently reuse garbage.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "kernel/launch.hpp"
#include "sim/simulation.hpp"
#include "workloads/sobel.hpp"

#include "img/synthetic.hpp"

namespace tmemo {
namespace {

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

FpInstruction ins(FpOpcode op, float a, float b = 0.0f) {
  FpInstruction i;
  i.opcode = op;
  i.operands = {a, b, 0.0f};
  return i;
}

TEST(Robustness, NanOperandsNeverPolluteApproximateMatching) {
  ResilientFpu fpu(FpuType::kAdd, ResilientFpuConfig{});
  fpu.registers().program_threshold(10.0f); // very loose
  const NoErrorModel none;
  (void)fpu.execute(ins(FpOpcode::kAdd, kNan, 1.0f), none);
  // A NaN entry sits in the FIFO but must never match anything...
  const auto r1 = fpu.execute(ins(FpOpcode::kAdd, 5.0f, 1.0f), none);
  EXPECT_FALSE(r1.lut_hit);
  // ...and an incoming NaN must not match numeric entries either.
  const auto r2 = fpu.execute(ins(FpOpcode::kAdd, kNan, 1.0f), none);
  EXPECT_FALSE(r2.lut_hit);
  EXPECT_TRUE(std::isnan(r2.result));
}

TEST(Robustness, NanMatchesBitwiseUnderExactConstraint) {
  // Exact matching is a bit comparison: the same NaN payload DOES match —
  // and the memorized result is the same NaN, which is value-correct.
  ResilientFpu fpu(FpuType::kAdd, ResilientFpuConfig{});
  fpu.registers().program_exact();
  const NoErrorModel none;
  (void)fpu.execute(ins(FpOpcode::kAdd, kNan, 1.0f), none);
  const auto r = fpu.execute(ins(FpOpcode::kAdd, kNan, 1.0f), none);
  EXPECT_TRUE(r.lut_hit);
  EXPECT_TRUE(std::isnan(r.result));
}

TEST(Robustness, InfinitiesFlowThrough) {
  ResilientFpu fpu(FpuType::kMul, ResilientFpuConfig{});
  const FixedRateErrorModel errors(0.5);
  const auto r1 = fpu.execute(ins(FpOpcode::kMul, kInf, 2.0f), errors);
  EXPECT_EQ(r1.result, kInf);
  const auto r2 = fpu.execute(ins(FpOpcode::kMul, kInf, 0.0f), errors);
  EXPECT_TRUE(std::isnan(r2.result));
  const auto r3 = fpu.execute(ins(FpOpcode::kMul, -kInf, 3.0f), errors);
  EXPECT_EQ(r3.result, -kInf);
}

TEST(Robustness, DenormalOperandsMatchExactly) {
  ResilientFpu fpu(FpuType::kAdd, ResilientFpuConfig{});
  const NoErrorModel none;
  const float denorm = std::numeric_limits<float>::denorm_min();
  (void)fpu.execute(ins(FpOpcode::kAdd, denorm, denorm), none);
  const auto r = fpu.execute(ins(FpOpcode::kAdd, denorm, denorm), none);
  EXPECT_TRUE(r.lut_hit);
}

TEST(Robustness, KernelWithNanPixelsDoesNotCrash) {
  Image img = make_face_image(64, 64);
  img.at(10, 10) = kNan;
  img.at(20, 20) = kInf;
  GpuDevice device(DeviceConfig::single_cu());
  device.program_threshold_as_mask(1.0f);
  device.set_error_model(std::make_shared<FixedRateErrorModel>(0.1));
  const Image out = sobel_on_device(device, img);
  EXPECT_EQ(out.width(), 64);
  // Pixels far from the poison are unaffected.
  EXPECT_FALSE(std::isnan(out.at(40, 40)));
}

TEST(Robustness, HundredPercentErrorRateStillCorrect) {
  Simulation sim;
  const auto workloads = make_all_workloads(0.01);
  // Exact matching + guaranteed errors on every instruction: everything
  // recovers or reuses exactly; results identical to error-free.
  const KernelRunReport r =
      sim.run(*workloads[2], RunSpec::at_error_rate(1.0).threshold(0.0f)); // Haar, exact
  EXPECT_EQ(r.result.max_abs_error, 0.0);
  FpuStats total;
  for (const FpuStats& s : r.unit_stats) total += s;
  EXPECT_EQ(total.timing_errors, total.instructions);
}

TEST(Robustness, SingleLaneDeviceWorks) {
  DeviceConfig cfg = DeviceConfig::single_cu();
  cfg.stream_cores_per_cu = 1;
  cfg.wavefront_size = 1;
  GpuDevice device(cfg);
  launch(device, 10, [](WavefrontCtx& wf) {
    (void)wf.add(wf.splat(1.0f), wf.splat(2.0f));
  });
  EXPECT_EQ(device.total_stats(kAllFpuTypes).instructions, 10u);
}

TEST(Robustness, HugeLutDepthWorks) {
  ExperimentConfig cfg;
  cfg.device = DeviceConfig::single_cu();
  cfg.device.fpu.lut_depth = 4096;
  Simulation sim(cfg);
  const auto workloads = make_all_workloads(0.01);
  const KernelRunReport r = sim.run(*workloads[2], RunSpec::at_error_rate(0.0));
  EXPECT_TRUE(r.result.passed);
}

TEST(Robustness, ZeroThresholdOverrideOnTolerantKernels) {
  // Forcing exact matching on the image kernels must give perfect quality.
  Simulation sim;
  SobelWorkload w(make_face_image(96, 96), "face");
  const KernelRunReport r = sim.run(w, RunSpec::at_error_rate(0.05).threshold(0.0f));
  EXPECT_EQ(r.result.max_abs_error, 0.0);
}

TEST(Robustness, ThresholdLargerThanAllValuesMatchesEverything) {
  // A huge threshold collapses every unary stream onto its first value;
  // the system must remain stable (no crash, outputs finite).
  ResilientFpu fpu(FpuType::kSqrt, ResilientFpuConfig{});
  fpu.registers().program_threshold(1e30f);
  const NoErrorModel none;
  (void)fpu.execute(ins(FpOpcode::kSqrt, 4.0f), none);
  for (float v : {9.0f, 100.0f, 1e20f}) {
    const auto r = fpu.execute(ins(FpOpcode::kSqrt, v), none);
    EXPECT_TRUE(r.lut_hit);
    EXPECT_EQ(r.result, 2.0f); // the memorized sqrt(4)
  }
}

} // namespace
} // namespace tmemo
