#include "energy/energy_model.hpp"

#include <gtest/gtest.h>

namespace tmemo {
namespace {

ExecutionRecord clean_miss(FpuType u = FpuType::kAdd) {
  ExecutionRecord r;
  r.unit = u;
  r.action = MemoAction::kNormalExecution;
  r.memo_enabled = true;
  r.active_stage_cycles = fpu_latency_cycles(u);
  r.latency_cycles = fpu_latency_cycles(u);
  r.lut_lookups = 1;
  r.lut_writes = 1;
  r.lut_updated = true;
  return r;
}

ExecutionRecord hit(FpuType u = FpuType::kAdd) {
  ExecutionRecord r;
  r.unit = u;
  r.action = MemoAction::kReuse;
  r.memo_enabled = true;
  r.lut_hit = true;
  r.active_stage_cycles = 1;
  r.gated_stage_cycles = fpu_latency_cycles(u) - 1;
  r.latency_cycles = fpu_latency_cycles(u);
  r.lut_lookups = 1;
  return r;
}

ExecutionRecord errant_miss(FpuType u = FpuType::kAdd) {
  ExecutionRecord r = clean_miss(u);
  r.action = MemoAction::kTriggerRecovery;
  r.timing_error = true;
  r.recovered = true;
  r.lut_writes = 0;
  r.lut_updated = false;
  r.recovery_cycles = 12;
  r.latency_cycles += 12;
  return r;
}

TEST(EnergyModel, ValidatesParameters) {
  EnergyParams p;
  p.fpu_op_energy_pj[0] = 0.0;
  EXPECT_THROW(EnergyModel{p}, std::invalid_argument);
  p = {};
  p.clock_gate_residual = 1.5;
  EXPECT_THROW(EnergyModel{p}, std::invalid_argument);
  p = {};
  p.recovery_energy_factor = -1.0;
  EXPECT_THROW(EnergyModel{p}, std::invalid_argument);
  p = {};
  p.lut_lookup_pj = -0.1;
  EXPECT_THROW(EnergyModel{p}, std::invalid_argument);
}

TEST(EnergyModel, OpEnergyScalesWithVoltageSquared) {
  const EnergyModel m;
  const double nominal = m.op_energy(FpuType::kMul, 0.9);
  EXPECT_NEAR(m.op_energy(FpuType::kMul, 0.45), nominal * 0.25, 1e-9);
}

TEST(EnergyModel, StageEnergyIsOpOverDepth) {
  const EnergyModel m;
  for (FpuType u : kAllFpuTypes) {
    EXPECT_NEAR(m.stage_energy(u, 0.9) * fpu_latency_cycles(u),
                m.op_energy(u, 0.9), 1e-9);
  }
}

TEST(EnergyModel, RecoveryEnergyUsesFactor) {
  EnergyParams p;
  p.recovery_energy_factor = 10.0;
  const EnergyModel m(p);
  EXPECT_NEAR(m.recovery_energy(FpuType::kAdd, 0.9),
              10.0 * m.op_energy(FpuType::kAdd, 0.9), 1e-9);
}

TEST(EnergyModel, CleanMissCostsOpPlusModule) {
  const EnergyModel m;
  const EnergyParams& p = m.params();
  const double e = m.charge(clean_miss());
  const double expected = m.op_energy(FpuType::kAdd, 0.9) + p.lut_lookup_pj +
                          p.lut_update_pj + 4 * p.memo_static_pj_per_cycle;
  EXPECT_NEAR(e, expected, 1e-9);
}

TEST(EnergyModel, HitCostsFarLessThanMiss) {
  const EnergyModel m;
  EXPECT_LT(m.charge(hit()), 0.6 * m.charge(clean_miss()));
  // Hit energy: one active stage + residual on the rest + module.
  const EnergyParams& p = m.params();
  const double stage = m.stage_energy(FpuType::kAdd, 0.9);
  const double expected = stage + 3 * stage * p.clock_gate_residual +
                          p.lut_lookup_pj + 4 * p.memo_static_pj_per_cycle;
  EXPECT_NEAR(m.charge(hit()), expected, 1e-9);
}

TEST(EnergyModel, ErrantMissAddsRecoveryEnergy) {
  const EnergyModel m;
  const double delta = m.charge(errant_miss()) - m.charge(clean_miss());
  EXPECT_NEAR(delta,
              m.recovery_energy(FpuType::kAdd, 0.9) -
                  m.params().lut_update_pj +
                  12 * m.params().memo_static_pj_per_cycle,
              1e-9);
}

TEST(EnergyModel, BaselineChargesRecoveryForMaskedErrors) {
  const EnergyModel m;
  ExecutionRecord masked = hit();
  masked.timing_error = true;
  masked.error_masked = true;
  masked.action = MemoAction::kReuseMaskError;
  // Memoized architecture: no recovery energy.
  EXPECT_LT(m.charge(masked), m.op_energy(FpuType::kAdd, 0.9));
  // Baseline: full op + recovery.
  EXPECT_NEAR(m.charge_baseline(masked),
              m.op_energy(FpuType::kAdd, 0.9) +
                  m.recovery_energy(FpuType::kAdd, 0.9),
              1e-9);
}

TEST(EnergyModel, ModuleChargesStayAtNominalUnderVos) {
  // At 0.8 V FPU supply the LUT contributions must not scale.
  const EnergyModel m;
  const EnergyParams& p = m.params();
  const double e80 = m.charge(hit(), 0.8);
  const double stage80 = m.stage_energy(FpuType::kAdd, 0.8);
  const double expected = stage80 + 3 * stage80 * p.clock_gate_residual +
                          p.lut_lookup_pj + 4 * p.memo_static_pj_per_cycle;
  EXPECT_NEAR(e80, expected, 1e-9);
}

TEST(EnergyModel, DisabledModuleChargesNoLutEnergy) {
  const EnergyModel m;
  ExecutionRecord r = clean_miss();
  r.memo_enabled = false;
  r.lut_lookups = 0;
  r.lut_writes = 0;
  EXPECT_NEAR(m.charge(r), m.op_energy(FpuType::kAdd, 0.9), 1e-9);
  // A full miss without module equals the baseline charge exactly.
  EXPECT_NEAR(m.charge(r), m.charge_baseline(r), 1e-9);
}

TEST(EnergyTotals, SavingComputation) {
  EnergyTotals t;
  t.baseline_pj = 200.0;
  t.memoized_pj = 150.0;
  EXPECT_NEAR(t.saving(), 0.25, 1e-12);
  EnergyTotals zero;
  EXPECT_EQ(zero.saving(), 0.0);
}

TEST(EnergyTotals, Accumulation) {
  EnergyTotals a{10.0, 20.0};
  EnergyTotals b{1.0, 2.0};
  a += b;
  EXPECT_NEAR(a.memoized_pj, 11.0, 1e-12);
  EXPECT_NEAR(a.baseline_pj, 22.0, 1e-12);
}

class UnitEnergyOrdering : public ::testing::TestWithParam<Volt> {};

TEST_P(UnitEnergyOrdering, ExpensiveUnitsStayExpensive) {
  // The relative cost ordering is voltage-invariant.
  const EnergyModel m;
  const Volt v = GetParam();
  EXPECT_GT(m.op_energy(FpuType::kRecip, v), m.op_energy(FpuType::kSqrt, v));
  EXPECT_GT(m.op_energy(FpuType::kSqrt, v), m.op_energy(FpuType::kMulAdd, v));
  EXPECT_GT(m.op_energy(FpuType::kMulAdd, v), m.op_energy(FpuType::kMul, v));
  EXPECT_GT(m.op_energy(FpuType::kMul, v), m.op_energy(FpuType::kAdd, v));
  EXPECT_GT(m.op_energy(FpuType::kAdd, v), m.op_energy(FpuType::kFp2Int, v));
}

INSTANTIATE_TEST_SUITE_P(Voltages, UnitEnergyOrdering,
                         ::testing::Values(0.9, 0.84, 0.8));

} // namespace
} // namespace tmemo
