// R8 fixture: injector RNG streams seeded from literals / ad-hoc constants
// instead of a value derived from the device or campaign seed. Both
// constructions satisfy R6 (an explicit argument is present) but break the
// injection-seeding invariant.
#include <cstdint>

struct Xorshift128 {
  explicit Xorshift128(std::uint64_t s) : state(s) {}
  std::uint64_t state;
};

struct NoiseInjector {
  Xorshift128 rng{12345};  // literal seed: not derived, flagged
};

inline std::uint64_t injector_checksum() {
  Xorshift128 scratch(0xdeadbeefull);  // ad-hoc constant, flagged
  NoiseInjector inj;
  return scratch.state + inj.rng.state;
}
