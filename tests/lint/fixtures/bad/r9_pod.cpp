// Bad fixture for R9 (pod-protocol): structs crossing the write_pod /
// read_pod wire with padding, ABI-dependent widths, unchartable fields or
// missing layout guards. Expected: 6 findings, 1 suppressed.
#include <cstdint>
#include <ostream>
#include <string>
#include <type_traits>

#include "common/pod_io.hpp"

namespace fixture {

// Written whole with 7 natural-alignment padding bytes and no layout
// guard: padding finding + missing-guard finding.
struct PaddedFrame {
  std::uint8_t type = 0;
  std::uint64_t job = 0;
};

// Serialized field-wise with an ABI-dependent `long` and no guard:
// fixed-width finding + missing-guard finding.
struct LooseHeader {
  long count = 0;
  std::uint32_t id = 0;
};

// Unchartable field (std::string is not a fixed-width scalar) and no
// guard: unchartable finding + missing-guard finding.
struct NameFrame {
  std::string name;
  std::uint32_t salt = 0;
};

// Clean: fixed-width, padding-free, guarded. No findings.
struct GoodFrame {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};
static_assert(std::is_trivially_copyable_v<GoodFrame> &&
                  sizeof(GoodFrame) == 8,
              "pod_io wire layout");

// Guarded but ABI-dependent, with the finding suppressed on the
// definition line: 1 suppressed.
struct TickHeader {  // tmemo-lint: allow(pod-protocol)
  long ticks = 0;
};
static_assert(std::is_trivially_copyable_v<TickHeader> &&
                  sizeof(TickHeader) == 8,
              "pod_io wire layout");

inline void ship(std::ostream& os, const PaddedFrame& pf,
                 const LooseHeader& lh, const NameFrame& nf,
                 const GoodFrame& gf, const TickHeader& th) {
  tmemo::write_pod(os, pf);
  tmemo::write_pod(os, lh.count);
  tmemo::write_pod(os, nf.salt);
  tmemo::write_pod(os, gf);
  tmemo::write_pod(os, th.ticks);
}

} // namespace fixture
