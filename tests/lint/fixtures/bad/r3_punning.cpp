// Bad fixture for R3: reinterpret_cast punning outside the sanctioned
// write_pod/read_pod serialization helpers — 2 findings total.
#include <cstdint>

namespace fixture {

std::uint32_t bits_of(const float& f) {
  return *reinterpret_cast<const std::uint32_t*>(&f);  // finding 1
}

void poke(char* dst, double v) {
  *reinterpret_cast<double*>(dst) = v;  // finding 2
}

} // namespace fixture
