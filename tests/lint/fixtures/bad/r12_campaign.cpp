// Bad fixture for R12 (campaign-determinism): job lambdas handed to worker
// sinks mutating by-reference-captured shared state without a guard.
// Expected: 4 findings, 1 suppressed.
#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace fixture {

class CampaignEngine;  // engages the rule

inline void run(std::vector<int>& shared, int& total, std::mutex& m,
                int& slot, std::string& log, std::atomic<long>& hits,
                std::vector<std::thread>& pool) {
  // Explicit by-ref captures, unguarded mutations: 2 findings.
  pool.emplace_back([&shared, &total, &m, &slot]() {
    shared.push_back(1);
    total += 1;
    {
      std::lock_guard<std::mutex> g(m);
      slot = 3;  // guarded in the same block: clean
    }
  });

  // Default [&] capture mutating an outer variable: 1 finding.
  int counter = 0;
  pool.emplace_back([&] { counter++; });

  // Atomic RMW is the sanctioned form: clean.
  pool.emplace_back([&hits]() { hits.fetch_add(1); });

  // Bound first, handed to the sink later: still a job lambda, 1 finding.
  auto job = [&total]() { total = 7; };
  pool.emplace_back(job);

  // Suppressed mutation: 1 suppressed.
  pool.emplace_back([&log]() {
    log.append("x");  // tmemo-lint: allow(campaign-determinism)
  });
}

} // namespace fixture
