// Bad fixture for R13 (float-equality): ==/!= on floating-point operands
// outside src/memo/match.*. Expected: 4 findings, 1 suppressed.
#include <cmath>
#include <cstddef>

namespace fixture {

bool literal_eq(int x) { return x == 3.0; }    // float literal rhs: 1
bool literal_ne(int x) { return x != 2.0f; }   // float literal rhs: 1

bool param_eq(float a, float b) { return a == b; }  // declared floats: 1

bool local_ne(double x) {
  double y = x * 2.0;
  return y != x;  // declared floats: 1
}

bool pointer_ok(const float* p) { return p != nullptr; }  // pointer: clean

// `n` here is a size_t; the float `n` below is scoped to its own function
// and must not taint this comparison: clean.
bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }
inline float half(int length) {
  const float n = static_cast<float>(length);
  return n / 2.0f;
}

bool epsilon_ok(float a, float b) { return std::fabs(a - b) < 1e-6f; }

bool suppressed_eq(float a) {
  return a == 0.0f;  // tmemo-lint: allow(float-equality)
}

} // namespace fixture
