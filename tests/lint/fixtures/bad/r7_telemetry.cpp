// Bad fixture for R7: telemetry instruments constructed directly instead
// of being obtained from a MetricRegistry — 3 findings total. The rule
// engages because the file names the telemetry namespace.
#include <memory>

namespace tmemo::telemetry {
class Counter;
class Gauge;
class Histogram;
struct HistogramSpec;
} // namespace tmemo::telemetry

namespace fixture {

using namespace tmemo::telemetry;

void record_by_hand(const HistogramSpec& spec) {
  Counter ops;                                   // finding 1: value decl
  auto lat = std::make_unique<Histogram>(spec);  // finding 2: heap alloc
  (void)ops;
  (void)lat;
  (void)Gauge{};  // finding 3: temporary
}

// NOT flagged: references and pointers bind to registry-owned instruments.
void use_registry(Counter& hits, Gauge* depth) {
  (void)hits;
  (void)depth;
}

} // namespace fixture
