// Bad fixture for the R10 (syscall-discipline) socket extension: the rule
// engages on src/net/ paths and covers the TCP fabric's syscalls. Expected:
// 9 findings, 1 suppressed.
#include <cerrno>

extern "C" {
int socket(int, int, int);
int listen(int, int);
int accept(int, void*, unsigned*);
int connect(int, const void*, unsigned);
long send(int, const void*, unsigned long, int);
long recv(int, void*, unsigned long, int);
int setsockopt(int, int, int, const void*, unsigned);
}

namespace fixture {

// Discarded ::listen result: 1 finding.
void bad_listen(int fd) {
  ::listen(fd, 16);
}

// ::connect checked but the function never consults EINTR: 1 finding.
int bad_connect(int fd, const void* addr, unsigned len) {
  const int rc = ::connect(fd, addr, len);
  return rc == 0 ? fd : -1;
}

// ::accept checked but no EINTR retry: 1 finding.
int bad_accept(int fd) {
  const int peer = ::accept(fd, nullptr, nullptr);
  return peer;
}

// Discarded ::recv result, and no EINTR consultation: 2 findings.
void bad_recv(int fd, char* buf, unsigned long n) {
  ::recv(fd, buf, n, 0);
}

// Checked result, EINTR retry loop: clean.
long good_send(int fd, const char* buf, unsigned long n) {
  long rc = -1;
  do {
    rc = ::send(fd, buf, n, 0);
  } while (rc == -1 && errno == EINTR);
  return rc;
}

// Checked, not interruptible: clean.
int good_socket() {
  const int fd = ::socket(2, 1, 0);
  return fd;
}

// Discarded ::setsockopt, suppressed on the line: 1 suppressed.
void suppressed_setsockopt(int fd, int one) {
  ::setsockopt(fd, 1, 2, &one, sizeof one);  // tmemo-lint: allow(syscall-discipline)
}

} // namespace fixture

// -- Reconnect-fabric extensions (PR 9) --------------------------------------

extern "C" {
int poll(void*, unsigned long, int);
int getsockopt(int, int, int, void*, unsigned*);
int shutdown(int, int);
}

namespace fixture {

// Discarded ::poll result, and poll is interruptible with no EINTR
// consultation in scope: 2 findings.
void bad_poll(void* pfd) {
  ::poll(pfd, 1, 100);
}

// Discarded ::getsockopt result (the nonblocking-connect SO_ERROR probe
// must be checked or a failed dial reads as a success): 1 finding.
void bad_getsockopt(int fd, int* so_error, unsigned* len) {
  ::getsockopt(fd, 1, 4, so_error, len);
}

// Discarded ::shutdown result: 1 finding.
void bad_shutdown(int fd) {
  ::shutdown(fd, 2);
}

} // namespace fixture
