// Bad fixture for R10 (syscall-discipline): discarded supervisor syscall
// results and interruptible calls with no EINTR retry. The path contains
// "worker_proc" so the rule engages. Expected: 4 findings, 1 suppressed.
#include <cerrno>

extern "C" {
long write(int, const void*, unsigned long);
int fork();
int waitpid(int, int*, int);
long read(int, void*, unsigned long);
int fcntl(int, int, ...);
}

namespace fixture {

// Discarded ::write result + no EINTR consultation: 2 findings.
int bad_dispatch(int fd, const char* buf, unsigned long n) {
  ::write(fd, buf, n);
  const int rc = ::fork();  // checked, not interruptible: clean
  return rc;
}

// Discarded ::waitpid result + no EINTR consultation: 2 findings.
int bad_reap(int pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
  return status;
}

// Checked result, EINTR retry loop: clean.
long good_read(int fd, char* buf, unsigned long n) {
  long rc = -1;
  do {
    rc = ::read(fd, buf, n);
  } while (rc == -1 && errno == EINTR);
  return rc;
}

// Discarded ::fcntl, suppressed on the line: 1 suppressed.
void suppressed_fcntl(int fd) {
  ::fcntl(fd, 0);  // tmemo-lint: allow(syscall-discipline)
}

} // namespace fixture
