// Bad fixture for R4 (placed under a src/fpu/ path on purpose): an
// execute path that computes a result via evaluate_fp_op but never
// reaches the energy accounting sink — 1 finding total.
namespace fixture {

struct FpInstruction {};
float evaluate_fp_op(const FpInstruction& ins);

float execute_unaccounted(const FpInstruction& ins) {
  return evaluate_fp_op(ins);  // the finding anchors at the function name
}

// NOT flagged: the result reaches a sink via consume().
struct Sink {
  void consume(float v);
};
float execute_accounted(const FpInstruction& ins, Sink& sink) {
  const float r = evaluate_fp_op(ins);
  sink.consume(r);
  return r;
}

} // namespace fixture
