// R14 bad fixture: bare ofstream writes landing in place at final
// artifact paths (no temp → fsync → rename commit).
#include <fstream>
#include <string>

void write_grid(const std::string& path) {
  std::ofstream out(path);
  out << "kernel,hit_rate\n";
}

void write_report(const std::string& path) {
  std::ofstream(path) << "{}\n";
}

void write_table(const std::string& path) {
  std::ofstream sink;
  sink.open(path);
  sink << "done\n";
}

void write_scratch(const std::string& path) {
  // Self-invalidating scratch output: a torn copy is discarded on load.
  std::ofstream tmp(path); // tmemo-lint: allow(artifact-durability)
  tmp << "scratch\n";
}
