// Bad fixture for R2: a CSV-writing file iterating unordered containers —
// 3 findings total.
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

std::string write_csv_row(
    const std::unordered_map<std::string, double>& cells) {
  std::string csv;
  for (const auto& [k, v] : cells) {  // finding 1: range-for over tracked var
    csv += k;
    (void)v;
  }
  for (auto it = cells.begin(); it != cells.end(); ++it) {  // finding 2
    csv += it->first;
  }
  return csv;
}

int sum_json_keys() {
  int n = 0;
  for (int v : std::unordered_set<int>{1, 2, 3}) {  // finding 3: direct type
    n += v;
  }
  return n;
}

} // namespace fixture
