// Bad fixture for R1 (nondeterminism): every construct below must be
// flagged exactly once — 5 findings total.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

int noisy_draw() {
  std::srand(42);      // finding 1
  return std::rand();  // finding 2
}

long stamp() {
  return time(nullptr);  // finding 3
}

unsigned os_entropy() {
  std::random_device rd;  // finding 4
  return rd();
}

double sim_time_ms() {
  const auto t = std::chrono::steady_clock::now();  // finding 5
  return std::chrono::duration<double, std::milli>(t.time_since_epoch())
      .count();
}

// NOT flagged: ::now() confined to a wall-clock helper.
std::chrono::steady_clock::time_point wall_now() {
  return std::chrono::steady_clock::now();
}

} // namespace fixture
