// Bad fixture for R5: every mention of a deprecated run_at_* wrapper is
// flagged (declarations and call sites alike) — 4 findings total.
namespace fixture {

struct Report {};
struct Simulation {
  Report run_at_error_rate(double rate);  // finding 1
  Report run_at_voltage(double vdd);      // finding 2
};

Report sweep(Simulation& sim) {
  (void)sim.run_at_error_rate(0.01);  // finding 3
  return sim.run_at_voltage(0.85);    // finding 4
}

} // namespace fixture
