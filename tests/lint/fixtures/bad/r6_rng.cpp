// Bad fixture for R6: RNG constructions without an explicit seed —
// 4 findings total.
#include <random>

namespace fixture {

struct Xorshift128 {
  explicit Xorshift128(unsigned long long seed);
};

int draw() {
  Xorshift128 local;       // finding 1: bare default-constructed local
  std::mt19937 gen;        // finding 2
  std::mt19937_64 wide{};  // finding 3: empty brace init
  (void)local;
  (void)gen;
  (void)wide;
  return 0;
}

unsigned token() {
  return std::mt19937()();  // finding 4: unseeded temporary
}

// NOT flagged: explicit seed expressions.
unsigned seeded(unsigned long long seed) {
  std::mt19937 gen(1234u);
  Xorshift128 rng{seed};
  (void)rng;
  return gen();
}

} // namespace fixture
