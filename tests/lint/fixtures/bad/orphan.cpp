// Bad fixture for the meta rule: suppressions that silence nothing are
// themselves findings — 2 findings total.
namespace fixture {

int clean_line() { // tmemo-lint: allow(nondeterminism)
  return 42;       // known rule, but no finding on that line
}

int unknown_rule() { // tmemo-lint: allow(no-such-rule)
  return 7;
}

} // namespace fixture
