// Bad fixture for R11 (probe-cost): allocation, I/O and mutation inside
// TMEMO_TELEM argument lists. Expected: 4 findings, 1 suppressed.
#include <iostream>
#include <string>

#define TMEMO_TELEM(...) (void)0

namespace fixture {

struct HitStats {
  long hits = 0;
};

inline void probes(HitStats& s, int x) {
  TMEMO_TELEM("memo.hits", s.hits + 1);             // pure read: clean
  TMEMO_TELEM("memo.hits", s.hits++);               // mutation: 1 finding
  TMEMO_TELEM("memo.name", std::to_string(x));      // formatting: 1 finding
  TMEMO_TELEM("memo.log", std::cout << x);          // stream I/O: 1 finding
  TMEMO_TELEM("memo.buf", new int[4]);              // allocation: 1 finding
  TMEMO_TELEM("memo.delta", x - 1);                 // arithmetic: clean
  TMEMO_TELEM("memo.sup", x--);  // tmemo-lint: allow(probe-cost)
}

} // namespace fixture
