// Good fixture: the sanctioned forms of every pattern R1-R6 police, plus
// one justified suppression. Expected: 0 findings, 1 suppressed.
#include <chrono>
#include <cstdint>
#include <cstring>
#include <map>
#include <random>
#include <string>
#include <unordered_map>

namespace fixture {

// R1: wall-clock reads confined to a helper whose name says so.
std::chrono::steady_clock::time_point wall_now() {
  return std::chrono::steady_clock::now();
}

// R1 with a justified, working suppression on the offending line.
inline long ticks() {
  return std::chrono::steady_clock::now() // tmemo-lint: allow(nondeterminism)
      .time_since_epoch()
      .count();
}

// R3: the sanctioned serialization helper names.
template <typename T>
void write_pod(std::string& out, const T& v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
void read_pod(const char* in, T& v) {
  std::memcpy(&v, reinterpret_cast<const void*>(in), sizeof v);
}

// R2: ordered iteration in a CSV writer; unordered lookup (no iteration)
// is fine.
std::string csv_cells(const std::map<std::string, double>& cells,
                      const std::unordered_map<std::string, int>& index) {
  std::string csv;
  for (const auto& [k, v] : cells) {
    csv += k;
    (void)v;
  }
  return csv + std::to_string(index.at("rows"));
}

// R6: explicitly seeded RNG streams.
inline std::uint64_t seeded_draw(std::uint64_t seed) {
  std::mt19937_64 gen(seed);
  return gen();
}

} // namespace fixture
