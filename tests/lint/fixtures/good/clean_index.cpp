// Good fixture for the cross-file rules R9-R13: the sanctioned form of
// every pattern they police. Expected: 0 findings, 0 suppressed.
#include <atomic>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/pod_io.hpp"

#define TMEMO_TELEM(...) (void)0

namespace fixture {

class CampaignEngine;

// R9: fixed-width, padding-free, layout-guarded wire struct.
struct ResultFrame {
  std::uint64_t job = 0;
  std::uint32_t status = 0;
  std::uint32_t reserved = 0;
};
static_assert(std::is_trivially_copyable_v<ResultFrame> &&
                  sizeof(ResultFrame) == 16,
              "pod_io wire layout");

inline void ship(std::ostream& os, const ResultFrame& rf) {
  tmemo::write_pod(os, rf);
}

// R11: probe arguments limited to casts, loads and arithmetic.
inline void probe(long hits, long misses) {
  TMEMO_TELEM("memo.hit_rate", hits, hits + misses);
}

// R12: job lambdas either mutate through atomics or hold a lock in the
// block that mutates.
inline void fan_out(std::atomic<long>& done, std::mutex& m, long& total,
                    std::vector<std::thread>& pool) {
  pool.emplace_back([&done]() { done.fetch_add(1); });
  pool.emplace_back([&m, &total]() {
    std::lock_guard<std::mutex> g(m);
    total += 1;
  });
}

// R13: epsilon comparison instead of operator==.
inline bool close_enough(float a, float b) {
  return std::fabs(a - b) < 1e-6f;
}

} // namespace fixture
