// Self-tests for tmemo_lint: exact finding counts against checked-in
// fixtures (one bad fixture per rule R1-R8 plus the orphan-suppression
// meta rule), CLI exit codes, JSON rendering, and a cleanliness gate over
// the real src/, tools/ and bench/ trees.
//
// TM_LINT_FIXTURE_DIR and TM_LINT_REPO_ROOT are injected by CMake.
#include "runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

namespace tmemo::lint {
namespace {

std::string fixture(const std::string& rel) {
  return std::string(TM_LINT_FIXTURE_DIR) + "/" + rel;
}

std::size_t count_rule(const LintReport& r, const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(r.findings.begin(), r.findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

// -- Per-rule bad fixtures ---------------------------------------------------

TEST(LintRules, R1FlagsEveryNondeterminismSource) {
  const LintReport r = run_lint({fixture("bad/r1_nondeterminism.cpp")});
  EXPECT_EQ(r.findings.size(), 5u);
  EXPECT_EQ(count_rule(r, "nondeterminism"), 5u);
  EXPECT_EQ(r.suppressed, 0u);
  EXPECT_EQ(exit_code(r), 1);
}

TEST(LintRules, R2FlagsUnorderedIterationInResultWriters) {
  const LintReport r = run_lint({fixture("bad/r2_unordered_csv.cpp")});
  EXPECT_EQ(r.findings.size(), 3u);
  EXPECT_EQ(count_rule(r, "unordered-iteration"), 3u);
}

TEST(LintRules, R3FlagsPunningOutsidePodHelpers) {
  const LintReport r = run_lint({fixture("bad/r3_punning.cpp")});
  EXPECT_EQ(r.findings.size(), 2u);
  EXPECT_EQ(count_rule(r, "type-punning"), 2u);
}

TEST(LintRules, R4FlagsExecutePathsThatNeverChargeEnergy) {
  const LintReport r = run_lint({fixture("bad/src/fpu/r4_energy.cpp")});
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "energy-pairing");
  EXPECT_NE(r.findings[0].message.find("execute_unaccounted"),
            std::string::npos);
}

TEST(LintRules, R5FlagsEveryDeprecatedWrapperMention) {
  const LintReport r = run_lint({fixture("bad/r5_deprecated.cpp")});
  EXPECT_EQ(r.findings.size(), 4u);
  EXPECT_EQ(count_rule(r, "deprecated-run-api"), 4u);
}

TEST(LintRules, R6FlagsUnseededRngConstruction) {
  const LintReport r = run_lint({fixture("bad/r6_rng.cpp")});
  EXPECT_EQ(r.findings.size(), 4u);
  EXPECT_EQ(count_rule(r, "rng-seed"), 4u);
}

TEST(LintRules, R7FlagsDirectInstrumentConstruction) {
  const LintReport r = run_lint({fixture("bad/r7_telemetry.cpp")});
  EXPECT_EQ(r.findings.size(), 3u);
  EXPECT_EQ(count_rule(r, "telemetry-registry"), 3u);
}

TEST(LintRules, R8FlagsUnderivedInjectorSeeds) {
  const LintReport r = run_lint({fixture("bad/r8_injector.cpp")});
  EXPECT_EQ(r.findings.size(), 2u);
  EXPECT_EQ(count_rule(r, "injection-seeding"), 2u);
  EXPECT_NE(r.findings[0].message.find("derive_fault_seed"),
            std::string::npos);
}

TEST(LintRules, OrphanAndUnknownSuppressionsAreFindings) {
  const LintReport r = run_lint({fixture("bad/orphan.cpp")});
  ASSERT_EQ(r.findings.size(), 2u);
  EXPECT_EQ(count_rule(r, "orphan-suppression"), 2u);
  EXPECT_NE(r.findings[0].message.find("matches no finding"),
            std::string::npos);
  EXPECT_NE(r.findings[1].message.find("no-such-rule"), std::string::npos);
}

// -- Good fixture and suppression accounting ---------------------------------

TEST(LintRules, GoodFixtureIsCleanWithOneJustifiedSuppression) {
  const LintReport r = run_lint({fixture("good/clean.cpp")});
  EXPECT_TRUE(r.findings.empty())
      << "unexpected: " << r.findings[0].rule << " at line "
      << r.findings[0].line;
  EXPECT_EQ(r.suppressed, 1u);
  EXPECT_EQ(exit_code(r), 0);
}

TEST(LintRules, WholeBadTreeCountsAreStable) {
  const LintReport r = run_lint({fixture("bad")});
  // 5 (R1) + 3 (R2) + 2 (R3) + 1 (R4) + 4 (R5) + 4 (R6) + 3 (R7)
  // + 2 (R8) + 2 (orphans).
  EXPECT_EQ(r.findings.size(), 26u);
  EXPECT_EQ(r.files_scanned, 9u);
  // Findings come out sorted by (path, line, col, rule).
  EXPECT_TRUE(std::is_sorted(
      r.findings.begin(), r.findings.end(),
      [](const Finding& a, const Finding& b) {
        return std::tie(a.path, a.line, a.col, a.rule) <
               std::tie(b.path, b.line, b.col, b.rule);
      }));
}

// -- CLI behaviour -----------------------------------------------------------

TEST(LintCli, ExitCodesMatchContract) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({fixture("good/clean.cpp")}, out, err), 0);
  EXPECT_EQ(run_cli({fixture("bad")}, out, err), 1);
  EXPECT_EQ(run_cli({"--bogus-flag"}, out, err), 2);
  EXPECT_EQ(run_cli({fixture("no/such/path.cpp")}, out, err), 2);
  EXPECT_EQ(run_cli({}, out, err), 2);
}

TEST(LintCli, TextReportCarriesSummaryLine) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({fixture("bad/r3_punning.cpp")}, out, err), 1);
  const std::string text = out.str();
  EXPECT_NE(text.find("[type-punning]"), std::string::npos);
  EXPECT_NE(text.find("2 finding(s), 0 suppressed, 1 file(s) scanned"),
            std::string::npos);
}

TEST(LintCli, JsonReportIsWellFormedEnough) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"--json", fixture("bad/r3_punning.cpp")}, out, err), 1);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"tool\": \"tmemo-lint\""), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"type-punning\""), std::string::npos);
}

TEST(LintCli, ListRulesNamesAllEight) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"--list-rules"}, out, err), 0);
  const std::string text = out.str();
  for (const char* rule :
       {"nondeterminism", "unordered-iteration", "type-punning",
        "energy-pairing", "deprecated-run-api", "rng-seed",
        "telemetry-registry", "injection-seeding", "orphan-suppression"}) {
    EXPECT_NE(text.find(rule), std::string::npos) << rule;
  }
}

// -- The real tree must stay clean -------------------------------------------

TEST(LintRepo, SrcToolsBenchAreCleanUnderAllRules) {
  const std::string root(TM_LINT_REPO_ROOT);
  const LintReport r =
      run_lint({root + "/src", root + "/tools", root + "/bench"});
  std::ostringstream why;
  write_text(r, why);
  EXPECT_TRUE(r.findings.empty()) << why.str();
  // The one justified suppression documented in docs/STATIC_ANALYSIS.md:
  // FpuPipeline::issue (energy-pairing). The two deprecated run_at_*
  // suppressions disappeared with the wrappers themselves.
  EXPECT_EQ(r.suppressed, 1u);
  EXPECT_GT(r.files_scanned, 100u);
}

} // namespace
} // namespace tmemo::lint
