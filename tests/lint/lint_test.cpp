// Self-tests for tmemo_lint: exact finding counts against checked-in
// fixtures (one bad fixture per rule R1-R14 plus the orphan-suppression
// meta rule), baseline/budget enforcement, the incremental cache, SARIF
// structural validation against the 2.1.0 shape plus a golden report, CLI
// exit codes, JSON rendering, and a cleanliness gate over the real src/,
// tools/ and bench/ trees.
//
// TM_LINT_FIXTURE_DIR and TM_LINT_REPO_ROOT are injected by CMake.
#include "runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

namespace tmemo::lint {
namespace {

std::string fixture(const std::string& rel) {
  return std::string(TM_LINT_FIXTURE_DIR) + "/" + rel;
}

std::size_t count_rule(const LintReport& r, const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(r.findings.begin(), r.findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

// -- Per-rule bad fixtures ---------------------------------------------------

TEST(LintRules, R1FlagsEveryNondeterminismSource) {
  const LintReport r = run_lint({fixture("bad/r1_nondeterminism.cpp")});
  EXPECT_EQ(r.findings.size(), 5u);
  EXPECT_EQ(count_rule(r, "nondeterminism"), 5u);
  EXPECT_EQ(r.suppressed, 0u);
  EXPECT_EQ(exit_code(r), 1);
}

TEST(LintRules, R2FlagsUnorderedIterationInResultWriters) {
  const LintReport r = run_lint({fixture("bad/r2_unordered_csv.cpp")});
  EXPECT_EQ(r.findings.size(), 3u);
  EXPECT_EQ(count_rule(r, "unordered-iteration"), 3u);
}

TEST(LintRules, R3FlagsPunningOutsidePodHelpers) {
  const LintReport r = run_lint({fixture("bad/r3_punning.cpp")});
  EXPECT_EQ(r.findings.size(), 2u);
  EXPECT_EQ(count_rule(r, "type-punning"), 2u);
}

TEST(LintRules, R4FlagsExecutePathsThatNeverChargeEnergy) {
  const LintReport r = run_lint({fixture("bad/src/fpu/r4_energy.cpp")});
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "energy-pairing");
  EXPECT_NE(r.findings[0].message.find("execute_unaccounted"),
            std::string::npos);
}

TEST(LintRules, R5FlagsEveryDeprecatedWrapperMention) {
  const LintReport r = run_lint({fixture("bad/r5_deprecated.cpp")});
  EXPECT_EQ(r.findings.size(), 4u);
  EXPECT_EQ(count_rule(r, "deprecated-run-api"), 4u);
}

TEST(LintRules, R6FlagsUnseededRngConstruction) {
  const LintReport r = run_lint({fixture("bad/r6_rng.cpp")});
  EXPECT_EQ(r.findings.size(), 4u);
  EXPECT_EQ(count_rule(r, "rng-seed"), 4u);
}

TEST(LintRules, R7FlagsDirectInstrumentConstruction) {
  const LintReport r = run_lint({fixture("bad/r7_telemetry.cpp")});
  EXPECT_EQ(r.findings.size(), 3u);
  EXPECT_EQ(count_rule(r, "telemetry-registry"), 3u);
}

TEST(LintRules, R8FlagsUnderivedInjectorSeeds) {
  const LintReport r = run_lint({fixture("bad/r8_injector.cpp")});
  EXPECT_EQ(r.findings.size(), 2u);
  EXPECT_EQ(count_rule(r, "injection-seeding"), 2u);
  EXPECT_NE(r.findings[0].message.find("derive_fault_seed"),
            std::string::npos);
}

TEST(LintRules, R14FlagsBareOfstreamArtifactWrites) {
  const LintReport r = run_lint({fixture("bad/r14_ofstream.cpp")});
  EXPECT_EQ(r.findings.size(), 3u);
  EXPECT_EQ(count_rule(r, "artifact-durability"), 3u);
  EXPECT_EQ(r.suppressed, 1u);
  EXPECT_NE(r.findings[0].message.find("AtomicFileWriter"),
            std::string::npos);
}

TEST(LintRules, OrphanAndUnknownSuppressionsAreFindings) {
  const LintReport r = run_lint({fixture("bad/orphan.cpp")});
  ASSERT_EQ(r.findings.size(), 2u);
  EXPECT_EQ(count_rule(r, "orphan-suppression"), 2u);
  EXPECT_NE(r.findings[0].message.find("matches no finding"),
            std::string::npos);
  EXPECT_NE(r.findings[1].message.find("no-such-rule"), std::string::npos);
}

// -- Cross-file rules R9-R13 -------------------------------------------------

TEST(LintRules, R9FlagsEveryUnsafeWireStructShape) {
  const LintReport r = run_lint({fixture("bad/r9_pod.cpp")});
  EXPECT_EQ(r.findings.size(), 6u);
  EXPECT_EQ(count_rule(r, "pod-protocol"), 6u);
  EXPECT_EQ(r.suppressed, 1u);
  // The missing-guard diagnostic carries paste-ready static_assert text
  // with the computed wire size.
  bool saw_guard_text = false;
  for (const Finding& f : r.findings) {
    if (f.message.find("static_assert(std::is_trivially_copyable_v<"
                       "PaddedFrame> && sizeof(PaddedFrame) == 16, "
                       "\"pod_io wire layout\");") != std::string::npos) {
      saw_guard_text = true;
    }
  }
  EXPECT_TRUE(saw_guard_text);
}

TEST(LintRules, R10FlagsDiscardedAndEintrNakedSyscalls) {
  const LintReport r =
      run_lint({fixture("bad/src/sim/r10_worker_proc.cpp")});
  EXPECT_EQ(r.findings.size(), 4u);
  EXPECT_EQ(count_rule(r, "syscall-discipline"), 4u);
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(LintRules, R10CoversSocketSyscallsUnderSrcNet) {
  const LintReport r = run_lint({fixture("bad/src/net/r10_socket.cpp")});
  EXPECT_EQ(r.findings.size(), 9u);
  EXPECT_EQ(count_rule(r, "syscall-discipline"), 9u);
  EXPECT_EQ(r.suppressed, 1u);
  // accept/connect/send/recv are interruptible: the EINTR diagnostic must
  // fire for them, not just the discarded-result one.
  bool saw_eintr_diag = false;
  for (const Finding& f : r.findings) {
    if (f.message.find("EINTR") != std::string::npos) saw_eintr_diag = true;
  }
  EXPECT_TRUE(saw_eintr_diag);
}

TEST(LintRules, R11FlagsCostlyProbeArguments) {
  const LintReport r = run_lint({fixture("bad/r11_probe.cpp")});
  EXPECT_EQ(r.findings.size(), 4u);
  EXPECT_EQ(count_rule(r, "probe-cost"), 4u);
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(LintRules, R12FlagsUnguardedSharedMutationInJobLambdas) {
  const LintReport r = run_lint({fixture("bad/r12_campaign.cpp")});
  EXPECT_EQ(r.findings.size(), 4u);
  EXPECT_EQ(count_rule(r, "campaign-determinism"), 4u);
  EXPECT_EQ(r.suppressed, 1u);
}

TEST(LintRules, R13FlagsFloatEqualityOutsideTheMatcher) {
  const LintReport r = run_lint({fixture("bad/r13_float.cpp")});
  EXPECT_EQ(r.findings.size(), 4u);
  EXPECT_EQ(count_rule(r, "float-equality"), 4u);
  EXPECT_EQ(r.suppressed, 1u);
}

// -- Good fixtures and suppression accounting --------------------------------

TEST(LintRules, GoodFixtureIsCleanWithOneJustifiedSuppression) {
  const LintReport r = run_lint({fixture("good/clean.cpp")});
  EXPECT_TRUE(r.findings.empty())
      << "unexpected: " << r.findings[0].rule << " at line "
      << r.findings[0].line;
  EXPECT_EQ(r.suppressed, 1u);
  EXPECT_EQ(exit_code(r), 0);
}

TEST(LintRules, IndexRuleGoodFixtureIsFullyClean) {
  const LintReport r = run_lint({fixture("good/clean_index.cpp")});
  EXPECT_TRUE(r.findings.empty())
      << "unexpected: " << r.findings[0].rule << " at line "
      << r.findings[0].line << ": " << r.findings[0].message;
  EXPECT_EQ(r.suppressed, 0u);
  EXPECT_EQ(exit_code(r), 0);
}

TEST(LintRules, WholeBadTreeCountsAreStable) {
  const LintReport r = run_lint({fixture("bad")});
  // 5 (R1) + 3 (R2) + 2 (R3) + 1 (R4) + 4 (R5) + 4 (R6) + 3 (R7)
  // + 2 (R8) + 6 (R9) + 4 (R10 pipe) + 9 (R10 socket) + 4 (R11)
  // + 4 (R12) + 4 (R13) + 3 (R14) + 2 (orphans).
  EXPECT_EQ(r.findings.size(), 60u);
  EXPECT_EQ(r.files_scanned, 16u);
  // One justified suppression per R9-R13 plus the socket fixture's and
  // the R14 fixture's.
  EXPECT_EQ(r.suppressed, 7u);
  // Findings come out sorted by (path, line, col, rule).
  EXPECT_TRUE(std::is_sorted(
      r.findings.begin(), r.findings.end(),
      [](const Finding& a, const Finding& b) {
        return std::tie(a.path, a.line, a.col, a.rule) <
               std::tie(b.path, b.line, b.col, b.rule);
      }));
}

// -- Baseline / suppression-budget enforcement -------------------------------

TEST(LintBaseline, MatchingBaselinePassesCleanly) {
  LintOptions opt;
  opt.paths = {fixture("good/clean.cpp")};
  opt.baseline_path = fixture("baselines/clean_ok.txt");
  const LintReport r = run_lint(opt);
  EXPECT_TRUE(r.findings.empty())
      << r.findings[0].rule << ": " << r.findings[0].message;
  EXPECT_EQ(r.suppressed, 1u);
  EXPECT_EQ(exit_code(r), 0);
}

TEST(LintBaseline, UncoveredSuppressionSiteIsAFinding) {
  LintOptions opt;
  opt.paths = {fixture("good/clean.cpp")};
  opt.baseline_path = fixture("baselines/empty.txt");
  const LintReport r = run_lint(opt);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "unbaselined-suppression");
  EXPECT_NE(r.findings[0].message.find("'nondeterminism'"),
            std::string::npos);
  EXPECT_EQ(exit_code(r), 1);
}

TEST(LintBaseline, StaleEntriesAreFindingsOnlyForScannedFiles) {
  LintOptions opt;
  opt.paths = {fixture("good/clean.cpp")};
  opt.baseline_path = fixture("baselines/stale.txt");
  const LintReport r = run_lint(opt);
  // The rng-seed entry for the scanned file is stale; the entry for
  // bad/never_scanned.cpp is outside the scan and must stay silent so
  // pre-commit subset scans remain usable.
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "stale-baseline");
  EXPECT_NE(r.findings[0].message.find("'rng-seed'"), std::string::npos);
}

TEST(LintBaseline, BudgetOverrunIsAFinding) {
  LintOptions opt;
  opt.paths = {fixture("good/clean.cpp")};
  opt.baseline_path = fixture("baselines/over_budget.txt");
  const LintReport r = run_lint(opt);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "suppression-budget");
  EXPECT_NE(r.findings[0].message.find("budget of 0"), std::string::npos);
}

TEST(LintBaseline, MalformedBaselineIsAUsageError) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"--baseline=" + fixture("baselines/malformed.txt"),
                     fixture("good/clean.cpp")},
                    out, err),
            2);
  EXPECT_NE(err.str().find("unknown directive"), std::string::npos);
}

// -- Incremental cache -------------------------------------------------------

TEST(LintCache, WarmRunReplaysIdenticalResults) {
  const std::string cache =
      testing::TempDir() + "/tmemo_lint_cache_selftest.bin";
  std::remove(cache.c_str());
  LintOptions opt;
  opt.paths = {fixture("bad")};
  opt.cache_path = cache;
  const LintReport cold = run_lint(opt);
  const LintReport warm = run_lint(opt);
  EXPECT_EQ(cold.files_scanned, warm.files_scanned);
  EXPECT_EQ(cold.suppressed, warm.suppressed);
  ASSERT_EQ(cold.findings.size(), warm.findings.size());
  for (std::size_t i = 0; i < cold.findings.size(); ++i) {
    EXPECT_EQ(cold.findings[i].rule, warm.findings[i].rule) << i;
    EXPECT_EQ(cold.findings[i].path, warm.findings[i].path) << i;
    EXPECT_EQ(cold.findings[i].line, warm.findings[i].line) << i;
    EXPECT_EQ(cold.findings[i].col, warm.findings[i].col) << i;
    EXPECT_EQ(cold.findings[i].message, warm.findings[i].message) << i;
  }
  std::remove(cache.c_str());
}

// -- SARIF output ------------------------------------------------------------

// Minimal JSON value + recursive-descent parser, enough to validate the
// emitted SARIF structurally (the goal is a real parse, not substring
// matching: malformed escaping or misnesting must fail the test).
struct Json {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  [[nodiscard]] const Json& at(const std::string& key) const {
    const auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return object.count(key) != 0;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Json parse() {
    Json v = value();
    ws();
    if (pos_ != text_.size()) throw std::runtime_error("trailing JSON");
    return v;
  }

 private:
  void ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    }
    ++pos_;
  }
  Json value() {
    ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return keyword("true", [] { Json j; j.kind = Json::kBool;
                                            j.boolean = true; return j; }());
      case 'f': return keyword("false", [] { Json j; j.kind = Json::kBool;
                                             return j; }());
      case 'n': return keyword("null", Json{});
      default: return number();
    }
  }
  Json keyword(const std::string& word, Json result) {
    if (text_.compare(pos_, word.size(), word) != 0) {
      throw std::runtime_error("bad keyword at " + std::to_string(pos_));
    }
    pos_ += word.size();
    return result;
  }
  Json object() {
    expect('{');
    Json j;
    j.kind = Json::kObject;
    ws();
    if (peek() == '}') {
      ++pos_;
      return j;
    }
    while (true) {
      ws();
      Json key = string_value();
      ws();
      expect(':');
      j.object[key.string] = value();
      ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return j;
    }
  }
  Json array() {
    expect('[');
    Json j;
    j.kind = Json::kArray;
    ws();
    if (peek() == ']') {
      ++pos_;
      return j;
    }
    while (true) {
      j.array.push_back(value());
      ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return j;
    }
  }
  Json string_value() {
    expect('"');
    Json j;
    j.kind = Json::kString;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return j;
      if (c != '\\') {
        j.string += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': j.string += '"'; break;
        case '\\': j.string += '\\'; break;
        case '/': j.string += '/'; break;
        case 'n': j.string += '\n'; break;
        case 't': j.string += '\t'; break;
        case 'r': j.string += '\r'; break;
        case 'b': j.string += '\b'; break;
        case 'f': j.string += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            throw std::runtime_error("truncated \\u escape");
          }
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          j.string += static_cast<char>(std::stoi(hex, nullptr, 16));
          break;
        }
        default: throw std::runtime_error("bad escape");
      }
    }
  }
  Json number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("bad JSON value");
    Json j;
    j.kind = Json::kNumber;
    j.number = std::stod(text_.substr(start, pos_ - start));
    return j;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(LintSarif, ReportValidatesAgainstTheSarif210Shape) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"--sarif", fixture("bad")}, out, err), 1);

  const Json doc = JsonParser(out.str()).parse();
  EXPECT_NE(doc.at("$schema").string.find("sarif-2.1.0"),
            std::string::npos);
  EXPECT_EQ(doc.at("version").string, "2.1.0");
  ASSERT_EQ(doc.at("runs").array.size(), 1u);

  const Json& run = doc.at("runs").array[0];
  const Json& driver = run.at("tool").at("driver");
  EXPECT_EQ(driver.at("name").string, "tmemo-lint");
  EXPECT_FALSE(driver.at("version").string.empty());
  EXPECT_EQ(run.at("columnKind").string, "utf16CodeUnits");

  std::vector<std::string> rule_ids;
  for (const Json& rule : driver.at("rules").array) {
    rule_ids.push_back(rule.at("id").string);
    EXPECT_FALSE(rule.at("shortDescription").at("text").string.empty());
  }
  EXPECT_EQ(rule_ids.size(), 18u);  // R1-R14 + 4 meta rules
  for (const char* id :
       {"pod-protocol", "syscall-discipline", "probe-cost",
        "campaign-determinism", "float-equality", "artifact-durability",
        "suppression-budget"}) {
    EXPECT_NE(std::find(rule_ids.begin(), rule_ids.end(), id),
              rule_ids.end())
        << id;
  }

  const Json& results = run.at("results");
  EXPECT_EQ(results.array.size(), 60u);  // matches WholeBadTreeCounts
  for (const Json& res : results.array) {
    EXPECT_NE(std::find(rule_ids.begin(), rule_ids.end(),
                        res.at("ruleId").string),
              rule_ids.end());
    EXPECT_EQ(res.at("level").string, "error");
    EXPECT_FALSE(res.at("message").at("text").string.empty());
    ASSERT_GE(res.at("locations").array.size(), 1u);
    const Json& phys = res.at("locations").array[0].at("physicalLocation");
    EXPECT_FALSE(phys.at("artifactLocation").at("uri").string.empty());
    EXPECT_GE(phys.at("region").at("startLine").number, 1.0);
    EXPECT_GE(phys.at("region").at("startColumn").number, 1.0);
  }
}

TEST(LintSarif, GoldenReportIsStable) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"--sarif", fixture("bad/r3_punning.cpp")}, out, err),
            1);

  std::ifstream is(fixture("golden/r3_punning.sarif"));
  ASSERT_TRUE(is.good());
  std::stringstream golden;
  golden << is.rdbuf();
  std::string expect = golden.str();
  const std::string placeholder = "@FIXTURE_DIR@";
  const std::string dir(TM_LINT_FIXTURE_DIR);
  for (std::size_t p = 0;
       (p = expect.find(placeholder, p)) != std::string::npos;
       p += dir.size()) {
    expect.replace(p, placeholder.size(), dir);
  }
  EXPECT_EQ(out.str(), expect);
}

// -- CLI behaviour -----------------------------------------------------------

TEST(LintCli, ExitCodesMatchContract) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({fixture("good/clean.cpp")}, out, err), 0);
  EXPECT_EQ(run_cli({fixture("bad")}, out, err), 1);
  EXPECT_EQ(run_cli({"--bogus-flag"}, out, err), 2);
  EXPECT_EQ(run_cli({fixture("no/such/path.cpp")}, out, err), 2);
  EXPECT_EQ(run_cli({}, out, err), 2);
}

TEST(LintCli, TextReportCarriesSummaryLine) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({fixture("bad/r3_punning.cpp")}, out, err), 1);
  const std::string text = out.str();
  EXPECT_NE(text.find("[type-punning]"), std::string::npos);
  EXPECT_NE(text.find("2 finding(s), 0 suppressed, 1 file(s) scanned"),
            std::string::npos);
}

TEST(LintCli, JsonReportIsWellFormedEnough) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"--json", fixture("bad/r3_punning.cpp")}, out, err), 1);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"tool\": \"tmemo-lint\""), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"type-punning\""), std::string::npos);
}

TEST(LintCli, OutFlagWritesTheReportToAFile) {
  const std::string path = testing::TempDir() + "/tmemo_lint_out_test.sarif";
  std::remove(path.c_str());
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"--sarif", "--out=" + path, fixture("good/clean.cpp")},
                    out, err),
            0);
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::stringstream ss;
  ss << is.rdbuf();
  EXPECT_NE(ss.str().find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_TRUE(out.str().empty());
  std::remove(path.c_str());
}

TEST(LintCli, ListRulesNamesEveryRule) {
  std::ostringstream out, err;
  EXPECT_EQ(run_cli({"--list-rules"}, out, err), 0);
  const std::string text = out.str();
  for (const char* rule :
       {"nondeterminism", "unordered-iteration", "type-punning",
        "energy-pairing", "deprecated-run-api", "rng-seed",
        "telemetry-registry", "injection-seeding", "pod-protocol",
        "syscall-discipline", "probe-cost", "campaign-determinism",
        "float-equality", "artifact-durability", "orphan-suppression"}) {
    EXPECT_NE(text.find(rule), std::string::npos) << rule;
  }
}

// -- The real tree must stay clean -------------------------------------------

TEST(LintRepo, SrcToolsBenchAreCleanUnderAllRules) {
  const std::string root(TM_LINT_REPO_ROOT);
  const LintReport r =
      run_lint({root + "/src", root + "/tools", root + "/bench"});
  std::ostringstream why;
  write_text(r, why);
  EXPECT_TRUE(r.findings.empty()) << why.str();
  // The justified suppressions inventoried in docs/STATIC_ANALYSIS.md and
  // tools/lint/lint_baseline.txt: FpuPipeline::issue (energy-pairing), the
  // executor's predicate-register test and the SETE/SETNE ISA comparisons
  // (float-equality), the lint cache and the bench append-mode metrics log
  // (artifact-durability).
  EXPECT_EQ(r.suppressed, 6u);
  EXPECT_GT(r.files_scanned, 100u);
}

TEST(LintRepo, SuppressionBaselineGateIsGreen) {
  const std::string root(TM_LINT_REPO_ROOT);
  LintOptions opt;
  opt.paths = {root + "/src", root + "/tools", root + "/bench"};
  opt.baseline_path = root + "/tools/lint/lint_baseline.txt";
  const LintReport r = run_lint(opt);
  std::ostringstream why;
  write_text(r, why);
  EXPECT_TRUE(r.findings.empty()) << why.str();
  EXPECT_EQ(r.suppressed, 6u);
  EXPECT_EQ(exit_code(r), 0);
}

} // namespace
} // namespace tmemo::lint
