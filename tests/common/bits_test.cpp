#include "common/bits.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace tmemo {
namespace {

TEST(Bits, RoundTrip) {
  for (float v : {0.0f, -0.0f, 1.0f, -1.0f, 3.14159f, 1e-30f, 1e30f,
                  std::numeric_limits<float>::infinity()}) {
    EXPECT_EQ(bits_to_float(float_to_bits(v)), v);
  }
}

TEST(Bits, NanRoundTripPreservesPayload) {
  const std::uint32_t pattern = 0x7fc12345u;
  EXPECT_EQ(float_to_bits(bits_to_float(pattern)), pattern);
}

TEST(Bits, SignedZerosDifferInBits) {
  EXPECT_NE(float_to_bits(0.0f), float_to_bits(-0.0f));
}

TEST(Mask, ZeroIgnoredBitsIsAllOnes) {
  EXPECT_EQ(mask_ignoring_fraction_lsbs(0), 0xffffffffu);
  EXPECT_EQ(mask_ignoring_fraction_lsbs(-3), 0xffffffffu);
}

TEST(Mask, FullFractionIgnoredKeepsSignExponent) {
  EXPECT_EQ(mask_ignoring_fraction_lsbs(23), 0xff800000u);
  EXPECT_EQ(mask_ignoring_fraction_lsbs(99), 0xff800000u);
}

TEST(Mask, PartialMaskShape) {
  EXPECT_EQ(mask_ignoring_fraction_lsbs(4), 0xfffffff0u);
  EXPECT_EQ(mask_ignoring_fraction_lsbs(8), 0xffffff00u);
  EXPECT_EQ(mask_ignoring_fraction_lsbs(16), 0xffff0000u);
}

TEST(MaskedEqual, ExactMaskDistinguishesAdjacentFloats) {
  const float a = 1.0f;
  const float b = std::nextafterf(a, 2.0f);
  EXPECT_FALSE(masked_equal(a, b, 0xffffffffu));
  EXPECT_TRUE(masked_equal(a, a, 0xffffffffu));
}

TEST(MaskedEqual, LooseMaskMergesNearbyValues) {
  // Ignoring 16 fraction LSBs: 1.0 and 1.005 share the kept bits.
  EXPECT_TRUE(masked_equal(1.0f, 1.005f, mask_ignoring_fraction_lsbs(16)));
  // But 1.0 and 1.5 differ in the top fraction bit.
  EXPECT_FALSE(masked_equal(1.0f, 1.5f, mask_ignoring_fraction_lsbs(16)));
}

TEST(MaskedEqual, SignAlwaysCompared) {
  EXPECT_FALSE(masked_equal(1.0f, -1.0f, mask_ignoring_fraction_lsbs(23)));
}

TEST(MaskedEqual, ExponentAlwaysCompared) {
  // 1.9 vs 2.1: adjacent values across the octave boundary never match
  // even with the whole fraction ignored.
  EXPECT_FALSE(masked_equal(1.9f, 2.1f, mask_ignoring_fraction_lsbs(23)));
}

TEST(WithinThreshold, ExactModeIsBitwise) {
  EXPECT_TRUE(within_threshold(1.0f, 1.0f, 0.0f));
  EXPECT_FALSE(within_threshold(0.0f, -0.0f, 0.0f)); // bit-for-bit
  EXPECT_FALSE(within_threshold(1.0f, std::nextafterf(1.0f, 2.0f), 0.0f));
}

TEST(WithinThreshold, AbsoluteDifferenceBound) {
  EXPECT_TRUE(within_threshold(10.0f, 10.4f, 0.4f));
  EXPECT_TRUE(within_threshold(10.4f, 10.0f, 0.4f));
  EXPECT_FALSE(within_threshold(10.0f, 10.41f, 0.4f));
  EXPECT_TRUE(within_threshold(-5.0f, -4.75f, 0.3f));
}

TEST(WithinThreshold, NanNeverMatches) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(within_threshold(nan, nan, 1.0f));
  EXPECT_FALSE(within_threshold(nan, 1.0f, 1.0f));
  EXPECT_FALSE(within_threshold(1.0f, nan, 1.0f));
  EXPECT_FALSE(within_threshold(nan, nan, 0.0f));
}

TEST(WithinThreshold, InfinityMatchesItselfApproximately) {
  const float inf = std::numeric_limits<float>::infinity();
  // |inf - inf| = NaN <= t is false in IEEE; document that behaviour:
  EXPECT_FALSE(within_threshold(inf, inf, 1.0f));
  // ...but exact matching compares bits, so inf == inf.
  EXPECT_TRUE(within_threshold(inf, inf, 0.0f));
}

TEST(FractionLsbs, ThresholdToBitsMapping) {
  EXPECT_EQ(fraction_lsbs_for_threshold(0.0f), 0);
  EXPECT_EQ(fraction_lsbs_for_threshold(-1.0f), 0);
  EXPECT_EQ(fraction_lsbs_for_threshold(1.0f), 23);
  EXPECT_EQ(fraction_lsbs_for_threshold(2.0f), 23);
  // 2^(k-23) <= t: t=0.5 -> k=22, t=0.25 -> k=21.
  EXPECT_EQ(fraction_lsbs_for_threshold(0.5f), 22);
  EXPECT_EQ(fraction_lsbs_for_threshold(0.25f), 21);
}

TEST(FractionLsbs, MonotoneInThreshold) {
  int prev = 0;
  for (float t = 0.01f; t <= 1.0f; t += 0.01f) {
    const int k = fraction_lsbs_for_threshold(t);
    EXPECT_GE(k, prev);
    prev = k;
  }
}

class MaskPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MaskPropertyTest, MaskedEqualityIsCoarserThanExact) {
  const int bits = GetParam();
  const std::uint32_t mask = mask_ignoring_fraction_lsbs(bits);
  // Exactly equal values always match under any mask.
  for (float v : {0.5f, 1.0f, 100.0f, -3.25f, 1e-10f}) {
    EXPECT_TRUE(masked_equal(v, v, mask));
  }
  // A coarser mask never rejects what a finer mask accepts.
  const std::uint32_t finer = mask_ignoring_fraction_lsbs(bits - 1);
  for (std::uint32_t base = 0x3f800000u; base < 0x3f800400u; base += 37) {
    const float a = bits_to_float(base);
    const float b = bits_to_float(base + 3);
    if (masked_equal(a, b, finer)) {
      EXPECT_TRUE(masked_equal(a, b, mask));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, MaskPropertyTest,
                         ::testing::Values(1, 2, 4, 8, 12, 16, 20, 23));

} // namespace
} // namespace tmemo
