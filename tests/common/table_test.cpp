#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace tmemo {
namespace {

TEST(ResultTable, RequiresHeaders) {
  EXPECT_THROW(ResultTable("t", {}), std::invalid_argument);
}

TEST(ResultTable, AddBeforeBeginRowThrows) {
  ResultTable t("t", {"a"});
  EXPECT_THROW(t.add("x"), std::invalid_argument);
}

TEST(ResultTable, TooManyCellsThrows) {
  ResultTable t("t", {"a", "b"});
  t.begin_row().add("1").add("2");
  EXPECT_THROW(t.add("3"), std::invalid_argument);
}

TEST(ResultTable, PrintContainsTitleHeadersAndCells) {
  ResultTable t("My Title", {"col1", "col2"});
  t.begin_row().add("hello").add(3.14159, 2);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("My Title"), std::string::npos);
  EXPECT_NE(s.find("col1"), std::string::npos);
  EXPECT_NE(s.find("hello"), std::string::npos);
  EXPECT_NE(s.find("3.14"), std::string::npos);
}

TEST(ResultTable, NumericFormatting) {
  ResultTable t("t", {"v"});
  t.begin_row().add(1.23456, 3);
  t.begin_row().add(static_cast<long long>(-42));
  t.begin_row().add(static_cast<unsigned long long>(7));
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("1.235"), std::string::npos);
  EXPECT_NE(os.str().find("-42"), std::string::npos);
}

TEST(ResultTable, CsvBasic) {
  ResultTable t("t", {"a", "b"});
  t.begin_row().add("x").add("y");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\nx,y\n");
}

TEST(ResultTable, CsvEscapesSpecialCharacters) {
  ResultTable t("t", {"a"});
  t.begin_row().add("va,l");
  t.begin_row().add("q\"uote");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"va,l\""), std::string::npos);
  EXPECT_NE(os.str().find("\"q\"\"uote\""), std::string::npos);
}

TEST(ResultTable, ShortRowsPadInCsv) {
  ResultTable t("t", {"a", "b", "c"});
  t.begin_row().add("only");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b,c\nonly,,\n");
}

TEST(ResultTable, RowsCounts) {
  ResultTable t("t", {"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.begin_row().add("1");
  t.begin_row().add("2");
  EXPECT_EQ(t.rows(), 2u);
}

} // namespace
} // namespace tmemo
