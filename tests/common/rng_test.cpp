#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

namespace tmemo {
namespace {

TEST(Xorshift128, DeterministicForSameSeed) {
  Xorshift128 a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Xorshift128, DifferentSeedsDiverge) {
  Xorshift128 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xorshift128, ZeroSeedIsRemapped) {
  Xorshift128 a(0);
  // Must not be stuck at zero.
  EXPECT_NE(a.next_u64(), 0u);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 64; ++i) values.insert(a.next_u64());
  EXPECT_GT(values.size(), 60u);
}

TEST(Xorshift128, ReseedRestartsStream) {
  Xorshift128 a(7);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Xorshift128, DoubleInUnitInterval) {
  Xorshift128 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Xorshift128, FloatInUnitInterval) {
  Xorshift128 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const float f = rng.next_float();
    ASSERT_GE(f, 0.0f);
    ASSERT_LT(f, 1.0f);
  }
}

TEST(Xorshift128, DoubleMeanNearHalf) {
  Xorshift128 rng(5);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.next_double();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Xorshift128, NextBelowRespectsBound) {
  Xorshift128 rng(9);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 64ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xorshift128, NextBelowOneAlwaysZero) {
  Xorshift128 rng(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Xorshift128, NextBelowCoversRange) {
  Xorshift128 rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Xorshift128, BernoulliExtremes) {
  Xorshift128 rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(Xorshift128, BernoulliRateIsCalibrated) {
  Xorshift128 rng(19);
  const int n = 200000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.03) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.03, 0.003);
}

TEST(Xorshift128, GaussianMoments) {
  Xorshift128 rng(23);
  const int n = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

class BernoulliRateTest : public ::testing::TestWithParam<double> {};

TEST_P(BernoulliRateTest, ObservedRateMatches) {
  const double p = GetParam();
  Xorshift128 rng(0x1234 + static_cast<std::uint64_t>(p * 1e6));
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(p) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 5.0 * std::sqrt(p / n) + 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Rates, BernoulliRateTest,
                         ::testing::Values(0.001, 0.01, 0.02, 0.04, 0.1, 0.25,
                                           0.5, 0.9));

} // namespace
} // namespace tmemo
