#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "img/synthetic.hpp"
#include "kernel/launch.hpp"
#include "workloads/sobel.hpp"

namespace tmemo {
namespace {

std::vector<TraceEvent> capture_sobel(int side = 96) {
  GpuDevice device(DeviceConfig::single_cu());
  device.program_exact();
  TraceWriter writer;
  const Image face = make_face_image(side, side);
  Image out(side, side);
  const int wf = device.config().wavefront_size;
  const std::size_t wavefronts =
      face.size() / static_cast<std::size_t>(wf);
  for (std::size_t w = 0; w < wavefronts; ++w) {
    WavefrontCtx ctx(device.compute_unit(0), device.error_model(), &writer,
                     wf, static_cast<WorkItemId>(w) * wf, ~0ull);
    const LaneVec p = ctx.gather(face.pixels(), [](int, WorkItemId gid) {
      return static_cast<std::size_t>(gid);
    });
    const LaneVec r = ctx.sqrt(ctx.mul(p, p));
    ctx.scatter(out.pixels(), r, [](int, WorkItemId gid) {
      return static_cast<std::size_t>(gid);
    });
  }
  return writer.events();
}

TEST(TraceWriter, CapturesEveryInstruction) {
  const auto events = capture_sobel(64);
  // 64x64 pixels, 2 ops per pixel.
  EXPECT_EQ(events.size(), 64u * 64u * 2u);
  // Events carry consistent unit/opcode pairs.
  for (const TraceEvent& ev : events) {
    EXPECT_EQ(opcode_unit(ev.op()), ev.fpu());
  }
}

TEST(TraceWriter, DownstreamChaining) {
  struct Counter final : ExecutionSink {
    int n = 0;
    void consume(const ExecutionRecord&) override { ++n; }
  } counter;
  TraceWriter writer(&counter);
  ExecutionRecord rec;
  writer.consume(rec);
  writer.consume(rec);
  EXPECT_EQ(counter.n, 2);
  EXPECT_EQ(writer.size(), 2u);
  writer.clear();
  EXPECT_EQ(writer.size(), 0u);
}

TEST(TraceIo, SaveLoadRoundTrip) {
  const auto events = capture_sobel(64);
  const std::string path =
      (std::filesystem::temp_directory_path() / "tm_test.trace").string();
  TraceWriter writer;
  for (const TraceEvent& ev : events) {
    ExecutionRecord rec;
    rec.opcode = ev.op();
    rec.unit = ev.fpu();
    rec.static_id = ev.static_id;
    rec.work_item = ev.work_item;
    rec.operands = ev.operands;
    writer.consume(rec);
  }
  writer.save(path);
  const auto loaded = load_trace(path);
  ASSERT_EQ(loaded.size(), events.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].opcode, events[i].opcode);
    EXPECT_EQ(loaded[i].work_item, events[i].work_item);
    EXPECT_EQ(loaded[i].static_id, events[i].static_id);
    EXPECT_EQ(loaded[i].operands, events[i].operands);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsCorruptFiles) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tm_bad.trace").string();
  {
    std::ofstream os(path, std::ios::binary);
    os << "NOPE garbage";
  }
  EXPECT_THROW((void)load_trace(path), std::invalid_argument);
  std::remove(path.c_str());
  EXPECT_THROW((void)load_trace("/definitely/missing.trace"),
               std::invalid_argument);
}

// The binary reader validates the header against the actual file size
// before allocating anything (hardened in the static-analysis PR).
TEST(TraceIo, RejectsTruncatedAndOversizedHeaders) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "tm_hdr.trace").string();

  // A valid one-event trace to mutate.
  TraceWriter writer;
  ExecutionRecord rec;
  rec.opcode = FpOpcode::kMul;
  rec.unit = FpuType::kMul;
  rec.operands = {1.0f, 2.0f, 0.0f};
  writer.consume(rec);
  writer.save(path);
  const auto baseline = load_trace(path);
  ASSERT_EQ(baseline.size(), 1u);

  const auto write_bytes = [&](const std::string& bytes) {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };
  std::string valid;
  {
    std::ifstream is(path, std::ios::binary);
    valid.assign(std::istreambuf_iterator<char>(is),
                 std::istreambuf_iterator<char>());
  }

  // Header cut off mid-count.
  write_bytes(valid.substr(0, 10));
  EXPECT_THROW((void)load_trace(path), std::invalid_argument);

  // Payload truncated mid-event.
  write_bytes(valid.substr(0, valid.size() - 5));
  EXPECT_THROW((void)load_trace(path), std::invalid_argument);

  // Count inflated to an attacker-sized value without matching payload.
  {
    std::string bad = valid;
    bad[8] = '\xff';  // low byte of the little-endian u64 count
    bad[15] = '\x7f'; // high byte: ~2^63 events declared
    write_bytes(bad);
    EXPECT_THROW((void)load_trace(path), std::invalid_argument);
  }

  // Unsupported version.
  {
    std::string bad = valid;
    bad[4] = '\x09';
    write_bytes(bad);
    EXPECT_THROW((void)load_trace(path), std::invalid_argument);
  }

  // The unmutated bytes still load.
  write_bytes(valid);
  EXPECT_EQ(load_trace(path).size(), 1u);
  std::remove(path.c_str());
}

TEST(TraceReplay, MatchesLiveHitRate) {
  // Replaying the captured trace with the same constraint and depth must
  // reproduce the hit rate the live device measured.
  GpuDevice device(DeviceConfig::single_cu());
  device.program_threshold_as_mask(0.4f);
  TraceWriter writer(&device.sink());
  const Image face = make_face_image(96, 96);
  Image out(96, 96);
  const int wf = device.config().wavefront_size;
  for (std::size_t w = 0; w < face.size() / 64; ++w) {
    WavefrontCtx ctx(device.compute_unit(0), device.error_model(), &writer,
                     wf, static_cast<WorkItemId>(w) * 64, ~0ull);
    const LaneVec p = ctx.gather(face.pixels(), [](int, WorkItemId gid) {
      return static_cast<std::size_t>(gid);
    });
    const LaneVec r = ctx.mul(p, ctx.splat(0.5f));
    ctx.scatter(out.pixels(), r, [](int, WorkItemId gid) {
      return static_cast<std::size_t>(gid);
    });
  }
  const double live = device.weighted_hit_rate();
  const MatchConstraint c = MatchConstraint::masked(
      mask_ignoring_fraction_lsbs(fraction_lsbs_for_threshold(0.4f)));
  const ReplayStats replay = replay_trace(writer.events(), 2, c);
  EXPECT_NEAR(replay.hit_rate(), live, 1e-9);
}

TEST(TraceReplay, DeeperFifoNeverWorse) {
  const auto events = capture_sobel(96);
  const MatchConstraint exact = MatchConstraint::exact();
  double prev = -1.0;
  for (int depth : {1, 2, 4, 16}) {
    const ReplayStats s = replay_trace(events, depth, exact);
    EXPECT_GE(s.hit_rate(), prev);
    prev = s.hit_rate();
  }
}

TEST(TraceReplay, LooserConstraintNeverWorse) {
  const auto events = capture_sobel(96);
  double prev = -1.0;
  for (float t : {0.0f, 0.2f, 0.4f, 1.0f}) {
    const MatchConstraint c =
        t <= 0.0f ? MatchConstraint::exact()
                  : MatchConstraint::masked(mask_ignoring_fraction_lsbs(
                        fraction_lsbs_for_threshold(t)));
    const ReplayStats s = replay_trace(events, 2, c);
    EXPECT_GE(s.hit_rate() + 1e-12, prev) << "t=" << t;
    prev = s.hit_rate();
  }
}

TEST(TraceReplay, PerUnitStatsSumToTotal) {
  const auto events = capture_sobel(64);
  const ReplayStats s = replay_trace(events, 2, MatchConstraint::exact());
  std::uint64_t lookups = 0;
  for (const LutStats& u : s.per_unit) lookups += u.lookups;
  EXPECT_EQ(lookups, s.instructions);
}

} // namespace
} // namespace tmemo
