#include "timing/ecu.hpp"

#include <gtest/gtest.h>

namespace tmemo {
namespace {

TEST(RecoveryCycles, MultipleIssueReplayMatchesPaper) {
  // Paper §5.1: 12 cycles per error for the 4-stage FPUs.
  EXPECT_EQ(recovery_cycles(RecoveryPolicy::kMultipleIssueReplay,
                            FpuType::kAdd),
            12);
  EXPECT_EQ(recovery_cycles(RecoveryPolicy::kMultipleIssueReplay,
                            FpuType::kMulAdd),
            12);
  // Deep RECIP pays proportionally more.
  EXPECT_EQ(recovery_cycles(RecoveryPolicy::kMultipleIssueReplay,
                            FpuType::kRecip),
            48);
}

TEST(RecoveryCycles, HalfFrequencyIsMoreExpensive) {
  for (FpuType u : kAllFpuTypes) {
    EXPECT_GT(recovery_cycles(RecoveryPolicy::kHalfFrequencyReplay, u),
              recovery_cycles(RecoveryPolicy::kMultipleIssueReplay, u));
  }
}

TEST(RecoveryCycles, DecouplingQueuesIsCheapestLocally) {
  for (FpuType u : kAllFpuTypes) {
    EXPECT_LT(recovery_cycles(RecoveryPolicy::kDecouplingQueues, u),
              recovery_cycles(RecoveryPolicy::kMultipleIssueReplay, u));
    EXPECT_GE(recovery_cycles(RecoveryPolicy::kDecouplingQueues, u), 1);
  }
}

TEST(RecoveryPolicyName, Defined) {
  EXPECT_STREQ(recovery_policy_name(RecoveryPolicy::kMultipleIssueReplay),
               "multiple-issue-replay");
  EXPECT_STREQ(recovery_policy_name(RecoveryPolicy::kHalfFrequencyReplay),
               "half-frequency-replay");
  EXPECT_STREQ(recovery_policy_name(RecoveryPolicy::kDecouplingQueues),
               "decoupling-queues");
}

TEST(Ecu, RecoverAccumulatesStats) {
  Ecu ecu(RecoveryPolicy::kMultipleIssueReplay);
  EXPECT_EQ(ecu.recover(FpuType::kAdd, 2), 12);
  EXPECT_EQ(ecu.recover(FpuType::kRecip, 0), 48);
  const EcuStats& s = ecu.stats();
  EXPECT_EQ(s.errors_signaled, 2u);
  EXPECT_EQ(s.recoveries, 2u);
  EXPECT_EQ(s.recovery_cycles, 60u);
  EXPECT_EQ(s.flushed_ops, 2u);
}

TEST(Ecu, MaskedErrorsCountAsSignalsOnly) {
  Ecu ecu;
  ecu.note_masked_error(FpuType::kAdd);
  ecu.note_masked_error(FpuType::kMulAdd);
  EXPECT_EQ(ecu.stats().errors_signaled, 2u);
  EXPECT_EQ(ecu.stats().masked_errors, 2u);
  EXPECT_EQ(ecu.stats().recoveries, 0u);
  EXPECT_EQ(ecu.stats().recovery_cycles, 0u);
}

TEST(Ecu, MaskedAndRecoveredErrorsStaySeparate) {
  // errors_signaled = masked + recovered; the masked share is its own
  // counter so the telemetry layer can report the mask rate directly.
  Ecu ecu(RecoveryPolicy::kMultipleIssueReplay);
  (void)ecu.recover(FpuType::kAdd, 0);
  ecu.note_masked_error(FpuType::kAdd);
  EXPECT_EQ(ecu.stats().errors_signaled, 2u);
  EXPECT_EQ(ecu.stats().masked_errors, 1u);
  EXPECT_EQ(ecu.stats().recoveries, 1u);
}

TEST(Ecu, NegativeFlushCountRejected) {
  Ecu ecu;
  EXPECT_THROW(ecu.recover(FpuType::kAdd, -1), std::invalid_argument);
}

TEST(Ecu, ResetStats) {
  Ecu ecu;
  (void)ecu.recover(FpuType::kAdd, 0);
  ecu.reset_stats();
  EXPECT_EQ(ecu.stats().errors_signaled, 0u);
  EXPECT_EQ(ecu.stats().recoveries, 0u);
}

TEST(EcuStats, Accumulation) {
  EcuStats a;
  a.errors_signaled = 1;
  a.recoveries = 2;
  a.recovery_cycles = 3;
  a.flushed_ops = 4;
  a.masked_errors = 5;
  a.watchdog_trips = 6;
  EcuStats b = a;
  b += a;
  EXPECT_EQ(b.errors_signaled, 2u);
  EXPECT_EQ(b.recoveries, 4u);
  EXPECT_EQ(b.recovery_cycles, 6u);
  EXPECT_EQ(b.flushed_ops, 8u);
  EXPECT_EQ(b.masked_errors, 10u);
  EXPECT_EQ(b.watchdog_trips, 12u);
}

} // namespace
} // namespace tmemo
