#include "timing/aging.hpp"

#include <gtest/gtest.h>

namespace tmemo {
namespace {

TEST(Aging, ValidatesParameters) {
  AgingParams bad;
  bad.delay_shift_year1 = -0.1;
  EXPECT_THROW(AgingModel{bad}, std::invalid_argument);
  bad = {};
  bad.exponent = 0.0;
  EXPECT_THROW(AgingModel{bad}, std::invalid_argument);
  bad = {};
  bad.exponent = 1.5;
  EXPECT_THROW(AgingModel{bad}, std::invalid_argument);
}

TEST(Aging, FreshDeviceUnaged) {
  const AgingModel aging;
  EXPECT_DOUBLE_EQ(aging.delay_factor(0.0), 1.0);
  // Fresh error rate equals the base model's.
  const VoltageScaling vs;
  EXPECT_NEAR(aging.op_error_probability(0.9, 4, 0.0),
              vs.op_error_probability(0.9, 4), 1e-12);
}

TEST(Aging, DelayFactorAtOneYearMatchesParameter) {
  const AgingModel aging;
  EXPECT_NEAR(aging.delay_factor(1.0),
              1.0 + aging.params().delay_shift_year1, 1e-12);
}

TEST(Aging, SubLinearPowerLaw) {
  const AgingModel aging;
  const double y1 = aging.delay_factor(1.0) - 1.0;
  const double y4 = aging.delay_factor(4.0) - 1.0;
  // With n = 0.2: 4x time -> 4^0.2 ~ 1.32x shift, far below 4x.
  EXPECT_GT(y4, y1);
  EXPECT_LT(y4, 2.0 * y1);
}

TEST(Aging, ErrorsGrowMonotonicallyWithAge) {
  const AgingModel aging;
  double prev = -1.0;
  for (double years : {0.0, 1.0, 3.0, 6.0, 10.0, 20.0}) {
    const double p = aging.op_error_probability(0.9, 4, years);
    EXPECT_GE(p, prev);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

TEST(Aging, PastTheWallSaturatesAtOne) {
  AgingParams extreme;
  extreme.delay_shift_year1 = 0.5; // 50% per year^0.2
  const AgingModel aging(extreme);
  EXPECT_EQ(aging.op_error_probability(0.9, 4, 20.0), 1.0);
}

TEST(Aging, DeeperPipelinesAgeIntoErrorsFirst) {
  const AgingModel aging;
  for (double years : {6.0, 10.0}) {
    EXPECT_GE(aging.op_error_probability(0.9, 16, years),
              aging.op_error_probability(0.9, 4, years));
  }
}

TEST(Aging, LowerActivityExtendsLifetime) {
  const AgingModel aging;
  const double full = aging.lifetime_years(1.0, 4);
  const double half = aging.lifetime_years(0.5, 4);
  const double idle = aging.lifetime_years(0.0, 4);
  EXPECT_GT(half, full);
  EXPECT_EQ(idle, 30.0); // horizon
  // Halving the activity must at least double calendar lifetime.
  EXPECT_GE(half, 2.0 * full - 0.2);
}

TEST(Aging, LifetimeIsConsistentWithErrorCurve) {
  const AgingModel aging;
  const double life = aging.lifetime_years(1.0, 4, 1e-4);
  ASSERT_GT(life, 0.0);
  ASSERT_LT(life, 30.0);
  EXPECT_LT(aging.op_error_probability(0.9, 4, life * 0.9), 1e-4);
  EXPECT_GT(aging.op_error_probability(0.9, 4, life * 1.1), 1e-4);
}

TEST(Aging, ActivityValidation) {
  const AgingModel aging;
  EXPECT_THROW((void)aging.lifetime_years(-0.1, 4), std::invalid_argument);
  EXPECT_THROW((void)aging.lifetime_years(1.1, 4), std::invalid_argument);
  EXPECT_THROW((void)aging.delay_factor(-1.0), std::invalid_argument);
}

} // namespace
} // namespace tmemo
