#include "timing/guardband.hpp"

#include <gtest/gtest.h>

#include "timing/voltage.hpp"

namespace tmemo {
namespace {

TEST(Guardband, ConfigValidation) {
  GuardbandConfig bad;
  bad.v_min = 0.95;
  EXPECT_THROW(AdaptiveGuardbandController{bad}, std::invalid_argument);
  bad = {};
  bad.step = 0.0;
  EXPECT_THROW(AdaptiveGuardbandController{bad}, std::invalid_argument);
  bad = {};
  bad.target_error_rate = 0.0;
  EXPECT_THROW(AdaptiveGuardbandController{bad}, std::invalid_argument);
  bad = {};
  bad.hysteresis = 1.0;
  EXPECT_THROW(AdaptiveGuardbandController{bad}, std::invalid_argument);
  EXPECT_THROW(AdaptiveGuardbandController(GuardbandConfig{}, 0.5),
               std::invalid_argument);
}

TEST(Guardband, LowersWhenErrorFree) {
  AdaptiveGuardbandController ctrl;
  EXPECT_EQ(ctrl.supply(), 0.90);
  ctrl.observe(10000, 0);
  EXPECT_NEAR(ctrl.supply(), 0.89, 1e-9);
  ctrl.observe(10000, 0);
  EXPECT_NEAR(ctrl.supply(), 0.88, 1e-9);
  EXPECT_EQ(ctrl.lowers(), 2u);
}

TEST(Guardband, RaisesWhenErrorsExceedTarget) {
  AdaptiveGuardbandController ctrl(GuardbandConfig{}, 0.82);
  ctrl.observe(1000, 50); // 5% >> 0.1% target
  EXPECT_NEAR(ctrl.supply(), 0.83, 1e-9);
  EXPECT_EQ(ctrl.raises(), 1u);
}

TEST(Guardband, HoldsInsideTheBand) {
  GuardbandConfig cfg;
  cfg.target_error_rate = 0.01;
  cfg.hysteresis = 0.25;
  AdaptiveGuardbandController ctrl(cfg, 0.85);
  ctrl.observe(10000, 50); // 0.5% in (0.25%, 1%) -> hold
  EXPECT_NEAR(ctrl.supply(), 0.85, 1e-9);
  EXPECT_EQ(ctrl.raises(), 0u);
  EXPECT_EQ(ctrl.lowers(), 0u);
}

TEST(Guardband, ClampsAtBandEdges) {
  GuardbandConfig cfg;
  AdaptiveGuardbandController ctrl(cfg, cfg.v_min);
  ctrl.observe(1000, 0); // wants to lower, already at min
  EXPECT_NEAR(ctrl.supply(), cfg.v_min, 1e-9);
  AdaptiveGuardbandController top(cfg, cfg.v_max);
  top.observe(1000, 1000); // wants to raise, already at max
  EXPECT_NEAR(top.supply(), cfg.v_max, 1e-9);
}

TEST(Guardband, RejectsEmptyEpoch) {
  AdaptiveGuardbandController ctrl;
  EXPECT_THROW(ctrl.observe(0, 0), std::invalid_argument);
}

TEST(Guardband, ConvergesAgainstTheAnalyticErrorModel) {
  // Closed loop with the alpha-power error model: the controller must
  // settle just above the error cliff (between 0.80 and 0.86 V) and stay
  // there, oscillating at most one step.
  const VoltageScaling vs;
  AdaptiveGuardbandController ctrl;
  for (int epoch = 0; epoch < 50; ++epoch) {
    const double p = vs.op_error_probability(ctrl.supply(), 4);
    const auto errors =
        static_cast<std::uint64_t>(p * 100000.0);
    ctrl.observe(100000, errors);
  }
  EXPECT_GE(ctrl.supply(), 0.80);
  EXPECT_LE(ctrl.supply(), 0.86);
  const Volt settled = ctrl.supply();
  for (int epoch = 0; epoch < 10; ++epoch) {
    const double p = vs.op_error_probability(ctrl.supply(), 4);
    ctrl.observe(100000, static_cast<std::uint64_t>(p * 100000.0));
    EXPECT_NEAR(ctrl.supply(), settled, ctrl.config().step + 1e-9);
  }
}

TEST(Guardband, EpochCounting) {
  AdaptiveGuardbandController ctrl;
  ctrl.observe(100, 0);
  ctrl.observe(100, 100);
  EXPECT_EQ(ctrl.epochs(), 2u);
}

} // namespace
} // namespace tmemo
