#include "timing/error_model.hpp"

#include <gtest/gtest.h>

#include "timing/eds.hpp"

namespace tmemo {
namespace {

TEST(NoErrorModel, AlwaysZero) {
  const NoErrorModel m;
  Xorshift128 rng(1);
  for (FpuType u : kAllFpuTypes) {
    EXPECT_EQ(m.op_error_probability(u), 0.0);
    for (int i = 0; i < 100; ++i) EXPECT_FALSE(m.sample_error(u, rng));
  }
}

TEST(FixedRateErrorModel, ValidatesRate) {
  EXPECT_THROW(FixedRateErrorModel(-0.1), std::invalid_argument);
  EXPECT_THROW(FixedRateErrorModel(1.1), std::invalid_argument);
  EXPECT_NO_THROW(FixedRateErrorModel(0.0));
  EXPECT_NO_THROW(FixedRateErrorModel(1.0));
}

TEST(FixedRateErrorModel, UniformAcrossUnits) {
  const FixedRateErrorModel m(0.04);
  for (FpuType u : kAllFpuTypes) {
    EXPECT_EQ(m.op_error_probability(u), 0.04);
  }
}

TEST(FixedRateErrorModel, SampledRateMatchesConfigured) {
  const FixedRateErrorModel m(0.04);
  Xorshift128 rng(7);
  const int n = 200000;
  int errors = 0;
  for (int i = 0; i < n; ++i) {
    errors += m.sample_error(FpuType::kAdd, rng) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(errors) / n, 0.04, 0.004);
}

TEST(VoltageErrorModel, DeeperUnitsErrMore) {
  const VoltageErrorModel m(VoltageScaling{}, 0.81);
  // RECIP (16 stages) must see a strictly higher per-op error rate than
  // the 4-stage units at the same supply.
  EXPECT_GT(m.op_error_probability(FpuType::kRecip),
            m.op_error_probability(FpuType::kAdd));
  EXPECT_EQ(m.op_error_probability(FpuType::kAdd),
            m.op_error_probability(FpuType::kMulAdd));
}

TEST(VoltageErrorModel, NominalSupplyIsErrorFree) {
  const VoltageErrorModel m(VoltageScaling{}, 0.90);
  for (FpuType u : kAllFpuTypes) {
    EXPECT_LT(m.op_error_probability(u), 1e-6) << fpu_type_name(u);
  }
}

TEST(VoltageErrorModel, RejectsSubThresholdSupply) {
  EXPECT_THROW(VoltageErrorModel(VoltageScaling{}, 0.2),
               std::invalid_argument);
}

TEST(EdsSensorBank, NoErrorMeansNoObservation) {
  EdsSensorBank eds(FpuType::kAdd, 1);
  const NoErrorModel none;
  for (int i = 0; i < 100; ++i) {
    const EdsObservation obs = eds.observe(none);
    EXPECT_FALSE(obs.error);
    EXPECT_EQ(obs.errant_stage, -1);
    EXPECT_EQ(obs.propagation_cycles, 0);
  }
}

TEST(EdsSensorBank, ErrantStageWithinPipeline) {
  EdsSensorBank eds(FpuType::kRecip, 2);
  const FixedRateErrorModel always(1.0);
  bool saw_early = false, saw_late = false;
  for (int i = 0; i < 500; ++i) {
    const EdsObservation obs = eds.observe(always);
    ASSERT_TRUE(obs.error);
    ASSERT_GE(obs.errant_stage, 0);
    ASSERT_LT(obs.errant_stage, 16);
    ASSERT_EQ(obs.propagation_cycles, 16 - 1 - obs.errant_stage);
    saw_early = saw_early || obs.errant_stage < 4;
    saw_late = saw_late || obs.errant_stage >= 12;
  }
  // The errant stage is drawn uniformly: both ends must occur.
  EXPECT_TRUE(saw_early);
  EXPECT_TRUE(saw_late);
}

TEST(EdsSensorBank, ReseedReproducesStream) {
  EdsSensorBank eds(FpuType::kAdd, 42);
  const FixedRateErrorModel m(0.3);
  std::vector<bool> first;
  for (int i = 0; i < 200; ++i) first.push_back(eds.observe(m).error);
  eds.reseed(42);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(eds.observe(m).error, first[static_cast<std::size_t>(i)]);
  }
}

} // namespace
} // namespace tmemo
