// Exhaustive recovery-cost matrix: recovery_cycles(policy, unit) for every
// RecoveryPolicy x FpuType combination (3 x 9 = 27 cells), pinning the
// paper's 12-cycle baseline and the closed-form scaling of each policy so a
// regression in either the latency table or the policy arithmetic is caught
// at the exact cell that moved.
#include "timing/ecu.hpp"

#include <gtest/gtest.h>

namespace tmemo {
namespace {

// The closed forms the implementation commits to (see timing/ecu.cpp):
//   multiple-issue replay : 3 * depth   (flush + multiple re-issues)
//   half-frequency replay : 4 * depth   (flush + refill at half frequency)
//   decoupling queues     : depth/2 + 1 (local stall + propagation cycle)
int expected_cycles(RecoveryPolicy policy, int depth) {
  switch (policy) {
    case RecoveryPolicy::kMultipleIssueReplay: return 3 * depth;
    case RecoveryPolicy::kHalfFrequencyReplay: return 4 * depth;
    case RecoveryPolicy::kDecouplingQueues:    return depth / 2 + 1;
  }
  return -1;
}

TEST(RecoveryCyclesMatrix, EveryPolicyUnitCellMatchesClosedForm) {
  constexpr RecoveryPolicy kPolicies[] = {
      RecoveryPolicy::kMultipleIssueReplay,
      RecoveryPolicy::kHalfFrequencyReplay,
      RecoveryPolicy::kDecouplingQueues,
  };
  int cells = 0;
  for (RecoveryPolicy policy : kPolicies) {
    for (FpuType unit : kAllFpuTypes) {
      SCOPED_TRACE(std::string(recovery_policy_name(policy)) + " / " +
                   std::string(fpu_type_name(unit)));
      const int depth = fpu_latency_cycles(unit);
      EXPECT_EQ(recovery_cycles(policy, unit), expected_cycles(policy, depth));
      ++cells;
    }
  }
  EXPECT_EQ(cells, 3 * kNumFpuTypes);
}

TEST(RecoveryCyclesMatrix, LatencyTableMatchesPaperSection51) {
  // "the RECIP has a latency of 16 cycles, while the rest of the FPU have
  // four cycles latency."
  for (FpuType unit : kAllFpuTypes) {
    SCOPED_TRACE(std::string(fpu_type_name(unit)));
    EXPECT_EQ(fpu_latency_cycles(unit), unit == FpuType::kRecip ? 16 : 4);
  }
}

TEST(RecoveryCyclesMatrix, BaselinePinsTwelveCyclesForFourStageUnits) {
  // Paper §5.1: the multiple-issue replay baseline "costs 12 cycles per
  // error" on the 4-stage FPUs. This is the number every energy figure in
  // the reproduction leans on; it must never drift.
  for (FpuType unit : kAllFpuTypes) {
    if (unit == FpuType::kRecip) continue;
    SCOPED_TRACE(std::string(fpu_type_name(unit)));
    EXPECT_EQ(recovery_cycles(RecoveryPolicy::kMultipleIssueReplay, unit), 12);
    EXPECT_EQ(recovery_cycles(RecoveryPolicy::kHalfFrequencyReplay, unit), 16);
    EXPECT_EQ(recovery_cycles(RecoveryPolicy::kDecouplingQueues, unit), 3);
  }
  EXPECT_EQ(recovery_cycles(RecoveryPolicy::kMultipleIssueReplay,
                            FpuType::kRecip),
            48);
  EXPECT_EQ(recovery_cycles(RecoveryPolicy::kHalfFrequencyReplay,
                            FpuType::kRecip),
            64);
  EXPECT_EQ(recovery_cycles(RecoveryPolicy::kDecouplingQueues,
                            FpuType::kRecip),
            9);
}

TEST(RecoveryCyclesMatrix, PolicyOrderingHoldsForEveryUnit) {
  // Cost ordering is a policy invariant, not a per-unit accident:
  // decoupling queues < multiple-issue replay < half-frequency replay.
  for (FpuType unit : kAllFpuTypes) {
    SCOPED_TRACE(std::string(fpu_type_name(unit)));
    const int decouple =
        recovery_cycles(RecoveryPolicy::kDecouplingQueues, unit);
    const int replay =
        recovery_cycles(RecoveryPolicy::kMultipleIssueReplay, unit);
    const int half =
        recovery_cycles(RecoveryPolicy::kHalfFrequencyReplay, unit);
    EXPECT_GE(decouple, 1);
    EXPECT_LT(decouple, replay);
    EXPECT_LT(replay, half);
  }
}

} // namespace
} // namespace tmemo
