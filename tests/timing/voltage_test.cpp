#include "timing/voltage.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tmemo {
namespace {

TEST(StandardNormalCdf, KnownValues) {
  EXPECT_NEAR(standard_normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(standard_normal_cdf(1.0), 0.8413447, 1e-6);
  EXPECT_NEAR(standard_normal_cdf(-1.0), 0.1586553, 1e-6);
  EXPECT_NEAR(standard_normal_cdf(3.0), 0.9986501, 1e-6);
  EXPECT_NEAR(standard_normal_cdf(6.0), 1.0, 1e-8);
}

TEST(VoltageScaling, ValidatesParameters) {
  VoltageScalingParams p;
  p.nominal_voltage = 0.3; // below Vth
  EXPECT_THROW(VoltageScaling{p}, std::invalid_argument);
  p = {};
  p.alpha = -1.0;
  EXPECT_THROW(VoltageScaling{p}, std::invalid_argument);
  p = {};
  p.stage_delay_mean = 1.5; // exceeds clock period
  EXPECT_THROW(VoltageScaling{p}, std::invalid_argument);
  p = {};
  p.stage_delay_sigma = 0.0;
  EXPECT_THROW(VoltageScaling{p}, std::invalid_argument);
}

TEST(VoltageScaling, DelayFactorIsOneAtNominal) {
  const VoltageScaling vs;
  EXPECT_NEAR(vs.delay_factor(vs.params().nominal_voltage), 1.0, 1e-12);
}

TEST(VoltageScaling, DelayGrowsMonotonicallyAsVoltageDrops) {
  const VoltageScaling vs;
  double prev = 0.0;
  for (double v = 0.90; v >= 0.60; v -= 0.01) {
    const double f = vs.delay_factor(v);
    EXPECT_GT(f, prev) << "v=" << v;
    prev = f;
  }
}

TEST(VoltageScaling, DelayFactorRejectsSubThresholdSupply) {
  const VoltageScaling vs;
  EXPECT_THROW((void)vs.delay_factor(0.30), std::invalid_argument);
}

TEST(VoltageScaling, ErrorNegligibleAtNominalAbruptBelow) {
  // The paper's Fig. 11 regime: essentially no errors down to ~0.84 V,
  // then an abrupt increase towards 0.8 V.
  const VoltageScaling vs;
  EXPECT_LT(vs.op_error_probability(0.90, 4), 1e-6);
  EXPECT_LT(vs.op_error_probability(0.86, 4), 1e-4);
  EXPECT_LT(vs.op_error_probability(0.84, 4), 0.01);
  EXPECT_GT(vs.op_error_probability(0.80, 4), 0.25);
  // Abruptness: 0.80 is at least 20x worse than 0.84.
  EXPECT_GT(vs.op_error_probability(0.80, 4),
            20.0 * vs.op_error_probability(0.84, 4));
}

TEST(VoltageScaling, ErrorProbabilityMonotoneInDepth) {
  const VoltageScaling vs;
  for (double v : {0.84, 0.82, 0.80}) {
    double prev = 0.0;
    for (int depth : {1, 2, 4, 8, 16}) {
      const double p = vs.op_error_probability(v, depth);
      EXPECT_GE(p, prev);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
      prev = p;
    }
  }
}

TEST(VoltageScaling, DeepPipelineMultipliesErrorRate) {
  // Paper §1: "the error rate is multiplied by the... pipeline length".
  const VoltageScaling vs;
  const double p1 = vs.stage_error_probability(0.81);
  const double p4 = vs.op_error_probability(0.81, 4);
  EXPECT_NEAR(p4, 1.0 - std::pow(1.0 - p1, 4.0), 1e-12);
}

TEST(VoltageScaling, InvalidDepthRejected) {
  const VoltageScaling vs;
  EXPECT_THROW((void)vs.op_error_probability(0.9, 0), std::invalid_argument);
}

TEST(VoltageScaling, EnergyScalesQuadratically) {
  const VoltageScaling vs;
  EXPECT_NEAR(vs.energy_factor(0.9), 1.0, 1e-12);
  EXPECT_NEAR(vs.energy_factor(0.45), 0.25, 1e-12);
  EXPECT_NEAR(vs.energy_factor(0.8), (0.8 / 0.9) * (0.8 / 0.9), 1e-12);
}

class VoltageSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(VoltageSweepTest, ErrorProbabilityWellFormed) {
  const VoltageScaling vs;
  const double v = GetParam();
  for (int depth : {1, 4, 16}) {
    const double p = vs.op_error_probability(v, depth);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Voltages, VoltageSweepTest,
                         ::testing::Values(0.90, 0.88, 0.86, 0.84, 0.82, 0.80,
                                           0.75, 0.60));

} // namespace
} // namespace tmemo
