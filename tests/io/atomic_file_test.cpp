// AtomicFileWriter tests (io/atomic_file.hpp): the temp → fsync → rename
// commit discipline, the previous-artifact-stays-intact guarantee under
// every injected failure mode, and the crash-recovery contract — a torn
// prefix only ever lands at the temp path, never the final one.
#include "io/atomic_file.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

namespace tmemo::io {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "tmemo_atomic_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void spill(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

bool exists(const std::string& path) {
  return std::ifstream(path).good();
}

/// A path with no file at it and no leftover temp beside it.
std::string fresh_path(const std::string& name) {
  const std::string path = temp_path(name);
  std::remove(path.c_str());
  std::remove(AtomicFileWriter::temp_path_for(path).c_str());
  return path;
}

FsFaultSpec certain(const char* text) {
  const auto spec = FsFaultSpec::parse(text);
  EXPECT_TRUE(spec.has_value()) << text;
  return spec.value_or(FsFaultSpec{});
}

constexpr const char* kOld = "old artifact, still the truth\n";
constexpr const char* kNew = "index,variant,kernel\n0,base,haar\n";

TEST(AtomicFileWriter, CommitPublishesExactlyTheBufferedBytes) {
  const std::string path = fresh_path("commit.csv");
  AtomicFileWriter writer;
  writer.open(path);
  EXPECT_TRUE(writer.is_open());
  writer.stream() << kNew;
  writer.commit();
  EXPECT_TRUE(writer.committed());
  EXPECT_FALSE(writer.is_open());
  EXPECT_EQ(slurp(path), kNew);
  EXPECT_FALSE(exists(AtomicFileWriter::temp_path_for(path)));
  std::remove(path.c_str());
}

TEST(AtomicFileWriter, CommitReplacesThePreviousArtifact) {
  const std::string path = fresh_path("replace.csv");
  spill(path, kOld);
  AtomicFileWriter writer;
  writer.open(path);
  writer.stream() << kNew;
  writer.commit();
  EXPECT_EQ(slurp(path), kNew);
  EXPECT_FALSE(exists(AtomicFileWriter::temp_path_for(path)));
  std::remove(path.c_str());
}

TEST(AtomicFileWriter, TempPathDerivationIsStable) {
  // Crash-recovery sweeps and tests grep for this exact derivation.
  EXPECT_EQ(AtomicFileWriter::temp_path_for("a/b/grid.csv"),
            "a/b/grid.csv.tmp");
}

TEST(AtomicFileWriter, DestructorWithoutCommitLeavesNothingBehind) {
  const std::string path = fresh_path("abandoned.csv");
  {
    AtomicFileWriter writer;
    writer.open(path);
    writer.stream() << kNew;
    // No commit: going out of scope aborts the write.
  }
  EXPECT_FALSE(exists(path));
  EXPECT_FALSE(exists(AtomicFileWriter::temp_path_for(path)));
}

TEST(AtomicFileWriter, MissingParentDirectorySurfacesAsIoError) {
  const std::string path =
      temp_path("no_such_dir") + "/sub/never/grid.csv";
  AtomicFileWriter writer;
  writer.open(path);
  writer.stream() << kNew;
  try {
    writer.commit();
    FAIL() << "expected io::IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.path(), path);
    EXPECT_FALSE(e.injected());
    EXPECT_NE(e.error_number(), 0);
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
  EXPECT_FALSE(exists(path));
}

TEST(AtomicFileWriter, InjectedWriteFaultsLeaveTheOldArtifactIntact) {
  // enospc / eio / short / fsync: the commit throws, the temp file is
  // cleaned up, and the final path still holds the previous artifact.
  const struct {
    const char* spec;
    int want_errno;
  } cases[] = {
      {"seed=5,enospc=1", ENOSPC},
      {"seed=5,eio=1", EIO},
      {"seed=5,short=1", 0},
      {"seed=5,fsync=1", EIO},
  };
  for (const auto& c : cases) {
    const std::string path = fresh_path("fault.csv");
    spill(path, kOld);
    AtomicFileWriter writer;
    writer.open(path, certain(c.spec));
    writer.stream() << kNew;
    try {
      writer.commit();
      FAIL() << "expected an injected fault for " << c.spec;
    } catch (const IoError& e) {
      EXPECT_TRUE(e.injected()) << c.spec;
      EXPECT_EQ(e.error_number(), c.want_errno) << c.spec;
      EXPECT_NE(std::string(e.what()).find("[injected]"), std::string::npos)
          << c.spec;
    }
    EXPECT_EQ(slurp(path), kOld) << c.spec;
    EXPECT_FALSE(exists(AtomicFileWriter::temp_path_for(path))) << c.spec;
    std::remove(path.c_str());
  }
}

TEST(AtomicFileWriter, CrashBeforeRenameLeavesADurableTempAndTheOldFinal) {
  // The recovery story: the new artifact is complete at the temp path, the
  // old one is untouched at the final path — exactly the state a re-run
  // (or an operator) can heal from.
  const std::string path = fresh_path("crash.csv");
  spill(path, kOld);
  {
    AtomicFileWriter writer;
    writer.open(path, certain("seed=5,crash=1"));
    writer.stream() << kNew;
    EXPECT_THROW(writer.commit(), IoError);
    // The destructor runs here: it must NOT unlink the deliberately
    // left-behind temp file.
  }
  EXPECT_EQ(slurp(path), kOld);
  const std::string temp = AtomicFileWriter::temp_path_for(path);
  ASSERT_TRUE(exists(temp));
  EXPECT_EQ(slurp(temp), kNew);
  std::remove(path.c_str());
  std::remove(temp.c_str());
}

TEST(AtomicFileWriter, TornWriteNeverTouchesTheFinalPath) {
  // A "process died mid-write" tear leaves a strict prefix at the *temp*
  // path only; the final path never holds torn bytes.
  const std::string path = fresh_path("torn.csv");
  spill(path, kOld);
  {
    AtomicFileWriter writer;
    writer.open(path, certain("seed=11,torn=1"));
    writer.stream() << kNew;
    EXPECT_THROW(writer.commit(), IoError);
  }
  EXPECT_EQ(slurp(path), kOld);
  const std::string temp = AtomicFileWriter::temp_path_for(path);
  ASSERT_TRUE(exists(temp));
  const std::string torn = slurp(temp);
  EXPECT_GE(torn.size(), 1u);
  EXPECT_LT(torn.size(), std::string(kNew).size());
  EXPECT_EQ(torn, std::string(kNew).substr(0, torn.size()));
  std::remove(path.c_str());
  std::remove(temp.c_str());
}

TEST(AtomicFileWriter, FaultScheduleReplaysPerPath) {
  // commit() draws exactly one action from a stream salted by the final
  // path, so an outcome is a pure function of (spec, path): re-running a
  // failed artifact write reproduces the failure, and distinct artifacts
  // fail independently. The disk-chaos CI leg depends on both halves.
  const auto spec = certain("seed=21,enospc=0.5");
  const auto outcomes = [&]() {
    std::string seq;
    for (int i = 0; i < 16; ++i) {
      const std::string path =
          fresh_path("replay_" + std::to_string(i) + ".csv");
      AtomicFileWriter writer;
      writer.open(path, spec);
      writer.stream() << kNew;
      try {
        writer.commit();
        seq += 'P';
      } catch (const IoError&) {
        seq += 'F';
      }
      std::remove(path.c_str());
    }
    return seq;
  };
  const std::string first = outcomes();
  const std::string second = outcomes();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find('P'), std::string::npos);
  EXPECT_NE(first.find('F'), std::string::npos);
}

TEST(WriteFileAtomic, ConvenienceWrapperRoundTripsAndInjects) {
  const std::string path = fresh_path("oneshot.json");
  write_file_atomic(path, "{\"ok\": true}\n");
  EXPECT_EQ(slurp(path), "{\"ok\": true}\n");
  const FsFaultSpec spec = certain("seed=5,eio=1");
  EXPECT_THROW(write_file_atomic(path, "{}\n", &spec), IoError);
  EXPECT_EQ(slurp(path), "{\"ok\": true}\n"); // old artifact intact
  std::remove(path.c_str());
}

} // namespace
} // namespace tmemo::io
