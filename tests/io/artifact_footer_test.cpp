// Self-describing artifact footer tests (io/artifact_footer.hpp): the
// record-count sentinel round-trips, mismatches and missing footers are
// rejected with a reason, and — the property the footer exists for — every
// strict byte prefix of a real campaign grid CSV fails verification.
#include "io/artifact_footer.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "sim/campaign.hpp"
#include "workloads/haar.hpp"
#include "workloads/workload.hpp"

namespace tmemo {
namespace {

std::string with_footer(const std::string& body, std::size_t rows) {
  std::ostringstream out;
  out << body;
  io::write_artifact_footer(out, rows);
  return out.str();
}

TEST(ArtifactFooter, RoundTripsTheDeclaredRowCount) {
  const std::string artifact =
      with_footer("kernel,hit_rate\nhaar,0.5\nsobel,0.25\n", 2);
  const io::ArtifactFooterCheck check =
      io::verify_artifact_footer(artifact);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.rows, 2u);
}

TEST(ArtifactFooter, CommentLinesAreNotCountedAsRecords) {
  const std::string artifact = with_footer(
      "kernel,hit_rate\n# a comment mid-grid\nhaar,0.5\n", 1);
  const io::ArtifactFooterCheck check =
      io::verify_artifact_footer(artifact);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.rows, 1u);
}

TEST(ArtifactFooter, ZeroRowGridIsStillAValidArtifact) {
  // Header + footer: an empty sweep is a complete (if boring) result.
  const std::string artifact = with_footer("kernel,hit_rate\n", 0);
  EXPECT_TRUE(io::verify_artifact_footer(artifact).ok);
}

TEST(ArtifactFooter, RejectsWithAReason) {
  // Each broken shape must fail and say why — these strings reach CI logs.
  const struct {
    std::string content;
    const char* why;
  } cases[] = {
      {"", "empty"},
      {with_footer("kernel\nhaar\n", 5), "count mismatch"},
      {"kernel\nhaar\n", "no footer"},
      {with_footer("kernel\nhaar\n", 1).substr(
           0, with_footer("kernel\nhaar\n", 1).size() - 1),
       "torn trailing newline"},
      {"#tmemo-artifact-end,rows=0\n", "footer with no header"},
      {"kernel\n#tmemo-artifact-end,rows=x\n", "non-numeric count"},
  };
  for (const auto& c : cases) {
    const io::ArtifactFooterCheck check =
        io::verify_artifact_footer(c.content);
    EXPECT_FALSE(check.ok) << c.why;
    EXPECT_FALSE(check.error.empty()) << c.why;
  }
}

TEST(ArtifactFooter, EveryStrictPrefixOfARealGridCsvIsRejected) {
  // The end-to-end property on the artifact tmemo_sim actually emits: run
  // a small campaign, take its footered CSV, and sweep every byte cut —
  // no truncation may pass as a complete, smaller grid.
  SweepSpec spec;
  spec.factory = [] {
    std::vector<std::unique_ptr<Workload>> v;
    v.push_back(std::make_unique<HaarWorkload>(128));
    return v;
  };
  spec.axis = SweepAxis::error_rate(0.0, 0.04, 3);
  const CampaignResult res = CampaignEngine(1).run(spec);
  ASSERT_TRUE(res.all_ok());

  std::ostringstream out;
  write_campaign_csv(res, out);
  const std::string text = out.str();
  ASSERT_GT(text.size(), 60u);

  const io::ArtifactFooterCheck whole = io::verify_artifact_footer(text);
  ASSERT_TRUE(whole.ok) << whole.error;
  EXPECT_EQ(whole.rows, res.jobs.size());

  for (std::size_t cut = 1; cut < text.size(); ++cut) {
    const io::ArtifactFooterCheck check =
        io::verify_artifact_footer(std::string_view(text).substr(0, cut));
    EXPECT_FALSE(check.ok)
        << "cut at byte " << cut << " verified as complete";
  }
}

} // namespace
} // namespace tmemo
