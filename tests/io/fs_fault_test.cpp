// Filesystem fault-injection tests (io/fs_fault.hpp): the --inject-fs
// grammar, the per-path splitmix64 schedule (same seed + same path → the
// same fault sequence, distinct paths → independent streams), the
// cumulative-probability draw order, and the strict-prefix cut points that
// torn/short writes use.
#include "io/fs_fault.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace tmemo::io {
namespace {

TEST(FsFaultSpec, ParsesTheFullGrammar) {
  const auto spec = FsFaultSpec::parse(
      "seed=7,short=0.02,enospc=0.01,eio=0.03,fsync=0.04,crash=0.05,"
      "torn=0.06");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->seed, 7u);
  EXPECT_DOUBLE_EQ(spec->short_prob, 0.02);
  EXPECT_DOUBLE_EQ(spec->enospc_prob, 0.01);
  EXPECT_DOUBLE_EQ(spec->eio_prob, 0.03);
  EXPECT_DOUBLE_EQ(spec->fsync_prob, 0.04);
  EXPECT_DOUBLE_EQ(spec->crash_prob, 0.05);
  EXPECT_DOUBLE_EQ(spec->torn_prob, 0.06);
  EXPECT_TRUE(spec->enabled());
}

TEST(FsFaultSpec, SeedAloneParsesButInjectsNothing) {
  const auto spec = FsFaultSpec::parse("seed=42");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->seed, 42u);
  EXPECT_FALSE(spec->enabled());
  FsFaultInjector injector(*spec, fs_fault_path_salt("out.csv"));
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(injector.next_action(), FsFaultAction::kPass);
  }
}

TEST(FsFaultSpec, RejectsMalformedSpecs) {
  const char* const bad[] = {
      "",                 // nothing to parse
      "seed",             // no '='
      "seed=",            // empty value
      "seed=abc",         // not a u64
      "frobnicate=0.5",   // unknown key
      "short=1.5",        // probability above 1
      "short=-0.1",       // negative probability
      "short=0.5,,eio=1", // empty field
      "short=.5",         // no whole part (narrow grammar, like net/fault)
  };
  for (const char* text : bad) {
    EXPECT_FALSE(FsFaultSpec::parse(text).has_value()) << "'" << text << "'";
  }
}

TEST(FsFaultSpec, ProbabilityBoundsZeroAndOneParse) {
  EXPECT_TRUE(FsFaultSpec::parse("enospc=0").has_value());
  EXPECT_TRUE(FsFaultSpec::parse("enospc=1").has_value());
  EXPECT_TRUE(FsFaultSpec::parse("enospc=1.0").has_value());
  EXPECT_FALSE(FsFaultSpec::parse("enospc=1.000001").has_value());
}

TEST(FsFaultInjector, DisabledInjectorAlwaysPasses) {
  FsFaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(injector.next_action(), FsFaultAction::kPass);
  }
}

TEST(FsFaultInjector, CertainProbabilitySelectsThatAction) {
  // Each knob at 1.0 owns the whole unit interval: the draw order cannot
  // leak one fault into another's budget.
  const struct {
    const char* spec;
    FsFaultAction want;
  } cases[] = {
      {"seed=1,short=1", FsFaultAction::kShortWrite},
      {"seed=1,enospc=1", FsFaultAction::kEnospc},
      {"seed=1,eio=1", FsFaultAction::kEio},
      {"seed=1,fsync=1", FsFaultAction::kFsyncFail},
      {"seed=1,crash=1", FsFaultAction::kCrashBeforeRename},
      {"seed=1,torn=1", FsFaultAction::kTornAtByte},
  };
  for (const auto& c : cases) {
    const auto spec = FsFaultSpec::parse(c.spec);
    ASSERT_TRUE(spec.has_value()) << c.spec;
    FsFaultInjector injector(*spec, fs_fault_path_salt("grid.csv"));
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(injector.next_action(), c.want) << c.spec;
    }
  }
}

TEST(FsFaultInjector, SameSeedAndPathReplayTheSameSchedule) {
  const auto spec =
      FsFaultSpec::parse("seed=99,short=0.2,enospc=0.2,crash=0.2");
  ASSERT_TRUE(spec.has_value());
  const std::uint64_t salt = fs_fault_path_salt("results/fig10.csv");
  FsFaultInjector a(*spec, salt);
  FsFaultInjector b(*spec, salt);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(a.next_action(), b.next_action()) << "draw " << i;
  }
}

TEST(FsFaultInjector, DistinctPathsDrawIndependentSchedules) {
  const auto spec = FsFaultSpec::parse("seed=99,enospc=0.5");
  ASSERT_TRUE(spec.has_value());
  FsFaultInjector a(*spec, fs_fault_path_salt("results/a.csv"));
  FsFaultInjector b(*spec, fs_fault_path_salt("results/b.csv"));
  bool diverged = false;
  for (int i = 0; i < 256 && !diverged; ++i) {
    diverged = a.next_action() != b.next_action();
  }
  EXPECT_TRUE(diverged)
      << "two files under the same spec replayed identical schedules";
}

TEST(FsFaultInjector, PathSaltIsAPureFunctionOfThePath) {
  EXPECT_EQ(fs_fault_path_salt("out.csv"), fs_fault_path_salt("out.csv"));
  EXPECT_NE(fs_fault_path_salt("out.csv"), fs_fault_path_salt("out.json"));
  EXPECT_NE(fs_fault_path_salt(""), fs_fault_path_salt("x"));
}

TEST(FsFaultInjector, CutPointIsAlwaysAStrictPrefix) {
  const auto spec = FsFaultSpec::parse("seed=3,torn=1");
  ASSERT_TRUE(spec.has_value());
  FsFaultInjector injector(*spec, fs_fault_path_salt("torn.csv"));
  for (std::size_t total : {std::size_t{2}, std::size_t{3}, std::size_t{10},
                            std::size_t{4096}}) {
    for (int i = 0; i < 64; ++i) {
      const std::size_t cut = injector.cut_point(total);
      EXPECT_GE(cut, 1u) << "total " << total;
      EXPECT_LT(cut, total) << "total " << total;
    }
  }
}

TEST(FsFaultInjector, ActionNamesAreStable) {
  // The names appear in IoError messages and CI grep lines; renaming one
  // silently would break the disk-chaos smoke.
  EXPECT_STREQ(fs_fault_action_name(FsFaultAction::kPass), "pass");
  EXPECT_STREQ(fs_fault_action_name(FsFaultAction::kShortWrite), "short");
  EXPECT_STREQ(fs_fault_action_name(FsFaultAction::kEnospc), "enospc");
  EXPECT_STREQ(fs_fault_action_name(FsFaultAction::kEio), "eio");
  EXPECT_STREQ(fs_fault_action_name(FsFaultAction::kFsyncFail), "fsync");
  EXPECT_STREQ(fs_fault_action_name(FsFaultAction::kCrashBeforeRename),
               "crash");
  EXPECT_STREQ(fs_fault_action_name(FsFaultAction::kTornAtByte), "torn");
}

} // namespace
} // namespace tmemo::io
