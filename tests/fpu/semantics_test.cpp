#include "fpu/semantics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"

namespace tmemo {
namespace {

float eval1(FpOpcode op, float a) { return evaluate_fp_op(op, {a, 0, 0}); }
float eval2(FpOpcode op, float a, float b) {
  return evaluate_fp_op(op, {a, b, 0});
}
float eval3(FpOpcode op, float a, float b, float c) {
  return evaluate_fp_op(op, {a, b, c});
}

TEST(Semantics, Arithmetic) {
  EXPECT_EQ(eval2(FpOpcode::kAdd, 1.5f, 2.25f), 3.75f);
  EXPECT_EQ(eval2(FpOpcode::kSub, 1.5f, 2.25f), -0.75f);
  EXPECT_EQ(eval2(FpOpcode::kMul, 1.5f, 2.0f), 3.0f);
  EXPECT_EQ(eval3(FpOpcode::kMulAdd, 2.0f, 3.0f, 1.0f), 7.0f);
}

TEST(Semantics, MulAddIsFused) {
  // fma(a, b, c) differs from a*b+c when the product needs extra precision.
  const float a = 1.0f + 0x1.0p-12f;
  const float b = 1.0f - 0x1.0p-12f;
  const float c = -1.0f;
  EXPECT_EQ(eval3(FpOpcode::kMulAdd, a, b, c), std::fmaf(a, b, c));
}

TEST(Semantics, MinMax) {
  EXPECT_EQ(eval2(FpOpcode::kMin, -1.0f, 2.0f), -1.0f);
  EXPECT_EQ(eval2(FpOpcode::kMax, -1.0f, 2.0f), 2.0f);
  // IEEE minNum semantics: NaN operand yields the non-NaN value.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(eval2(FpOpcode::kMin, nan, 3.0f), 3.0f);
  EXPECT_EQ(eval2(FpOpcode::kMax, 3.0f, nan), 3.0f);
}

TEST(Semantics, Rounding) {
  EXPECT_EQ(eval1(FpOpcode::kFloor, 2.7f), 2.0f);
  EXPECT_EQ(eval1(FpOpcode::kFloor, -2.1f), -3.0f);
  EXPECT_EQ(eval1(FpOpcode::kCeil, 2.1f), 3.0f);
  EXPECT_EQ(eval1(FpOpcode::kCeil, -2.7f), -2.0f);
  EXPECT_EQ(eval1(FpOpcode::kTrunc, 2.9f), 2.0f);
  EXPECT_EQ(eval1(FpOpcode::kTrunc, -2.9f), -2.0f);
  // Round-to-nearest-even on ties.
  EXPECT_EQ(eval1(FpOpcode::kRndNe, 2.5f), 2.0f);
  EXPECT_EQ(eval1(FpOpcode::kRndNe, 3.5f), 4.0f);
}

TEST(Semantics, FractAbsNeg) {
  EXPECT_FLOAT_EQ(eval1(FpOpcode::kFract, 2.75f), 0.75f);
  EXPECT_FLOAT_EQ(eval1(FpOpcode::kFract, -0.25f), 0.75f);
  EXPECT_EQ(eval1(FpOpcode::kAbs, -3.5f), 3.5f);
  EXPECT_EQ(eval1(FpOpcode::kNeg, 3.5f), -3.5f);
  EXPECT_EQ(eval1(FpOpcode::kNeg, -0.0f), 0.0f);
}

TEST(Semantics, Transcendental) {
  EXPECT_EQ(eval1(FpOpcode::kSqrt, 9.0f), 3.0f);
  EXPECT_FLOAT_EQ(eval1(FpOpcode::kRsqrt, 4.0f), 0.5f);
  EXPECT_FLOAT_EQ(eval1(FpOpcode::kRecip, 8.0f), 0.125f);
  EXPECT_FLOAT_EQ(eval1(FpOpcode::kSin, 0.0f), 0.0f);
  EXPECT_FLOAT_EQ(eval1(FpOpcode::kCos, 0.0f), 1.0f);
  EXPECT_EQ(eval1(FpOpcode::kExp2, 3.0f), 8.0f);
  EXPECT_EQ(eval1(FpOpcode::kLog2, 8.0f), 3.0f);
}

TEST(Semantics, Fp2IntTruncatesAndSaturates) {
  EXPECT_EQ(eval1(FpOpcode::kFp2Int, 3.99f), 3.0f);
  EXPECT_EQ(eval1(FpOpcode::kFp2Int, -3.99f), -3.0f);
  EXPECT_EQ(eval1(FpOpcode::kFp2Int, 0.0f), 0.0f);
  // Saturation at the int32 boundaries (no UB).
  EXPECT_EQ(eval1(FpOpcode::kFp2Int, 1e20f), 2147483520.0f);
  EXPECT_EQ(eval1(FpOpcode::kFp2Int, -1e20f), -2147483648.0f);
  // NaN converts to 0 (a common GPU convention).
  EXPECT_EQ(eval1(FpOpcode::kFp2Int, std::numeric_limits<float>::quiet_NaN()),
            0.0f);
}

TEST(Semantics, Int2Fp) {
  EXPECT_EQ(eval1(FpOpcode::kInt2Fp, 7.0f), 7.0f);
  EXPECT_EQ(eval1(FpOpcode::kInt2Fp, -7.9f), -7.0f);
}

TEST(Semantics, Comparisons) {
  EXPECT_EQ(eval2(FpOpcode::kSetE, 2.0f, 2.0f), 1.0f);
  EXPECT_EQ(eval2(FpOpcode::kSetE, 2.0f, 3.0f), 0.0f);
  EXPECT_EQ(eval2(FpOpcode::kSetGt, 3.0f, 2.0f), 1.0f);
  EXPECT_EQ(eval2(FpOpcode::kSetGt, 2.0f, 2.0f), 0.0f);
  EXPECT_EQ(eval2(FpOpcode::kSetGe, 2.0f, 2.0f), 1.0f);
  EXPECT_EQ(eval2(FpOpcode::kSetGe, 1.0f, 2.0f), 0.0f);
  EXPECT_EQ(eval2(FpOpcode::kSetNe, 1.0f, 2.0f), 1.0f);
  EXPECT_EQ(eval2(FpOpcode::kSetNe, 2.0f, 2.0f), 0.0f);
}

TEST(Semantics, ComparisonsWithNan) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(eval2(FpOpcode::kSetE, nan, nan), 0.0f);
  EXPECT_EQ(eval2(FpOpcode::kSetNe, nan, nan), 1.0f);
  EXPECT_EQ(eval2(FpOpcode::kSetGt, nan, 0.0f), 0.0f);
  EXPECT_EQ(eval2(FpOpcode::kSetGe, nan, 0.0f), 0.0f);
}

TEST(Semantics, ConditionalMove) {
  EXPECT_EQ(eval3(FpOpcode::kCndGe, 1.0f, 5.0f, 7.0f), 5.0f);
  EXPECT_EQ(eval3(FpOpcode::kCndGe, 0.0f, 5.0f, 7.0f), 5.0f); // >= 0
  EXPECT_EQ(eval3(FpOpcode::kCndGe, -0.5f, 5.0f, 7.0f), 7.0f);
}

TEST(Semantics, SpecialValuesPropagate) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(eval2(FpOpcode::kAdd, inf, 1.0f), inf);
  EXPECT_TRUE(std::isnan(eval2(FpOpcode::kSub, inf, inf)));
  EXPECT_EQ(eval1(FpOpcode::kRecip, 0.0f), inf);
  EXPECT_TRUE(std::isnan(eval1(FpOpcode::kSqrt, -1.0f)));
  EXPECT_EQ(eval1(FpOpcode::kLog2, 0.0f), -inf);
}

// Property: the functional core agrees with an independent double-precision
// computation to within 1 ULP-ish for random operands (it IS the golden
// model, so this is a sanity cross-check against libm).
class SemanticsRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SemanticsRandomTest, AgreesWithDoublePrecisionReference) {
  Xorshift128 rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 2000; ++i) {
    const float a = 200.0f * rng.next_float() - 100.0f;
    const float b = 200.0f * rng.next_float() - 100.0f;
    const double ref_add = static_cast<double>(a) + static_cast<double>(b);
    EXPECT_NEAR(eval2(FpOpcode::kAdd, a, b), ref_add,
                std::abs(ref_add) * 1e-6 + 1e-6);
    const double ref_mul = static_cast<double>(a) * static_cast<double>(b);
    EXPECT_NEAR(eval2(FpOpcode::kMul, a, b), ref_mul,
                std::abs(ref_mul) * 1e-6 + 1e-6);
    if (a > 0.0f) {
      EXPECT_NEAR(eval1(FpOpcode::kSqrt, a),
                  std::sqrt(static_cast<double>(a)), 1e-3);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemanticsRandomTest,
                         ::testing::Values(1, 2, 3, 4));

} // namespace
} // namespace tmemo
