#include "fpu/opcode.hpp"

#include <gtest/gtest.h>

#include <set>

namespace tmemo {
namespace {

std::vector<FpOpcode> all_opcodes() {
  std::vector<FpOpcode> ops;
  for (int i = 0; i < kNumFpOpcodes; ++i) {
    ops.push_back(static_cast<FpOpcode>(i));
  }
  return ops;
}

TEST(Opcode, TwentySevenOpcodesModeled) {
  EXPECT_EQ(kNumFpOpcodes, 27);
  // Names must be unique and defined for all 27.
  std::set<std::string_view> names;
  for (FpOpcode op : all_opcodes()) {
    const auto name = opcode_name(op);
    EXPECT_NE(name, "?");
    names.insert(name);
  }
  EXPECT_EQ(names.size(), 27u);
}

TEST(Opcode, ArityBounds) {
  for (FpOpcode op : all_opcodes()) {
    const int a = opcode_arity(op);
    EXPECT_GE(a, 1) << opcode_name(op);
    EXPECT_LE(a, 3) << opcode_name(op);
  }
}

TEST(Opcode, SpecificArities) {
  EXPECT_EQ(opcode_arity(FpOpcode::kAdd), 2);
  EXPECT_EQ(opcode_arity(FpOpcode::kMulAdd), 3);
  EXPECT_EQ(opcode_arity(FpOpcode::kCndGe), 3);
  EXPECT_EQ(opcode_arity(FpOpcode::kSqrt), 1);
  EXPECT_EQ(opcode_arity(FpOpcode::kFp2Int), 1);
  EXPECT_EQ(opcode_arity(FpOpcode::kSetGe), 2);
}

TEST(Opcode, UnitSteering) {
  EXPECT_EQ(opcode_unit(FpOpcode::kAdd), FpuType::kAdd);
  EXPECT_EQ(opcode_unit(FpOpcode::kSub), FpuType::kAdd);
  EXPECT_EQ(opcode_unit(FpOpcode::kMin), FpuType::kAdd);
  EXPECT_EQ(opcode_unit(FpOpcode::kSetGt), FpuType::kAdd);
  EXPECT_EQ(opcode_unit(FpOpcode::kCndGe), FpuType::kAdd);
  EXPECT_EQ(opcode_unit(FpOpcode::kMul), FpuType::kMul);
  EXPECT_EQ(opcode_unit(FpOpcode::kMulAdd), FpuType::kMulAdd);
  EXPECT_EQ(opcode_unit(FpOpcode::kSqrt), FpuType::kSqrt);
  EXPECT_EQ(opcode_unit(FpOpcode::kRsqrt), FpuType::kSqrt);
  EXPECT_EQ(opcode_unit(FpOpcode::kRecip), FpuType::kRecip);
  EXPECT_EQ(opcode_unit(FpOpcode::kFp2Int), FpuType::kFp2Int);
  EXPECT_EQ(opcode_unit(FpOpcode::kInt2Fp), FpuType::kInt2Fp);
  EXPECT_EQ(opcode_unit(FpOpcode::kSin), FpuType::kTrig);
  EXPECT_EQ(opcode_unit(FpOpcode::kCos), FpuType::kTrig);
  EXPECT_EQ(opcode_unit(FpOpcode::kExp2), FpuType::kExpLog);
  EXPECT_EQ(opcode_unit(FpOpcode::kLog2), FpuType::kExpLog);
}

TEST(Opcode, CommutativityFlags) {
  EXPECT_TRUE(opcode_commutative(FpOpcode::kAdd));
  EXPECT_TRUE(opcode_commutative(FpOpcode::kMul));
  EXPECT_TRUE(opcode_commutative(FpOpcode::kMulAdd));
  EXPECT_TRUE(opcode_commutative(FpOpcode::kMin));
  EXPECT_TRUE(opcode_commutative(FpOpcode::kMax));
  EXPECT_TRUE(opcode_commutative(FpOpcode::kSetE));
  EXPECT_TRUE(opcode_commutative(FpOpcode::kSetNe));
  EXPECT_FALSE(opcode_commutative(FpOpcode::kSub));
  EXPECT_FALSE(opcode_commutative(FpOpcode::kSetGt));
  EXPECT_FALSE(opcode_commutative(FpOpcode::kSetGe));
  EXPECT_FALSE(opcode_commutative(FpOpcode::kCndGe));
  EXPECT_FALSE(opcode_commutative(FpOpcode::kSqrt));
}

TEST(FpuType, LatencyMatchesPaper) {
  // Paper §5.1: all units 4 cycles, RECIP balanced to 16.
  for (FpuType t : kAllFpuTypes) {
    if (t == FpuType::kRecip) {
      EXPECT_EQ(fpu_latency_cycles(t), 16);
    } else {
      EXPECT_EQ(fpu_latency_cycles(t), 4);
    }
  }
}

TEST(FpuType, TranscendentalUnitsLiveOnT) {
  EXPECT_TRUE(fpu_type_is_transcendental(FpuType::kSqrt));
  EXPECT_TRUE(fpu_type_is_transcendental(FpuType::kRecip));
  EXPECT_TRUE(fpu_type_is_transcendental(FpuType::kTrig));
  EXPECT_TRUE(fpu_type_is_transcendental(FpuType::kExpLog));
  EXPECT_FALSE(fpu_type_is_transcendental(FpuType::kAdd));
  EXPECT_FALSE(fpu_type_is_transcendental(FpuType::kMul));
  EXPECT_FALSE(fpu_type_is_transcendental(FpuType::kMulAdd));
  EXPECT_FALSE(fpu_type_is_transcendental(FpuType::kFp2Int));
  EXPECT_FALSE(fpu_type_is_transcendental(FpuType::kInt2Fp));
}

TEST(FpuType, ReportedTypesAreTheSixOfThePaper) {
  EXPECT_EQ(kReportedFpuTypes.size(), 6u);
  const std::set<FpuType> reported(kReportedFpuTypes.begin(),
                                   kReportedFpuTypes.end());
  EXPECT_TRUE(reported.count(FpuType::kAdd));
  EXPECT_TRUE(reported.count(FpuType::kMul));
  EXPECT_TRUE(reported.count(FpuType::kSqrt));
  EXPECT_TRUE(reported.count(FpuType::kRecip));
  EXPECT_TRUE(reported.count(FpuType::kMulAdd));
  EXPECT_TRUE(reported.count(FpuType::kFp2Int));
}

TEST(FpuType, NamesUnique) {
  std::set<std::string_view> names;
  for (FpuType t : kAllFpuTypes) names.insert(fpu_type_name(t));
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumFpuTypes));
}

class OpcodeUnitConsistency : public ::testing::TestWithParam<int> {};

TEST_P(OpcodeUnitConsistency, UnitIsTranscendentalIffOnTSlot) {
  const auto op = static_cast<FpOpcode>(GetParam());
  const FpuType unit = opcode_unit(op);
  // Every opcode maps to a valid unit with a positive latency.
  EXPECT_GE(static_cast<int>(unit), 0);
  EXPECT_LT(static_cast<int>(unit), kNumFpuTypes);
  EXPECT_GE(fpu_latency_cycles(unit), 1);
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, OpcodeUnitConsistency,
                         ::testing::Range(0, kNumFpOpcodes));

} // namespace
} // namespace tmemo
