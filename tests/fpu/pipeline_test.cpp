#include "fpu/pipeline.hpp"

#include <gtest/gtest.h>

namespace tmemo {
namespace {

FpInstruction make_add(float a, float b) {
  FpInstruction ins;
  ins.opcode = FpOpcode::kAdd;
  ins.operands = {a, b, 0.0f};
  return ins;
}

TEST(FpuPipeline, DepthMatchesUnitLatency) {
  EXPECT_EQ(FpuPipeline(FpuType::kAdd).depth(), 4);
  EXPECT_EQ(FpuPipeline(FpuType::kMulAdd).depth(), 4);
  EXPECT_EQ(FpuPipeline(FpuType::kRecip).depth(), 16);
}

TEST(FpuPipeline, SingleInstructionLatency) {
  FpuPipeline pipe(FpuType::kAdd);
  pipe.issue(make_add(1.0f, 2.0f));
  for (int c = 0; c < 3; ++c) {
    pipe.step();
    EXPECT_FALSE(pipe.retire().has_value()) << "cycle " << c;
  }
  pipe.step();
  ASSERT_TRUE(pipe.retire().has_value());
  EXPECT_EQ(pipe.retire()->result, 3.0f);
  EXPECT_EQ(pipe.retire()->retire_cycle - pipe.retire()->issue_cycle, 4u);
}

TEST(FpuPipeline, RecipLatencyIsSixteen) {
  FpuPipeline pipe(FpuType::kRecip);
  FpInstruction ins;
  ins.opcode = FpOpcode::kRecip;
  ins.operands = {4.0f, 0.0f, 0.0f};
  pipe.issue(ins);
  int cycles = 0;
  while (!pipe.retire().has_value()) {
    pipe.step();
    ++cycles;
    ASSERT_LE(cycles, 16);
  }
  EXPECT_EQ(cycles, 16);
  EXPECT_EQ(pipe.retire()->result, 0.25f);
}

TEST(FpuPipeline, FullyPipelinedThroughput) {
  // One instruction per cycle in, one per cycle out after the fill.
  FpuPipeline pipe(FpuType::kMul);
  int retired = 0;
  for (int c = 0; c < 100; ++c) {
    FpInstruction ins;
    ins.opcode = FpOpcode::kMul;
    ins.operands = {static_cast<float>(c), 2.0f, 0.0f};
    ASSERT_TRUE(pipe.can_issue());
    pipe.issue(ins);
    pipe.step();
    if (pipe.retire().has_value()) {
      EXPECT_EQ(pipe.retire()->result,
                static_cast<float>(retired) * 2.0f);
      ++retired;
    }
  }
  EXPECT_EQ(retired, 100 - pipe.depth() + 1);
  EXPECT_EQ(pipe.occupancy(), pipe.depth() - 1);
}

TEST(FpuPipeline, StructuralHazardRejected) {
  FpuPipeline pipe(FpuType::kAdd);
  pipe.issue(make_add(1, 1));
  EXPECT_FALSE(pipe.can_issue());
  EXPECT_THROW(pipe.issue(make_add(2, 2)), std::invalid_argument);
}

TEST(FpuPipeline, InOrderRetirement) {
  FpuPipeline pipe(FpuType::kAdd);
  std::vector<float> results;
  for (int c = 0; c < 20; ++c) {
    if (pipe.can_issue() && c < 10) {
      pipe.issue(make_add(static_cast<float>(c), 0.0f));
    }
    pipe.step();
    if (pipe.retire().has_value()) results.push_back(pipe.retire()->result);
  }
  ASSERT_EQ(results.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)], static_cast<float>(i));
  }
}

TEST(FpuPipeline, SquashStageRemovesInstruction) {
  FpuPipeline pipe(FpuType::kAdd);
  pipe.issue(make_add(1, 1));
  pipe.step(); // instruction now in stage 1
  EXPECT_TRUE(pipe.squash_stage(1));
  EXPECT_EQ(pipe.occupancy(), 0);
  // The squashed instruction never retires.
  for (int c = 0; c < 8; ++c) {
    pipe.step();
    EXPECT_FALSE(pipe.retire().has_value());
  }
}

TEST(FpuPipeline, SquashInvalidStageReturnsFalse) {
  FpuPipeline pipe(FpuType::kAdd);
  EXPECT_FALSE(pipe.squash_stage(-1));
  EXPECT_FALSE(pipe.squash_stage(4));
  EXPECT_FALSE(pipe.squash_stage(0)); // empty stage
}

TEST(FpuPipeline, FlushReportsSquashedCount) {
  FpuPipeline pipe(FpuType::kAdd);
  pipe.issue(make_add(1, 1));
  pipe.step();
  pipe.issue(make_add(2, 2));
  pipe.step();
  pipe.issue(make_add(3, 3));
  EXPECT_EQ(pipe.occupancy(), 3);
  EXPECT_EQ(pipe.flush(), 3);
  EXPECT_EQ(pipe.occupancy(), 0);
}

TEST(FpuPipeline, ResetRestartsClock) {
  FpuPipeline pipe(FpuType::kAdd);
  pipe.issue(make_add(1, 1));
  pipe.step();
  pipe.step();
  EXPECT_EQ(pipe.now(), 2u);
  pipe.reset();
  EXPECT_EQ(pipe.now(), 0u);
  EXPECT_EQ(pipe.occupancy(), 0);
  EXPECT_FALSE(pipe.retire().has_value());
}

TEST(FpuPipeline, RetireClearedOnNextStep) {
  FpuPipeline pipe(FpuType::kAdd);
  pipe.issue(make_add(2.0f, 3.0f));
  for (int c = 0; c < 4; ++c) pipe.step();
  ASSERT_TRUE(pipe.retire().has_value());
  pipe.step();
  EXPECT_FALSE(pipe.retire().has_value());
}

class PipelineDepthTest : public ::testing::TestWithParam<FpuType> {};

TEST_P(PipelineDepthTest, BubblesPreserveProgramOrder) {
  FpuPipeline pipe(GetParam());
  // Issue with a 3-cycle gap between instructions.
  std::vector<float> results;
  int issued = 0;
  for (int c = 0; c < 120; ++c) {
    if (c % 3 == 0 && issued < 10 && pipe.can_issue()) {
      FpInstruction ins;
      ins.opcode = FpOpcode::kAbs;
      ins.operands = {-static_cast<float>(issued), 0, 0};
      pipe.issue(ins);
      ++issued;
    }
    pipe.step();
    if (pipe.retire().has_value()) results.push_back(pipe.retire()->result);
  }
  ASSERT_EQ(results.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)], static_cast<float>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(AllUnits, PipelineDepthTest,
                         ::testing::ValuesIn(kAllFpuTypes));

} // namespace
} // namespace tmemo
