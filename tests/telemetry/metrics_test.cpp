// MetricRegistry / HistogramSpec / MetricsSnapshot unit tests: lookup
// idempotence, name-collision rejection, exact bucket edges, and the
// commutative merge the campaign engine's determinism rests on.
#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <stdexcept>

#include "telemetry/exporters.hpp"

namespace tmemo::telemetry {
namespace {

constexpr std::uint64_t kU64Max = std::numeric_limits<std::uint64_t>::max();

std::string to_json(const MetricsSnapshot& s) {
  std::ostringstream os;
  write_metrics_json(s, os);
  return os.str();
}

// -- Registry ---------------------------------------------------------------

TEST(MetricRegistry, LookupsAreIdempotent) {
  MetricRegistry reg;
  Counter& c = reg.counter("sim.ops");
  c.add(2);
  EXPECT_EQ(&reg.counter("sim.ops"), &c);
  EXPECT_EQ(reg.counter("sim.ops").value(), 2u);

  Histogram& h = reg.histogram("lat", HistogramSpec::log2());
  EXPECT_EQ(&reg.histogram("lat", HistogramSpec::log2()), &h);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricRegistry, NameCollisionAcrossKindsThrows) {
  MetricRegistry reg;
  reg.counter("m").add();
  EXPECT_THROW((void)reg.gauge("m"), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("m", HistogramSpec::log2()),
               std::invalid_argument);

  reg.gauge("g").set(1);
  EXPECT_THROW((void)reg.counter("g"), std::invalid_argument);

  reg.histogram("h", HistogramSpec::log2()).record(1);
  EXPECT_THROW((void)reg.counter("h"), std::invalid_argument);
  EXPECT_THROW((void)reg.gauge("h"), std::invalid_argument);
}

TEST(MetricRegistry, HistogramSpecCollisionThrows) {
  MetricRegistry reg;
  reg.histogram("h", HistogramSpec::linear(0, 10, 5)).record(3);
  EXPECT_NO_THROW((void)reg.histogram("h", HistogramSpec::linear(0, 10, 5)));
  EXPECT_THROW((void)reg.histogram("h", HistogramSpec::linear(0, 10, 2)),
               std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("h", HistogramSpec::log2()),
               std::invalid_argument);
}

// -- HistogramSpec ----------------------------------------------------------

TEST(HistogramSpec, LinearBucketEdgesAreExact) {
  const HistogramSpec s = HistogramSpec::linear(0, 64, 8); // width 8
  EXPECT_EQ(s.bucket_count(), 9u); // 8 + overflow
  EXPECT_EQ(s.index(0), 0u);
  EXPECT_EQ(s.index(7), 0u);
  EXPECT_EQ(s.index(8), 1u);  // edges are [lo, hi)
  EXPECT_EQ(s.index(63), 7u);
  EXPECT_EQ(s.index(64), 8u); // first out-of-range value -> overflow
  EXPECT_EQ(s.index(kU64Max), 8u);
  EXPECT_EQ(s.bucket_lo(0), 0u);
  EXPECT_EQ(s.bucket_hi(0), 8u);
  EXPECT_EQ(s.bucket_lo(7), 56u);
  EXPECT_EQ(s.bucket_hi(7), 64u);
  EXPECT_EQ(s.bucket_lo(8), 64u);
  EXPECT_EQ(s.bucket_hi(8), kU64Max);
}

TEST(HistogramSpec, LinearValuesBelowLoClampIntoBucketZero) {
  const HistogramSpec s = HistogramSpec::linear(10, 20, 5); // width 2
  EXPECT_EQ(s.index(0), 0u);
  EXPECT_EQ(s.index(10), 0u);
  EXPECT_EQ(s.index(11), 0u);
  EXPECT_EQ(s.index(12), 1u);
  EXPECT_EQ(s.index(19), 4u);
  EXPECT_EQ(s.index(20), 5u);
  EXPECT_EQ(s.bucket_lo(1), 12u);
  EXPECT_EQ(s.bucket_hi(1), 14u);
}

TEST(HistogramSpec, LinearRejectsMalformedShapes) {
  EXPECT_THROW((void)HistogramSpec::linear(5, 5, 1), std::invalid_argument);
  EXPECT_THROW((void)HistogramSpec::linear(6, 5, 1), std::invalid_argument);
  EXPECT_THROW((void)HistogramSpec::linear(0, 10, 0), std::invalid_argument);
  // 10 does not divide by 3: edges would not be exact integers.
  EXPECT_THROW((void)HistogramSpec::linear(0, 10, 3), std::invalid_argument);
}

TEST(HistogramSpec, Log2IndexIsBitWidth) {
  const HistogramSpec s = HistogramSpec::log2();
  EXPECT_EQ(s.bucket_count(), 65u);
  EXPECT_EQ(s.index(0), 0u);
  EXPECT_EQ(s.index(1), 1u);
  EXPECT_EQ(s.index(2), 2u);
  EXPECT_EQ(s.index(3), 2u);
  EXPECT_EQ(s.index(4), 3u);
  EXPECT_EQ(s.index(7), 3u);
  EXPECT_EQ(s.index(8), 4u);
  EXPECT_EQ(s.index(kU64Max), 64u);
  EXPECT_EQ(s.bucket_lo(0), 0u);
  EXPECT_EQ(s.bucket_hi(0), 1u);
  EXPECT_EQ(s.bucket_lo(3), 4u);
  EXPECT_EQ(s.bucket_hi(3), 8u);
  EXPECT_EQ(s.bucket_lo(64), std::uint64_t{1} << 63);
  EXPECT_EQ(s.bucket_hi(64), kU64Max);
}

TEST(Histogram, RecordTracksMomentsAndEmptyMinIsZero) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("h", HistogramSpec::log2());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u); // not uint64 max
  EXPECT_EQ(h.max(), 0u);
  h.record(1);
  h.record(4);
  h.record(9);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 14u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 9u);
  EXPECT_EQ(h.buckets()[h.spec().index(1)], 1u); // [1,1]
  EXPECT_EQ(h.buckets()[h.spec().index(4)], 1u); // [4,7]
  EXPECT_EQ(h.buckets()[h.spec().index(9)], 1u); // [8,15]
}

// -- Snapshot merge ---------------------------------------------------------

MetricsSnapshot make_shard(std::uint64_t counter_v, std::uint64_t gauge_v,
                           std::uint64_t sample) {
  MetricRegistry reg;
  reg.counter("ops").add(counter_v);
  reg.gauge("depth").set(gauge_v);
  reg.histogram("lat", HistogramSpec::linear(0, 8, 4)).record(sample);
  return reg.snapshot();
}

TEST(MetricsSnapshot, MergeAddsCountersMaxesGaugesFoldsHistograms) {
  MetricsSnapshot a = make_shard(3, 2, 1);
  const MetricsSnapshot b = make_shard(5, 7, 6);
  a.merge(b);
  ASSERT_NE(a.find_counter("ops"), nullptr);
  EXPECT_EQ(a.find_counter("ops")->value, 8u);
  EXPECT_EQ(a.find_gauge("depth")->value, 7u); // max, not sum
  const auto* h = a.find_histogram("lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_EQ(h->sum, 7u);
  EXPECT_EQ(h->min, 1u);
  EXPECT_EQ(h->max, 6u);
  EXPECT_EQ(h->buckets[0], 1u);
  EXPECT_EQ(h->buckets[3], 1u);
}

TEST(MetricsSnapshot, MergeIsCommutativeAndAssociative) {
  const MetricsSnapshot s1 = make_shard(1, 10, 0);
  const MetricsSnapshot s2 = make_shard(2, 20, 3);
  const MetricsSnapshot s3 = make_shard(4, 5, 7);

  MetricsSnapshot left = s1;   // (s1 + s2) + s3
  left.merge(s2);
  left.merge(s3);
  MetricsSnapshot right = s3;  // s3 + (s2 + s1), fully reversed
  right.merge(s2);
  right.merge(s1);
  // Byte-identical exports == bit-identical aggregates.
  EXPECT_EQ(to_json(left), to_json(right));
}

TEST(MetricsSnapshot, MergeUnionsDisjointNamesSorted) {
  MetricRegistry ra;
  ra.counter("b").add(1);
  MetricRegistry rb;
  rb.counter("a").add(2);
  rb.counter("c").add(3);
  MetricsSnapshot s = ra.snapshot();
  s.merge(rb.snapshot());
  ASSERT_EQ(s.counters.size(), 3u);
  EXPECT_EQ(s.counters[0].name, "a");
  EXPECT_EQ(s.counters[1].name, "b");
  EXPECT_EQ(s.counters[2].name, "c");
  EXPECT_EQ(s.find_counter("nope"), nullptr);
}

TEST(MetricsSnapshot, MergeRejectsConflictingHistogramSpecs) {
  MetricRegistry ra;
  ra.histogram("h", HistogramSpec::linear(0, 8, 4)).record(1);
  MetricRegistry rb;
  rb.histogram("h", HistogramSpec::log2()).record(1);
  MetricsSnapshot s = ra.snapshot();
  EXPECT_THROW(s.merge(rb.snapshot()), std::invalid_argument);
}

} // namespace
} // namespace tmemo::telemetry
