// End-to-end telemetry tests: metrics opt-in through Simulation::run, the
// run.* shape gauges, the timeline opt-in, and the acceptance criterion of
// the subsystem — campaign-merged snapshots that are bit-identical for any
// worker count.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/campaign.hpp"
#include "sim/simulation.hpp"
#include "telemetry/exporters.hpp"
#include "workloads/haar.hpp"

namespace tmemo {
namespace {

std::string to_json(const telemetry::MetricsSnapshot& s) {
  std::ostringstream os;
  telemetry::write_metrics_json(s, os);
  return os.str();
}

TEST(SimulationTelemetry, OffByDefaultLeavesReportEmpty) {
  Simulation sim;
  HaarWorkload haar(256);
  const KernelRunReport r = sim.run(haar, RunSpec::at_error_rate(0.0));
  EXPECT_TRUE(r.metrics.empty());
  EXPECT_EQ(r.timeline, nullptr);
}

TEST(SimulationTelemetry, MetricsRunCarriesCountersAndShapeGauges) {
  Simulation sim;
  HaarWorkload haar(256);
  const KernelRunReport r =
      sim.run(haar, RunSpec::at_error_rate(0.0).metrics(true));
  ASSERT_FALSE(r.metrics.empty());
  const auto* issues = r.metrics.find_counter("sim.wavefront_issues");
  ASSERT_NE(issues, nullptr);
  EXPECT_GT(issues->value, 0u);
  const auto* lanes = r.metrics.find_counter("sim.lanes_executed");
  ASSERT_NE(lanes, nullptr);
  EXPECT_GT(lanes->value, 0u);
  // An error-free run must retire every op through normal execution or
  // memoized reuse — never the recovery path.
  EXPECT_EQ(r.metrics.find_counter("memo.action.trigger_recovery"), nullptr);

  const auto& dev = sim.config().device;
  ASSERT_NE(r.metrics.find_gauge("run.compute_units"), nullptr);
  EXPECT_EQ(r.metrics.find_gauge("run.compute_units")->value,
            static_cast<std::uint64_t>(dev.compute_units));
  EXPECT_EQ(r.metrics.find_gauge("run.stream_cores_per_cu")->value,
            static_cast<std::uint64_t>(dev.stream_cores_per_cu));
  EXPECT_EQ(r.metrics.find_gauge("run.lut_depth")->value,
            static_cast<std::uint64_t>(dev.fpu.lut_depth));
  // Metrics-only mode must not pay for the timeline.
  EXPECT_EQ(r.timeline, nullptr);
}

TEST(SimulationTelemetry, LutCountersAgreeWithUnitStats) {
  Simulation sim;
  HaarWorkload haar(256);
  const KernelRunReport r =
      sim.run(haar, RunSpec::at_error_rate(0.0).metrics(true));
  std::uint64_t hits = 0;
  std::uint64_t instructions = 0;
  for (const FpuStats& s : r.unit_stats) {
    hits += s.hits;
    instructions += s.instructions;
  }
  ASSERT_NE(r.metrics.find_counter("memo.lut.hits"), nullptr);
  EXPECT_EQ(r.metrics.find_counter("memo.lut.hits")->value, hits);
  const auto* misses = r.metrics.find_counter("memo.lut.misses");
  ASSERT_NE(misses, nullptr);
  // Every lookup is a hit or a miss, and there is at most one per op.
  EXPECT_LE(hits + misses->value, instructions);
  EXPECT_EQ(r.metrics.find_counter("sim.lanes_executed")->value, instructions);
}

TEST(SimulationTelemetry, TimelineRunRecordsEvents) {
  Simulation sim;
  HaarWorkload haar(256);
  const KernelRunReport r =
      sim.run(haar, RunSpec::at_error_rate(0.0).timeline(true));
  ASSERT_NE(r.timeline, nullptr);
  EXPECT_FALSE(r.timeline->events().empty());
  EXPECT_FALSE(r.metrics.empty()); // timeline implies metrics

  std::ostringstream os;
  telemetry::write_chrome_trace(*r.timeline, os);
  EXPECT_NE(os.str().find("\"traceEvents\": ["), std::string::npos);
}

TEST(SimulationTelemetry, RunsAreDeterministic) {
  Simulation sim;
  HaarWorkload haar(256);
  const KernelRunReport a =
      sim.run(haar, RunSpec::at_error_rate(0.01).seed(7).metrics(true));
  const KernelRunReport b =
      sim.run(haar, RunSpec::at_error_rate(0.01).seed(7).metrics(true));
  EXPECT_EQ(to_json(a.metrics), to_json(b.metrics));
}

// -- Campaign aggregation ----------------------------------------------------

SweepSpec small_spec() {
  SweepSpec spec;
  spec.scale = 0.01;
  spec.kernels = {"haar", "fwt", "blackscholes"};
  spec.axis = SweepAxis::error_rate(0.0, 0.04, 3);
  spec.metrics = true;
  return spec;
}

TEST(CampaignTelemetry, MergedSnapshotIsBitIdenticalForAnyWorkerCount) {
  const SweepSpec spec = small_spec();
  const CampaignResult serial = CampaignEngine(1).run(spec);
  const CampaignResult four = CampaignEngine(4).run(spec);
  const CampaignResult hw = CampaignEngine(0).run(spec);
  ASSERT_TRUE(serial.all_ok());
  ASSERT_FALSE(serial.metrics.empty());
  // The subsystem's acceptance criterion: byte-identical exports.
  EXPECT_EQ(to_json(serial.metrics), to_json(four.metrics));
  EXPECT_EQ(to_json(serial.metrics), to_json(hw.metrics));
}

TEST(CampaignTelemetry, MergeCarriesJobAccounting) {
  const CampaignResult r = CampaignEngine(2).run(small_spec());
  ASSERT_NE(r.metrics.find_counter("campaign.jobs"), nullptr);
  EXPECT_EQ(r.metrics.find_counter("campaign.jobs")->value, r.jobs.size());
  EXPECT_EQ(r.metrics.find_counter("campaign.jobs_failed")->value, 0u);
  EXPECT_EQ(r.timeline, nullptr); // timeline was not requested
}

TEST(CampaignTelemetry, TimelineComesFromJobZeroOnly) {
  SweepSpec spec = small_spec();
  spec.timeline = true;
  const CampaignResult r = CampaignEngine(2).run(spec);
  ASSERT_NE(r.timeline, nullptr);
  EXPECT_FALSE(r.timeline->events().empty());
  for (std::size_t i = 1; i < r.jobs.size(); ++i) {
    EXPECT_EQ(r.jobs[i].report.timeline, nullptr) << "job " << i;
  }
}

TEST(CampaignTelemetry, MetricsOffKeepsSnapshotsEmpty) {
  SweepSpec spec = small_spec();
  spec.metrics = false;
  const CampaignResult r = CampaignEngine(2).run(spec);
  EXPECT_TRUE(r.metrics.empty());
  for (const JobResult& j : r.jobs) {
    EXPECT_TRUE(j.report.metrics.empty());
  }
}

} // namespace
} // namespace tmemo
