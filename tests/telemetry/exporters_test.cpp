// Exporter tests: byte-exact JSON/CSV output for a hand-built snapshot
// (the writers are deterministic, so full-string golden comparison is
// valid) and a golden-file schema check for the Chrome trace writer.
#include "telemetry/exporters.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/timeline.hpp"

namespace tmemo::telemetry {
namespace {

MetricsSnapshot sample_snapshot() {
  MetricRegistry reg;
  reg.counter("a.ops").add(3);
  reg.gauge("g.depth").set(7);
  Histogram& h = reg.histogram("h.lat", HistogramSpec::linear(0, 4, 2));
  h.record(1); // bucket [0,2)
  h.record(5); // overflow bucket [4, max)
  return reg.snapshot();
}

TEST(MetricsJson, MatchesGoldenDocument) {
  std::ostringstream os;
  write_metrics_json(sample_snapshot(), os);
  const std::string expected =
      "{\n"
      "  \"schema\": \"tmemo-metrics-v1\",\n"
      "  \"counters\": [\n"
      "    {\"name\": \"a.ops\", \"value\": 3}\n"
      "  ],\n"
      "  \"gauges\": [\n"
      "    {\"name\": \"g.depth\", \"value\": 7}\n"
      "  ],\n"
      "  \"histograms\": [\n"
      "    {\"name\": \"h.lat\", \"scale\": \"linear\", \"count\": 2, "
      "\"sum\": 6, \"min\": 1, \"max\": 5, \"buckets\": "
      "[{\"lo\": 0, \"hi\": 2, \"count\": 1}, "
      "{\"lo\": 4, \"hi\": 18446744073709551615, \"count\": 1}]}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(MetricsJson, EmptySnapshotIsStillAValidDocument) {
  std::ostringstream os;
  write_metrics_json(MetricsSnapshot{}, os);
  EXPECT_EQ(os.str(),
            "{\n  \"schema\": \"tmemo-metrics-v1\",\n  \"counters\": [],\n"
            "  \"gauges\": [],\n  \"histograms\": []\n}\n");
}

TEST(MetricsCsv, MatchesGoldenRows) {
  std::ostringstream os;
  write_metrics_csv(sample_snapshot(), os);
  const std::string expected =
      "kind,name,field,value\n"
      "counter,a.ops,value,3\n"
      "gauge,g.depth,value,7\n"
      "histogram,h.lat,count,2\n"
      "histogram,h.lat,sum,6\n"
      "histogram,h.lat,min,1\n"
      "histogram,h.lat,max,5\n"
      "histogram,h.lat,bucket[0,2),1\n"
      "histogram,h.lat,bucket[4,18446744073709551615),1\n";
  EXPECT_EQ(os.str(), expected);
}

// -- Chrome trace golden -----------------------------------------------------

Timeline sample_timeline() {
  Timeline tl;
  tl.set_process_name(0, "compute_unit 0");

  TimelineEvent span;
  span.phase = TimelineEvent::Phase::kComplete;
  span.name = "ADD";
  span.category = "issue";
  span.pid = 0;
  span.tid = 0;
  span.ts = 0;
  span.dur = 16;
  span.args.emplace_back("lanes", 16);
  span.args.emplace_back("lut_hits", 9);
  tl.complete(std::move(span));

  TimelineEvent mark;
  mark.phase = TimelineEvent::Phase::kInstant;
  mark.name = "eds_error";
  mark.category = "timing";
  mark.pid = 0;
  mark.tid = 3;
  mark.ts = 7;
  tl.instant(std::move(mark));

  TimelineEvent ctr;
  ctr.phase = TimelineEvent::Phase::kCounter;
  ctr.name = "lut";
  ctr.category = "memo";
  ctr.pid = 0;
  ctr.ts = 16;
  ctr.args.emplace_back("hits", 9);
  ctr.args.emplace_back("misses", 7);
  tl.counter(std::move(ctr));
  return tl;
}

TEST(ChromeTrace, MatchesCheckedInGoldenFile) {
  std::ostringstream os;
  write_chrome_trace(sample_timeline(), os);

  const std::string golden_path =
      std::string(TM_TELEMETRY_GOLDEN_DIR) + "/trace_small.json";
  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << "missing golden file: " << golden_path;
  std::stringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(os.str(), golden.str())
      << "trace schema drifted; if intentional, regenerate the golden file";
}

TEST(ChromeTrace, CarriesSchemaLandmarks) {
  std::ostringstream os;
  write_chrome_trace(sample_timeline(), os);
  const std::string t = os.str();
  // The landmarks chrome://tracing / Perfetto rely on.
  EXPECT_NE(t.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(t.find("\"ph\": \"M\""), std::string::npos); // metadata first
  EXPECT_NE(t.find("\"process_name\""), std::string::npos);
  EXPECT_NE(t.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(t.find("\"dur\": 16"), std::string::npos);
  EXPECT_NE(t.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(t.find("\"s\": \"t\""), std::string::npos);
  EXPECT_NE(t.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(t.find("\"dropped_events\": 0"), std::string::npos);
  EXPECT_LT(t.find("\"ph\": \"M\""), t.find("\"ph\": \"X\""));
}

TEST(ChromeTrace, EscapesControlCharactersInNames) {
  Timeline tl;
  TimelineEvent ev;
  ev.name = "a\"b\\c\nd";
  tl.instant(std::move(ev));
  std::ostringstream os;
  write_chrome_trace(tl, os);
  EXPECT_NE(os.str().find("a\\\"b\\\\c\\nd"), std::string::npos);
}

} // namespace
} // namespace tmemo::telemetry
