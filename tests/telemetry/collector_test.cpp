// TelemetryCollector unit tests: synthetic probe-event streams in, exact
// counter/histogram values out, plus the TMEMO_TELEM null-sink contract
// the zero-overhead-when-off guarantee rests on.
#include "telemetry/collector.hpp"

#include <gtest/gtest.h>

#include "fpu/opcode.hpp"
#include "memo/module.hpp"
#include "telemetry/probe.hpp"

namespace tmemo::telemetry {
namespace {

ProbeEvent event(ProbeEvent::Kind kind, std::uint64_t value = 0,
                 std::uint8_t aux = 0, std::uint32_t cu = 0,
                 std::uint16_t core = 0, FpuType unit = FpuType::kAdd) {
  return ProbeEvent{kind, static_cast<std::uint8_t>(unit), aux, core, cu,
                    value};
}

TEST(TelemetryCollector, FoldsEventStreamIntoNamedCounters) {
  TelemetryCollector col;
  col.on_event(event(ProbeEvent::Kind::kWavefrontIssue, 16));
  col.on_event(event(ProbeEvent::Kind::kLutHit));
  col.on_event(event(ProbeEvent::Kind::kEdsError));
  col.on_event(event(ProbeEvent::Kind::kErrorMasked));
  col.on_event(event(ProbeEvent::Kind::kOpRetired, 3,
                     static_cast<std::uint8_t>(MemoAction::kReuseMaskError)));
  col.on_event(event(ProbeEvent::Kind::kLutMiss));
  col.on_event(event(ProbeEvent::Kind::kLutWrite));
  col.on_event(event(ProbeEvent::Kind::kOpRetired, 5,
                     static_cast<std::uint8_t>(MemoAction::kNormalExecution)));
  col.on_event(event(ProbeEvent::Kind::kSpatialReuse, 3));

  const MetricsSnapshot s = col.finish();
  const auto value = [&](const char* name) {
    const auto* c = s.find_counter(name);
    return c == nullptr ? std::uint64_t{0} : c->value;
  };
  EXPECT_EQ(value("sim.wavefront_issues"), 1u);
  EXPECT_EQ(value("memo.lut.hits"), 1u);
  EXPECT_EQ(value("memo.lut.misses"), 1u);
  EXPECT_EQ(value("memo.lut.writes"), 1u);
  EXPECT_EQ(value("timing.eds_errors"), 1u);
  EXPECT_EQ(value("timing.masked_errors"), 1u);
  EXPECT_EQ(value("memo.spatial.reuses"), 1u);
  // 2 retired + 1 spatially served lane.
  EXPECT_EQ(value("sim.lanes_executed"), 3u);
  // Per-unit breakdown (all events above ran on the ADD unit).
  EXPECT_EQ(value("fpu.ADD.hits"), 1u);
  EXPECT_EQ(value("fpu.ADD.misses"), 1u);
  EXPECT_EQ(value("fpu.ADD.ops"), 2u);
  // Per-action breakdown comes from the kOpRetired aux byte.
  EXPECT_EQ(value("memo.action.reuse_mask_error"), 1u);
  EXPECT_EQ(value("memo.action.normal_execution"), 1u);

  const auto* lanes = s.find_histogram("sim.wavefront_active_lanes");
  ASSERT_NE(lanes, nullptr);
  EXPECT_EQ(lanes->count, 1u);
  EXPECT_EQ(lanes->sum, 16u);
  const auto* lat = s.find_histogram("fpu.op_latency_cycles");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 2u);
  EXPECT_EQ(lat->sum, 8u);
}

TEST(TelemetryCollector, EcuReplayAccumulatesCyclesAndBurstLengths) {
  TelemetryCollector col;
  // Two consecutive replayed ops, then a clean op ends the burst.
  for (int i = 0; i < 2; ++i) {
    col.on_event(event(ProbeEvent::Kind::kEcuReplay, 12));
    col.on_event(event(ProbeEvent::Kind::kOpRetired, 15,
                       static_cast<std::uint8_t>(MemoAction::kTriggerRecovery)));
  }
  col.on_event(event(ProbeEvent::Kind::kOpRetired, 3,
                     static_cast<std::uint8_t>(MemoAction::kReuse)));

  const MetricsSnapshot s = col.finish();
  EXPECT_EQ(s.find_counter("timing.ecu.replays")->value, 2u);
  EXPECT_EQ(s.find_counter("timing.ecu.replay_cycles")->value, 24u);
  const auto* burst = s.find_histogram("memo.replay_burst_len");
  ASSERT_NE(burst, nullptr);
  EXPECT_EQ(burst->count, 1u);
  EXPECT_EQ(burst->sum, 2u); // one burst of length 2
}

TEST(TelemetryCollector, FinishFlushesOpenBurstsAndHitRateSpread) {
  TelemetryCollector col;
  // Core (0,0): 1 hit of 2 lookups = 500 permille. An unterminated replay
  // burst (no clean op afterwards) must still be flushed by finish().
  col.on_event(event(ProbeEvent::Kind::kLutHit));
  col.on_event(event(ProbeEvent::Kind::kLutMiss));
  col.on_event(event(ProbeEvent::Kind::kEcuReplay, 12));
  col.on_event(event(ProbeEvent::Kind::kOpRetired, 15,
                     static_cast<std::uint8_t>(MemoAction::kTriggerRecovery)));

  const MetricsSnapshot s = col.finish();
  const auto* spread = s.find_histogram("core.hit_rate_permille");
  ASSERT_NE(spread, nullptr);
  EXPECT_EQ(spread->count, 1u);
  EXPECT_EQ(spread->sum, 500u);
  const auto* burst = s.find_histogram("memo.replay_burst_len");
  ASSERT_NE(burst, nullptr);
  EXPECT_EQ(burst->count, 1u);
  EXPECT_EQ(burst->sum, 1u);
}

TEST(TelemetryCollector, FinishIsIdempotent) {
  TelemetryCollector col;
  col.on_event(event(ProbeEvent::Kind::kLutHit));
  col.on_event(event(ProbeEvent::Kind::kLutMiss));
  (void)col.finish();
  const MetricsSnapshot again = col.finish();
  // A second finish() must not double-flush the derived histograms.
  EXPECT_EQ(again.find_histogram("core.hit_rate_permille")->count, 1u);
}

TEST(TelemetryCollector, TimelineRecordsSpansAndCapsMemory) {
  CollectorConfig cfg;
  cfg.timeline = true;
  cfg.timeline_max_events = 2;
  TelemetryCollector col(cfg);
  for (int op = 0; op < 4; ++op) {
    col.on_event(event(ProbeEvent::Kind::kWavefrontIssue, 8));
    col.on_event(event(ProbeEvent::Kind::kEdsError));
    col.on_event(event(ProbeEvent::Kind::kOpRetired, 3,
                       static_cast<std::uint8_t>(MemoAction::kReuseMaskError)));
  }
  const MetricsSnapshot s = col.finish();
  const std::shared_ptr<const Timeline> tl = col.take_timeline();
  ASSERT_NE(tl, nullptr);
  EXPECT_EQ(tl->events().size(), 2u);
  EXPECT_GT(tl->dropped(), 0u);
  // The drop count is surfaced in the snapshot so campaign merges keep the
  // worst shard's value.
  ASSERT_NE(s.find_gauge("sim.timeline_dropped_events"), nullptr);
  EXPECT_EQ(s.find_gauge("sim.timeline_dropped_events")->value,
            tl->dropped());
  ASSERT_EQ(tl->process_names().size(), 1u);
  EXPECT_EQ(tl->process_names()[0].second, "compute_unit 0");
}

TEST(TelemetryCollector, MetricsOnlyModeHasNoTimeline) {
  TelemetryCollector col;
  col.on_event(event(ProbeEvent::Kind::kLutHit));
  (void)col.finish();
  EXPECT_EQ(col.take_timeline(), nullptr);
}

// -- The TMEMO_TELEM contract ------------------------------------------------

TEST(ProbeMacro, NullSinkNeverEvaluatesTheEventExpression) {
  int evaluations = 0;
  const auto make = [&evaluations] {
    ++evaluations;
    return ProbeEvent{};
  };
  ProbeSink* sink = nullptr;
  TMEMO_TELEM(sink, make());
  EXPECT_EQ(evaluations, 0);

  TelemetryCollector col;
  sink = &col;
  TMEMO_TELEM(sink, make());
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(col.finish().find_counter("sim.lanes_executed")->value, 1u);
}

} // namespace
} // namespace tmemo::telemetry
