#include "memo/lut.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace tmemo {
namespace {

FpInstruction ins(FpOpcode op, float a, float b = 0.0f, float c = 0.0f) {
  FpInstruction i;
  i.opcode = op;
  i.operands = {a, b, c};
  return i;
}

TEST(MemoLut, StartsEmpty) {
  MemoLut lut(2);
  EXPECT_EQ(lut.size(), 0);
  EXPECT_EQ(lut.depth(), 2);
  EXPECT_FALSE(
      lut.lookup(ins(FpOpcode::kAdd, 1, 2), MatchConstraint::exact()));
}

TEST(MemoLut, DepthValidation) {
  EXPECT_THROW(MemoLut(0), std::invalid_argument);
  EXPECT_THROW(MemoLut(-1), std::invalid_argument);
  EXPECT_NO_THROW(MemoLut(1));
  EXPECT_NO_THROW(MemoLut(64));
}

TEST(MemoLut, HitReturnsMemorizedResult) {
  MemoLut lut(2);
  lut.update(ins(FpOpcode::kAdd, 1.0f, 2.0f), 3.0f);
  const auto hit =
      lut.lookup(ins(FpOpcode::kAdd, 1.0f, 2.0f), MatchConstraint::exact());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 3.0f);
}

TEST(MemoLut, OpcodeMustMatchExactly) {
  MemoLut lut(2);
  lut.update(ins(FpOpcode::kAdd, 1.0f, 2.0f), 3.0f);
  // Same operands, different opcode on the same (hypothetical) unit.
  EXPECT_FALSE(
      lut.lookup(ins(FpOpcode::kSub, 1.0f, 2.0f), MatchConstraint::exact()));
}

TEST(MemoLut, FifoEvictionOrder) {
  MemoLut lut(2);
  lut.update(ins(FpOpcode::kMul, 1.0f, 1.0f), 1.0f);
  lut.update(ins(FpOpcode::kMul, 2.0f, 2.0f), 4.0f);
  lut.update(ins(FpOpcode::kMul, 3.0f, 3.0f), 9.0f); // evicts (1,1)
  EXPECT_FALSE(
      lut.lookup(ins(FpOpcode::kMul, 1.0f, 1.0f), MatchConstraint::exact()));
  EXPECT_TRUE(
      lut.lookup(ins(FpOpcode::kMul, 2.0f, 2.0f), MatchConstraint::exact()));
  EXPECT_TRUE(
      lut.lookup(ins(FpOpcode::kMul, 3.0f, 3.0f), MatchConstraint::exact()));
}

TEST(MemoLut, HitDoesNotReorderFifo) {
  // Strict FIFO (paper): a hit on the oldest entry must not protect it.
  MemoLut lut(2);
  lut.update(ins(FpOpcode::kMul, 1.0f, 1.0f), 1.0f);
  lut.update(ins(FpOpcode::kMul, 2.0f, 2.0f), 4.0f);
  EXPECT_TRUE(
      lut.lookup(ins(FpOpcode::kMul, 1.0f, 1.0f), MatchConstraint::exact()));
  lut.update(ins(FpOpcode::kMul, 3.0f, 3.0f), 9.0f);
  // (1,1) was oldest despite the hit; it is evicted.
  EXPECT_FALSE(
      lut.lookup(ins(FpOpcode::kMul, 1.0f, 1.0f), MatchConstraint::exact()));
}

TEST(MemoLut, ApproximateLookup) {
  MemoLut lut(2);
  lut.update(ins(FpOpcode::kSqrt, 16.0f), 4.0f);
  const auto hit = lut.lookup(ins(FpOpcode::kSqrt, 16.3f),
                              MatchConstraint::approximate(0.5f));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 4.0f); // the MEMORIZED result, not the true sqrt(16.3)
  EXPECT_FALSE(lut.lookup(ins(FpOpcode::kSqrt, 17.0f),
                          MatchConstraint::approximate(0.5f)));
}

TEST(MemoLut, NewestEntryCheckedFirst) {
  // Two entries both match approximately: the newest wins (deque front).
  MemoLut lut(2);
  lut.update(ins(FpOpcode::kSqrt, 16.0f), 4.0f);
  lut.update(ins(FpOpcode::kSqrt, 16.2f), 4.02f);
  const auto hit = lut.lookup(ins(FpOpcode::kSqrt, 16.1f),
                              MatchConstraint::approximate(0.5f));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 4.02f);
}

TEST(MemoLut, StatsCountLookupsHitsUpdates) {
  MemoLut lut(2);
  (void)lut.lookup(ins(FpOpcode::kAdd, 1, 2), MatchConstraint::exact());
  lut.update(ins(FpOpcode::kAdd, 1, 2), 3.0f);
  (void)lut.lookup(ins(FpOpcode::kAdd, 1, 2), MatchConstraint::exact());
  (void)lut.lookup(ins(FpOpcode::kAdd, 9, 9), MatchConstraint::exact());
  EXPECT_EQ(lut.stats().lookups, 3u);
  EXPECT_EQ(lut.stats().hits, 1u);
  EXPECT_EQ(lut.stats().updates, 1u);
  EXPECT_DOUBLE_EQ(lut.stats().hit_rate(), 1.0 / 3.0);
  lut.reset_stats();
  EXPECT_EQ(lut.stats().lookups, 0u);
  EXPECT_DOUBLE_EQ(lut.stats().hit_rate(), 0.0);
}

TEST(MemoLut, PreloadIsNotCountedAsUpdate) {
  MemoLut lut(2);
  LutEntry e;
  e.opcode = FpOpcode::kRecip;
  e.operands = {16.0f, 0.0f, 0.0f};
  e.result = 0.0625f;
  lut.preload(e);
  EXPECT_EQ(lut.stats().updates, 0u);
  const auto hit =
      lut.lookup(ins(FpOpcode::kRecip, 16.0f), MatchConstraint::exact());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 0.0625f);
}

TEST(MemoLut, ClearDropsEntriesKeepsStats) {
  MemoLut lut(2);
  lut.update(ins(FpOpcode::kAdd, 1, 2), 3.0f);
  (void)lut.lookup(ins(FpOpcode::kAdd, 1, 2), MatchConstraint::exact());
  lut.clear();
  EXPECT_EQ(lut.size(), 0);
  EXPECT_EQ(lut.stats().hits, 1u); // history survives power-gating stats
  EXPECT_FALSE(
      lut.lookup(ins(FpOpcode::kAdd, 1, 2), MatchConstraint::exact()));
}

class LutDepthTest : public ::testing::TestWithParam<int> {};

TEST_P(LutDepthTest, CapacityIsExactlyDepth) {
  const int depth = GetParam();
  MemoLut lut(depth);
  for (int i = 0; i < depth + 3; ++i) {
    lut.update(ins(FpOpcode::kMul, static_cast<float>(i), 1.0f),
               static_cast<float>(i));
  }
  EXPECT_EQ(lut.size(), depth);
  // The newest `depth` entries survive; anything older is gone.
  for (int i = 0; i < depth + 3; ++i) {
    const bool present =
        lut.lookup(ins(FpOpcode::kMul, static_cast<float>(i), 1.0f),
                   MatchConstraint::exact())
            .has_value();
    EXPECT_EQ(present, i >= 3) << "entry " << i;
  }
}

TEST_P(LutDepthTest, DeeperFifoNeverHitsLess) {
  // Property behind the §4.1 FIFO sweep: for the same reference stream, a
  // deeper FIFO's hit count is >= a shallower one's.
  const int depth = GetParam();
  MemoLut shallow(depth);
  MemoLut deep(depth * 2);
  Xorshift128 rng(77);
  std::uint64_t shallow_hits = 0, deep_hits = 0;
  for (int i = 0; i < 5000; ++i) {
    const float a = static_cast<float>(rng.next_below(12));
    const float b = static_cast<float>(rng.next_below(12));
    const FpInstruction in = ins(FpOpcode::kAdd, a, b);
    const bool s =
        shallow.lookup(in, MatchConstraint::exact()).has_value();
    const bool d = deep.lookup(in, MatchConstraint::exact()).has_value();
    shallow_hits += s ? 1 : 0;
    deep_hits += d ? 1 : 0;
    if (!s) shallow.update(in, a + b);
    if (!d) deep.update(in, a + b);
  }
  EXPECT_GE(deep_hits, shallow_hits);
}

INSTANTIATE_TEST_SUITE_P(Depths, LutDepthTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

} // namespace
} // namespace tmemo
