#include "memo/spatial.hpp"

#include <gtest/gtest.h>

#include "gpu/compute_unit.hpp"

namespace tmemo {
namespace {

FpInstruction ins(FpOpcode op, float a, float b = 0.0f) {
  FpInstruction i;
  i.opcode = op;
  i.operands = {a, b, 0.0f};
  return i;
}

TEST(SpatialMaster, StartsDisarmed) {
  SpatialMaster m;
  EXPECT_FALSE(m.armed());
  EXPECT_FALSE(m.matches(ins(FpOpcode::kAdd, 1, 2), MatchConstraint::exact()));
}

TEST(SpatialMaster, ArmAndMatch) {
  SpatialMaster m;
  m.arm(ins(FpOpcode::kAdd, 1.0f, 2.0f), 3.0f);
  EXPECT_TRUE(m.armed());
  EXPECT_EQ(m.result(), 3.0f);
  EXPECT_TRUE(
      m.matches(ins(FpOpcode::kAdd, 1.0f, 2.0f), MatchConstraint::exact()));
  EXPECT_FALSE(
      m.matches(ins(FpOpcode::kAdd, 1.0f, 2.5f), MatchConstraint::exact()));
  EXPECT_FALSE(
      m.matches(ins(FpOpcode::kSub, 1.0f, 2.0f), MatchConstraint::exact()));
}

TEST(SpatialMaster, ApproximateMatching) {
  SpatialMaster m;
  m.arm(ins(FpOpcode::kMul, 4.0f, 4.0f), 16.0f);
  EXPECT_TRUE(m.matches(ins(FpOpcode::kMul, 4.2f, 3.9f),
                        MatchConstraint::approximate(0.3f)));
  EXPECT_FALSE(m.matches(ins(FpOpcode::kMul, 4.5f, 3.9f),
                         MatchConstraint::approximate(0.3f)));
}

TEST(SpatialMaster, ResetDisarms) {
  SpatialMaster m;
  m.arm(ins(FpOpcode::kAdd, 1, 2), 3.0f);
  m.reset();
  EXPECT_FALSE(m.armed());
}

TEST(SpatialStats, ReuseRateAndAccumulation) {
  SpatialStats s;
  EXPECT_EQ(s.reuse_rate(), 0.0);
  s.comparisons = 10;
  s.reuses = 4;
  EXPECT_DOUBLE_EQ(s.reuse_rate(), 0.4);
  SpatialStats t = s;
  t += s;
  EXPECT_EQ(t.comparisons, 20u);
  EXPECT_EQ(t.reuses, 8u);
}

class SpatialCuTest : public ::testing::Test {
 protected:
  SpatialCuTest() : cu_(DeviceConfig::single_cu(), 1) {
    cu_.set_spatial_memoization(true);
  }

  class RecordingSink final : public ExecutionSink {
   public:
    void consume(const ExecutionRecord& rec) override {
      records.push_back(rec);
    }
    std::vector<ExecutionRecord> records;
  };

  ComputeUnit cu_;
  NoErrorModel none_;
};

TEST_F(SpatialCuTest, UniformWavefrontReusesAllButMaster) {
  RecordingSink sink;
  std::array<float, 64> a{}, b{}, out{};
  a.fill(3.0f);
  b.fill(4.0f);
  cu_.execute_wavefront_op(FpOpcode::kMul, 0, a.data(), b.data(), nullptr,
                           ~0ull, 0, none_, &sink, out.data());
  ASSERT_EQ(sink.records.size(), 64u);
  EXPECT_FALSE(sink.records[0].spatial_reuse); // master executes
  int reused = 0;
  for (std::size_t i = 1; i < 64; ++i) {
    EXPECT_TRUE(sink.records[i].spatial_reuse);
    EXPECT_EQ(sink.records[i].active_stage_cycles, 0);
    EXPECT_EQ(sink.records[i].result, 12.0f);
    ++reused;
  }
  EXPECT_EQ(reused, 63);
  const auto& stats =
      cu_.spatial_stats()[static_cast<std::size_t>(FpuType::kMul)];
  EXPECT_EQ(stats.comparisons, 63u);
  EXPECT_EQ(stats.reuses, 63u);
  for (float v : out) EXPECT_EQ(v, 12.0f);
}

TEST_F(SpatialCuTest, DivergentLanesFallThroughToFpus) {
  RecordingSink sink;
  std::array<float, 64> a{}, out{};
  for (int i = 0; i < 64; ++i) a[static_cast<std::size_t>(i)] = float(i);
  cu_.execute_wavefront_op(FpOpcode::kAbs, 0, a.data(), nullptr, nullptr,
                           ~0ull, 0, none_, &sink, out.data());
  for (const auto& rec : sink.records) {
    EXPECT_FALSE(rec.spatial_reuse);
  }
  // Non-master lanes carry the (failed) comparison cost.
  EXPECT_EQ(sink.records[0].spatial_compares, 0);
  EXPECT_EQ(sink.records[1].spatial_compares, 1);
  // Results still correct.
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], float(i));
  }
}

TEST_F(SpatialCuTest, MasterResetBetweenInstructions) {
  RecordingSink sink;
  std::array<float, 64> a{}, out{};
  a.fill(5.0f);
  cu_.execute_wavefront_op(FpOpcode::kAbs, 0, a.data(), nullptr, nullptr,
                           ~0ull, 0, none_, &sink, out.data());
  // Second instruction with different values: its own master, no stale
  // reuse of 5.0.
  a.fill(7.0f);
  sink.records.clear();
  cu_.execute_wavefront_op(FpOpcode::kAbs, 1, a.data(), nullptr, nullptr,
                           ~0ull, 0, none_, &sink, out.data());
  EXPECT_FALSE(sink.records[0].spatial_reuse);
  EXPECT_EQ(sink.records[1].result, 7.0f);
}

TEST_F(SpatialCuTest, SpatialMasksErrorsExactly) {
  // With a guaranteed error rate, reused lanes mask their would-be errors
  // and commit the master's exact value (the master itself recovers).
  const FixedRateErrorModel always(1.0);
  RecordingSink sink;
  std::array<float, 64> a{}, b{}, out{};
  a.fill(2.0f);
  b.fill(3.0f);
  cu_.execute_wavefront_op(FpOpcode::kAdd, 0, a.data(), b.data(), nullptr,
                           ~0ull, 0, always, &sink, out.data());
  EXPECT_TRUE(sink.records[0].recovered); // master pays one recovery
  for (std::size_t i = 1; i < 64; ++i) {
    EXPECT_TRUE(sink.records[i].spatial_reuse);
    EXPECT_TRUE(sink.records[i].error_masked);
    EXPECT_FALSE(sink.records[i].recovered);
    EXPECT_EQ(sink.records[i].result, 5.0f);
  }
}

TEST_F(SpatialCuTest, DisabledByDefault) {
  ComputeUnit plain(DeviceConfig::single_cu(), 1);
  RecordingSink sink;
  std::array<float, 64> a{}, out{};
  a.fill(1.0f);
  plain.execute_wavefront_op(FpOpcode::kAbs, 0, a.data(), nullptr, nullptr,
                             ~0ull, 0, none_, &sink, out.data());
  for (const auto& rec : sink.records) {
    EXPECT_FALSE(rec.spatial_reuse);
    EXPECT_EQ(rec.spatial_compares, 0);
  }
}

} // namespace
} // namespace tmemo
