#include "memo/match.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>

#include "common/bits.hpp"

namespace tmemo {
namespace {

std::array<float, 3> ops3(float a, float b = 0.0f, float c = 0.0f) {
  return {a, b, c};
}

TEST(MatchConstraint, ExactMatchesBitForBit) {
  const MatchConstraint c = MatchConstraint::exact();
  EXPECT_TRUE(c.is_exact());
  EXPECT_TRUE(c.operands_match(FpOpcode::kAdd, ops3(1.0f, 2.0f),
                               ops3(1.0f, 2.0f)));
  EXPECT_FALSE(c.operands_match(
      FpOpcode::kAdd, ops3(1.0f, 2.0f),
      ops3(std::nextafterf(1.0f, 2.0f), 2.0f)));
}

TEST(MatchConstraint, ZeroThresholdDecaysToExact) {
  EXPECT_TRUE(MatchConstraint::approximate(0.0f).is_exact());
  EXPECT_TRUE(MatchConstraint::approximate(-1.0f).is_exact());
}

TEST(MatchConstraint, AllOnesMaskDecaysToExact) {
  EXPECT_TRUE(MatchConstraint::masked(0xffffffffu).is_exact());
}

TEST(MatchConstraint, ThresholdBoundsEachOperand) {
  const MatchConstraint c = MatchConstraint::approximate(0.5f);
  EXPECT_TRUE(c.operands_match(FpOpcode::kSub, ops3(1.0f, 2.0f),
                               ops3(1.4f, 2.4f)));
  // One operand out of bounds fails the whole match.
  EXPECT_FALSE(c.operands_match(FpOpcode::kSub, ops3(1.0f, 2.0f),
                                ops3(1.4f, 2.6f)));
  EXPECT_FALSE(c.operands_match(FpOpcode::kSub, ops3(1.0f, 2.0f),
                                ops3(1.6f, 2.4f)));
}

TEST(MatchConstraint, ThresholdChecksOnlyArityOperands) {
  const MatchConstraint c = MatchConstraint::approximate(0.1f);
  // kSqrt is unary: the second/third stored values are irrelevant.
  EXPECT_TRUE(c.operands_match(FpOpcode::kSqrt, ops3(4.0f, 999.0f, -999.0f),
                               ops3(4.05f, 0.0f, 0.0f)));
}

TEST(MatchConstraint, TernaryThreshold) {
  const MatchConstraint c = MatchConstraint::approximate(0.2f);
  EXPECT_TRUE(c.operands_match(FpOpcode::kMulAdd,
                               ops3(1.0f, 2.0f, 3.0f),
                               ops3(1.1f, 1.9f, 3.15f)));
  EXPECT_FALSE(c.operands_match(FpOpcode::kMulAdd,
                                ops3(1.0f, 2.0f, 3.0f),
                                ops3(1.1f, 1.9f, 3.25f)));
}

TEST(MatchConstraint, CommutativeSwapAccepted) {
  MatchConstraint c = MatchConstraint::approximate(0.1f);
  EXPECT_TRUE(c.operands_match(FpOpcode::kAdd, ops3(1.0f, 2.0f),
                               ops3(2.0f, 1.0f)));
  EXPECT_TRUE(c.operands_match(FpOpcode::kMul, ops3(3.0f, 4.0f),
                               ops3(4.05f, 2.95f)));
}

TEST(MatchConstraint, SwapRejectedForNonCommutativeOps) {
  const MatchConstraint c = MatchConstraint::approximate(0.1f);
  EXPECT_FALSE(c.operands_match(FpOpcode::kSub, ops3(1.0f, 2.0f),
                                ops3(2.0f, 1.0f)));
  EXPECT_FALSE(c.operands_match(FpOpcode::kSetGt, ops3(1.0f, 2.0f),
                                ops3(2.0f, 1.0f)));
}

TEST(MatchConstraint, SwapDisabledByFlag) {
  MatchConstraint c = MatchConstraint::approximate(0.1f);
  c.set_allow_commutativity(false);
  EXPECT_FALSE(c.allow_commutativity());
  EXPECT_FALSE(c.operands_match(FpOpcode::kAdd, ops3(1.0f, 2.0f),
                                ops3(2.0f, 1.0f)));
  // Direct order still matches.
  EXPECT_TRUE(c.operands_match(FpOpcode::kAdd, ops3(1.0f, 2.0f),
                               ops3(1.0f, 2.0f)));
}

TEST(MatchConstraint, MulAddSwapsOnlyMultiplicands) {
  const MatchConstraint c = MatchConstraint::exact();
  // (a, b, c) matches (b, a, c)...
  EXPECT_TRUE(c.operands_match(FpOpcode::kMulAdd, ops3(2.0f, 3.0f, 5.0f),
                               ops3(3.0f, 2.0f, 5.0f)));
  // ...but not (c, b, a).
  EXPECT_FALSE(c.operands_match(FpOpcode::kMulAdd, ops3(2.0f, 3.0f, 5.0f),
                                ops3(5.0f, 3.0f, 2.0f)));
}

TEST(MatchConstraint, MaskedMatchIgnoresMaskedBits) {
  const MatchConstraint c =
      MatchConstraint::masked(mask_ignoring_fraction_lsbs(16));
  EXPECT_TRUE(c.operands_match(FpOpcode::kSqrt, ops3(1.0f), ops3(1.004f)));
  EXPECT_FALSE(c.operands_match(FpOpcode::kSqrt, ops3(1.0f), ops3(1.6f)));
}

TEST(MatchConstraint, MaskedIsRelativeToExponent) {
  const MatchConstraint c =
      MatchConstraint::masked(mask_ignoring_fraction_lsbs(20));
  // Tolerance ~0.125 relative: 128 vs 140 match (same kept bits)...
  EXPECT_TRUE(c.operands_match(FpOpcode::kSqrt, ops3(128.0f), ops3(140.0f)));
  // ...while 1.0 vs 1.2 do not (0.2 relative difference).
  EXPECT_FALSE(c.operands_match(FpOpcode::kSqrt, ops3(1.0f), ops3(1.2f)));
}

TEST(MatchConstraint, NanNeverMatchesUnderAnyConstraint) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  for (const MatchConstraint& c :
       {MatchConstraint::approximate(1.0f),
        MatchConstraint::masked(mask_ignoring_fraction_lsbs(23))}) {
    EXPECT_FALSE(c.operands_match(FpOpcode::kSqrt, ops3(nan), ops3(nan)));
    EXPECT_FALSE(c.operands_match(FpOpcode::kSqrt, ops3(nan), ops3(1.0f)));
  }
}

TEST(MatchConstraint, ShortSpanThrows) {
  const MatchConstraint c = MatchConstraint::exact();
  const std::array<float, 1> one = {1.0f};
  EXPECT_THROW(
      (void)c.operands_match(FpOpcode::kAdd, one, one),
      std::invalid_argument);
}

// Property: exact implies threshold implies wider threshold.
class ThresholdNesting : public ::testing::TestWithParam<float> {};

TEST_P(ThresholdNesting, WiderThresholdAcceptsMore) {
  const float t = GetParam();
  const MatchConstraint tight = MatchConstraint::approximate(t);
  const MatchConstraint loose = MatchConstraint::approximate(2.0f * t);
  for (float base : {0.1f, 1.0f, 10.0f, -3.0f}) {
    for (float delta : {0.0f, 0.3f * t, 0.9f * t, 1.5f * t}) {
      const auto stored = ops3(base, base);
      const auto incoming = ops3(base + delta, base);
      if (tight.operands_match(FpOpcode::kAdd, stored, incoming)) {
        EXPECT_TRUE(loose.operands_match(FpOpcode::kAdd, stored, incoming))
            << "t=" << t << " base=" << base << " delta=" << delta;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdNesting,
                         ::testing::Values(0.01f, 0.1f, 0.5f, 1.0f));

} // namespace
} // namespace tmemo
