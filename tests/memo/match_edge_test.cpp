// Edge-case behaviour of MatchConstraint at the bit level: signed zeros,
// NaN operands, denormals at the threshold boundary, and the
// first-pair-only commutative swap for three-operand MULADD. These pin the
// exact semantics the headline figures depend on (paper Eq. 1 / §4.2).
#include "memo/match.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>

#include "common/bits.hpp"

namespace tmemo {
namespace {

std::array<float, 3> ops3(float a, float b = 0.0f, float c = 0.0f) {
  return {a, b, c};
}

// -- Signed zero ------------------------------------------------------------

TEST(MatchEdge, ExactDistinguishesSignedZeros) {
  const MatchConstraint c = MatchConstraint::exact();
  // +0.0f and -0.0f compare numerically equal but differ in the sign bit;
  // the hardware comparator with an all-ones mask sees distinct patterns.
  ASSERT_NE(float_to_bits(0.0f), float_to_bits(-0.0f));
  EXPECT_FALSE(c.operands_match(FpOpcode::kAdd, ops3(-0.0f, 1.0f),
                                ops3(0.0f, 1.0f)));
  EXPECT_TRUE(c.operands_match(FpOpcode::kAdd, ops3(-0.0f, 1.0f),
                               ops3(-0.0f, 1.0f)));
}

TEST(MatchEdge, ThresholdTreatsSignedZerosAsEqual) {
  // |+0 - (-0)| == 0 <= t: the numeric Eq.-1 view must NOT distinguish
  // the two zeros, for any positive threshold.
  EXPECT_TRUE(MatchConstraint::approximate(1e-6f)
                  .operands_match(FpOpcode::kAdd, ops3(-0.0f, 1.0f),
                                  ops3(0.0f, 1.0f)));
  EXPECT_TRUE(MatchConstraint::approximate(0.5f)
                  .operands_match(FpOpcode::kMul, ops3(0.0f, 2.0f),
                                  ops3(-0.0f, 2.0f)));
}

TEST(MatchEdge, MaskKeepsSignBitSoSignedZerosDiffer) {
  // The masking vector only ever clears fraction LSBs; the sign bit always
  // participates, so the bit-mask realization of approximate matching
  // still separates +0 from -0 (a hardware/numeric-view divergence the
  // energy model inherits).
  const MatchConstraint c =
      MatchConstraint::masked(mask_ignoring_fraction_lsbs(12));
  EXPECT_FALSE(c.operands_match(FpOpcode::kAdd, ops3(-0.0f, 1.0f),
                                ops3(0.0f, 1.0f)));
}

// -- NaN operands -----------------------------------------------------------

TEST(MatchEdge, ExactMatchesBitIdenticalNans) {
  const MatchConstraint c = MatchConstraint::exact();
  const float qnan = bits_to_float(0x7fc00000u);
  const float qnan_payload = bits_to_float(0x7fc00001u);
  // The all-ones-mask comparator is a pure bit comparator: an identical
  // NaN pattern matches (and reusing the memoized result is sound — the
  // FPU would produce a NaN again)...
  EXPECT_TRUE(c.operands_match(FpOpcode::kAdd, ops3(qnan, 1.0f),
                               ops3(qnan, 1.0f)));
  // ...but a different payload does not.
  EXPECT_FALSE(c.operands_match(FpOpcode::kAdd, ops3(qnan, 1.0f),
                                ops3(qnan_payload, 1.0f)));
}

TEST(MatchEdge, ThresholdNeverMatchesNans) {
  const MatchConstraint c = MatchConstraint::approximate(0.5f);
  const float qnan = std::numeric_limits<float>::quiet_NaN();
  // |NaN - x| is NaN: Eq. 1 cannot hold, even for identical NaN inputs.
  EXPECT_FALSE(c.operands_match(FpOpcode::kAdd, ops3(qnan, 1.0f),
                                ops3(qnan, 1.0f)));
  EXPECT_FALSE(c.operands_match(FpOpcode::kAdd, ops3(qnan, 1.0f),
                                ops3(2.0f, 1.0f)));
  EXPECT_FALSE(c.operands_match(FpOpcode::kAdd, ops3(2.0f, 1.0f),
                                ops3(qnan, 1.0f)));
}

TEST(MatchEdge, MaskNeverMatchesNans) {
  const MatchConstraint c =
      MatchConstraint::masked(mask_ignoring_fraction_lsbs(8));
  const float qnan = bits_to_float(0x7fc00000u);
  // value_match() screens NaNs before the masked comparison, so even a
  // bit-identical NaN is rejected under the mask kind.
  EXPECT_FALSE(c.operands_match(FpOpcode::kAdd, ops3(qnan, 1.0f),
                                ops3(qnan, 1.0f)));
}

// -- Denormals at the threshold boundary ------------------------------------

TEST(MatchEdge, DenormalsAtThresholdBoundary) {
  // Work entirely in the subnormal range: differences there are exact in
  // float arithmetic, so <= is sharp. Threshold = 16 ulps of denormal.
  const float t = bits_to_float(0x00000010u);
  const float a = bits_to_float(0x00000100u);
  const float on_boundary = bits_to_float(0x00000110u);   // a + t exactly
  const float past_boundary = bits_to_float(0x00000111u); // one ulp further
  const MatchConstraint c = MatchConstraint::approximate(t);
  EXPECT_TRUE(c.operands_match(FpOpcode::kSqrt, ops3(a), ops3(on_boundary)));
  EXPECT_FALSE(
      c.operands_match(FpOpcode::kSqrt, ops3(a), ops3(past_boundary)));
  // Denormal vs zero: magnitude below the threshold still matches.
  EXPECT_TRUE(c.operands_match(FpOpcode::kSqrt, ops3(0.0f),
                               ops3(bits_to_float(0x00000010u))));
  EXPECT_FALSE(c.operands_match(FpOpcode::kSqrt, ops3(0.0f),
                                ops3(bits_to_float(0x00000011u))));
}

// -- Commutative swap on three-operand MULADD -------------------------------

TEST(MatchEdge, FmaSwapsOnlyTheMultiplicandPair) {
  const MatchConstraint c = MatchConstraint::exact();
  ASSERT_TRUE(c.allow_commutativity());
  ASSERT_TRUE(opcode_commutative(FpOpcode::kMulAdd));
  const auto stored = ops3(2.0f, 3.0f, 5.0f); // 2*3 + 5
  // a*b + c == b*a + c: the first pair may arrive swapped.
  EXPECT_TRUE(
      c.operands_match(FpOpcode::kMulAdd, stored, ops3(3.0f, 2.0f, 5.0f)));
  // The addend never participates in the swap: these are different FMAs.
  EXPECT_FALSE(
      c.operands_match(FpOpcode::kMulAdd, stored, ops3(2.0f, 5.0f, 3.0f)));
  EXPECT_FALSE(
      c.operands_match(FpOpcode::kMulAdd, stored, ops3(5.0f, 3.0f, 2.0f)));
  EXPECT_FALSE(
      c.operands_match(FpOpcode::kMulAdd, stored, ops3(3.0f, 2.0f, 2.0f)));
}

TEST(MatchEdge, FmaSwapRespectsCommutativityToggle) {
  MatchConstraint c = MatchConstraint::exact();
  c.set_allow_commutativity(false);
  EXPECT_FALSE(c.operands_match(FpOpcode::kMulAdd, ops3(2.0f, 3.0f, 5.0f),
                                ops3(3.0f, 2.0f, 5.0f)));
  // Identical order still matches with the toggle off.
  EXPECT_TRUE(c.operands_match(FpOpcode::kMulAdd, ops3(2.0f, 3.0f, 5.0f),
                               ops3(2.0f, 3.0f, 5.0f)));
}

TEST(MatchEdge, SwapAppliesPerKindValueMatch) {
  // The swapped comparison uses the same per-operand value_match: a
  // threshold constraint accepts a swapped pair that is only nearly equal.
  const MatchConstraint c = MatchConstraint::approximate(0.1f);
  EXPECT_TRUE(c.operands_match(FpOpcode::kMulAdd, ops3(2.0f, 3.0f, 5.0f),
                               ops3(3.05f, 1.95f, 5.05f)));
  EXPECT_FALSE(c.operands_match(FpOpcode::kMulAdd, ops3(2.0f, 3.0f, 5.0f),
                                ops3(3.05f, 1.95f, 5.2f)));
}

} // namespace
} // namespace tmemo
