#include "memo/registers.hpp"

#include <gtest/gtest.h>

#include "common/bits.hpp"

namespace tmemo {
namespace {

TEST(MemoRegisters, ResetState) {
  const MemoRegisterFile regs;
  EXPECT_TRUE(regs.enabled());
  EXPECT_TRUE(regs.commutativity());
  EXPECT_EQ(regs.masking_vector(), 0xffffffffu);
  EXPECT_EQ(regs.threshold(), 0.0f);
  EXPECT_TRUE(regs.constraint().is_exact());
}

TEST(MemoRegisters, MmioWriteRead) {
  MemoRegisterFile regs;
  regs.write(MemoRegister::kMaskingVector, 0xffff0000u);
  EXPECT_EQ(regs.read(MemoRegister::kMaskingVector), 0xffff0000u);
  regs.write(MemoRegister::kThreshold, float_to_bits(0.25f));
  EXPECT_EQ(regs.threshold(), 0.25f);
  regs.write(MemoRegister::kControl, 0u);
  EXPECT_FALSE(regs.enabled());
  EXPECT_FALSE(regs.commutativity());
}

TEST(MemoRegisters, StatusRegisterIsReadOnly) {
  MemoRegisterFile regs;
  EXPECT_THROW(regs.write(MemoRegister::kStatusHits, 1u),
               std::invalid_argument);
  regs.latch_status_hits(0x1234567890ull);
  EXPECT_EQ(regs.read(MemoRegister::kStatusHits), 0x34567890u); // low 32
}

TEST(MemoRegisters, ProgramExact) {
  MemoRegisterFile regs;
  regs.program_threshold(0.5f);
  regs.program_exact();
  EXPECT_TRUE(regs.constraint().is_exact());
  EXPECT_EQ(regs.masking_vector(), 0xffffffffu);
}

TEST(MemoRegisters, ProgramThresholdSetsBothViews) {
  MemoRegisterFile regs;
  regs.program_threshold(0.5f);
  EXPECT_EQ(regs.threshold(), 0.5f);
  EXPECT_EQ(regs.masking_vector(), mask_ignoring_fraction_lsbs(22));
  // Numeric threshold takes precedence in the derived constraint.
  EXPECT_EQ(regs.constraint().kind(), MatchConstraint::Kind::kThreshold);
  EXPECT_EQ(regs.constraint().threshold(), 0.5f);
}

TEST(MemoRegisters, ProgramThresholdAsMaskUsesMaskView) {
  MemoRegisterFile regs;
  regs.program_threshold_as_mask(0.5f);
  EXPECT_EQ(regs.threshold(), 0.0f);
  EXPECT_EQ(regs.masking_vector(), mask_ignoring_fraction_lsbs(22));
  EXPECT_EQ(regs.constraint().kind(), MatchConstraint::Kind::kMask);
}

TEST(MemoRegisters, NegativeThresholdRejected) {
  MemoRegisterFile regs;
  EXPECT_THROW(regs.program_threshold(-0.1f), std::invalid_argument);
  EXPECT_THROW(regs.program_threshold_as_mask(-0.1f), std::invalid_argument);
}

TEST(MemoRegisters, ControlBitsIndependent) {
  MemoRegisterFile regs;
  regs.set_enabled(false);
  EXPECT_FALSE(regs.enabled());
  EXPECT_TRUE(regs.commutativity());
  regs.set_commutativity(false);
  EXPECT_FALSE(regs.commutativity());
  regs.set_enabled(true);
  EXPECT_TRUE(regs.enabled());
  EXPECT_FALSE(regs.commutativity());
}

TEST(MemoRegisters, ConstraintInheritsCommutativityBit) {
  MemoRegisterFile regs;
  regs.program_threshold(0.1f);
  EXPECT_TRUE(regs.constraint().allow_commutativity());
  regs.set_commutativity(false);
  EXPECT_FALSE(regs.constraint().allow_commutativity());
}

} // namespace
} // namespace tmemo
