#include "memo/resilient_fpu.hpp"

#include <gtest/gtest.h>

namespace tmemo {
namespace {

FpInstruction ins(FpOpcode op, float a, float b = 0.0f, float c = 0.0f) {
  FpInstruction i;
  i.opcode = op;
  i.operands = {a, b, c};
  return i;
}

ResilientFpu make_fpu(FpuType unit = FpuType::kAdd) {
  return ResilientFpu(unit, ResilientFpuConfig{});
}

TEST(ResilientFpu, CleanMissExecutesAndUpdatesLut) {
  ResilientFpu fpu = make_fpu();
  const NoErrorModel errors;
  const auto rec = fpu.execute(ins(FpOpcode::kAdd, 1.0f, 2.0f), errors);
  EXPECT_EQ(rec.action, MemoAction::kNormalExecution);
  EXPECT_FALSE(rec.lut_hit);
  EXPECT_FALSE(rec.timing_error);
  EXPECT_TRUE(rec.lut_updated);
  EXPECT_EQ(rec.result, 3.0f);
  EXPECT_EQ(rec.exact_result, 3.0f);
  EXPECT_EQ(rec.active_stage_cycles, 4);
  EXPECT_EQ(rec.gated_stage_cycles, 0);
  EXPECT_EQ(rec.latency_cycles, 4);
  EXPECT_EQ(fpu.lut().size(), 1);
}

TEST(ResilientFpu, SecondIdenticalInstructionHitsAndClockGates) {
  ResilientFpu fpu = make_fpu();
  const NoErrorModel errors;
  (void)fpu.execute(ins(FpOpcode::kAdd, 1.0f, 2.0f), errors);
  const auto rec = fpu.execute(ins(FpOpcode::kAdd, 1.0f, 2.0f), errors);
  EXPECT_EQ(rec.action, MemoAction::kReuse);
  EXPECT_TRUE(rec.lut_hit);
  EXPECT_EQ(rec.result, 3.0f);
  EXPECT_EQ(rec.active_stage_cycles, 1); // stage 1 parallel with lookup
  EXPECT_EQ(rec.gated_stage_cycles, 3);
  EXPECT_FALSE(rec.lut_updated); // hit does not write the FIFO
  EXPECT_EQ(fpu.lut().size(), 1);
}

TEST(ResilientFpu, ErrorOnMissTriggersTwelveCycleRecovery) {
  ResilientFpu fpu = make_fpu();
  const FixedRateErrorModel always(1.0);
  const auto rec = fpu.execute(ins(FpOpcode::kAdd, 1.0f, 2.0f), always);
  EXPECT_EQ(rec.action, MemoAction::kTriggerRecovery);
  EXPECT_TRUE(rec.timing_error);
  EXPECT_TRUE(rec.recovered);
  EXPECT_EQ(rec.recovery_cycles, 12); // paper §5.1
  EXPECT_EQ(rec.latency_cycles, 4 + 12);
  // The replay commits the exact result.
  EXPECT_EQ(rec.result, 3.0f);
  // W_en is gated on error-free execution: no FIFO write.
  EXPECT_FALSE(rec.lut_updated);
  EXPECT_EQ(fpu.lut().size(), 0);
  EXPECT_EQ(fpu.ecu().stats().recoveries, 1u);
  EXPECT_EQ(fpu.ecu().stats().recovery_cycles, 12u);
}

TEST(ResilientFpu, RecipRecoveryScalesWithDepth) {
  ResilientFpu fpu = make_fpu(FpuType::kRecip);
  const FixedRateErrorModel always(1.0);
  const auto rec = fpu.execute(ins(FpOpcode::kRecip, 2.0f), always);
  EXPECT_EQ(rec.recovery_cycles, 48); // 3 x 16-stage pipeline
  EXPECT_EQ(rec.latency_cycles, 16 + 48);
}

TEST(ResilientFpu, HitMasksError) {
  ResilientFpu fpu = make_fpu();
  const NoErrorModel none;
  const FixedRateErrorModel always(1.0);
  // Warm the LUT error-free, then hit with a guaranteed error.
  (void)fpu.execute(ins(FpOpcode::kAdd, 1.0f, 2.0f), none);
  const auto rec = fpu.execute(ins(FpOpcode::kAdd, 1.0f, 2.0f), always);
  EXPECT_EQ(rec.action, MemoAction::kReuseMaskError);
  EXPECT_TRUE(rec.lut_hit);
  EXPECT_TRUE(rec.timing_error);
  EXPECT_TRUE(rec.error_masked);
  EXPECT_FALSE(rec.recovered);
  EXPECT_EQ(rec.recovery_cycles, 0);
  EXPECT_EQ(rec.result, 3.0f);
  // The masked error reached the stats but not a recovery.
  EXPECT_EQ(fpu.ecu().stats().errors_signaled, 1u);
  EXPECT_EQ(fpu.ecu().stats().recoveries, 0u);
}

TEST(ResilientFpu, ApproximateHitReturnsMemorizedValue) {
  ResilientFpu fpu = make_fpu(FpuType::kSqrt);
  fpu.registers().program_threshold(0.5f);
  const NoErrorModel none;
  (void)fpu.execute(ins(FpOpcode::kSqrt, 16.0f), none);
  const auto rec = fpu.execute(ins(FpOpcode::kSqrt, 16.25f), none);
  EXPECT_TRUE(rec.lut_hit);
  EXPECT_EQ(rec.result, 4.0f);            // memorized Q_L
  EXPECT_NE(rec.result, rec.exact_result); // committed != exact
}

TEST(ResilientFpu, DisabledModuleNeverLooksUp) {
  ResilientFpu fpu = make_fpu();
  fpu.registers().set_enabled(false);
  const NoErrorModel none;
  for (int i = 0; i < 3; ++i) {
    const auto rec = fpu.execute(ins(FpOpcode::kAdd, 1.0f, 2.0f), none);
    EXPECT_FALSE(rec.memo_enabled);
    EXPECT_FALSE(rec.lut_hit);
    EXPECT_EQ(rec.lut_lookups, 0);
    EXPECT_EQ(rec.active_stage_cycles, 4);
  }
  EXPECT_EQ(fpu.lut().stats().lookups, 0u);
}

TEST(ResilientFpu, PowerGatingClearsLutState) {
  ResilientFpu fpu = make_fpu();
  const NoErrorModel none;
  (void)fpu.execute(ins(FpOpcode::kAdd, 1.0f, 2.0f), none);
  EXPECT_EQ(fpu.lut().size(), 1);
  fpu.set_power_gated(true);
  EXPECT_TRUE(fpu.power_gated());
  EXPECT_EQ(fpu.lut().size(), 0);
  const auto rec = fpu.execute(ins(FpOpcode::kAdd, 1.0f, 2.0f), none);
  EXPECT_FALSE(rec.memo_enabled);
  // Un-gating restores operation (cold).
  fpu.set_power_gated(false);
  const auto rec2 = fpu.execute(ins(FpOpcode::kAdd, 1.0f, 2.0f), none);
  EXPECT_TRUE(rec2.memo_enabled);
  EXPECT_FALSE(rec2.lut_hit);
}

TEST(ResilientFpu, ErrantResultNeverCommitsWrongValue) {
  // Property: regardless of the error stream, with exact matching the
  // committed value equals the exact value (recovery or exact reuse).
  ResilientFpu fpu = make_fpu(FpuType::kMul);
  const FixedRateErrorModel half(0.5);
  for (int i = 0; i < 2000; ++i) {
    const float a = static_cast<float>(i % 17);
    const float b = static_cast<float>(i % 5);
    const auto rec = fpu.execute(ins(FpOpcode::kMul, a, b), half);
    ASSERT_EQ(rec.result, rec.exact_result) << "i=" << i;
  }
}

TEST(ResilientFpu, StatsAccumulateConsistently) {
  ResilientFpu fpu = make_fpu();
  const FixedRateErrorModel some(0.3);
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    // Half-repetitive, half-unique operand stream: produces both hits
    // (masked errors) and misses (recoveries).
    const float a = (i % 4 < 2) ? 0.0f : static_cast<float>(i);
    (void)fpu.execute(ins(FpOpcode::kAdd, a, 1.0f), some);
  }
  const FpuStats& s = fpu.stats();
  EXPECT_EQ(s.instructions, static_cast<std::uint64_t>(n));
  EXPECT_EQ(s.timing_errors, s.masked_errors + s.recoveries);
  EXPECT_GT(s.hits, 0u);
  EXPECT_GT(s.recoveries, 0u);
  EXPECT_EQ(s.recovery_cycles, s.recoveries * 12u);
  EXPECT_GT(s.hit_rate(), 0.0);
  EXPECT_LT(s.hit_rate(), 1.0);
  // Every hit gates depth-1 stages.
  EXPECT_EQ(s.gated_stage_cycles, s.hits * 3u);
}

TEST(ResilientFpu, ResetStatsKeepsLutContents) {
  ResilientFpu fpu = make_fpu();
  const NoErrorModel none;
  (void)fpu.execute(ins(FpOpcode::kAdd, 1.0f, 2.0f), none);
  fpu.reset_stats();
  EXPECT_EQ(fpu.stats().instructions, 0u);
  // LUT contents survive; the next identical instruction hits.
  const auto rec = fpu.execute(ins(FpOpcode::kAdd, 1.0f, 2.0f), none);
  EXPECT_TRUE(rec.lut_hit);
}

TEST(ResilientFpu, DeterministicForSameSeed) {
  ResilientFpuConfig cfg;
  cfg.eds_seed = 99;
  ResilientFpu a(FpuType::kAdd, cfg), b(FpuType::kAdd, cfg);
  const FixedRateErrorModel errors(0.2);
  for (int i = 0; i < 1000; ++i) {
    const auto ra = a.execute(ins(FpOpcode::kAdd, float(i % 7), 1.0f), errors);
    const auto rb = b.execute(ins(FpOpcode::kAdd, float(i % 7), 1.0f), errors);
    ASSERT_EQ(ra.timing_error, rb.timing_error);
    ASSERT_EQ(ra.lut_hit, rb.lut_hit);
    ASSERT_EQ(ra.result, rb.result);
  }
}

class ResilientFpuAllUnits : public ::testing::TestWithParam<FpuType> {};

TEST_P(ResilientFpuAllUnits, LatencyAndGatingMatchDepth) {
  const FpuType unit = GetParam();
  ResilientFpu fpu(unit, ResilientFpuConfig{});
  const NoErrorModel none;
  const int depth = fpu_latency_cycles(unit);
  // Pick an opcode belonging to this unit.
  FpOpcode op = FpOpcode::kAdd;
  for (int i = 0; i < kNumFpOpcodes; ++i) {
    if (opcode_unit(static_cast<FpOpcode>(i)) == unit) {
      op = static_cast<FpOpcode>(i);
      break;
    }
  }
  const auto miss = fpu.execute(ins(op, 2.0f, 3.0f, 1.0f), none);
  EXPECT_EQ(miss.latency_cycles, depth);
  EXPECT_EQ(miss.active_stage_cycles, depth);
  const auto hit = fpu.execute(ins(op, 2.0f, 3.0f, 1.0f), none);
  ASSERT_TRUE(hit.lut_hit);
  EXPECT_EQ(hit.active_stage_cycles, 1);
  EXPECT_EQ(hit.gated_stage_cycles, depth - 1);
  EXPECT_EQ(hit.latency_cycles, depth);
}

INSTANTIATE_TEST_SUITE_P(AllUnits, ResilientFpuAllUnits,
                         ::testing::ValuesIn(kAllFpuTypes));

} // namespace
} // namespace tmemo
