#include "memo/module.hpp"

#include <gtest/gtest.h>

namespace tmemo {
namespace {

// Exhaustive check of Table 2.
TEST(MemoAction, Table2NormalExecution) {
  const MemoAction a = memo_action(/*hit=*/false, /*error=*/false);
  EXPECT_EQ(a, MemoAction::kNormalExecution);
  EXPECT_EQ(memo_output(a), PipeOutput::kQs);
  EXPECT_TRUE(memo_updates_lut(a));
  EXPECT_FALSE(memo_clock_gates(a));
  EXPECT_FALSE(memo_masks_error(a));
  EXPECT_FALSE(memo_triggers_recovery(a));
}

TEST(MemoAction, Table2TriggerRecovery) {
  const MemoAction a = memo_action(false, true);
  EXPECT_EQ(a, MemoAction::kTriggerRecovery);
  EXPECT_EQ(memo_output(a), PipeOutput::kQs);
  EXPECT_FALSE(memo_updates_lut(a));
  EXPECT_FALSE(memo_clock_gates(a));
  EXPECT_FALSE(memo_masks_error(a));
  EXPECT_TRUE(memo_triggers_recovery(a));
}

TEST(MemoAction, Table2Reuse) {
  const MemoAction a = memo_action(true, false);
  EXPECT_EQ(a, MemoAction::kReuse);
  EXPECT_EQ(memo_output(a), PipeOutput::kQl);
  EXPECT_FALSE(memo_updates_lut(a));
  EXPECT_TRUE(memo_clock_gates(a));
  EXPECT_FALSE(memo_masks_error(a));
  EXPECT_FALSE(memo_triggers_recovery(a));
}

TEST(MemoAction, Table2ReuseMaskError) {
  const MemoAction a = memo_action(true, true);
  EXPECT_EQ(a, MemoAction::kReuseMaskError);
  EXPECT_EQ(memo_output(a), PipeOutput::kQl);
  EXPECT_FALSE(memo_updates_lut(a));
  EXPECT_TRUE(memo_clock_gates(a));
  EXPECT_TRUE(memo_masks_error(a));
  EXPECT_FALSE(memo_triggers_recovery(a));
}

// Invariant properties of the decision logic.
TEST(MemoAction, HitAlwaysSelectsQl) {
  for (bool error : {false, true}) {
    EXPECT_EQ(memo_output(memo_action(true, error)), PipeOutput::kQl);
    EXPECT_EQ(memo_output(memo_action(false, error)), PipeOutput::kQs);
  }
}

TEST(MemoAction, RecoveryOnlyOnMissWithError) {
  for (bool hit : {false, true}) {
    for (bool error : {false, true}) {
      EXPECT_EQ(memo_triggers_recovery(memo_action(hit, error)),
                !hit && error);
    }
  }
}

TEST(MemoAction, LutWriteOnlyOnCleanMiss) {
  for (bool hit : {false, true}) {
    for (bool error : {false, true}) {
      EXPECT_EQ(memo_updates_lut(memo_action(hit, error)), !hit && !error);
    }
  }
}

TEST(MemoAction, ClockGateIffHit) {
  for (bool hit : {false, true}) {
    for (bool error : {false, true}) {
      EXPECT_EQ(memo_clock_gates(memo_action(hit, error)), hit);
    }
  }
}

TEST(MemoAction, MaskIffHitAndError) {
  for (bool hit : {false, true}) {
    for (bool error : {false, true}) {
      EXPECT_EQ(memo_masks_error(memo_action(hit, error)), hit && error);
    }
  }
}

TEST(MemoAction, NamesAreDistinctAndDefined) {
  EXPECT_NE(memo_action_name(MemoAction::kNormalExecution),
            memo_action_name(MemoAction::kTriggerRecovery));
  EXPECT_NE(memo_action_name(MemoAction::kReuse),
            memo_action_name(MemoAction::kReuseMaskError));
  for (MemoAction a :
       {MemoAction::kNormalExecution, MemoAction::kTriggerRecovery,
        MemoAction::kReuse, MemoAction::kReuseMaskError}) {
    EXPECT_FALSE(memo_action_name(a).empty());
    EXPECT_NE(memo_action_name(a), "?");
  }
}

} // namespace
} // namespace tmemo
