// Build smoke test: one end-to-end workload run through the whole stack.
#include <gtest/gtest.h>

#include "sim/simulation.hpp"
#include "workloads/haar.hpp"

namespace tmemo {
namespace {

TEST(Smoke, HaarRunsEndToEnd) {
  Simulation sim;
  HaarWorkload haar(256);
  const KernelRunReport report = sim.run(haar, RunSpec::at_error_rate(0.0));
  EXPECT_TRUE(report.result.passed);
  EXPECT_GT(report.unit_stats[static_cast<std::size_t>(FpuType::kAdd)]
                .instructions,
            0u);
}

} // namespace
} // namespace tmemo
