#include "isa/program.hpp"

#include <gtest/gtest.h>

namespace tmemo::isa {
namespace {

TEST(ProgramBuilder, BuildsAndValidates) {
  KernelProgram p = ProgramBuilder("saxpy")
                        .load(1, 0)
                        .load(2, 1)
                        .alu(FpOpcode::kMulAdd, 3, Src::lit(2.0f), Src::r(1),
                             Src::r(2))
                        .store(3, 2)
                        .build();
  EXPECT_EQ(p.name, "saxpy");
  ASSERT_EQ(p.clauses.size(), 3u); // TEX{2 loads}, ALU{1}, EXPORT
  EXPECT_EQ(validate(p), 3);       // buffers 0, 1, 2
}

TEST(ProgramBuilder, ConsecutiveAluOpsShareOneClause) {
  KernelProgram p = ProgramBuilder("chain")
                        .alu(FpOpcode::kAdd, 1, Src::r(0), Src::lit(1.0f))
                        .alu(FpOpcode::kMul, 2, Src::r(1), Src::r(1))
                        .store(2, 0)
                        .build();
  ASSERT_EQ(p.clauses.size(), 2u);
  EXPECT_EQ(std::get<AluClause>(p.clauses[0]).instrs.size(), 2u);
}

TEST(ProgramBuilder, ClauseBoundaryOnKindSwitch) {
  KernelProgram p = ProgramBuilder("mix")
                        .alu(FpOpcode::kAdd, 1, Src::r(0), Src::lit(1.0f))
                        .load(2, 0)
                        .alu(FpOpcode::kMul, 3, Src::r(1), Src::r(2))
                        .store(3, 1)
                        .build();
  EXPECT_EQ(p.clauses.size(), 4u); // ALU, TEX, ALU, EXPORT
}

TEST(Validate, RejectsOutOfRangeRegisters) {
  KernelProgram p;
  AluClause alu;
  AluInstr ins;
  ins.dst = kNumRegisters; // out of range
  alu.instrs.push_back(ins);
  p.clauses.emplace_back(alu);
  EXPECT_THROW(validate(p), std::invalid_argument);
}

TEST(Validate, RejectsUnbalancedRepeat) {
  KernelProgram p;
  p.clauses.emplace_back(RepeatBegin{3});
  EXPECT_THROW(validate(p), std::invalid_argument);
  p.clauses.clear();
  p.clauses.emplace_back(RepeatEnd{});
  EXPECT_THROW(validate(p), std::invalid_argument);
}

TEST(Validate, RejectsZeroTripRepeat) {
  KernelProgram p;
  p.clauses.emplace_back(RepeatBegin{0});
  p.clauses.emplace_back(RepeatEnd{});
  EXPECT_THROW(validate(p), std::invalid_argument);
}

TEST(Validate, RejectsEmptyClauses) {
  KernelProgram p;
  p.clauses.emplace_back(AluClause{});
  EXPECT_THROW(validate(p), std::invalid_argument);
  p.clauses.clear();
  p.clauses.emplace_back(TexClause{});
  EXPECT_THROW(validate(p), std::invalid_argument);
}

TEST(Validate, CountsBufferSlots) {
  KernelProgram p = ProgramBuilder("b")
                        .load(1, 5)
                        .store(1, 2)
                        .build();
  EXPECT_EQ(validate(p), 6); // slot indices up to 5
}

TEST(Validate, RejectsUnbalancedBranches) {
  KernelProgram p;
  p.clauses.emplace_back(IfBegin{1});
  EXPECT_THROW(validate(p), std::invalid_argument);
  p.clauses.clear();
  p.clauses.emplace_back(Else{});
  EXPECT_THROW(validate(p), std::invalid_argument);
  p.clauses.clear();
  p.clauses.emplace_back(EndIf{});
  EXPECT_THROW(validate(p), std::invalid_argument);
}

TEST(Disassemble, BranchStructure) {
  KernelProgram p = ProgramBuilder("br")
                        .alu(FpOpcode::kSetGe, 1, Src::r(0), Src::lit(8.0f))
                        .branch_if(1)
                        .alu(FpOpcode::kNeg, 2, Src::r(0))
                        .branch_else()
                        .alu(FpOpcode::kAbs, 2, Src::r(0))
                        .end_if()
                        .store(2, 0)
                        .build();
  const std::string text = disassemble(p);
  EXPECT_NE(text.find("IF R1 != 0"), std::string::npos);
  EXPECT_NE(text.find("ELSE"), std::string::npos);
  EXPECT_NE(text.find("ENDIF"), std::string::npos);
}

TEST(Disassemble, ContainsStructure) {
  KernelProgram p = ProgramBuilder("demo")
                        .load(1, 0)
                        .repeat(3)
                        .alu(FpOpcode::kMulAdd, 2, Src::r(1), Src::r(1),
                             Src::r(2))
                        .end_repeat()
                        .store(2, 1)
                        .build();
  const std::string text = disassemble(p);
  EXPECT_NE(text.find("kernel demo"), std::string::npos);
  EXPECT_NE(text.find("TEX"), std::string::npos);
  EXPECT_NE(text.find("REPEAT x3"), std::string::npos);
  EXPECT_NE(text.find("MULADD"), std::string::npos);
  EXPECT_NE(text.find("EXPORT buf1"), std::string::npos);
  EXPECT_NE(text.find("END"), std::string::npos);
}

} // namespace
} // namespace tmemo::isa
