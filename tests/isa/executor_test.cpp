#include "isa/executor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace tmemo::isa {
namespace {

GpuDevice small_device() { return GpuDevice(DeviceConfig::single_cu()); }

TEST(Executor, SaxpyEndToEnd) {
  // y[i] = 2.5 * x[i] + y[i]
  const std::size_t n = 300;
  std::vector<float> x(n), y(n), y0(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<float>(i) * 0.25f;
    y[i] = y0[i] = 1.0f + static_cast<float>(i % 7);
  }
  KernelProgram p = ProgramBuilder("saxpy")
                        .load(1, 0)
                        .load(2, 1)
                        .alu(FpOpcode::kMulAdd, 3, Src::lit(2.5f), Src::r(1),
                             Src::r(2))
                        .store(3, 1)
                        .build();
  GpuDevice device = small_device();
  Bindings b;
  b.buffers = {std::span<float>(x), std::span<float>(y)};
  execute_program(device, p, b, n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(y[i], std::fmaf(2.5f, x[i], y0[i])) << i;
  }
}

TEST(Executor, GlobalIdPreloadedInR0) {
  const std::size_t n = 130;
  std::vector<float> out(n, -1.0f);
  KernelProgram p = ProgramBuilder("gid")
                        .alu(FpOpcode::kMul, 1, Src::r(0), Src::lit(1.0f))
                        .store(1, 0)
                        .build();
  GpuDevice device = small_device();
  Bindings b;
  b.buffers = {std::span<float>(out)};
  execute_program(device, p, b, n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], static_cast<float>(i));
  }
}

TEST(Executor, RegisterAddressingGathers) {
  // out[i] = table[trunc(i/2)]
  const std::size_t n = 64;
  std::vector<float> table(32), out(n, 0.0f);
  for (std::size_t i = 0; i < 32; ++i) table[i] = 100.0f + float(i);
  KernelProgram p =
      ProgramBuilder("gather")
          .alu(FpOpcode::kMul, 1, Src::r(0), Src::lit(0.5f))
          .alu(FpOpcode::kTrunc, 2, Src::r(1))
          .load(3, 0, AddrMode::kRegister, 2)
          .store(3, 1)
          .build();
  GpuDevice device = small_device();
  Bindings b;
  b.buffers = {std::span<float>(table), std::span<float>(out)};
  execute_program(device, p, b, n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], table[i / 2]) << i;
  }
}

TEST(Executor, AddressesClampToBufferBounds) {
  std::vector<float> buf = {1.0f, 2.0f, 3.0f};
  std::vector<float> out(70, 0.0f);
  // Loads buf[gid] for gid up to 69: indices clamp to buf.back().
  KernelProgram p = ProgramBuilder("clamp")
                        .load(1, 0)
                        .store(1, 1)
                        .build();
  GpuDevice device = small_device();
  Bindings b;
  b.buffers = {std::span<float>(buf), std::span<float>(out)};
  execute_program(device, p, b, 70);
  EXPECT_EQ(out[0], 1.0f);
  EXPECT_EQ(out[2], 3.0f);
  EXPECT_EQ(out[69], 3.0f); // clamped
}

TEST(Executor, RepeatBlockIteratesUniformly) {
  // r = gid; repeat 5: r = r * 2  ->  out = gid * 32
  const std::size_t n = 64;
  std::vector<float> out(n, 0.0f);
  KernelProgram p = ProgramBuilder("pow2")
                        .alu(FpOpcode::kMul, 1, Src::r(0), Src::lit(1.0f))
                        .repeat(5)
                        .alu(FpOpcode::kMul, 1, Src::r(1), Src::lit(2.0f))
                        .end_repeat()
                        .store(1, 0)
                        .build();
  GpuDevice device = small_device();
  Bindings b;
  b.buffers = {std::span<float>(out)};
  execute_program(device, p, b, n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], static_cast<float>(i) * 32.0f);
  }
}

TEST(Executor, NestedRepeats) {
  // acc = 0; repeat 3 { repeat 4 { acc += 1 } } -> 12
  std::vector<float> out(64, 0.0f);
  KernelProgram p = ProgramBuilder("nest")
                        .alu(FpOpcode::kMul, 1, Src::r(0), Src::lit(0.0f))
                        .repeat(3)
                        .repeat(4)
                        .alu(FpOpcode::kAdd, 1, Src::r(1), Src::lit(1.0f))
                        .end_repeat()
                        .end_repeat()
                        .store(1, 0)
                        .build();
  GpuDevice device = small_device();
  Bindings b;
  b.buffers = {std::span<float>(out)};
  execute_program(device, p, b, 64);
  for (float v : out) ASSERT_EQ(v, 12.0f);
}

TEST(Executor, StaticIdsStableAcrossRepeats) {
  // The MULADD inside the loop must steer to ONE PE slot across all
  // iterations: with constant operands it hits the temporal LUT from the
  // second iteration on.
  std::vector<float> out(64, 0.0f);
  KernelProgram p = ProgramBuilder("steer")
                        .repeat(10)
                        .alu(FpOpcode::kMulAdd, 1, Src::lit(1.0f),
                             Src::lit(2.0f), Src::lit(3.0f))
                        .end_repeat()
                        .store(1, 0)
                        .build();
  GpuDevice device = small_device();
  Bindings b;
  b.buffers = {std::span<float>(out)};
  execute_program(device, p, b, 64);
  const auto stats = device.unit_stats();
  const auto& ma = stats[static_cast<std::size_t>(FpuType::kMulAdd)];
  EXPECT_EQ(ma.instructions, 640u);
  // First visit per FPU misses; everything after hits.
  EXPECT_GT(ma.hit_rate(), 0.9);
  for (float v : out) EXPECT_EQ(v, 5.0f);
}

TEST(Executor, MemoizationAndErrorsApplyToIsaPrograms) {
  std::vector<float> out(256, 0.0f);
  KernelProgram p = ProgramBuilder("err")
                        .alu(FpOpcode::kSqrt, 1, Src::lit(16.0f))
                        .store(1, 0)
                        .build();
  GpuDevice device = small_device();
  device.set_error_model(std::make_shared<FixedRateErrorModel>(0.5));
  Bindings b;
  b.buffers = {std::span<float>(out)};
  execute_program(device, p, b, 256);
  // Exact matching + recovery: outputs must be exact despite 50% errors.
  for (float v : out) ASSERT_EQ(v, 4.0f);
  const FpuStats total = device.total_stats(kAllFpuTypes);
  EXPECT_GT(total.timing_errors, 0u);
  EXPECT_EQ(total.timing_errors, total.recoveries + total.masked_errors);
}

TEST(Executor, DivergentBranchPredication) {
  // out[i] = (i < 32) ? i * 2 : i + 100
  const std::size_t n = 64;
  std::vector<float> out(n, -1.0f);
  KernelProgram p = ProgramBuilder("branch")
                        // pred = (32 > gid) ? 1 : 0
                        .alu(FpOpcode::kSetGt, 1, Src::lit(32.0f), Src::r(0))
                        .branch_if(1)
                        .alu(FpOpcode::kMul, 2, Src::r(0), Src::lit(2.0f))
                        .branch_else()
                        .alu(FpOpcode::kAdd, 2, Src::r(0), Src::lit(100.0f))
                        .end_if()
                        .store(2, 0)
                        .build();
  GpuDevice device = small_device();
  Bindings b;
  b.buffers = {std::span<float>(out)};
  execute_program(device, p, b, n);
  for (std::size_t i = 0; i < n; ++i) {
    const float expect = i < 32 ? static_cast<float>(i) * 2.0f
                                : static_cast<float>(i) + 100.0f;
    ASSERT_EQ(out[i], expect) << i;
  }
}

TEST(Executor, NestedBranches) {
  // Classify gid into 4 buckets via nested IFs.
  const std::size_t n = 64;
  std::vector<float> out(n, -1.0f);
  KernelProgram p =
      ProgramBuilder("nested")
          .alu(FpOpcode::kSetGt, 1, Src::lit(32.0f), Src::r(0)) // gid < 32
          .alu(FpOpcode::kSetGt, 2, Src::lit(16.0f), Src::r(0)) // gid < 16
          .alu(FpOpcode::kSetGt, 3, Src::lit(48.0f), Src::r(0)) // gid < 48
          .branch_if(1)
          .branch_if(2)
          .alu(FpOpcode::kMul, 4, Src::lit(1.0f), Src::lit(1.0f)) // bucket 1
          .branch_else()
          .alu(FpOpcode::kMul, 4, Src::lit(2.0f), Src::lit(1.0f)) // bucket 2
          .end_if()
          .branch_else()
          .branch_if(3)
          .alu(FpOpcode::kMul, 4, Src::lit(3.0f), Src::lit(1.0f)) // bucket 3
          .branch_else()
          .alu(FpOpcode::kMul, 4, Src::lit(4.0f), Src::lit(1.0f)) // bucket 4
          .end_if()
          .end_if()
          .store(4, 0)
          .build();
  GpuDevice device = small_device();
  Bindings b;
  b.buffers = {std::span<float>(out)};
  execute_program(device, p, b, n);
  for (std::size_t i = 0; i < n; ++i) {
    const float expect = i < 16 ? 1.0f : (i < 32 ? 2.0f : (i < 48 ? 3.0f : 4.0f));
    ASSERT_EQ(out[i], expect) << i;
  }
}

TEST(Executor, BothBranchSidesExecuteWithComplementaryMasks) {
  // SIMD predication: a divergent branch issues BOTH sides; instruction
  // counts reflect the split lanes (32 + 32 = 64 per ALU op).
  const std::size_t n = 64;
  std::vector<float> out(n, 0.0f);
  KernelProgram p = ProgramBuilder("split")
                        .alu(FpOpcode::kSetGt, 1, Src::lit(32.0f), Src::r(0))
                        .branch_if(1)
                        .alu(FpOpcode::kSqrt, 2, Src::r(0))
                        .branch_else()
                        .alu(FpOpcode::kSqrt, 2, Src::r(0))
                        .end_if()
                        .store(2, 0)
                        .build();
  GpuDevice device = small_device();
  Bindings b;
  b.buffers = {std::span<float>(out)};
  execute_program(device, p, b, n);
  const auto stats = device.unit_stats();
  EXPECT_EQ(stats[static_cast<std::size_t>(FpuType::kSqrt)].instructions,
            64u);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], ::sqrtf(static_cast<float>(i))) << i;
  }
}

TEST(Executor, RejectsMissingBindings) {
  KernelProgram p = ProgramBuilder("b").load(1, 2).store(1, 0).build();
  GpuDevice device = small_device();
  std::vector<float> buf(4);
  Bindings b;
  b.buffers = {std::span<float>(buf)};
  EXPECT_THROW(execute_program(device, p, b, 4), std::invalid_argument);
}

TEST(Executor, RejectsEmptyBuffers) {
  KernelProgram p = ProgramBuilder("b").load(1, 0).store(1, 0).build();
  GpuDevice device = small_device();
  std::vector<float> empty;
  Bindings b;
  b.buffers = {std::span<float>(empty)};
  EXPECT_THROW(execute_program(device, p, b, 4), std::invalid_argument);
}

} // namespace
} // namespace tmemo::isa
