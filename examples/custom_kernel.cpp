// Example: writing a new kernel against the wavefront DSL.
//
// Implements a 2D vector-normalization kernel (the inner loop of lighting
// and physics engines): n = v / |v| per work-item, built from MUL, MULADD,
// RSQRT. Demonstrates:
//   * the wavefront programming model (LaneVec ops + gather/scatter);
//   * programming the memoization registers directly (threshold, the
//     commutativity bit, power gating);
//   * compiler-directed LUT preloading (paper §4.2): seeding the RSQRT
//     LUT with the most probable value before launch;
//   * reading back per-unit statistics.
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "kernel/launch.hpp"
#include "sim/simulation.hpp"

using namespace tmemo;

namespace {

struct Stats {
  double hit_rate;
  double saving;
  double max_err;
};

Stats run(bool memoize, bool preload, float threshold,
          const std::vector<float>& xs, const std::vector<float>& ys) {
  ExperimentConfig cfg;
  GpuDevice device(cfg.device,
                   EnergyModel(cfg.energy, VoltageScaling(cfg.voltage)));
  if (!memoize) {
    device.set_power_gated(true);
  } else if (threshold > 0.0f) {
    device.program_threshold(threshold);
  } else {
    device.program_exact();
  }
  if (preload) {
    // Most vectors in this workload are near unit length: seed every RSQRT
    // LUT with rsqrt(1.0) so the very first wavefront can already hit.
    LutEntry e;
    e.opcode = FpOpcode::kRsqrt;
    e.operands = {1.0f, 0.0f, 0.0f};
    e.result = 1.0f;
    device.preload_lut(e);
  }
  device.set_error_model(std::make_shared<FixedRateErrorModel>(0.02));

  const std::size_t n = xs.size();
  std::vector<float> nx(n), ny(n);
  launch(device, n, [&](WavefrontCtx& wf) {
    auto by_gid = [](int, WorkItemId gid) {
      return static_cast<std::size_t>(gid);
    };
    const LaneVec x = wf.gather(xs, by_gid);
    const LaneVec y = wf.gather(ys, by_gid);
    const LaneVec len2 = wf.muladd(x, x, wf.mul(y, y));
    const LaneVec inv = wf.rsqrt(len2);
    wf.scatter(nx, wf.mul(x, inv), by_gid);
    wf.scatter(ny, wf.mul(y, inv), by_gid);
  });

  // Host check: every output should have (close to) unit length.
  double max_err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double len = std::sqrt(static_cast<double>(nx[i]) * nx[i] +
                                 static_cast<double>(ny[i]) * ny[i]);
    max_err = std::max(max_err, std::abs(len - 1.0));
  }
  return {device.weighted_hit_rate(), device.energy().saving(), max_err};
}

} // namespace

int main() {
  // Input: unit-ish direction vectors with clustered angles (a light field
  // pointing mostly one way) — realistic and locality-rich.
  const std::size_t n = 1 << 16;
  std::vector<float> xs(n), ys(n);
  Xorshift128 rng(42);
  for (std::size_t i = 0; i < n; ++i) {
    // Mesh normals are typically quantized (compressed vertex formats):
    // 32 distinct directions, unit length. The small value alphabet is
    // what exact-matching memoization exploits.
    const float angle =
        0.6f + 0.2f * static_cast<float>(rng.next_below(32)) / 32.0f;
    xs[i] = std::cos(angle);
    ys[i] = std::sin(angle);
  }

  std::printf("%-28s %-10s %-10s %s\n", "configuration", "hit rate",
              "saving", "max |len-1|");
  const Stats off = run(false, false, 0.0f, xs, ys);
  std::printf("%-28s %-9.1f%% %-9.1f%% %.6f\n", "module power-gated",
              off.hit_rate * 100, off.saving * 100, off.max_err);
  const Stats exact = run(true, false, 0.0f, xs, ys);
  std::printf("%-28s %-9.1f%% %-9.1f%% %.6f\n", "exact matching",
              exact.hit_rate * 100, exact.saving * 100, exact.max_err);
  const Stats approx = run(true, false, 0.01f, xs, ys);
  std::printf("%-28s %-9.1f%% %-9.1f%% %.6f\n", "approximate (t=0.01)",
              approx.hit_rate * 100, approx.saving * 100, approx.max_err);
  const Stats pre = run(true, true, 0.01f, xs, ys);
  std::printf("%-28s %-9.1f%% %-9.1f%% %.6f\n", "approximate + RSQRT preload",
              pre.hit_rate * 100, pre.saving * 100, pre.max_err);
  return 0;
}
