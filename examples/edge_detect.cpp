// Example: an approximate image-processing pipeline.
//
// Runs the Sobel edge detector on the synthetic portrait (or a user PGM)
// at several approximation thresholds, reporting PSNR, LUT hit rate and
// energy saving for each, and writing the filtered images as PGM files —
// the workflow behind Figs. 2 and 4 of the paper.
//
// Usage: edge_detect [input.pgm]
#include <cstdio>
#include <string>

#include "img/synthetic.hpp"
#include "sim/simulation.hpp"
#include "workloads/sobel.hpp"

int main(int argc, char** argv) {
  using namespace tmemo;

  // 1. Input: a real photograph if given, else the deterministic portrait.
  Image input;
  std::string label;
  if (argc > 1) {
    input = read_pgm(argv[1]);
    label = argv[1];
  } else {
    input = make_face_image(512, 512);
    label = "synthetic face";
  }
  std::printf("input: %s (%dx%d)\n", label.c_str(), input.width(),
              input.height());

  const Image golden = sobel_reference(input);
  write_pgm(input, "edge_input.pgm");
  write_pgm(golden, "edge_exact.pgm");

  std::printf("%-10s %-10s %-10s %-12s %s\n", "threshold", "PSNR(dB)",
              "hit rate", "energy save", "output");
  for (float t : {0.0f, 0.2f, 0.4f, 1.0f}) {
    ExperimentConfig cfg;
    GpuDevice device(cfg.device,
                     EnergyModel(cfg.energy, VoltageScaling(cfg.voltage)));
    // Error-tolerant applications program the fraction-LSB masking vector
    // from their fidelity threshold (paper §4.2).
    if (t > 0.0f) {
      device.program_threshold_as_mask(t);
    } else {
      device.program_exact();
    }

    const Image out = sobel_on_device(device, input);
    const std::string name =
        "edge_t" + std::to_string(static_cast<int>(t * 10.0f)) + ".pgm";
    write_pgm(out, name);

    const double q = psnr(golden, out);
    std::printf("%-10.1f %-10.1f %-10.1f%% %-11.1f%% %s\n",
                static_cast<double>(t), q,
                device.weighted_hit_rate() * 100.0,
                device.energy().saving() * 100.0, name.c_str());
  }
  std::printf("wrote edge_input.pgm, edge_exact.pgm and edge_t*.pgm\n");
  return 0;
}
