// Example: trace-driven value-locality analysis.
//
// The paper's methodology modified a cycle-accurate simulator to collect FP
// operand statistics; this example shows the equivalent workflow here:
//
//   1. run a kernel once with a TraceWriter attached, saving the dynamic
//      FP instruction stream to a binary trace file;
//   2. reload the trace and sweep FIFO depths and matching constraints
//      OFFLINE — in milliseconds, without re-running the kernel;
//   3. print the per-unit locality profile that motivates the 2-entry LUT.
#include <cstdio>

#include "img/synthetic.hpp"
#include "kernel/launch.hpp"
#include "sim/simulation.hpp"
#include "trace/trace.hpp"
#include "workloads/sobel.hpp"

int main() {
  using namespace tmemo;

  // 1. Capture: one Sobel run over the synthetic portrait.
  GpuDevice device(DeviceConfig::single_cu());
  device.program_exact();
  TraceWriter writer(&device.sink());

  const Image face = make_face_image(256, 256);
  Image out(face.width(), face.height());
  const int wf = device.config().wavefront_size;
  for (std::size_t w = 0; w < face.size() / 64; ++w) {
    WavefrontCtx ctx(device.compute_unit(0), device.error_model(), &writer,
                     wf, static_cast<WorkItemId>(w) * 64, ~0ull);
    const LaneVec p = ctx.gather(face.pixels(), [](int, WorkItemId gid) {
      return static_cast<std::size_t>(gid);
    });
    // Gradient magnitude against the right neighbour.
    const LaneVec q = ctx.gather(face.pixels(), [&face](int, WorkItemId gid) {
      const std::size_t i = static_cast<std::size_t>(gid);
      return (i + 1) % face.size();
    });
    const LaneVec d = ctx.sub(q, p);
    const LaneVec mag = ctx.sqrt(ctx.mul(d, d));
    ctx.scatter(out.pixels(), mag, [](int, WorkItemId gid) {
      return static_cast<std::size_t>(gid);
    });
  }
  writer.save("sobel.trace");
  std::printf("captured %zu FP instructions -> sobel.trace\n",
              writer.size());

  // 2. Offline sweeps over the saved trace.
  const auto events = load_trace("sobel.trace");

  std::printf("\nFIFO-depth sweep (exact matching):\n");
  for (int depth : {1, 2, 4, 8, 16, 32, 64}) {
    const ReplayStats s =
        replay_trace(events, depth, MatchConstraint::exact());
    std::printf("  %2d entries: %5.1f%% hit rate\n", depth,
                s.hit_rate() * 100.0);
  }

  std::printf("\nthreshold sweep (2-entry FIFO, fraction-LSB masks):\n");
  for (float t : {0.0f, 0.2f, 0.4f, 0.6f, 1.0f}) {
    const MatchConstraint c =
        t <= 0.0f ? MatchConstraint::exact()
                  : MatchConstraint::masked(mask_ignoring_fraction_lsbs(
                        fraction_lsbs_for_threshold(t)));
    const ReplayStats s = replay_trace(events, 2, c);
    std::printf("  t=%.1f: %5.1f%% hit rate\n", static_cast<double>(t),
                s.hit_rate() * 100.0);
  }

  std::printf("\nper-unit locality (2 entries, t=0.4):\n");
  const ReplayStats s = replay_trace(
      events, 2,
      MatchConstraint::masked(
          mask_ignoring_fraction_lsbs(fraction_lsbs_for_threshold(0.4f))));
  for (FpuType u : kAllFpuTypes) {
    const LutStats& ls = s.per_unit[static_cast<std::size_t>(u)];
    if (ls.lookups == 0) continue;
    std::printf("  %-7s %8llu ops, %5.1f%% hits\n",
                std::string(fpu_type_name(u)).c_str(),
                static_cast<unsigned long long>(ls.lookups),
                ls.hit_rate() * 100.0);
  }
  std::remove("sobel.trace");
  return 0;
}
