// Example: writing a kernel at the Evergreen clause level.
//
// Builds a polynomial-evaluation kernel (Horner form, the shape of the
// Black-Scholes CND inner loop) directly as clause-based ISA, prints its
// disassembly, and executes it on the resilient device under a 2% timing-
// error rate — showing that the memoization/EDS/recovery machinery applies
// to ISA programs exactly as to the wavefront DSL.
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "isa/executor.hpp"
#include "sim/simulation.hpp"

int main() {
  using namespace tmemo;
  using namespace tmemo::isa;

  // p(x) = ((c3*x + c2)*x + c1)*x + c0, then y = sqrt(|p(x)|)
  KernelProgram program =
      ProgramBuilder("horner4")
          .load(1, 0)                                       // R1 = x
          .alu(FpOpcode::kMulAdd, 2, Src::lit(0.125f),      // R2 = c3*x+c2
               Src::r(1), Src::lit(-0.5f))
          .alu(FpOpcode::kMulAdd, 2, Src::r(2), Src::r(1),  // R2 = R2*x+c1
               Src::lit(0.75f))
          .alu(FpOpcode::kMulAdd, 2, Src::r(2), Src::r(1),  // R2 = R2*x+c0
               Src::lit(2.0f))
          .alu(FpOpcode::kAbs, 3, Src::r(2))
          .alu(FpOpcode::kSqrt, 4, Src::r(3))
          .store(4, 1)
          .build();

  std::printf("%s\n", disassemble(program).c_str());

  // Inputs: sensor-style readings quantized to 1/16 steps (realistic ADC
  // output — and the source of exact-matching value locality).
  const std::size_t n = 1 << 14;
  std::vector<float> x(n), y(n);
  Xorshift128 rng(9);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<float>(rng.next_below(16)) * 0.25f;
  }

  ExperimentConfig cfg;
  GpuDevice device(cfg.device,
                   EnergyModel(cfg.energy, VoltageScaling(cfg.voltage)));
  device.program_exact();
  device.set_error_model(std::make_shared<FixedRateErrorModel>(0.02));

  Bindings bindings;
  bindings.buffers = {std::span<float>(x), std::span<float>(y)};
  execute_program(device, program, bindings, n);

  const FpuStats total = device.total_stats(kAllFpuTypes);
  std::printf("executed      : %llu FP instructions\n",
              static_cast<unsigned long long>(total.instructions));
  std::printf("LUT hit rate  : %.1f%%\n", device.weighted_hit_rate() * 100);
  std::printf("timing errors : %llu (%llu masked, %llu recovered)\n",
              static_cast<unsigned long long>(total.timing_errors),
              static_cast<unsigned long long>(total.masked_errors),
              static_cast<unsigned long long>(total.recoveries));
  std::printf("energy saving : %.1f%% vs detect-then-correct baseline\n",
              device.energy().saving() * 100.0);
  std::printf("sample        : p(%.4f) -> %.6f\n", x[5], y[5]);
  return 0;
}
