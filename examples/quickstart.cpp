// Quickstart: the smallest complete use of the library.
//
// Builds a resilient GPGPU device, runs the Haar wavelet kernel under a 2%
// timing-error rate with the temporal-memoization modules enabled, and
// prints the hit rate, the verification verdict, and the energy saving
// against the baseline detect-then-correct architecture.
#include <cstdio>

#include "sim/simulation.hpp"
#include "workloads/haar.hpp"

int main() {
  using namespace tmemo;

  // 1. A simulation with the default Radeon HD 5870 shape and the 45nm
  //    energy calibration.
  Simulation sim;

  // 2. A workload: the 1024-sample Haar wavelet transform of Table 1.
  HaarWorkload haar(1024);

  // 3. Run it at a 2% per-instruction timing-error rate. The device is
  //    programmed with the workload's Table-1 approximation threshold
  //    (0.046) automatically.
  const KernelRunReport report = sim.run(haar, RunSpec::at_error_rate(0.02));

  std::printf("kernel            : %s (n=%s, threshold=%g)\n",
              report.kernel.c_str(), report.input_parameter.c_str(),
              static_cast<double>(report.threshold));
  std::printf("host verification : %s (max |err| = %.6f)\n",
              report.result.passed ? "PASSED" : "FAILED",
              report.result.max_abs_error);
  std::printf("LUT hit rate      : %.1f%%\n",
              report.weighted_hit_rate * 100.0);
  std::printf("energy (memoized) : %.1f nJ\n",
              report.energy.memoized_pj / 1000.0);
  std::printf("energy (baseline) : %.1f nJ\n",
              report.energy.baseline_pj / 1000.0);
  std::printf("energy saving     : %.1f%%\n", report.energy.saving() * 100.0);
  return report.result.passed ? 0 : 1;
}
