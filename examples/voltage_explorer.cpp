// Example: exploring the voltage-overscaling design space with the
// campaign engine.
//
// For a chosen workload, sweeps the FPU supply from the nominal 0.9 V down
// to 0.78 V at a constant 1 GHz and reports, for every operating point:
// the per-op timing-error rate, the energy of the memoized architecture vs
// the detect-then-correct baseline, and which architecture wins — the
// analysis behind Fig. 11 of the paper. The seven sweep points run
// concurrently on the campaign thread pool and come back in stable order
// as structured JobResults.
//
// Usage: voltage_explorer [kernel-index 0..6] [--jobs N] [--csv]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "sim/campaign.hpp"
#include "workloads/workload.hpp"

int main(int argc, char** argv) {
  using namespace tmemo;

  int index = 2; // default: Haar
  int jobs = 0;  // default: hardware concurrency
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else {
      index = std::atoi(argv[i]);
    }
  }

  const double scale = 0.02;
  const auto workloads = make_all_workloads(scale);
  if (index < 0 || index >= static_cast<int>(workloads.size())) {
    std::fprintf(stderr, "kernel index must be 0..6\n");
    return 1;
  }
  const Workload& w = *workloads[static_cast<std::size_t>(index)];

  SweepSpec spec;
  spec.scale = scale;
  spec.kernels = {std::string(w.name())};
  spec.axis = SweepAxis::voltage(0.90, 0.78, 7);

  const CampaignEngine engine(jobs);
  const CampaignResult result = engine.run(spec);

  const Simulation sim;
  const VoltageScaling scaling(sim.config().voltage);

  std::printf("kernel: %s (param %s, threshold %g)  [%d worker thread%s, "
              "%.0f ms]\n",
              std::string(w.name()).c_str(), w.input_parameter().c_str(),
              static_cast<double>(w.table1_threshold()), result.workers,
              result.workers == 1 ? "" : "s", result.wall_ms);
  std::printf("%-8s %-12s %-14s %-14s %-10s %s\n", "V", "err/op(4st)",
              "E_memo (nJ)", "E_base (nJ)", "saving", "winner");

  for (const JobResult& j : result.jobs) {
    if (!j.ok) {
      std::printf("%-8.2f ERROR: %s\n", j.job.axis_value, j.error.c_str());
      continue;
    }
    const double v = j.job.axis_value;
    const double err = scaling.op_error_probability(v, 4);
    const double saving = j.report.energy.saving();
    std::printf("%-8.2f %-12.4f%% %-14.1f %-14.1f %-9.1f%% %s\n", v,
                err * 100.0, j.report.energy.memoized_pj / 1000.0,
                j.report.energy.baseline_pj / 1000.0, saving * 100.0,
                saving > 0.0 ? "memoized" : "baseline");
  }
  if (csv) {
    std::printf("\n");
    write_campaign_csv(result, std::cout);
  }
  std::printf(
      "\nThe memoization module stays at the nominal 0.9 V; its fixed cost\n"
      "narrows the gain around 0.84-0.86 V and pays off massively once the\n"
      "error rate ramps up below 0.82 V (paper Fig. 11).\n");
  return result.all_ok() ? 0 : 1;
}
