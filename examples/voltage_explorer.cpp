// Example: exploring the voltage-overscaling design space.
//
// For a chosen workload, sweeps the FPU supply from the nominal 0.9 V down
// to 0.78 V at a constant 1 GHz and reports, for every operating point:
// the per-op timing-error rate, the energy of the memoized architecture vs
// the detect-then-correct baseline, and which architecture wins — the
// analysis behind Fig. 11 of the paper.
//
// Usage: voltage_explorer [kernel-index 0..6]
#include <cstdio>
#include <cstdlib>

#include "sim/simulation.hpp"
#include "workloads/workload.hpp"

int main(int argc, char** argv) {
  using namespace tmemo;

  const int index = argc > 1 ? std::atoi(argv[1]) : 2; // default: Haar
  auto workloads = make_all_workloads(0.02);
  if (index < 0 || index >= static_cast<int>(workloads.size())) {
    std::fprintf(stderr, "kernel index must be 0..6\n");
    return 1;
  }
  const Workload& w = *workloads[static_cast<std::size_t>(index)];

  Simulation sim;
  const VoltageScaling scaling(sim.config().voltage);

  std::printf("kernel: %s (param %s, threshold %g)\n",
              std::string(w.name()).c_str(), w.input_parameter().c_str(),
              static_cast<double>(w.table1_threshold()));
  std::printf("%-8s %-12s %-14s %-14s %-10s %s\n", "V", "err/op(4st)",
              "E_memo (nJ)", "E_base (nJ)", "saving", "winner");

  for (double v = 0.90; v >= 0.779; v -= 0.02) {
    const KernelRunReport r = sim.run_at_voltage(w, v);
    const double err = scaling.op_error_probability(v, 4);
    const double saving = r.energy.saving();
    std::printf("%-8.2f %-12.4f%% %-14.1f %-14.1f %-9.1f%% %s\n", v,
                err * 100.0, r.energy.memoized_pj / 1000.0,
                r.energy.baseline_pj / 1000.0, saving * 100.0,
                saving > 0.0 ? "memoized" : "baseline");
  }
  std::printf(
      "\nThe memoization module stays at the nominal 0.9 V; its fixed cost\n"
      "narrows the gain around 0.84-0.86 V and pays off massively once the\n"
      "error rate ramps up below 0.82 V (paper Fig. 11).\n");
  return 0;
}
