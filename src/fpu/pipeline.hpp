// Structural model of one pipelined FPU.
//
// Evergreen FPUs are fully pipelined: four stages (sixteen for RECIP) with a
// throughput of one instruction per cycle (paper §5.1, [27]). This class
// models occupancy and timing only; functional results come from
// evaluate_fp_op(), and error/memoization behavior is layered on top by
// ResilientFpu (src/memo/resilient_fpu.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/require.hpp"
#include "common/types.hpp"
#include "fpu/instruction.hpp"
#include "fpu/semantics.hpp"

namespace tmemo {

/// An instruction that has left the last pipeline stage.
struct RetiredOp {
  FpInstruction instruction;
  float result = 0.0f;
  Cycle issue_cycle = 0;
  Cycle retire_cycle = 0;
};

/// In-order, fully pipelined FPU: `depth` stages, one issue per cycle.
///
/// Usage per simulated cycle:
///   pipe.step();                 // advance all stages by one cycle
///   auto done = pipe.retire();   // instruction completing this cycle, if any
///   if (pipe.can_issue()) pipe.issue(ins);  // optional new issue
class FpuPipeline {
 public:
  explicit FpuPipeline(FpuType type)
      : type_(type), stages_(static_cast<std::size_t>(fpu_latency_cycles(type))) {}

  [[nodiscard]] FpuType type() const noexcept { return type_; }
  [[nodiscard]] int depth() const noexcept {
    return static_cast<int>(stages_.size());
  }

  /// Cycles elapsed since construction (or the last reset()).
  [[nodiscard]] Cycle now() const noexcept { return now_; }

  /// Number of in-flight instructions.
  [[nodiscard]] int occupancy() const noexcept {
    int n = 0;
    for (const auto& s : stages_) n += s.has_value() ? 1 : 0;
    return n;
  }

  /// Fully pipelined: a new instruction can enter stage 0 every cycle as
  /// long as stage 0 is free (it is, right after step()).
  [[nodiscard]] bool can_issue() const noexcept {
    return !stages_.front().has_value();
  }

  /// Places an instruction into stage 0. The functional result is computed
  /// eagerly (it only becomes architecturally visible at retirement).
  /// Occupancy/timing model only: the energy for real executions is charged
  /// when ResilientFpu emits the op's ExecutionRecord to the device sink.
  void issue(const FpInstruction& ins) { // tmemo-lint: allow(energy-pairing)
    TM_REQUIRE(can_issue(), "structural hazard: stage 0 is occupied");
    InFlight f;
    f.op.instruction = ins;
    f.op.result = evaluate_fp_op(ins);
    f.op.issue_cycle = now_;
    stages_.front() = f;
  }

  /// Advances the pipeline by one cycle. The instruction leaving the last
  /// stage (if any) becomes available from retire() until the next step().
  void step() {
    retired_.reset();
    if (stages_.back().has_value()) {
      retired_ = stages_.back()->op;
      retired_->retire_cycle = now_ + 1;
    }
    for (std::size_t i = stages_.size(); i-- > 1;) {
      stages_[i] = stages_[i - 1];
    }
    stages_.front().reset();
    ++now_;
  }

  /// The instruction that completed during the most recent step(), if any.
  [[nodiscard]] const std::optional<RetiredOp>& retire() const noexcept {
    return retired_;
  }

  /// Squashes (annuls) the instruction currently in stage `stage_index`
  /// without removing its occupancy timing — used by the memoization module
  /// to clock-gate the remaining stages after a LUT hit, and by the ECU to
  /// flush on recovery. Returns true if a valid instruction was squashed.
  bool squash_stage(int stage_index) noexcept {
    if (stage_index < 0 || stage_index >= depth()) return false;
    if (!stages_[static_cast<std::size_t>(stage_index)].has_value())
      return false;
    stages_[static_cast<std::size_t>(stage_index)].reset();
    return true;
  }

  /// Flushes the entire pipeline (ECU recovery, paper §4.2 baseline path).
  /// Returns the number of squashed in-flight instructions.
  int flush() noexcept {
    int n = occupancy();
    for (auto& s : stages_) s.reset();
    return n;
  }

  /// Drops all state and restarts the local clock.
  void reset() noexcept {
    flush();
    retired_.reset();
    now_ = 0;
  }

 private:
  struct InFlight {
    RetiredOp op;
  };

  FpuType type_;
  std::vector<std::optional<InFlight>> stages_;
  std::optional<RetiredOp> retired_;
  Cycle now_ = 0;
};

} // namespace tmemo
