// Functional (bit-accurate at single precision) semantics of the 27 modeled
// FP opcodes. This is the "golden" datapath: what an error-free FPU
// computes. Timing errors and approximate memoization perturb results at
// higher layers; the functional core itself is exact.
#pragma once

#include <array>

#include "fpu/instruction.hpp"
#include "fpu/opcode.hpp"

namespace tmemo {

/// Evaluates `op` on up to three single-precision operands, rounding to
/// single precision exactly as the hardware datapath would.
[[nodiscard]] float evaluate_fp_op(
    FpOpcode op, const std::array<float, kMaxOperands>& operands) noexcept;

/// Convenience overload for a dynamic instruction.
[[nodiscard]] inline float evaluate_fp_op(const FpInstruction& ins) noexcept {
  return evaluate_fp_op(ins.opcode, ins.operands);
}

} // namespace tmemo
