// A dynamic floating-point instruction instance, as seen by one physical
// FPU: opcode plus concrete single-precision operand values. This is the
// unit of work that flows through the memoization LUT and the FPU pipeline.
#pragma once

#include <array>
#include <cstdint>

#include "common/types.hpp"
#include "fpu/opcode.hpp"

namespace tmemo {

/// Maximum number of source operands of any modeled opcode.
inline constexpr int kMaxOperands = 3;

/// A dynamic FP instruction: what one FPU receives in one issue slot.
struct FpInstruction {
  FpOpcode opcode = FpOpcode::kAdd;
  std::array<float, kMaxOperands> operands{0.0f, 0.0f, 0.0f};
  /// Which work-item issued this instance (for statistics only).
  WorkItemId work_item = 0;
  /// Index of the static instruction in the kernel body (for statistics and
  /// for the static VLIW slot assignment).
  StaticInstrId static_id = 0;

  [[nodiscard]] int arity() const noexcept { return opcode_arity(opcode); }
  [[nodiscard]] FpuType unit() const noexcept { return opcode_unit(opcode); }
};

} // namespace tmemo
