#include "fpu/opcode.hpp"

namespace tmemo {

int opcode_arity(FpOpcode op) noexcept {
  switch (op) {
    case FpOpcode::kFloor:
    case FpOpcode::kCeil:
    case FpOpcode::kTrunc:
    case FpOpcode::kRndNe:
    case FpOpcode::kFract:
    case FpOpcode::kAbs:
    case FpOpcode::kNeg:
    case FpOpcode::kSqrt:
    case FpOpcode::kRsqrt:
    case FpOpcode::kRecip:
    case FpOpcode::kSin:
    case FpOpcode::kCos:
    case FpOpcode::kExp2:
    case FpOpcode::kLog2:
    case FpOpcode::kFp2Int:
    case FpOpcode::kInt2Fp:
      return 1;
    case FpOpcode::kMulAdd:
    case FpOpcode::kCndGe:
      return 3;
    default:
      return 2;
  }
}

FpuType opcode_unit(FpOpcode op) noexcept {
  switch (op) {
    case FpOpcode::kMul:
      return FpuType::kMul;
    case FpOpcode::kMulAdd:
      return FpuType::kMulAdd;
    case FpOpcode::kSqrt:
    case FpOpcode::kRsqrt:
      return FpuType::kSqrt;
    case FpOpcode::kRecip:
      return FpuType::kRecip;
    case FpOpcode::kFp2Int:
      return FpuType::kFp2Int;
    case FpOpcode::kInt2Fp:
      return FpuType::kInt2Fp;
    case FpOpcode::kSin:
    case FpOpcode::kCos:
      return FpuType::kTrig;
    case FpOpcode::kExp2:
    case FpOpcode::kLog2:
      return FpuType::kExpLog;
    default:
      // add/sub, compares, min/max, rounding, abs/neg, conditional move all
      // share the adder/compare datapath.
      return FpuType::kAdd;
  }
}

bool opcode_commutative(FpOpcode op) noexcept {
  switch (op) {
    case FpOpcode::kAdd:
    case FpOpcode::kMul:
    case FpOpcode::kMulAdd: // the a*b multiplicand pair commutes
    case FpOpcode::kMin:
    case FpOpcode::kMax:
    case FpOpcode::kSetE:
    case FpOpcode::kSetNe:
      return true;
    default:
      return false;
  }
}

std::string_view opcode_name(FpOpcode op) noexcept {
  switch (op) {
    case FpOpcode::kAdd:    return "ADD";
    case FpOpcode::kSub:    return "SUB";
    case FpOpcode::kMul:    return "MUL";
    case FpOpcode::kMulAdd: return "MULADD";
    case FpOpcode::kMin:    return "MIN";
    case FpOpcode::kMax:    return "MAX";
    case FpOpcode::kFloor:  return "FLOOR";
    case FpOpcode::kCeil:   return "CEIL";
    case FpOpcode::kTrunc:  return "TRUNC";
    case FpOpcode::kRndNe:  return "RNDNE";
    case FpOpcode::kFract:  return "FRACT";
    case FpOpcode::kAbs:    return "ABS";
    case FpOpcode::kNeg:    return "NEG";
    case FpOpcode::kSqrt:   return "SQRT";
    case FpOpcode::kRsqrt:  return "RSQRT";
    case FpOpcode::kRecip:  return "RECIP";
    case FpOpcode::kSin:    return "SIN";
    case FpOpcode::kCos:    return "COS";
    case FpOpcode::kExp2:   return "EXP2";
    case FpOpcode::kLog2:   return "LOG2";
    case FpOpcode::kFp2Int: return "FP2INT";
    case FpOpcode::kInt2Fp: return "INT2FP";
    case FpOpcode::kSetE:   return "SETE";
    case FpOpcode::kSetGt:  return "SETGT";
    case FpOpcode::kSetGe:  return "SETGE";
    case FpOpcode::kSetNe:  return "SETNE";
    case FpOpcode::kCndGe:  return "CNDGE";
  }
  return "?";
}

std::string_view fpu_type_name(FpuType t) noexcept {
  switch (t) {
    case FpuType::kAdd:    return "ADD";
    case FpuType::kMul:    return "MUL";
    case FpuType::kMulAdd: return "MULADD";
    case FpuType::kSqrt:   return "SQRT";
    case FpuType::kRecip:  return "RECIP";
    case FpuType::kFp2Int: return "FP2INT";
    case FpuType::kInt2Fp: return "INT2FP";
    case FpuType::kTrig:   return "TRIG";
    case FpuType::kExpLog: return "EXPLOG";
  }
  return "?";
}

bool fpu_type_is_transcendental(FpuType t) noexcept {
  switch (t) {
    case FpuType::kSqrt:
    case FpuType::kRecip:
    case FpuType::kTrig:
    case FpuType::kExpLog:
      return true;
    default:
      return false;
  }
}

int fpu_latency_cycles(FpuType t) noexcept {
  // Paper §5.1: "the RECIP has a latency of 16 cycles, while the rest of the
  // FPU have four cycles latency."
  return t == FpuType::kRecip ? 16 : 4;
}

} // namespace tmemo
