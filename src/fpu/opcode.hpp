// The 27 single-precision floating-point instructions modeled by the
// library, and their mapping onto physical FPU types.
//
// The paper (§1, §5) collects value-locality statistics over "27 single
// precision floating-point instructions" of the AMD Evergreen ISA and
// reports energy for the six frequently exercised functional-unit types
// (ADD, MUL, SQRT, RECIP, MULADD, FP2INT). We model the same structure: a
// rich opcode set, each opcode steered to one of the physical FPU pipeline
// types that actually executes it.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace tmemo {

/// Single-precision FP opcodes (Evergreen ALU-clause subset, 27 entries).
enum class FpOpcode : std::uint8_t {
  kAdd,      ///< d = a + b
  kSub,      ///< d = a - b
  kMul,      ///< d = a * b
  kMulAdd,   ///< d = a * b + c
  kMin,      ///< d = min(a, b)
  kMax,      ///< d = max(a, b)
  kFloor,    ///< d = floor(a)
  kCeil,     ///< d = ceil(a)
  kTrunc,    ///< d = trunc(a)
  kRndNe,    ///< d = round-to-nearest-even(a)
  kFract,    ///< d = a - floor(a)
  kAbs,      ///< d = |a|
  kNeg,      ///< d = -a
  kSqrt,     ///< d = sqrt(a)
  kRsqrt,    ///< d = 1 / sqrt(a)
  kRecip,    ///< d = 1 / a
  kSin,      ///< d = sin(a)
  kCos,      ///< d = cos(a)
  kExp2,     ///< d = 2^a
  kLog2,     ///< d = log2(a)
  kFp2Int,   ///< d = (float)(int32)a   (FLT_TO_INT; result kept in FP regs)
  kInt2Fp,   ///< d = (float)trunc(a)   (INT_TO_FLT of an integer-valued reg)
  kSetE,     ///< d = (a == b) ? 1.0f : 0.0f
  kSetGt,    ///< d = (a >  b) ? 1.0f : 0.0f
  kSetGe,    ///< d = (a >= b) ? 1.0f : 0.0f
  kSetNe,    ///< d = (a != b) ? 1.0f : 0.0f
  kCndGe,    ///< d = (a >= 0) ? b : c  (conditional move)
};

/// Total number of modeled FP opcodes.
inline constexpr int kNumFpOpcodes = 27;

/// Physical FPU pipeline types. Every stream core's ALU engine owns a pool
/// of these pipelined units; every instance carries its own EDS sensors and
/// its own temporal-memoization LUT.
enum class FpuType : std::uint8_t {
  kAdd,     ///< add/sub/compare/round datapath
  kMul,     ///< multiplier
  kMulAdd,  ///< fused multiply-add
  kSqrt,    ///< square root / reciprocal square root (T-unit)
  kRecip,   ///< reciprocal (T-unit, deep pipeline)
  kFp2Int,  ///< float -> int conversion
  kInt2Fp,  ///< int -> float conversion
  kTrig,    ///< sin / cos (T-unit)
  kExpLog,  ///< exp2 / log2 (T-unit)
};

/// Total number of physical FPU pipeline types.
inline constexpr int kNumFpuTypes = 9;

/// All FPU types, for iteration.
inline constexpr std::array<FpuType, kNumFpuTypes> kAllFpuTypes = {
    FpuType::kAdd,    FpuType::kMul,    FpuType::kMulAdd,
    FpuType::kSqrt,   FpuType::kRecip,  FpuType::kFp2Int,
    FpuType::kInt2Fp, FpuType::kTrig,   FpuType::kExpLog,
};

/// The six frequently exercised FPU types whose energy the paper reports
/// (Fig. 10 / Fig. 11 captions).
inline constexpr std::array<FpuType, 6> kReportedFpuTypes = {
    FpuType::kAdd,    FpuType::kMul,    FpuType::kSqrt,
    FpuType::kRecip,  FpuType::kMulAdd, FpuType::kFp2Int,
};

/// Number of float source operands the opcode consumes (1..3).
[[nodiscard]] int opcode_arity(FpOpcode op) noexcept;

/// Physical FPU type that executes the opcode.
[[nodiscard]] FpuType opcode_unit(FpOpcode op) noexcept;

/// True when swapping the first two operands cannot change the result
/// (ADD, MUL, MIN, MAX, SETE, SETNE, and the multiplicand pair of MULADD).
/// The LUT comparators exploit this (paper §4.2: "allow commutativity of
/// the operands where applicable").
[[nodiscard]] bool opcode_commutative(FpOpcode op) noexcept;

/// Mnemonic, e.g. "MULADD".
[[nodiscard]] std::string_view opcode_name(FpOpcode op) noexcept;

/// Unit-type name, e.g. "MULADD", "FP2INT".
[[nodiscard]] std::string_view fpu_type_name(FpuType t) noexcept;

/// True for units that live on the transcendental (T) processing element of
/// a stream core; all other units are replicated across the X/Y/Z/W PEs.
[[nodiscard]] bool fpu_type_is_transcendental(FpuType t) noexcept;

/// Pipeline depth in cycles at the signoff frequency. Per the paper (§5.1):
/// every Evergreen ALU functional unit has a latency of four cycles and a
/// throughput of one instruction per cycle, except RECIP which is pipelined
/// to 16 stages to balance the clock across the FP pipelines.
[[nodiscard]] int fpu_latency_cycles(FpuType t) noexcept;

} // namespace tmemo
