#include "fpu/semantics.hpp"

#include <cmath>
#include <cstdint>

namespace tmemo {

float evaluate_fp_op(FpOpcode op,
                     const std::array<float, kMaxOperands>& v) noexcept {
  const float a = v[0];
  const float b = v[1];
  const float c = v[2];
  switch (op) {
    case FpOpcode::kAdd:    return a + b;
    case FpOpcode::kSub:    return a - b;
    case FpOpcode::kMul:    return a * b;
    case FpOpcode::kMulAdd: return ::fmaf(a, b, c);
    case FpOpcode::kMin:    return ::fminf(a, b);
    case FpOpcode::kMax:    return ::fmaxf(a, b);
    case FpOpcode::kFloor:  return ::floorf(a);
    case FpOpcode::kCeil:   return ::ceilf(a);
    case FpOpcode::kTrunc:  return ::truncf(a);
    case FpOpcode::kRndNe:  return ::nearbyintf(a);
    case FpOpcode::kFract:  return a - ::floorf(a);
    case FpOpcode::kAbs:    return ::fabsf(a);
    case FpOpcode::kNeg:    return -a;
    case FpOpcode::kSqrt:   return ::sqrtf(a);
    case FpOpcode::kRsqrt:  return 1.0f / ::sqrtf(a);
    case FpOpcode::kRecip:  return 1.0f / a;
    case FpOpcode::kSin:    return ::sinf(a);
    case FpOpcode::kCos:    return ::cosf(a);
    case FpOpcode::kExp2:   return ::exp2f(a);
    case FpOpcode::kLog2:   return ::log2f(a);
    case FpOpcode::kFp2Int: {
      // FLT_TO_INT with saturation, result materialized back into an FP reg
      // (Evergreen keeps integer values in the shared GPR file).
      if (std::isnan(a)) return 0.0f;
      const float clamped =
          ::fminf(::fmaxf(a, -2147483648.0f), 2147483520.0f);
      return static_cast<float>(static_cast<std::int32_t>(clamped));
    }
    case FpOpcode::kInt2Fp: return ::truncf(a);
    // SETE/SETNE are the ISA's own bit-exact comparison ops; an epsilon
    // here would change the architected semantics being modeled.
    case FpOpcode::kSetE:   return a == b ? 1.0f : 0.0f;  // tmemo-lint: allow(float-equality)
    case FpOpcode::kSetGt:  return a > b ? 1.0f : 0.0f;
    case FpOpcode::kSetGe:  return a >= b ? 1.0f : 0.0f;
    case FpOpcode::kSetNe:  return a != b ? 1.0f : 0.0f;  // tmemo-lint: allow(float-equality)
    case FpOpcode::kCndGe:  return a >= 0.0f ? b : c;
  }
  return 0.0f;
}

} // namespace tmemo
