#include "isa/executor.hpp"

#include <array>

#include "common/require.hpp"
#include "kernel/vec.hpp"

namespace tmemo::isa {

namespace {

/// Static-id layout: every ALU instruction gets a fixed id from its
/// position in the program, so re-executions inside REPEAT blocks steer to
/// the same PE slot — exactly like statically scheduled VLIW code.
std::vector<StaticInstrId> layout_static_ids(const KernelProgram& program) {
  std::vector<StaticInstrId> first_id_of_clause(program.clauses.size(), 0);
  StaticInstrId next = 0;
  for (std::size_t i = 0; i < program.clauses.size(); ++i) {
    first_id_of_clause[i] = next;
    if (const auto* alu = std::get_if<AluClause>(&program.clauses[i])) {
      next += static_cast<StaticInstrId>(alu->instrs.size());
    }
  }
  return first_id_of_clause;
}

std::size_t clamp_index(std::int64_t index, std::size_t size) {
  if (index < 0) return 0;
  if (static_cast<std::size_t>(index) >= size) return size - 1;
  return static_cast<std::size_t>(index);
}

std::size_t resolve_address(AddrMode mode, Reg addr_reg, std::int64_t offset,
                            const std::array<LaneVec, kNumRegisters>& regs,
                            int lane, WorkItemId base,
                            std::size_t buffer_size) {
  std::int64_t index = 0;
  if (mode == AddrMode::kGlobalId) {
    index = static_cast<std::int64_t>(base) + lane + offset;
  } else {
    index = static_cast<std::int64_t>(
                regs[addr_reg][lane]) + offset;
  }
  return clamp_index(index, buffer_size);
}

} // namespace

void execute_program(GpuDevice& device, const KernelProgram& program,
                     const Bindings& bindings, std::size_t global_size) {
  const int needed_buffers = validate(program);
  TM_REQUIRE(static_cast<int>(bindings.buffers.size()) >= needed_buffers,
             "program references more buffer slots than bound");
  for (const auto& buf : bindings.buffers) {
    TM_REQUIRE(!buf.empty(), "bound buffers must be non-empty");
  }
  TM_REQUIRE(global_size > 0, "empty NDRange");

  const auto clause_ids = layout_static_ids(program);
  const int wf_size = device.config().wavefront_size;
  const std::size_t wavefronts =
      (global_size + static_cast<std::size_t>(wf_size) - 1) /
      static_cast<std::size_t>(wf_size);

  for (std::size_t w = 0; w < wavefronts; ++w) {
    const WorkItemId base =
        static_cast<WorkItemId>(w) * static_cast<WorkItemId>(wf_size);
    const std::size_t remaining = global_size - base;
    const int lanes = remaining >= static_cast<std::size_t>(wf_size)
                          ? wf_size
                          : static_cast<int>(remaining);
    const std::uint64_t mask =
        lanes >= 64 ? ~0ull : ((1ull << lanes) - 1ull);
    ComputeUnit& cu = device.compute_unit(static_cast<int>(
        w % static_cast<std::size_t>(device.compute_unit_count())));

    // Per-work-item register file; R0 preloaded with the global id.
    std::array<LaneVec, kNumRegisters> regs{};
    for (int lane = 0; lane < lanes; ++lane) {
      regs[0][lane] = static_cast<float>(base + static_cast<WorkItemId>(lane));
    }

    // Clause interpreter with a REPEAT stack and a predication (IF) stack.
    struct RepeatFrame {
      std::size_t begin; ///< clause index of the RepeatBegin
      int remaining;     ///< iterations left after the current one
    };
    std::vector<RepeatFrame> repeat_stack;

    struct BranchFrame {
      std::uint64_t parent;  ///< mask outside the IF
      std::uint64_t taken;   ///< lanes that took the THEN side
    };
    std::vector<BranchFrame> branch_stack;
    std::uint64_t exec_mask = mask;

    std::size_t pc = 0;
    while (pc < program.clauses.size()) {
      const Clause& clause = program.clauses[pc];
      if (const auto* alu = std::get_if<AluClause>(&clause)) {
        StaticInstrId sid = clause_ids[pc];
        for (const AluInstr& ins : alu->instrs) {
          const int arity = opcode_arity(ins.op);
          std::array<LaneVec, 3> srcs;
          for (int i = 0; i < arity; ++i) {
            if (ins.src[i].kind == Src::Kind::kRegister) {
              srcs[static_cast<std::size_t>(i)] = regs[ins.src[i].reg];
            } else {
              srcs[static_cast<std::size_t>(i)] =
                  LaneVec(ins.src[i].literal);
            }
          }
          LaneVec out = regs[ins.dst];
          cu.execute_wavefront_op(ins.op, sid++, srcs[0].data(),
                                  arity >= 2 ? srcs[1].data() : nullptr,
                                  arity >= 3 ? srcs[2].data() : nullptr,
                                  exec_mask, base, device.error_model(),
                                  &device.sink(), out.data());
          // Predicated write-back: masked-off lanes keep their old value.
          regs[ins.dst] = out;
        }
      } else if (const auto* tex = std::get_if<TexClause>(&clause)) {
        for (const TexLoad& ld : tex->loads) {
          const auto buf = bindings.buffers[ld.buffer];
          for (int lane = 0; lane < lanes; ++lane) {
            if ((exec_mask & (1ull << lane)) == 0) continue;
            regs[ld.dst][lane] = buf[resolve_address(
                ld.mode, ld.addr_reg, ld.offset, regs, lane, base,
                buf.size())];
          }
        }
      } else if (const auto* ex = std::get_if<Export>(&clause)) {
        const auto buf = bindings.buffers[ex->buffer];
        for (int lane = 0; lane < lanes; ++lane) {
          if ((exec_mask & (1ull << lane)) == 0) continue;
          buf[resolve_address(ex->mode, ex->addr_reg, ex->offset, regs, lane,
                              base, buf.size())] = regs[ex->src][lane];
        }
      } else if (const auto* ib = std::get_if<IfBegin>(&clause)) {
        std::uint64_t taken = 0;
        for (int lane = 0; lane < lanes; ++lane) {
          if ((exec_mask & (1ull << lane)) != 0 &&
              // Predicate registers hold exactly 0.0f or 1.0f by ISA
              // contract; bit-exact inequality is the intended semantics
              // (an epsilon would misread injected predicate corruption).
              regs[ib->pred][lane] != 0.0f) {  // tmemo-lint: allow(float-equality)
            taken |= 1ull << lane;
          }
        }
        branch_stack.push_back({exec_mask, taken});
        exec_mask = taken;
      } else if (std::holds_alternative<Else>(clause)) {
        TM_ASSERT(!branch_stack.empty());
        exec_mask = branch_stack.back().parent & ~branch_stack.back().taken;
      } else if (std::holds_alternative<EndIf>(clause)) {
        TM_ASSERT(!branch_stack.empty());
        exec_mask = branch_stack.back().parent;
        branch_stack.pop_back();
      } else if (const auto* rb = std::get_if<RepeatBegin>(&clause)) {
        repeat_stack.push_back({pc, rb->count - 1});
      } else if (std::holds_alternative<RepeatEnd>(clause)) {
        TM_ASSERT(!repeat_stack.empty());
        if (repeat_stack.back().remaining > 0) {
          --repeat_stack.back().remaining;
          pc = repeat_stack.back().begin; // jump back to the RepeatBegin
        } else {
          repeat_stack.pop_back();
        }
      }
      ++pc;
    }
  }
}

} // namespace tmemo::isa
