#include "isa/program.hpp"

#include <sstream>

#include "common/require.hpp"

namespace tmemo::isa {

namespace {

void check_reg(Reg r, const char* what) {
  TM_REQUIRE(r < kNumRegisters, std::string(what) + " register out of range");
}

int max_buffer(int current, std::uint8_t buffer) {
  return std::max(current, static_cast<int>(buffer) + 1);
}

std::string src_str(const Src& s) {
  if (s.kind == Src::Kind::kRegister) {
    std::string out = "R";
    out += std::to_string(s.reg);
    return out;
  }
  std::ostringstream os;
  os << s.literal;
  return os.str();
}

std::string addr_str(AddrMode mode, Reg addr_reg, std::int64_t offset) {
  std::string base;
  if (mode == AddrMode::kGlobalId) {
    base = "gid";
  } else {
    base = "trunc(R";
    base += std::to_string(addr_reg);
    base += ')';
  }
  if (offset != 0) {
    if (offset > 0) base += '+';
    base += std::to_string(offset);
  }
  return base;
}

} // namespace

int validate(const KernelProgram& program) {
  int buffers = 0;
  int repeat_depth = 0;
  int if_depth = 0;
  for (const Clause& clause : program.clauses) {
    if (const auto* alu = std::get_if<AluClause>(&clause)) {
      TM_REQUIRE(!alu->instrs.empty(), "empty ALU clause");
      for (const AluInstr& ins : alu->instrs) {
        check_reg(ins.dst, "destination");
        const int arity = opcode_arity(ins.op);
        for (int i = 0; i < arity; ++i) {
          if (ins.src[i].kind == Src::Kind::kRegister) {
            check_reg(ins.src[i].reg, "source");
          }
        }
      }
    } else if (const auto* tex = std::get_if<TexClause>(&clause)) {
      TM_REQUIRE(!tex->loads.empty(), "empty TEX clause");
      for (const TexLoad& ld : tex->loads) {
        check_reg(ld.dst, "load destination");
        if (ld.mode == AddrMode::kRegister) check_reg(ld.addr_reg, "address");
        buffers = max_buffer(buffers, ld.buffer);
      }
    } else if (const auto* ex = std::get_if<Export>(&clause)) {
      check_reg(ex->src, "export source");
      if (ex->mode == AddrMode::kRegister) check_reg(ex->addr_reg, "address");
      buffers = max_buffer(buffers, ex->buffer);
    } else if (const auto* rb = std::get_if<RepeatBegin>(&clause)) {
      TM_REQUIRE(rb->count >= 1, "REPEAT trip count must be >= 1");
      ++repeat_depth;
    } else if (std::holds_alternative<RepeatEnd>(clause)) {
      TM_REQUIRE(repeat_depth > 0, "REPEAT_END without matching REPEAT");
      --repeat_depth;
    } else if (const auto* ib = std::get_if<IfBegin>(&clause)) {
      check_reg(ib->pred, "branch predicate");
      ++if_depth;
    } else if (std::holds_alternative<Else>(clause)) {
      TM_REQUIRE(if_depth > 0, "ELSE without matching IF");
    } else if (std::holds_alternative<EndIf>(clause)) {
      TM_REQUIRE(if_depth > 0, "ENDIF without matching IF");
      --if_depth;
    }
  }
  TM_REQUIRE(repeat_depth == 0, "unterminated REPEAT block");
  TM_REQUIRE(if_depth == 0, "unterminated IF block");
  return buffers;
}

std::string disassemble(const KernelProgram& program) {
  std::ostringstream os;
  os << "; kernel " << program.name << '\n';
  int indent = 0;
  auto pad = [&os, &indent] {
    for (int i = 0; i < indent; ++i) os << "  ";
  };
  for (const Clause& clause : program.clauses) {
    if (const auto* alu = std::get_if<AluClause>(&clause)) {
      pad();
      os << "ALU {\n";
      for (const AluInstr& ins : alu->instrs) {
        pad();
        os << "  R" << static_cast<int>(ins.dst) << " <- "
           << opcode_name(ins.op);
        const int arity = opcode_arity(ins.op);
        for (int i = 0; i < arity; ++i) {
          os << (i == 0 ? " " : ", ") << src_str(ins.src[i]);
        }
        os << '\n';
      }
      pad();
      os << "}\n";
    } else if (const auto* tex = std::get_if<TexClause>(&clause)) {
      pad();
      os << "TEX {\n";
      for (const TexLoad& ld : tex->loads) {
        pad();
        os << "  R" << static_cast<int>(ld.dst) << " <- buf"
           << static_cast<int>(ld.buffer) << '['
           << addr_str(ld.mode, ld.addr_reg, ld.offset) << "]\n";
      }
      pad();
      os << "}\n";
    } else if (const auto* ex = std::get_if<Export>(&clause)) {
      pad();
      os << "EXPORT buf" << static_cast<int>(ex->buffer) << '['
         << addr_str(ex->mode, ex->addr_reg, ex->offset) << "] <- R"
         << static_cast<int>(ex->src) << '\n';
    } else if (const auto* rb = std::get_if<RepeatBegin>(&clause)) {
      pad();
      os << "REPEAT x" << rb->count << '\n';
      ++indent;
    } else if (std::holds_alternative<RepeatEnd>(clause)) {
      --indent;
      pad();
      os << "END\n";
    } else if (const auto* ib = std::get_if<IfBegin>(&clause)) {
      pad();
      os << "IF R" << static_cast<int>(ib->pred) << " != 0\n";
      ++indent;
    } else if (std::holds_alternative<Else>(clause)) {
      --indent;
      pad();
      os << "ELSE\n";
      ++indent;
    } else if (std::holds_alternative<EndIf>(clause)) {
      --indent;
      pad();
      os << "ENDIF\n";
    }
  }
  return os.str();
}

ProgramBuilder& ProgramBuilder::alu(FpOpcode op, Reg dst, Src a, Src b,
                                    Src c) {
  if (!alu_open_) {
    close_clauses();
    program_.clauses.emplace_back(AluClause{});
    alu_open_ = true;
  }
  AluInstr ins;
  ins.op = op;
  ins.dst = dst;
  ins.src[0] = a;
  ins.src[1] = b;
  ins.src[2] = c;
  std::get<AluClause>(program_.clauses.back()).instrs.push_back(ins);
  return *this;
}

ProgramBuilder& ProgramBuilder::load(Reg dst, std::uint8_t buffer,
                                     AddrMode mode, Reg addr_reg,
                                     std::int64_t offset) {
  if (!tex_open_) {
    close_clauses();
    program_.clauses.emplace_back(TexClause{});
    tex_open_ = true;
  }
  TexLoad ld;
  ld.dst = dst;
  ld.buffer = buffer;
  ld.mode = mode;
  ld.addr_reg = addr_reg;
  ld.offset = offset;
  std::get<TexClause>(program_.clauses.back()).loads.push_back(ld);
  return *this;
}

ProgramBuilder& ProgramBuilder::store(Reg src, std::uint8_t buffer,
                                      AddrMode mode, Reg addr_reg,
                                      std::int64_t offset) {
  close_clauses();
  Export ex;
  ex.src = src;
  ex.buffer = buffer;
  ex.mode = mode;
  ex.addr_reg = addr_reg;
  ex.offset = offset;
  program_.clauses.emplace_back(ex);
  return *this;
}

ProgramBuilder& ProgramBuilder::repeat(int count) {
  close_clauses();
  program_.clauses.emplace_back(RepeatBegin{count});
  return *this;
}

ProgramBuilder& ProgramBuilder::end_repeat() {
  close_clauses();
  program_.clauses.emplace_back(RepeatEnd{});
  return *this;
}

ProgramBuilder& ProgramBuilder::branch_if(Reg pred) {
  close_clauses();
  program_.clauses.emplace_back(IfBegin{pred});
  return *this;
}

ProgramBuilder& ProgramBuilder::branch_else() {
  close_clauses();
  program_.clauses.emplace_back(Else{});
  return *this;
}

ProgramBuilder& ProgramBuilder::end_if() {
  close_clauses();
  program_.clauses.emplace_back(EndIf{});
  return *this;
}

KernelProgram ProgramBuilder::build() {
  (void)validate(program_);
  return std::move(program_);
}

} // namespace tmemo::isa
