// Evergreen-style clause-based kernel programs.
//
// The paper's §3 describes the Evergreen assembly format: "a clause-based
// format classified in three categories: ALU clause, TEX clause, and
// control-flow instructions". This module models that structure as data —
// a KernelProgram is a sequence of clauses:
//
//   * a TEX clause loads values from bound buffers into registers
//     (memory is resilient, paper §5.1, so loads carry no FP-error cost);
//   * an ALU clause is a list of FP instructions over the per-work-item
//     register file, executed on the stream cores with all the memoization
//     / EDS / recovery machinery;
//   * an EXPORT writes a register back to a buffer;
//   * a REPEAT block re-executes its body a fixed number of times
//     (uniform control flow, the shape GPU kernels compile to).
//
// Programs are plain data validated before execution — the executor
// (isa/executor.hpp) runs them on a GpuDevice wavefront by wavefront.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "fpu/opcode.hpp"

namespace tmemo::isa {

/// Number of general-purpose float registers per work-item.
inline constexpr int kNumRegisters = 16;

/// Register index; R0 is preloaded with the work-item's global id.
using Reg = std::uint8_t;

/// A source operand of an ALU instruction: a register or a literal.
struct Src {
  enum class Kind : std::uint8_t { kRegister, kLiteral };
  Kind kind = Kind::kLiteral;
  Reg reg = 0;
  float literal = 0.0f;

  [[nodiscard]] static Src r(Reg index) noexcept {
    return Src{Kind::kRegister, index, 0.0f};
  }
  [[nodiscard]] static Src lit(float value) noexcept {
    return Src{Kind::kLiteral, 0, value};
  }
};

/// One FP instruction of an ALU clause: dst <- op(src...).
struct AluInstr {
  FpOpcode op = FpOpcode::kAdd;
  Reg dst = 0;
  Src src[3]{};
};

/// Buffer addressing of TEX loads / exports.
enum class AddrMode : std::uint8_t {
  kGlobalId,      ///< element [global_id + offset]
  kRegister,      ///< element [trunc(R[addr_reg]) + offset], clamped
};

/// One load of a TEX clause: dst <- buffer[address].
struct TexLoad {
  Reg dst = 0;
  std::uint8_t buffer = 0;  ///< binding slot
  AddrMode mode = AddrMode::kGlobalId;
  Reg addr_reg = 0;         ///< for AddrMode::kRegister
  std::int64_t offset = 0;
};

/// An export: buffer[address] <- R[src].
struct Export {
  Reg src = 0;
  std::uint8_t buffer = 0;
  AddrMode mode = AddrMode::kGlobalId;
  Reg addr_reg = 0;
  std::int64_t offset = 0;
};

struct AluClause {
  std::vector<AluInstr> instrs;
};

struct TexClause {
  std::vector<TexLoad> loads;
};

struct RepeatBegin {
  int count = 1; ///< uniform trip count
};
struct RepeatEnd {};

/// Divergent control flow (the Evergreen control-flow category): IF masks
/// off lanes whose predicate register is zero; ELSE inverts the branch
/// mask within the enclosing scope; ENDIF pops it. Both sides of a branch
/// execute (standard SIMD predication) with complementary lane masks.
struct IfBegin {
  Reg pred = 0; ///< lanes with R[pred] != 0 take the THEN side
};
struct Else {};
struct EndIf {};

/// A clause: one of the variants above, in program order.
using Clause = std::variant<AluClause, TexClause, Export, RepeatBegin,
                            RepeatEnd, IfBegin, Else, EndIf>;

/// A validated-on-demand kernel program.
struct KernelProgram {
  std::string name = "kernel";
  std::vector<Clause> clauses;
};

/// Validation: register indices in range, REPEAT blocks balanced with
/// positive trip counts, ALU arities consistent. Throws on violation;
/// returns the number of buffer binding slots the program references.
int validate(const KernelProgram& program);

/// Human-readable disassembly (for debugging and docs).
[[nodiscard]] std::string disassemble(const KernelProgram& program);

/// Fluent builder for programs.
class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name) { program_.name = std::move(name); }

  /// Starts (or extends) the current ALU clause.
  ProgramBuilder& alu(FpOpcode op, Reg dst, Src a,
                      Src b = Src::lit(0.0f), Src c = Src::lit(0.0f));

  /// Appends a TEX load (opens a TEX clause if needed).
  ProgramBuilder& load(Reg dst, std::uint8_t buffer,
                       AddrMode mode = AddrMode::kGlobalId, Reg addr_reg = 0,
                       std::int64_t offset = 0);

  ProgramBuilder& store(Reg src, std::uint8_t buffer,
                        AddrMode mode = AddrMode::kGlobalId, Reg addr_reg = 0,
                        std::int64_t offset = 0);

  ProgramBuilder& repeat(int count);
  ProgramBuilder& end_repeat();

  /// Divergent branch on R[pred] != 0.
  ProgramBuilder& branch_if(Reg pred);
  ProgramBuilder& branch_else();
  ProgramBuilder& end_if();

  /// Finalizes (validates) and returns the program.
  [[nodiscard]] KernelProgram build();

 private:
  void close_clauses() { alu_open_ = tex_open_ = false; }

  KernelProgram program_;
  bool alu_open_ = false;
  bool tex_open_ = false;
};

} // namespace tmemo::isa
