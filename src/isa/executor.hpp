// Executes clause-based kernel programs on the GPGPU device model.
//
// The executor plays the role of the compute unit's front end (paper §3):
// it fetches clauses in order, reads source operands ahead of the execute
// stage, issues ALU instructions into the stream cores (where memoization,
// EDS and recovery apply), and writes exports back to the bound buffers.
// One wavefront runs the whole program before the next starts, matching
// "there is only one wavefront associated with the ALU engine".
#pragma once

#include <span>
#include <vector>

#include "gpu/device.hpp"
#include "isa/program.hpp"

namespace tmemo::isa {

/// Buffer bindings: slot i -> a host float array. Buffers written by
/// EXPORT must be non-const; the executor takes mutable spans for all.
struct Bindings {
  std::vector<std::span<float>> buffers;
};

/// Runs `program` for `global_size` work-items on `device`. R0 of every
/// work-item is preloaded with its global id (as a float). Execution
/// records flow into the device's energy accumulator.
void execute_program(GpuDevice& device, const KernelProgram& program,
                     const Bindings& bindings, std::size_t global_size);

} // namespace tmemo::isa
