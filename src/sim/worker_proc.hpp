// Process- and remote-isolated campaign worker pool (docs/RESILIENCE.md,
// docs/DISTRIBUTED.md).
//
// The thread pool in campaign.cpp is the fast default, but one SIGSEGV,
// abort() or OOM-kill inside a job takes the whole campaign — and its
// journal — with it. run_process_pool trades a fork() per worker for
// containment: a supervisor (the calling thread; it stays single-threaded,
// which keeps fork() safe under TSan) forks N workers, feeds them jobs over
// a length-prefixed frame protocol (net/frame.hpp), and turns every way
// a worker can die — signal, nonzero exit, clean exit without replying,
// blown hard timeout — into a decoded JobResult::error while every other
// job completes. Crashed in-flight jobs are re-dispatched under the retry
// budget, replacement workers are forked with bounded backoff, and the
// whole campaign remains bit-identical to thread isolation (wall_ms aside)
// because nothing but the job index and attempt number crosses the pipe:
// each worker rebuilds spec/workloads from the inherited address space,
// exactly like a worker thread would.
//
// The same supervisor also runs the distributed fabric: given a
// net::Listener it accepts tmemo_workerd TCP connections, validates each
// peer's HelloFrame registration (protocol version, campaign digest, job
// count), and then multiplexes socket workers and forked pipe workers in
// the *same* poll() loop speaking the *same* dispatch/heartbeat/result
// frames. A lost connection maps into the crash taxonomy exactly like a
// dead forked worker: the in-flight job is re-dispatched at attempt+1
// under the retry budget. Remote workers rebuild spec/workloads from their
// own command line (tools/workerd/); the handshake digest catches drift.
//
// Frame grammar: net/frame.hpp. POSIX only (fork/pipe/poll/waitpid +
// sockets).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/fault.hpp"
#include "sim/campaign.hpp"

namespace tmemo {

namespace net {
class Listener; // net/transport.hpp
}

/// The non-restored slice of a campaign, handed to the process supervisor
/// by CampaignEngine::run. `spec` and `jobs` must outlive the call.
struct ProcessPoolRequest {
  const SweepSpec* spec = nullptr;
  const std::vector<CampaignJob>* jobs = nullptr;
  /// Indices into *jobs (== slots of the results vector) to execute, in
  /// dispatch order.
  std::vector<std::size_t> pending;
  /// Forked pipe workers. May be 0 when `listener` is set (remote workers
  /// carry the whole campaign); must be >= 1 otherwise.
  int workers = 1;
  /// Retry budget per job; under process/remote isolation it covers worker
  /// crashes and connection losses as well as clean in-worker failures.
  int max_attempts = 1;
  /// Hard per-job wall-clock budget in ms (0 disables): a pipe worker that
  /// outlives it is SIGKILLed, a socket worker is disconnected; either way
  /// the job is marked timed_out and never retried.
  double job_timeout_ms = 0.0;
  /// Deterministic crash injection (inject/worker_crash.hpp).
  std::optional<inject::WorkerCrashInjection> inject_crash;
  /// Workers ship a MetricsSnapshot back with every ok result.
  bool want_metrics = false;
  /// Record a supervisor lifecycle timeline (worker_spawn, worker_crash,
  /// worker_respawn, job_redispatch, job_timeout_kill, worker_connect,
  /// worker_disconnect, worker_reject, worker_drain instants with ordinal
  /// — not wall-clock — timestamps).
  bool want_timeline = false;
  /// Called on the supervising thread with every finished JobResult in
  /// completion order; null disables journaling.
  std::function<void(const JobResult&)> journal_append;
  /// Accepts remote tmemo_workerd registrations when set (not owned; must
  /// outlive the call). Null = pipe workers only.
  net::Listener* listener = nullptr;
  /// Registration gate for remote workers: a HelloFrame whose
  /// campaign_digest differs is rejected (campaign_wire_digest).
  std::uint64_t campaign_digest = 0;
  /// Liveness keepalive for socket workers (docs/DISTRIBUTED.md): idle
  /// workers are pinged every `keepalive_interval_ms` (0 disables, the
  /// low-level default — CampaignRunOptions turns it on) and must pong
  /// within `keepalive_timeout_ms`. A miss — or a dispatched job whose
  /// kJobStarted heartbeat never arrives within interval+timeout — marks
  /// the connection half-open and folds it into the disconnect taxonomy,
  /// so a black-holed peer cannot hang the campaign tail.
  int keepalive_interval_ms = 0;
  int keepalive_timeout_ms = 2000;
  /// Deterministic chaos on the supervisor's outgoing socket frames
  /// (net/fault.hpp); the channel salt is the worker slot id. Pipe workers
  /// are never injected — the chaos target is the network fabric.
  std::optional<net::NetFaultSpec> inject_net;
};

struct ProcessPoolOutcome {
  WorkerPoolStats stats;
  /// Supervisor lifecycle timeline (null unless want_timeline).
  std::shared_ptr<const telemetry::Timeline> timeline;
};

/// Runs req.pending under forked worker processes and/or remote socket
/// workers, writing each job's outcome into results[job_index] (slots not
/// listed in req.pending are left untouched). Throws std::invalid_argument
/// on a malformed request and std::runtime_error when the pool itself
/// cannot be stood up (fork or pipe failure on the very first worker).
ProcessPoolOutcome run_process_pool(const ProcessPoolRequest& req,
                                    std::vector<JobResult>& results);

/// One dispatch = the job's whole remaining retry budget for *clean*
/// failures, mirroring the thread pool's in-worker retry loop so the
/// attempts column is bit-identical across isolation modes. Crashes are the
/// supervisor's share of the budget: a redispatch resumes at attempt+1.
/// Shared by the forked pipe worker (worker_proc.cpp) and the remote
/// tmemo_workerd job loop (net/workerd.cpp). `workloads` is the worker's
/// private workload set; a non-empty `setup_error` marks the environment
/// broken (recorded, never retried). When `inject_crash` applies to
/// (job_index, attempt) the *process* dies by the injected signal — callers
/// are worker processes whose death the supervisor decodes.
[[nodiscard]] JobResult run_dispatched_job(
    const SweepSpec& spec, const std::vector<CampaignJob>& jobs,
    std::size_t job_index, int start_attempt, int max_attempts,
    const std::optional<inject::WorkerCrashInjection>& inject_crash,
    std::vector<std::unique_ptr<Workload>>& workloads,
    const std::string& setup_error);

} // namespace tmemo
