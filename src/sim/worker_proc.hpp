// Process-isolated campaign worker pool (docs/RESILIENCE.md).
//
// The thread pool in campaign.cpp is the fast default, but one SIGSEGV,
// abort() or OOM-kill inside a job takes the whole campaign — and its
// journal — with it. run_process_pool trades a fork() per worker for
// containment: a supervisor (the calling thread; it stays single-threaded,
// which keeps fork() safe under TSan) forks N workers, feeds them jobs over
// a length-prefixed pipe protocol (common/pod_io.hpp), and turns every way
// a worker can die — signal, nonzero exit, clean exit without replying,
// blown hard timeout — into a decoded JobResult::error while every other
// job completes. Crashed in-flight jobs are re-dispatched under the retry
// budget, replacement workers are forked with bounded backoff, and the
// whole campaign remains bit-identical to thread isolation (wall_ms aside)
// because nothing but the job index and attempt number crosses the pipe:
// each worker rebuilds spec/workloads from the inherited address space,
// exactly like a worker thread would.
//
// Pipe protocol (all frames are u32 payload-length + payload, host order):
//   supervisor -> worker : { u64 job_index, i32 attempt }
//   worker -> supervisor : { u8 kJobStarted, u64 job_index }   heartbeat
//   worker -> supervisor : { u8 kJobDone, u64 job_index,
//                            sized_string journal_csv_row,
//                            u8 has_metrics, [metrics snapshot] }
// The result payload reuses the journal CSV row (serialize_job_result /
// parse_job_result), which is round-trippable by construction; metrics
// snapshots are uint64-only and cross the pipe exactly. Timelines do not
// cross the pipe — a process-isolated timeline campaign records the
// supervisor's own lifecycle events instead.
//
// POSIX only (fork/pipe/poll/waitpid).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "sim/campaign.hpp"

namespace tmemo {

/// The non-restored slice of a campaign, handed to the process supervisor
/// by CampaignEngine::run. `spec` and `jobs` must outlive the call.
struct ProcessPoolRequest {
  const SweepSpec* spec = nullptr;
  const std::vector<CampaignJob>* jobs = nullptr;
  /// Indices into *jobs (== slots of the results vector) to execute, in
  /// dispatch order.
  std::vector<std::size_t> pending;
  int workers = 1;
  /// Retry budget per job; under process isolation it covers worker
  /// crashes as well as clean in-worker failures.
  int max_attempts = 1;
  /// Hard per-job wall-clock budget in ms (0 disables): a worker that
  /// outlives it is SIGKILLed and its job marked timed_out, never retried.
  double job_timeout_ms = 0.0;
  /// Deterministic crash injection (inject/worker_crash.hpp).
  std::optional<inject::WorkerCrashInjection> inject_crash;
  /// Workers ship a MetricsSnapshot back with every ok result.
  bool want_metrics = false;
  /// Record a supervisor lifecycle timeline (worker_spawn, worker_crash,
  /// worker_respawn, job_redispatch, job_timeout_kill instants with
  /// ordinal — not wall-clock — timestamps).
  bool want_timeline = false;
  /// Called on the supervising thread with every finished JobResult in
  /// completion order; null disables journaling.
  std::function<void(const JobResult&)> journal_append;
};

struct ProcessPoolOutcome {
  WorkerPoolStats stats;
  /// Supervisor lifecycle timeline (null unless want_timeline).
  std::shared_ptr<const telemetry::Timeline> timeline;
};

/// Runs req.pending under forked worker processes, writing each job's
/// outcome into results[job_index] (slots not listed in req.pending are
/// left untouched). Throws std::invalid_argument on a malformed request
/// and std::runtime_error when the pool itself cannot be stood up (fork or
/// pipe failure on the very first worker).
ProcessPoolOutcome run_process_pool(const ProcessPoolRequest& req,
                                    std::vector<JobResult>& results);

} // namespace tmemo
