// Sharded-journal merge (docs/DISTRIBUTED.md).
//
// A distributed campaign produces one journal per writer: the supervisor's
// campaign journal plus one local shard per tmemo_workerd. Every shard is
// an ordinary journal-v2 file — same header, same fingerprint, same record
// format — so any one of them resumes the campaign partially. The merge
// folds them into a single journal that resumes it fully.
//
// Semantics:
//  - All shards must carry the same campaign fingerprint; a mismatch is a
//    hard error naming both files (merging two different campaigns would
//    poison a future --resume silently).
//  - Duplicate job indices are collapsed: an ok entry always beats a failed
//    one (a job that crashed one worker and succeeded on redispatch appears
//    in two shards); among entries of equal ok-ness the one from the
//    later-listed shard wins.
//  - A zero-byte shard (a workerd killed before its first append) is
//    skipped and counted, not an error.
//  - Torn trailing records (a workerd killed mid-append) are skipped and
//    counted per the usual journal-v2 tolerance.
//  - A checkpointed shard (`<shard>.checkpoint` beside it, see
//    docs/RESILIENCE.md) contributes checkpoint + tail, exactly the state
//    a --resume of that shard would see.
//  - Output records are ordered by job index, so the merged journal is
//    deterministic regardless of shard completion order.
//  - The output is written atomically (temp → fsync → rename) and sealed
//    with a record-count end sentinel, so a truncated copy of the merge
//    is rejected on read instead of resuming a silently smaller campaign.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/campaign.hpp"

namespace tmemo {

/// What the merge did — the CLI prints this; tests assert on it.
struct JournalMergeReport {
  std::string fingerprint;           ///< shared fingerprint of the shards
  std::size_t shards_read = 0;       ///< shards parsed (empty ones excluded)
  std::size_t empty_shards = 0;      ///< zero-byte shards skipped
  std::size_t entries_in = 0;        ///< parsed records across all shards
  std::size_t entries_out = 0;       ///< records in the merged journal
  std::size_t duplicates_dropped = 0; ///< entries_in - entries_out
  std::size_t malformed_rows = 0;    ///< torn/corrupt records skipped
};

/// Behavior knobs for merge_campaign_journals.
struct JournalMergeOptions {
  /// Overwrite an existing non-empty output file. Without it the merge
  /// refuses to clobber (a merged journal is a finished artifact; losing
  /// one to a retyped command should take explicit intent).
  bool force = false;
  /// Deterministic filesystem fault injection on the output commit
  /// (--inject-fs; io/fs_fault.hpp grammar).
  std::optional<io::FsFaultSpec> inject_fs;
};

/// Merges journal-v2 shards into `output_path`, written atomically and
/// sealed. Throws std::runtime_error on an unreadable shard, a shard that
/// is not a journal-v2 file, a fingerprint mismatch between shards (the
/// diagnostic names both files), an existing non-empty output without
/// `force`, or when every shard is empty (there is no fingerprint to stamp
/// on the output); io::IoError when the output cannot be committed.
JournalMergeReport merge_campaign_journals(
    const std::vector<std::string>& shard_paths,
    const std::string& output_path,
    const JournalMergeOptions& options = {});

} // namespace tmemo
