#include "sim/worker_proc.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/pod_io.hpp"
#include "common/require.hpp"
#include "telemetry/collector.hpp"

namespace tmemo {

namespace {

// ---------------------------------------------------------------------------
// Protocol constants.

constexpr std::uint8_t kJobStarted = 1; ///< heartbeat: worker began the job
constexpr std::uint8_t kJobDone = 2;    ///< result frame

/// Frame-size ceiling: a corrupt length prefix (a worker dying mid-write)
/// must not drive a huge allocation in the supervisor.
constexpr std::uint32_t kMaxFrameBytes = 256u << 20;

// Fixed-layout frame payloads. These cross the pipe whole through
// write_pod/read_pod, so the struct layout *is* the wire format: fixed-width
// fields only and no padding bytes anywhere (lint rule R9 checks both
// against the computed layout, and the static_asserts pin them at compile
// time).

/// Supervisor -> worker: one job dispatch.
struct JobDispatchFrame {
  std::uint64_t job = 0;            ///< index into the campaign's job list
  std::int32_t start_attempt = 1;   ///< resume the retry loop here
  std::int32_t reserved = 0;        ///< explicit, so no byte is uninitialized
};
static_assert(std::is_trivially_copyable_v<JobDispatchFrame> &&
                  sizeof(JobDispatchFrame) == 16,
              "pod_io wire layout");

/// Worker -> supervisor: fixed prefix of every event frame (heartbeat and
/// result frames share it; the result frame appends its variable payload).
struct EventFrameHeader {
  std::uint8_t type = 0;            ///< kJobStarted / kJobDone
  std::uint8_t reserved[7] = {};    ///< explicit, so no byte is uninitialized
  std::uint64_t job = 0;            ///< job index the event refers to
};
static_assert(std::is_trivially_copyable_v<EventFrameHeader> &&
                  sizeof(EventFrameHeader) == 16,
              "pod_io wire layout");

/// Backoff ceiling between a crash and the replacement fork.
constexpr int kMaxRespawnBackoffMs = 200;

// Wall-clock reads are confined to wall_now() (lint rule R1): supervision
// deadlines and wall_ms reporting only — never simulation results.
std::chrono::steady_clock::time_point wall_now() {
  return std::chrono::steady_clock::now();
}

double wall_elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(wall_now() - since)
      .count();
}

// ---------------------------------------------------------------------------
// EINTR-safe fd I/O (both sides of the pipe).

bool write_all(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

/// Writes one length-prefixed frame. False on any error (EPIPE when the
/// peer died; the caller decides what that means).
bool write_frame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  const FrameHeader hdr{static_cast<std::uint32_t>(payload.size())};
  char buf[sizeof hdr];
  std::memcpy(buf, &hdr, sizeof hdr);
  return write_all(fd, buf, sizeof buf) &&
         write_all(fd, payload.data(), payload.size());
}

/// Blocking exact read (worker side). False on EOF or error.
bool read_exact(int fd, char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = ::read(fd, data + off, n - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;
    off += static_cast<std::size_t>(r);
  }
  return true;
}

bool read_frame(int fd, std::string& payload) {
  char buf[sizeof(FrameHeader)];
  if (!read_exact(fd, buf, sizeof buf)) return false;
  FrameHeader hdr;
  std::memcpy(&hdr, buf, sizeof hdr);
  if (hdr.len > kMaxFrameBytes) return false;
  payload.assign(hdr.len, '\0');
  return hdr.len == 0 || read_exact(fd, payload.data(), hdr.len);
}

// ---------------------------------------------------------------------------
// MetricsSnapshot over the pipe. Every instrument value is uint64
// (telemetry/metrics.hpp), so the snapshot crosses the process boundary
// exactly and the campaign fold stays bit-identical to thread isolation.

void pack_metrics(std::ostream& os, const telemetry::MetricsSnapshot& s) {
  write_pod(os, static_cast<std::uint64_t>(s.counters.size()));
  for (const auto& c : s.counters) {
    write_sized_string(os, c.name);
    write_pod(os, c.value);
  }
  write_pod(os, static_cast<std::uint64_t>(s.gauges.size()));
  for (const auto& g : s.gauges) {
    write_sized_string(os, g.name);
    write_pod(os, g.value);
  }
  write_pod(os, static_cast<std::uint64_t>(s.histograms.size()));
  for (const auto& h : s.histograms) {
    write_sized_string(os, h.name);
    write_pod(os, static_cast<std::uint8_t>(h.spec.scale));
    write_pod(os, h.spec.lo);
    write_pod(os, h.spec.hi);
    write_pod(os, h.spec.linear_buckets);
    write_pod(os, static_cast<std::uint64_t>(h.buckets.size()));
    for (const std::uint64_t b : h.buckets) write_pod(os, b);
    write_pod(os, h.count);
    write_pod(os, h.sum);
    write_pod(os, h.min);
    write_pod(os, h.max);
  }
}

bool unpack_metrics(std::istream& is, telemetry::MetricsSnapshot& s) {
  constexpr std::uint64_t kMaxEntries = 1u << 20;
  std::uint64_t n = 0;
  read_pod(is, n);
  if (!is.good() || n > kMaxEntries) return false;
  s.counters.resize(static_cast<std::size_t>(n));
  for (auto& c : s.counters) {
    if (!read_sized_string(is, c.name)) return false;
    read_pod(is, c.value);
  }
  read_pod(is, n);
  if (!is.good() || n > kMaxEntries) return false;
  s.gauges.resize(static_cast<std::size_t>(n));
  for (auto& g : s.gauges) {
    if (!read_sized_string(is, g.name)) return false;
    read_pod(is, g.value);
  }
  read_pod(is, n);
  if (!is.good() || n > kMaxEntries) return false;
  s.histograms.resize(static_cast<std::size_t>(n));
  for (auto& h : s.histograms) {
    if (!read_sized_string(is, h.name)) return false;
    std::uint8_t scale = 0;
    read_pod(is, scale);
    h.spec.scale = static_cast<telemetry::HistogramSpec::Scale>(scale);
    read_pod(is, h.spec.lo);
    read_pod(is, h.spec.hi);
    read_pod(is, h.spec.linear_buckets);
    std::uint64_t buckets = 0;
    read_pod(is, buckets);
    if (!is.good() || buckets > kMaxEntries) return false;
    h.buckets.resize(static_cast<std::size_t>(buckets));
    for (std::uint64_t& b : h.buckets) read_pod(is, b);
    read_pod(is, h.count);
    read_pod(is, h.sum);
    read_pod(is, h.min);
    read_pod(is, h.max);
  }
  return is.good();
}

// ---------------------------------------------------------------------------
// Worker child. Forked from the supervisor, so it inherits spec, jobs and
// the workload factory; only (job index, attempt) ever crosses the pipe.
// Every exit path is _exit() or a raised signal — a forked gtest/ASan child
// must never run the parent's atexit machinery.

/// Dies the way the injection plan asks. Signal handlers installed by the
/// host (sanitizers, gtest death tests) are reset first so the death is
/// reported to waitpid as a real signal, not converted to a clean exit.
[[noreturn]] void crash_now(int sig) {
  if (sig == inject::kWorkerExitsCleanly) _exit(0);
  std::signal(sig, SIG_DFL);
  ::raise(sig);
  _exit(111); // only reachable if the signal was blocked
}

/// One dispatch = the job's whole remaining retry budget for *clean*
/// failures, mirroring the thread pool's in-worker retry loop so the
/// attempts column is bit-identical across isolation modes. Crashes are the
/// supervisor's share of the budget: a redispatch resumes at attempt+1.
JobResult run_job_attempts(const ProcessPoolRequest& req, std::size_t ji,
                           int start_attempt,
                           std::vector<std::unique_ptr<Workload>>& workloads,
                           const std::string& setup_error) {
  const CampaignJob& job = (*req.jobs)[ji];
  JobResult out;
  out.job = job;
  const auto job_start = wall_now();
  if (!setup_error.empty()) {
    // Setup failures are environmental, not per-job: never retried.
    out.attempts = start_attempt;
    out.error = setup_error;
  } else if (job.workload_index >= workloads.size()) {
    out.attempts = start_attempt;
    out.error = "workload factory returned fewer workloads than expected";
  } else {
    for (int attempt = start_attempt;; ++attempt) {
      if (req.inject_crash && req.inject_crash->applies(ji, attempt)) {
        crash_now(req.inject_crash->signal);
      }
      out.attempts = attempt;
      out.ok = false;
      out.error.clear();
      try {
        const ExperimentConfig& config =
            req.spec->variants.empty()
                ? ExperimentConfig{}
                : req.spec->variants[job.variant_index].config;
        const Simulation sim(config);
        out.report = sim.run(*workloads[job.workload_index], job.spec);
        out.ok = true;
      } catch (const std::exception& e) {
        out.error = e.what();
      } catch (...) {
        out.error = "unknown exception";
      }
      if (out.ok || attempt >= req.max_attempts) break;
    }
  }
  out.wall_ms = wall_elapsed_ms(job_start);
  return out;
}

[[noreturn]] void worker_main(const ProcessPoolRequest& req, int job_fd,
                              int res_fd) {
  // Private workload set, built once — exactly like a worker thread.
  std::vector<std::unique_ptr<Workload>> workloads;
  std::string setup_error;
  try {
    workloads = req.spec->factory ? req.spec->factory()
                                  : make_all_workloads(req.spec->scale);
  } catch (const std::exception& e) {
    setup_error = std::string("workload setup failed: ") + e.what();
  } catch (...) {
    setup_error = "workload setup failed: unknown exception";
  }

  std::string payload;
  for (;;) {
    if (!read_frame(job_fd, payload)) _exit(0); // EOF: campaign is done
    std::istringstream in(payload);
    JobDispatchFrame dispatch;
    read_pod(in, dispatch);
    if (!in.good() || dispatch.job >= req.jobs->size() ||
        dispatch.start_attempt < 1) {
      _exit(3); // protocol violation: let the supervisor decode exit 3
    }

    // Heartbeat before the work: tells the supervisor which job this
    // worker now owns and arms the hard timeout from the job's true start.
    {
      std::ostringstream hb;
      const EventFrameHeader started{kJobStarted, {}, dispatch.job};
      write_pod(hb, started);
      if (!write_frame(res_fd, hb.str())) _exit(3);
    }

    const JobResult out =
        run_job_attempts(req, static_cast<std::size_t>(dispatch.job),
                         static_cast<int>(dispatch.start_attempt), workloads,
                         setup_error);

    std::ostringstream done;
    const EventFrameHeader done_hdr{kJobDone, {}, dispatch.job};
    write_pod(done, done_hdr);
    write_sized_string(done, serialize_job_result(out));
    const std::uint8_t has_metrics = req.want_metrics && out.ok ? 1 : 0;
    write_pod(done, has_metrics);
    if (has_metrics != 0) pack_metrics(done, out.report.metrics);
    if (!write_frame(res_fd, done.str())) _exit(3);
  }
}

// ---------------------------------------------------------------------------
// Supervisor.

/// A queued dispatch: which job, and which attempt number the worker should
/// resume its retry loop at (advanced past the attempts a crash consumed).
struct QueueItem {
  std::size_t job = 0;
  int attempt = 1;
};

struct WorkerSlot {
  std::uint32_t id = 0; ///< stable slot number (timeline pid)
  pid_t pid = -1;
  int job_fd = -1; ///< supervisor writes job frames here
  int res_fd = -1; ///< supervisor reads response frames here (nonblocking)
  std::string buf; ///< unparsed response bytes
  bool live = false;
  bool busy = false;
  std::size_t job = 0;
  int attempt = 0;
  bool heartbeat_seen = false;
  bool timeout_killed = false;
  bool deadline_armed = false;
  std::chrono::steady_clock::time_point deadline{};
  std::chrono::steady_clock::time_point job_start{};
};

/// Restores the previous SIGPIPE disposition on scope exit. The supervisor
/// ignores SIGPIPE so a dispatch to a just-died worker surfaces as EPIPE
/// from write() instead of killing the campaign.
class SigpipeGuard {
 public:
  SigpipeGuard() {
    struct sigaction ign = {};
    ign.sa_handler = SIG_IGN;
    installed_ = ::sigaction(SIGPIPE, &ign, &saved_) == 0;
  }
  ~SigpipeGuard() {
    if (installed_) ::sigaction(SIGPIPE, &saved_, nullptr);
  }
  SigpipeGuard(const SigpipeGuard&) = delete;
  SigpipeGuard& operator=(const SigpipeGuard&) = delete;

 private:
  struct sigaction saved_ = {};
  bool installed_ = false;
};

class ProcessSupervisor {
 public:
  ProcessSupervisor(const ProcessPoolRequest& req,
                    std::vector<JobResult>& results)
      : req_(req), results_(results),
        slots_(static_cast<std::size_t>(std::max(1, req.workers))) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      slots_[i].id = static_cast<std::uint32_t>(i);
    }
    if (req_.want_timeline) {
      timeline_ = std::make_shared<telemetry::Timeline>();
    }
  }

  ProcessPoolOutcome run() {
    const SigpipeGuard sigpipe;
    for (const std::size_t ji : req_.pending) queue_.push_back({ji, 1});

    while (!queue_.empty() || busy_count() > 0) {
      spawn_needed();
      dispatch_idle();
      if (queue_.empty() && busy_count() == 0) break;
      wait_and_process();
    }
    shutdown();

    ProcessPoolOutcome out;
    out.stats = stats_;
    if (timeline_) {
      for (const WorkerSlot& s : slots_) {
        timeline_->set_process_name(s.id,
                                    "worker " + std::to_string(s.id));
      }
      out.timeline = std::move(timeline_);
    }
    return out;
  }

 private:
  [[nodiscard]] std::size_t busy_count() const {
    std::size_t n = 0;
    for (const WorkerSlot& s : slots_) n += s.live && s.busy ? 1 : 0;
    return n;
  }

  [[nodiscard]] std::size_t live_count() const {
    std::size_t n = 0;
    for (const WorkerSlot& s : slots_) n += s.live ? 1 : 0;
    return n;
  }

  void note(const char* name, const WorkerSlot& s,
            std::vector<std::pair<std::string, std::uint64_t>> args) {
    if (!timeline_) return;
    telemetry::record_supervision_event(*timeline_, name, s.id, seq_++,
                                        std::move(args));
  }

  /// Keeps live workers matched to remaining work; a fork after the
  /// initial wave is by definition a respawn and pays the bounded backoff
  /// the crash streak has earned.
  void spawn_needed() {
    const std::size_t want = std::min(
        slots_.size(), queue_.size() + busy_count());
    while (live_count() < want) {
      WorkerSlot* slot = nullptr;
      for (WorkerSlot& s : slots_) {
        if (!s.live) {
          slot = &s;
          break;
        }
      }
      if (slot == nullptr) return;
      if (initial_wave_done_ && crash_streak_ > 0) {
        const int shift = std::min(crash_streak_ - 1, 6);
        const int backoff_ms =
            std::min(5 * (1 << shift), kMaxRespawnBackoffMs);
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      }
      if (!spawn(*slot)) {
        ++spawn_failures_;
        TM_REQUIRE(live_count() > 0 || spawn_failures_ < 100,
                   "campaign worker pool: cannot fork any worker");
        return; // retry on the next loop iteration
      }
      spawn_failures_ = 0;
    }
    initial_wave_done_ = true;
  }

  bool spawn(WorkerSlot& slot) {
    int job_pipe[2] = {-1, -1};
    int res_pipe[2] = {-1, -1};
    if (::pipe(job_pipe) != 0) return false;
    if (::pipe(res_pipe) != 0) {
      ::close(job_pipe[0]);
      ::close(job_pipe[1]);
      return false;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(job_pipe[0]);
      ::close(job_pipe[1]);
      ::close(res_pipe[0]);
      ::close(res_pipe[1]);
      return false;
    }
    if (pid == 0) {
      // Child: drop the supervisor's ends and every sibling's fds, or a
      // crashed sibling's pipe EOF would be held open by this process.
      ::close(job_pipe[1]);
      ::close(res_pipe[0]);
      for (const WorkerSlot& other : slots_) {
        if (other.live) {
          ::close(other.job_fd);
          ::close(other.res_fd);
        }
      }
      worker_main(req_, job_pipe[0], res_pipe[1]); // never returns
    }
    ::close(job_pipe[0]);
    ::close(res_pipe[1]);
    // The nonblocking flag is load-bearing: drain() spins on read() until
    // EAGAIN, so a silently-blocking pipe would hang the whole campaign.
    const int flags = ::fcntl(res_pipe[0], F_GETFL, 0);
    const int set_rc =
        flags == -1 ? -1 : ::fcntl(res_pipe[0], F_SETFL, flags | O_NONBLOCK);
    TM_REQUIRE(set_rc != -1,
               "campaign worker pool: cannot set O_NONBLOCK on result pipe");
    slot.pid = pid;
    slot.job_fd = job_pipe[1];
    slot.res_fd = res_pipe[0];
    slot.buf.clear();
    slot.live = true;
    slot.busy = false;
    slot.heartbeat_seen = false;
    slot.timeout_killed = false;
    slot.deadline_armed = false;
    ++stats_.spawns;
    if (initial_wave_done_) {
      ++stats_.respawns;
      note("worker_respawn", slot,
           {{"pid", static_cast<std::uint64_t>(pid)}});
    } else {
      note("worker_spawn", slot,
           {{"pid", static_cast<std::uint64_t>(pid)}});
    }
    return true;
  }

  void dispatch_idle() {
    for (WorkerSlot& s : slots_) {
      if (queue_.empty()) return;
      if (!s.live || s.busy) continue;
      const QueueItem item = queue_.front();
      queue_.pop_front();
      std::ostringstream msg;
      const JobDispatchFrame dispatch{
          static_cast<std::uint64_t>(item.job),
          static_cast<std::int32_t>(item.attempt), 0};
      write_pod(msg, dispatch);
      s.busy = true;
      s.job = item.job;
      s.attempt = item.attempt;
      s.heartbeat_seen = false;
      s.timeout_killed = false;
      // The hard-timeout deadline arms at the heartbeat, not here: a fresh
      // worker is still building its workload set when the first job frame
      // lands, and setup must not eat the job's budget.
      s.deadline_armed = false;
      s.job_start = wall_now();
      if (!write_frame(s.job_fd, msg.str())) {
        // The worker died between jobs (EPIPE). Put the job back and reap.
        s.busy = false;
        queue_.push_front(item);
        reap(s);
      }
    }
  }

  void wait_and_process() {
    std::vector<pollfd> fds;
    std::vector<std::size_t> fd_slot;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (!slots_[i].live) continue;
      fds.push_back(pollfd{slots_[i].res_fd, POLLIN, 0});
      fd_slot.push_back(i);
    }
    if (fds.empty()) return;

    int timeout_ms = -1;
    if (req_.job_timeout_ms > 0.0) {
      const auto now = wall_now();
      for (const WorkerSlot& s : slots_) {
        if (!s.live || !s.busy || !s.deadline_armed || s.timeout_killed) {
          continue;
        }
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                s.deadline - now)
                .count();
        const int ms =
            remaining <= 0 ? 0
                           : static_cast<int>(std::min<long long>(
                                 static_cast<long long>(remaining) + 1,
                                 60'000));
        timeout_ms = timeout_ms < 0 ? ms : std::min(timeout_ms, ms);
      }
    }

    const int ready =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
    if (ready < 0 && errno != EINTR) {
      TM_REQUIRE(false, "campaign worker pool: poll() failed");
    }

    for (std::size_t k = 0; k < fds.size(); ++k) {
      WorkerSlot& s = slots_[fd_slot[k]];
      if (!s.live) continue; // reaped earlier in this pass
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      drain(s);
    }
    enforce_deadlines();
  }

  /// Reads everything available from a worker, parses complete frames, and
  /// reaps the worker on EOF.
  void drain(WorkerSlot& s) {
    bool eof = false;
    char tmp[65536];
    for (;;) {
      const ssize_t r = ::read(s.res_fd, tmp, sizeof tmp);
      if (r > 0) {
        s.buf.append(tmp, static_cast<std::size_t>(r));
        continue;
      }
      if (r == 0) {
        eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      eof = true; // read error: treat like a vanished worker
      break;
    }
    while (s.live) {
      if (s.buf.size() < sizeof(FrameHeader)) break;
      FrameHeader hdr;
      std::memcpy(&hdr, s.buf.data(), sizeof hdr);
      if (hdr.len > kMaxFrameBytes) {
        protocol_error(s);
        return;
      }
      if (s.buf.size() < sizeof hdr + hdr.len) break;
      const std::string payload = s.buf.substr(sizeof hdr, hdr.len);
      s.buf.erase(0, sizeof hdr + hdr.len);
      handle_frame(s, payload);
    }
    if (eof && s.live) reap(s);
  }

  void handle_frame(WorkerSlot& s, const std::string& payload) {
    std::istringstream in(payload);
    EventFrameHeader hdr;
    read_pod(in, hdr);
    if (!in.good() || !s.busy ||
        hdr.job != static_cast<std::uint64_t>(s.job)) {
      protocol_error(s);
      return;
    }
    if (hdr.type == kJobStarted) {
      s.heartbeat_seen = true;
      if (req_.job_timeout_ms > 0.0 && !s.timeout_killed) {
        // Re-arm from the job's true start: worker setup (workload
        // construction on first dispatch) does not eat the job's budget.
        s.deadline_armed = true;
        s.deadline = wall_now() +
                     std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             req_.job_timeout_ms));
      }
      return;
    }
    if (hdr.type != kJobDone) {
      protocol_error(s);
      return;
    }
    if (s.timeout_killed) {
      // The kill already won: a result that raced the SIGKILL through the
      // pipe is discarded, exactly like the thread pool discards a run
      // that finished over budget. The reap will record the timeout.
      return;
    }

    std::string row;
    std::uint8_t has_metrics = 0;
    JobResult res;
    bool parsed = read_sized_string(in, row);
    if (parsed) {
      std::istringstream row_in(row);
      std::vector<std::string> fields;
      parsed = read_csv_record(row_in, fields) &&
               parse_job_result(fields, res) && res.job.index == s.job;
    }
    if (parsed) {
      read_pod(in, has_metrics);
      parsed = in.good();
    }
    if (parsed && has_metrics != 0) {
      parsed = unpack_metrics(in, res.report.metrics);
    }
    if (!parsed) {
      protocol_error(s);
      return;
    }
    res.job = (*req_.jobs)[s.job];
    if (req_.job_timeout_ms > 0.0 && res.wall_ms > req_.job_timeout_ms) {
      // Finished but over budget: classify like the thread pool's
      // cooperative check so both isolation modes agree on the verdict.
      res.ok = false;
      res.timed_out = true;
      res.report = KernelRunReport{};
      res.error = "job exceeded " + format_ms(req_.job_timeout_ms) +
                  " ms timeout";
    }
    finalize(res);
    s.busy = false;
    s.deadline_armed = false;
    crash_streak_ = 0;
  }

  /// A worker that breaks the framing contract is as good as crashed: kill
  /// it and let the reap path classify the death.
  void protocol_error(WorkerSlot& s) {
    ::kill(s.pid, SIGKILL);
    reap(s);
  }

  /// Handles a worker's death: decode the wait status, then either record
  /// the in-flight job's failure or re-dispatch it under the retry budget.
  void reap(WorkerSlot& s) {
    ::close(s.job_fd);
    ::close(s.res_fd);
    s.job_fd = s.res_fd = -1;
    s.live = false;
    s.buf.clear();
    int status = 0;
    while (::waitpid(s.pid, &status, 0) < 0 && errno == EINTR) {
    }

    if (!s.busy) {
      // Died between jobs: no job harmed, but the slot still needs a
      // replacement and the event is still a crash.
      ++stats_.crashes;
      ++crash_streak_;
      note("worker_crash", s, {{"status", pack_status(status)}});
      return;
    }
    s.busy = false;
    s.deadline_armed = false;

    JobResult res;
    res.job = (*req_.jobs)[s.job];
    res.ok = false;
    res.attempts = s.attempt;
    res.wall_ms = wall_elapsed_ms(s.job_start);

    if (s.timeout_killed) {
      res.timed_out = true;
      res.error = "job exceeded " + format_ms(req_.job_timeout_ms) +
                  " ms hard timeout (worker SIGKILLed)";
      finalize(res);
      return;
    }

    ++stats_.crashes;
    ++crash_streak_;
    res.error = decode_status(status, s.heartbeat_seen);
    note("worker_crash", s,
         {{"job", static_cast<std::uint64_t>(s.job)},
          {"attempt", static_cast<std::uint64_t>(s.attempt)},
          {"status", pack_status(status)}});
    if (s.attempt < req_.max_attempts) {
      // The crash consumed one attempt; the redispatch resumes after it.
      queue_.push_front({s.job, s.attempt + 1});
      ++stats_.redispatches;
      note("job_redispatch", s,
           {{"job", static_cast<std::uint64_t>(s.job)},
            {"attempt", static_cast<std::uint64_t>(s.attempt + 1)}});
    } else {
      finalize(res);
    }
  }

  void enforce_deadlines() {
    if (req_.job_timeout_ms <= 0.0) return;
    const auto now = wall_now();
    for (WorkerSlot& s : slots_) {
      if (!s.live || !s.busy || !s.deadline_armed || s.timeout_killed) {
        continue;
      }
      if (now < s.deadline) continue;
      s.timeout_killed = true;
      ++stats_.timeout_kills;
      ::kill(s.pid, SIGKILL);
      note("job_timeout_kill", s,
           {{"job", static_cast<std::uint64_t>(s.job)},
            {"attempt", static_cast<std::uint64_t>(s.attempt)}});
      // EOF on the result pipe follows; reap() records the timeout.
    }
  }

  void finalize(const JobResult& res) {
    results_[res.job.index] = res;
    if (req_.journal_append) req_.journal_append(results_[res.job.index]);
  }

  void shutdown() {
    // Closing the job pipe is the protocol's shutdown signal: idle workers
    // read EOF and _exit(0).
    for (WorkerSlot& s : slots_) {
      if (!s.live) continue;
      ::close(s.job_fd);
      ::close(s.res_fd);
      s.job_fd = s.res_fd = -1;
      int status = 0;
      while (::waitpid(s.pid, &status, 0) < 0 && errno == EINTR) {
      }
      s.live = false;
    }
  }

  [[nodiscard]] static std::string format_ms(double ms) {
    std::ostringstream os;
    os << ms;
    return os.str();
  }

  /// Wait status folded into one u64 timeline arg: signal number when
  /// signaled, 1000 + exit code when exited.
  [[nodiscard]] static std::uint64_t pack_status(int status) {
    if (WIFSIGNALED(status)) {
      return static_cast<std::uint64_t>(WTERMSIG(status));
    }
    if (WIFEXITED(status)) {
      return 1000u + static_cast<std::uint64_t>(WEXITSTATUS(status));
    }
    return static_cast<std::uint64_t>(status);
  }

  [[nodiscard]] static std::string decode_status(int status,
                                                 bool heartbeat_seen) {
    std::string s;
    if (WIFSIGNALED(status)) {
      const int sig = WTERMSIG(status);
      s = "worker crashed: " + inject::signal_name(sig);
      if (sig == SIGKILL) {
        s += " (killed externally; possibly the OOM killer)";
      }
    } else if (WIFEXITED(status)) {
      const int code = WEXITSTATUS(status);
      if (code == 0) {
        s = "worker exited cleanly without replying (lost result)";
      } else {
        s = "worker exited with status " + std::to_string(code);
      }
    } else {
      s = "worker vanished (unrecognized wait status " +
          std::to_string(status) + ")";
    }
    if (!heartbeat_seen) s += " before acknowledging the job";
    return s;
  }

  const ProcessPoolRequest& req_;
  std::vector<JobResult>& results_;
  std::vector<WorkerSlot> slots_;
  std::deque<QueueItem> queue_;
  WorkerPoolStats stats_;
  std::shared_ptr<telemetry::Timeline> timeline_;
  std::uint64_t seq_ = 0;   ///< ordinal timeline timestamp
  int crash_streak_ = 0;    ///< consecutive crashes since the last result
  int spawn_failures_ = 0;  ///< consecutive failed fork/pipe attempts
  bool initial_wave_done_ = false;
};

} // namespace

ProcessPoolOutcome run_process_pool(const ProcessPoolRequest& req,
                                    std::vector<JobResult>& results) {
  TM_REQUIRE(req.spec != nullptr && req.jobs != nullptr,
             "process pool: spec and jobs are required");
  TM_REQUIRE(req.max_attempts >= 1,
             "process pool: max_attempts must be >= 1");
  TM_REQUIRE(results.size() == req.jobs->size(),
             "process pool: results must be pre-sized to the job list");
  for (const std::size_t ji : req.pending) {
    TM_REQUIRE(ji < results.size(), "process pool: pending index out of range");
  }
  ProcessSupervisor supervisor(req, results);
  return supervisor.run();
}

} // namespace tmemo
