#include "sim/worker_proc.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/pod_io.hpp"
#include "common/require.hpp"
#include "net/frame.hpp"
#include "net/transport.hpp"
#include "telemetry/collector.hpp"

namespace tmemo {

namespace {

/// Backoff ceiling between a crash and the replacement fork.
constexpr int kMaxRespawnBackoffMs = 200;

/// A connecting peer has this long to deliver its HelloFrame before the
/// half-open connection is dropped (a port scanner or wedged peer must not
/// occupy the supervisor forever).
constexpr int kHandshakeTimeoutMs = 5000;

// Wall-clock reads are confined to wall_now() (lint rule R1): supervision
// deadlines and wall_ms reporting only — never simulation results.
std::chrono::steady_clock::time_point wall_now() {
  return std::chrono::steady_clock::now();
}

double wall_elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(wall_now() - since)
      .count();
}

// ---------------------------------------------------------------------------
// Worker child. Forked from the supervisor, so it inherits spec, jobs and
// the workload factory; only (job index, attempt) ever crosses the pipe.
// Every exit path is _exit() or a raised signal — a forked gtest/ASan child
// must never run the parent's atexit machinery.

/// Dies the way the injection plan asks. Signal handlers installed by the
/// host (sanitizers, gtest death tests) are reset first so the death is
/// reported to waitpid as a real signal, not converted to a clean exit.
[[noreturn]] void crash_now(int sig) {
  if (sig == inject::kWorkerExitsCleanly) _exit(0);
  std::signal(sig, SIG_DFL);
  ::raise(sig);
  _exit(111); // only reachable if the signal was blocked
}

[[noreturn]] void worker_main(const ProcessPoolRequest& req, int job_fd,
                              int res_fd) {
  // Private workload set, built once — exactly like a worker thread.
  std::vector<std::unique_ptr<Workload>> workloads;
  std::string setup_error;
  try {
    workloads = req.spec->factory ? req.spec->factory()
                                  : make_all_workloads(req.spec->scale);
  } catch (const std::exception& e) {
    setup_error = std::string("workload setup failed: ") + e.what();
  } catch (...) {
    setup_error = "workload setup failed: unknown exception";
  }

  std::string payload;
  for (;;) {
    if (!net::read_frame(job_fd, payload)) _exit(0); // EOF: campaign done
    // A goodbye is the explicit form of the EOF shutdown (the socket
    // fabric needs it; pipes accept either for symmetry).
    if (net::peek_frame_type(payload) == net::kGoodbye) _exit(0);
    net::JobDispatchFrame dispatch;
    if (!net::decode_dispatch(payload, dispatch) ||
        dispatch.job >= req.jobs->size() || dispatch.start_attempt < 1) {
      _exit(3); // protocol violation: let the supervisor decode exit 3
    }

    // Heartbeat before the work: tells the supervisor which job this
    // worker now owns and arms the hard timeout from the job's true start.
    if (!net::write_frame(res_fd,
                          net::encode_event(net::kJobStarted, dispatch.job))) {
      _exit(3);
    }

    const JobResult out = run_dispatched_job(
        *req.spec, *req.jobs, static_cast<std::size_t>(dispatch.job),
        static_cast<int>(dispatch.start_attempt), req.max_attempts,
        req.inject_crash, workloads, setup_error);

    std::ostringstream body;
    write_sized_string(body, serialize_job_result(out));
    const std::uint8_t has_metrics = req.want_metrics && out.ok ? 1 : 0;
    write_pod(body, has_metrics);
    if (has_metrics != 0) net::pack_metrics_snapshot(body, out.report.metrics);
    if (!net::write_frame(res_fd,
                          net::encode_result_frame(dispatch.job, body.str()))) {
      _exit(3);
    }
  }
}

// ---------------------------------------------------------------------------
// Supervisor.

/// A queued dispatch: which job, and which attempt number the worker should
/// resume its retry loop at (advanced past the attempts a crash consumed).
struct QueueItem {
  std::size_t job = 0;
  int attempt = 1;
};

struct WorkerSlot {
  enum class Kind {
    kPipe,   ///< forked child, frames over a pipe pair
    kSocket, ///< registered tmemo_workerd, frames over one TCP connection
  };

  Kind kind = Kind::kPipe;
  std::uint32_t id = 0; ///< stable slot number (timeline pid)
  pid_t pid = -1;       ///< kPipe only
  int job_fd = -1; ///< supervisor writes job frames here
  int res_fd = -1; ///< supervisor reads response frames here (nonblocking;
                   ///< == job_fd for socket workers)
  std::string buf; ///< unparsed response bytes
  bool live = false;
  bool busy = false;
  std::size_t job = 0;
  int attempt = 0;
  bool heartbeat_seen = false;
  bool timeout_killed = false;
  bool deadline_armed = false;
  std::chrono::steady_clock::time_point deadline{};
  std::chrono::steady_clock::time_point job_start{};
  // Liveness keepalive (socket slots only): when the last well-formed
  // frame arrived, and the one outstanding ping awaiting its pong.
  std::chrono::steady_clock::time_point last_heard{};
  bool ping_outstanding = false;
  std::uint64_t ping_seq = 0;
  std::chrono::steady_clock::time_point pong_deadline{};
  /// Outgoing frame path (socket slots): pass-through unless the request
  /// arms --inject-net chaos on this channel.
  net::FrameWriteShim shim;
};

/// A connection that has not yet passed the HelloFrame handshake: fully
/// untrusted, capped at kMaxHandshakeFrameBytes per frame and at
/// kHandshakeTimeoutMs of supervisor patience.
struct PendingConn {
  int fd = -1;
  net::FrameBuffer frames{net::kMaxHandshakeFrameBytes};
  std::chrono::steady_clock::time_point deadline{};
};

class ProcessSupervisor {
 public:
  ProcessSupervisor(const ProcessPoolRequest& req,
                    std::vector<JobResult>& results)
      : req_(req), results_(results),
        pipe_slots_(static_cast<std::size_t>(std::max(0, req.workers))) {
    for (std::size_t i = 0; i < pipe_slots_; ++i) {
      WorkerSlot s;
      s.kind = WorkerSlot::Kind::kPipe;
      s.id = static_cast<std::uint32_t>(i);
      slots_.push_back(s);
    }
    next_slot_id_ = static_cast<std::uint32_t>(pipe_slots_);
    if (req_.want_timeline) {
      timeline_ = std::make_shared<telemetry::Timeline>();
    }
  }

  ProcessPoolOutcome run() {
    // Shared with run_workerd: a dispatch to a just-died worker must
    // surface as EPIPE from write() instead of killing the campaign.
    const net::ScopedIgnoreSigpipe sigpipe;
    for (const std::size_t ji : req_.pending) queue_.push_back({ji, 1});

    while (!queue_.empty() || busy_count() > 0) {
      spawn_needed();
      dispatch_idle();
      if (queue_.empty() && busy_count() == 0) break;
      wait_and_process();
    }
    shutdown();

    ProcessPoolOutcome out;
    out.stats = stats_;
    if (timeline_) {
      for (const WorkerSlot& s : slots_) {
        timeline_->set_process_name(
            s.id, (s.kind == WorkerSlot::Kind::kSocket ? "remote worker "
                                                       : "worker ") +
                      std::to_string(s.id));
      }
      out.timeline = std::move(timeline_);
    }
    return out;
  }

 private:
  [[nodiscard]] std::size_t busy_count() const {
    std::size_t n = 0;
    for (const WorkerSlot& s : slots_) n += s.live && s.busy ? 1 : 0;
    return n;
  }

  [[nodiscard]] std::size_t live_pipe_count() const {
    std::size_t n = 0;
    for (const WorkerSlot& s : slots_) {
      n += s.kind == WorkerSlot::Kind::kPipe && s.live ? 1 : 0;
    }
    return n;
  }

  void note(const char* name, const WorkerSlot& s,
            std::vector<std::pair<std::string, std::uint64_t>> args) {
    if (!timeline_) return;
    telemetry::record_supervision_event(*timeline_, name, s.id, seq_++,
                                        std::move(args));
  }

  /// Keeps live pipe workers matched to remaining work; a fork after the
  /// initial wave is by definition a respawn and pays the bounded backoff
  /// the crash streak has earned. Socket workers arrive on their own
  /// schedule and are never spawned from here.
  void spawn_needed() {
    const std::size_t want =
        std::min(pipe_slots_, queue_.size() + busy_count());
    while (live_pipe_count() < want) {
      WorkerSlot* slot = nullptr;
      for (WorkerSlot& s : slots_) {
        if (s.kind == WorkerSlot::Kind::kPipe && !s.live) {
          slot = &s;
          break;
        }
      }
      if (slot == nullptr) return;
      if (initial_wave_done_ && crash_streak_ > 0) {
        const int shift = std::min(crash_streak_ - 1, 6);
        const int backoff_ms =
            std::min(5 * (1 << shift), kMaxRespawnBackoffMs);
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      }
      if (!spawn(*slot)) {
        ++spawn_failures_;
        TM_REQUIRE(live_pipe_count() > 0 || has_remote_capacity() ||
                       spawn_failures_ < 100,
                   "campaign worker pool: cannot fork any worker");
        return; // retry on the next loop iteration
      }
      spawn_failures_ = 0;
    }
    initial_wave_done_ = true;
  }

  /// True when remote workers can still carry the campaign even with zero
  /// live pipe workers: a listener is accepting, or a socket worker is
  /// already registered.
  [[nodiscard]] bool has_remote_capacity() const {
    if (req_.listener != nullptr && req_.listener->is_open()) return true;
    for (const WorkerSlot& s : slots_) {
      if (s.kind == WorkerSlot::Kind::kSocket && s.live) return true;
    }
    return false;
  }

  bool spawn(WorkerSlot& slot) {
    int job_pipe[2] = {-1, -1};
    int res_pipe[2] = {-1, -1};
    if (::pipe(job_pipe) != 0) return false;
    if (::pipe(res_pipe) != 0) {
      ::close(job_pipe[0]);
      ::close(job_pipe[1]);
      return false;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(job_pipe[0]);
      ::close(job_pipe[1]);
      ::close(res_pipe[0]);
      ::close(res_pipe[1]);
      return false;
    }
    if (pid == 0) {
      // Child: drop the supervisor's ends and every sibling's fds — pipe
      // or socket — or a crashed sibling's EOF would be held open by this
      // process; the listener too, or the port would outlive the
      // supervisor.
      ::close(job_pipe[1]);
      ::close(res_pipe[0]);
      for (const WorkerSlot& other : slots_) {
        if (!other.live) continue;
        ::close(other.job_fd);
        if (other.res_fd != other.job_fd) ::close(other.res_fd);
      }
      for (const PendingConn& p : pending_) ::close(p.fd);
      if (req_.listener != nullptr && req_.listener->is_open()) {
        ::close(req_.listener->fd());
      }
      worker_main(req_, job_pipe[0], res_pipe[1]); // never returns
    }
    ::close(job_pipe[0]);
    ::close(res_pipe[1]);
    // The nonblocking flag is load-bearing: drain() spins on read() until
    // EAGAIN, so a silently-blocking pipe would hang the whole campaign.
    const int flags = ::fcntl(res_pipe[0], F_GETFL, 0);
    const int set_rc =
        flags == -1 ? -1 : ::fcntl(res_pipe[0], F_SETFL, flags | O_NONBLOCK);
    TM_REQUIRE(set_rc != -1,
               "campaign worker pool: cannot set O_NONBLOCK on result pipe");
    slot.pid = pid;
    slot.job_fd = job_pipe[1];
    slot.res_fd = res_pipe[0];
    slot.buf.clear();
    slot.live = true;
    slot.busy = false;
    slot.heartbeat_seen = false;
    slot.timeout_killed = false;
    slot.deadline_armed = false;
    ++stats_.spawns;
    if (initial_wave_done_) {
      ++stats_.respawns;
      note("worker_respawn", slot,
           {{"pid", static_cast<std::uint64_t>(pid)}});
    } else {
      note("worker_spawn", slot,
           {{"pid", static_cast<std::uint64_t>(pid)}});
    }
    return true;
  }

  void dispatch_idle() {
    for (WorkerSlot& s : slots_) {
      if (queue_.empty()) return;
      if (!s.live || s.busy) continue;
      const QueueItem item = queue_.front();
      queue_.pop_front();
      const std::string msg =
          net::encode_dispatch(static_cast<std::uint64_t>(item.job),
                               static_cast<std::int32_t>(item.attempt));
      s.busy = true;
      s.job = item.job;
      s.attempt = item.attempt;
      s.heartbeat_seen = false;
      s.timeout_killed = false;
      // The hard-timeout deadline arms at the heartbeat, not here: a fresh
      // worker is still building its workload set when the first job frame
      // lands, and setup must not eat the job's budget. The keepalive
      // no-heartbeat deadline (enforce_keepalive) runs from job_start so a
      // dispatch swallowed by a half-open socket is still reclaimed.
      s.deadline_armed = false;
      s.job_start = wall_now();
      const bool sent = s.kind == WorkerSlot::Kind::kSocket
                            ? s.shim.write(s.job_fd, msg)
                            : net::write_frame(s.job_fd, msg);
      if (!sent) {
        // The worker died between jobs (EPIPE/ECONNRESET). Put the job
        // back and handle the death.
        s.busy = false;
        queue_.push_front(item);
        if (s.kind == WorkerSlot::Kind::kPipe) {
          reap(s);
        } else {
          disconnect(s, "remote worker disconnected (connection lost)");
        }
      }
    }
  }

  void wait_and_process() {
    std::vector<pollfd> fds;
    // Index into slots_ for worker entries; npos markers for the listener
    // and pending-connection entries, resolved by position below.
    std::vector<std::size_t> fd_slot;
    constexpr std::size_t kNotASlot = static_cast<std::size_t>(-1);
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (!slots_[i].live) continue;
      fds.push_back(pollfd{slots_[i].res_fd, POLLIN, 0});
      fd_slot.push_back(i);
    }
    const std::size_t worker_entries = fds.size();
    std::size_t listener_entry = kNotASlot;
    if (req_.listener != nullptr && req_.listener->is_open()) {
      listener_entry = fds.size();
      fds.push_back(pollfd{req_.listener->fd(), POLLIN, 0});
      fd_slot.push_back(kNotASlot);
    }
    const std::size_t pending_base = fds.size();
    for (const PendingConn& p : pending_) {
      fds.push_back(pollfd{p.fd, POLLIN, 0});
      fd_slot.push_back(kNotASlot);
    }
    if (fds.empty()) return;

    int timeout_ms = -1;
    const auto consider_deadline =
        [&timeout_ms](std::chrono::steady_clock::time_point deadline,
                      std::chrono::steady_clock::time_point now) {
          const auto remaining =
              std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                    now)
                  .count();
          const int ms =
              remaining <= 0 ? 0
                             : static_cast<int>(std::min<long long>(
                                   static_cast<long long>(remaining) + 1,
                                   60'000));
          timeout_ms = timeout_ms < 0 ? ms : std::min(timeout_ms, ms);
        };
    {
      const auto now = wall_now();
      if (req_.job_timeout_ms > 0.0) {
        for (const WorkerSlot& s : slots_) {
          if (!s.live || !s.busy || !s.deadline_armed || s.timeout_killed) {
            continue;
          }
          consider_deadline(s.deadline, now);
        }
      }
      for (const PendingConn& p : pending_) consider_deadline(p.deadline, now);
      if (req_.keepalive_interval_ms > 0) {
        const auto interval =
            std::chrono::milliseconds(req_.keepalive_interval_ms);
        const auto timeout = std::chrono::milliseconds(
            std::max(1, req_.keepalive_timeout_ms));
        for (const WorkerSlot& s : slots_) {
          if (!s.live || s.kind != WorkerSlot::Kind::kSocket) continue;
          if (s.busy) {
            if (!s.heartbeat_seen) {
              consider_deadline(s.job_start + interval + timeout, now);
            }
          } else if (s.ping_outstanding) {
            consider_deadline(s.pong_deadline, now);
          } else {
            consider_deadline(s.last_heard + interval, now);
          }
        }
      }
    }

    const int ready =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
    if (ready < 0 && errno != EINTR) {
      TM_REQUIRE(false, "campaign worker pool: poll() failed");
    }

    for (std::size_t k = 0; k < worker_entries; ++k) {
      WorkerSlot& s = slots_[fd_slot[k]];
      if (!s.live) continue; // reaped earlier in this pass
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      drain(s);
    }
    if (listener_entry != kNotASlot &&
        (fds[listener_entry].revents & (POLLIN | POLLERR)) != 0) {
      accept_new_connections();
    }
    for (std::size_t k = pending_base; k < fds.size(); ++k) {
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      // Map the poll entry back to the pending connection by fd (the
      // vector may have been reshuffled by earlier handshakes this pass).
      for (std::size_t p = 0; p < pending_.size(); ++p) {
        if (pending_[p].fd == fds[k].fd) {
          drain_pending(p);
          break;
        }
      }
    }
    enforce_handshake_deadlines();
    enforce_deadlines();
    enforce_keepalive();
  }

  void accept_new_connections() {
    if (req_.listener == nullptr) return;
    for (;;) {
      const int fd = req_.listener->accept_one();
      if (fd < 0) return;
      PendingConn conn;
      conn.fd = fd;
      conn.deadline =
          wall_now() + std::chrono::milliseconds(kHandshakeTimeoutMs);
      pending_.push_back(std::move(conn));
    }
  }

  /// Reads whatever the unregistered peer sent; a complete frame must be a
  /// valid HelloFrame or the connection is rejected.
  void drain_pending(std::size_t index) {
    PendingConn& p = pending_[index];
    bool broken = false;
    char tmp[4096];
    for (;;) {
      const ssize_t r = ::read(p.fd, tmp, sizeof tmp);
      if (r > 0) {
        p.frames.append(tmp, static_cast<std::size_t>(r));
        continue;
      }
      if (r == 0) {
        broken = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      broken = true;
      break;
    }

    std::string payload;
    const net::FrameBuffer::Next next = p.frames.next(payload);
    if (next == net::FrameBuffer::Next::kFrame) {
      complete_handshake(index, payload);
      return;
    }
    if (next == net::FrameBuffer::Next::kOversize || broken) {
      reject_pending(index); // vanished or sent garbage before registering
    }
  }

  /// Validates a HelloFrame, answers with a HelloAckFrame, and on success
  /// promotes the connection to a socket worker slot.
  void complete_handshake(std::size_t index, const std::string& payload) {
    PendingConn& p = pending_[index];
    net::HelloFrame hello;
    net::HelloReject verdict = net::HelloReject::kAccepted;
    if (!net::decode_hello(payload, hello)) {
      verdict = net::HelloReject::kBadMagic;
    } else if (hello.protocol != net::kProtocolVersion) {
      verdict = net::HelloReject::kProtocolMismatch;
    } else if (hello.campaign_digest != req_.campaign_digest) {
      verdict = net::HelloReject::kCampaignMismatch;
    } else if (hello.job_count !=
               static_cast<std::uint64_t>(req_.jobs->size())) {
      verdict = net::HelloReject::kJobCountMismatch;
    }

    net::HelloAckFrame ack;
    ack.accepted = verdict == net::HelloReject::kAccepted ? 1 : 0;
    ack.reason = static_cast<std::uint32_t>(verdict);
    ack.max_attempts = static_cast<std::int32_t>(req_.max_attempts);
    // Mirror the spec's telemetry switches bit-for-bit (not want_metrics,
    // which is their OR): the workerd re-derives per-job RunSpecs from
    // these, and a job that collects metrics it shouldn't would leak into
    // the campaign-level merge.
    ack.capabilities =
        static_cast<std::uint16_t>(
            (req_.spec->metrics ? net::kCapMetrics : 0) |
            (req_.spec->timeline ? net::kCapTimeline : 0));
    const bool acked =
        net::write_frame(p.fd, net::encode_hello_ack(ack));

    if (verdict != net::HelloReject::kAccepted || !acked) {
      reject_pending(index);
      return;
    }

    WorkerSlot slot;
    slot.kind = WorkerSlot::Kind::kSocket;
    slot.id = next_slot_id_++;
    slot.job_fd = p.fd;
    slot.res_fd = p.fd;
    slot.buf = p.frames.take_buffered(); // pipelined post-handshake bytes
    slot.live = true;
    slot.last_heard = wall_now(); // registration counts as liveness
    if (req_.inject_net && req_.inject_net->enabled()) {
      // Chaos starts after registration; the slot id salts this channel's
      // deterministic fault stream.
      slot.shim.arm(*req_.inject_net, slot.id);
    }
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(index));
    ++stats_.remote_connects;
    slots_.push_back(std::move(slot));
    note("worker_connect", slots_.back(),
         {{"capabilities", static_cast<std::uint64_t>(hello.capabilities)}});
  }

  /// Drops an unregistered connection (bad Hello, handshake timeout, or the
  /// peer vanished) and counts the reject.
  void reject_pending(std::size_t index) {
    PendingConn& p = pending_[index];
    close_fd(p.fd);
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(index));
    ++stats_.remote_rejects;
    if (timeline_) {
      const WorkerSlot ghost; // no slot was ever assigned
      note("worker_reject", ghost, {});
    }
  }

  void enforce_handshake_deadlines() {
    const auto now = wall_now();
    for (std::size_t i = pending_.size(); i-- > 0;) {
      if (now >= pending_[i].deadline) reject_pending(i);
    }
  }

  /// Reads everything available from a worker, parses complete frames, and
  /// handles worker death on EOF (reap for pipes, disconnect for sockets).
  void drain(WorkerSlot& s) {
    bool eof = false;
    char tmp[65536];
    for (;;) {
      const ssize_t r = ::read(s.res_fd, tmp, sizeof tmp);
      if (r > 0) {
        s.buf.append(tmp, static_cast<std::size_t>(r));
        continue;
      }
      if (r == 0) {
        eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      eof = true; // read error: treat like a vanished worker
      break;
    }
    while (s.live) {
      if (s.buf.size() < sizeof(FrameHeader)) break;
      FrameHeader hdr;
      std::memcpy(&hdr, s.buf.data(), sizeof hdr);
      if (hdr.len > net::kMaxFrameBytes) {
        protocol_error(s);
        return;
      }
      if (s.buf.size() < sizeof hdr + hdr.len) break;
      const std::string payload = s.buf.substr(sizeof hdr, hdr.len);
      s.buf.erase(0, sizeof hdr + hdr.len);
      handle_frame(s, payload);
    }
    if (eof && s.live) {
      if (s.kind == WorkerSlot::Kind::kPipe) {
        reap(s);
      } else {
        disconnect(s, "remote worker disconnected (connection lost)");
      }
    }
  }

  void handle_frame(WorkerSlot& s, const std::string& payload) {
    net::EventFrameHeader hdr;
    if (!net::decode_event_header(payload, hdr)) {
      protocol_error(s);
      return;
    }
    // Any well-formed frame proves the connection alive.
    s.last_heard = wall_now();
    switch (hdr.type) {
      case net::kPong:
        // Exactly one probe can be outstanding, so the echoed sequence
        // number must match it; anything else is a corrupted stream.
        if (s.kind != WorkerSlot::Kind::kSocket || !s.ping_outstanding ||
            hdr.job != s.ping_seq) {
          protocol_error(s);
          return;
        }
        s.ping_outstanding = false;
        return;
      case net::kGoodbye:
        handle_goodbye(s);
        return;
      case net::kJobStarted:
      case net::kJobDone:
        break;
      default:
        protocol_error(s);
        return;
    }
    if (!s.busy || hdr.job != static_cast<std::uint64_t>(s.job)) {
      protocol_error(s);
      return;
    }
    if (hdr.type == net::kJobStarted) {
      s.heartbeat_seen = true;
      if (req_.job_timeout_ms > 0.0 && !s.timeout_killed) {
        // Re-arm from the job's true start: worker setup (workload
        // construction on first dispatch) does not eat the job's budget.
        s.deadline_armed = true;
        s.deadline = wall_now() +
                     std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             req_.job_timeout_ms));
      }
      return;
    }
    if (s.timeout_killed) {
      // The kill already won: a result that raced the SIGKILL through the
      // pipe is discarded, exactly like the thread pool discards a run
      // that finished over budget. The reap will record the timeout.
      return;
    }

    // The digest gate comes before the parser: a flipped digit in an
    // energy column is still valid CSV, so only the body digest can tell a
    // corrupted result from a real one (the chaos injector found exactly
    // this — a one-bit flip in e_base_pj survived parsing and skewed the
    // recomputed saving column).
    if (!net::verify_result_body(payload)) {
      protocol_error(s);
      return;
    }
    std::istringstream in(payload);
    in.ignore(static_cast<std::streamsize>(net::kResultBodyOffset));
    std::string row;
    std::uint8_t has_metrics = 0;
    JobResult res;
    bool parsed = read_sized_string(in, row);
    if (parsed) {
      std::istringstream row_in(row);
      std::vector<std::string> fields;
      parsed = read_csv_record(row_in, fields) &&
               parse_job_result(fields, res) && res.job.index == s.job;
    }
    if (parsed) {
      read_pod(in, has_metrics);
      parsed = in.good();
    }
    if (parsed && has_metrics != 0) {
      parsed = net::unpack_metrics_snapshot(in, res.report.metrics);
    }
    if (!parsed) {
      protocol_error(s);
      return;
    }
    res.job = (*req_.jobs)[s.job];
    if (req_.job_timeout_ms > 0.0 && res.wall_ms > req_.job_timeout_ms) {
      // Finished but over budget: classify like the thread pool's
      // cooperative check so both isolation modes agree on the verdict.
      res.ok = false;
      res.timed_out = true;
      res.report = KernelRunReport{};
      res.error = "job exceeded " + format_ms(req_.job_timeout_ms) +
                  " ms timeout";
    }
    finalize(res);
    s.busy = false;
    s.deadline_armed = false;
    crash_streak_ = 0;
  }

  /// A draining workerd (SIGTERM) says goodbye before leaving. The drain
  /// is voluntary, not a crash: if a dispatch raced the goodbye — written
  /// before the worker read it, so the job never ran — the job is requeued
  /// at the SAME attempt, burning no retry budget and counting no crash.
  void handle_goodbye(WorkerSlot& s) {
    if (s.kind != WorkerSlot::Kind::kSocket) {
      protocol_error(s); // pipe workers shut down by EOF, never goodbye
      return;
    }
    ++stats_.remote_drains;
    note("worker_drain", s,
         {{"mid_job", static_cast<std::uint64_t>(s.busy ? 1 : 0)}});
    const bool was_busy = s.busy;
    const QueueItem raced{s.job, s.attempt};
    close_fd(s.job_fd);
    s.job_fd = s.res_fd = -1;
    s.live = false;
    s.busy = false;
    s.deadline_armed = false;
    s.ping_outstanding = false;
    s.buf.clear();
    if (was_busy) queue_.push_front(raced);
  }

  /// Liveness enforcement for socket workers: ping idle connections, drop
  /// the ones that miss their pong deadline, and reclaim dispatched jobs
  /// whose heartbeat never arrived — the three faces of a half-open
  /// connection. Pipe workers need none of this (pipe EOF is prompt).
  void enforce_keepalive() {
    if (req_.keepalive_interval_ms <= 0) return;
    const auto now = wall_now();
    const auto interval = std::chrono::milliseconds(req_.keepalive_interval_ms);
    const auto timeout =
        std::chrono::milliseconds(std::max(1, req_.keepalive_timeout_ms));
    for (WorkerSlot& s : slots_) {
      if (!s.live || s.kind != WorkerSlot::Kind::kSocket) continue;
      if (s.busy) {
        // A busy worker cannot pong (the job loop is single-threaded), but
        // a dispatch that was never even acknowledged within the keepalive
        // budget went into a black hole; reclaim the job.
        if (!s.heartbeat_seen && now - s.job_start >= interval + timeout) {
          ++stats_.remote_keepalive_drops;
          disconnect(s, "remote worker never acknowledged the job within "
                        "the liveness deadline (half-open connection)");
        }
        continue;
      }
      if (s.ping_outstanding) {
        if (now >= s.pong_deadline) {
          ++stats_.remote_keepalive_drops;
          disconnect(s, "remote worker missed the liveness deadline "
                        "(half-open connection)");
        }
        continue;
      }
      if (now - s.last_heard >= interval) {
        ++s.ping_seq;
        ++stats_.remote_keepalive_pings;
        if (!s.shim.write(s.job_fd,
                          net::encode_event(net::kPing, s.ping_seq))) {
          disconnect(s, "remote worker disconnected (connection lost)");
          continue;
        }
        s.ping_outstanding = true;
        s.pong_deadline = now + timeout;
      }
    }
  }

  /// A worker that breaks the framing contract is as good as crashed: kill
  /// it (pipe) or drop the connection (socket) and classify the death.
  void protocol_error(WorkerSlot& s) {
    if (s.kind == WorkerSlot::Kind::kPipe) {
      ::kill(s.pid, SIGKILL);
      reap(s);
    } else {
      disconnect(s, "remote worker broke the frame protocol; "
                    "connection dropped");
    }
  }

  /// Handles a pipe worker's death: decode the wait status, then either
  /// record the in-flight job's failure or re-dispatch it under the retry
  /// budget.
  void reap(WorkerSlot& s) {
    ::close(s.job_fd);
    ::close(s.res_fd);
    s.job_fd = s.res_fd = -1;
    s.live = false;
    s.buf.clear();
    int status = 0;
    while (::waitpid(s.pid, &status, 0) < 0 && errno == EINTR) {
    }

    if (!s.busy) {
      // Died between jobs: no job harmed, but the slot still needs a
      // replacement and the event is still a crash.
      ++stats_.crashes;
      ++crash_streak_;
      note("worker_crash", s, {{"status", pack_status(status)}});
      return;
    }
    s.busy = false;
    s.deadline_armed = false;

    JobResult res;
    res.job = (*req_.jobs)[s.job];
    res.ok = false;
    res.attempts = s.attempt;
    res.wall_ms = wall_elapsed_ms(s.job_start);

    if (s.timeout_killed) {
      res.timed_out = true;
      res.error = "job exceeded " + format_ms(req_.job_timeout_ms) +
                  " ms hard timeout (worker SIGKILLed)";
      finalize(res);
      return;
    }

    ++stats_.crashes;
    ++crash_streak_;
    res.error = decode_status(status, s.heartbeat_seen);
    note("worker_crash", s,
         {{"job", static_cast<std::uint64_t>(s.job)},
          {"attempt", static_cast<std::uint64_t>(s.attempt)},
          {"status", pack_status(status)}});
    redispatch_or_finalize(s, res);
  }

  /// Handles a socket worker's loss: the same crash taxonomy as reap(),
  /// minus the waitpid (the process is on another machine; all we know is
  /// the connection state).
  void disconnect(WorkerSlot& s, const char* cause) {
    close_fd(s.job_fd);
    s.job_fd = s.res_fd = -1;
    s.live = false;
    s.ping_outstanding = false;
    s.buf.clear();
    ++stats_.remote_disconnects;
    note("worker_disconnect", s,
         {{"mid_job", static_cast<std::uint64_t>(s.busy ? 1 : 0)}});

    if (!s.busy) return; // an idle workerd leaving the pool harms nothing
    s.busy = false;
    s.deadline_armed = false;

    JobResult res;
    res.job = (*req_.jobs)[s.job];
    res.ok = false;
    res.attempts = s.attempt;
    res.wall_ms = wall_elapsed_ms(s.job_start);
    ++stats_.crashes;
    res.error = std::string(cause);
    if (!s.heartbeat_seen) res.error += " before acknowledging the job";
    redispatch_or_finalize(s, res);
  }

  /// The crash consumed one attempt; the redispatch resumes after it —
  /// shared tail of reap() and disconnect().
  void redispatch_or_finalize(WorkerSlot& s, const JobResult& res) {
    if (s.attempt < req_.max_attempts) {
      queue_.push_front({s.job, s.attempt + 1});
      ++stats_.redispatches;
      note("job_redispatch", s,
           {{"job", static_cast<std::uint64_t>(s.job)},
            {"attempt", static_cast<std::uint64_t>(s.attempt + 1)}});
    } else {
      finalize(res);
    }
  }

  void enforce_deadlines() {
    if (req_.job_timeout_ms <= 0.0) return;
    const auto now = wall_now();
    for (WorkerSlot& s : slots_) {
      if (!s.live || !s.busy || !s.deadline_armed || s.timeout_killed) {
        continue;
      }
      if (now < s.deadline) continue;
      s.timeout_killed = true;
      ++stats_.timeout_kills;
      note("job_timeout_kill", s,
           {{"job", static_cast<std::uint64_t>(s.job)},
            {"attempt", static_cast<std::uint64_t>(s.attempt)}});
      if (s.kind == WorkerSlot::Kind::kPipe) {
        ::kill(s.pid, SIGKILL);
        // EOF on the result pipe follows; reap() records the timeout.
      } else {
        // No SIGKILL across machines: dropping the connection is the whole
        // enforcement arsenal. Record the timeout verdict directly.
        JobResult res;
        res.job = (*req_.jobs)[s.job];
        res.ok = false;
        res.timed_out = true;
        res.attempts = s.attempt;
        res.wall_ms = wall_elapsed_ms(s.job_start);
        res.error = "job exceeded " + format_ms(req_.job_timeout_ms) +
                    " ms hard timeout (remote worker disconnected)";
        close_fd(s.job_fd);
        s.job_fd = s.res_fd = -1;
        s.live = false;
        s.busy = false;
        s.buf.clear();
        finalize(res);
      }
    }
  }

  void finalize(const JobResult& res) {
    results_[res.job.index] = res;
    if (req_.journal_append) req_.journal_append(results_[res.job.index]);
  }

  void shutdown() {
    // Closing the job pipe (or socket) is the protocol's shutdown signal:
    // idle workers read EOF and exit cleanly.
    for (WorkerSlot& s : slots_) {
      if (!s.live) continue;
      if (s.kind == WorkerSlot::Kind::kPipe) {
        ::close(s.job_fd);
        ::close(s.res_fd);
        s.job_fd = s.res_fd = -1;
        int status = 0;
        while (::waitpid(s.pid, &status, 0) < 0 && errno == EINTR) {
        }
      } else {
        // An explicit goodbye before the close: a reconnecting workerd
        // distinguishes "campaign complete" (exit cleanly) from a lost
        // connection (re-dial) by this frame. Best-effort — the campaign
        // is over either way.
        (void)s.shim.write(s.job_fd, net::encode_event(net::kGoodbye, 0));
        close_fd(s.job_fd);
        s.job_fd = s.res_fd = -1;
      }
      s.live = false;
    }
    for (const PendingConn& p : pending_) close_fd(p.fd);
    pending_.clear();
  }

  static void close_fd(int fd) {
    while (::close(fd) != 0 && errno == EINTR) {
    }
  }

  [[nodiscard]] static std::string format_ms(double ms) {
    std::ostringstream os;
    os << ms;
    return os.str();
  }

  /// Wait status folded into one u64 timeline arg: signal number when
  /// signaled, 1000 + exit code when exited.
  [[nodiscard]] static std::uint64_t pack_status(int status) {
    if (WIFSIGNALED(status)) {
      return static_cast<std::uint64_t>(WTERMSIG(status));
    }
    if (WIFEXITED(status)) {
      return 1000u + static_cast<std::uint64_t>(WEXITSTATUS(status));
    }
    return static_cast<std::uint64_t>(status);
  }

  [[nodiscard]] static std::string decode_status(int status,
                                                 bool heartbeat_seen) {
    std::string s;
    if (WIFSIGNALED(status)) {
      const int sig = WTERMSIG(status);
      s = "worker crashed: " + inject::signal_name(sig);
      if (sig == SIGKILL) {
        s += " (killed externally; possibly the OOM killer)";
      }
    } else if (WIFEXITED(status)) {
      const int code = WEXITSTATUS(status);
      if (code == 0) {
        s = "worker exited cleanly without replying (lost result)";
      } else {
        s = "worker exited with status " + std::to_string(code);
      }
    } else {
      s = "worker vanished (unrecognized wait status " +
          std::to_string(status) + ")";
    }
    if (!heartbeat_seen) s += " before acknowledging the job";
    return s;
  }

  const ProcessPoolRequest& req_;
  std::vector<JobResult>& results_;
  /// Fixed pipe slots first, socket slots appended as workers register.
  /// A deque so slot references stay valid across the appends.
  std::deque<WorkerSlot> slots_;
  std::size_t pipe_slots_ = 0;   ///< fixed count of forked-worker slots
  std::uint32_t next_slot_id_ = 0;
  std::vector<PendingConn> pending_; ///< accepted, not yet registered
  std::deque<QueueItem> queue_;
  WorkerPoolStats stats_;
  std::shared_ptr<telemetry::Timeline> timeline_;
  std::uint64_t seq_ = 0;   ///< ordinal timeline timestamp
  int crash_streak_ = 0;    ///< consecutive pipe crashes since a result
  int spawn_failures_ = 0;  ///< consecutive failed fork/pipe attempts
  bool initial_wave_done_ = false;
};

} // namespace

JobResult run_dispatched_job(
    const SweepSpec& spec, const std::vector<CampaignJob>& jobs,
    std::size_t job_index, int start_attempt, int max_attempts,
    const std::optional<inject::WorkerCrashInjection>& inject_crash,
    std::vector<std::unique_ptr<Workload>>& workloads,
    const std::string& setup_error) {
  const CampaignJob& job = jobs[job_index];
  JobResult out;
  out.job = job;
  const auto job_start = wall_now();
  if (!setup_error.empty()) {
    // Setup failures are environmental, not per-job: never retried.
    out.attempts = start_attempt;
    out.error = setup_error;
  } else if (job.workload_index >= workloads.size()) {
    out.attempts = start_attempt;
    out.error = "workload factory returned fewer workloads than expected";
  } else {
    for (int attempt = start_attempt;; ++attempt) {
      if (inject_crash && inject_crash->applies(job_index, attempt)) {
        crash_now(inject_crash->signal);
      }
      out.attempts = attempt;
      out.ok = false;
      out.error.clear();
      try {
        const ExperimentConfig& config =
            spec.variants.empty()
                ? ExperimentConfig{}
                : spec.variants[job.variant_index].config;
        const Simulation sim(config);
        out.report = sim.run(*workloads[job.workload_index], job.spec);
        out.ok = true;
      } catch (const std::exception& e) {
        out.error = e.what();
      } catch (...) {
        out.error = "unknown exception";
      }
      if (out.ok || attempt >= max_attempts) break;
    }
  }
  out.wall_ms = wall_elapsed_ms(job_start);
  return out;
}

ProcessPoolOutcome run_process_pool(const ProcessPoolRequest& req,
                                    std::vector<JobResult>& results) {
  TM_REQUIRE(req.spec != nullptr && req.jobs != nullptr,
             "process pool: spec and jobs are required");
  TM_REQUIRE(req.max_attempts >= 1,
             "process pool: max_attempts must be >= 1");
  TM_REQUIRE(req.workers >= 1 ||
                 (req.listener != nullptr && req.listener->is_open()),
             "process pool: need at least one pipe worker or an open "
             "listener for remote workers");
  TM_REQUIRE(results.size() == req.jobs->size(),
             "process pool: results must be pre-sized to the job list");
  for (const std::size_t ji : req.pending) {
    TM_REQUIRE(ji < results.size(), "process pool: pending index out of range");
  }
  ProcessSupervisor supervisor(req, results);
  return supervisor.run();
}

} // namespace tmemo
