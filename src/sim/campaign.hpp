// Campaign engine: bulk execution of the paper's result grids.
//
// The paper's figures are grids of independent runs — 7 kernels x error
// rates 0..4% (Fig. 10), 6 kernels x supplies 0.9..0.8 V (Fig. 11), each
// optionally crossed with thresholds and configuration ablations. A
// SweepSpec describes such a grid declaratively; the CampaignEngine expands
// it into a stable-ordered job list and runs the jobs on a thread pool.
//
// Determinism: every job's device seed is derived from the campaign seed
// and the job index (derive_job_seed), and each worker thread builds its
// own private workload set, so a campaign produces bit-identical
// CampaignResults for any worker count. A throwing job records an error
// entry instead of killing the campaign.
//
// Crash safety (CampaignRunOptions): jobs can be bounded-retried and
// soft-timed-out, and every finished job can be appended to an RFC-4180
// journal that a later run resumes from (--resume), restoring completed
// jobs bit-identically instead of re-executing them.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include <map>

#include "inject/worker_crash.hpp"
#include "io/fs_fault.hpp"
#include "net/fault.hpp"
#include "sim/simulation.hpp"

namespace tmemo {

namespace net {
class Listener; // net/transport.hpp (remote isolation)
}

/// One swept independent-variable axis, expanded into `count` evenly spaced
/// points from `start` to `stop` inclusive (count == 1 pins `start`).
struct SweepAxis {
  enum class Kind { kErrorRate, kVoltage };

  Kind kind = Kind::kErrorRate;
  double start = 0.0;
  double stop = 0.0;
  int count = 1;

  [[nodiscard]] static SweepAxis error_rate(double start, double stop,
                                            int count);
  [[nodiscard]] static SweepAxis voltage(double start, double stop, int count);
  /// Single fixed operating point.
  [[nodiscard]] static SweepAxis error_rate_point(double rate) {
    return error_rate(rate, rate, 1);
  }
  [[nodiscard]] static SweepAxis voltage_point(Volt supply) {
    return voltage(supply, supply, 1);
  }

  /// The axis values in sweep order.
  [[nodiscard]] std::vector<double> points() const;

  /// Parses the CLI axis syntax "error-rate:START:STOP:COUNT" or
  /// "voltage:START:STOP:COUNT" (e.g. "error-rate:0:0.04:9"). Returns
  /// nullopt on malformed input.
  [[nodiscard]] static std::optional<SweepAxis> parse(std::string_view text);

  [[nodiscard]] std::string_view kind_name() const noexcept {
    return kind == Kind::kErrorRate ? "error-rate" : "voltage";
  }
};

/// A named ExperimentConfig ablation of the campaign grid.
struct ConfigVariant {
  std::string label = "base";
  ExperimentConfig config;
};

/// Produces a private workload set for one worker thread. Each worker calls
/// the factory once, so Workload implementations need no thread safety. The
/// factory must be deterministic: every invocation must return the same
/// workloads in the same order.
using WorkloadFactory =
    std::function<std::vector<std::unique_ptr<Workload>>()>;

/// Declarative description of a results grid:
/// variants x workloads x thresholds x axis points.
struct SweepSpec {
  /// Problem scale for make_all_workloads() when `factory` is unset.
  double scale = 0.04;
  /// Case-insensitive kernel-name filter; empty (or containing "all")
  /// selects every workload the factory provides.
  std::vector<std::string> kernels;
  /// Overrides the default make_all_workloads(scale) workload set.
  WorkloadFactory factory;
  SweepAxis axis;
  /// Threshold overrides; empty = each workload's Table-1 default.
  std::vector<float> thresholds;
  /// Config ablations; empty = a single base-config variant.
  std::vector<ConfigVariant> variants;
  /// Per-job device seeds derive from this and the job index, so results do
  /// not depend on the worker count or scheduling.
  std::uint64_t campaign_seed = 0x5eed;
  /// Collect telemetry metrics for every job; the per-run snapshots are
  /// merged (in job-index order, but the merge is order-independent) into
  /// CampaignResult::metrics.
  bool metrics = false;
  /// Record the event timeline of job 0 (the representative run; recording
  /// every job would multiply memory for little insight). Implies metrics
  /// for that job.
  bool timeline = false;
};

/// Deterministic per-job seed (splitmix-style mix of campaign seed and job
/// index) — the seed RunSpec::seed() is set to for job `index`.
[[nodiscard]] std::uint64_t derive_job_seed(std::uint64_t campaign_seed,
                                            std::size_t index);

/// One expanded grid cell. `index` is the job's position in the stable
/// expansion order: variants outermost, then workloads, then thresholds,
/// then axis points innermost.
struct CampaignJob {
  std::size_t index = 0;
  std::size_t workload_index = 0;
  std::string kernel;
  std::size_t variant_index = 0;
  std::string variant_label;
  double axis_value = 0.0;
  RunSpec spec = RunSpec::at_error_rate(0.0);
};

/// Outcome of one job. ok == false means the run threw (`error` holds the
/// exception text and `report` is default-constructed) or, with a job
/// timeout configured, that the job blew its wall-clock budget.
struct JobResult {
  CampaignJob job;
  KernelRunReport report;
  bool ok = false;
  std::string error;
  /// Runs attempted before this result was accepted (1 = first try; up to
  /// CampaignRunOptions::max_attempts for jobs that kept throwing).
  int attempts = 1;
  /// The job exceeded CampaignRunOptions::job_timeout_ms. The timeout is
  /// cooperative (checked when the run returns — a worker thread cannot be
  /// preempted safely), and timed-out jobs are not retried.
  bool timed_out = false;
  double wall_ms = 0.0;
};

/// Supervision counters of a process- or remote-isolated campaign (all zero
/// under thread isolation). Mirrored into the campaign.worker_* /
/// campaign.remote_* telemetry instruments when metrics are on.
struct WorkerPoolStats {
  std::uint64_t spawns = 0;        ///< worker processes forked (incl. respawns)
  std::uint64_t crashes = 0;       ///< workers that died mid-job (signal, exit,
                                   ///< silent clean exit, or lost connection)
  std::uint64_t respawns = 0;      ///< replacement workers forked after a crash
  std::uint64_t redispatches = 0;  ///< in-flight jobs re-dispatched after a
                                   ///< crash under the retry budget
  std::uint64_t timeout_kills = 0; ///< workers SIGKILLed (or disconnected, for
                                   ///< remote workers) for blowing the hard
                                   ///< per-job timeout
  // Remote (TCP) fabric counters, zero unless IsolationMode::kRemote.
  std::uint64_t remote_connects = 0;    ///< workerd registrations accepted
  std::uint64_t remote_disconnects = 0; ///< connections lost (EOF/reset)
  std::uint64_t remote_rejects = 0;     ///< handshakes rejected (bad magic,
                                        ///< version/campaign mismatch, or
                                        ///< handshake timeout)
  std::uint64_t remote_keepalive_pings = 0; ///< liveness probes sent to idle
                                            ///< socket workers
  std::uint64_t remote_keepalive_drops = 0; ///< connections reclaimed as
                                            ///< half-open: a missed pong, or
                                            ///< a dispatch never acknowledged
                                            ///< within the keepalive budget
  std::uint64_t remote_drains = 0;          ///< workerd goodbye frames
                                            ///< (graceful SIGTERM drains)
};

/// All job results, ordered by CampaignJob::index regardless of which
/// worker finished when.
struct CampaignResult {
  std::vector<JobResult> jobs;
  double wall_ms = 0.0; ///< whole-campaign wall time
  int workers = 1;      ///< worker threads/processes actually used
  /// Jobs restored from a resume journal instead of re-executed.
  std::size_t resumed_jobs = 0;
  /// Process-pool supervision counters (zero under thread isolation).
  WorkerPoolStats worker_stats;

  /// First artifact-durability failure of the run (empty = none): a
  /// journal append or checkpoint that could not be made durable, real or
  /// --inject-fs-injected. The campaign itself finishes — the results are
  /// still in memory and the final artifacts may still land — but callers
  /// must surface this as a distinct nonzero exit (tmemo_sim exits 3),
  /// because the on-disk journal can no longer be trusted for resume.
  std::string artifact_error;

  /// Merged telemetry over every ok job (empty unless SweepSpec::metrics).
  /// Bit-identical for any worker count: all instruments are uint64 and
  /// merge commutatively (see telemetry/metrics.hpp).
  telemetry::MetricsSnapshot metrics;
  /// Job 0's event timeline (null unless SweepSpec::timeline and job 0 ran).
  std::shared_ptr<const telemetry::Timeline> timeline;

  [[nodiscard]] std::size_t failed() const noexcept;
  [[nodiscard]] bool all_ok() const noexcept { return failed() == 0; }
  /// Every job ran and its host verification passed.
  [[nodiscard]] bool all_passed() const noexcept;
};

/// A parsed job-result journal: the fingerprint of the campaign it belongs
/// to plus the completed entries it holds (only JobResult::job.index plus
/// the measured fields are meaningful; the rest of the CampaignJob is
/// re-derived from the spec on resume).
struct CampaignJournal {
  std::string fingerprint;
  std::vector<JobResult> entries;
  /// Records dropped because they failed to parse — the torn-write case: a
  /// crash mid-append leaves a trailing partial line. Resume tolerates (and
  /// callers should log) these instead of failing the whole campaign.
  /// Always 0 for sealed journals, whose reader throws instead.
  std::size_t malformed_rows = 0;
  /// The journal carried the "sealed" header mark and a record-count end
  /// sentinel that verified: it is a *complete* artifact (a merge output or
  /// a checkpoint), not an append log, so truncation anywhere is an error
  /// rather than a tolerated torn tail.
  bool sealed = false;
};

/// How campaign jobs are isolated from each other and from the engine.
enum class IsolationMode {
  /// Jobs run on in-process worker threads (the default): fastest, but a
  /// segfault/abort()/OOM-kill in one job takes the whole campaign with it.
  kThread,
  /// Jobs run in forked worker processes supervised over a pipe protocol
  /// (sim/worker_proc.hpp): a hard fault in one job becomes a failed
  /// JobResult with the decoded cause while every other job completes, and
  /// the job timeout becomes a hard SIGKILL. Results are bit-identical to
  /// thread isolation (wall_ms aside). POSIX only.
  kProcess,
  /// Jobs run in remote tmemo_workerd processes that connect over TCP
  /// (src/net/, docs/DISTRIBUTED.md). The supervisor listens on
  /// CampaignRunOptions::listen_address and multiplexes socket workers
  /// (plus optional local forked workers) in one poll() loop; a lost
  /// connection maps into the crash taxonomy exactly like a dead forked
  /// worker. Results stay bit-identical to thread isolation because only
  /// (job index, attempt) crosses the wire. POSIX only.
  kRemote,
};

[[nodiscard]] constexpr std::string_view isolation_mode_name(
    IsolationMode m) noexcept {
  switch (m) {
    case IsolationMode::kThread: return "thread";
    case IsolationMode::kProcess: return "process";
    case IsolationMode::kRemote: return "remote";
  }
  return "unknown";
}

/// Crash-safety and partial-failure options for CampaignEngine::run.
struct CampaignRunOptions {
  /// Deterministic bounded retry: a throwing job is re-run (same seed, same
  /// inputs) up to this many times; JobResult::attempts records the count.
  /// Under process isolation the budget also covers worker crashes: a job
  /// whose worker died is re-dispatched until the budget is spent.
  int max_attempts = 1;
  /// Per-job wall-clock budget in ms; 0 disables. Under thread isolation
  /// the check is cooperative (evaluated when the run returns, so a wedged
  /// job still occupies its worker); under process isolation it is hard
  /// (the worker is SIGKILLed and the job marked timed_out). Timed-out
  /// jobs are never retried. Because the classification depends on wall
  /// time, enabling a timeout trades the bit-identical-for-any-worker-count
  /// guarantee for liveness.
  double job_timeout_ms = 0.0;
  /// Worker isolation model; kThread is the historical in-process pool.
  IsolationMode isolation = IsolationMode::kThread;
  /// Deterministic worker-crash injection (process isolation only): proves
  /// crash containment in tests/CI. Ignored under thread isolation.
  std::optional<inject::WorkerCrashInjection> inject_worker_crash;
  /// Remote isolation only: "HOST:PORT" the supervisor listens on for
  /// tmemo_workerd registrations (e.g. "127.0.0.1:7777"). Required under
  /// kRemote unless `listener` is provided.
  std::string listen_address;
  /// Remote isolation only: a pre-opened listener (tests and benches bind
  /// port 0 to get an OS-chosen port, fork their workers, then hand the
  /// listener in). Not owned; must outlive the run. Overrides
  /// listen_address.
  net::Listener* listener = nullptr;
  /// Remote isolation only: forked pipe workers to run alongside the socket
  /// workers in the same supervisor loop (0 = serve remote workers only).
  int remote_local_workers = 0;
  /// Remote isolation only: idle socket workers are pinged every this many
  /// ms (0 disables liveness probing) and must pong within
  /// keepalive_timeout_ms. A miss marks the connection half-open — the
  /// peer is gone but no FIN/RST ever arrived — and folds it into the
  /// disconnect taxonomy; likewise a dispatched job whose kJobStarted
  /// heartbeat never arrives within interval+timeout is reclaimed and
  /// re-dispatched under the retry budget.
  int keepalive_interval_ms = 2000;
  /// Remote isolation only: how long a pinged worker has to pong.
  int keepalive_timeout_ms = 2000;
  /// Deterministic network fault injection on the supervisor's outgoing
  /// frames to socket workers (--inject-net; net/fault.hpp grammar).
  /// Remote isolation only; exists to chaos-test the fabric.
  std::optional<net::NetFaultSpec> inject_net;
  /// Append-only journal path; empty disables journaling. Every finished
  /// job is serialized and flushed as one RFC-4180 CSV record, so a killed
  /// campaign loses at most the in-flight jobs. A fresh (empty/missing)
  /// file gets a header line carrying campaign_fingerprint(spec).
  std::string journal_path;
  /// Journal checkpoint/compaction cadence: after every N successful
  /// appends the completed-job set is snapshotted into a sealed
  /// `<journal>.checkpoint` artifact (written atomically) and the live
  /// journal is compacted back to its header, so resuming a huge campaign
  /// replays checkpoint + bounded tail instead of the full append log —
  /// bit-identically (read_campaign_journal_with_checkpoint). 0 disables.
  std::size_t checkpoint_every = 0;
  /// Deterministic filesystem fault injection on journal appends and
  /// checkpoint commits (--inject-fs; io/fs_fault.hpp grammar). A fault
  /// surfaces as CampaignResult::artifact_error, never as silent success.
  std::optional<io::FsFaultSpec> inject_fs;
  /// Completed jobs from a previous run (read_campaign_journal). Indices of
  /// journaled *ok* entries are skipped — the result is restored
  /// bit-identically — while journaled failures (a crashed worker, an
  /// exhausted retry budget) are re-executed, so resuming a campaign after
  /// fixing its environment heals it. The fingerprint must match the spec
  /// being run. Metrics/timeline campaigns cannot be resumed (snapshots are
  /// not journaled).
  std::optional<CampaignJournal> resume;
};

class CampaignEngine {
 public:
  /// `jobs` = worker-thread count; <= 0 selects hardware concurrency.
  explicit CampaignEngine(int jobs = 0);

  [[nodiscard]] int jobs() const noexcept { return jobs_; }

  /// Expands the grid without running it. Throws std::invalid_argument when
  /// a kernel filter entry matches no workload.
  [[nodiscard]] static std::vector<CampaignJob> expand(const SweepSpec& spec);

  /// Runs the whole campaign.
  [[nodiscard]] CampaignResult run(const SweepSpec& spec) const {
    return run(spec, CampaignRunOptions{});
  }

  /// Runs the whole campaign with crash-safety options (retry, timeout,
  /// journaling, resume).
  [[nodiscard]] CampaignResult run(const SweepSpec& spec,
                                   const CampaignRunOptions& options) const;

 private:
  int jobs_;
};

/// Journal-v2 schema tag: first field of a journal's header record. v2
/// appended the "end" sentinel field to every record (torn-write detection
/// inside the final field); v1 journals are rejected by the header check
/// rather than half-parsed. Shared by the engine's journal writer, the
/// workerd shards, and tmemo_journal merge.
inline constexpr std::string_view kCampaignJournalSchema = "tmemo-journal-v2";

/// First field of the end-sentinel record that seals a complete journal
/// artifact (merge output, checkpoint): "tmemo-journal-end,<record count>".
/// A sealed journal (header's third field is "sealed") must close with this
/// record, newline-terminated and count-matched, so *every* byte truncation
/// of the artifact is rejected on read — the journal twin of the CSV grid's
/// io::verify_artifact_footer.
inline constexpr std::string_view kCampaignJournalEndRecord =
    "tmemo-journal-end";

/// Marker appended to the header record of sealed journal artifacts.
inline constexpr std::string_view kCampaignJournalSealedMark = "sealed";

/// Stable identity of a campaign grid (axis, scale, seed, kernels,
/// thresholds, variant labels): a journal written for one spec refuses to
/// resume another. Variant labels — not their configs — enter the
/// fingerprint, so keep ablation labels unique.
[[nodiscard]] std::string campaign_fingerprint(const SweepSpec& spec);

/// 64-bit identity of a campaign for the remote-worker handshake
/// (net/frame.hpp HelloFrame::campaign_digest): the fingerprint text plus
/// the variant *configurations* — a remote worker rebuilds the spec from
/// its own flags, so config drift (say, a differing --lut-depth) must be
/// caught at registration, not discovered as silently different grids.
[[nodiscard]] std::uint64_t campaign_wire_digest(const SweepSpec& spec);

/// Torn-write-safe append-only journal writer: each row is written with one
/// write(2) and fsynced before append() returns, so a host crash loses at
/// most the row in flight. Used by CampaignEngine for the campaign journal
/// and by tmemo_workerd for its local shard (both produce the same
/// journal-v2 format; tmemo_journal merge folds shards back together).
class CampaignJournalWriter {
 public:
  CampaignJournalWriter() = default;
  ~CampaignJournalWriter();
  CampaignJournalWriter(const CampaignJournalWriter&) = delete;
  CampaignJournalWriter& operator=(const CampaignJournalWriter&) = delete;

  /// Enables checkpoint/compaction (every `checkpoint_every` appends; 0
  /// disables) and, optionally, --inject-fs fault injection on appends and
  /// checkpoint commits. Must be called before open().
  void configure(std::size_t checkpoint_every,
                 const std::optional<io::FsFaultSpec>& inject_fs);

  /// Opens `path` for appending. A fresh (missing/empty) file gets the
  /// journal-v2 header carrying `fingerprint`; an existing file has a torn
  /// trailing record truncated away so the next append starts on a record
  /// boundary. With checkpointing configured, the completed-job set is
  /// reloaded from `<path>.checkpoint` plus the live tail so the next
  /// snapshot stays complete. Throws via TM_REQUIRE on open/truncate
  /// failure and io::IoError on a bad checkpoint.
  void open(const std::string& path, const std::string& fingerprint);

  [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }

  /// Appends one finished job (serialize_job_result), write+fsync. Throws
  /// io::IoError on an injected fault and std::invalid_argument (via
  /// TM_REQUIRE) on a real write/fsync failure; after a throw the writer
  /// closes itself — the journal on disk stays readable (a torn tail at
  /// worst) but must not receive further appends.
  void append(const JobResult& result);

  /// Checkpoints appended since open (for reporting).
  [[nodiscard]] std::size_t checkpoints_written() const noexcept {
    return checkpoints_written_;
  }

  void close();

 private:
  void append_raw(const std::string& row);
  /// Snapshots the completed-job set into the sealed checkpoint artifact
  /// (atomic temp→fsync→rename), then compacts the live journal back to
  /// its header. Throws io::IoError on failure; the live journal is only
  /// truncated after the checkpoint is durable, so every crash window
  /// resumes bit-identically to full replay.
  void write_checkpoint();

  int fd_ = -1;
  std::string path_;
  std::string fingerprint_;
  /// Byte length of the header record; compaction truncates back to this.
  std::uint64_t header_bytes_ = 0;
  std::size_t checkpoint_every_ = 0;
  std::size_t appends_since_checkpoint_ = 0;
  std::size_t checkpoints_written_ = 0;
  std::optional<io::FsFaultSpec> inject_fs_;
  io::FsFaultInjector injector_;
  /// Winning serialized record per job index (later appends overwrite
  /// earlier ones, matching full-replay resume semantics). Only populated
  /// when checkpointing is configured.
  std::map<std::size_t, std::string> rows_;
};

/// The checkpoint artifact that sits beside a checkpointed journal.
[[nodiscard]] std::string campaign_checkpoint_path(
    const std::string& journal_path);

/// Reads a journal produced by a journaling run. For an append journal,
/// tolerates a truncated final record (the crash case); malformed rows are
/// skipped and counted. For a *sealed* journal artifact (header marked
/// "sealed": merge outputs, checkpoints) the tolerance inverts: any torn,
/// malformed, missing-end-sentinel or count-mismatched state throws, so no
/// byte truncation can pass as a smaller-but-complete journal. Throws
/// std::runtime_error when the header is missing, unrecognized, or torn.
[[nodiscard]] CampaignJournal read_campaign_journal(std::istream& in);

/// Reads the resumable state of a (possibly checkpointed) journal at
/// `path`: the sealed `<path>.checkpoint` artifact first, when present
/// (verified strictly — a corrupt checkpoint throws), then the live tail
/// at `path` with the usual torn-tolerance; tail entries come last so
/// resume's later-entry-wins rule reproduces full-journal replay
/// bit-identically. The two files must agree on the fingerprint.
[[nodiscard]] CampaignJournal read_campaign_journal_with_checkpoint(
    const std::string& path);

/// Reads one RFC-4180 CSV record (quoted fields may span lines) from `in`
/// into `fields`. Returns false at end of input. Exposed for tests of the
/// quoting round-trip.
[[nodiscard]] bool read_csv_record(std::istream& in,
                                   std::vector<std::string>& fields);

/// Serializes one JobResult as a journal CSV record (trailing '\n'
/// included). Every numeric field uses round-trippable formatting, so
/// parse_job_result restores it bit-identically. This row format doubles as
/// the worker pipe protocol's result payload (sim/worker_proc.cpp).
[[nodiscard]] std::string serialize_job_result(const JobResult& result);

/// Restores a JobResult from the fields of one journal record. Only
/// job.index and the measured fields are restored (the caller re-derives
/// the rest of the CampaignJob from the spec). Returns false on any
/// malformed or missing field.
[[nodiscard]] bool parse_job_result(const std::vector<std::string>& fields,
                                    JobResult& out);

/// Writes one row per job: identity, operating point, seed, measurements,
/// verification, wall time, status.
void write_campaign_csv(const CampaignResult& result, std::ostream& out);

/// Writes the whole campaign as a single JSON object
/// (schema "tmemo-campaign-v1"), round-trippable doubles.
void write_campaign_json(const CampaignResult& result, std::ostream& out);

} // namespace tmemo
