// Campaign engine: bulk execution of the paper's result grids.
//
// The paper's figures are grids of independent runs — 7 kernels x error
// rates 0..4% (Fig. 10), 6 kernels x supplies 0.9..0.8 V (Fig. 11), each
// optionally crossed with thresholds and configuration ablations. A
// SweepSpec describes such a grid declaratively; the CampaignEngine expands
// it into a stable-ordered job list and runs the jobs on a thread pool.
//
// Determinism: every job's device seed is derived from the campaign seed
// and the job index (derive_job_seed), and each worker thread builds its
// own private workload set, so a campaign produces bit-identical
// CampaignResults for any worker count. A throwing job records an error
// entry instead of killing the campaign.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulation.hpp"

namespace tmemo {

/// One swept independent-variable axis, expanded into `count` evenly spaced
/// points from `start` to `stop` inclusive (count == 1 pins `start`).
struct SweepAxis {
  enum class Kind { kErrorRate, kVoltage };

  Kind kind = Kind::kErrorRate;
  double start = 0.0;
  double stop = 0.0;
  int count = 1;

  [[nodiscard]] static SweepAxis error_rate(double start, double stop,
                                            int count);
  [[nodiscard]] static SweepAxis voltage(double start, double stop, int count);
  /// Single fixed operating point.
  [[nodiscard]] static SweepAxis error_rate_point(double rate) {
    return error_rate(rate, rate, 1);
  }
  [[nodiscard]] static SweepAxis voltage_point(Volt supply) {
    return voltage(supply, supply, 1);
  }

  /// The axis values in sweep order.
  [[nodiscard]] std::vector<double> points() const;

  /// Parses the CLI axis syntax "error-rate:START:STOP:COUNT" or
  /// "voltage:START:STOP:COUNT" (e.g. "error-rate:0:0.04:9"). Returns
  /// nullopt on malformed input.
  [[nodiscard]] static std::optional<SweepAxis> parse(std::string_view text);

  [[nodiscard]] std::string_view kind_name() const noexcept {
    return kind == Kind::kErrorRate ? "error-rate" : "voltage";
  }
};

/// A named ExperimentConfig ablation of the campaign grid.
struct ConfigVariant {
  std::string label = "base";
  ExperimentConfig config;
};

/// Produces a private workload set for one worker thread. Each worker calls
/// the factory once, so Workload implementations need no thread safety. The
/// factory must be deterministic: every invocation must return the same
/// workloads in the same order.
using WorkloadFactory =
    std::function<std::vector<std::unique_ptr<Workload>>()>;

/// Declarative description of a results grid:
/// variants x workloads x thresholds x axis points.
struct SweepSpec {
  /// Problem scale for make_all_workloads() when `factory` is unset.
  double scale = 0.04;
  /// Case-insensitive kernel-name filter; empty (or containing "all")
  /// selects every workload the factory provides.
  std::vector<std::string> kernels;
  /// Overrides the default make_all_workloads(scale) workload set.
  WorkloadFactory factory;
  SweepAxis axis;
  /// Threshold overrides; empty = each workload's Table-1 default.
  std::vector<float> thresholds;
  /// Config ablations; empty = a single base-config variant.
  std::vector<ConfigVariant> variants;
  /// Per-job device seeds derive from this and the job index, so results do
  /// not depend on the worker count or scheduling.
  std::uint64_t campaign_seed = 0x5eed;
  /// Collect telemetry metrics for every job; the per-run snapshots are
  /// merged (in job-index order, but the merge is order-independent) into
  /// CampaignResult::metrics.
  bool metrics = false;
  /// Record the event timeline of job 0 (the representative run; recording
  /// every job would multiply memory for little insight). Implies metrics
  /// for that job.
  bool timeline = false;
};

/// Deterministic per-job seed (splitmix-style mix of campaign seed and job
/// index) — the seed RunSpec::seed() is set to for job `index`.
[[nodiscard]] std::uint64_t derive_job_seed(std::uint64_t campaign_seed,
                                            std::size_t index);

/// One expanded grid cell. `index` is the job's position in the stable
/// expansion order: variants outermost, then workloads, then thresholds,
/// then axis points innermost.
struct CampaignJob {
  std::size_t index = 0;
  std::size_t workload_index = 0;
  std::string kernel;
  std::size_t variant_index = 0;
  std::string variant_label;
  double axis_value = 0.0;
  RunSpec spec = RunSpec::at_error_rate(0.0);
};

/// Outcome of one job. ok == false means the run threw: `error` holds the
/// exception text and `report` is default-constructed.
struct JobResult {
  CampaignJob job;
  KernelRunReport report;
  bool ok = false;
  std::string error;
  double wall_ms = 0.0;
};

/// All job results, ordered by CampaignJob::index regardless of which
/// worker finished when.
struct CampaignResult {
  std::vector<JobResult> jobs;
  double wall_ms = 0.0; ///< whole-campaign wall time
  int workers = 1;      ///< worker threads actually used

  /// Merged telemetry over every ok job (empty unless SweepSpec::metrics).
  /// Bit-identical for any worker count: all instruments are uint64 and
  /// merge commutatively (see telemetry/metrics.hpp).
  telemetry::MetricsSnapshot metrics;
  /// Job 0's event timeline (null unless SweepSpec::timeline and job 0 ran).
  std::shared_ptr<const telemetry::Timeline> timeline;

  [[nodiscard]] std::size_t failed() const noexcept;
  [[nodiscard]] bool all_ok() const noexcept { return failed() == 0; }
  /// Every job ran and its host verification passed.
  [[nodiscard]] bool all_passed() const noexcept;
};

class CampaignEngine {
 public:
  /// `jobs` = worker-thread count; <= 0 selects hardware concurrency.
  explicit CampaignEngine(int jobs = 0);

  [[nodiscard]] int jobs() const noexcept { return jobs_; }

  /// Expands the grid without running it. Throws std::invalid_argument when
  /// a kernel filter entry matches no workload.
  [[nodiscard]] static std::vector<CampaignJob> expand(const SweepSpec& spec);

  /// Runs the whole campaign.
  [[nodiscard]] CampaignResult run(const SweepSpec& spec) const;

 private:
  int jobs_;
};

/// Writes one row per job: identity, operating point, seed, measurements,
/// verification, wall time, status.
void write_campaign_csv(const CampaignResult& result, std::ostream& out);

/// Writes the whole campaign as a single JSON object
/// (schema "tmemo-campaign-v1"), round-trippable doubles.
void write_campaign_json(const CampaignResult& result, std::ostream& out);

} // namespace tmemo
