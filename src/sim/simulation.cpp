#include "sim/simulation.hpp"

namespace tmemo {

Simulation::Simulation(ExperimentConfig config) : config_(std::move(config)) {
  config_.device.validate();
}

KernelRunReport Simulation::run_at_error_rate(const Workload& workload,
                                              double error_rate,
                                              std::optional<float> threshold) {
  auto report =
      run(workload,
          error_rate > 0.0
              ? std::shared_ptr<const TimingErrorModel>(
                    std::make_shared<FixedRateErrorModel>(error_rate))
              : std::shared_ptr<const TimingErrorModel>(
                    std::make_shared<NoErrorModel>()),
          config_.energy.nominal_voltage, threshold);
  report.error_rate_configured = error_rate;
  return report;
}

KernelRunReport Simulation::run_at_voltage(const Workload& workload,
                                           Volt supply,
                                           std::optional<float> threshold) {
  const VoltageScaling scaling(config_.voltage);
  auto report = run(workload,
                    std::make_shared<VoltageErrorModel>(scaling, supply),
                    supply, threshold);
  return report;
}

KernelRunReport Simulation::run(const Workload& workload,
                                std::shared_ptr<const TimingErrorModel> errors,
                                Volt supply, std::optional<float> threshold) {
  const VoltageScaling scaling(config_.voltage);
  const EnergyModel energy(config_.energy, scaling);
  GpuDevice device(config_.device, energy);

  // Error-tolerant (image) kernels program the fraction-LSB masking vector
  // from their threshold (paper §4.2); the numeric kernels use the absolute
  // Eq.-1 threshold constraint. threshold <= 0 means exact matching.
  const float t = threshold.value_or(workload.table1_threshold());
  if (t <= 0.0f) {
    device.program_exact();
  } else if (workload.error_tolerant()) {
    device.program_threshold_as_mask(t);
  } else {
    device.program_threshold(t);
  }
  device.set_commutativity(config_.commutativity);
  if (!config_.memoization) device.set_power_gated(true);
  if (config_.spatial) device.set_spatial_memoization(true);
  device.set_error_model(std::move(errors));
  device.set_fpu_supply(supply);

  KernelRunReport report;
  report.kernel = std::string(workload.name());
  report.input_parameter = workload.input_parameter();
  report.threshold = t;
  report.supply = supply;
  report.result = workload.run(device);
  report.unit_stats = device.unit_stats();
  report.weighted_hit_rate = device.weighted_hit_rate();
  report.energy = device.energy();
  return report;
}

} // namespace tmemo
