#include "sim/simulation.hpp"

#include "common/require.hpp"
#include "telemetry/collector.hpp"

namespace tmemo {

Simulation::Simulation(ExperimentConfig config) : config_(std::move(config)) {
  config_.device.validate();
}

KernelRunReport Simulation::run(const Workload& workload,
                                const RunSpec& spec) const {
  const VoltageScaling scaling(config_.voltage);
  const EnergyModel energy(config_.energy, scaling);

  // Resolve the timing-error environment from the spec's axis.
  std::shared_ptr<const TimingErrorModel> errors;
  Volt supply = config_.energy.nominal_voltage;
  switch (spec.axis()) {
    case RunSpec::Axis::kErrorRate:
      errors = spec.error_rate() > 0.0
                   ? std::shared_ptr<const TimingErrorModel>(
                         std::make_shared<FixedRateErrorModel>(
                             spec.error_rate()))
                   : std::shared_ptr<const TimingErrorModel>(
                         std::make_shared<NoErrorModel>());
      break;
    case RunSpec::Axis::kVoltage:
      supply = spec.supply().value_or(supply);
      errors = std::make_shared<VoltageErrorModel>(scaling, supply);
      break;
    case RunSpec::Axis::kExplicitModel:
      TM_REQUIRE(spec.model() != nullptr,
                 "RunSpec::with_model requires a non-null error model");
      supply = spec.supply().value_or(supply);
      errors = spec.model();
      break;
  }

  DeviceConfig device_config = config_.device;
  if (spec.seed()) device_config.seed = *spec.seed();
  GpuDevice device(device_config, energy);

  // Error-tolerant (image) kernels program the fraction-LSB masking vector
  // from their threshold (paper §4.2); the numeric kernels use the absolute
  // Eq.-1 threshold constraint. threshold <= 0 means exact matching.
  const float t = spec.threshold().value_or(workload.table1_threshold());
  if (t <= 0.0f) {
    device.program_exact();
  } else if (workload.error_tolerant()) {
    device.program_threshold_as_mask(t);
  } else {
    device.program_threshold(t);
  }
  device.set_commutativity(config_.commutativity);
  if (!config_.memoization) device.set_power_gated(true);
  if (config_.spatial) device.set_spatial_memoization(true);
  device.set_error_model(std::move(errors));
  device.set_fpu_supply(supply);

  // Telemetry is opt-in per run: without it no sink is attached and the
  // device's probe sites stay on their no-cost null path.
  std::unique_ptr<telemetry::TelemetryCollector> collector;
  if (spec.metrics() || spec.timeline()) {
    telemetry::CollectorConfig tcfg;
    tcfg.timeline = spec.timeline();
    collector = std::make_unique<telemetry::TelemetryCollector>(tcfg);
    collector->registry().gauge("run.compute_units")
        .set(static_cast<std::uint64_t>(device_config.compute_units));
    collector->registry().gauge("run.stream_cores_per_cu")
        .set(static_cast<std::uint64_t>(device_config.stream_cores_per_cu));
    collector->registry().gauge("run.lut_depth")
        .set(static_cast<std::uint64_t>(device_config.fpu.lut_depth));
    device.set_telemetry(collector.get());
  }

  KernelRunReport report;
  report.kernel = std::string(workload.name());
  report.input_parameter = workload.input_parameter();
  report.threshold = t;
  report.supply = supply;
  if (spec.axis() == RunSpec::Axis::kErrorRate) {
    report.error_rate_configured = spec.error_rate();
  }
  report.result = workload.run(device);
  report.unit_stats = device.unit_stats();
  report.weighted_hit_rate = device.weighted_hit_rate();
  report.energy = device.energy();
  if (collector) {
    device.set_telemetry(nullptr);
    report.metrics = collector->finish();
    report.timeline = collector->take_timeline();
  }
  return report;
}

} // namespace tmemo
