// RunSpec — the single vocabulary for describing one simulation run.
//
// A RunSpec names the timing-error environment (a fixed per-instruction
// error rate, a voltage-overscaling operating point, or an explicit
// TimingErrorModel), plus the optional per-run overrides: the matching
// threshold and the device seed. The campaign engine, the CLI and the tests
// all build RunSpecs instead of picking between Simulation::run_* overloads:
//
//   sim.run(haar, RunSpec::at_error_rate(0.02));             // Fig. 10 point
//   sim.run(sobel, RunSpec::at_voltage(0.82).threshold(0.8f));// Fig. 11 point
//   sim.run(fwt, RunSpec::at_error_rate(0.0).seed(42));       // pinned seed
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "common/types.hpp"
#include "timing/error_model.hpp"

namespace tmemo {

class RunSpec {
 public:
  /// Which independent variable the run fixes.
  enum class Axis {
    kErrorRate,     ///< fixed per-instruction error rate (Fig. 10)
    kVoltage,       ///< voltage-overscaled supply, alpha-power errors (Fig. 11)
    kExplicitModel, ///< caller-supplied TimingErrorModel + supply
  };

  /// Run at a fixed per-instruction timing-error rate, FPUs at the nominal
  /// supply (rate 0 means error-free execution).
  [[nodiscard]] static RunSpec at_error_rate(double rate) {
    RunSpec s;
    s.axis_ = Axis::kErrorRate;
    s.error_rate_ = rate;
    return s;
  }

  /// Run in the voltage-overscaling regime: FPU supply at `supply`, errors
  /// from the alpha-power delay model, memoization module at nominal.
  [[nodiscard]] static RunSpec at_voltage(Volt supply) {
    RunSpec s;
    s.axis_ = Axis::kVoltage;
    s.supply_ = supply;
    return s;
  }

  /// Run with an explicit error model and FPU supply.
  [[nodiscard]] static RunSpec with_model(
      std::shared_ptr<const TimingErrorModel> model, Volt supply) {
    RunSpec s;
    s.axis_ = Axis::kExplicitModel;
    s.model_ = std::move(model);
    s.supply_ = supply;
    return s;
  }

  /// Overrides the workload's Table-1 matching threshold (<= 0 programs
  /// exact matching).
  RunSpec& threshold(float t) {
    threshold_ = t;
    return *this;
  }

  /// Overrides the device seed for this run only; every FPU's EDS stream is
  /// derived from it, so two runs with equal specs are bit-identical.
  RunSpec& seed(std::uint64_t s) {
    seed_ = s;
    return *this;
  }

  /// Collects a telemetry MetricsSnapshot for this run (attaches a
  /// TelemetryCollector to the device; see docs/OBSERVABILITY.md). Off by
  /// default: with no sink attached the hot paths pay no probe cost.
  RunSpec& metrics(bool on) {
    metrics_ = on;
    return *this;
  }

  /// Additionally records the per-run event timeline (implies metrics).
  RunSpec& timeline(bool on) {
    timeline_ = on;
    return *this;
  }

  [[nodiscard]] Axis axis() const noexcept { return axis_; }
  /// Configured rate; meaningful on the kErrorRate axis only.
  [[nodiscard]] double error_rate() const noexcept { return error_rate_; }
  /// FPU supply; empty means the config's nominal voltage.
  [[nodiscard]] std::optional<Volt> supply() const noexcept { return supply_; }
  [[nodiscard]] const std::shared_ptr<const TimingErrorModel>& model()
      const noexcept {
    return model_;
  }
  [[nodiscard]] std::optional<float> threshold() const noexcept {
    return threshold_;
  }
  [[nodiscard]] std::optional<std::uint64_t> seed() const noexcept {
    return seed_;
  }
  [[nodiscard]] bool metrics() const noexcept { return metrics_; }
  [[nodiscard]] bool timeline() const noexcept { return timeline_; }

 private:
  RunSpec() = default;

  Axis axis_ = Axis::kErrorRate;
  double error_rate_ = 0.0;
  std::optional<Volt> supply_;
  std::shared_ptr<const TimingErrorModel> model_;
  std::optional<float> threshold_;
  std::optional<std::uint64_t> seed_;
  bool metrics_ = false;
  bool timeline_ = false;
};

} // namespace tmemo
