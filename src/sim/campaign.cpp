#include "sim/campaign.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <iterator>
#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "common/require.hpp"
#include "io/artifact_footer.hpp"
#include "io/atomic_file.hpp"
#include "net/transport.hpp"
#include "sim/worker_proc.hpp"

namespace tmemo {

namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

// Wall-clock reads are confined to wall_now() (lint rule R1): its values
// feed only the wall_ms reporting fields, never simulation results, which
// is why wall_ms is the one column the CI determinism check ignores.
std::chrono::steady_clock::time_point wall_now() {
  return std::chrono::steady_clock::now();
}

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(wall_now() - since)
      .count();
}

/// Shortest round-trippable decimal form of a double.
std::string fmt_double(double v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  TM_REQUIRE(ec == std::errc{}, "double formatting");
  return std::string(buf, ptr);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// RFC-4180 quoting: a field containing a comma, quote, LF or CR is wrapped
// in quotes with embedded quotes doubled. CR matters: an error message
// carrying "\r\n" written unquoted would split one row into two.
std::string csv_escape(std::string_view s) {
  if (s.find_first_of(",\"\n\r") == std::string_view::npos) {
    return std::string(s);
  }
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

// ---------------------------------------------------------------------------
// Campaign journal (crash-safe resume).
//
// The journal is a CSV file: one header record ("tmemo-journal-v2" plus the
// campaign fingerprint) followed by one record per finished job. Every
// numeric field uses the shortest round-trippable decimal form (fmt_double),
// so a journaled JobResult restores bit-identically.


/// FpuStats counters in journal order. One list serves both pack and
/// unpack, so the journal cannot drift from the struct.
constexpr std::uint64_t FpuStats::* kFpuStatFields[] = {
    &FpuStats::instructions,        &FpuStats::hits,
    &FpuStats::timing_errors,       &FpuStats::masked_errors,
    &FpuStats::recoveries,          &FpuStats::recovery_cycles,
    &FpuStats::active_stage_cycles, &FpuStats::gated_stage_cycles,
    &FpuStats::lut_updates,         &FpuStats::seu_flips,
    &FpuStats::parity_invalidations, &FpuStats::corrupt_reuses,
    &FpuStats::eds_false_negatives, &FpuStats::eds_false_positives,
    &FpuStats::sdc_ops};
constexpr std::size_t kFpuStatFieldCount = std::size(kFpuStatFields);

/// Journal record layout (field indices). kJournalFieldCount pins the
/// record width; parse_job_result rejects any other width.
enum JournalField : std::size_t {
  kJfIndex = 0,
  kJfAttempts,
  kJfTimedOut,
  kJfOk,
  kJfError,
  kJfKernel,
  kJfParam,
  kJfThreshold,
  kJfSupply,
  kJfErrorRate,
  kJfHitRate,
  kJfEnergyMemo,
  kJfEnergyBase,
  kJfOutputValues,
  kJfMaxAbsError,
  kJfMeanAbsError,
  kJfRelRmsError,
  kJfSdcValues,
  kJfPassed,
  kJfUnitStats,
  kJfWallMs,
  kJfEnd, // constant "end" sentinel: rejects records torn inside the
          // final value field, which would otherwise parse truncated
  kJournalFieldCount
};

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool parse_double(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

bool parse_bool(const std::string& s, bool& out) {
  if (s == "0") {
    out = false;
  } else if (s == "1") {
    out = true;
  } else {
    return false;
  }
  return true;
}

/// 9 unit groups separated by ';', counters within a group by ':'.
std::string pack_unit_stats(const std::array<FpuStats, kNumFpuTypes>& units) {
  std::string out;
  for (std::size_t u = 0; u < units.size(); ++u) {
    if (u != 0) out += ';';
    for (std::size_t f = 0; f < kFpuStatFieldCount; ++f) {
      if (f != 0) out += ':';
      out += std::to_string(units[u].*kFpuStatFields[f]);
    }
  }
  return out;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t p = s.find(sep, start);
    out.push_back(s.substr(start, p - start));
    if (p == std::string::npos) return out;
    start = p + 1;
  }
}

bool unpack_unit_stats(const std::string& s,
                       std::array<FpuStats, kNumFpuTypes>& units) {
  const std::vector<std::string> groups = split(s, ';');
  if (groups.size() != units.size()) return false;
  for (std::size_t u = 0; u < units.size(); ++u) {
    const std::vector<std::string> counters = split(groups[u], ':');
    if (counters.size() != kFpuStatFieldCount) return false;
    for (std::size_t f = 0; f < kFpuStatFieldCount; ++f) {
      if (!parse_u64(counters[f], units[u].*kFpuStatFields[f])) return false;
    }
  }
  return true;
}

/// Byte length of the longest journal prefix made of complete, newline-
/// terminated CSV records. Each record is appended with a single write(),
/// so a crash tears at most the final one; everything past the last intact
/// record boundary is the torn tail. read_csv_record leaves the stream in
/// EOF state (tellg() == -1) exactly when the final record was cut short.
/// `header_bytes` (optional) receives the end of the first record — the
/// boundary journal compaction truncates back to.
std::uint64_t intact_journal_prefix(std::istream& in,
                                    std::uint64_t* header_bytes = nullptr) {
  std::vector<std::string> fields;
  std::streampos last_good = 0;
  bool first = true;
  while (read_csv_record(in, fields)) {
    const std::streampos pos = in.tellg();
    if (pos == std::streampos(-1)) break;
    if (first && header_bytes != nullptr) {
      *header_bytes = static_cast<std::uint64_t>(pos);
    }
    first = false;
    last_good = pos;
  }
  return static_cast<std::uint64_t>(last_good);
}

/// Write `size` bytes to `fd`, EINTR-safe, without fsync. Returns false on
/// a real write failure (errno preserved).
bool write_fd_all(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ::ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

} // namespace

CampaignJournalWriter::~CampaignJournalWriter() { close(); }

void CampaignJournalWriter::configure(
    std::size_t checkpoint_every,
    const std::optional<io::FsFaultSpec>& inject_fs) {
  TM_REQUIRE(fd_ < 0, "campaign journal must be configured before open()");
  checkpoint_every_ = checkpoint_every;
  inject_fs_ = inject_fs;
}

void CampaignJournalWriter::open(const std::string& path,
                                 const std::string& fingerprint) {
  TM_REQUIRE(fd_ < 0, "campaign journal is already open");
  path_ = path;
  fingerprint_ = fingerprint;
  header_bytes_ = 0;
  appends_since_checkpoint_ = 0;
  rows_.clear();
  injector_ = inject_fs_.has_value()
                  ? io::FsFaultInjector(*inject_fs_,
                                        io::fs_fault_path_salt(path))
                  : io::FsFaultInjector();
  bool fresh = true;
  {
    std::ifstream probe(path);
    fresh = !probe.good() ||
            std::ifstream::traits_type::eq_int_type(
                probe.peek(), std::ifstream::traits_type::eof());
  }
  std::uint64_t keep_bytes = 0;
  if (!fresh) {
    // Drop a torn trailing record (a crash mid-append) before appending,
    // so the next record starts on a record boundary instead of fusing
    // with the partial line.
    std::ifstream scan(path, std::ios::binary);
    keep_bytes = intact_journal_prefix(scan, &header_bytes_);
  }
  if (checkpoint_every_ > 0) {
    // Reload the completed-job set (checkpoint first, then the live tail,
    // later entries winning) so the next snapshot is complete rather than
    // a window of this session's appends.
    const std::string cpath = campaign_checkpoint_path(path);
    std::ifstream cp_in(cpath, std::ios::binary);
    if (cp_in.is_open() &&
        !std::ifstream::traits_type::eq_int_type(
            cp_in.peek(), std::ifstream::traits_type::eof())) {
      const CampaignJournal cp = read_campaign_journal(cp_in);
      TM_REQUIRE(cp.sealed, "journal checkpoint is not sealed: " + cpath);
      TM_REQUIRE(cp.fingerprint == fingerprint,
                 "journal checkpoint belongs to a different campaign: " +
                     cpath);
      for (const JobResult& e : cp.entries) {
        rows_[e.job.index] = serialize_job_result(e);
      }
    }
    if (!fresh && keep_bytes > header_bytes_) {
      std::ifstream tail(path, std::ios::binary);
      const CampaignJournal live = read_campaign_journal(tail);
      TM_REQUIRE(live.fingerprint == fingerprint,
                 "journal belongs to a different campaign: " + path);
      for (const JobResult& e : live.entries) {
        rows_[e.job.index] = serialize_job_result(e);
      }
    }
  }
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  TM_REQUIRE(fd_ >= 0, "cannot open campaign journal for append: " + path);
  if (fresh) {
    const std::string header = std::string(kCampaignJournalSchema) + ',' +
                               csv_escape(fingerprint) + '\n';
    header_bytes_ = header.size();
    append_raw(header);
  } else {
    // With O_APPEND, writes land at the new end-of-file.
    TM_REQUIRE(::ftruncate(fd_, static_cast<::off_t>(keep_bytes)) == 0,
               "cannot truncate torn campaign journal tail");
  }
}

void CampaignJournalWriter::append(const JobResult& result) {
  TM_REQUIRE(fd_ >= 0, "campaign journal is not open");
  const std::string row = serialize_job_result(result);
  if (injector_.enabled()) {
    switch (injector_.next_action()) {
      case io::FsFaultAction::kPass:
        break;
      case io::FsFaultAction::kShortWrite:
      case io::FsFaultAction::kTornAtByte: {
        // The append tears mid-record: a prefix lands on disk (the torn
        // tail the tolerant reader already skips) and the failure
        // surfaces. The writer closes so nothing fuses with the tear.
        const std::size_t cut = injector_.cut_point(row.size());
        (void)write_fd_all(fd_, row.data(), cut);
        close();
        throw io::IoError(path_, "journal append torn (injected)", 0, true);
      }
      case io::FsFaultAction::kEnospc:
        close();
        throw io::IoError(path_, "journal append", ENOSPC, true);
      case io::FsFaultAction::kEio:
        close();
        throw io::IoError(path_, "journal append", EIO, true);
      case io::FsFaultAction::kFsyncFail:
        // The record was written but never made durable; whether it
        // survives is the filesystem's coin flip, which the tolerant
        // reader handles either way.
        (void)write_fd_all(fd_, row.data(), row.size());
        close();
        throw io::IoError(path_, "journal fsync", EIO, true);
      case io::FsFaultAction::kCrashBeforeRename:
        close();
        throw io::IoError(path_, "journal append crashed (injected)", 0,
                          true);
    }
  }
  append_raw(row);
  if (checkpoint_every_ > 0) {
    rows_[result.job.index] = row;
    if (++appends_since_checkpoint_ >= checkpoint_every_) {
      write_checkpoint();
    }
  }
}

void CampaignJournalWriter::write_checkpoint() {
  // Snapshot first, compact second: the live tail is only discarded once
  // the sealed checkpoint is durable at its final path, so a crash in any
  // window leaves checkpoint + tail resuming bit-identically.
  const std::string cpath = campaign_checkpoint_path(path_);
  io::AtomicFileWriter writer;
  if (inject_fs_.has_value()) {
    writer.open(cpath, *inject_fs_);
  } else {
    writer.open(cpath);
  }
  std::ostream& out = writer.stream();
  out << kCampaignJournalSchema << ',' << csv_escape(fingerprint_) << ','
      << kCampaignJournalSealedMark << '\n';
  for (const auto& [index, row] : rows_) {
    (void)index;
    out << row;
  }
  out << kCampaignJournalEndRecord << ',' << rows_.size() << '\n';
  writer.commit(); // throws io::IoError on real or injected failure
  ++checkpoints_written_;
  appends_since_checkpoint_ = 0;
  if (header_bytes_ > 0) {
    TM_REQUIRE(::ftruncate(fd_, static_cast<::off_t>(header_bytes_)) == 0,
               "cannot compact checkpointed journal: " + path_);
    TM_REQUIRE(::fsync(fd_) == 0 || errno == EINVAL || errno == EROFS,
               "journal compaction fsync failed");
  }
}

void CampaignJournalWriter::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::string campaign_checkpoint_path(const std::string& journal_path) {
  return journal_path + ".checkpoint";
}

void CampaignJournalWriter::append_raw(const std::string& row) {
  std::size_t off = 0;
  while (off < row.size()) {
    const ::ssize_t n = ::write(fd_, row.data() + off, row.size() - off);
    if (n < 0) {
      TM_REQUIRE(errno == EINTR, "campaign journal write failed");
      continue;
    }
    off += static_cast<std::size_t>(n);
  }
  // Flush + fsync per record: the journal exists precisely for the crash
  // case, so buffering rows would defeat it.
  TM_REQUIRE(::fsync(fd_) == 0 || errno == EINVAL || errno == EROFS,
             "campaign journal fsync failed");
}

std::string serialize_job_result(const JobResult& j) {
  std::string row;
  const auto add = [&row](std::string_view field) {
    if (!row.empty()) row += ',';
    row += csv_escape(field);
  };
  add(std::to_string(j.job.index));
  add(std::to_string(j.attempts));
  add(j.timed_out ? "1" : "0");
  add(j.ok ? "1" : "0");
  add(j.error);
  add(j.report.kernel);
  add(j.report.input_parameter);
  add(fmt_double(static_cast<double>(j.report.threshold)));
  add(fmt_double(j.report.supply));
  add(fmt_double(j.report.error_rate_configured));
  add(fmt_double(j.report.weighted_hit_rate));
  add(fmt_double(j.report.energy.memoized_pj));
  add(fmt_double(j.report.energy.baseline_pj));
  add(std::to_string(j.report.result.output_values));
  add(fmt_double(j.report.result.max_abs_error));
  add(fmt_double(j.report.result.mean_abs_error));
  add(fmt_double(j.report.result.rel_rms_error));
  add(std::to_string(j.report.result.sdc_values));
  add(j.report.result.passed ? "1" : "0");
  add(pack_unit_stats(j.report.unit_stats));
  add(fmt_double(j.wall_ms));
  add("end");
  row += '\n';
  return row;
}

// Restores a JobResult from one journal record (see campaign.hpp). Returns
// false (entry skipped) on any malformed field — the truncated-final-record
// torn-write case.
bool parse_job_result(const std::vector<std::string>& f, JobResult& out) {
  if (f.size() != kJournalFieldCount) return false;
  out = JobResult{};
  std::uint64_t u64 = 0;
  double d = 0.0;
  if (!parse_u64(f[kJfIndex], u64)) return false;
  out.job.index = static_cast<std::size_t>(u64);
  if (!parse_u64(f[kJfAttempts], u64) || u64 == 0) return false;
  out.attempts = static_cast<int>(u64);
  if (!parse_bool(f[kJfTimedOut], out.timed_out)) return false;
  if (!parse_bool(f[kJfOk], out.ok)) return false;
  out.error = f[kJfError];
  out.report.kernel = f[kJfKernel];
  out.report.input_parameter = f[kJfParam];
  if (!parse_double(f[kJfThreshold], d)) return false;
  out.report.threshold = static_cast<float>(d);
  if (!parse_double(f[kJfSupply], out.report.supply)) return false;
  if (!parse_double(f[kJfErrorRate], out.report.error_rate_configured)) {
    return false;
  }
  if (!parse_double(f[kJfHitRate], out.report.weighted_hit_rate)) return false;
  if (!parse_double(f[kJfEnergyMemo], out.report.energy.memoized_pj)) {
    return false;
  }
  if (!parse_double(f[kJfEnergyBase], out.report.energy.baseline_pj)) {
    return false;
  }
  if (!parse_u64(f[kJfOutputValues], u64)) return false;
  out.report.result.output_values = static_cast<std::size_t>(u64);
  if (!parse_double(f[kJfMaxAbsError], out.report.result.max_abs_error)) {
    return false;
  }
  if (!parse_double(f[kJfMeanAbsError], out.report.result.mean_abs_error)) {
    return false;
  }
  if (!parse_double(f[kJfRelRmsError], out.report.result.rel_rms_error)) {
    return false;
  }
  if (!parse_u64(f[kJfSdcValues], u64)) return false;
  out.report.result.sdc_values = static_cast<std::size_t>(u64);
  if (!parse_bool(f[kJfPassed], out.report.result.passed)) return false;
  if (!unpack_unit_stats(f[kJfUnitStats], out.report.unit_stats)) return false;
  if (!parse_double(f[kJfWallMs], out.wall_ms)) return false;
  if (f[kJfEnd] != "end") return false;
  return true;
}

SweepAxis SweepAxis::error_rate(double start, double stop, int count) {
  TM_REQUIRE(count >= 1, "sweep axis needs at least one point");
  TM_REQUIRE(start >= 0.0 && stop >= 0.0, "error rates must be >= 0");
  return SweepAxis{Kind::kErrorRate, start, stop, count};
}

SweepAxis SweepAxis::voltage(double start, double stop, int count) {
  TM_REQUIRE(count >= 1, "sweep axis needs at least one point");
  TM_REQUIRE(start > 0.0 && stop > 0.0, "supply voltages must be positive");
  return SweepAxis{Kind::kVoltage, start, stop, count};
}

std::vector<double> SweepAxis::points() const {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(count));
  if (count == 1) {
    out.push_back(start);
    return out;
  }
  for (int i = 0; i < count; ++i) {
    out.push_back(start +
                  (stop - start) * static_cast<double>(i) /
                      static_cast<double>(count - 1));
  }
  return out;
}

std::optional<SweepAxis> SweepAxis::parse(std::string_view text) {
  const auto field = [&text]() -> std::optional<std::string_view> {
    if (text.empty()) return std::nullopt;
    const std::size_t colon = text.find(':');
    std::string_view f = text.substr(0, colon);
    text = colon == std::string_view::npos ? std::string_view{}
                                           : text.substr(colon + 1);
    return f;
  };
  const auto number = [&field]() -> std::optional<double> {
    const auto f = field();
    if (!f || f->empty()) return std::nullopt;
    // Null-terminate for strtod; axis fields are short.
    const std::string s(*f);
    char* end = nullptr;
    const double d = std::strtod(s.c_str(), &end);
    if (end != s.c_str() + s.size()) return std::nullopt;
    return d;
  };

  const auto kind = field();
  if (!kind) return std::nullopt;
  Kind k;
  if (*kind == "error-rate") {
    k = Kind::kErrorRate;
  } else if (*kind == "voltage") {
    k = Kind::kVoltage;
  } else {
    return std::nullopt;
  }
  const auto start = number();
  const auto stop = number();
  const auto count = number();
  if (!start || !stop || !count || !text.empty()) return std::nullopt;
  // strtod accepts "nan"/"inf"; neither is a meaningful axis endpoint, and
  // NaN would sail through the sign checks below (NaN < 0.0 is false).
  if (!std::isfinite(*start) || !std::isfinite(*stop)) return std::nullopt;
  // Range-check before the int cast: strtod accepts "nan", "inf" and
  // out-of-int-range values, and casting those is undefined behaviour
  // (found by tests/fuzz/fuzz_sweep_axis). 1e6 points is far beyond any
  // realistic sweep but far below allocation-failure territory.
  if (!(*count >= 1.0 && *count <= 1e6)) return std::nullopt;
  const int n = static_cast<int>(*count);
  if (static_cast<double>(n) != *count) return std::nullopt;
  if (k == Kind::kErrorRate && (*start < 0.0 || *stop < 0.0)) {
    return std::nullopt;
  }
  if (k == Kind::kVoltage && (*start <= 0.0 || *stop <= 0.0)) {
    return std::nullopt;
  }
  return SweepAxis{k, *start, *stop, n};
}

std::uint64_t derive_job_seed(std::uint64_t campaign_seed, std::size_t index) {
  std::uint64_t z =
      campaign_seed + 0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(index) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::size_t CampaignResult::failed() const noexcept {
  std::size_t n = 0;
  for (const JobResult& j : jobs) n += j.ok ? 0 : 1;
  return n;
}

bool CampaignResult::all_passed() const noexcept {
  for (const JobResult& j : jobs) {
    if (!j.ok || !j.report.result.passed) return false;
  }
  return true;
}

CampaignEngine::CampaignEngine(int jobs) : jobs_(jobs) {
  if (jobs_ <= 0) {
    jobs_ = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs_ <= 0) jobs_ = 1;
  }
}

std::vector<CampaignJob> CampaignEngine::expand(const SweepSpec& spec) {
  const auto workloads =
      spec.factory ? spec.factory() : make_all_workloads(spec.scale);

  // Resolve the kernel filter against the factory's workload names.
  std::vector<std::string> filter;
  for (const std::string& k : spec.kernels) {
    const std::string l = lower(k);
    if (l == "all") {
      filter.clear();
      break;
    }
    filter.push_back(l);
  }
  std::vector<std::size_t> selected;
  if (filter.empty()) {
    for (std::size_t i = 0; i < workloads.size(); ++i) selected.push_back(i);
  } else {
    std::vector<bool> matched(filter.size(), false);
    for (std::size_t i = 0; i < workloads.size(); ++i) {
      const std::string name = lower(workloads[i]->name());
      for (std::size_t f = 0; f < filter.size(); ++f) {
        if (filter[f] == name) {
          matched[f] = true;
          selected.push_back(i);
          break;
        }
      }
    }
    for (std::size_t f = 0; f < filter.size(); ++f) {
      if (!matched[f]) {
        throw std::invalid_argument("no kernel matches '" + filter[f] + "'");
      }
    }
  }

  const std::vector<double> points = spec.axis.points();
  const std::size_t variant_count =
      spec.variants.empty() ? 1 : spec.variants.size();
  const std::size_t threshold_count =
      spec.thresholds.empty() ? 1 : spec.thresholds.size();

  std::vector<CampaignJob> jobs;
  jobs.reserve(variant_count * selected.size() * threshold_count *
               points.size());
  for (std::size_t v = 0; v < variant_count; ++v) {
    for (std::size_t w : selected) {
      for (std::size_t t = 0; t < threshold_count; ++t) {
        for (double point : points) {
          CampaignJob job;
          job.index = jobs.size();
          job.workload_index = w;
          job.kernel = std::string(workloads[w]->name());
          job.variant_index = v;
          job.variant_label =
              spec.variants.empty() ? "base" : spec.variants[v].label;
          job.axis_value = point;
          job.spec = spec.axis.kind == SweepAxis::Kind::kErrorRate
                         ? RunSpec::at_error_rate(point)
                         : RunSpec::at_voltage(point);
          if (!spec.thresholds.empty()) job.spec.threshold(spec.thresholds[t]);
          job.spec.seed(derive_job_seed(spec.campaign_seed, job.index));
          if (spec.metrics) job.spec.metrics(true);
          if (spec.timeline && job.index == 0) job.spec.timeline(true);
          jobs.push_back(std::move(job));
        }
      }
    }
  }
  return jobs;
}

std::string campaign_fingerprint(const SweepSpec& spec) {
  // Compose a canonical description of the grid identity, then hash it
  // (FNV-1a, 64-bit) into a short stable token for the journal header.
  std::string desc = "axis=";
  desc += spec.axis.kind_name();
  desc += ':';
  desc += fmt_double(spec.axis.start);
  desc += ':';
  desc += fmt_double(spec.axis.stop);
  desc += ':';
  desc += std::to_string(spec.axis.count);
  desc += ";scale=";
  desc += fmt_double(spec.scale);
  desc += ";seed=";
  desc += std::to_string(spec.campaign_seed);
  desc += ";kernels=";
  for (const std::string& k : spec.kernels) {
    desc += k;
    desc += '|';
  }
  desc += ";thresholds=";
  for (const float t : spec.thresholds) {
    desc += fmt_double(static_cast<double>(t));
    desc += '|';
  }
  desc += ";variants=";
  for (const ConfigVariant& v : spec.variants) {
    desc += v.label;
    desc += '|';
  }
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : desc) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "v1-%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

std::uint64_t campaign_wire_digest(const SweepSpec& spec) {
  // The fingerprint covers the grid shape; the digest additionally covers
  // the variant configurations, because a remote worker rebuilds the spec
  // from its own command line and a drifted config knob (say --lut-depth)
  // would otherwise produce a silently different grid. Every config knob
  // reachable from the tmemo_sim/tmemo_workerd CLI enters the canonical
  // description below.
  std::string desc = campaign_fingerprint(spec);
  const auto add = [&desc](const std::string& field) {
    desc += ';';
    desc += field;
  };
  for (const ConfigVariant& v : spec.variants) {
    add(v.label);
    const ExperimentConfig& c = v.config;
    add(c.memoization ? "1" : "0");
    add(c.spatial ? "1" : "0");
    add(c.commutativity ? "1" : "0");
    add(std::to_string(c.device.compute_units));
    add(std::to_string(c.device.stream_cores_per_cu));
    add(std::to_string(c.device.wavefront_size));
    add(std::to_string(c.device.seed));
    add(std::to_string(c.device.fpu.lut_depth));
    add(std::to_string(static_cast<int>(c.device.fpu.recovery)));
    add(std::to_string(c.device.fpu.eds_seed));
    const inject::FaultInjectionConfig& inj = c.device.fpu.inject;
    add(fmt_double(inj.lut.seu_per_cycle));
    add(inj.lut.parity ? "1" : "0");
    add(fmt_double(inj.eds.false_negative_rate));
    add(fmt_double(inj.eds.false_positive_rate));
    add(std::to_string(inj.watchdog.recovery_cycle_budget));
    add(std::to_string(static_cast<int>(inj.watchdog.action)));
  }
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : desc) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

bool read_csv_record(std::istream& in, std::vector<std::string>& fields) {
  fields.clear();
  using Traits = std::istream::traits_type;
  if (Traits::eq_int_type(in.peek(), Traits::eof())) return false;
  std::string field;
  bool quoted = false;
  for (;;) {
    const int c = in.get();
    if (Traits::eq_int_type(c, Traits::eof())) {
      // End of input terminates the record — including a quoted field cut
      // short by a crash; the caller's field-count check rejects it.
      fields.push_back(std::move(field));
      return true;
    }
    const char ch = Traits::to_char_type(c);
    if (quoted) {
      if (ch == '"') {
        if (in.peek() == Traits::to_int_type('"')) {
          in.get();
          field += '"';
        } else {
          quoted = false;
        }
      } else {
        field += ch;
      }
    } else if (ch == '"' && field.empty()) {
      quoted = true;
    } else if (ch == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (ch == '\n') {
      fields.push_back(std::move(field));
      return true;
    } else if (ch == '\r') {
      if (in.peek() == Traits::to_int_type('\n')) in.get();
      fields.push_back(std::move(field));
      return true;
    } else {
      field += ch;
    }
  }
}

CampaignJournal read_campaign_journal(std::istream& in) {
  CampaignJournal journal;
  std::vector<std::string> fields;
  if (!read_csv_record(in, fields) ||
      (fields.size() != 2 && fields.size() != 3) ||
      fields[0] != kCampaignJournalSchema ||
      (fields.size() == 3 && fields[2] != kCampaignJournalSealedMark)) {
    throw std::runtime_error("not a " + std::string(kCampaignJournalSchema) +
                             " journal");
  }
  // A header record cut short of its newline is a file with zero complete
  // records — and the byte position where truncating a sealed artifact
  // would otherwise demote it to a valid-looking empty append journal.
  if (in.tellg() == std::streampos(-1)) {
    throw std::runtime_error("torn journal header (file truncated)");
  }
  journal.fingerprint = fields[1];
  journal.sealed = fields.size() == 3;
  bool end_seen = false;
  std::uint64_t declared = 0;
  while (read_csv_record(in, fields)) {
    // tellg() == -1 means this record ran into EOF without a newline: the
    // torn-tail signature (see intact_journal_prefix).
    const bool newline_terminated = in.tellg() != std::streampos(-1);
    if (journal.sealed) {
      // Sealed artifacts (merge outputs, checkpoints) invert the
      // tolerance: they were written atomically and complete, so any tear
      // means the file was truncated *after* writing — exactly the silent
      // corruption the seal exists to catch.
      if (end_seen) {
        throw std::runtime_error(
            "sealed journal has records after its end sentinel");
      }
      if (fields.size() == 2 && fields[0] == kCampaignJournalEndRecord) {
        if (!newline_terminated || !parse_u64(fields[1], declared)) {
          throw std::runtime_error(
              "sealed journal end sentinel is torn or malformed");
        }
        end_seen = true;
        continue;
      }
      JobResult strict_entry;
      if (!newline_terminated || !parse_job_result(fields, strict_entry)) {
        throw std::runtime_error(
            "sealed journal record is torn or malformed "
            "(truncated artifact?)");
      }
      journal.entries.push_back(std::move(strict_entry));
      continue;
    }
    JobResult entry;
    if (parse_job_result(fields, entry)) {
      journal.entries.push_back(std::move(entry));
    } else {
      // A torn write: the campaign (or its host) died mid-append. The row
      // is unusable but the journal before it is intact, so count and move
      // on rather than failing the resume.
      ++journal.malformed_rows;
    }
  }
  if (journal.sealed) {
    if (!end_seen) {
      throw std::runtime_error(
          "sealed journal is missing its end sentinel (truncated artifact?)");
    }
    if (declared != journal.entries.size()) {
      throw std::runtime_error(
          "sealed journal end sentinel declares " + std::to_string(declared) +
          " records but " + std::to_string(journal.entries.size()) +
          " are present");
    }
  }
  return journal;
}

CampaignJournal read_campaign_journal_with_checkpoint(
    const std::string& path) {
  CampaignJournal merged;
  bool have_checkpoint = false;
  const std::string cpath = campaign_checkpoint_path(path);
  {
    std::ifstream cp_in(cpath, std::ios::binary);
    if (cp_in.is_open() &&
        !std::ifstream::traits_type::eq_int_type(
            cp_in.peek(), std::ifstream::traits_type::eof())) {
      CampaignJournal cp;
      try {
        cp = read_campaign_journal(cp_in);
      } catch (const std::exception& e) {
        throw std::runtime_error(cpath + ": " + e.what());
      }
      if (!cp.sealed) {
        throw std::runtime_error("journal checkpoint is not sealed: " +
                                 cpath);
      }
      merged = std::move(cp);
      // The combined state is resumable, not itself a sealed artifact.
      merged.sealed = false;
      have_checkpoint = true;
    }
  }
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    throw std::runtime_error("cannot read campaign journal: " + path);
  }
  CampaignJournal live;
  try {
    live = read_campaign_journal(in);
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
  if (have_checkpoint && live.fingerprint != merged.fingerprint) {
    throw std::runtime_error(
        "journal checkpoint belongs to a different campaign: " + cpath +
        " vs " + path);
  }
  merged.fingerprint = live.fingerprint;
  merged.malformed_rows += live.malformed_rows;
  // Tail entries after checkpoint entries: resume's later-entry-wins rule
  // then reproduces full-journal replay bit-identically.
  for (JobResult& e : live.entries) {
    merged.entries.push_back(std::move(e));
  }
  return merged;
}

CampaignResult CampaignEngine::run(const SweepSpec& spec,
                                   const CampaignRunOptions& options) const {
  TM_REQUIRE(options.max_attempts >= 1, "max_attempts must be >= 1");
  const std::string fingerprint =
      (options.resume.has_value() || !options.journal_path.empty())
          ? campaign_fingerprint(spec)
          : std::string();
  if (options.resume.has_value()) {
    TM_REQUIRE(!spec.metrics && !spec.timeline,
               "metrics/timeline campaigns cannot be resumed "
               "(snapshots are not journaled)");
    TM_REQUIRE(options.resume->fingerprint == fingerprint,
               "journal fingerprint does not match this campaign");
  }

  const std::vector<CampaignJob> jobs = expand(spec);

  // Map journal entries onto job slots; a later duplicate (a job journaled
  // twice across interrupted runs) wins. Only ok entries are restored:
  // journaled failures (a crashed worker, an exhausted retry budget) are
  // re-executed, so resuming after fixing the environment heals the grid.
  std::vector<const JobResult*> restored(jobs.size(), nullptr);
  if (options.resume.has_value()) {
    for (const JobResult& e : options.resume->entries) {
      if (e.ok && e.job.index < restored.size()) restored[e.job.index] = &e;
    }
  }

  // Append-only journal: header only when the file is fresh, one written-
  // and-fsynced record per finished job (restored jobs are already
  // journaled).
  CampaignJournalWriter journal;
  std::mutex journal_mutex;
  std::string journal_error;
  if (!options.journal_path.empty()) {
    journal.configure(options.checkpoint_every, options.inject_fs);
    journal.open(options.journal_path, fingerprint);
  } else {
    TM_REQUIRE(options.checkpoint_every == 0,
               "checkpoint_every requires a journal path");
  }
  // A journal append that cannot be made durable (ENOSPC, EIO, an injected
  // --inject-fs fault) must not kill a worker thread — a throw would
  // std::terminate — and must not pass silently. Record the first failure,
  // stop journaling, and let the campaign finish in memory; callers
  // surface CampaignResult::artifact_error as a distinct nonzero exit.
  const auto safe_append = [&journal, &journal_error](const JobResult& done) {
    if (!journal.is_open()) return;
    try {
      journal.append(done);
    } catch (const std::exception& e) {
      if (journal_error.empty()) journal_error = e.what();
      journal.close();
    }
  };

  CampaignResult result;
  result.jobs.resize(jobs.size());
  const int workers = static_cast<int>(
      std::min(static_cast<std::size_t>(std::max(1, jobs_)),
               std::max<std::size_t>(jobs.size(), 1)));
  result.workers = workers;

  const auto campaign_start = wall_now();
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> resumed{0};

  // Each worker owns a private workload set, so jobs never share mutable
  // state; results land in distinct slots, so only the journal needs a lock.
  const auto worker = [&]() {
    std::vector<std::unique_ptr<Workload>> workloads;
    std::string setup_error;
    try {
      workloads =
          spec.factory ? spec.factory() : make_all_workloads(spec.scale);
    } catch (const std::exception& e) {
      setup_error = std::string("workload setup failed: ") + e.what();
    } catch (...) {
      setup_error = "workload setup failed: unknown exception";
    }

    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      JobResult& out = result.jobs[i];
      if (restored[i] != nullptr) {
        out = *restored[i];
        out.job = jobs[i];
        resumed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      out.job = jobs[i];
      const auto job_start = wall_now();
      if (!setup_error.empty()) {
        // Setup failures are environmental, not per-job: never retried.
        out.error = setup_error;
      } else if (jobs[i].workload_index >= workloads.size()) {
        out.error = "workload factory returned fewer workloads than expected";
      } else {
        for (int attempt = 1;; ++attempt) {
          out.attempts = attempt;
          out.ok = false;
          out.error.clear();
          try {
            const ExperimentConfig& config =
                spec.variants.empty()
                    ? ExperimentConfig{}
                    : spec.variants[jobs[i].variant_index].config;
            const Simulation sim(config);
            out.report =
                sim.run(*workloads[jobs[i].workload_index], jobs[i].spec);
            out.ok = true;
          } catch (const std::exception& e) {
            out.error = e.what();
          } catch (...) {
            out.error = "unknown exception";
          }
          if (out.ok || attempt >= options.max_attempts) break;
        }
      }
      out.wall_ms = elapsed_ms(job_start);
      if (options.job_timeout_ms > 0.0 &&
          out.wall_ms > options.job_timeout_ms) {
        // Cooperative timeout: the run already finished (a worker thread
        // cannot be preempted safely), but its result is discarded so slow
        // outliers surface as failures rather than skewing the grid.
        out.ok = false;
        out.timed_out = true;
        out.report = KernelRunReport{};
        out.error = "job exceeded " + fmt_double(options.job_timeout_ms) +
                    " ms timeout";
      }
      if (journal.is_open()) {
        const std::lock_guard<std::mutex> lock(journal_mutex);
        safe_append(out);
      }
    }
  };

  std::shared_ptr<const telemetry::Timeline> supervisor_timeline;
  const bool supervised = options.isolation == IsolationMode::kProcess ||
                          options.isolation == IsolationMode::kRemote;
  net::Listener owned_listener;
  if (supervised) {
    // Fill restored slots up front; everything else goes to the supervisor.
    ProcessPoolRequest req;
    req.spec = &spec;
    req.jobs = &jobs;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (restored[i] != nullptr) {
        result.jobs[i] = *restored[i];
        result.jobs[i].job = jobs[i];
        resumed.fetch_add(1, std::memory_order_relaxed);
      } else {
        req.pending.push_back(i);
      }
    }
    req.workers = workers;
    req.max_attempts = options.max_attempts;
    req.job_timeout_ms = options.job_timeout_ms;
    req.inject_crash = options.inject_worker_crash;
    req.want_metrics = spec.metrics || spec.timeline;
    req.want_timeline = spec.timeline;
    if (options.isolation == IsolationMode::kRemote) {
      // Socket workers do the heavy lifting; forked pipe workers join the
      // same loop only when explicitly asked for.
      req.workers = std::max(0, options.remote_local_workers);
      req.campaign_digest = campaign_wire_digest(spec);
      req.keepalive_interval_ms = options.keepalive_interval_ms;
      req.keepalive_timeout_ms = options.keepalive_timeout_ms;
      req.inject_net = options.inject_net;
      if (options.listener != nullptr) {
        req.listener = options.listener;
      } else {
        const std::optional<net::HostPort> at =
            net::parse_host_port(options.listen_address,
                                 /*allow_ephemeral=*/true);
        TM_REQUIRE(at.has_value(),
                   "remote isolation needs a listen address "
                   "(HOST:PORT), got '" +
                       options.listen_address + "'");
        owned_listener.open(*at); // throws with endpoint + errno on failure
        req.listener = &owned_listener;
      }
    }
    if (journal.is_open()) {
      // The supervisor is single-threaded, so no lock is needed.
      req.journal_append = safe_append;
    }
    ProcessPoolOutcome outcome = run_process_pool(req, result.jobs);
    result.worker_stats = outcome.stats;
    supervisor_timeline = std::move(outcome.timeline);
    if (options.isolation == IsolationMode::kRemote) {
      // "Workers used" = every registered remote worker plus the local
      // forked ones that shared the loop.
      result.workers =
          req.workers + static_cast<int>(outcome.stats.remote_connects);
    }
  } else if (workers == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  result.resumed_jobs = resumed.load(std::memory_order_relaxed);

  // Fold the per-job snapshots into the campaign aggregate. The fold runs
  // in job-index order after the pool joins, and the merge itself is
  // order-independent, so the aggregate never depends on the worker count.
  if (spec.metrics || spec.timeline) {
    telemetry::MetricRegistry campaign_reg;
    campaign_reg.counter("campaign.jobs").add(result.jobs.size());
    campaign_reg.counter("campaign.jobs_failed").add(result.failed());
    if (supervised) {
      // Supervision instruments exist only under process/remote isolation,
      // so a crash-free thread campaign's snapshot stays byte-identical to
      // its pre-supervision shape.
      campaign_reg.counter("campaign.worker_spawns")
          .add(result.worker_stats.spawns);
      campaign_reg.counter("campaign.worker_crashes")
          .add(result.worker_stats.crashes);
      campaign_reg.counter("campaign.worker_respawns")
          .add(result.worker_stats.respawns);
      campaign_reg.counter("campaign.worker_redispatches")
          .add(result.worker_stats.redispatches);
      campaign_reg.counter("campaign.worker_timeout_kills")
          .add(result.worker_stats.timeout_kills);
    }
    if (options.isolation == IsolationMode::kRemote) {
      campaign_reg.counter("campaign.remote_connects")
          .add(result.worker_stats.remote_connects);
      campaign_reg.counter("campaign.remote_disconnects")
          .add(result.worker_stats.remote_disconnects);
      campaign_reg.counter("campaign.remote_rejects")
          .add(result.worker_stats.remote_rejects);
      campaign_reg.counter("campaign.remote_keepalive_pings")
          .add(result.worker_stats.remote_keepalive_pings);
      campaign_reg.counter("campaign.remote_keepalive_drops")
          .add(result.worker_stats.remote_keepalive_drops);
      campaign_reg.counter("campaign.remote_drains")
          .add(result.worker_stats.remote_drains);
    }
    result.metrics = campaign_reg.snapshot();
    for (const JobResult& j : result.jobs) {
      if (j.ok) result.metrics.merge(j.report.metrics);
      if (j.ok && j.job.index == 0) result.timeline = j.report.timeline;
    }
    if (supervised && spec.timeline) {
      // A job's event timeline cannot cross the worker pipe (only metrics
      // snapshots do); the supervisor's own lifecycle timeline stands in.
      result.timeline = supervisor_timeline;
    }
  }

  result.artifact_error = journal_error;
  result.wall_ms = elapsed_ms(campaign_start);
  return result;
}

void write_campaign_csv(const CampaignResult& result, std::ostream& out) {
  out << "index,variant,kernel,param,axis,axis_value,threshold,supply_v,"
         "error_rate,seed,hit_rate,e_memo_pj,e_base_pj,saving,verify,"
         "max_abs_error,sdc_values,sdc_ops,attempts,wall_ms,status,error\n";
  for (const JobResult& j : result.jobs) {
    const RunSpec& spec = j.job.spec;
    const bool voltage = spec.axis() == RunSpec::Axis::kVoltage;
    out << j.job.index << ',' << csv_escape(j.job.variant_label) << ','
        << csv_escape(j.job.kernel) << ','
        << csv_escape(j.ok ? j.report.input_parameter : "") << ','
        << (voltage ? "voltage" : "error-rate") << ','
        << fmt_double(j.job.axis_value) << ','
        << (j.ok ? fmt_double(static_cast<double>(j.report.threshold)) : "")
        << ',' << (j.ok ? fmt_double(j.report.supply) : "") << ','
        << (j.ok ? fmt_double(j.report.error_rate_configured) : "") << ','
        << (spec.seed() ? std::to_string(*spec.seed()) : "") << ',';
    if (j.ok) {
      out << fmt_double(j.report.weighted_hit_rate) << ','
          << fmt_double(j.report.energy.memoized_pj) << ','
          << fmt_double(j.report.energy.baseline_pj) << ','
          << fmt_double(j.report.energy.saving()) << ','
          << (j.report.result.passed ? "passed" : "FAILED") << ','
          << fmt_double(j.report.result.max_abs_error) << ','
          << j.report.result.sdc_values << ',' << j.report.total_sdc_ops();
    } else {
      out << ",,,,,,,";
    }
    out << ',' << j.attempts << ',' << fmt_double(j.wall_ms) << ','
        << (j.ok ? "ok" : (j.timed_out ? "timeout" : "error")) << ','
        << csv_escape(j.error) << '\n';
  }
  // Self-describing artifact: a '#'-comment footer declaring the record
  // count, so a truncated copy of the grid is detectable on read
  // (io::verify_artifact_footer) instead of parsing as a smaller grid.
  // Line-oriented consumers (awk/cut pipelines) skip it as a comment.
  io::write_artifact_footer(out, result.jobs.size());
}

void write_campaign_json(const CampaignResult& result, std::ostream& out) {
  out << "{\n"
      << "  \"schema\": \"tmemo-campaign-v1\",\n"
      << "  \"workers\": " << result.workers << ",\n"
      << "  \"wall_ms\": " << fmt_double(result.wall_ms) << ",\n"
      << "  \"jobs\": [";
  for (std::size_t i = 0; i < result.jobs.size(); ++i) {
    const JobResult& j = result.jobs[i];
    const RunSpec& spec = j.job.spec;
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"index\": " << j.job.index << ", \"variant\": \""
        << json_escape(j.job.variant_label) << "\", \"kernel\": \""
        << json_escape(j.job.kernel) << "\", \"axis\": \""
        << (spec.axis() == RunSpec::Axis::kVoltage ? "voltage" : "error-rate")
        << "\", \"axis_value\": " << fmt_double(j.job.axis_value)
        << ", \"seed\": "
        << (spec.seed() ? std::to_string(*spec.seed()) : "null")
        << ", \"ok\": " << (j.ok ? "true" : "false")
        << ", \"attempts\": " << j.attempts << ", \"timed_out\": "
        << (j.timed_out ? "true" : "false") << ", \"wall_ms\": "
        << fmt_double(j.wall_ms);
    if (j.ok) {
      const KernelRunReport& r = j.report;
      out << ", \"report\": {\"param\": \"" << json_escape(r.input_parameter)
          << "\", \"threshold\": "
          << fmt_double(static_cast<double>(r.threshold))
          << ", \"supply\": " << fmt_double(r.supply)
          << ", \"error_rate\": " << fmt_double(r.error_rate_configured)
          << ", \"weighted_hit_rate\": " << fmt_double(r.weighted_hit_rate)
          << ", \"e_memo_pj\": " << fmt_double(r.energy.memoized_pj)
          << ", \"e_base_pj\": " << fmt_double(r.energy.baseline_pj)
          << ", \"saving\": " << fmt_double(r.energy.saving())
          << ", \"passed\": " << (r.result.passed ? "true" : "false")
          << ", \"output_values\": " << r.result.output_values
          << ", \"max_abs_error\": " << fmt_double(r.result.max_abs_error)
          << ", \"mean_abs_error\": " << fmt_double(r.result.mean_abs_error)
          << ", \"rel_rms_error\": " << fmt_double(r.result.rel_rms_error)
          << ", \"sdc_values\": " << r.result.sdc_values
          << ", \"sdc_ops\": " << r.total_sdc_ops() << "}";
    } else {
      out << ", \"error\": \"" << json_escape(j.error) << "\"";
    }
    out << "}";
  }
  out << "\n  ],\n"
      << "  \"resumed_jobs\": " << result.resumed_jobs << ",\n"
      << "  \"failed_jobs\": [";
  // Failure manifest: the rows an operator triages (and a resume re-runs
  // by deleting them from the journal) without scanning the full grid.
  bool first_failed = true;
  for (const JobResult& j : result.jobs) {
    if (j.ok) continue;
    out << (first_failed ? "\n" : ",\n");
    first_failed = false;
    out << "    {\"index\": " << j.job.index << ", \"kernel\": \""
        << json_escape(j.job.kernel) << "\", \"attempts\": " << j.attempts
        << ", \"timed_out\": " << (j.timed_out ? "true" : "false")
        << ", \"error\": \"" << json_escape(j.error) << "\"}";
  }
  out << (first_failed ? "]\n}\n" : "\n  ]\n}\n");
}

} // namespace tmemo
