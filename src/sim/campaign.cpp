#include "sim/campaign.hpp"

#include <atomic>
#include <cctype>
#include <charconv>
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "common/require.hpp"

namespace tmemo {

namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

// Wall-clock reads are confined to wall_now() (lint rule R1): its values
// feed only the wall_ms reporting fields, never simulation results, which
// is why wall_ms is the one column the CI determinism check ignores.
std::chrono::steady_clock::time_point wall_now() {
  return std::chrono::steady_clock::now();
}

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(wall_now() - since)
      .count();
}

/// Shortest round-trippable decimal form of a double.
std::string fmt_double(double v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  TM_REQUIRE(ec == std::errc{}, "double formatting");
  return std::string(buf, ptr);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string csv_escape(std::string_view s) {
  if (s.find_first_of(",\"\n") == std::string_view::npos) {
    return std::string(s);
  }
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

} // namespace

SweepAxis SweepAxis::error_rate(double start, double stop, int count) {
  TM_REQUIRE(count >= 1, "sweep axis needs at least one point");
  TM_REQUIRE(start >= 0.0 && stop >= 0.0, "error rates must be >= 0");
  return SweepAxis{Kind::kErrorRate, start, stop, count};
}

SweepAxis SweepAxis::voltage(double start, double stop, int count) {
  TM_REQUIRE(count >= 1, "sweep axis needs at least one point");
  TM_REQUIRE(start > 0.0 && stop > 0.0, "supply voltages must be positive");
  return SweepAxis{Kind::kVoltage, start, stop, count};
}

std::vector<double> SweepAxis::points() const {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(count));
  if (count == 1) {
    out.push_back(start);
    return out;
  }
  for (int i = 0; i < count; ++i) {
    out.push_back(start +
                  (stop - start) * static_cast<double>(i) /
                      static_cast<double>(count - 1));
  }
  return out;
}

std::optional<SweepAxis> SweepAxis::parse(std::string_view text) {
  const auto field = [&text]() -> std::optional<std::string_view> {
    if (text.empty()) return std::nullopt;
    const std::size_t colon = text.find(':');
    std::string_view f = text.substr(0, colon);
    text = colon == std::string_view::npos ? std::string_view{}
                                           : text.substr(colon + 1);
    return f;
  };
  const auto number = [&field]() -> std::optional<double> {
    const auto f = field();
    if (!f || f->empty()) return std::nullopt;
    // Null-terminate for strtod; axis fields are short.
    const std::string s(*f);
    char* end = nullptr;
    const double d = std::strtod(s.c_str(), &end);
    if (end != s.c_str() + s.size()) return std::nullopt;
    return d;
  };

  const auto kind = field();
  if (!kind) return std::nullopt;
  Kind k;
  if (*kind == "error-rate") {
    k = Kind::kErrorRate;
  } else if (*kind == "voltage") {
    k = Kind::kVoltage;
  } else {
    return std::nullopt;
  }
  const auto start = number();
  const auto stop = number();
  const auto count = number();
  if (!start || !stop || !count || !text.empty()) return std::nullopt;
  const int n = static_cast<int>(*count);
  if (n < 1 || static_cast<double>(n) != *count) return std::nullopt;
  if (k == Kind::kErrorRate && (*start < 0.0 || *stop < 0.0)) {
    return std::nullopt;
  }
  if (k == Kind::kVoltage && (*start <= 0.0 || *stop <= 0.0)) {
    return std::nullopt;
  }
  return SweepAxis{k, *start, *stop, n};
}

std::uint64_t derive_job_seed(std::uint64_t campaign_seed, std::size_t index) {
  std::uint64_t z =
      campaign_seed + 0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(index) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::size_t CampaignResult::failed() const noexcept {
  std::size_t n = 0;
  for (const JobResult& j : jobs) n += j.ok ? 0 : 1;
  return n;
}

bool CampaignResult::all_passed() const noexcept {
  for (const JobResult& j : jobs) {
    if (!j.ok || !j.report.result.passed) return false;
  }
  return true;
}

CampaignEngine::CampaignEngine(int jobs) : jobs_(jobs) {
  if (jobs_ <= 0) {
    jobs_ = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs_ <= 0) jobs_ = 1;
  }
}

std::vector<CampaignJob> CampaignEngine::expand(const SweepSpec& spec) {
  const auto workloads =
      spec.factory ? spec.factory() : make_all_workloads(spec.scale);

  // Resolve the kernel filter against the factory's workload names.
  std::vector<std::string> filter;
  for (const std::string& k : spec.kernels) {
    const std::string l = lower(k);
    if (l == "all") {
      filter.clear();
      break;
    }
    filter.push_back(l);
  }
  std::vector<std::size_t> selected;
  if (filter.empty()) {
    for (std::size_t i = 0; i < workloads.size(); ++i) selected.push_back(i);
  } else {
    std::vector<bool> matched(filter.size(), false);
    for (std::size_t i = 0; i < workloads.size(); ++i) {
      const std::string name = lower(workloads[i]->name());
      for (std::size_t f = 0; f < filter.size(); ++f) {
        if (filter[f] == name) {
          matched[f] = true;
          selected.push_back(i);
          break;
        }
      }
    }
    for (std::size_t f = 0; f < filter.size(); ++f) {
      if (!matched[f]) {
        throw std::invalid_argument("no kernel matches '" + filter[f] + "'");
      }
    }
  }

  const std::vector<double> points = spec.axis.points();
  const std::size_t variant_count =
      spec.variants.empty() ? 1 : spec.variants.size();
  const std::size_t threshold_count =
      spec.thresholds.empty() ? 1 : spec.thresholds.size();

  std::vector<CampaignJob> jobs;
  jobs.reserve(variant_count * selected.size() * threshold_count *
               points.size());
  for (std::size_t v = 0; v < variant_count; ++v) {
    for (std::size_t w : selected) {
      for (std::size_t t = 0; t < threshold_count; ++t) {
        for (double point : points) {
          CampaignJob job;
          job.index = jobs.size();
          job.workload_index = w;
          job.kernel = std::string(workloads[w]->name());
          job.variant_index = v;
          job.variant_label =
              spec.variants.empty() ? "base" : spec.variants[v].label;
          job.axis_value = point;
          job.spec = spec.axis.kind == SweepAxis::Kind::kErrorRate
                         ? RunSpec::at_error_rate(point)
                         : RunSpec::at_voltage(point);
          if (!spec.thresholds.empty()) job.spec.threshold(spec.thresholds[t]);
          job.spec.seed(derive_job_seed(spec.campaign_seed, job.index));
          if (spec.metrics) job.spec.metrics(true);
          if (spec.timeline && job.index == 0) job.spec.timeline(true);
          jobs.push_back(std::move(job));
        }
      }
    }
  }
  return jobs;
}

CampaignResult CampaignEngine::run(const SweepSpec& spec) const {
  const std::vector<CampaignJob> jobs = expand(spec);

  CampaignResult result;
  result.jobs.resize(jobs.size());
  const int workers = static_cast<int>(
      std::min(static_cast<std::size_t>(std::max(1, jobs_)),
               std::max<std::size_t>(jobs.size(), 1)));
  result.workers = workers;

  const auto campaign_start = wall_now();
  std::atomic<std::size_t> next{0};

  // Each worker owns a private workload set, so jobs never share mutable
  // state; results land in distinct slots, so no lock is needed.
  const auto worker = [&]() {
    std::vector<std::unique_ptr<Workload>> workloads;
    std::string setup_error;
    try {
      workloads =
          spec.factory ? spec.factory() : make_all_workloads(spec.scale);
    } catch (const std::exception& e) {
      setup_error = std::string("workload setup failed: ") + e.what();
    } catch (...) {
      setup_error = "workload setup failed: unknown exception";
    }

    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      JobResult& out = result.jobs[i];
      out.job = jobs[i];
      const auto job_start = wall_now();
      if (!setup_error.empty()) {
        out.error = setup_error;
      } else if (jobs[i].workload_index >= workloads.size()) {
        out.error = "workload factory returned fewer workloads than expected";
      } else {
        try {
          const ExperimentConfig& config =
              spec.variants.empty()
                  ? ExperimentConfig{}
                  : spec.variants[jobs[i].variant_index].config;
          const Simulation sim(config);
          out.report =
              sim.run(*workloads[jobs[i].workload_index], jobs[i].spec);
          out.ok = true;
        } catch (const std::exception& e) {
          out.error = e.what();
        } catch (...) {
          out.error = "unknown exception";
        }
      }
      out.wall_ms = elapsed_ms(job_start);
    }
  };

  if (workers == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  // Fold the per-job snapshots into the campaign aggregate. The fold runs
  // in job-index order after the pool joins, and the merge itself is
  // order-independent, so the aggregate never depends on the worker count.
  if (spec.metrics || spec.timeline) {
    telemetry::MetricRegistry campaign_reg;
    campaign_reg.counter("campaign.jobs").add(result.jobs.size());
    campaign_reg.counter("campaign.jobs_failed").add(result.failed());
    result.metrics = campaign_reg.snapshot();
    for (const JobResult& j : result.jobs) {
      if (j.ok) result.metrics.merge(j.report.metrics);
      if (j.ok && j.job.index == 0) result.timeline = j.report.timeline;
    }
  }

  result.wall_ms = elapsed_ms(campaign_start);
  return result;
}

void write_campaign_csv(const CampaignResult& result, std::ostream& out) {
  out << "index,variant,kernel,param,axis,axis_value,threshold,supply_v,"
         "error_rate,seed,hit_rate,e_memo_pj,e_base_pj,saving,verify,"
         "max_abs_error,wall_ms,status,error\n";
  for (const JobResult& j : result.jobs) {
    const RunSpec& spec = j.job.spec;
    const bool voltage = spec.axis() == RunSpec::Axis::kVoltage;
    out << j.job.index << ',' << csv_escape(j.job.variant_label) << ','
        << csv_escape(j.job.kernel) << ','
        << csv_escape(j.ok ? j.report.input_parameter : "") << ','
        << (voltage ? "voltage" : "error-rate") << ','
        << fmt_double(j.job.axis_value) << ','
        << (j.ok ? fmt_double(static_cast<double>(j.report.threshold)) : "")
        << ',' << (j.ok ? fmt_double(j.report.supply) : "") << ','
        << (j.ok ? fmt_double(j.report.error_rate_configured) : "") << ','
        << (spec.seed() ? std::to_string(*spec.seed()) : "") << ',';
    if (j.ok) {
      out << fmt_double(j.report.weighted_hit_rate) << ','
          << fmt_double(j.report.energy.memoized_pj) << ','
          << fmt_double(j.report.energy.baseline_pj) << ','
          << fmt_double(j.report.energy.saving()) << ','
          << (j.report.result.passed ? "passed" : "FAILED") << ','
          << fmt_double(j.report.result.max_abs_error);
    } else {
      out << ",,,,,";
    }
    out << ',' << fmt_double(j.wall_ms) << ',' << (j.ok ? "ok" : "error")
        << ',' << csv_escape(j.error) << '\n';
  }
}

void write_campaign_json(const CampaignResult& result, std::ostream& out) {
  out << "{\n"
      << "  \"schema\": \"tmemo-campaign-v1\",\n"
      << "  \"workers\": " << result.workers << ",\n"
      << "  \"wall_ms\": " << fmt_double(result.wall_ms) << ",\n"
      << "  \"jobs\": [";
  for (std::size_t i = 0; i < result.jobs.size(); ++i) {
    const JobResult& j = result.jobs[i];
    const RunSpec& spec = j.job.spec;
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"index\": " << j.job.index << ", \"variant\": \""
        << json_escape(j.job.variant_label) << "\", \"kernel\": \""
        << json_escape(j.job.kernel) << "\", \"axis\": \""
        << (spec.axis() == RunSpec::Axis::kVoltage ? "voltage" : "error-rate")
        << "\", \"axis_value\": " << fmt_double(j.job.axis_value)
        << ", \"seed\": "
        << (spec.seed() ? std::to_string(*spec.seed()) : "null")
        << ", \"ok\": " << (j.ok ? "true" : "false") << ", \"wall_ms\": "
        << fmt_double(j.wall_ms);
    if (j.ok) {
      const KernelRunReport& r = j.report;
      out << ", \"report\": {\"param\": \"" << json_escape(r.input_parameter)
          << "\", \"threshold\": "
          << fmt_double(static_cast<double>(r.threshold))
          << ", \"supply\": " << fmt_double(r.supply)
          << ", \"error_rate\": " << fmt_double(r.error_rate_configured)
          << ", \"weighted_hit_rate\": " << fmt_double(r.weighted_hit_rate)
          << ", \"e_memo_pj\": " << fmt_double(r.energy.memoized_pj)
          << ", \"e_base_pj\": " << fmt_double(r.energy.baseline_pj)
          << ", \"saving\": " << fmt_double(r.energy.saving())
          << ", \"passed\": " << (r.result.passed ? "true" : "false")
          << ", \"output_values\": " << r.result.output_values
          << ", \"max_abs_error\": " << fmt_double(r.result.max_abs_error)
          << ", \"mean_abs_error\": " << fmt_double(r.result.mean_abs_error)
          << ", \"rel_rms_error\": " << fmt_double(r.result.rel_rms_error)
          << "}";
    } else {
      out << ", \"error\": \"" << json_escape(j.error) << "\"";
    }
    out << "}";
  }
  out << "\n  ]\n}\n";
}

} // namespace tmemo
