#include "sim/journal_merge.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "io/atomic_file.hpp"

namespace tmemo {

namespace {

/// RFC-4180 quoting for the merged header's fingerprint field (record rows
/// arrive pre-escaped from serialize_job_result).
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\r\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

} // namespace

JournalMergeReport merge_campaign_journals(
    const std::vector<std::string>& shard_paths,
    const std::string& output_path,
    const JournalMergeOptions& options) {
  if (shard_paths.empty()) {
    throw std::runtime_error("journal merge: no shards given");
  }
  if (!options.force) {
    // A merged journal is a finished artifact; clobbering one should take
    // explicit intent (--force), not a retyped output path.
    std::ifstream existing(output_path, std::ios::binary);
    if (existing.is_open() &&
        existing.peek() != std::ifstream::traits_type::eof()) {
      throw std::runtime_error(
          "journal merge: output exists and is not empty: " + output_path +
          " (pass --force to overwrite)");
    }
  }

  JournalMergeReport report;
  std::string fingerprint_source; // shard the fingerprint came from
  // Job index -> (winning entry, ok flag). std::map keeps the output in
  // job-index order for free.
  std::map<std::size_t, JobResult> best;

  for (const std::string& path : shard_paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
      throw std::runtime_error("journal merge: cannot read shard: " + path);
    }
    if (in.peek() == std::ifstream::traits_type::eof()) {
      // A workerd killed before its first append leaves a zero-byte file;
      // that is an empty contribution, not a broken one.
      ++report.empty_shards;
      continue;
    }
    in.close();
    CampaignJournal shard;
    try {
      // Checkpoint-aware: a compacted shard's completed set lives in its
      // sealed `<shard>.checkpoint` plus the live tail — exactly what a
      // --resume of that shard would see.
      shard = read_campaign_journal_with_checkpoint(path);
    } catch (const std::exception& e) {
      throw std::runtime_error("journal merge: " + std::string(e.what()));
    }
    if (report.shards_read == 0) {
      report.fingerprint = shard.fingerprint;
      fingerprint_source = path;
    } else if (shard.fingerprint != report.fingerprint) {
      throw std::runtime_error(
          "journal merge: campaign fingerprint mismatch: " + path +
          " was written for a different campaign than " + fingerprint_source +
          " (refusing to merge journals of different campaigns)");
    }
    ++report.shards_read;
    report.malformed_rows += shard.malformed_rows;
    for (JobResult& entry : shard.entries) {
      ++report.entries_in;
      const auto it = best.find(entry.job.index);
      if (it == best.end()) {
        best.emplace(entry.job.index, std::move(entry));
        continue;
      }
      // An ok result always beats a failure (the crashed attempt and the
      // successful redispatch live in different shards); otherwise the
      // later-listed shard wins.
      if (!entry.ok && it->second.ok) {
        ++report.duplicates_dropped;
        continue;
      }
      it->second = std::move(entry);
      ++report.duplicates_dropped;
    }
  }

  if (report.shards_read == 0) {
    throw std::runtime_error(
        "journal merge: every shard is empty; nothing to merge");
  }

  // The merge output is a *complete* artifact, so it gets the full
  // durability treatment: buffered, committed atomically (temp → fsync →
  // rename → parent-dir fsync), and sealed with a record-count end
  // sentinel so any later truncation is rejected on read.
  io::AtomicFileWriter writer;
  if (options.inject_fs.has_value()) {
    writer.open(output_path, *options.inject_fs);
  } else {
    writer.open(output_path);
  }
  std::ostream& out = writer.stream();
  out << std::string(kCampaignJournalSchema) << ','
      << csv_escape(report.fingerprint) << ','
      << std::string(kCampaignJournalSealedMark) << '\n';
  for (const auto& [index, entry] : best) {
    out << serialize_job_result(entry);
    ++report.entries_out;
  }
  out << std::string(kCampaignJournalEndRecord) << ',' << report.entries_out
      << '\n';
  writer.commit(); // throws io::IoError with path/op/errno on failure
  return report;
}

} // namespace tmemo
