#include "sim/journal_merge.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace tmemo {

namespace {

/// RFC-4180 quoting for the merged header's fingerprint field (record rows
/// arrive pre-escaped from serialize_job_result).
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\r\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

} // namespace

JournalMergeReport merge_campaign_journals(
    const std::vector<std::string>& shard_paths,
    const std::string& output_path) {
  if (shard_paths.empty()) {
    throw std::runtime_error("journal merge: no shards given");
  }

  JournalMergeReport report;
  std::string fingerprint_source; // shard the fingerprint came from
  // Job index -> (winning entry, ok flag). std::map keeps the output in
  // job-index order for free.
  std::map<std::size_t, JobResult> best;

  for (const std::string& path : shard_paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
      throw std::runtime_error("journal merge: cannot read shard: " + path);
    }
    if (in.peek() == std::ifstream::traits_type::eof()) {
      // A workerd killed before its first append leaves a zero-byte file;
      // that is an empty contribution, not a broken one.
      ++report.empty_shards;
      continue;
    }
    CampaignJournal shard;
    try {
      shard = read_campaign_journal(in);
    } catch (const std::exception& e) {
      throw std::runtime_error("journal merge: " + path + ": " + e.what());
    }
    if (report.shards_read == 0) {
      report.fingerprint = shard.fingerprint;
      fingerprint_source = path;
    } else if (shard.fingerprint != report.fingerprint) {
      throw std::runtime_error(
          "journal merge: campaign fingerprint mismatch: " + path +
          " was written for a different campaign than " + fingerprint_source +
          " (refusing to merge journals of different campaigns)");
    }
    ++report.shards_read;
    report.malformed_rows += shard.malformed_rows;
    for (JobResult& entry : shard.entries) {
      ++report.entries_in;
      const auto it = best.find(entry.job.index);
      if (it == best.end()) {
        best.emplace(entry.job.index, std::move(entry));
        continue;
      }
      // An ok result always beats a failure (the crashed attempt and the
      // successful redispatch live in different shards); otherwise the
      // later-listed shard wins.
      if (!entry.ok && it->second.ok) {
        ++report.duplicates_dropped;
        continue;
      }
      it->second = std::move(entry);
      ++report.duplicates_dropped;
    }
  }

  if (report.shards_read == 0) {
    throw std::runtime_error(
        "journal merge: every shard is empty; nothing to merge");
  }

  std::ofstream out(output_path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    throw std::runtime_error("journal merge: cannot write output: " +
                             output_path);
  }
  out << std::string(kCampaignJournalSchema) << ','
      << csv_escape(report.fingerprint) << '\n';
  for (const auto& [index, entry] : best) {
    out << serialize_job_result(entry);
    ++report.entries_out;
  }
  out.flush();
  if (!out.good()) {
    throw std::runtime_error("journal merge: write failed: " + output_path);
  }
  return report;
}

} // namespace tmemo
