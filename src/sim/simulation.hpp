// Experiment harness: runs a workload on a freshly configured device and
// collects everything the paper's tables and figures report.
//
// One Simulation owns the model parameters (device shape, energy constants,
// voltage-scaling constants). Each run() builds a fresh GpuDevice (so runs
// are independent and deterministic), programs the matching constraint,
// installs the timing-error model and supply voltage, executes the
// workload, and returns a KernelRunReport.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>

#include "energy/energy_model.hpp"
#include "gpu/device.hpp"
#include "timing/error_model.hpp"
#include "workloads/workload.hpp"

namespace tmemo {

/// Model-wide configuration of an experiment campaign.
struct ExperimentConfig {
  DeviceConfig device = DeviceConfig::radeon_hd5870();
  EnergyParams energy;
  VoltageScalingParams voltage;
  /// Memoization module on/off (off = the paper's baseline architecture).
  bool memoization = true;
  /// Spatial memoization (cross-lane reuse, reference [20]); composes with
  /// the temporal modules.
  bool spatial = false;
  /// Commutativity-aware operand matching (paper §4.2; ablated).
  bool commutativity = true;
};

/// Everything measured in one workload run.
struct KernelRunReport {
  std::string kernel;
  std::string input_parameter;
  float threshold = 0.0f;
  Volt supply = 0.9;
  double error_rate_configured = 0.0; ///< for fixed-rate experiments

  std::array<FpuStats, kNumFpuTypes> unit_stats{};
  double weighted_hit_rate = 0.0;   ///< over all activated FPUs
  EnergyTotals energy;              ///< six reported unit types
  WorkloadResult result;            ///< host verification

  /// Hit rate of one unit type, NaN-free (0 when the unit is inactive).
  [[nodiscard]] double unit_hit_rate(FpuType u) const noexcept {
    return unit_stats[static_cast<std::size_t>(u)].hit_rate();
  }
  [[nodiscard]] bool unit_activated(FpuType u) const noexcept {
    return unit_stats[static_cast<std::size_t>(u)].instructions > 0;
  }
};

class Simulation {
 public:
  explicit Simulation(ExperimentConfig config = {});

  [[nodiscard]] const ExperimentConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] ExperimentConfig& config() noexcept { return config_; }

  /// Runs `workload` at the given per-instruction timing-error rate
  /// (Fig. 10 style). `threshold` overrides the workload's Table-1 value.
  [[nodiscard]] KernelRunReport run_at_error_rate(
      const Workload& workload, double error_rate,
      std::optional<float> threshold = std::nullopt);

  /// Runs `workload` in the voltage-overscaling regime (Fig. 11 style):
  /// the FPU supply is `supply`, errors follow the alpha-power model, the
  /// memoization module stays at nominal voltage.
  [[nodiscard]] KernelRunReport run_at_voltage(
      const Workload& workload, Volt supply,
      std::optional<float> threshold = std::nullopt);

  /// Runs `workload` with an explicit error model and supply.
  [[nodiscard]] KernelRunReport run(
      const Workload& workload,
      std::shared_ptr<const TimingErrorModel> errors, Volt supply,
      std::optional<float> threshold = std::nullopt);

 private:
  ExperimentConfig config_;
};

} // namespace tmemo
