// Experiment harness: runs a workload on a freshly configured device and
// collects everything the paper's tables and figures report.
//
// One Simulation owns the model parameters (device shape, energy constants,
// voltage-scaling constants), fixed at construction. Each run() builds a
// fresh GpuDevice (so runs are independent and deterministic), programs the
// matching constraint, installs the timing-error model and supply voltage
// described by a RunSpec, executes the workload, and returns a
// KernelRunReport. Variants are derived with with_config(); bulk grids are
// executed by the campaign engine (sim/campaign.hpp).
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "energy/energy_model.hpp"
#include "gpu/device.hpp"
#include "sim/run_spec.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/timeline.hpp"
#include "timing/error_model.hpp"
#include "workloads/workload.hpp"

namespace tmemo {

/// Model-wide configuration of an experiment campaign.
struct ExperimentConfig {
  DeviceConfig device = DeviceConfig::radeon_hd5870();
  EnergyParams energy;
  VoltageScalingParams voltage;
  /// Memoization module on/off (off = the paper's baseline architecture).
  bool memoization = true;
  /// Spatial memoization (cross-lane reuse, reference [20]); composes with
  /// the temporal modules.
  bool spatial = false;
  /// Commutativity-aware operand matching (paper §4.2; ablated).
  bool commutativity = true;
};

/// Everything measured in one workload run.
struct KernelRunReport {
  std::string kernel;
  std::string input_parameter;
  float threshold = 0.0f;
  Volt supply = 0.9;
  double error_rate_configured = 0.0; ///< for fixed-rate experiments

  std::array<FpuStats, kNumFpuTypes> unit_stats{};
  double weighted_hit_rate = 0.0;   ///< over all activated FPUs
  EnergyTotals energy;              ///< six reported unit types
  WorkloadResult result;            ///< host verification

  /// Telemetry snapshot of the run; empty unless RunSpec::metrics(true)
  /// (or timeline) was set. Campaign shards merge these bit-identically.
  telemetry::MetricsSnapshot metrics;
  /// Event timeline; null unless RunSpec::timeline(true) was set.
  std::shared_ptr<const telemetry::Timeline> timeline;

  /// Hit rate of one unit type, NaN-free (0 when the unit is inactive).
  [[nodiscard]] double unit_hit_rate(FpuType u) const noexcept {
    return unit_stats[static_cast<std::size_t>(u)].hit_rate();
  }
  [[nodiscard]] bool unit_activated(FpuType u) const noexcept {
    return unit_stats[static_cast<std::size_t>(u)].instructions > 0;
  }

  /// Device-level silent-data-corruption totals (docs/FAULT_INJECTION.md):
  /// ops that committed a silently corrupted value — missed-EDS commits
  /// plus corrupt LUT reuses. Zero whenever fault injection is off.
  [[nodiscard]] std::uint64_t total_sdc_ops() const noexcept {
    std::uint64_t n = 0;
    for (const FpuStats& s : unit_stats) n += s.sdc_ops;
    return n;
  }
  [[nodiscard]] std::uint64_t total_instructions() const noexcept {
    std::uint64_t n = 0;
    for (const FpuStats& s : unit_stats) n += s.instructions;
    return n;
  }
  /// SDC ops per executed instruction (0 when nothing executed).
  [[nodiscard]] double sdc_op_rate() const noexcept {
    const std::uint64_t ops = total_instructions();
    return ops == 0 ? 0.0
                    : static_cast<double>(total_sdc_ops()) /
                          static_cast<double>(ops);
  }
};

class Simulation {
 public:
  explicit Simulation(ExperimentConfig config = {});

  [[nodiscard]] const ExperimentConfig& config() const noexcept {
    return config_;
  }

  /// Copy-builder: a new Simulation whose config is this one's with
  /// `mutate` applied. The config is immutable after construction (so a
  /// campaign cannot change the device shape mid-flight); variants are
  /// derived instead:
  ///
  ///   Simulation gated = sim.with_config(
  ///       [](ExperimentConfig& c) { c.memoization = false; });
  template <typename Mutator>
  [[nodiscard]] Simulation with_config(Mutator&& mutate) const {
    ExperimentConfig c = config_;
    std::forward<Mutator>(mutate)(c);
    return Simulation(std::move(c));
  }

  /// Runs `workload` in the environment described by `spec`. Thread-safe:
  /// concurrent calls on one Simulation are independent (each builds its
  /// own device).
  [[nodiscard]] KernelRunReport run(const Workload& workload,
                                    const RunSpec& spec) const;

  // The pre-RunSpec entry points (run_at_error_rate / run_at_voltage and
  // the model+supply run() overload) lived here as deprecated forwarders
  // for one release cycle and have been removed; lint rule R5
  // (deprecated-run-api) keeps them from coming back.

 private:
  ExperimentConfig config_;
};

} // namespace tmemo
