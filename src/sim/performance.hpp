// Execution-time (cycle) estimation for the three recovery architectures.
//
// The paper's energy results assume recovery cycles are pure overhead; the
// performance side of that argument comes from its §1/§2 discussion:
//
//  * in LOCK-STEP SIMD execution, "any error within any of the lanes will
//    cause a global stall and force recovery of the entire SIMD pipeline"
//    — the whole 16-core cluster loses the recovery cycles;
//  * DECOUPLING QUEUES (Pawlowski et al. [11]) let each lane recover
//    independently at a small local cost, at the price of extra
//    synchronization hardware;
//  * the TEMPORAL MEMOIZATION architecture masks errors on LUT hits, so
//    only unmasked errors pay the (local) multiple-issue replay.
//
// PerformanceModel is an ExecutionSink: attach it to a kernel launch and it
// streams the per-lane records into cycle estimates for all three schemes
// simultaneously. Issue bandwidth is one sub-wavefront (16 lanes) per
// cycle; stalls accumulate globally (lock-step) or per stream core
// (decoupled / memoized), with per-run synchronization at the end (the
// slowest stream core bounds completion).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>

#include "gpu/compute_unit.hpp"
#include "timing/ecu.hpp"

namespace tmemo {

/// Cycle totals of one monitored run.
struct PerformanceReport {
  std::uint64_t lane_ops = 0;       ///< records consumed
  std::uint64_t issue_cycles = 0;   ///< error-free issue time (16 lanes/cyc)
  std::uint64_t lockstep_cycles = 0;   ///< baseline, global stalls
  std::uint64_t decoupled_cycles = 0;  ///< baseline + decoupling queues
  std::uint64_t memoized_cycles = 0;   ///< temporal memoization architecture

  [[nodiscard]] double slowdown_lockstep() const noexcept {
    return ratio(lockstep_cycles);
  }
  [[nodiscard]] double slowdown_decoupled() const noexcept {
    return ratio(decoupled_cycles);
  }
  [[nodiscard]] double slowdown_memoized() const noexcept {
    return ratio(memoized_cycles);
  }

 private:
  [[nodiscard]] double ratio(std::uint64_t cycles) const noexcept {
    return issue_cycles == 0
               ? 1.0
               : static_cast<double>(cycles) /
                     static_cast<double>(issue_cycles);
  }
};

/// Streaming cycle estimator (see file comment). Optionally chains to a
/// downstream sink (e.g. the device's energy accumulator) so one run feeds
/// both models.
class PerformanceModel final : public ExecutionSink {
 public:
  explicit PerformanceModel(int stream_cores = 16,
                            ExecutionSink* downstream = nullptr)
      : stream_cores_(stream_cores), downstream_(downstream) {}

  void consume(const ExecutionRecord& rec) override {
    ++lane_ops_;
    const int sc = static_cast<int>(rec.work_item %
                                    static_cast<WorkItemId>(stream_cores_));

    // Baseline architectures execute every op fully and pay for every EDS
    // flag — including the ones the memoized architecture masked.
    if (rec.timing_error) {
      global_stall_ += static_cast<std::uint64_t>(
          recovery_cycles(RecoveryPolicy::kMultipleIssueReplay, rec.unit));
      decoupled_stall_[static_cast<std::size_t>(sc)] +=
          static_cast<std::uint64_t>(
              recovery_cycles(RecoveryPolicy::kDecouplingQueues, rec.unit));
    }
    // The memoized architecture only pays for unmasked errors.
    memo_stall_[static_cast<std::size_t>(sc)] +=
        static_cast<std::uint64_t>(rec.recovery_cycles);

    if (downstream_ != nullptr) downstream_->consume(rec);
  }

  /// Finalizes the cycle totals.
  [[nodiscard]] PerformanceReport report() const {
    PerformanceReport r;
    r.lane_ops = lane_ops_;
    r.issue_cycles =
        (lane_ops_ + static_cast<std::uint64_t>(stream_cores_) - 1) /
        static_cast<std::uint64_t>(stream_cores_);
    r.lockstep_cycles = r.issue_cycles + global_stall_;
    r.decoupled_cycles = r.issue_cycles + max_of(decoupled_stall_);
    r.memoized_cycles = r.issue_cycles + max_of(memo_stall_);
    return r;
  }

  void reset() {
    lane_ops_ = 0;
    global_stall_ = 0;
    decoupled_stall_ = {};
    memo_stall_ = {};
  }

 private:
  [[nodiscard]] static std::uint64_t max_of(
      const std::array<std::uint64_t, 64>& per_sc) {
    return *std::max_element(per_sc.begin(), per_sc.end());
  }

  int stream_cores_;
  ExecutionSink* downstream_;
  std::uint64_t lane_ops_ = 0;
  std::uint64_t global_stall_ = 0;
  std::array<std::uint64_t, 64> decoupled_stall_{};
  std::array<std::uint64_t, 64> memo_stall_{};
};

} // namespace tmemo
