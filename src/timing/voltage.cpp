#include "timing/voltage.hpp"

#include <cmath>

#include "common/require.hpp"

namespace tmemo {

double standard_normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

VoltageScaling::VoltageScaling(const VoltageScalingParams& params)
    : params_(params) {
  TM_REQUIRE(params_.nominal_voltage > params_.threshold_voltage,
             "nominal voltage must exceed the device threshold voltage");
  TM_REQUIRE(params_.alpha > 0.0, "alpha-power exponent must be positive");
  TM_REQUIRE(params_.clock_period > 0.0, "clock period must be positive");
  TM_REQUIRE(params_.stage_delay_sigma > 0.0,
             "path-delay sigma must be positive");
  TM_REQUIRE(params_.stage_delay_mean > 0.0 &&
                 params_.stage_delay_mean <= params_.clock_period,
             "stage delay must fit in the clock period at signoff");
}

double VoltageScaling::delay_factor(Volt v) const {
  TM_REQUIRE(v > params_.threshold_voltage,
             "supply voltage must stay above the threshold voltage");
  const double vn = params_.nominal_voltage;
  const double vt = params_.threshold_voltage;
  // Alpha-power law: drive current I ~ (V - Vth)^alpha, delay ~ C*V / I.
  return (v / vn) * std::pow((vn - vt) / (v - vt), params_.alpha);
}

double VoltageScaling::stage_error_probability(Volt v) const {
  const double scaled_mean = params_.stage_delay_mean * delay_factor(v);
  const double scaled_sigma = params_.stage_delay_sigma * delay_factor(v);
  // P(delay > Tclk) for delay ~ N(scaled_mean, scaled_sigma^2).
  const double z = (params_.clock_period - scaled_mean) / scaled_sigma;
  return 1.0 - standard_normal_cdf(z);
}

double VoltageScaling::op_error_probability(Volt v, int depth) const {
  TM_REQUIRE(depth >= 1, "pipeline depth must be at least 1");
  const double p_stage = stage_error_probability(v);
  return 1.0 - std::pow(1.0 - p_stage, static_cast<double>(depth));
}

double VoltageScaling::energy_factor(Volt v) const {
  const double r = v / params_.nominal_voltage;
  return r * r;
}

} // namespace tmemo
