// Adaptive guardbanding — the 'predict-and-prevent' technique class the
// paper's §2 surveys ([16]-[19], [22]) and argues cannot work efficiently
// "at the edge of failure": a controller that watches the EDS error
// counters and adjusts the supply voltage epoch by epoch, keeping the
// observed error rate inside a target band instead of recovering from (or
// memoizing away) the errors.
//
// The controller implements the classic hysteresis loop:
//   error rate above the target        -> raise the supply one step
//   error rate below target*hysteresis -> lower the supply one step
//   otherwise                          -> hold
// bounded to [v_min, v_max]. bench/ext_adaptive_guardband.cpp races this
// baseline against the temporal-memoization architecture operating at a
// fixed overscaled voltage.
#pragma once

#include <cstdint>

#include "common/require.hpp"
#include "common/types.hpp"

namespace tmemo {

struct GuardbandConfig {
  Volt v_min = 0.78;
  Volt v_max = 0.90;
  Volt step = 0.01;
  /// Per-op error-rate ceiling the controller defends.
  double target_error_rate = 1e-3;
  /// Lower threshold factor: below target*hysteresis the controller dares
  /// to overscale one more step.
  double hysteresis = 0.25;
};

/// Per-epoch supply-voltage controller (see file comment).
class AdaptiveGuardbandController {
 public:
  explicit AdaptiveGuardbandController(const GuardbandConfig& config = {},
                                       Volt initial = 0.90)
      : config_(config), supply_(initial) {
    TM_REQUIRE(config_.v_min < config_.v_max, "voltage band must be ordered");
    TM_REQUIRE(config_.step > 0.0, "voltage step must be positive");
    TM_REQUIRE(config_.target_error_rate > 0.0 &&
                   config_.target_error_rate < 1.0,
               "target error rate must lie in (0, 1)");
    TM_REQUIRE(config_.hysteresis > 0.0 && config_.hysteresis < 1.0,
               "hysteresis factor must lie in (0, 1)");
    TM_REQUIRE(initial >= config_.v_min && initial <= config_.v_max,
               "initial supply outside the control band");
  }

  [[nodiscard]] Volt supply() const noexcept { return supply_; }

  /// Feeds one epoch's observation and updates the supply for the next.
  /// Returns the new supply.
  Volt observe(std::uint64_t ops, std::uint64_t errors) {
    TM_REQUIRE(ops > 0, "an epoch must contain at least one operation");
    const double rate =
        static_cast<double>(errors) / static_cast<double>(ops);
    ++epochs_;
    if (rate > config_.target_error_rate) {
      supply_ = clamp(supply_ + config_.step);
      ++raises_;
    } else if (rate < config_.target_error_rate * config_.hysteresis) {
      supply_ = clamp(supply_ - config_.step);
      ++lowers_;
    }
    return supply_;
  }

  [[nodiscard]] std::uint64_t epochs() const noexcept { return epochs_; }
  [[nodiscard]] std::uint64_t raises() const noexcept { return raises_; }
  [[nodiscard]] std::uint64_t lowers() const noexcept { return lowers_; }
  [[nodiscard]] const GuardbandConfig& config() const noexcept {
    return config_;
  }

 private:
  [[nodiscard]] Volt clamp(Volt v) const noexcept {
    if (v < config_.v_min) return config_.v_min;
    if (v > config_.v_max) return config_.v_max;
    return v;
  }

  GuardbandConfig config_;
  Volt supply_;
  std::uint64_t epochs_ = 0;
  std::uint64_t raises_ = 0;
  std::uint64_t lowers_ = 0;
};

} // namespace tmemo
