#include "timing/ecu.hpp"

namespace tmemo {

const char* recovery_policy_name(RecoveryPolicy p) noexcept {
  switch (p) {
    case RecoveryPolicy::kMultipleIssueReplay: return "multiple-issue-replay";
    case RecoveryPolicy::kHalfFrequencyReplay: return "half-frequency-replay";
    case RecoveryPolicy::kDecouplingQueues:    return "decoupling-queues";
  }
  return "?";
}

int recovery_cycles(RecoveryPolicy policy, FpuType unit) {
  const int depth = fpu_latency_cycles(unit);
  switch (policy) {
    case RecoveryPolicy::kMultipleIssueReplay:
      // Paper §5.1: "This baseline recovery mechanism costs 12 cycles per
      // error" for the 4-stage FPUs; deeper pipelines pay proportionally
      // (flush + multiple issues of the refill).
      return 3 * depth;
    case RecoveryPolicy::kHalfFrequencyReplay:
      // Flush (depth) + refill at half frequency (2 * depth), cf. the up to
      // 28 recovery cycles of the 7-stage core in [9].
      return 3 * depth + depth;
    case RecoveryPolicy::kDecouplingQueues:
      // One stall cycle per error over a 2-stage unit in [11]; the stall
      // scales with the pipeline section that must be replayed locally, and
      // the global stall signal costs one extra propagation cycle in a deep
      // GPGPU pipeline (paper §2).
      return depth / 2 + 1;
  }
  return 3 * depth;
}

} // namespace tmemo
