// Voltage-overscaling delay / error-rate model.
//
// The paper analyzes a constant-frequency (1 GHz) voltage-overscaling regime
// in 0.9 V..0.8 V using Synopsys PrimeTime voltage scaling, then back-
// annotates the scaled delays into simulation to quantify the timing-error
// rate (§5.3). We replace that flow with a standard analytic substitute:
//
//  * gate delay follows the alpha-power law:
//        delay(V) = delay(Vnom) * (V/Vnom)^-1 ... specifically
//        d(V)/d(Vnom) = (V / Vnom) * ((Vnom - Vth) / (V - Vth))^alpha
//    which captures the super-linear slowdown as V approaches Vth;
//  * each pipeline stage's critical-path delay is Gaussian around a
//    per-stage mean (process variation across instances/paths);
//  * a stage produces a timing error when its scaled path delay exceeds the
//    clock period; per-operation error probability aggregates the
//    independent per-stage probabilities over the pipeline depth —
//    reproducing the paper's observation that deep pipelines multiply the
//    effective error rate.
#pragma once

#include "common/types.hpp"

namespace tmemo {

/// Parameters of the analytic voltage/delay/error model. Defaults are
/// calibrated for a TSMC-45nm-class flow signed off at 1 GHz / 0.9 V with
/// the error-rate-vs-voltage shape reported in the paper: negligible errors
/// down to ~0.84 V, then an abrupt increase towards 0.8 V.
struct VoltageScalingParams {
  Volt nominal_voltage = 0.9;  ///< signoff voltage (paper: 0.9 V)
  Volt threshold_voltage = 0.35;
  double alpha = 1.4;          ///< velocity-saturation exponent
  Ns clock_period = 1.0;       ///< 1 GHz signoff frequency
  /// Mean critical-path delay of one FPU pipeline stage at nominal voltage.
  /// ~0.84 ns leaves a 16% timing guardband at signoff, consistent with the
  /// paper's observation that the memoization LUT closes timing with 14%
  /// positive slack.
  Ns stage_delay_mean = 0.835;
  /// Path-delay sigma across instances/input vectors (PVT variation).
  /// Calibrated so that errors are negligible down to ~0.84 V and increase
  /// abruptly towards 0.8 V (the paper's Fig. 11 regime).
  Ns stage_delay_sigma = 0.016;
};

/// Analytic voltage-overscaling model (see file comment).
class VoltageScaling {
 public:
  explicit VoltageScaling(const VoltageScalingParams& params = {});

  [[nodiscard]] const VoltageScalingParams& params() const noexcept {
    return params_;
  }

  /// Multiplicative delay slowdown at supply `v` relative to nominal.
  /// delay_factor(nominal) == 1; the factor grows super-linearly as v
  /// approaches the threshold voltage.
  [[nodiscard]] double delay_factor(Volt v) const;

  /// Probability that ONE pipeline stage misses the clock edge at supply
  /// `v` (i.e. its scaled Gaussian path delay exceeds the clock period).
  [[nodiscard]] double stage_error_probability(Volt v) const;

  /// Probability that an instruction flowing through a `depth`-stage
  /// pipeline experiences at least one timing error at supply `v`:
  /// 1 - (1 - p_stage)^depth.
  [[nodiscard]] double op_error_probability(Volt v, int depth) const;

  /// Dynamic-energy scaling factor (V/Vnom)^2 — CV^2 switching energy.
  [[nodiscard]] double energy_factor(Volt v) const;

 private:
  VoltageScalingParams params_;
};

/// Standard normal CDF (used by the error-probability computation; exposed
/// for tests).
[[nodiscard]] double standard_normal_cdf(double z);

} // namespace tmemo
