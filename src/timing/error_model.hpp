// Timing-error injection models.
//
// An error model answers one question per dynamic instruction: does an EDS
// sensor somewhere in this FPU's pipeline flag a timing violation for this
// instruction? Two concrete models cover the paper's two experiments:
//
//  * FixedRateErrorModel — the Fig. 10 sweep, where the per-instruction
//    timing-error rate is an independent variable swept over [0%, 4%];
//  * VoltageErrorModel  — the Fig. 11 voltage-overscaling study, where the
//    per-instruction error probability is derived from the alpha-power
//    delay model in timing/voltage.hpp at the configured supply voltage.
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "fpu/opcode.hpp"
#include "timing/voltage.hpp"

namespace tmemo {

/// Interface: per-instruction timing-error probability for a unit type.
class TimingErrorModel {
 public:
  virtual ~TimingErrorModel() = default;

  /// Probability that one instruction on a `unit`-type FPU suffers at least
  /// one timing error across its pipeline stages.
  [[nodiscard]] virtual double op_error_probability(FpuType unit) const = 0;

  /// Samples the error event for one instruction.
  [[nodiscard]] bool sample_error(FpuType unit, Xorshift128& rng) const {
    return rng.bernoulli(op_error_probability(unit));
  }
};

/// Error-free execution (the 0% point of Fig. 10).
class NoErrorModel final : public TimingErrorModel {
 public:
  [[nodiscard]] double op_error_probability(FpuType) const override {
    return 0.0;
  }
};

/// Uniform per-instruction error rate, independent of unit type — the
/// abstraction used by the paper's Fig. 10 sweep (0%..4%).
class FixedRateErrorModel final : public TimingErrorModel {
 public:
  explicit FixedRateErrorModel(double rate);
  [[nodiscard]] double op_error_probability(FpuType) const override {
    return rate_;
  }
  [[nodiscard]] double rate() const noexcept { return rate_; }

 private:
  double rate_;
};

/// Voltage-overscaling-induced error rate: per-stage Gaussian path delays
/// scaled by the alpha-power law, aggregated over the unit's pipeline
/// depth. Deeper pipelines (RECIP: 16 stages) see proportionally more
/// errors, as the paper argues in §1.
class VoltageErrorModel final : public TimingErrorModel {
 public:
  VoltageErrorModel(VoltageScaling scaling, Volt supply);

  [[nodiscard]] double op_error_probability(FpuType unit) const override;
  [[nodiscard]] Volt supply() const noexcept { return supply_; }
  [[nodiscard]] const VoltageScaling& scaling() const noexcept {
    return scaling_;
  }

 private:
  VoltageScaling scaling_;
  Volt supply_;
};

} // namespace tmemo
