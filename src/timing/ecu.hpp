// Error control unit (ECU) and recovery policies.
//
// When an EDS error flag reaches the end of an FPU pipeline, the ECU
// prevents the errant instruction from committing and triggers a recovery
// mechanism. The library models the three mechanisms discussed in the
// paper:
//
//  * kMultipleIssueReplay — the baseline used throughout the evaluation:
//    flush the pipeline and re-issue the errant instruction multiple times
//    at the same frequency (Bowman et al. [9]); costs a fixed 12 cycles per
//    error for the 4-stage Evergreen FPU (paper §5.1).
//  * kHalfFrequencyReplay — replay at half clock frequency; costs
//    2x the pipeline refill plus the flush (up to 28 cycles for the 7-stage
//    core of [9]; scaled by depth here).
//  * kDecouplingQueues — the SIMD decoupling scheme of Pawlowski et al.
//    [11]: private queues let each lane recover independently via local
//    clock-gating; nominally one stall cycle per error over a 2-stage unit,
//    scaled by the deeper Evergreen pipeline plus the cost of propagating
//    the stall.
#pragma once

#include <cstdint>

#include "common/require.hpp"
#include "common/types.hpp"
#include "fpu/opcode.hpp"
#include "telemetry/probe.hpp"

namespace tmemo {

/// Recovery mechanism selector.
enum class RecoveryPolicy : std::uint8_t {
  kMultipleIssueReplay,
  kHalfFrequencyReplay,
  kDecouplingQueues,
};

[[nodiscard]] const char* recovery_policy_name(RecoveryPolicy p) noexcept;

/// Cycle cost of recovering one errant instruction on a `unit`-type FPU.
[[nodiscard]] int recovery_cycles(RecoveryPolicy policy, FpuType unit);

/// Aggregate ECU statistics for one FPU (or one summed group).
struct EcuStats {
  std::uint64_t errors_signaled = 0;   ///< EDS flags that reached the ECU
  std::uint64_t recoveries = 0;        ///< recovery sequences triggered
  std::uint64_t recovery_cycles = 0;   ///< total cycles spent recovering
  std::uint64_t flushed_ops = 0;       ///< in-flight ops squashed by flushes

  EcuStats& operator+=(const EcuStats& o) noexcept {
    errors_signaled += o.errors_signaled;
    recoveries += o.recoveries;
    recovery_cycles += o.recovery_cycles;
    flushed_ops += o.flushed_ops;
    return *this;
  }
};

/// The ECU attached to one FPU pipeline. It is purely an accounting state
/// machine at this modeling level: the replayed result is the exact
/// functional result (the replay runs with a relaxed guardband and cannot
/// err again, as in [9]).
class Ecu {
 public:
  explicit Ecu(RecoveryPolicy policy = RecoveryPolicy::kMultipleIssueReplay)
      : policy_(policy) {}

  [[nodiscard]] RecoveryPolicy policy() const noexcept { return policy_; }

  /// Handles one error signal for `unit`; returns the recovery cycle cost.
  int recover(FpuType unit, int flushed_in_flight_ops) {
    TM_REQUIRE(flushed_in_flight_ops >= 0, "flushed op count must be >= 0");
    const int cycles = recovery_cycles(policy_, unit);
    ++stats_.errors_signaled;
    ++stats_.recoveries;
    stats_.recovery_cycles += static_cast<std::uint64_t>(cycles);
    stats_.flushed_ops += static_cast<std::uint64_t>(flushed_in_flight_ops);
    TMEMO_TELEM(probe_, telemetry::ProbeEvent{
                            telemetry::ProbeEvent::Kind::kEcuReplay,
                            static_cast<std::uint8_t>(unit), 0, probe_core_,
                            probe_cu_, static_cast<std::uint64_t>(cycles)});
    return cycles;
  }

  /// Attaches (or detaches, with nullptr) a telemetry sink; `cu`/`core`
  /// locate this ECU's FPU on the device for event attribution.
  void set_probe(telemetry::ProbeSink* sink, std::uint32_t cu,
                 std::uint16_t core) noexcept {
    probe_ = sink;
    probe_cu_ = cu;
    probe_core_ = core;
  }

  /// Records an error flag that was masked before reaching recovery (the
  /// memoization module's {Hit=1, Error=1} state).
  void note_masked_error() { ++stats_.errors_signaled; }

  [[nodiscard]] const EcuStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

 private:
  RecoveryPolicy policy_;
  EcuStats stats_;
  telemetry::ProbeSink* probe_ = nullptr;
  std::uint32_t probe_cu_ = 0;
  std::uint16_t probe_core_ = 0;
};

} // namespace tmemo
