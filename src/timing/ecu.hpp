// Error control unit (ECU) and recovery policies.
//
// When an EDS error flag reaches the end of an FPU pipeline, the ECU
// prevents the errant instruction from committing and triggers a recovery
// mechanism. The library models the three mechanisms discussed in the
// paper:
//
//  * kMultipleIssueReplay — the baseline used throughout the evaluation:
//    flush the pipeline and re-issue the errant instruction multiple times
//    at the same frequency (Bowman et al. [9]); costs a fixed 12 cycles per
//    error for the 4-stage Evergreen FPU (paper §5.1).
//  * kHalfFrequencyReplay — replay at half clock frequency; costs
//    2x the pipeline refill plus the flush (up to 28 cycles for the 7-stage
//    core of [9]; scaled by depth here).
//  * kDecouplingQueues — the SIMD decoupling scheme of Pawlowski et al.
//    [11]: private queues let each lane recover independently via local
//    clock-gating; nominally one stall cycle per error over a 2-stage unit,
//    scaled by the deeper Evergreen pipeline plus the cost of propagating
//    the stall.
#pragma once

#include <cstdint>

#include "common/require.hpp"
#include "common/types.hpp"
#include "fpu/opcode.hpp"
#include "inject/fault_config.hpp"
#include "telemetry/probe.hpp"

namespace tmemo {

/// Recovery mechanism selector.
enum class RecoveryPolicy : std::uint8_t {
  kMultipleIssueReplay,
  kHalfFrequencyReplay,
  kDecouplingQueues,
};

[[nodiscard]] const char* recovery_policy_name(RecoveryPolicy p) noexcept;

/// Cycle cost of recovering one errant instruction on a `unit`-type FPU.
[[nodiscard]] int recovery_cycles(RecoveryPolicy policy, FpuType unit);

/// Aggregate ECU statistics for one FPU (or one summed group).
struct EcuStats {
  std::uint64_t errors_signaled = 0;   ///< EDS flags raised (incl. masked)
  std::uint64_t masked_errors = 0;     ///< flags the memo module suppressed
  std::uint64_t recoveries = 0;        ///< recovery sequences triggered
  std::uint64_t recovery_cycles = 0;   ///< total cycles spent recovering
  std::uint64_t flushed_ops = 0;       ///< in-flight ops squashed by flushes
  std::uint64_t watchdog_trips = 0;    ///< replay-storm watchdog activations

  EcuStats& operator+=(const EcuStats& o) noexcept {
    errors_signaled += o.errors_signaled;
    masked_errors += o.masked_errors;
    recoveries += o.recoveries;
    recovery_cycles += o.recovery_cycles;
    flushed_ops += o.flushed_ops;
    watchdog_trips += o.watchdog_trips;
    return *this;
  }
};

/// The ECU attached to one FPU pipeline. It is purely an accounting state
/// machine at this modeling level: the replayed result is the exact
/// functional result (the replay runs with a relaxed guardband and cannot
/// err again, as in [9]).
class Ecu {
 public:
  explicit Ecu(RecoveryPolicy policy = RecoveryPolicy::kMultipleIssueReplay,
               const inject::WatchdogConfig& watchdog = {})
      : policy_(policy), watchdog_(watchdog) {}

  [[nodiscard]] RecoveryPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] const inject::WatchdogConfig& watchdog() const noexcept {
    return watchdog_;
  }

  /// Handles one error signal for `unit`; returns the recovery cycle cost.
  int recover(FpuType unit, int flushed_in_flight_ops) {
    TM_REQUIRE(flushed_in_flight_ops >= 0, "flushed op count must be >= 0");
    const int cycles = recovery_cycles(policy_, unit);
    ++stats_.errors_signaled;
    ++stats_.recoveries;
    stats_.recovery_cycles += static_cast<std::uint64_t>(cycles);
    stats_.flushed_ops += static_cast<std::uint64_t>(flushed_in_flight_ops);
    TMEMO_TELEM(probe_, telemetry::ProbeEvent{
                            telemetry::ProbeEvent::Kind::kEcuReplay,
                            static_cast<std::uint8_t>(unit), 0, probe_core_,
                            probe_cu_, static_cast<std::uint64_t>(cycles)});
    if (watchdog_.enabled() && !storm_tripped_ &&
        stats_.recovery_cycles > watchdog_.recovery_cycle_budget) {
      storm_tripped_ = true;
      ++stats_.watchdog_trips;
      TMEMO_TELEM(probe_,
                  telemetry::ProbeEvent{
                      telemetry::ProbeEvent::Kind::kWatchdogTrip,
                      static_cast<std::uint8_t>(unit), 0, probe_core_,
                      probe_cu_, stats_.recovery_cycles});
    }
    return cycles;
  }

  /// True once the cumulative recovery-cycle spend has exceeded the
  /// watchdog budget. Latched: the degradation (watchdog().action) persists
  /// for the rest of the FPU's life; reset_stats() starts a new measurement
  /// window but does not un-degrade the hardware.
  [[nodiscard]] bool storm_tripped() const noexcept { return storm_tripped_; }

  /// Attaches (or detaches, with nullptr) a telemetry sink; `cu`/`core`
  /// locate this ECU's FPU on the device for event attribution.
  void set_probe(telemetry::ProbeSink* sink, std::uint32_t cu,
                 std::uint16_t core) noexcept {
    probe_ = sink;
    probe_cu_ = cu;
    probe_core_ = core;
  }

  /// Records an error flag that was masked before reaching recovery (the
  /// memoization module's {Hit=1, Error=1} state). Counted both as a
  /// signaled error and, separately, as a masked one, so masked and
  /// recovered errors are distinguishable in EcuStats; also emits the
  /// kErrorMasked probe on behalf of the executing unit.
  void note_masked_error(FpuType unit) {
    ++stats_.errors_signaled;
    ++stats_.masked_errors;
    TMEMO_TELEM(probe_, telemetry::ProbeEvent{
                            telemetry::ProbeEvent::Kind::kErrorMasked,
                            static_cast<std::uint8_t>(unit), 0, probe_core_,
                            probe_cu_, 0});
  }

  [[nodiscard]] const EcuStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

 private:
  RecoveryPolicy policy_;
  inject::WatchdogConfig watchdog_;
  bool storm_tripped_ = false;
  EcuStats stats_;
  telemetry::ProbeSink* probe_ = nullptr;
  std::uint32_t probe_cu_ = 0;
  std::uint16_t probe_core_ = 0;
};

} // namespace tmemo
