// Error-detection sequential (EDS) sensor model.
//
// Every FPU pipeline stage carries EDS circuits (Bowman et al. [6][9]) that
// sample critical signals near the clock edge and raise an error flag when a
// late transition is observed. The flag is propagated stage by stage toward
// the end of the pipeline, where it reaches the error control unit (ECU).
//
// For the statistics this library reports, what matters is (a) whether an
// instruction is flagged at all (drawn from a TimingErrorModel) and (b) in
// which stage the violation occurred, which determines how far the error
// signal travels before recovery can start.
#pragma once

#include "common/rng.hpp"
#include "common/types.hpp"
#include "fpu/opcode.hpp"
#include "inject/fault_config.hpp"
#include "timing/error_model.hpp"

namespace tmemo {

/// Outcome of the EDS sensors for one instruction traversing one FPU.
/// `error` is what the downstream hardware sees; with imperfect sensors
/// (inject::EdsFaultConfig) it can disagree with the ground truth.
struct EdsObservation {
  bool error = false;  ///< flag presented to the ECU/memo module
  int errant_stage = -1;  ///< 0-based stage of the first violation (-1: none)
  int propagation_cycles = 0;  ///< cycles for the flag to reach pipeline end
  bool true_error = false;      ///< ground truth: the datapath really erred
  bool false_negative = false;  ///< real violation, flag suppressed (SDC path)
  bool false_positive = false;  ///< spurious flag, no violation occurred
};

/// Per-FPU EDS sensor bank.
class EdsSensorBank {
 public:
  EdsSensorBank(FpuType unit, std::uint64_t seed,
                const inject::EdsFaultConfig& faults = {})
      : unit_(unit),
        depth_(fpu_latency_cycles(unit)),
        rng_(seed),
        faults_(faults) {}

  [[nodiscard]] FpuType unit() const noexcept { return unit_; }
  [[nodiscard]] int depth() const noexcept { return depth_; }
  [[nodiscard]] const inject::EdsFaultConfig& faults() const noexcept {
    return faults_;
  }

  /// Samples the sensors for one instruction under `model`. When an error
  /// occurs, the errant stage is drawn uniformly (each stage has the same
  /// per-cycle violation probability) and the propagation latency is the
  /// number of remaining stages the flag must ripple through.
  ///
  /// With a nonzero EdsFaultConfig the observed flag can diverge from the
  /// ground truth: a real violation is suppressed with probability
  /// false_negative_rate, a clean pass misfires with probability
  /// false_positive_rate. The imperfection draws are gated behind
  /// faults_.enabled() so the RNG stream — and therefore every golden
  /// result — is bit-identical when injection is off.
  [[nodiscard]] EdsObservation observe(const TimingErrorModel& model) {
    EdsObservation obs;
    obs.true_error = model.sample_error(unit_, rng_);
    obs.error = obs.true_error;
    if (faults_.enabled()) {
      if (obs.true_error) {
        if (faults_.false_negative_rate > 0.0 &&
            rng_.bernoulli(faults_.false_negative_rate)) {
          obs.error = false;
          obs.false_negative = true;
        }
      } else if (faults_.false_positive_rate > 0.0 &&
                 rng_.bernoulli(faults_.false_positive_rate)) {
        obs.error = true;
        obs.false_positive = true;
      }
    }
    if (obs.error) {
      obs.errant_stage = static_cast<int>(
          rng_.next_below(static_cast<std::uint64_t>(depth_)));
      obs.propagation_cycles = depth_ - 1 - obs.errant_stage;
    }
    return obs;
  }

  /// Reseeds the sensor RNG (deterministic experiment replays).
  void reseed(std::uint64_t seed) { rng_.reseed(seed); }

 private:
  FpuType unit_;
  int depth_;
  Xorshift128 rng_;
  inject::EdsFaultConfig faults_;
};

} // namespace tmemo
