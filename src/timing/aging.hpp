// Transistor-aging model (NBTI/HCI-class wear-out) and its interaction
// with temporal memoization.
//
// The paper's §2 surveys aging-aware techniques ([18] hierarchically
// focused guardbanding, [19] aging-aware VLIW assignment that "reduces the
// aging-induced performance degradation of the GPGPUs"). This module adds
// the standard compact model:
//
//   delta_Vth(t) = A * (stress_time)^n        (NBTI power law, n ~ 0.2)
//
// where stress_time is the accumulated ACTIVE time of the unit. Threshold
// shift slows the device down — modeled as an increase of the stage
// critical-path delay — which erodes the timing guardband and eventually
// produces errors at the nominal voltage.
//
// The memoization connection (bench/ext_aging.cpp): clock-gated stages do
// not stress their transistors, so a unit that serves hits from its LUT
// ages at (1 - hit_rate * gated_fraction) of the baseline rate — the
// memoized architecture both recovers from aging-induced errors AND delays
// their onset.
#pragma once

#include <cmath>

#include "common/require.hpp"
#include "common/types.hpp"
#include "timing/voltage.hpp"

namespace tmemo {

struct AgingParams {
  /// Fractional stage-delay increase after one year of 100% activity.
  /// Design-for-resiliency removes the static NBTI guardband (that is the
  /// point of EDS-based designs), so the full wear-out shift lands on the
  /// signoff margin: ~10% in year one, following the sub-linear power law
  /// to ~20% over a decade.
  double delay_shift_year1 = 0.10;
  /// Power-law exponent (NBTI: ~0.16-0.3).
  double exponent = 0.3;
};

/// Aging-aware wrapper over the voltage/delay model: computes the aged
/// per-op error probability given accumulated active years.
class AgingModel {
 public:
  explicit AgingModel(const AgingParams& params = {},
                      const VoltageScaling& scaling = VoltageScaling{})
      : params_(params), scaling_(scaling) {
    TM_REQUIRE(params_.delay_shift_year1 >= 0.0,
               "delay shift must be non-negative");
    TM_REQUIRE(params_.exponent > 0.0 && params_.exponent <= 1.0,
               "aging exponent must lie in (0, 1]");
  }

  /// Multiplicative stage-delay factor after `active_years` of stress.
  /// Sub-linear in time: factor(1yr) = 1 + delay_shift_year1.
  [[nodiscard]] double delay_factor(double active_years) const {
    TM_REQUIRE(active_years >= 0.0, "time must be non-negative");
    return 1.0 + params_.delay_shift_year1 *
                     std::pow(active_years, params_.exponent);
  }

  /// Per-op timing-error probability of a `depth`-stage unit at supply `v`
  /// after `active_years` of accumulated stress: the aged path delay is
  /// the fresh path delay times the aging factor.
  [[nodiscard]] double op_error_probability(Volt v, int depth,
                                            double active_years) const {
    const double aged = delay_factor(active_years);
    // Recompute the Gaussian exceedance with the aged mean/sigma.
    VoltageScalingParams p = scaling_.params();
    p.stage_delay_mean *= aged;
    if (p.stage_delay_mean >= p.clock_period) {
      return 1.0; // past the wall: every cycle misses
    }
    p.stage_delay_sigma *= aged;
    return VoltageScaling(p).op_error_probability(v, depth);
  }

  /// Years of calendar time until the unit's guardband is consumed at the
  /// nominal voltage (error probability crosses `target`), given the
  /// unit's duty-cycle `activity` in [0, 1]. Clock-gated cycles do not
  /// stress the device, so lower activity directly extends lifetime.
  [[nodiscard]] double lifetime_years(double activity, int depth,
                                      double target = 1e-4,
                                      double horizon_years = 30.0) const {
    TM_REQUIRE(activity >= 0.0 && activity <= 1.0,
               "activity is a duty-cycle fraction");
    const Volt v = scaling_.params().nominal_voltage;
    if (activity <= 0.0) return horizon_years;
    // Bisection over calendar time.
    double lo = 0.0, hi = horizon_years;
    if (op_error_probability(v, depth, hi * activity) < target) {
      return horizon_years;
    }
    for (int it = 0; it < 60; ++it) {
      const double mid = 0.5 * (lo + hi);
      if (op_error_probability(v, depth, mid * activity) < target) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return 0.5 * (lo + hi);
  }

  [[nodiscard]] const AgingParams& params() const noexcept { return params_; }

 private:
  AgingParams params_;
  VoltageScaling scaling_;
};

} // namespace tmemo
