#include "timing/error_model.hpp"

#include "common/require.hpp"

namespace tmemo {

FixedRateErrorModel::FixedRateErrorModel(double rate) : rate_(rate) {
  TM_REQUIRE(rate >= 0.0 && rate <= 1.0,
             "timing-error rate must lie in [0, 1]");
}

VoltageErrorModel::VoltageErrorModel(VoltageScaling scaling, Volt supply)
    : scaling_(scaling), supply_(supply) {
  TM_REQUIRE(supply > scaling_.params().threshold_voltage,
             "supply must stay above the threshold voltage");
}

double VoltageErrorModel::op_error_probability(FpuType unit) const {
  return scaling_.op_error_probability(supply_, fpu_latency_cycles(unit));
}

} // namespace tmemo
