#include "energy/energy_model.hpp"

#include "common/require.hpp"

namespace tmemo {

EnergyModel::EnergyModel(const EnergyParams& params,
                         const VoltageScaling& scaling)
    : params_(params), scaling_(scaling) {
  for (double e : params_.fpu_op_energy_pj) {
    TM_REQUIRE(e > 0.0, "per-op energy must be positive");
  }
  TM_REQUIRE(params_.lut_lookup_pj >= 0.0 && params_.lut_update_pj >= 0.0,
             "LUT energies must be non-negative");
  TM_REQUIRE(params_.clock_gate_residual >= 0.0 &&
                 params_.clock_gate_residual <= 1.0,
             "clock-gate residual is a fraction in [0, 1]");
  TM_REQUIRE(params_.recovery_energy_factor >= 0.0,
             "recovery energy factor must be non-negative");
}

EnergyPj EnergyModel::op_energy(FpuType unit, Volt v) const {
  const double base =
      params_.fpu_op_energy_pj[static_cast<std::size_t>(unit)];
  return base * scaling_.energy_factor(v);
}

EnergyPj EnergyModel::stage_energy(FpuType unit, Volt v) const {
  return op_energy(unit, v) / static_cast<double>(fpu_latency_cycles(unit));
}

EnergyPj EnergyModel::recovery_energy(FpuType unit, Volt v) const {
  return params_.recovery_energy_factor * op_energy(unit, v);
}

EnergyPj EnergyModel::charge(const ExecutionRecord& rec, Volt v) const {
  const EnergyPj stage = stage_energy(rec.unit, v);
  EnergyPj total = 0.0;

  // Spatial memoization: comparator always, broadcast on reuse.
  total += params_.spatial_compare_pj *
           static_cast<double>(rec.spatial_compares);
  if (rec.spatial_reuse) total += params_.spatial_broadcast_pj;

  // FPU datapath: active stages at full energy, gated stages at residual.
  total += stage * static_cast<double>(rec.active_stage_cycles);
  total += stage * params_.clock_gate_residual *
           static_cast<double>(rec.gated_stage_cycles);

  // ECU recovery (only in the {0,1} state).
  if (rec.recovered) total += recovery_energy(rec.unit, v);

  // Memoization module — at the fixed nominal supply.
  if (rec.memo_enabled) {
    total += params_.lut_lookup_pj * static_cast<double>(rec.lut_lookups);
    total += params_.lut_update_pj * static_cast<double>(rec.lut_writes);
    total += params_.memo_static_pj_per_cycle *
             static_cast<double>(rec.latency_cycles);
  }
  return total;
}

EnergyPj EnergyModel::charge_baseline(const ExecutionRecord& rec,
                                      Volt v) const {
  // Baseline architecture: every instruction executes fully; every EDS flag
  // triggers the ECU recovery — including errors the memoized architecture
  // masked.
  EnergyPj total = op_energy(rec.unit, v);
  if (rec.timing_error) total += recovery_energy(rec.unit, v);
  return total;
}

} // namespace tmemo
